// Hospitals: the paper's motivating scenario end to end — five
// geo-distributed medical platforms with imbalanced data volumes
// (a university hospital holds far more records than a clinic), the
// proportional-minibatch mitigation, and WAN-aware wall-clock estimates
// from the geonet topology (the paper's future-work deployment names
// Seoul National University Hospital; the topology models that).
//
//	go run ./examples/hospitals
package main

import (
	"fmt"
	"log"

	"medsplit/internal/experiment"
	"medsplit/internal/geonet"
)

func main() {
	topo := geonet.DefaultHospitalTopology()
	regions := []geonet.Region{
		"snuh-seoul", "pusan-nat-univ", "chungang-univ", "korea-univ", "ucf-orlando",
	}
	cfg := experiment.Config{
		Arch:         experiment.ArchVGG,
		Classes:      10,
		Width:        4,
		TrainSamples: 600,
		TestSamples:  150,
		Platforms:    len(regions),
		Rounds:       50,
		TotalBatch:   40,
		Sharding:     experiment.ShardingPowerLaw,
		Alpha:        1.5, // strong imbalance: big teaching hospital, small clinics
		Proportional: true,
		EvalEvery:    10,
		LR:           0.03,
		Seed:         42,
		Topology:     topo,
		Regions:      regions,
	}

	shards, _, batches, err := experiment.BuildData(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("geo-distributed hospitals (power-law data imbalance, proportional minibatches):")
	for k, r := range regions {
		link, err := topo.Link(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s %4d records, batch %2d/round, %3.0fms to server at %4.0f Mbps\n",
			r, shards[k].Len(), batches[k], link.LatencyMs, link.Mbps)
	}

	res, err := experiment.RunSplit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsplit training: %d model params, est. %v per synchronous round over the WAN\n",
		res.ModelParams, res.RoundTime)
	fmt.Println(experiment.CurveTable(res))
	fmt.Printf("final accuracy %.1f%% after %v of simulated WAN time\n",
		100*res.FinalAccuracy, res.Curve.Final().SimTime)
}
