// Hospitals: the paper's motivating scenario end to end — five
// geo-distributed medical platforms with imbalanced data volumes
// (a university hospital holds far more records than a clinic), the
// proportional-minibatch mitigation, and WAN-aware wall-clock estimates
// from the geonet topology (the paper's future-work deployment names
// Seoul National University Hospital; the topology models that).
//
//	go run ./examples/hospitals
//
// Real WANs drop connections. With -kill-platform-at-round the example
// instead demonstrates dropout recovery over the in-process pipe
// transport: one hospital's link to the server is severed mid-round
// (while its loss gradients are in flight), the platform redials,
// replays the rejoin handshake with its protocol position, and the
// session completes — deterministically — under the chosen policy.
//
//	go run ./examples/hospitals -kill-platform-at-round 12
//	go run ./examples/hospitals -kill-platform-at-round 12 -rejoin-policy proceed
//
// Servers die too. With -kill-leader-at-round the aggregation tier
// runs replicated: the leader appends every step to a write-ahead log
// and streams it to a warm standby, the leader is killed mid-round
// over the simulated WAN, the standby promotes from its durable log,
// the hospitals redial into it, and the session finishes with weights
// bit-identical to an undisturbed run.
//
//	go run ./examples/hospitals -kill-leader-at-round 12
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"medsplit/internal/core"
	"medsplit/internal/experiment"
	"medsplit/internal/geonet"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

func main() {
	killAt := flag.Int("kill-platform-at-round", -1, "sever one hospital's link mid-round at this round and recover (-1 = off)")
	policy := flag.String("rejoin-policy", "wait", "dropout policy: wait (bit-identical recovery) or proceed (skip the dead hospital)")
	killLeader := flag.Int("kill-leader-at-round", -1, "kill the aggregation server at this round and fail over to a warm standby (-1 = off)")
	flag.Parse()

	if *killLeader >= 0 {
		if err := runFailoverDemo(*killLeader); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *killAt >= 0 {
		if err := runDropoutDemo(*killAt, *policy); err != nil {
			log.Fatal(err)
		}
		return
	}
	runWANScenario()
}

// runFailoverDemo kills the aggregation server mid-round over the
// simulated WAN and lets a warm standby take over, then proves the
// failover was lossless by comparing final weight digests against the
// same session trained without the crash.
func runFailoverDemo(killAt int) error {
	const rounds = 30
	if killAt < 1 || killAt >= rounds {
		return fmt.Errorf("kill round %d out of range [1,%d)", killAt, rounds)
	}
	topo := geonet.DefaultHospitalTopology()
	regions := []geonet.Region{"snuh-seoul", "korea-univ", "ucf-orlando"}
	cfg := experiment.Config{
		Arch:         experiment.ArchMLP,
		Classes:      4,
		Width:        8,
		TrainSamples: 360,
		TestSamples:  90,
		Platforms:    len(regions),
		Rounds:       rounds,
		TotalBatch:   24,
		LR:           0.05,
		EvalEvery:    10,
		Seed:         7,
		Topology:     topo,
		Regions:      regions,
	}

	fmt.Printf("failover demo: %d hospitals over the simulated WAN, killing the leader at round %d\n",
		len(regions), killAt)
	fmt.Println("reference run (no crash, no replication)...")
	ref, err := experiment.RunSplit(cfg)
	if err != nil {
		return err
	}

	fmt.Println("replicated run: leader + 1 warm standby, leader killed mid-round...")
	cfg.Replicas = 1
	cfg.SimWAN = true
	cfg.KillLeaderAt = killAt
	res, err := experiment.RunSplit(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("\n  reference weight digest %#016x\n", ref.WeightDigest)
	fmt.Printf("  failover  weight digest %#016x\n", res.WeightDigest)
	if res.WeightDigest != ref.WeightDigest {
		return fmt.Errorf("weights diverged after failover")
	}
	fmt.Printf("\nbit-identical: the standby promoted from its write-ahead log at the exact step\n")
	fmt.Printf("the dead leader recorded last; final accuracy %.1f%% in both runs\n", 100*res.FinalAccuracy)
	return nil
}

// runWANScenario is the original paper scenario: imbalanced shards,
// proportional minibatches, WAN wall-clock estimates.
func runWANScenario() {
	topo := geonet.DefaultHospitalTopology()
	regions := []geonet.Region{
		"snuh-seoul", "pusan-nat-univ", "chungang-univ", "korea-univ", "ucf-orlando",
	}
	cfg := experiment.Config{
		Arch:         experiment.ArchVGG,
		Classes:      10,
		Width:        4,
		TrainSamples: 600,
		TestSamples:  150,
		Platforms:    len(regions),
		Rounds:       50,
		TotalBatch:   40,
		Sharding:     experiment.ShardingPowerLaw,
		Alpha:        1.5, // strong imbalance: big teaching hospital, small clinics
		Proportional: true,
		EvalEvery:    10,
		LR:           0.03,
		Seed:         42,
		Topology:     topo,
		Regions:      regions,
	}

	shards, _, batches, err := experiment.BuildData(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("geo-distributed hospitals (power-law data imbalance, proportional minibatches):")
	for k, r := range regions {
		link, err := topo.Link(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s %4d records, batch %2d/round, %3.0fms to server at %4.0f Mbps\n",
			r, shards[k].Len(), batches[k], link.LatencyMs, link.Mbps)
	}

	res, err := experiment.RunSplit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsplit training: %d model params, est. %v per synchronous round over the WAN\n",
		res.ModelParams, res.RoundTime)
	fmt.Println(experiment.CurveTable(res))
	fmt.Printf("final accuracy %.1f%% after %v of simulated WAN time\n",
		100*res.FinalAccuracy, res.Curve.Final().SimTime)
}

// killerConn severs the link mid-round: when the platform ships the
// loss gradients of the configured round, the underlying pipe is
// closed (so the server's pending receive fails too) and the send
// errors — exactly what a WAN drop looks like to both ends.
type killerConn struct {
	transport.Conn
	round  int
	fired  bool
	onKill func()
}

func (c *killerConn) Send(m *wire.Message) error {
	if !c.fired && m.Type == wire.MsgLossGrad && int(m.Round) == c.round {
		c.fired = true
		c.Conn.Close()
		if c.onKill != nil {
			c.onKill()
		}
		return fmt.Errorf("hospitals: WAN link severed while sending loss gradients of round %d", c.round)
	}
	return c.Conn.Send(m)
}

// runDropoutDemo trains a three-hospital session over in-process pipes
// and kills one hospital's connection mid-round, demonstrating the
// rejoin protocol end to end.
func runDropoutDemo(killAt int, policyName string) error {
	const (
		K      = 3
		rounds = 30
		victim = 1
	)
	if killAt >= rounds {
		return fmt.Errorf("kill round %d out of range [0,%d)", killAt, rounds)
	}
	var policy core.RejoinPolicy
	switch policyName {
	case "wait":
		policy = core.WaitForRejoin
	case "proceed":
		policy = core.ProceedWithout
	default:
		return fmt.Errorf("unknown rejoin policy %q (want wait or proceed)", policyName)
	}

	cfg := experiment.Config{
		Arch:         experiment.ArchMLP,
		Classes:      4,
		Width:        8,
		TrainSamples: 360,
		TestSamples:  90,
		Noise:        0.35,
		Platforms:    K,
		Rounds:       rounds,
		TotalBatch:   24,
		Sharding:     experiment.ShardingIID,
		LR:           0.05,
		Seed:         7,
	}
	shards, test, batches, err := experiment.BuildData(cfg)
	if err != nil {
		return err
	}
	fronts := make([]*nn.Sequential, K)
	var back *nn.Sequential
	for k := 0; k <= K; k++ {
		m, err := experiment.BuildModel(cfg)
		if err != nil {
			return err
		}
		f, b, err := models.Split(m.Net, m.DefaultCut)
		if err != nil {
			return err
		}
		if k == K {
			back = b
		} else {
			fronts[k] = f
		}
	}

	broker := core.NewRejoinBroker()
	defer broker.Close()
	srv, err := core.NewServer(core.ServerConfig{
		Back:      back,
		Opt:       &nn.SGD{LR: cfg.LR},
		Platforms: K,
		Rounds:    rounds,
		ClipGrads: 5,
		EvalEvery: 10,
		Recovery:  &core.RecoveryConfig{Policy: policy, Window: 5 * time.Second, Broker: broker},
	})
	if err != nil {
		return err
	}

	fmt.Printf("dropout demo: %d hospitals, %d rounds, severing hospital %d's link at round %d (policy %v)\n\n",
		K, rounds, victim, killAt, policy)

	serverConns := make([]transport.Conn, K)
	platformConns := make([]transport.Conn, K)
	rejoins := 0
	platforms := make([]*core.Platform, K)
	for k := 0; k < K; k++ {
		s, c := transport.Pipe()
		serverConns[k] = s
		if k == victim {
			c = &killerConn{Conn: c, round: killAt, onKill: func() {
				fmt.Printf("  >> hospital %d lost its WAN link mid-round %d\n", victim, killAt)
			}}
		}
		platformConns[k] = c
		pc := core.PlatformConfig{
			ID:        k,
			Front:     fronts[k],
			Opt:       &nn.SGD{LR: cfg.LR},
			Loss:      nn.SoftmaxCrossEntropy{},
			Shard:     shards[k],
			Batch:     batches[k],
			Rounds:    rounds,
			ClipGrads: 5,
			EvalEvery: 10,
			Seed:      cfg.Seed + uint64(1000+k),
		}
		if k == 0 {
			pc.EvalData = test
		}
		if k == victim {
			pc.RejoinWindow = 5 * time.Second
			pc.Redial = func() (transport.Conn, error) {
				sEnd, cEnd := transport.Pipe()
				rejoins++
				fmt.Printf("  >> hospital %d redialing (attempt %d)\n", victim, rejoins)
				go func() {
					if err := broker.Offer(sEnd); err != nil {
						log.Println("hospitals: rejoin offer:", err)
					}
				}()
				return cEnd, nil
			}
		}
		p, err := core.NewPlatform(pc)
		if err != nil {
			return err
		}
		platforms[k] = p
	}

	stats := make([]*core.PlatformStats, K)
	errs := make([]error, K+1)
	var wg sync.WaitGroup
	wg.Add(K + 1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(serverConns); err != nil {
			errs[0] = fmt.Errorf("server: %w", err)
			for _, c := range serverConns {
				c.Close()
			}
		}
	}()
	for k := 0; k < K; k++ {
		k := k
		go func() {
			defer wg.Done()
			st, err := platforms[k].Run(platformConns[k])
			if err != nil {
				errs[k+1] = fmt.Errorf("hospital %d: %w", k, err)
				platformConns[k].Close()
				return
			}
			stats[k] = st
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}

	fmt.Println()
	for k, st := range stats {
		note := ""
		if k == victim {
			if policy == core.WaitForRejoin {
				note = "  (dropped, rejoined, bit-identical to an undisturbed run)"
			} else {
				note = fmt.Sprintf("  (dropped at round %d, rejoined; skipped rounds were trained without it)", killAt)
			}
		}
		fmt.Printf("hospital %d: %2d/%d rounds trained, final loss %.4f%s\n",
			k, len(st.Rounds), rounds, st.FinalLoss(), note)
	}
	for _, ev := range stats[0].Evals {
		if ev.Accuracy >= 0 {
			fmt.Printf("round %2d test accuracy %.1f%%\n", ev.Round, 100*ev.Accuracy)
		}
	}
	return nil
}
