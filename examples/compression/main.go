// Compression: sweep the activation-path codecs over the same split
// workload and print the bytes-vs-accuracy trade-off. Half-precision is
// nearly free; int8 quantization quarters the traffic at a small cost;
// aggressive top-k sparsification of activations breaks training — the
// gradient signal needs the dense activation picture.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"

	"medsplit/internal/experiment"
	"medsplit/internal/metrics"
)

func main() {
	base := experiment.Config{
		Arch:         experiment.ArchVGG,
		Classes:      10,
		Width:        4,
		TrainSamples: 480,
		TestSamples:  120,
		Platforms:    4,
		Rounds:       32,
		TotalBatch:   32,
		EvalEvery:    16,
		Seed:         3,
	}
	t := &metrics.Table{
		Title:   "Activation compression: bytes vs accuracy (same workload, same rounds)",
		Headers: []string{"codec", "transmitted", "final acc"},
	}
	for _, codec := range []string{"raw", "f16", "int8", "topk-0.25"} {
		cfg := base
		cfg.Codec = codec
		res, err := experiment.RunSplit(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(codec,
			metrics.FormatBytes(res.TrainingBytes),
			fmt.Sprintf("%.1f%%", 100*res.FinalAccuracy))
	}
	fmt.Println(t)
	fmt.Println("Both ends must agree on the codec; the handshake rejects mismatches.")
}
