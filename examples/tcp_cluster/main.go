// TCP cluster: the same split-learning session as the quickstart, but
// over real TCP sockets on the loopback interface — the exact code path
// a geo-distributed deployment uses (cmd/splitserver and
// cmd/splitplatform run these roles as separate processes; here they
// share one process for a self-contained demo).
//
//	go run ./examples/tcp_cluster
package main

import (
	"fmt"
	"log"
	"sync"

	"medsplit/internal/core"
	"medsplit/internal/dataset"
	"medsplit/internal/metrics"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

const (
	platforms = 2
	rounds    = 20
	classes   = 3
	seed      = 11
)

func main() {
	train, test := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: classes, Train: 240, Test: 90, Seed: seed,
	})
	shardIdx := dataset.ShardIID(train.Len(), platforms, rng.New(seed))

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Println("server listening on", l.Addr())

	var wg sync.WaitGroup
	wg.Add(1 + platforms)
	go func() {
		defer wg.Done()
		if err := runServer(l); err != nil {
			log.Fatal("server: ", err)
		}
	}()
	for k := 0; k < platforms; k++ {
		k := k
		go func() {
			defer wg.Done()
			if err := runPlatform(k, l.Addr(), train.Subset(shardIdx[k]), test); err != nil {
				log.Fatalf("platform %d: %v", k, err)
			}
		}()
	}
	wg.Wait()
}

func runServer(l transport.Listener) error {
	m := models.MLP(3*32*32, []int{64}, classes, rng.New(seed))
	_, back, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		return err
	}
	srv, err := core.NewServer(core.ServerConfig{
		Back:      back,
		Opt:       &nn.SGD{LR: 0.05},
		Platforms: platforms,
		Rounds:    rounds,
		EvalEvery: 10,
	})
	if err != nil {
		return err
	}
	// Accept in any order; route by the Hello's platform id.
	conns := make([]transport.Conn, platforms)
	for n := 0; n < platforms; n++ {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		hello, err := c.Recv()
		if err != nil {
			return err
		}
		if hello.Type != wire.MsgHello || int(hello.Platform) >= platforms || conns[hello.Platform] != nil {
			return fmt.Errorf("bad hello from connection %d", n)
		}
		conns[hello.Platform] = transport.Pushback(c, hello)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	return srv.Serve(conns)
}

func runPlatform(id int, addr string, shard, test *dataset.Dataset) error {
	m := models.MLP(3*32*32, []int{64}, classes, rng.New(seed))
	front, _, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		return err
	}
	flat := func(d *dataset.Dataset) *dataset.Dataset {
		n := d.X.Dim(0)
		return &dataset.Dataset{X: d.X.Reshape(n, d.X.Size()/n), Labels: d.Labels, Classes: d.Classes}
	}
	meter := &transport.Meter{}
	cfg := core.PlatformConfig{
		ID:        id,
		Front:     front,
		Opt:       &nn.SGD{LR: 0.05},
		Loss:      nn.SoftmaxCrossEntropy{},
		Shard:     flat(shard),
		Batch:     8,
		Rounds:    rounds,
		EvalEvery: 10,
		Seed:      uint64(seed + id),
		Meter:     meter,
	}
	if id == 0 {
		cfg.EvalData = flat(test)
	}
	p, err := core.NewPlatform(cfg)
	if err != nil {
		return err
	}
	conn, err := transport.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	stats, err := p.Run(transport.Metered(conn, meter))
	if err != nil {
		return err
	}
	fmt.Printf("platform %d over TCP: loss %.3f, %s transmitted\n",
		id, stats.FinalLoss(), metrics.FormatBytes(core.TrainingBytes(meter)))
	for _, ev := range stats.Evals {
		if ev.Accuracy >= 0 {
			fmt.Printf("platform %d: round %d accuracy %.1f%%\n", id, ev.Round, 100*ev.Accuracy)
		}
	}
	return nil
}
