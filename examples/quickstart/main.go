// Quickstart: train a small model across three in-process "hospitals"
// with the paper's split-learning protocol, then print accuracy and the
// exact number of bytes that crossed the (simulated) wire.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"medsplit/internal/core"
	"medsplit/internal/dataset"
	"medsplit/internal/metrics"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/transport"
)

func main() {
	const (
		platforms = 3
		rounds    = 30
		classes   = 4
		seed      = 7
	)

	// 1. Synthetic patient data (stand-in for medical imaging), split
	//    IID across the hospitals. Raw data never leaves its shard.
	train, test := dataset.SynthCIFAR(dataset.SynthConfig{
		Classes: classes, Train: 360, Test: 120, Seed: seed,
	})
	shardIdx := dataset.ShardIID(train.Len(), platforms, rng.New(seed))

	// 2. One identically initialized model per party. Each hospital
	//    keeps the first hidden layer (L1); the server gets the rest.
	fronts := make([]*nn.Sequential, platforms)
	var back *nn.Sequential
	for k := 0; k <= platforms; k++ {
		m := models.VGGLite(classes, 4, rng.New(seed))
		f, b, err := models.Split(m.Net, m.DefaultCut)
		if err != nil {
			log.Fatal(err)
		}
		if k == platforms {
			back = b
		} else {
			fronts[k] = f
		}
	}

	// 3. Wire up the parties.
	srv, err := core.NewServer(core.ServerConfig{
		Back:      back,
		Opt:       &nn.SGD{LR: 0.05},
		Platforms: platforms,
		Rounds:    rounds,
		EvalEvery: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	ps := make([]*core.Platform, platforms)
	meters := make([]*transport.Meter, platforms)
	for k := 0; k < platforms; k++ {
		meters[k] = &transport.Meter{}
		cfg := core.PlatformConfig{
			ID:        k,
			Front:     fronts[k],
			Opt:       &nn.SGD{LR: 0.05},
			Loss:      nn.SoftmaxCrossEntropy{},
			Shard:     train.Subset(shardIdx[k]),
			Batch:     8,
			Rounds:    rounds,
			EvalEvery: 10,
			Seed:      uint64(seed + k),
			Meter:     meters[k],
		}
		if k == 0 {
			cfg.EvalData = test // hospital 0 measures composite accuracy
		}
		p, err := core.NewPlatform(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ps[k] = p
	}

	// 4. Run the whole federation in-process.
	stats, err := core.RunLocal(srv, ps)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Report.
	fmt.Printf("split learning across %d hospitals, %d rounds\n", platforms, rounds)
	var bytes int64
	for k, m := range meters {
		b := core.TrainingBytes(m)
		bytes += b
		fmt.Printf("  hospital %d: %3d samples local, loss %.3f, %s on the wire\n",
			k, len(shardIdx[k]), stats[k].FinalLoss(), metrics.FormatBytes(b))
	}
	fmt.Printf("total training communication: %s\n", metrics.FormatBytes(bytes))
	for _, ev := range stats[0].Evals {
		if ev.Accuracy >= 0 {
			fmt.Printf("round %2d: test accuracy %.1f%%\n", ev.Round, 100*ev.Accuracy)
		}
	}
	fmt.Println("raw patient data and labels never left their hospital.")
}
