// Simwan: the geo-WAN, executed instead of estimated. The paper's
// 5-hospital deployment (and a synthetic 100-clinic scale-out of it)
// trains end to end over internal/simnet — every protocol byte crosses
// a link with the site's latency and bandwidth on a deterministic
// virtual clock — and the measured virtual round time is printed next
// to the closed-form geonet estimate the earlier examples relied on.
//
//	go run ./examples/simwan                      # paper's 5 hospitals
//	go run ./examples/simwan -preset clinics      # 100 synthetic clinics
//	go run ./examples/simwan -clinics 25          # scale the clinic count
//	go run ./examples/simwan -mode pipelined      # overlap WAN I/O with compute
//	go run ./examples/simwan -drop-round 8        # drop a clinic mid-round, rejoin (wait policy)
//
// Runs are reproducible: the same flags print the same digest, bytes
// and (in the lockstep modes) the same virtual timeline, because link
// jitter is seeded and the clock is causal, not wall-time.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"medsplit/internal/experiment"
	"medsplit/internal/geonet"
	"medsplit/internal/simnet"
	"medsplit/internal/wire"
)

func main() {
	preset := flag.String("preset", "hospitals", "topology preset: hospitals (paper's 5 sites) or clinics (synthetic scale-out)")
	clinics := flag.Int("clinics", 100, "clinic count for -preset clinics")
	rounds := flag.Int("rounds", 12, "training rounds")
	mode := flag.String("mode", "sequential", "server scheduling: sequential, concat or pipelined")
	codec := flag.String("codec", "raw", "activation codec: raw, f16, int8, topk-<frac>")
	jitter := flag.Float64("jitter", 0.1, "seeded per-message jitter fraction in [0,1)")
	seed := flag.Uint64("seed", 42, "run seed (data, weights, jitter)")
	dropRound := flag.Int("drop-round", -1, "sever one platform's link at this round and rejoin (-1 = off; sequential mode only)")
	rejoin := flag.String("rejoin", "wait", "dropout policy with -drop-round: wait or proceed")
	flag.Parse()

	var topo *geonet.Topology
	var regions []geonet.Region
	switch *preset {
	case "hospitals":
		topo = geonet.DefaultHospitalTopology()
		regions = simnet.Regions(topo)
	case "clinics":
		topo, regions = geonet.SyntheticClinics(*clinics, *seed)
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	k := len(regions)

	cfg := experiment.Config{
		Arch:         experiment.ArchMLP,
		Classes:      4,
		TrainSamples: 8 * k,
		TestSamples:  4 * k,
		Platforms:    k,
		Rounds:       *rounds,
		TotalBatch:   4 * k,
		EvalEvery:    *rounds / 3,
		Seed:         *seed,
		Codec:        *codec,
		Topology:     topo,
		Regions:      regions,
		SimWAN:       true,
		SimJitter:    *jitter,
	}
	switch *mode {
	case "sequential":
	case "concat":
		cfg.ConcatRounds = true
	case "pipelined":
		cfg.Pipelined = true
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if *dropRound >= 0 {
		// Sever the highest-latency site — the link most likely to flap
		// in a real deployment.
		victim := 0
		for i, r := range regions {
			l, _ := topo.Link(r)
			if v, _ := topo.Link(regions[victim]); l.LatencyMs > v.LatencyMs {
				victim = i
			}
		}
		cfg.SimFaults = []simnet.Fault{
			{Platform: victim, Round: *dropRound, Type: wire.MsgLossGrad, Dir: simnet.DirUp},
		}
		cfg.SimRejoin = *rejoin
		fmt.Printf("fault script: sever %s's link while it uploads round %d loss gradients, policy %q\n\n",
			regions[victim], *dropRound, *rejoin)
	}

	fmt.Printf("=== simulated geo-WAN: %d platforms (%s), %d rounds, %s scheduling, %s codec ===\n\n",
		k, *preset, *rounds, *mode, *codec)
	start := time.Now()
	res, err := experiment.RunSplit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("%-8s %-10s %-14s %s\n", "round", "accuracy", "train bytes", "virtual time")
	for _, pt := range res.Curve.Points {
		fmt.Printf("%-8d %-10.3f %-14d %v\n", pt.Round, pt.Accuracy, pt.Bytes, pt.SimTime)
	}
	fmt.Println()
	perRound := res.SimElapsed / time.Duration(*rounds)
	fmt.Printf("final accuracy      %.3f\n", res.FinalAccuracy)
	fmt.Printf("training bytes      %d\n", res.TrainingBytes)
	fmt.Printf("weight digest       %#x (same flags => same digest)\n", res.WeightDigest)
	fmt.Printf("virtual elapsed     %v (%v per round, measured by the simnet clock)\n", res.SimElapsed, perRound)
	fmt.Printf("analytic estimate   %v per round (geonet closed-form, zero compute)\n", res.RoundTime)
	fmt.Printf("real wall clock     %v — the WAN is simulated, not slept through\n", wall)
}
