// Baseline compare: the paper's Fig. 4 in miniature — the proposed
// split framework against Large-Scale Synchronous SGD (the paper's
// comparator) and FedAvg (the related-work de facto standard), on the
// same workload, with measured bytes and accuracy.
//
//	go run ./examples/baseline_compare
package main

import (
	"fmt"
	"log"

	"medsplit/internal/experiment"
)

func main() {
	cfg := experiment.Config{
		Arch:         experiment.ArchVGG,
		Classes:      10,
		Width:        4,
		TrainSamples: 480,
		TestSamples:  120,
		Platforms:    4,
		Rounds:       32,
		TotalBatch:   32,
		EvalEvery:    8,
		Seed:         3,
		// FedAvg takes 4 local steps per round; with 1 local step it is
		// mathematically identical to synchronous SGD (the average of
		// one-step models equals one step on the averaged gradient).
		LocalSteps: 4,
	}
	cmp, err := experiment.Fig4MeasuredWithFedAvg(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cmp.Table())
	fmt.Println(experiment.CurveTable(cmp.Results...))
	fmt.Println("Reading: at the same round schedule the split framework moves far fewer")
	fmt.Println("bytes than either full-model exchange scheme, because it ships first-layer")
	fmt.Println("activations instead of the whole parameter set.")
}
