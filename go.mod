module medsplit

go 1.23
