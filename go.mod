module medsplit

go 1.24
