# Development entry points. CI (.github/workflows/ci.yml) runs the same
# targets — `make ci` locally reproduces the full gate, and the
# individual targets mirror the workflow's jobs one to one.

GO ?= go

# Benchmarks that feed the committed baselines (BENCH_tensor.json,
# BENCH_wire.json).
BENCH_PATTERN ?= BenchmarkMatMul|BenchmarkMatMulTA|BenchmarkMatMulTB|BenchmarkIm2Col$$|BenchmarkConvForward|BenchmarkSplitRound|BenchmarkCodec

# Packages with concurrency worth racing: the pipelined scheduler, the
# async transport wrappers, the parameter-server baseline and the
# parallel tensor kernels.
RACE_PKGS = ./internal/core/... ./internal/transport/... ./internal/syncsgd/... ./internal/tensor/...

.PHONY: test bench bench-save bench-smoke fuzz-smoke cover vuln race vet fmt-check ci

test:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

# Short coverage-guided runs of the binary decoders that face untrusted
# bytes: the tensor payload decoder (wire) and the session snapshot
# decoder (core). Mirrors CI's fuzz-smoke job; seconds per target keeps
# the gate fast while still shaking out fresh panics.
fuzz-smoke:
	$(GO) test -run NONE -fuzz 'FuzzDecodeTensors' -fuzztime 10s ./internal/wire/
	$(GO) test -run NONE -fuzz 'FuzzDecodeSnapshot' -fuzztime 10s ./internal/core/
	@echo fuzz-smoke ok

# Coverage summary for the engine core (the session/checkpoint/recovery
# refactor's home) plus its wire and transport substrate.
cover:
	$(GO) test -coverprofile=cover.out ./internal/core/ ./internal/wire/ ./internal/transport/
	@$(GO) tool cover -func=cover.out | grep -E '^total|session.go|checkpoint.go|recovery.go' | tail -20
	@echo "full per-function report: $(GO) tool cover -func=cover.out"

# Known-vulnerability scan (runs in CI's lint job; needs network to
# install the scanner the first time).
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# The CI gate, job for job: lint, build+test, race, bench smoke, fuzz
# smoke. govulncheck is CI-only (network).
ci: fmt-check test race bench-smoke fuzz-smoke

# Human-readable benchmark sweep of the tensor engine, codecs and
# training path.
bench:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run NONE ./internal/tensor/ ./internal/nn/ ./internal/compress/ .

# One-iteration benchmark pass piped through cmd/benchjson, which fails
# on malformed output — the cheap guard that keeps BENCH_*.json
# regenerable. -benchmem is load-bearing: it puts allocs/op on every
# line, so the JSON trajectory tracks the wire path's allocation wins.
bench-smoke:
	$(GO) test -bench 'BenchmarkMatMul|BenchmarkSplitRound|BenchmarkCodec' -benchmem -benchtime 1x -run NONE ./internal/tensor/ ./internal/compress/ . \
		| $(GO) run ./cmd/benchjson > /dev/null
	@echo bench-smoke ok

# Refresh the committed perf baselines. Compare the result against the
# checked-in BENCH_*.json before committing (see README.md,
# "Performance methodology").
bench-save:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run NONE \
		./internal/tensor/ ./internal/nn/ . | $(GO) run ./cmd/benchjson > BENCH_tensor.json
	@echo wrote BENCH_tensor.json

# Refresh the wire-path baseline: codec micro-benchmarks plus the
# end-to-end split round, with allocs/op (the headline metric of the
# zero-allocation wire path). The notes pin the pre-redesign allocs/op
# so the committed file carries its own before/after.
bench-save-wire:
	$(GO) test -bench 'BenchmarkCodec|BenchmarkSplitRound' -benchmem -run NONE \
		./internal/compress/ . | $(GO) run ./cmd/benchjson \
		-note 'pre-zero-alloc-wire baseline (PR2): BenchmarkSplitRound allocs/op mlp=4573 mlp/pipelined=5130 vgg-lite=9638 vgg-lite/pipelined=10487' \
		-note 'differential tests: compress kernels bit-for-bit serial vs parallel (raw/f16/int8), top-k tie multiset (internal/compress/kernels_test.go)' \
		> BENCH_wire.json
	@echo wrote BENCH_wire.json
