# Development entry points. CI (.github/workflows/ci.yml) runs the same
# targets — `make ci` locally reproduces the full gate, and the
# individual targets mirror the workflow's jobs one to one.

GO ?= go

# Benchmarks that feed the committed baseline (BENCH_tensor.json).
BENCH_PATTERN ?= BenchmarkMatMul|BenchmarkMatMulTA|BenchmarkMatMulTB|BenchmarkIm2Col$$|BenchmarkConvForward|BenchmarkSplitRound

# Packages with concurrency worth racing: the pipelined scheduler, the
# async transport wrappers, the parameter-server baseline and the
# parallel tensor kernels.
RACE_PKGS = ./internal/core/... ./internal/transport/... ./internal/syncsgd/... ./internal/tensor/...

.PHONY: test bench bench-save bench-smoke race vet fmt-check ci

test:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

# The CI gate, job for job: lint, build+test, race, bench smoke.
ci: fmt-check test race bench-smoke

# Human-readable benchmark sweep of the tensor engine and training path.
bench:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run NONE ./internal/tensor/ ./internal/nn/ .

# One-iteration benchmark pass piped through cmd/benchjson, which fails
# on malformed output — the cheap guard that keeps BENCH_*.json
# regenerable.
bench-smoke:
	$(GO) test -bench 'BenchmarkMatMul|BenchmarkSplitRound' -benchtime 1x -run NONE ./internal/tensor/ . \
		| $(GO) run ./cmd/benchjson > /dev/null
	@echo bench-smoke ok

# Refresh the committed perf baseline. Compare the result against the
# checked-in BENCH_tensor.json before committing (see README.md,
# "Performance methodology").
bench-save:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run NONE \
		./internal/tensor/ ./internal/nn/ . | $(GO) run ./cmd/benchjson > BENCH_tensor.json
	@echo wrote BENCH_tensor.json
