# Development entry points. CI (.github/workflows/ci.yml) runs the same
# targets — `make ci` locally reproduces the full gate, and the
# individual targets mirror the workflow's jobs one to one.

GO ?= go

# Benchmarks that feed the committed baselines (BENCH_tensor.json,
# BENCH_wire.json). BenchmarkKernel* covers the microkernel layer
# (internal/tensor/kernels), whose dispatch and generic arms both land
# in the baseline with their GFLOPS/GB-per-s custom metrics.
BENCH_PATTERN ?= BenchmarkMatMul|BenchmarkMatMulTA|BenchmarkMatMulTB|BenchmarkIm2Col$$|BenchmarkConvForward|BenchmarkSplitRound|BenchmarkCodec|BenchmarkKernel

# Packages with concurrency worth racing: the pipelined scheduler, the
# async transport wrappers, the simulated-WAN transport (including the
# 100-platform scale-out soak), the parameter-server baselines (sync
# SGD and FedAvg), the parallel tensor kernels, the replication tier's
# write-ahead log, the multi-tenant serving tier (scheduler + batchers
# + shared gate) and the experiment runners that drive real
# goroutine-per-party sessions (including the relaxed-consistency
# differential suite).
RACE_PKGS = ./internal/core/... ./internal/transport/... ./internal/simnet/... ./internal/syncsgd/... ./internal/fedavg/... ./internal/tensor/... ./internal/wal/... ./internal/serve/... ./internal/experiment/...

# Minimum statement coverage the cover target enforces for the engine's
# load-bearing packages. The scenario-matrix, simnet and WAL suites
# lifted these; the gate keeps them from silently eroding. Raise the
# floors when coverage rises, never lower them to merge.
COVER_MIN_core       = 82
COVER_MIN_transport  = 87
COVER_MIN_simnet     = 90
COVER_MIN_wal        = 85
COVER_MIN_serve      = 80
COVER_MIN_fedavg     = 82

.PHONY: test bench bench-save bench-save-tensor bench-smoke bench-compare bench-save-serve bench-save-consistency load-test chaos-test fuzz-smoke cover vuln race vet fmt-check purego-test cross-arm64 ci

test:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

# The pure-Go arm of the kernel dispatch: build everything and run the
# numeric packages with the `purego` tag, which compiles out all
# assembly. The differential tests then assert the generic reference
# alone, proving the fallback is complete (mirrors CI's purego job).
purego-test:
	$(GO) build -tags purego ./...
	$(GO) test -tags purego ./internal/tensor/... ./internal/compress/ ./internal/nn/

# Cross-compile the full module for arm64 and vet the kernel layer,
# which checks the NEON assembly against its Go declarations (asmdecl).
# No arm64 hardware in CI, so execution coverage for that path comes
# from the generic reference the differential tests pin down; this
# target keeps the NEON leg building and ABI-correct.
cross-arm64:
	GOARCH=arm64 $(GO) build ./...
	GOARCH=arm64 $(GO) vet ./internal/tensor/...

# Short coverage-guided runs of the binary decoders that face untrusted
# bytes: the tensor payload decoder (wire), the session snapshot decoder
# (core) and the write-ahead log reader (wal, which must also survive
# torn/corrupt segment files on disk). Mirrors CI's fuzz-smoke job;
# seconds per target keeps the gate fast while still shaking out fresh
# panics.
fuzz-smoke:
	$(GO) test -run NONE -fuzz 'FuzzDecodeTensors' -fuzztime 10s ./internal/wire/
	$(GO) test -run NONE -fuzz 'FuzzDecodeSnapshot' -fuzztime 10s ./internal/core/
	$(GO) test -run NONE -fuzz 'FuzzWALDecode' -fuzztime 10s ./internal/wal/
	@echo fuzz-smoke ok

# Coverage summary for the engine core (the session/checkpoint/recovery
# refactor's home) plus its wire, transport and simnet substrate — with
# a hard minimum-coverage gate on the packages the scenario matrix
# protects (runs in CI's cover job).
cover:
	$(GO) test -coverprofile=cover.out ./internal/core/ ./internal/wire/ ./internal/transport/ ./internal/simnet/ ./internal/wal/ ./internal/serve/ ./internal/fedavg/ | tee cover-packages.txt
	@if grep -q '^FAIL' cover-packages.txt; then \
		echo "cover: test failures (tee hides the pipeline status; see above)"; exit 1; \
	fi
	@$(GO) tool cover -func=cover.out | grep -E '^total|session.go|checkpoint.go|recovery.go|simnet.go|wal.go|replication.go|infer.go' | tail -24
	@echo "full per-function report: $(GO) tool cover -func=cover.out"
	@set -e; for spec in \
		"medsplit/internal/core:$(COVER_MIN_core)" \
		"medsplit/internal/transport:$(COVER_MIN_transport)" \
		"medsplit/internal/simnet:$(COVER_MIN_simnet)" \
		"medsplit/internal/wal:$(COVER_MIN_wal)" \
		"medsplit/internal/serve:$(COVER_MIN_serve)" \
		"medsplit/internal/fedavg:$(COVER_MIN_fedavg)"; do \
		pkg=$${spec%%:*}; min=$${spec##*:}; \
		pct=$$(awk -v pkg="$$pkg" '$$1 == "ok" && $$2 == pkg { for (i = 3; i <= NF; i++) if ($$i == "coverage:") { sub(/%$$/, "", $$(i+1)); print $$(i+1) } }' cover-packages.txt); \
		if [ -z "$$pct" ]; then echo "cover gate: no coverage reported for $$pkg"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v m="$$min" 'BEGIN { print (p >= m) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then \
			echo "cover gate: $$pkg at $$pct% is below the $$min% floor"; exit 1; \
		fi; \
		echo "cover gate: $$pkg $$pct% >= $$min%"; \
	done
	@rm -f cover-packages.txt

# Known-vulnerability scan (runs in CI's lint job; needs network to
# install the scanner the first time).
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# The CI gate, job for job: lint, build+test, race, the purego and
# arm64 kernel-dispatch legs, bench smoke plus the allocation-regression
# compare, fuzz smoke. govulncheck is CI-only (network).
ci: fmt-check test race purego-test cross-arm64 bench-smoke bench-compare fuzz-smoke

# Human-readable benchmark sweep of the tensor engine, codecs and
# training path.
bench:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run NONE ./internal/tensor/ ./internal/nn/ ./internal/compress/ .

# One-iteration benchmark pass piped through cmd/benchjson, which fails
# on malformed output — the cheap guard that keeps BENCH_*.json
# regenerable. -benchmem is load-bearing: it puts allocs/op on every
# line, so the JSON trajectory tracks the wire path's allocation wins.
bench-smoke:
	$(GO) test -bench 'BenchmarkMatMul|BenchmarkSplitRound|BenchmarkCodec|BenchmarkSimnetRound|BenchmarkServeInfer|BenchmarkConsistencyModes' -benchmem -benchtime 1x -run NONE ./internal/tensor/ ./internal/compress/ ./internal/serve/ . \
		| $(GO) run ./cmd/benchjson > /dev/null
	@echo bench-smoke ok

# Allocation-regression gate: rerun the baseline benchmarks and compare
# allocs/op against the committed BENCH_*.json via `benchjson -compare`.
# ns/op is skipped — shared-runner clocks are too noisy to gate on; time
# is gated when bench-save-* regenerates a baseline on pinned hardware.
# GOMAXPROCS=1 matches the environment the committed baselines record,
# and the multi-iteration benchtime amortizes one-time pool warm-up
# allocations that would otherwise inflate allocs/op vs the baselines.
bench-compare:
	GOMAXPROCS=1 $(GO) test -bench 'BenchmarkMatMul|BenchmarkMatMulTA|BenchmarkMatMulTB|BenchmarkIm2Col$$|BenchmarkConvForward|BenchmarkSplitRound|BenchmarkKernel' -benchmem -benchtime 10x -run NONE \
		./internal/tensor/ ./internal/tensor/kernels/ ./internal/nn/ . | $(GO) run ./cmd/benchjson -compare BENCH_tensor.json -skip-ns
	GOMAXPROCS=1 $(GO) test -bench 'BenchmarkCodec|BenchmarkSplitRound' -benchmem -benchtime 10x -run NONE \
		./internal/compress/ . | $(GO) run ./cmd/benchjson -compare BENCH_wire.json -skip-ns
	GOMAXPROCS=1 $(GO) test -bench 'BenchmarkSimnetRound' -benchmem -benchtime 3x -run NONE . \
		| $(GO) run ./cmd/benchjson -compare BENCH_simnet.json -skip-ns
	GOMAXPROCS=1 $(GO) test -bench 'BenchmarkWALAppend|BenchmarkReplicatedRound' -benchmem -benchtime 3x -run NONE \
		./internal/wal/ . | $(GO) run ./cmd/benchjson -compare BENCH_wal.json -skip-ns
	{ GOMAXPROCS=1 $(GO) test -bench 'BenchmarkServeInfer' -benchmem -benchtime 200x -run NONE ./internal/serve/; \
	  GOMAXPROCS=1 $(GO) test -bench 'BenchmarkServeLoadPrecision' -benchmem -benchtime 1x -run NONE .; } \
		| $(GO) run ./cmd/benchjson -compare BENCH_serve.json -skip-ns
	GOMAXPROCS=1 $(GO) test -bench 'BenchmarkConsistencyModes' -benchmem -benchtime 2x -run NONE . \
		| $(GO) run ./cmd/benchjson -compare BENCH_consistency.json -skip-ns
	@echo bench-compare ok

# The multi-tenant serving load test at issue scale: 100 platforms x 4
# tenants over the simulated geo-WAN, under the race detector, printing
# p50/p99 latency and req/s.
load-test:
	$(GO) test -race -count=1 -v -run 'TestServeLoad100Platforms4Tenants' ./internal/serve/

# The serving-tier chaos matrix under the race detector: drops, delay
# spikes, server stalls and severed connections against 100 platforms x
# 4 tenants, asserting every request either succeeds bit-identically to
# the fault-free run or fails fast with a typed error, with zero
# goroutine leaks (runs in the nightly workflow with log upload).
chaos-test:
	$(GO) test -race -count=1 -v -run 'TestServeChaos' ./internal/serve/

# Refresh the committed tensor/kernel perf baseline. Includes the
# microkernel benchmarks (BenchmarkKernel*), whose dispatch and generic
# sub-benchmarks carry GFLOPS / GB-per-s as custom metrics so the
# committed file records the vectorization speedup on pinned hardware.
# Compare the result against the checked-in BENCH_*.json before
# committing (see README.md, "Performance methodology").
bench-save-tensor:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run NONE \
		./internal/tensor/ ./internal/tensor/kernels/ ./internal/nn/ . | $(GO) run ./cmd/benchjson \
		-note 'pre-kernel-layer baseline (PR8): BenchmarkMatMul/blocked/256 7.295 GFLOPS; the kernel layer (PR9) dispatches to AVX2/NEON microkernels, bit-identical to the generic arm by the differential tests in internal/tensor/kernels' \
		-note 'BenchmarkKernel* sub-benchmarks report GFLOPS (GOPS for int8) as a custom metric; the /generic arm is the forced-fallback reference on the same machine' \
		> BENCH_tensor.json
	@echo wrote BENCH_tensor.json

bench-save: bench-save-tensor

# Refresh the wire-path baseline: codec micro-benchmarks plus the
# end-to-end split round, with allocs/op (the headline metric of the
# zero-allocation wire path). The notes pin the pre-redesign allocs/op
# so the committed file carries its own before/after.
bench-save-wire:
	$(GO) test -bench 'BenchmarkCodec|BenchmarkSplitRound' -benchmem -run NONE \
		./internal/compress/ . | $(GO) run ./cmd/benchjson \
		-note 'pre-zero-alloc-wire baseline (PR2): BenchmarkSplitRound allocs/op mlp=4573 mlp/pipelined=5130 vgg-lite=9638 vgg-lite/pipelined=10487' \
		-note 'differential tests: compress kernels bit-for-bit serial vs parallel (raw/f16/int8), top-k tie multiset (internal/compress/kernels_test.go)' \
		> BENCH_wire.json
	@echo wrote BENCH_wire.json

# Refresh the simulated-WAN scale-out baseline: full protocol rounds
# over simnet at 5/25/100 platforms. ns/op tracks the real cost of
# simulating a session; the sim-ms/round metric is the virtual WAN
# round time on the arm's topology.
bench-save-simnet:
	$(GO) test -bench 'BenchmarkSimnetRound' -benchmem -benchtime 3x -run NONE . \
		| $(GO) run ./cmd/benchjson \
		-note '5-platform arm runs the paper 5-hospital topology (geonet.DefaultHospitalTopology); 25/100 use geonet.SyntheticClinics(seed 23)' \
		-note 'sim-ms/round is virtual WAN time per synchronous round measured by the simnet clock; determinism asserted by internal/simnet soak tests' \
		> BENCH_simnet.json
	@echo wrote BENCH_simnet.json

# Refresh the replication-tier baseline: raw WAL append throughput at
# several record sizes and fsync policies, plus full training sessions
# with 0/1/2 warm followers (the end-to-end cost of durability-before-
# ack on the round loop).
bench-save-wal:
	$(GO) test -bench 'BenchmarkWALAppend|BenchmarkReplicatedRound' -benchmem -benchtime 3x -run NONE \
		./internal/wal/ . | $(GO) run ./cmd/benchjson \
		-note 'replicas=0 is the unreplicated baseline (identical config to BenchmarkSplitRound mlp); replicas>0 adds WAL append + follower streams with SyncEvery=1' \
		-note 'failover correctness (bit-identical digests after a mid-round leader kill) is asserted by internal/core and internal/experiment tests, not benchmarked here' \
		> BENCH_wal.json
	@echo wrote BENCH_wal.json

# Refresh the consistency-spectrum baseline: one straggler-loaded
# session per round mode over the simulated WAN. allocs/op is the gated
# number; sim-ms/round and accuracy record the frontier shape on pinned
# hardware (the full sweep is experiment.RunConsistencyFrontier, run
# nightly via FRONTIER_SOAK=1).
bench-save-consistency:
	GOMAXPROCS=1 $(GO) test -bench 'BenchmarkConsistencyModes' -benchmem -benchtime 2x -run NONE . \
		| $(GO) run ./cmd/benchjson \
		-note '25 synthetic clinics (seed 23), 10% compute stragglers at 8x the 5ms base, 2ms server compute; sim-ms/round is virtual wall-clock per round' \
		-note 'pipelined arm reports the analytic estimate (its async stamps make measured elapsed noisy); all other arms are measured and deterministic' \
		> BENCH_consistency.json
	@echo wrote BENCH_consistency.json

# Refresh the serving-tier baseline: one split-inference round trip
# through the multi-tenant path (front forward, request codec, batcher,
# gated back forward, response codec) at 1 and 4 tenants, at each
# inference precision, plus the 100-platform x 4-tenant load harness at
# f32 and int8 (p50/p99/req-per-s as custom metrics). GOMAXPROCS=1
# keeps the numbers comparable with the other committed baselines.
bench-save-serve:
	{ GOMAXPROCS=1 $(GO) test -bench 'BenchmarkServeInfer' -benchmem -benchtime 2000x -run NONE ./internal/serve/; \
	  GOMAXPROCS=1 $(GO) test -bench 'BenchmarkServeLoadPrecision' -benchmem -benchtime 1x -run NONE .; } \
		| $(GO) run ./cmd/benchjson \
		-note 'per-request path: FlushEvery is floored to 1ns so every request flushes alone; batching gains are covered by the load tests, not this baseline' \
		-note 'tenants=4 vs tenants=1 is the cost of multi-tenant routing + shared compute gate on one process' \
		-note 'frame v6 request header (request id + deadline, 16 bytes) accounts for the bytes/op growth over the v5 baseline; allocs/op stays at 14 on the no-policy hot path' \
		-note 'ServeInferPrecision arms compare TenantConfig.InferPrecision views on one tenant: f32 is the bit-identical default; f16 packs Dense weights to half storage (f32 accumulate); int8 quantizes weights per-tensor symmetric (scale=max|W|/127, i32 accumulate) with dynamic per-batch activation ranges — logit bounds asserted by serve/precision_test.go (5e-2 abs)' \
		-note 'ServeLoadPrecision is the 100-platform x 4-tenant load harness (experiment.RunServeLoad over simnet SyntheticClinics, 2 req/platform) at f32 vs int8; p50-ms/p99-ms/req-per-s are client-observed — at this MLP size the serving path is WAN- and batching-bound, so int8 buys memory footprint, not latency' \
		> BENCH_serve.json
	@echo wrote BENCH_serve.json
