# Development entry points. CI (.github/workflows/ci.yml) runs the same
# targets, so `make test` locally reproduces the gate.

GO ?= go

# Benchmarks that feed the committed baseline (BENCH_tensor.json).
BENCH_PATTERN ?= BenchmarkMatMul|BenchmarkMatMulTA|BenchmarkMatMulTB|BenchmarkIm2Col$$|BenchmarkConvForward|BenchmarkSplitRound

.PHONY: test bench bench-save race vet

test:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/tensor/...

vet:
	$(GO) vet ./...

# Human-readable benchmark sweep of the tensor engine and training path.
bench:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run NONE ./internal/tensor/ ./internal/nn/ .

# Refresh the committed perf baseline. Compare the result against the
# checked-in BENCH_tensor.json before committing (see README.md,
# "Performance methodology").
bench-save:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -run NONE \
		./internal/tensor/ ./internal/nn/ . | $(GO) run ./cmd/benchjson > BENCH_tensor.json
	@echo wrote BENCH_tensor.json
