package medsplit

import (
	"testing"
	"time"

	"medsplit/internal/experiment"
	"medsplit/internal/geonet"
)

// BenchmarkConsistencyModes measures one straggler-loaded session per
// consistency mode over the simulated geo-WAN: 25 synthetic clinics,
// heterogeneous per-platform compute with a 10% straggler tail at 8×
// the base. ns/op is the real wall cost of simulating the session;
// sim-ms/round is the virtual wall-clock per round on that scenario —
// the quantity the consistency spectrum trades accuracy against (see
// experiment.RunConsistencyFrontier for the full sweep). The pipelined
// arm reports the analytic estimate instead of the measured elapsed:
// its engine's async stamps make the measurement run-to-run noisy.
func BenchmarkConsistencyModes(b *testing.B) {
	const rounds, n = 4, 25
	topo, regions := geonet.SyntheticClinics(n, 23)
	compute := geonet.SyntheticClinicCompute(n, 23, 5*time.Millisecond, 0.1)
	modes := []struct {
		name   string
		mutate func(*experiment.Config)
	}{
		{"sequential", func(c *experiment.Config) {}},
		{"pipelined", func(c *experiment.Config) { c.Pipelined = true; c.PipelineDepth = 2 }},
		{"stale-k1", func(c *experiment.Config) { c.BoundedStaleness = true; c.Staleness = 1 }},
		{"stale-k4", func(c *experiment.Config) { c.BoundedStaleness = true; c.Staleness = 4 }},
		{"splitfed", func(c *experiment.Config) { c.SplitFed = true; c.L1SyncEvery = 2 }},
	}
	for _, mode := range modes {
		b.Run("mode="+mode.name, func(b *testing.B) {
			cfg := experiment.Config{
				Arch:             experiment.ArchMLP,
				Classes:          4,
				TrainSamples:     2 * n,
				TestSamples:      20,
				Platforms:        n,
				Rounds:           rounds,
				TotalBatch:       2 * n,
				EvalEvery:        rounds,
				Seed:             19,
				Topology:         topo,
				Regions:          regions,
				SimWAN:           true,
				SimComputeServer: 2 * time.Millisecond,
				SimCompute:       compute,
			}
			mode.mutate(&cfg)
			var last *experiment.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunSplit(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			simPerRound := float64(last.SimElapsed.Milliseconds()) / rounds
			if cfg.Pipelined {
				simPerRound = float64(last.RoundTime.Milliseconds())
			}
			b.ReportMetric(simPerRound, "sim-ms/round")
			b.ReportMetric(last.FinalAccuracy, "accuracy")
		})
	}
}
