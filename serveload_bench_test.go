package medsplit

import (
	"testing"

	"medsplit/internal/experiment"
)

// BenchmarkServeLoadPrecision runs the full multi-tenant serving load
// harness — 100 platforms × 4 tenants over the simulated geo-WAN, the
// same matrix as TestServeLoad100Platforms4Tenants — once per inference
// precision, so the committed BENCH_serve.json records the int8-vs-f32
// comparison at scale, not just the per-request micro path. Client-
// observed p50/p99 latency and throughput land as custom metrics.
// Responses are shape-checked by the harness; logit accuracy bounds for
// int8 are asserted by internal/serve/precision_test.go.
func BenchmarkServeLoadPrecision(b *testing.B) {
	for _, prec := range []string{"f32", "int8"} {
		b.Run(prec, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunServeLoad(experiment.ServeLoadConfig{
					Tenants:             4,
					Platforms:           100,
					RequestsPerPlatform: 2,
					InferPrecision:      prec,
					Seed:                42,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.InferP50.Microseconds())/1e3, "p50-ms")
				b.ReportMetric(float64(res.InferP99.Microseconds())/1e3, "p99-ms")
				b.ReportMetric(res.InferReqPerSec, "req-per-s")
			}
		})
	}
}
