// Command splitserver runs the central server of the split-learning
// framework over TCP. It owns the model's layers above the cut
// (L2 … Lk in the paper); platforms connect with cmd/splitplatform.
//
// Server and platforms must agree on -arch, -classes, -width, -seed and
// -rounds: both sides derive the same initial weights from the shared
// seed, and the handshake rejects mismatched round/eval schedules.
//
// Example (one server, two platforms, three shells):
//
//	splitserver   -addr :7700 -platforms 2 -rounds 40
//	splitplatform -addr 127.0.0.1:7700 -id 0 -platforms 2 -rounds 40 -evaluator
//	splitplatform -addr 127.0.0.1:7700 -id 1 -platforms 2 -rounds 40
package main

import (
	"flag"
	"fmt"
	"os"

	"medsplit/internal/compress"
	"medsplit/internal/core"
	"medsplit/internal/experiment"
	"medsplit/internal/metrics"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", ":7700", "listen address")
		platforms = flag.Int("platforms", 2, "number of platforms to serve")
		rounds    = flag.Int("rounds", 40, "training rounds")
		arch      = flag.String("arch", "vgg-lite", "model: mlp, vgg-lite, resnet-lite")
		classes   = flag.Int("classes", 10, "label count")
		width     = flag.Int("width", 8, "model width")
		lr        = flag.Float64("lr", 0.05, "server-side learning rate")
		seed      = flag.Uint64("seed", 1, "shared model seed")
		concat    = flag.Bool("concat", false, "concatenated round mode instead of sequential")
		pipeline  = flag.Int("pipeline", 0, "pipelined round mode with the given in-flight depth (0 = off)")
		l1sync    = flag.Int("l1sync", 0, "average platform L1 weights every N rounds (0 = off)")
		evalEvery = flag.Int("evalevery", 10, "evaluation phase every N rounds (0 = off)")
		codec     = flag.String("codec", "raw", "activation codec: raw, f16, int8, topk-<frac>")
		loadPath  = flag.String("load", "", "restore the server half from a checkpoint before training")
		savePath  = flag.String("save", "", "write the server half to a checkpoint after training")
	)
	flag.Parse()

	if err := run(*addr, *platforms, *rounds, *arch, *classes, *width, float32(*lr), *seed, *concat, *pipeline, *l1sync, *evalEvery, *codec, *loadPath, *savePath); err != nil {
		fmt.Fprintln(os.Stderr, "splitserver:", err)
		os.Exit(1)
	}
}

func run(addr string, platforms, rounds int, arch string, classes, width int, lr float32, seed uint64, concat bool, pipeline, l1sync, evalEvery int, codecName, loadPath, savePath string) error {
	m, err := experiment.BuildModel(experiment.Config{
		Arch: experiment.Arch(arch), Classes: classes, Width: width, Seed: seed,
	})
	if err != nil {
		return err
	}
	codec, err := compress.ByName(codecName)
	if err != nil {
		return err
	}
	_, back, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		return err
	}
	if loadPath != "" {
		if err := nn.LoadCheckpointFile(loadPath, back.Params(), nn.CollectState(back)); err != nil {
			return err
		}
		fmt.Printf("splitserver: restored server half from %s\n", loadPath)
	}
	mode := core.RoundModeSequential
	if concat {
		mode = core.RoundModeConcat
	}
	if pipeline > 0 {
		if concat {
			return fmt.Errorf("-concat and -pipeline are mutually exclusive")
		}
		mode = core.RoundModePipelined
	}
	srv, err := core.NewServer(core.ServerConfig{
		Back:          back,
		Opt:           &nn.SGD{LR: lr},
		Platforms:     platforms,
		Rounds:        rounds,
		Mode:          mode,
		PipelineDepth: pipeline,
		ClipGrads:     5,
		L1SyncEvery:   l1sync,
		EvalEvery:     evalEvery,
		Codec:         codec,
	})
	if err != nil {
		return err
	}

	l, err := transport.Listen(addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("splitserver: %s model, %d params server-side, listening on %s for %d platforms\n",
		m.Name, nn.ParamCount(back.Params()), l.Addr(), platforms)

	conns, meter, err := acceptPlatforms(l, platforms)
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	if err := srv.Serve(conns); err != nil {
		return err
	}
	fmt.Printf("splitserver: training complete after %d rounds\n", rounds)
	fmt.Printf("splitserver: training traffic %s (all platforms, both directions)\n",
		metrics.FormatBytes(core.TrainingBytes(meter)))
	if savePath != "" {
		if err := nn.SaveCheckpointFile(savePath, back.Params(), nn.CollectState(back)); err != nil {
			return err
		}
		fmt.Printf("splitserver: saved server half to %s\n", savePath)
	}
	return nil
}

// acceptPlatforms accepts the expected number of connections, reads each
// one's Hello to learn its platform id, and returns the connections in
// id order (with the Hellos pushed back for the protocol handshake).
// All traffic is counted on the returned meter.
func acceptPlatforms(l transport.Listener, platforms int) ([]transport.Conn, *transport.Meter, error) {
	meter := &transport.Meter{}
	conns := make([]transport.Conn, platforms)
	for accepted := 0; accepted < platforms; accepted++ {
		raw, err := l.Accept()
		if err != nil {
			return nil, nil, err
		}
		c := transport.Metered(raw, meter)
		hello, err := c.Recv()
		if err != nil {
			return nil, nil, fmt.Errorf("reading hello: %w", err)
		}
		if hello.Type != wire.MsgHello {
			return nil, nil, fmt.Errorf("first message was %s, want hello", hello.Type)
		}
		id := int(hello.Platform)
		if id < 0 || id >= platforms {
			return nil, nil, fmt.Errorf("platform id %d out of range [0,%d)", id, platforms)
		}
		if conns[id] != nil {
			return nil, nil, fmt.Errorf("platform %d connected twice", id)
		}
		conns[id] = transport.Pushback(c, hello)
		fmt.Printf("splitserver: platform %d connected (%d/%d)\n", id, accepted+1, platforms)
	}
	return conns, meter, nil
}
