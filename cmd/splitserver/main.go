// Command splitserver runs the central server of the split-learning
// framework over TCP. It owns the model's layers above the cut
// (L2 … Lk in the paper); platforms connect with cmd/splitplatform.
//
// Server and platforms must agree on -arch, -classes, -width, -seed and
// -rounds: both sides derive the same initial weights from the shared
// seed, and the handshake rejects mismatched round/eval schedules.
//
// Example (one server, two platforms, three shells):
//
//	splitserver   -addr :7700 -platforms 2 -rounds 40
//	splitplatform -addr 127.0.0.1:7700 -id 0 -platforms 2 -rounds 40 -evaluator
//	splitplatform -addr 127.0.0.1:7700 -id 1 -platforms 2 -rounds 40
//
// Scheduling sits on a consistency spectrum (README "Consistency
// spectrum"). The default sequential mode, -concat and -pipeline N all
// train bit-identically to sequential; -stale K relaxes that to
// bounded staleness (each exchange may miss at most K rounds of the
// other platforms' updates; K=0 keeps the sequential schedule), and
// -splitfed runs platforms local-parallel between -l1sync averaging
// boundaries. The relaxed modes need no platform-side flags: the
// server's processing order alone decides the consistency model.
//
// Long runs survive interruptions: -checkpoint-dir/-checkpoint-every
// write session snapshots at round boundaries, SIGINT/SIGTERM triggers
// a final checkpoint and a clean exit, and -resume continues from a
// snapshot directory. With -rejoin-window the server also keeps
// accepting connections so a platform that lost its link can rejoin
// mid-session instead of killing the job.
//
// The aggregation tier itself can be replicated. The leader appends
// every training step to a write-ahead log and streams it to warm
// standbys before acking, so a leader crash loses nothing:
//
//	splitserver -addr :7800 -standby -wal-dir wal-standby -platforms 2 -rounds 40
//	splitserver -addr :7700 -wal-dir wal-leader -replicate 127.0.0.1:7800 -platforms 2 -rounds 40
//	splitplatform -addr 127.0.0.1:7700 -failover-addrs 127.0.0.1:7800 -rejoin-window 1m ...
//
// If the leader dies, the standby replays its durable log tail,
// promotes into a serving leader at the exact step the leader
// recorded last, and adopts the platforms as they redial — training
// continues bit-identically to an undisturbed run.
//
// With -serve the same binary multiplexes split *inference* instead of
// training: each tenant's back half is served behind a dynamic batcher
// and a shared compute gate, and clients (cmd/splitinfer) run the front
// half locally and ship cut activations:
//
//	splitserver -serve -addr :7900 -tenants "alpha:1,beta:2:ckpt/beta"
//	splitinfer  -addr 127.0.0.1:7900 -tenant alpha -seed 1 -requests 100
//
// A tenant spec's optional fourth field picks the inference precision
// ("alpha:1::int8" serves tenant alpha through the int8 quantized
// path; f32 is the default and bit-identical to prior releases).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"medsplit/internal/compress"
	"medsplit/internal/core"
	"medsplit/internal/experiment"
	"medsplit/internal/metrics"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/transport"
	"medsplit/internal/wal"
	"medsplit/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", ":7700", "listen address")
		platforms  = flag.Int("platforms", 2, "number of platforms to serve")
		rounds     = flag.Int("rounds", 40, "training rounds")
		arch       = flag.String("arch", "vgg-lite", "model: mlp, vgg-lite, resnet-lite")
		classes    = flag.Int("classes", 10, "label count")
		width      = flag.Int("width", 8, "model width")
		lr         = flag.Float64("lr", 0.05, "server-side learning rate")
		seed       = flag.Uint64("seed", 1, "shared model seed")
		concat     = flag.Bool("concat", false, "concatenated round mode instead of sequential")
		pipeline   = flag.Int("pipeline", 0, "pipelined round mode with the given in-flight depth (0 = off)")
		stale      = flag.Int("stale", -1, "bounded-staleness round mode with cap K (-1 = off; 0 = sequential schedule)")
		splitfed   = flag.Bool("splitfed", false, "splitfed local-parallel round mode (requires -l1sync >= 1)")
		l1sync     = flag.Int("l1sync", 0, "average platform L1 weights every N rounds (0 = off)")
		evalEvery  = flag.Int("evalevery", 10, "evaluation phase every N rounds (0 = off)")
		codec      = flag.String("codec", "raw", "activation codec: raw, f16, int8, topk-<frac>")
		loadPath   = flag.String("load", "", "restore the server half from a weights-only checkpoint before training")
		savePath   = flag.String("save", "", "write the server half to a weights-only checkpoint after training")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for session snapshots (full resumable state)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "write a session snapshot every N rounds (requires -checkpoint-dir)")
		resumeDir  = flag.String("resume", "", "resume the session from the snapshots in this directory")
		rejoinWin  = flag.Duration("rejoin-window", 0, "accept platform rejoins for this long after a dropout (0 = off)")
		rejoinWait = flag.Bool("rejoin-wait", true, "block the round for a rejoin (false: proceed without the platform)")
		walDir     = flag.String("wal-dir", "", "write-ahead log directory (required with -replicate and -standby)")
		walSync    = flag.Int("wal-sync", 1, "fsync the WAL every N appends (0 = OS-buffered)")
		replicate  = flag.String("replicate", "", "comma-separated standby addresses to stream replication to (requires -wal-dir)")
		standby    = flag.Bool("standby", false, "run as a warm standby: apply a leader's replication stream, promote if it dies")

		serveMode    = flag.Bool("serve", false, "run as a multi-tenant split-inference server instead of training (see -tenants)")
		tenants      = flag.String("tenants", "", "with -serve: comma-separated name:seed[:checkpoint-dir[:precision]] tenant specs (precision: f32, f16 or int8)")
		batchMax     = flag.Int("batch-max", 8, "with -serve: flush a tenant's batch at this many accumulated rows")
		flushEvery   = flag.Duration("flush-every", 2*time.Millisecond, "with -serve: flush a partial batch after this long")
		computeSlots = flag.Int("compute-slots", 1, "with -serve: concurrent back-half forwards across all tenants")
		maxSessions  = flag.Int("max-sessions", 0, "with -serve: admission cap on concurrent training sessions (0 = default)")
		maxMemory    = flag.Int64("max-memory", 0, "with -serve: admission cap on estimated session bytes (0 = unlimited)")
		queueCap     = flag.Int("queue-cap", 0, "with -serve: per-tenant admission queue depth before shedding (0 = default)")
		ioTimeout    = flag.Duration("io-timeout", 0, "with -serve: per-call read/write deadline on client connections (0 = none)")
	)
	flag.Parse()

	if *serveMode {
		if err := runServe(serveOpts{
			addr: *addr, tenants: *tenants, arch: *arch, classes: *classes, width: *width,
			batchMax: *batchMax, flushEvery: *flushEvery, computeSlots: *computeSlots,
			maxSessions: *maxSessions, maxMemory: *maxMemory,
			queueCap: *queueCap, ioTimeout: *ioTimeout,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "splitserver:", err)
			os.Exit(1)
		}
		return
	}

	opts := serverOpts{
		addr: *addr, platforms: *platforms, rounds: *rounds, arch: *arch,
		classes: *classes, width: *width, lr: float32(*lr), seed: *seed,
		concat: *concat, pipeline: *pipeline, stale: *stale, splitfed: *splitfed,
		l1sync: *l1sync, evalEvery: *evalEvery,
		codec: *codec, loadPath: *loadPath, savePath: *savePath,
		ckptDir: *ckptDir, ckptEvery: *ckptEvery, resumeDir: *resumeDir,
		rejoinWindow: *rejoinWin, rejoinWait: *rejoinWait,
		walDir: *walDir, walSync: *walSync, replicate: *replicate,
	}
	var err error
	if *standby {
		err = runStandby(opts)
	} else {
		err = run(opts)
	}
	if err != nil {
		if errors.Is(err, core.ErrStopped) {
			fmt.Println("splitserver: stopped gracefully:", err)
			return
		}
		fmt.Fprintln(os.Stderr, "splitserver:", err)
		os.Exit(1)
	}
}

type serverOpts struct {
	addr               string
	platforms, rounds  int
	arch               string
	classes, width     int
	lr                 float32
	seed               uint64
	concat             bool
	pipeline           int
	stale              int
	splitfed           bool
	l1sync, evalEvery  int
	codec              string
	loadPath, savePath string
	ckptDir            string
	ckptEvery          int
	resumeDir          string
	rejoinWindow       time.Duration
	rejoinWait         bool
	walDir             string
	walSync            int
	replicate          string
}

// buildBack constructs the model's server half for the configured
// architecture and seed (identical across leader and standbys).
func buildBack(o serverOpts) (*models.Model, *nn.Sequential, error) {
	m, err := experiment.BuildModel(experiment.Config{
		Arch: experiment.Arch(o.arch), Classes: o.classes, Width: o.width, Seed: o.seed,
	})
	if err != nil {
		return nil, nil, err
	}
	_, back, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		return nil, nil, err
	}
	return m, back, nil
}

func run(o serverOpts) error {
	m, back, err := buildBack(o)
	if err != nil {
		return err
	}
	codec, err := compress.ByName(o.codec)
	if err != nil {
		return err
	}
	if o.loadPath != "" {
		if err := nn.LoadCheckpointFile(o.loadPath, back.Params(), nn.CollectState(back)); err != nil {
			return err
		}
		fmt.Printf("splitserver: restored server half from %s\n", o.loadPath)
	}
	startRound := 0
	var snap *core.Snapshot
	if o.resumeDir != "" {
		snap, err = core.LoadLatestSnapshot(o.resumeDir, core.RoleServer, 0)
		if err != nil {
			return err
		}
		startRound = snap.NextRound
		fmt.Printf("splitserver: resuming at round %d from %s\n", startRound, o.resumeDir)
	}
	mode := core.RoundModeSequential
	picked := 0
	if o.concat {
		mode = core.RoundModeConcat
		picked++
	}
	if o.pipeline > 0 {
		mode = core.RoundModePipelined
		picked++
	}
	if o.stale >= 0 {
		mode = core.RoundModeBoundedStaleness
		picked++
	}
	if o.splitfed {
		if o.l1sync < 1 {
			return fmt.Errorf("-splitfed requires -l1sync >= 1 (the averaging period is the staleness cap)")
		}
		mode = core.RoundModeSplitFed
		picked++
	}
	if picked > 1 {
		return fmt.Errorf("-concat, -pipeline, -stale and -splitfed are mutually exclusive")
	}
	staleness := 0
	if o.stale > 0 {
		staleness = o.stale
	}
	scfg := core.ServerConfig{
		Back:            back,
		Opt:             &nn.SGD{LR: o.lr},
		Platforms:       o.platforms,
		Rounds:          o.rounds,
		StartRound:      startRound,
		Mode:            mode,
		PipelineDepth:   o.pipeline,
		Staleness:       staleness,
		ClipGrads:       5,
		L1SyncEvery:     o.l1sync,
		EvalEvery:       o.evalEvery,
		CheckpointEvery: o.ckptEvery,
		CheckpointDir:   o.ckptDir,
		Codec:           codec,
	}
	var broker *core.RejoinBroker
	if o.rejoinWindow > 0 {
		broker = core.NewRejoinBroker()
		defer broker.Close()
		policy := core.WaitForRejoin
		if !o.rejoinWait {
			policy = core.ProceedWithout
		}
		scfg.Recovery = &core.RecoveryConfig{Policy: policy, Window: o.rejoinWindow, Broker: broker}
	}
	if o.replicate != "" {
		if o.walDir == "" {
			return fmt.Errorf("-replicate requires -wal-dir")
		}
		log, werr := wal.Open(o.walDir, wal.Options{SyncEvery: o.walSync})
		if werr != nil {
			return werr
		}
		defer log.Close()
		var followers []transport.Conn
		for _, faddr := range strings.Split(o.replicate, ",") {
			fc, derr := transport.Dial(strings.TrimSpace(faddr))
			if derr != nil {
				return fmt.Errorf("dialing standby %s: %w", faddr, derr)
			}
			defer fc.Close()
			followers = append(followers, fc)
			fmt.Printf("splitserver: replicating to standby %s\n", faddr)
		}
		scfg.Replication = &core.ReplicationConfig{Log: log, Followers: followers}
	}
	srv, err := core.NewServer(scfg)
	if err != nil {
		return err
	}
	if snap != nil {
		if err := srv.RestoreSnapshot(snap); err != nil {
			return err
		}
	}

	l, err := transport.Listen(o.addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("splitserver: %s model, %d params server-side, listening on %s for %d platforms\n",
		m.Name, nn.ParamCount(back.Params()), l.Addr(), o.platforms)

	conns, meter, err := acceptPlatforms(l, o.platforms)
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Keep accepting after the initial handshakes when rejoins are
	// allowed: a reconnecting platform opens a fresh connection whose
	// first frame is a MsgRejoin; the broker routes it to the session.
	// Closing the listener (deferred above) unblocks and ends the loop.
	if broker != nil {
		go func() {
			for {
				raw, err := l.Accept()
				if err != nil {
					return
				}
				go func(c transport.Conn) {
					if err := broker.Offer(transport.Metered(c, meter)); err != nil {
						fmt.Fprintln(os.Stderr, "splitserver: rejected rejoin:", err)
					}
				}(raw)
			}
		}()
	}

	// First SIGINT/SIGTERM: finish the round, write a final checkpoint,
	// close cleanly. Second signal: exit immediately.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		fmt.Println("splitserver: signal received; stopping at the next round boundary (repeat to force quit)")
		srv.Stop()
		<-sigCh
		os.Exit(1)
	}()

	if err := srv.Serve(conns); err != nil {
		return err
	}
	fmt.Printf("splitserver: training complete after %d rounds\n", o.rounds)
	fmt.Printf("splitserver: training traffic %s (all platforms, both directions)\n",
		metrics.FormatBytes(core.TrainingBytes(meter)))
	if o.savePath != "" {
		if err := nn.SaveCheckpointFile(o.savePath, back.Params(), nn.CollectState(back)); err != nil {
			return err
		}
		fmt.Printf("splitserver: saved server half to %s\n", o.savePath)
	}
	return nil
}

// runStandby runs the warm-standby side of the replication tier: it
// accepts the leader's replication stream on -addr, persists every
// record to its own WAL before applying it, and — when the stream ends
// before the session did — promotes into a serving leader, adopting the
// platforms as they redial to this address (splitplatform
// -failover-addrs). Promotion resumes at exactly the step the leader
// recorded last, so training finishes bit-identically.
func runStandby(o serverOpts) error {
	if o.walDir == "" {
		return fmt.Errorf("-standby requires -wal-dir")
	}
	if o.concat || o.pipeline > 1 {
		return fmt.Errorf("-standby supports sequential or depth-1 pipelined sessions")
	}
	_, back, err := buildBack(o)
	if err != nil {
		return err
	}
	codec, err := compress.ByName(o.codec)
	if err != nil {
		return err
	}
	log, err := wal.Open(o.walDir, wal.Options{SyncEvery: o.walSync})
	if err != nil {
		return err
	}
	defer log.Close()
	l, err := transport.Listen(o.addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("splitserver: standby on %s awaiting the leader's replication stream\n", l.Addr())
	stream, err := l.Accept()
	if err != nil {
		return err
	}
	defer stream.Close()
	f, err := core.NewFollower(core.FollowerConfig{Platforms: o.platforms, Conn: stream, Log: log})
	if err != nil {
		return err
	}
	// Platforms that lose the leader redial here; the broker parks
	// their connections for the promotion handshake. Closing the
	// listener (deferred above) ends the loop.
	broker := core.NewRejoinBroker()
	defer broker.Close()
	meter := &transport.Meter{}
	go func() {
		for {
			c, aerr := l.Accept()
			if aerr != nil {
				return
			}
			go func(c transport.Conn) {
				if oerr := broker.Offer(transport.Metered(c, meter)); oerr != nil {
					fmt.Fprintln(os.Stderr, "splitserver: standby rejected rejoin:", oerr)
				}
			}(c)
		}
	}()
	if err := f.Run(); err != nil {
		return fmt.Errorf("standby: %w", err)
	}
	win := o.rejoinWindow
	if win <= 0 {
		win = time.Minute
	}
	fmt.Printf("splitserver: replication stream ended at watermark %d; promoting (waiting up to %v for platforms)\n",
		f.Watermark(), win)
	scfg := core.ServerConfig{
		Back:            back,
		Opt:             &nn.SGD{LR: o.lr},
		Platforms:       o.platforms,
		Rounds:          o.rounds,
		ClipGrads:       5,
		L1SyncEvery:     o.l1sync,
		EvalEvery:       o.evalEvery,
		CheckpointEvery: o.ckptEvery,
		CheckpointDir:   o.ckptDir,
		Codec:           codec,
	}
	promoted, conns, err := f.Promote(core.PromoteConfig{Server: scfg, Broker: broker, Window: win})
	if err != nil {
		return fmt.Errorf("standby: promotion failed (if the leader finished cleanly there was nothing to take over): %w", err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	fmt.Println("splitserver: promoted; finishing the session")
	if err := promoted.Serve(conns); err != nil {
		return err
	}
	fmt.Printf("splitserver: training complete after %d rounds\n", o.rounds)
	fmt.Printf("splitserver: post-failover traffic %s (all platforms, both directions)\n",
		metrics.FormatBytes(core.TrainingBytes(meter)))
	if o.savePath != "" {
		if err := nn.SaveCheckpointFile(o.savePath, back.Params(), nn.CollectState(back)); err != nil {
			return err
		}
		fmt.Printf("splitserver: saved server half to %s\n", o.savePath)
	}
	return nil
}

// acceptPlatforms accepts the expected number of connections, reads each
// one's Hello to learn its platform id, and returns the connections in
// id order (with the Hellos pushed back for the protocol handshake).
// All traffic is counted on the returned meter.
func acceptPlatforms(l transport.Listener, platforms int) ([]transport.Conn, *transport.Meter, error) {
	meter := &transport.Meter{}
	conns := make([]transport.Conn, platforms)
	for accepted := 0; accepted < platforms; accepted++ {
		raw, err := l.Accept()
		if err != nil {
			return nil, nil, err
		}
		c := transport.Metered(raw, meter)
		hello, err := c.Recv()
		if err != nil {
			return nil, nil, fmt.Errorf("reading hello: %w", err)
		}
		if hello.Type != wire.MsgHello {
			return nil, nil, fmt.Errorf("first message was %s, want hello", hello.Type)
		}
		id := int(hello.Platform)
		if id < 0 || id >= platforms {
			return nil, nil, fmt.Errorf("platform id %d out of range [0,%d)", id, platforms)
		}
		if conns[id] != nil {
			return nil, nil, fmt.Errorf("platform %d connected twice", id)
		}
		conns[id] = transport.Pushback(c, hello)
		fmt.Printf("splitserver: platform %d connected (%d/%d)\n", id, accepted+1, platforms)
	}
	return conns, meter, nil
}
