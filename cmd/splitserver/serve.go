package main

import (
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/serve"
	"medsplit/internal/transport"
)

// serveOpts configures -serve mode: one process multiplexing split
// inference for many tenants (see internal/serve).
type serveOpts struct {
	addr         string
	tenants      string
	arch         string
	classes      int
	width        int
	batchMax     int
	flushEvery   time.Duration
	computeSlots int
	maxSessions  int
	maxMemory    int64
	queueCap     int
	ioTimeout    time.Duration
}

// parseTenants decodes the -tenants spec: comma-separated
// "name:seed[:checkpoint-dir[:precision]]" entries, where precision is
// f32 (default), f16 or int8 and selects the numeric format the
// tenant's inference traffic is served at (see
// serve.TenantConfig.InferPrecision). Every tenant shares the
// process-wide -arch/-classes/-width; the seed determines its initial
// weights and the optional directory is scanned for newer checkpoint
// generations on demand.
func parseTenants(spec string, o serveOpts) ([]serve.TenantConfig, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-serve requires -tenants (e.g. \"alpha:1,beta:2:ckpt/beta\")")
	}
	var out []serve.TenantConfig
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(entry), ":", 4)
		if len(parts) < 2 || parts[0] == "" {
			return nil, fmt.Errorf("tenant entry %q: want name:seed[:checkpoint-dir[:precision]]", entry)
		}
		seed, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tenant entry %q: bad seed: %w", entry, err)
		}
		dir, precision := "", ""
		if len(parts) >= 3 {
			dir = parts[2]
		}
		if len(parts) == 4 {
			precision = parts[3]
		}
		name := parts[0]
		out = append(out, serve.TenantConfig{
			Name: name,
			BuildBack: func() (*nn.Sequential, error) {
				m, err := buildTenantModel(o, seed)
				if err != nil {
					return nil, err
				}
				_, back, err := models.Split(m.Net, m.DefaultCut)
				return back, err
			},
			CheckpointDir:  dir,
			InferPrecision: precision,
		})
	}
	return out, nil
}

// buildTenantModel builds a tenant's full model from the shared
// architecture flags and its own seed — the same derivation
// cmd/splitinfer uses for the front half, so the cut halves agree.
func buildTenantModel(o serveOpts, seed uint64) (*models.Model, error) {
	m, _, err := buildBack(serverOpts{arch: o.arch, classes: o.classes, width: o.width, seed: seed})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// runServe listens for inference clients and serves every tenant from
// one process. SIGINT/SIGTERM drains: stop accepting, flush in-flight
// batches, exit.
func runServe(o serveOpts) error {
	tenants, err := parseTenants(o.tenants, o)
	if err != nil {
		return err
	}
	m, err := serve.NewManager(serve.Config{
		Tenants:        tenants,
		MaxSessions:    o.maxSessions,
		MaxMemoryBytes: o.maxMemory,
		ComputeSlots:   o.computeSlots,
	})
	if err != nil {
		return err
	}
	defer m.Close()
	is, err := serve.NewInferenceServer(m, serve.InferConfig{
		BatchMax:   o.batchMax,
		FlushEvery: o.flushEvery,
		QueueCap:   o.queueCap,
	})
	if err != nil {
		return err
	}

	// An -io-timeout bounds how long a dead or wedged client can hold
	// this process's reader/writer; idle-but-healthy clients must send
	// something (even a health probe) within the window.
	l, err := transport.ListenOpts(o.addr, transport.TCPOptions{
		ReadTimeout:  o.ioTimeout,
		WriteTimeout: o.ioTimeout,
	})
	if err != nil {
		return err
	}
	names := make([]string, len(tenants))
	for i, t := range tenants {
		names[i] = t.Name
	}
	fmt.Printf("splitserver: serving split inference on %s for tenants %s (batch<=%d, flush %v, %d compute slot(s))\n",
		l.Addr(), strings.Join(names, ","), o.batchMax, o.flushEvery, o.computeSlots)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		fmt.Println("splitserver: signal received; draining inference connections")
		l.Close()
	}()

	var wg sync.WaitGroup
	for {
		c, aerr := l.Accept()
		if aerr != nil {
			break // listener closed by the signal handler
		}
		wg.Add(1)
		go func(c transport.Conn) {
			defer wg.Done()
			defer c.Close()
			if herr := is.HandleConn(c); herr != nil {
				fmt.Fprintln(os.Stderr, "splitserver: connection ended:", herr)
			}
		}(c)
	}
	wg.Wait()
	is.Close()
	st := is.Stats()
	fmt.Printf("splitserver: served %d request(s) in %d batch(es), %d rejected (%d shed, %d expired)\n",
		st.Requests, st.Batches, st.Rejected, st.Shed, st.Expired)
	return nil
}
