// Command figures regenerates every evaluation artifact of the paper:
//
//	figures -fig 4            Fig. 4, measured on the trainable lite models
//	figures -fig 4-analytic   Fig. 4, analytic at paper scale (VGG-16/ResNet-18)
//	figures -fig imbalance    the §II data-imbalance mitigation ablation
//	figures -fig cut-sweep    communication vs cut depth (why L1?)
//	figures -fig trace        the Fig. 2/3 four-message workflow, traced live
//	figures -fig all          everything (default)
//
// Add -quick for a smaller, faster measured configuration, and -csv to
// emit CSV instead of aligned tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"medsplit/internal/commmodel"
	"medsplit/internal/core"
	"medsplit/internal/dataset"
	"medsplit/internal/experiment"
	"medsplit/internal/geonet"
	"medsplit/internal/metrics"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/wire"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4, 4-analytic, imbalance, cut-sweep, trace, wan, all")
	quick := flag.Bool("quick", false, "smaller measured configurations (seconds instead of minutes)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Uint64("seed", 1, "experiment seed")
	flag.Parse()

	if err := run(*fig, *quick, *csv, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(fig string, quick, csv bool, seed uint64) error {
	emit := func(t *metrics.Table) {
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	switch fig {
	case "4":
		return fig4Measured(quick, seed, emit)
	case "4-analytic":
		return fig4Analytic(emit)
	case "imbalance":
		return imbalance(quick, seed, emit)
	case "cut-sweep":
		return cutSweep(emit)
	case "trace":
		return trace(seed)
	case "wan":
		return wan(quick, seed, emit)
	case "all":
		if err := trace(seed); err != nil {
			return err
		}
		if err := fig4Analytic(emit); err != nil {
			return err
		}
		if err := cutSweep(emit); err != nil {
			return err
		}
		if err := fig4Measured(quick, seed, emit); err != nil {
			return err
		}
		if err := wan(quick, seed, emit); err != nil {
			return err
		}
		return imbalance(quick, seed, emit)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

// measuredConfig is the shared Fig. 4 workload at the two scales.
func measuredConfig(arch experiment.Arch, classes int, quick bool, seed uint64) experiment.Config {
	cfg := experiment.Config{
		Arch:         arch,
		Classes:      classes,
		Platforms:    4,
		Seed:         seed,
		TrainSamples: 1200,
		TestSamples:  300,
		Rounds:       80,
		TotalBatch:   32,
		EvalEvery:    16,
	}
	if quick {
		cfg.TrainSamples = 320
		cfg.TestSamples = 80
		cfg.Rounds = 24
		cfg.EvalEvery = 8
		cfg.Width = 4
	}
	return cfg
}

func fig4Measured(quick bool, seed uint64, emit func(*metrics.Table)) error {
	fmt.Println("=== Fig. 4 (measured, scaled-down trainable models) ===")
	fmt.Println("Byte counts are measured on metered transports; accuracy on a held-out set.")
	fmt.Println()
	for _, arch := range []experiment.Arch{experiment.ArchVGG, experiment.ArchResNet} {
		for _, classes := range []int{10, 100} {
			cfg := measuredConfig(arch, classes, quick, seed)
			cmp, err := experiment.Fig4Measured(cfg)
			if err != nil {
				return err
			}
			emit(cmp.Table())
			emit(experiment.CurveTable(cmp.Results...))
		}
	}
	return nil
}

func fig4Analytic(emit func(*metrics.Table)) error {
	fmt.Println("=== Fig. 4 (analytic, paper-scale VGG-16 / ResNet-18) ===")
	fmt.Println("Exact wire-format byte counts from architecture shapes; 4 platforms,")
	fmt.Println("batch 64, one epoch over a 50k-sample CIFAR-sized corpus.")
	fmt.Println("Paper reports (total GB, accuracy): VGG split 0.8GB@95% vs SGD 2GB@55%;")
	fmt.Println("ResNet split 0.5GB@75% vs SGD 1.5GB@10% — i.e. ratios of 2.5x and 3.0x.")
	fmt.Println()
	cfg := commmodel.Fig4Config{Platforms: 4, Batch: 64, DatasetSize: 50000, Epochs: 1}
	emit(commmodel.Fig4Table(cfg, commmodel.Fig4Analytic(cfg)))
	return nil
}

func imbalance(quick bool, seed uint64, emit func(*metrics.Table)) error {
	fmt.Println("=== Data-imbalance mitigation (paper §II) ===")
	fmt.Println("Power-law shard sizes; uniform vs proportional per-platform minibatches.")
	fmt.Println()
	cfg := measuredConfig(experiment.ArchVGG, 10, quick, seed)
	cfg.Sharding = experiment.ShardingPowerLaw
	cfg.Alpha = 1.5
	out, err := experiment.Imbalance(cfg)
	if err != nil {
		return err
	}
	emit(out.Table())
	return nil
}

func cutSweep(emit func(*metrics.Table)) error {
	fmt.Println("=== Cut-depth sweep (why cut after L1?) ===")
	fmt.Println("Per-round split traffic for every feasible cut of VGG-16 (4 platforms,")
	fmt.Println("batch 64). The paper's first-hidden-layer cut maximizes privacy (least")
	fmt.Println("platform-side model) at the highest communication point; deeper cuts")
	fmt.Println("trade privacy perimeter for wire volume.")
	fmt.Println()
	spec := models.VGG16Spec(10)
	batches := []int{64, 64, 64, 64}
	rows := commmodel.CutSweep(spec, 10, batches)
	t := &metrics.Table{
		Title:   "VGG-16 cut sweep",
		Headers: []string{"cut after", "act/sample", "bytes/round (4 platforms)"},
	}
	for _, r := range rows {
		t.AddRow(r.LayerName, fmt.Sprintf("%d", r.ActPerSamp), metrics.FormatBytes(r.SplitBytes))
	}
	emit(t)
	return nil
}

// wan estimates round wall-clock over the geo-distributed hospital
// topology for both schemes — the deployment question the paper's title
// poses and its future work (Seoul National University Hospital)
// implies.
func wan(quick bool, seed uint64, emit func(*metrics.Table)) error {
	fmt.Println("=== Geo-distributed wall-clock (WAN model) ===")
	fmt.Println("Per-round transfer time over the hospital topology (latency + bandwidth),")
	fmt.Println("barriered on the slowest site. Byte counts are the measured per-round traffic.")
	fmt.Println()
	topo := geonet.DefaultHospitalTopology()
	regions := []geonet.Region{"snuh-seoul", "pusan-nat-univ", "chungang-univ", "ucf-orlando"}
	cfg := measuredConfig(experiment.ArchVGG, 10, quick, seed)
	cfg.Platforms = len(regions)
	cfg.Topology = topo
	cfg.Regions = regions
	split, err := experiment.RunSplit(cfg)
	if err != nil {
		return err
	}
	sgd, err := experiment.RunSyncSGD(cfg)
	if err != nil {
		return err
	}
	t := &metrics.Table{
		Title:   "WAN round time (4 hospitals incl. one intercontinental)",
		Headers: []string{"scheme", "bytes total", "round time", "total wall-clock"},
	}
	for _, r := range []*experiment.Result{split, sgd} {
		t.AddRow(r.Scheme,
			metrics.FormatBytes(r.TrainingBytes),
			r.RoundTime.String(),
			r.Curve.Final().SimTime.String())
	}
	emit(t)
	return nil
}

// trace reproduces Fig. 2/3: it runs one real training round with a
// single platform and prints the observed message workflow.
func trace(seed uint64) error {
	fmt.Println("=== Fig. 2/3: protocol workflow (live trace) ===")
	train, _ := dataset.SynthCIFAR(dataset.SynthConfig{Classes: 4, Train: 32, Test: 8, Seed: seed})
	flat := &dataset.Dataset{
		X:       train.X.Reshape(train.Len(), train.X.Size()/train.Len()),
		Labels:  train.Labels,
		Classes: train.Classes,
	}
	m := models.MLP(flat.X.Dim(1), []int{32}, 4, rng.New(seed))
	front, back, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		return err
	}
	var rec core.Recorder
	srv, err := core.NewServer(core.ServerConfig{
		Back: back, Opt: &nn.SGD{LR: 0.05}, Platforms: 1, Rounds: 2, Trace: rec.Record,
	})
	if err != nil {
		return err
	}
	plat, err := core.NewPlatform(core.PlatformConfig{
		ID: 0, Front: front, Opt: &nn.SGD{LR: 0.05}, Loss: nn.SoftmaxCrossEntropy{},
		Shard: flat, Batch: 8, Rounds: 2, Seed: seed, Trace: rec.Record,
	})
	if err != nil {
		return err
	}
	if _, err := core.RunLocal(srv, []*core.Platform{plat}); err != nil {
		return err
	}
	step := map[wire.MsgType]string{
		wire.MsgActivations: "(1) L1 forward results, platform -> server",
		wire.MsgLogits:      "(2) Lk output, server -> platform",
		wire.MsgLossGrad:    "(3) loss gradients, platform -> server",
		wire.MsgCutGrad:     "(4) L2-input gradients, server -> platform",
	}
	for _, e := range rec.Events() {
		if e.Dir != "recv" {
			continue // each exchange appears once, at its receiver
		}
		if note, ok := step[e.Type]; ok {
			fmt.Printf("round %d  %-16s %6d bytes   %s\n", e.Round, e.Type, e.Bytes, note)
		}
	}
	fmt.Println()
	return nil
}
