package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"
)

// metricKeys returns the sorted union of the metric names on both sides
// of a comparison.
func metricKeys(a, b map[string]float64) []string {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	keys := make([]string, 0, len(a)+len(b))
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, dup := a[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// compareOpts configures the regression gate.
type compareOpts struct {
	// threshold is the relative slowdown tolerated before a metric is a
	// regression: 0.15 means new values up to 15% above the baseline
	// pass.
	threshold float64
	// skipNS drops ns/op from the comparison. CI runners have noisy
	// clocks, so the CI gate compares allocs/op only (deterministic for
	// a given code path) and leaves wall-clock gating to bench-save runs
	// on pinned hardware.
	skipNS bool
	// allocSlack is an absolute allocs/op grace on top of the relative
	// threshold: tiny baselines (3 allocs/op) would otherwise flag a
	// single extra allocation as a 33% regression.
	allocSlack int64
	// inflate multiplies every new-side value before comparing. CI runs
	// a self-check with inflate=2 against the baseline itself to prove
	// the gate actually fails on a 2× regression. Gated custom metrics
	// are higher-is-better, so inflate divides them instead — the same
	// self-check run proves that gate direction too.
	inflate float64
	// gateMetrics names custom metrics (GFLOPS, Gops, …) to gate as
	// higher-is-better: the new value failing below baseline/(1+threshold)
	// is a regression. Unnamed custom metrics are always reported but
	// never gate — wall-clock-derived throughput is as noisy as ns/op,
	// so opting metrics in is a per-invocation decision like -skip-ns.
	gateMetrics []string
}

// regression is one metric that worsened past the gate.
type regression struct {
	name   string
	metric string
	oldVal float64
	newVal float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s: %s %.6g -> %.6g (%+.1f%%)",
		r.name, r.metric, r.oldVal, r.newVal, 100*(r.newVal/r.oldVal-1))
}

// readBenchFile decodes a committed BENCH_*.json document.
func readBenchFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in file", path)
	}
	return &f, nil
}

// readNewResults loads the new side of a comparison: a BENCH_*.json
// file when newPath is set, otherwise raw `go test -bench` output
// parsed from r (so CI can pipe the bench run straight in).
func readNewResults(newPath string, r io.Reader) (*File, error) {
	if newPath != "" {
		return readBenchFile(newPath)
	}
	f, err := parseBenchOutput(r)
	if err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on stdin")
	}
	return f, nil
}

// compareFiles gates newF against oldF. The returned report lines cover
// every benchmark present on both sides; regressions lists the metrics
// that worsened past the gate. Benchmarks present on only one side are
// reported but never fail the gate — baselines grow one PR at a time.
func compareFiles(oldF, newF *File, o compareOpts, warn io.Writer) (report []string, regressions []regression, err error) {
	if o.inflate == 0 {
		o.inflate = 1
	}
	if oldF.GOMAXPROCS != newF.GOMAXPROCS && newF.GOMAXPROCS != 0 {
		fmt.Fprintf(warn, "benchjson: warning: baseline gomaxprocs=%d but new run gomaxprocs=%d; ns/op is not comparable across parallelism (use -skip-ns)\n",
			oldF.GOMAXPROCS, newF.GOMAXPROCS)
	}
	if oldF.GoVersion != newF.GoVersion && newF.GoVersion != "" {
		fmt.Fprintf(warn, "benchjson: warning: baseline built with %s, new run with %s\n",
			oldF.GoVersion, newF.GoVersion)
	}

	oldIdx := make(map[string]Result, len(oldF.Benchmarks))
	for _, b := range oldF.Benchmarks {
		oldIdx[b.Name] = b
	}
	matched := 0
	for _, nb := range newF.Benchmarks {
		ob, ok := oldIdx[nb.Name]
		if !ok {
			report = append(report, fmt.Sprintf("%s: new benchmark, no baseline", nb.Name))
			continue
		}
		matched++
		delete(oldIdx, nb.Name)

		if !o.skipNS && ob.NsPerOp > 0 {
			newNs := nb.NsPerOp * o.inflate
			report = append(report, fmt.Sprintf("%s: ns/op %.6g -> %.6g (%+.1f%%)",
				nb.Name, ob.NsPerOp, newNs, 100*(newNs/ob.NsPerOp-1)))
			if newNs > ob.NsPerOp*(1+o.threshold) {
				regressions = append(regressions, regression{nb.Name, "ns/op", ob.NsPerOp, newNs})
			}
		}
		newAllocs := float64(nb.AllocsPerOp) * o.inflate
		oldAllocs := float64(ob.AllocsPerOp)
		if oldAllocs > 0 || newAllocs > 0 {
			report = append(report, fmt.Sprintf("%s: allocs/op %g -> %g",
				nb.Name, oldAllocs, newAllocs))
			if newAllocs > oldAllocs*(1+o.threshold) && newAllocs-oldAllocs > float64(o.allocSlack) {
				regressions = append(regressions, regression{nb.Name, "allocs/op", oldAllocs, newAllocs})
			}
		}
		// Custom metrics (b.ReportMetric units: GFLOPS, wire-bytes, …)
		// are always surfaced; those named in gateMetrics additionally
		// gate as higher-is-better.
		for _, k := range metricKeys(ob.Metrics, nb.Metrics) {
			ov, inOld := ob.Metrics[k]
			nv, inNew := nb.Metrics[k]
			switch {
			case !inOld:
				report = append(report, fmt.Sprintf("%s: %s %.6g (no baseline)", nb.Name, k, nv))
			case !inNew:
				report = append(report, fmt.Sprintf("%s: %s %.6g in baseline but not in new run", nb.Name, k, ov))
			default:
				gated := slices.Contains(o.gateMetrics, k)
				if gated {
					nv /= o.inflate
				}
				report = append(report, fmt.Sprintf("%s: %s %.6g -> %.6g (%+.1f%%)",
					nb.Name, k, ov, nv, 100*(nv/ov-1)))
				if gated && nv < ov/(1+o.threshold) {
					regressions = append(regressions, regression{nb.Name, k, ov, nv})
				}
			}
		}
	}
	if matched == 0 {
		return report, nil, fmt.Errorf("no benchmark names overlap between baseline and new run; check the bench pattern")
	}
	// Baseline entries the new run never produced: a renamed or deleted
	// benchmark silently losing coverage is worth a loud line.
	var missing []string
	for name := range oldIdx {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		report = append(report, fmt.Sprintf("%s: in baseline but not in new run", name))
	}
	return report, regressions, nil
}

// runCompare is the -compare entry point. Exit status: 0 when every
// matched metric is within threshold, 1 on regression or usage error.
func runCompare(comparePath, newPath string, o compareOpts) int {
	oldF, err := readBenchFile(comparePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	newF, err := readNewResults(newPath, os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	report, regs, err := compareFiles(oldF, newF, o, os.Stderr)
	for _, line := range report {
		fmt.Println(line)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% vs %s:\n",
			len(regs), 100*o.threshold, comparePath)
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "  "+r.String())
		}
		return 1
	}
	fmt.Printf("benchjson: %s: within %.0f%% of baseline\n", comparePath, 100*o.threshold)
	return 0
}
