package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchFile(names []string, ns []float64, allocs []int64) *File {
	f := &File{Schema: "medsplit-bench-v1", GoVersion: "go1.24.0", GOMAXPROCS: 1}
	for i, n := range names {
		f.Benchmarks = append(f.Benchmarks, Result{Name: n, Iterations: 1, NsPerOp: ns[i], AllocsPerOp: allocs[i]})
	}
	return f
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	old := benchFile([]string{"BenchmarkA", "BenchmarkB"}, []float64{1000, 2000}, []int64{10, 20})
	cur := benchFile([]string{"BenchmarkA", "BenchmarkB"}, []float64{1100, 1900}, []int64{11, 20})
	report, regs, err := compareFiles(old, cur, compareOpts{threshold: 0.15, allocSlack: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions %v on a within-threshold run", regs)
	}
	if len(report) == 0 {
		t.Fatal("empty report")
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	old := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{10})
	cur := benchFile([]string{"BenchmarkA"}, []float64{1200}, []int64{10})
	_, regs, err := compareFiles(old, cur, compareOpts{threshold: 0.15, allocSlack: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].metric != "ns/op" {
		t.Fatalf("regs = %v, want one ns/op regression", regs)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	old := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{10})
	cur := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{15})
	_, regs, err := compareFiles(old, cur, compareOpts{threshold: 0.15, allocSlack: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].metric != "allocs/op" {
		t.Fatalf("regs = %v, want one allocs/op regression", regs)
	}
}

// The absolute slack mutes relative blowups on tiny baselines: 3 -> 4
// allocs is +33% but only one allocation.
func TestCompareAllocSlackAbsorbsTinyBaselines(t *testing.T) {
	old := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{3})
	cur := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{4})
	_, regs, err := compareFiles(old, cur, compareOpts{threshold: 0.15, allocSlack: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regs = %v, want slack to absorb +1 alloc", regs)
	}
}

func TestCompareSkipNS(t *testing.T) {
	old := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{10})
	cur := benchFile([]string{"BenchmarkA"}, []float64{5000}, []int64{10})
	_, regs, err := compareFiles(old, cur, compareOpts{threshold: 0.15, skipNS: true, allocSlack: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regs = %v, want -skip-ns to ignore the 5x slowdown", regs)
	}
}

// The CI self-check: comparing a baseline against itself inflated 2x
// must fail, proving the gate is live.
func TestCompareSelfCheckInflateTrips(t *testing.T) {
	old := benchFile([]string{"BenchmarkA", "BenchmarkB"}, []float64{1000, 2000}, []int64{10, 20})
	_, regs, err := compareFiles(old, old, compareOpts{threshold: 0.15, allocSlack: 2, inflate: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) < 2 {
		t.Fatalf("regs = %v, want 2x inflation to trip every benchmark", regs)
	}
}

func TestCompareNoOverlapErrors(t *testing.T) {
	old := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{10})
	cur := benchFile([]string{"BenchmarkZ"}, []float64{1000}, []int64{10})
	if _, _, err := compareFiles(old, cur, compareOpts{threshold: 0.15}, os.Stderr); err == nil {
		t.Fatal("disjoint benchmark sets compared without error")
	}
}

// Every committed baseline must load: the gate is only as good as its
// inputs, and BENCH_tensor.json carries the legacy string-typed notes.
func TestCommittedBaselinesLoad(t *testing.T) {
	for _, name := range []string{"BENCH_tensor.json", "BENCH_wire.json", "BENCH_simnet.json", "BENCH_wal.json"} {
		f, err := readBenchFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(f.Benchmarks) == 0 {
			t.Fatalf("%s: empty", name)
		}
	}
}

func TestNoteListDecodesStringAndArray(t *testing.T) {
	var f File
	if err := json.Unmarshal([]byte(`{"notes": "one"}`), &f); err != nil || len(f.Notes) != 1 {
		t.Fatalf("string notes: %v %v", f.Notes, err)
	}
	if err := json.Unmarshal([]byte(`{"notes": ["a", "b"]}`), &f); err != nil || len(f.Notes) != 2 {
		t.Fatalf("array notes: %v %v", f.Notes, err)
	}
}

func TestReadNewResultsParsesBenchOutput(t *testing.T) {
	in := strings.NewReader("goos: linux\nBenchmarkA-4   100   1234 ns/op   56 B/op   7 allocs/op\nPASS\n")
	f, err := readNewResults("", in)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkA" || f.Benchmarks[0].AllocsPerOp != 7 {
		t.Fatalf("parsed %+v", f.Benchmarks)
	}
}

// withMetric attaches a custom metric value to the named benchmark.
func withMetric(f *File, name, key string, v float64) *File {
	for i := range f.Benchmarks {
		if f.Benchmarks[i].Name == name {
			if f.Benchmarks[i].Metrics == nil {
				f.Benchmarks[i].Metrics = map[string]float64{}
			}
			f.Benchmarks[i].Metrics[key] = v
		}
	}
	return f
}

// Custom metrics always show up in the report, gated or not.
func TestCompareSurfacesCustomMetrics(t *testing.T) {
	old := withMetric(benchFile([]string{"BenchmarkGemm"}, []float64{1000}, []int64{0}), "BenchmarkGemm", "GFLOPS", 7.3)
	cur := withMetric(benchFile([]string{"BenchmarkGemm"}, []float64{900}, []int64{0}), "BenchmarkGemm", "GFLOPS", 24.3)
	report, regs, err := compareFiles(old, cur, compareOpts{threshold: 0.15}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("ungated metric regressed: %v", regs)
	}
	found := false
	for _, line := range report {
		if strings.Contains(line, "GFLOPS") && strings.Contains(line, "7.3") && strings.Contains(line, "24.3") {
			found = true
		}
	}
	if !found {
		t.Fatalf("GFLOPS delta not surfaced in report:\n%s", strings.Join(report, "\n"))
	}
}

// A gated metric fails the gate when it drops past the threshold
// (higher is better), and passes when it improves.
func TestCompareGatedMetricFlagsDrop(t *testing.T) {
	old := withMetric(benchFile([]string{"BenchmarkGemm"}, []float64{1000}, []int64{0}), "BenchmarkGemm", "GFLOPS", 24.0)
	drop := withMetric(benchFile([]string{"BenchmarkGemm"}, []float64{1000}, []int64{0}), "BenchmarkGemm", "GFLOPS", 12.0)
	_, regs, err := compareFiles(old, drop, compareOpts{threshold: 0.15, gateMetrics: []string{"GFLOPS"}}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].metric != "GFLOPS" {
		t.Fatalf("regs = %v, want one GFLOPS regression", regs)
	}

	up := withMetric(benchFile([]string{"BenchmarkGemm"}, []float64{1000}, []int64{0}), "BenchmarkGemm", "GFLOPS", 30.0)
	_, regs, err = compareFiles(old, up, compareOpts{threshold: 0.15, gateMetrics: []string{"GFLOPS"}}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

// The selfcheck inflate factor must trip a gated higher-is-better
// metric too (it divides instead of multiplies).
func TestCompareGatedMetricSelfCheckTrips(t *testing.T) {
	old := withMetric(benchFile([]string{"BenchmarkGemm"}, []float64{1000}, []int64{0}), "BenchmarkGemm", "GFLOPS", 24.0)
	same := withMetric(benchFile([]string{"BenchmarkGemm"}, []float64{1000}, []int64{0}), "BenchmarkGemm", "GFLOPS", 24.0)
	_, regs, err := compareFiles(old, same, compareOpts{threshold: 0.15, inflate: 2, skipNS: true, gateMetrics: []string{"GFLOPS"}}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("selfcheck inflate did not trip the metric gate: %v", regs)
	}
}
