package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchFile(names []string, ns []float64, allocs []int64) *File {
	f := &File{Schema: "medsplit-bench-v1", GoVersion: "go1.24.0", GOMAXPROCS: 1}
	for i, n := range names {
		f.Benchmarks = append(f.Benchmarks, Result{Name: n, Iterations: 1, NsPerOp: ns[i], AllocsPerOp: allocs[i]})
	}
	return f
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	old := benchFile([]string{"BenchmarkA", "BenchmarkB"}, []float64{1000, 2000}, []int64{10, 20})
	cur := benchFile([]string{"BenchmarkA", "BenchmarkB"}, []float64{1100, 1900}, []int64{11, 20})
	report, regs, err := compareFiles(old, cur, compareOpts{threshold: 0.15, allocSlack: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions %v on a within-threshold run", regs)
	}
	if len(report) == 0 {
		t.Fatal("empty report")
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	old := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{10})
	cur := benchFile([]string{"BenchmarkA"}, []float64{1200}, []int64{10})
	_, regs, err := compareFiles(old, cur, compareOpts{threshold: 0.15, allocSlack: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].metric != "ns/op" {
		t.Fatalf("regs = %v, want one ns/op regression", regs)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	old := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{10})
	cur := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{15})
	_, regs, err := compareFiles(old, cur, compareOpts{threshold: 0.15, allocSlack: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].metric != "allocs/op" {
		t.Fatalf("regs = %v, want one allocs/op regression", regs)
	}
}

// The absolute slack mutes relative blowups on tiny baselines: 3 -> 4
// allocs is +33% but only one allocation.
func TestCompareAllocSlackAbsorbsTinyBaselines(t *testing.T) {
	old := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{3})
	cur := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{4})
	_, regs, err := compareFiles(old, cur, compareOpts{threshold: 0.15, allocSlack: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regs = %v, want slack to absorb +1 alloc", regs)
	}
}

func TestCompareSkipNS(t *testing.T) {
	old := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{10})
	cur := benchFile([]string{"BenchmarkA"}, []float64{5000}, []int64{10})
	_, regs, err := compareFiles(old, cur, compareOpts{threshold: 0.15, skipNS: true, allocSlack: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regs = %v, want -skip-ns to ignore the 5x slowdown", regs)
	}
}

// The CI self-check: comparing a baseline against itself inflated 2x
// must fail, proving the gate is live.
func TestCompareSelfCheckInflateTrips(t *testing.T) {
	old := benchFile([]string{"BenchmarkA", "BenchmarkB"}, []float64{1000, 2000}, []int64{10, 20})
	_, regs, err := compareFiles(old, old, compareOpts{threshold: 0.15, allocSlack: 2, inflate: 2}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) < 2 {
		t.Fatalf("regs = %v, want 2x inflation to trip every benchmark", regs)
	}
}

func TestCompareNoOverlapErrors(t *testing.T) {
	old := benchFile([]string{"BenchmarkA"}, []float64{1000}, []int64{10})
	cur := benchFile([]string{"BenchmarkZ"}, []float64{1000}, []int64{10})
	if _, _, err := compareFiles(old, cur, compareOpts{threshold: 0.15}, os.Stderr); err == nil {
		t.Fatal("disjoint benchmark sets compared without error")
	}
}

// Every committed baseline must load: the gate is only as good as its
// inputs, and BENCH_tensor.json carries the legacy string-typed notes.
func TestCommittedBaselinesLoad(t *testing.T) {
	for _, name := range []string{"BENCH_tensor.json", "BENCH_wire.json", "BENCH_simnet.json", "BENCH_wal.json"} {
		f, err := readBenchFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(f.Benchmarks) == 0 {
			t.Fatalf("%s: empty", name)
		}
	}
}

func TestNoteListDecodesStringAndArray(t *testing.T) {
	var f File
	if err := json.Unmarshal([]byte(`{"notes": "one"}`), &f); err != nil || len(f.Notes) != 1 {
		t.Fatalf("string notes: %v %v", f.Notes, err)
	}
	if err := json.Unmarshal([]byte(`{"notes": ["a", "b"]}`), &f); err != nil || len(f.Notes) != 2 {
		t.Fatalf("array notes: %v %v", f.Notes, err)
	}
}

func TestReadNewResultsParsesBenchOutput(t *testing.T) {
	in := strings.NewReader("goos: linux\nBenchmarkA-4   100   1234 ns/op   56 B/op   7 allocs/op\nPASS\n")
	f, err := readNewResults("", in)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkA" || f.Benchmarks[0].AllocsPerOp != 7 {
		t.Fatalf("parsed %+v", f.Benchmarks)
	}
}
