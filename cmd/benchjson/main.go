// Command benchjson converts `go test -bench` output on stdin into the
// BENCH_*.json format the repo commits as its performance baseline
// (see README.md, "Performance methodology"). Usage:
//
//	go test -bench . -benchmem ./internal/tensor/ | go run ./cmd/benchjson
//
// Lines that are not benchmark results are ignored, so the full test
// output can be piped through unmodified.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line. Custom metrics (GFLOPS, wire-bytes, …)
// land in Metrics keyed by their unit string.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the committed JSON document.
type File struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Notes      noteList `json:"notes,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// noteList encodes as a JSON array but decodes either an array or a
// bare string: the oldest committed baseline (BENCH_tensor.json)
// predates the repeatable -note flag and stores a single string.
type noteList []string

func (n *noteList) UnmarshalJSON(data []byte) error {
	var one string
	if err := json.Unmarshal(data, &one); err == nil {
		*n = noteList{one}
		return nil
	}
	var many []string
	if err := json.Unmarshal(data, &many); err != nil {
		return err
	}
	*n = noteList(many)
	return nil
}

// notesFlag collects repeated -note flags.
type notesFlag []string

func (n *notesFlag) String() string { return strings.Join(*n, "; ") }

func (n *notesFlag) Set(v string) error {
	*n = append(*n, v)
	return nil
}

func main() {
	var notes notesFlag
	flag.Var(&notes, "note", "free-form note recorded in the JSON header (repeatable); use it to pin the baseline a benchmark run is compared against")
	comparePath := flag.String("compare", "", "committed BENCH_*.json baseline to gate against; with this flag benchjson compares instead of converting, exiting 1 on regression")
	newPath := flag.String("new", "", "with -compare: read the new side from this BENCH_*.json file instead of parsing bench output on stdin")
	threshold := flag.Float64("threshold", 0.15, "with -compare: relative worsening tolerated per metric before the gate fails")
	skipNS := flag.Bool("skip-ns", false, "with -compare: ignore ns/op and gate on allocs/op only (use on CI runners with noisy clocks)")
	allocSlack := flag.Int64("alloc-slack", 2, "with -compare: absolute allocs/op grace on top of -threshold")
	inflate := flag.Float64("selfcheck-inflate", 1, "with -compare: multiply new-side values by this factor; CI uses 2 against the baseline itself to prove the gate trips")
	var gateMetrics notesFlag
	flag.Var(&gateMetrics, "metric", "with -compare: gate the named custom metric as higher-is-better (repeatable; e.g. -metric GFLOPS); unnamed metrics are reported but never gate")
	flag.Parse()

	if *comparePath != "" {
		os.Exit(runCompare(*comparePath, *newPath, compareOpts{
			threshold:   *threshold,
			skipNS:      *skipNS,
			allocSlack:  *allocSlack,
			inflate:     *inflate,
			gateMetrics: gateMetrics,
		}))
	}

	out, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out.Notes = noteList(notes)
	// Zero parsed results means the input was not `go test -bench`
	// output at all (or the bench run itself failed): fail loudly so CI
	// smoke jobs catch a broken pipeline instead of committing an empty
	// baseline.
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchOutput scans `go test -bench` text into a File stamped with
// this process's environment.
func parseBenchOutput(r io.Reader) (*File, error) {
	out := &File{
		Schema:     "medsplit-bench-v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			out.Benchmarks = append(out.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// stripCPUSuffix removes the trailing "-<N>" GOMAXPROCS marker from a
// benchmark name. The bench may have run under any -cpu setting or on
// another machine, so any trailing digit run after a dash is stripped
// rather than this process's own GOMAXPROCS value.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// parseLine decodes one "BenchmarkX-8  100  123 ns/op  45 B/op ..." line.
// The value/unit pairs after the iteration count alternate, so the
// parser walks them two fields at a time.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       stripCPUSuffix(fields[0]),
		Iterations: iters,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		case "MB/s":
			// Throughput from b.SetBytes; not tracked in the baseline.
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
