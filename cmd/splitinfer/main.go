// Command splitinfer is the client side of the serving tier: it runs a
// tenant's front half locally, ships cut activations to a splitserver
// running in -serve mode, and reports per-request latency percentiles.
//
// Client and server must agree on -arch, -classes, -width and the
// tenant's seed — both sides derive the full model from the seed and
// split it at the same cut, so the halves compose into exactly the
// model a single process would run.
//
//	splitserver -serve -addr :7900 -tenants "alpha:1"
//	splitinfer  -addr 127.0.0.1:7900 -tenant alpha -seed 1 -requests 100
//
// The client is overload- and failure-aware: -timeout bounds each
// request, -retries retries retryable rejections and timeouts with
// jittered exponential backoff, -hedge-after launches a duplicate
// attempt when a response is slow, and -addrs rotates across replica
// addresses on redial. A request that exhausts its budget is counted
// and reported, not fatal — the run continues to the next request.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"medsplit/internal/experiment"
	"medsplit/internal/models"
	"medsplit/internal/rng"
	"medsplit/internal/serve"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7900", "splitserver -serve address")
		addrs    = flag.String("addrs", "", "comma-separated replica addresses; redials rotate across them (overrides -addr)")
		tenant   = flag.String("tenant", "", "tenant name to request (required)")
		id       = flag.Uint("id", 1, "client id echoed in request frames")
		arch     = flag.String("arch", "vgg-lite", "model: mlp, vgg-lite, resnet-lite")
		classes  = flag.Int("classes", 10, "label count")
		width    = flag.Int("width", 8, "model width")
		seed     = flag.Uint64("seed", 1, "tenant model seed (must match the server's -tenants entry)")
		gen      = flag.Uint("generation", 0, "pin requests to this checkpoint generation (0 = serve whatever is warm)")
		requests = flag.Int("requests", 16, "number of inference requests to send")
		rows     = flag.Int("rows", 1, "rows per request")
		dataSeed = flag.Uint64("data-seed", 7, "seed for the synthetic request data")

		timeout    = flag.Duration("timeout", 0, "per-request deadline, enforced locally and shipped to the server (0 = none)")
		retries    = flag.Int("retries", 1, "attempts per request; >1 retries retryable errors with jittered backoff")
		backoff    = flag.Duration("backoff", time.Millisecond, "base backoff between attempts (doubles per retry, jittered)")
		hedgeAfter = flag.Duration("hedge-after", 0, "launch a duplicate attempt after this long without a response (0 = off)")
		retrySeed  = flag.Uint64("retry-seed", 1, "seed for the backoff jitter (deterministic retry schedules)")
		ioTimeout  = flag.Duration("io-timeout", 0, "read/write deadline per socket call (0 = none)")
	)
	flag.Parse()
	cfg := inferOpts{
		addrs: splitAddrs(*addrs, *addr), tenant: *tenant, id: uint32(*id),
		arch: *arch, classes: *classes, width: *width, seed: *seed,
		gen: uint32(*gen), requests: *requests, rows: *rows, dataSeed: *dataSeed,
		timeout: *timeout, retries: *retries, backoff: *backoff,
		hedgeAfter: *hedgeAfter, retrySeed: *retrySeed, ioTimeout: *ioTimeout,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "splitinfer:", err)
		os.Exit(1)
	}
}

type inferOpts struct {
	addrs          []string
	tenant         string
	id             uint32
	arch           string
	classes, width int
	seed           uint64
	gen            uint32
	requests, rows int
	dataSeed       uint64

	timeout    time.Duration
	retries    int
	backoff    time.Duration
	hedgeAfter time.Duration
	retrySeed  uint64
	ioTimeout  time.Duration
}

// splitAddrs resolves the target list: -addrs wins when set, else the
// single -addr.
func splitAddrs(list, single string) []string {
	if strings.TrimSpace(list) == "" {
		return []string{single}
	}
	var out []string
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func run(o inferOpts) error {
	if o.tenant == "" {
		return fmt.Errorf("-tenant is required")
	}
	if o.requests <= 0 || o.rows <= 0 {
		return fmt.Errorf("-requests and -rows must be positive")
	}
	if len(o.addrs) == 0 {
		return fmt.Errorf("no server address")
	}
	m, err := experiment.BuildModel(experiment.Config{
		Arch: experiment.Arch(o.arch), Classes: o.classes, Width: o.width, Seed: o.seed,
	})
	if err != nil {
		return err
	}
	front, _, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		return err
	}
	tcpOpts := transport.TCPOptions{ReadTimeout: o.ioTimeout, WriteTimeout: o.ioTimeout}
	conn, err := transport.DialOpts(o.addrs[0], tcpOpts)
	if err != nil {
		return err
	}
	client := serve.NewClient(conn, front, o.tenant, o.id)
	defer client.Close()
	if o.gen != 0 {
		client.SetGeneration(o.gen)
	}
	if o.timeout > 0 || o.retries > 1 || o.hedgeAfter > 0 {
		client.SetPolicy(serve.RetryPolicy{
			Timeout:     o.timeout,
			MaxAttempts: o.retries,
			Backoff:     o.backoff,
			HedgeAfter:  o.hedgeAfter,
			Seed:        o.retrySeed,
		})
	}
	// Failover rotation: each redial tries the next address in the
	// list, wrapping around, so a dead replica is skipped after one
	// attempt rather than pinning the client forever.
	next := 1
	client.SetRedial(func() (transport.Conn, error) {
		a := o.addrs[next%len(o.addrs)]
		next++
		c, derr := transport.DialOpts(a, tcpOpts)
		if derr != nil {
			return nil, derr
		}
		fmt.Printf("splitinfer: failed over to %s\n", a)
		return c, nil
	})

	shape := append([]int{o.rows}, m.InputShape...)
	x := tensor.New(shape...)
	r := rng.New(o.dataSeed)
	data := x.Data()

	latencies := make([]time.Duration, 0, o.requests)
	errCounts := map[string]int{}
	failed := 0
	var lastLogits *tensor.Tensor
	start := time.Now()
	for i := 0; i < o.requests; i++ {
		for j := range data {
			data[j] = r.NormFloat32()
		}
		t0 := time.Now()
		y, ierr := client.Infer(x)
		if ierr != nil {
			// Per-request failures are part of the report, not fatal:
			// an overloaded or flaky server must not abort the run.
			failed++
			errCounts[errLabel(ierr)]++
			fmt.Fprintf(os.Stderr, "splitinfer: request %d failed: %v\n", i+1, ierr)
			continue
		}
		latencies = append(latencies, time.Since(t0))
		lastLogits = y
	}
	elapsed := time.Since(start)

	st := client.Stats()
	fmt.Printf("splitinfer: %s/%s: %d/%d requests ok (%d failed) x %d rows, req/s=%.1f\n",
		o.tenant, m.Name, len(latencies), o.requests, failed, o.rows,
		float64(o.requests)/elapsed.Seconds())
	fmt.Printf("splitinfer: attempts=%d retries=%d hedges=%d redials=%d timeouts=%d rejected-remote=%d\n",
		st.Attempts, st.Retries, st.Hedges, st.Redials, st.Timeouts, st.Remote)
	if len(errCounts) > 0 {
		keys := make([]string, 0, len(errCounts))
		for k := range errCounts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("splitinfer: errors: %s x%d\n", k, errCounts[k])
		}
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		p := func(q int) time.Duration { return latencies[(len(latencies)-1)*q/100] }
		fmt.Printf("splitinfer: p50=%v p99=%v\n", p(50), p(99))
	}
	if lastLogits != nil {
		fmt.Printf("splitinfer: last logits argmax per row: %v\n", argmaxRows(lastLogits))
	}
	if failed == o.requests {
		return fmt.Errorf("all %d requests failed", o.requests)
	}
	return nil
}

// errLabel buckets a request error for the end-of-run tally: remote
// rejections by their wire error code, everything else by failure kind.
func errLabel(err error) string {
	var re *serve.RemoteError
	if errors.As(err, &re) {
		return re.Code.String()
	}
	if errors.Is(err, serve.ErrAttemptTimeout) {
		return "timeout"
	}
	return "transport"
}

// argmaxRows reports the predicted class per row of a logits tensor —
// a quick sanity signal that the halves composed into a real model.
func argmaxRows(logits *tensor.Tensor) []int {
	rows, cols := logits.Dim(0), logits.Dim(1)
	data := logits.Data()
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best := 0
		for c := 1; c < cols; c++ {
			if data[r*cols+c] > data[r*cols+best] {
				best = c
			}
		}
		out[r] = best
	}
	return out
}
