// Command splitinfer is the client side of the serving tier: it runs a
// tenant's front half locally, ships cut activations to a splitserver
// running in -serve mode, and reports per-request latency percentiles.
//
// Client and server must agree on -arch, -classes, -width and the
// tenant's seed — both sides derive the full model from the seed and
// split it at the same cut, so the halves compose into exactly the
// model a single process would run.
//
//	splitserver -serve -addr :7900 -tenants "alpha:1"
//	splitinfer  -addr 127.0.0.1:7900 -tenant alpha -seed 1 -requests 100
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"medsplit/internal/experiment"
	"medsplit/internal/models"
	"medsplit/internal/rng"
	"medsplit/internal/serve"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7900", "splitserver -serve address")
		tenant   = flag.String("tenant", "", "tenant name to request (required)")
		id       = flag.Uint("id", 1, "client id echoed in request frames")
		arch     = flag.String("arch", "vgg-lite", "model: mlp, vgg-lite, resnet-lite")
		classes  = flag.Int("classes", 10, "label count")
		width    = flag.Int("width", 8, "model width")
		seed     = flag.Uint64("seed", 1, "tenant model seed (must match the server's -tenants entry)")
		gen      = flag.Uint("generation", 0, "pin requests to this checkpoint generation (0 = serve whatever is warm)")
		requests = flag.Int("requests", 16, "number of inference requests to send")
		rows     = flag.Int("rows", 1, "rows per request")
		dataSeed = flag.Uint64("data-seed", 7, "seed for the synthetic request data")
	)
	flag.Parse()
	if err := run(*addr, *tenant, uint32(*id), *arch, *classes, *width, *seed,
		uint32(*gen), *requests, *rows, *dataSeed); err != nil {
		fmt.Fprintln(os.Stderr, "splitinfer:", err)
		os.Exit(1)
	}
}

func run(addr, tenant string, id uint32, arch string, classes, width int, seed uint64,
	gen uint32, requests, rows int, dataSeed uint64) error {
	if tenant == "" {
		return fmt.Errorf("-tenant is required")
	}
	if requests <= 0 || rows <= 0 {
		return fmt.Errorf("-requests and -rows must be positive")
	}
	m, err := experiment.BuildModel(experiment.Config{
		Arch: experiment.Arch(arch), Classes: classes, Width: width, Seed: seed,
	})
	if err != nil {
		return err
	}
	front, _, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		return err
	}
	conn, err := transport.Dial(addr)
	if err != nil {
		return err
	}
	client := serve.NewClient(conn, front, tenant, id)
	defer client.Close()
	if gen != 0 {
		client.SetGeneration(gen)
	}

	shape := append([]int{rows}, m.InputShape...)
	x := tensor.New(shape...)
	r := rng.New(dataSeed)
	data := x.Data()

	latencies := make([]time.Duration, 0, requests)
	var lastLogits *tensor.Tensor
	start := time.Now()
	for i := 0; i < requests; i++ {
		for j := range data {
			data[j] = r.NormFloat32()
		}
		t0 := time.Now()
		y, ierr := client.Infer(x)
		if ierr != nil {
			return fmt.Errorf("request %d: %w", i+1, ierr)
		}
		latencies = append(latencies, time.Since(t0))
		lastLogits = y
	}
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p := func(q int) time.Duration { return latencies[(len(latencies)-1)*q/100] }
	fmt.Printf("splitinfer: %s/%s: %d requests x %d rows: p50=%v p99=%v req/s=%.1f\n",
		tenant, m.Name, requests, rows, p(50), p(99),
		float64(requests)/elapsed.Seconds())
	fmt.Printf("splitinfer: last logits argmax per row: %v\n", argmaxRows(lastLogits))
	return nil
}

// argmaxRows reports the predicted class per row of a logits tensor —
// a quick sanity signal that the halves composed into a real model.
func argmaxRows(logits *tensor.Tensor) []int {
	rows, cols := logits.Dim(0), logits.Dim(1)
	data := logits.Data()
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best := 0
		for c := 1; c < cols; c++ {
			if data[r*cols+c] > data[r*cols+best] {
				best = c
			}
		}
		out[r] = best
	}
	return out
}
