// Command splitplatform runs one medical platform (hospital) of the
// split-learning framework over TCP. It owns the raw local data shard
// and the model's first hidden layer L1; raw samples and labels never
// leave the process.
//
// All platforms and the server must share -arch, -classes, -width,
// -seed, -rounds and the eval schedule; the data corpus and shard
// assignment are derived deterministically from the shared seed, so
// every process independently computes the same shards. Exactly one
// platform should pass -evaluator when -evalevery is non-zero.
package main

import (
	"flag"
	"fmt"
	"os"

	"medsplit/internal/compress"
	"medsplit/internal/core"
	"medsplit/internal/experiment"
	"medsplit/internal/metrics"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "server address")
		id        = flag.Int("id", 0, "platform id (0-based)")
		platforms = flag.Int("platforms", 2, "total number of platforms (for data sharding)")
		rounds    = flag.Int("rounds", 40, "training rounds")
		arch      = flag.String("arch", "vgg-lite", "model: mlp, vgg-lite, resnet-lite")
		classes   = flag.Int("classes", 10, "label count")
		width     = flag.Int("width", 8, "model width")
		train     = flag.Int("train", 1200, "total training samples (pre-sharding)")
		test      = flag.Int("test", 300, "test samples (evaluator only)")
		lr        = flag.Float64("lr", 0.05, "platform-side learning rate")
		seed      = flag.Uint64("seed", 1, "shared experiment seed")
		sharding  = flag.String("sharding", "iid", "data split: iid, powerlaw, dirichlet")
		alpha     = flag.Float64("alpha", 1.2, "power-law/Dirichlet skew")
		prop      = flag.Bool("proportional", false, "proportional minibatch sizing (paper's imbalance fix)")
		batch     = flag.Int("totalbatch", 32, "total per-round batch budget across platforms")
		l1sync    = flag.Int("l1sync", 0, "L1 weight sync every N rounds (must match server)")
		evalEvery = flag.Int("evalevery", 10, "eval every N rounds (must match server)")
		evaluator = flag.Bool("evaluator", false, "this platform measures test accuracy")
		codec     = flag.String("codec", "raw", "activation codec: raw, f16, int8, topk-<frac> (must match server)")
		loadPath  = flag.String("load", "", "restore the L1 half from a checkpoint before training")
		savePath  = flag.String("save", "", "write the L1 half to a checkpoint after training")
	)
	flag.Parse()

	cfg := experiment.Config{
		Arch:         experiment.Arch(*arch),
		Classes:      *classes,
		Width:        *width,
		TrainSamples: *train,
		TestSamples:  *test,
		Platforms:    *platforms,
		TotalBatch:   *batch,
		Proportional: *prop,
		Sharding:     experiment.Sharding(*sharding),
		Alpha:        *alpha,
		Seed:         *seed,
	}
	if err := run(cfg, *addr, *id, *rounds, float32(*lr), *l1sync, *evalEvery, *evaluator, *codec, *loadPath, *savePath); err != nil {
		fmt.Fprintln(os.Stderr, "splitplatform:", err)
		os.Exit(1)
	}
}

func run(cfg experiment.Config, addr string, id, rounds int, lr float32, l1sync, evalEvery int, evaluator bool, codecName, loadPath, savePath string) error {
	if id < 0 || id >= cfg.Platforms {
		return fmt.Errorf("platform id %d out of range [0,%d)", id, cfg.Platforms)
	}
	codec, err := compress.ByName(codecName)
	if err != nil {
		return err
	}
	shards, test, batches, err := experiment.BuildData(cfg)
	if err != nil {
		return err
	}
	m, err := experiment.BuildModel(cfg)
	if err != nil {
		return err
	}
	front, _, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		return err
	}
	if loadPath != "" {
		if err := nn.LoadCheckpointFile(loadPath, front.Params(), nn.CollectState(front)); err != nil {
			return err
		}
		fmt.Printf("splitplatform %d: restored L1 from %s\n", id, loadPath)
	}
	// A second front instance lets the platform overlap its L1 backward
	// with the next batch's forward when the server advertises pipelined
	// scheduling at depth >= 2 (splitserver -pipeline N). Inert in every
	// other mode, and NewPlatform re-copies weights/state from Front, so
	// providing it unconditionally is safe.
	m2, err := experiment.BuildModel(cfg)
	if err != nil {
		return err
	}
	shadow, _, err := models.Split(m2.Net, m2.DefaultCut)
	if err != nil {
		return err
	}

	meter := &transport.Meter{}
	pc := core.PlatformConfig{
		ID:          id,
		Front:       front,
		ShadowFront: shadow,
		Opt:         &nn.SGD{LR: lr},
		Loss:        nn.SoftmaxCrossEntropy{},
		Shard:       shards[id],
		Batch:       batches[id],
		Rounds:      rounds,
		ClipGrads:   5,
		L1SyncEvery: l1sync,
		EvalEvery:   evalEvery,
		Seed:        cfg.Seed + uint64(1000+id),
		Codec:       codec,
		Meter:       meter,
	}
	if evaluator {
		pc.EvalData = test
	}
	plat, err := core.NewPlatform(pc)
	if err != nil {
		return err
	}

	conn, err := transport.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("splitplatform %d: %d local samples, batch %d, connected to %s\n",
		id, shards[id].Len(), batches[id], addr)

	stats, err := plat.Run(transport.Metered(conn, meter))
	if err != nil {
		return err
	}
	fmt.Printf("splitplatform %d: %d rounds, final loss %.4f, training traffic %s\n",
		id, len(stats.Rounds), stats.FinalLoss(), metrics.FormatBytes(core.TrainingBytes(meter)))
	for _, ev := range stats.Evals {
		if ev.Accuracy >= 0 {
			fmt.Printf("splitplatform %d: round %d test accuracy %.1f%%\n", id, ev.Round, 100*ev.Accuracy)
		}
	}
	if savePath != "" {
		if err := nn.SaveCheckpointFile(savePath, front.Params(), nn.CollectState(front)); err != nil {
			return err
		}
		fmt.Printf("splitplatform %d: saved L1 to %s\n", id, savePath)
	}
	return nil
}
