// Command splitplatform runs one medical platform (hospital) of the
// split-learning framework over TCP. It owns the raw local data shard
// and the model's first hidden layer L1; raw samples and labels never
// leave the process.
//
// All platforms and the server must share -arch, -classes, -width,
// -seed, -rounds and the eval schedule; the data corpus and shard
// assignment are derived deterministically from the shared seed, so
// every process independently computes the same shards. Exactly one
// platform should pass -evaluator when -evalevery is non-zero.
//
// The server's round mode (-concat, -pipeline, -stale, -splitfed on
// splitserver) needs no matching flag here: the platform always walks
// its session in order and blocks on the server's replies, so the
// server's processing order alone decides the consistency model. The
// handshake ack tells the platform which mode it landed in.
//
// Long runs survive interruptions: -checkpoint-dir/-checkpoint-every
// write session snapshots at round boundaries (plus a last-boundary
// snapshot if the session dies mid-round), SIGINT/SIGTERM triggers a
// final checkpoint and a clean exit, -resume continues from a snapshot
// directory, and -rejoin-window lets the platform redial and rejoin a
// recovery-enabled server after a connection drop.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"medsplit/internal/compress"
	"medsplit/internal/core"
	"medsplit/internal/experiment"
	"medsplit/internal/metrics"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "server address")
		id        = flag.Int("id", 0, "platform id (0-based)")
		platforms = flag.Int("platforms", 2, "total number of platforms (for data sharding)")
		rounds    = flag.Int("rounds", 40, "training rounds")
		arch      = flag.String("arch", "vgg-lite", "model: mlp, vgg-lite, resnet-lite")
		classes   = flag.Int("classes", 10, "label count")
		width     = flag.Int("width", 8, "model width")
		train     = flag.Int("train", 1200, "total training samples (pre-sharding)")
		test      = flag.Int("test", 300, "test samples (evaluator only)")
		lr        = flag.Float64("lr", 0.05, "platform-side learning rate")
		seed      = flag.Uint64("seed", 1, "shared experiment seed")
		sharding  = flag.String("sharding", "iid", "data split: iid, powerlaw, dirichlet")
		alpha     = flag.Float64("alpha", 1.2, "power-law/Dirichlet skew")
		prop      = flag.Bool("proportional", false, "proportional minibatch sizing (paper's imbalance fix)")
		batch     = flag.Int("totalbatch", 32, "total per-round batch budget across platforms")
		l1sync    = flag.Int("l1sync", 0, "L1 weight sync every N rounds (must match server)")
		evalEvery = flag.Int("evalevery", 10, "eval every N rounds (must match server)")
		evaluator = flag.Bool("evaluator", false, "this platform measures test accuracy")
		codec     = flag.String("codec", "raw", "activation codec: raw, f16, int8, topk-<frac> (must match server)")
		loadPath  = flag.String("load", "", "restore the L1 half from a weights-only checkpoint before training")
		savePath  = flag.String("save", "", "write the L1 half to a weights-only checkpoint after training")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for session snapshots (full resumable state)")
		ckptEvery = flag.Int("checkpoint-every", 0, "write a session snapshot every N rounds (requires -checkpoint-dir)")
		resumeDir = flag.String("resume", "", "resume the session from the snapshots in this directory")
		rejoinWin = flag.Duration("rejoin-window", 0, "redial and rejoin for this long after a connection drop (0 = off)")
		failover  = flag.String("failover-addrs", "", "comma-separated standby server addresses to also try when redialing (requires -rejoin-window)")
	)
	flag.Parse()

	cfg := experiment.Config{
		Arch:         experiment.Arch(*arch),
		Classes:      *classes,
		Width:        *width,
		TrainSamples: *train,
		TestSamples:  *test,
		Platforms:    *platforms,
		TotalBatch:   *batch,
		Proportional: *prop,
		Sharding:     experiment.Sharding(*sharding),
		Alpha:        *alpha,
		Seed:         *seed,
	}
	err := run(cfg, platformOpts{
		addr: *addr, id: *id, rounds: *rounds, lr: float32(*lr),
		l1sync: *l1sync, evalEvery: *evalEvery, evaluator: *evaluator,
		codec: *codec, loadPath: *loadPath, savePath: *savePath,
		ckptDir: *ckptDir, ckptEvery: *ckptEvery, resumeDir: *resumeDir,
		rejoinWindow: *rejoinWin, failoverAddrs: *failover,
	})
	if err != nil {
		if errors.Is(err, core.ErrStopped) {
			fmt.Printf("splitplatform %d: stopped gracefully: %v\n", *id, err)
			return
		}
		fmt.Fprintln(os.Stderr, "splitplatform:", err)
		os.Exit(1)
	}
}

type platformOpts struct {
	addr               string
	id, rounds         int
	lr                 float32
	l1sync, evalEvery  int
	evaluator          bool
	codec              string
	loadPath, savePath string
	ckptDir            string
	ckptEvery          int
	resumeDir          string
	rejoinWindow       time.Duration
	failoverAddrs      string
}

func run(cfg experiment.Config, o platformOpts) error {
	if o.id < 0 || o.id >= cfg.Platforms {
		return fmt.Errorf("platform id %d out of range [0,%d)", o.id, cfg.Platforms)
	}
	codec, err := compress.ByName(o.codec)
	if err != nil {
		return err
	}
	shards, test, batches, err := experiment.BuildData(cfg)
	if err != nil {
		return err
	}
	m, err := experiment.BuildModel(cfg)
	if err != nil {
		return err
	}
	front, _, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		return err
	}
	if o.loadPath != "" {
		if err := nn.LoadCheckpointFile(o.loadPath, front.Params(), nn.CollectState(front)); err != nil {
			return err
		}
		fmt.Printf("splitplatform %d: restored L1 from %s\n", o.id, o.loadPath)
	}
	startRound := 0
	var snap *core.Snapshot
	if o.resumeDir != "" {
		snap, err = core.LoadLatestSnapshot(o.resumeDir, core.RolePlatform, o.id)
		if err != nil {
			return err
		}
		startRound = snap.NextRound
		fmt.Printf("splitplatform %d: resuming at round %d from %s\n", o.id, startRound, o.resumeDir)
	}
	// A second front instance lets the platform overlap its L1 backward
	// with the next batch's forward when the server advertises pipelined
	// scheduling at depth >= 2 (splitserver -pipeline N). Inert in every
	// other mode, and NewPlatform re-copies weights/state from Front, so
	// providing it unconditionally is safe.
	m2, err := experiment.BuildModel(cfg)
	if err != nil {
		return err
	}
	shadow, _, err := models.Split(m2.Net, m2.DefaultCut)
	if err != nil {
		return err
	}

	meter := &transport.Meter{}
	pc := core.PlatformConfig{
		ID:              o.id,
		Front:           front,
		ShadowFront:     shadow,
		Opt:             &nn.SGD{LR: o.lr},
		Loss:            nn.SoftmaxCrossEntropy{},
		Shard:           shards[o.id],
		Batch:           batches[o.id],
		Rounds:          o.rounds,
		StartRound:      startRound,
		ClipGrads:       5,
		L1SyncEvery:     o.l1sync,
		EvalEvery:       o.evalEvery,
		CheckpointEvery: o.ckptEvery,
		CheckpointDir:   o.ckptDir,
		Seed:            cfg.Seed + uint64(1000+o.id),
		Codec:           codec,
		Meter:           meter,
	}
	if o.evaluator {
		pc.EvalData = test
	}
	if o.failoverAddrs != "" && o.rejoinWindow <= 0 {
		return fmt.Errorf("-failover-addrs requires -rejoin-window")
	}
	if o.rejoinWindow > 0 {
		// Redial attempts rotate through the primary address and every
		// standby: after a leader crash the primary refuses, and the
		// next attempt reaches the promoted standby. Redial is called
		// from the single rejoin loop, so the counter needs no lock.
		addrs := []string{o.addr}
		if o.failoverAddrs != "" {
			for _, a := range strings.Split(o.failoverAddrs, ",") {
				addrs = append(addrs, strings.TrimSpace(a))
			}
		}
		attempt := 0
		pc.RejoinWindow = o.rejoinWindow
		pc.Redial = func() (transport.Conn, error) {
			target := addrs[attempt%len(addrs)]
			attempt++
			c, err := transport.Dial(target)
			if err != nil {
				return nil, err
			}
			return transport.Metered(c, meter), nil
		}
	}
	plat, err := core.NewPlatform(pc)
	if err != nil {
		return err
	}
	if snap != nil {
		if err := plat.RestoreSnapshot(snap); err != nil {
			return err
		}
	}

	conn, err := transport.Dial(o.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("splitplatform %d: %d local samples, batch %d, connected to %s\n",
		o.id, shards[o.id].Len(), batches[o.id], o.addr)

	// First SIGINT/SIGTERM: finish the round, write a final checkpoint,
	// close cleanly. Second signal: exit immediately.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		fmt.Printf("splitplatform %d: signal received; stopping at the next round boundary (repeat to force quit)\n", o.id)
		plat.Stop()
		<-sigCh
		os.Exit(1)
	}()

	stats, err := plat.Run(transport.Metered(conn, meter))
	if err != nil {
		return err
	}
	fmt.Printf("splitplatform %d: %d rounds, final loss %.4f, training traffic %s\n",
		o.id, len(stats.Rounds), stats.FinalLoss(), metrics.FormatBytes(core.TrainingBytes(meter)))
	for _, ev := range stats.Evals {
		if ev.Accuracy >= 0 {
			fmt.Printf("splitplatform %d: round %d test accuracy %.1f%%\n", o.id, ev.Round, 100*ev.Accuracy)
		}
	}
	if o.savePath != "" {
		if err := nn.SaveCheckpointFile(o.savePath, front.Params(), nn.CollectState(front)); err != nil {
			return err
		}
		fmt.Printf("splitplatform %d: saved L1 to %s\n", o.id, o.savePath)
	}
	return nil
}
