// Package medsplit's root benchmark suite regenerates the paper's
// evaluation artifacts under `go test -bench`:
//
//	BenchmarkFig4Measured   Fig. 4 on the trainable lite models (4 configs)
//	BenchmarkFig4Analytic   Fig. 4 at paper scale from exact shape math
//	BenchmarkImbalance      the §II proportional-minibatch ablation
//	BenchmarkCutDepth       communication vs cut depth (why L1?)
//	BenchmarkLabelSharing   4-message label-private vs 2-message sharing
//	BenchmarkRoundModes     sequential vs concatenated server scheduling
//	BenchmarkCompression    activation codecs: raw / f16 / int8 / top-k
//	BenchmarkSplitRound     one protocol round, end to end over pipes
//
// Every training benchmark reports wire bytes and final accuracy as
// custom metrics alongside wall time, so the figure data appears in the
// standard benchmark output.
package medsplit

import (
	"fmt"
	"testing"

	"medsplit/internal/commmodel"
	"medsplit/internal/experiment"
)

// figCfg is the shared measured-figure configuration: big enough to
// show the communication/accuracy separation, small enough for a
// single-core benchmark run.
func figCfg(arch experiment.Arch, classes int) experiment.Config {
	cfg := experiment.Config{
		Arch:         arch,
		Classes:      classes,
		Width:        4,
		TrainSamples: 320,
		TestSamples:  80,
		Platforms:    4,
		Rounds:       24,
		TotalBatch:   32,
		EvalEvery:    8,
		Seed:         1,
	}
	if classes >= 100 {
		// 100-way classification needs more samples per class and more
		// rounds to clear chance level (1%).
		cfg.TrainSamples = 1000
		cfg.TestSamples = 200
		cfg.Rounds = 48
		cfg.EvalEvery = 16
	}
	return cfg
}

func reportRun(b *testing.B, res *experiment.Result) {
	b.Helper()
	b.ReportMetric(float64(res.TrainingBytes), "wire-bytes")
	b.ReportMetric(100*res.FinalAccuracy, "final-acc-%")
}

// BenchmarkFig4Measured regenerates the measured Fig. 4: each
// sub-benchmark is one {model}×{dataset} bar pair, reporting bytes and
// accuracy for the split framework and the sync-SGD baseline.
func BenchmarkFig4Measured(b *testing.B) {
	for _, arch := range []experiment.Arch{experiment.ArchVGG, experiment.ArchResNet} {
		for _, classes := range []int{10, 100} {
			name := fmt.Sprintf("%s_CIFAR%d", arch, classes)
			b.Run(name+"/split", func(b *testing.B) {
				var last *experiment.Result
				for i := 0; i < b.N; i++ {
					res, err := experiment.RunSplit(figCfg(arch, classes))
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				reportRun(b, last)
			})
			b.Run(name+"/syncsgd", func(b *testing.B) {
				var last *experiment.Result
				for i := 0; i < b.N; i++ {
					res, err := experiment.RunSyncSGD(figCfg(arch, classes))
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				reportRun(b, last)
			})
		}
	}
}

// BenchmarkFig4Analytic regenerates the paper-scale Fig. 4 numbers from
// exact shape arithmetic (VGG-16/ResNet-18, 4 platforms, batch 64, one
// CIFAR epoch) and reports the split and SGD gigabyte totals.
func BenchmarkFig4Analytic(b *testing.B) {
	cfg := commmodel.Fig4Config{Platforms: 4, Batch: 64, DatasetSize: 50000, Epochs: 1}
	var rows []commmodel.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = commmodel.Fig4Analytic(cfg)
	}
	for _, r := range rows {
		prefix := fmt.Sprintf("%s-%s", r.Model, r.Dataset)
		b.ReportMetric(float64(r.SplitBytes)/1e9, prefix+"-split-GB")
		b.ReportMetric(float64(r.SGDBytes)/1e9, prefix+"-sgd-GB")
	}
}

// BenchmarkImbalance runs the §II ablation: power-law imbalanced shards
// trained with uniform vs proportional minibatch allocation.
func BenchmarkImbalance(b *testing.B) {
	base := figCfg(experiment.ArchVGG, 10)
	base.Sharding = experiment.ShardingPowerLaw
	base.Alpha = 1.5
	for _, arm := range []struct {
		name         string
		proportional bool
	}{
		{"uniform", false},
		{"proportional", true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			cfg := base
			cfg.Proportional = arm.proportional
			var last *experiment.Result
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunSplit(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkCutDepth sweeps the split point through the VGG-lite stack.
// The paper cuts after the first hidden layer (index 3: conv1+relu+pool);
// deeper cuts shrink the wire but enlarge the platform-side model.
func BenchmarkCutDepth(b *testing.B) {
	// Layer indices in VGGLite: 3 = after stage 1 (the paper's choice),
	// 6 = after stage 2, 9 = after stage 3, 11 = mid-head.
	for _, cut := range []int{3, 6, 9, 11} {
		b.Run(fmt.Sprintf("cut=%d", cut), func(b *testing.B) {
			cfg := figCfg(experiment.ArchVGG, 10)
			cfg.Cut = cut
			var last *experiment.Result
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunSplit(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkLabelSharing quantifies the byte cost of label privacy: the
// paper's 4-message exchange vs the 2-message variant that ships labels.
func BenchmarkLabelSharing(b *testing.B) {
	for _, arm := range []struct {
		name    string
		sharing bool
	}{
		{"label-private-4msg", false},
		{"label-sharing-2msg", true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			cfg := figCfg(experiment.ArchVGG, 10)
			cfg.LabelSharing = arm.sharing
			var last *experiment.Result
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunSplit(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkRoundModes compares the server's three schedules:
// sequential (one optimizer step per platform per round), concat (one
// step on the fused union batch) and pipelined (sequential semantics
// with WAN I/O overlapped against server compute).
func BenchmarkRoundModes(b *testing.B) {
	for _, arm := range []struct {
		name      string
		concat    bool
		pipelined bool
	}{
		{"sequential", false, false},
		{"concat", true, false},
		{"pipelined", false, true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			cfg := figCfg(experiment.ArchVGG, 10)
			cfg.ConcatRounds = arm.concat
			cfg.Pipelined = arm.pipelined
			var last *experiment.Result
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunSplit(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkSplitRound measures full protocol rounds (all four messages,
// both side's compute) on a small workload — the unit cost everything
// above is built from. Each iteration runs several rounds so the
// steady-state cost (where the tensor engine reuses buffers) dominates
// the one-time setup, for both the dense (MLP) and convolutional (VGG)
// halves of the engine.
func BenchmarkSplitRound(b *testing.B) {
	for _, arch := range []experiment.Arch{experiment.ArchMLP, experiment.ArchVGG} {
		for _, pipelined := range []bool{false, true} {
			name := string(arch)
			if pipelined {
				name += "/pipelined"
			}
			b.Run(name, func(b *testing.B) {
				cfg := figCfg(arch, 10)
				cfg.Rounds = 8
				cfg.EvalEvery = cfg.Rounds
				cfg.Pipelined = pipelined
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := experiment.RunSplit(cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReplicatedRound measures what the WAL-backed replication
// tier adds to a training round: the same split session with no
// replication (the baseline every other benchmark runs), and with one
// and two warm followers applying the leader's step stream. The WALs
// live in a per-run temporary directory with the default fsync-every-
// append policy, so the replicated arms carry real durability costs.
func BenchmarkReplicatedRound(b *testing.B) {
	for _, replicas := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			cfg := figCfg(experiment.ArchMLP, 10)
			cfg.Rounds = 8
			cfg.EvalEvery = cfg.Rounds
			cfg.Replicas = replicas
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiment.RunSplit(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompression sweeps the activation-path codecs — the repo's
// extension of the paper toward the split-learning literature's
// communication-reduction techniques — reporting the bytes/accuracy
// trade-off per codec.
func BenchmarkCompression(b *testing.B) {
	for _, codec := range []string{"raw", "f16", "int8", "topk-0.25"} {
		b.Run(codec, func(b *testing.B) {
			cfg := figCfg(experiment.ArchVGG, 10)
			cfg.Codec = codec
			var last *experiment.Result
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunSplit(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportRun(b, last)
		})
	}
}
