package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("%s-%03d", tag, i))); err != nil {
			t.Fatal(err)
		}
	}
}

func collect(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	err := l.Iterate(from, func(idx uint64, payload []byte) error {
		got[idx] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppendIterateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Small segments force several rolls mid-test.
	l := mustOpen(t, dir, Options{SegmentBytes: 64, SyncEvery: 0})
	defer l.Close()
	appendN(t, l, 20, "rec")
	if first, next := l.FirstIndex(), l.NextIndex(); first != 1 || next != 21 {
		t.Fatalf("first=%d next=%d, want 1, 21", first, next)
	}
	got := collect(t, l, 1)
	if len(got) != 20 {
		t.Fatalf("iterated %d records, want 20", len(got))
	}
	for i := 0; i < 20; i++ {
		want := fmt.Sprintf("rec-%03d", i)
		if got[uint64(i+1)] != want {
			t.Fatalf("index %d = %q, want %q", i+1, got[uint64(i+1)], want)
		}
	}
	// Partial iteration starts exactly at `from`.
	suffix := collect(t, l, 15)
	if len(suffix) != 6 || suffix[15] != "rec-014" {
		t.Fatalf("suffix = %v", suffix)
	}
	// The roll left sealed segments under their final names.
	sealed, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	open, _ := filepath.Glob(filepath.Join(dir, "wal-*.open"))
	if len(sealed) == 0 || len(open) != 1 {
		t.Fatalf("sealed=%d open=%d, want several sealed + one open", len(sealed), len(open))
	}
}

func TestReopenResumesIndices(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64, SyncEvery: 1})
	appendN(t, l, 7, "a")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = mustOpen(t, dir, Options{SegmentBytes: 64, SyncEvery: 1})
	defer l.Close()
	if l.NextIndex() != 8 {
		t.Fatalf("NextIndex after reopen = %d, want 8", l.NextIndex())
	}
	appendN(t, l, 3, "b")
	got := collect(t, l, 1)
	if len(got) != 10 || got[8] != "b-000" || got[7] != "a-006" {
		t.Fatalf("records after reopen = %v", got)
	}
}

func TestIterateSeesUnsyncedAppends(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{SyncEvery: 0})
	defer l.Close()
	appendN(t, l, 3, "x")
	if got := collect(t, l, 1); len(got) != 3 {
		t.Fatalf("iterated %d, want 3 (unsynced appends must be visible)", len(got))
	}
}

// writeSegment hand-crafts a single-segment log for corruption tests:
// header + n records "payload-<i>", returning the full file bytes and
// each record's starting offset.
func writeSegment(base uint64, n int) (buf []byte, offsets []int) {
	buf = append(buf, segmentHeader(base)...)
	for i := 0; i < n; i++ {
		offsets = append(offsets, len(buf))
		payload := []byte(fmt.Sprintf("payload-%03d", i))
		var frame [frameSize]byte
		binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
		buf = append(buf, frame[:]...)
		buf = append(buf, payload...)
	}
	return buf, offsets
}

func TestRecovery(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(buf []byte, offsets []int) []byte
		want    int   // records surviving Open (when wantErr is nil)
		wantErr error // expected Open failure
	}{
		{
			name: "clean log",
			mutate: func(buf []byte, _ []int) []byte {
				return buf
			},
			want: 5,
		},
		{
			name: "torn final record payload",
			mutate: func(buf []byte, offsets []int) []byte {
				return buf[:offsets[4]+frameSize+3] // frame landed, payload cut short
			},
			want: 4,
		},
		{
			name: "torn final frame",
			mutate: func(buf []byte, offsets []int) []byte {
				return buf[:offsets[4]+5] // not even a whole frame
			},
			want: 4,
		},
		{
			name: "bit-flipped CRC on final record",
			mutate: func(buf []byte, offsets []int) []byte {
				buf[offsets[4]+4] ^= 0x40 // crc field of the tail record
				return buf
			},
			want: 4,
		},
		{
			name: "bit-flipped CRC mid-log",
			mutate: func(buf []byte, offsets []int) []byte {
				buf[offsets[2]+4] ^= 0x40 // record 3 of 5: real corruption
				return buf
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "bit-flipped payload mid-log",
			mutate: func(buf []byte, offsets []int) []byte {
				buf[offsets[1]+frameSize] ^= 0x01
				return buf
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "empty segment file",
			mutate: func(_ []byte, _ []int) []byte {
				return nil // crash between create and header write
			},
			want: 0,
		},
		{
			name: "truncated header",
			mutate: func(buf []byte, _ []int) []byte {
				return buf[:headerSize-2]
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "bad magic",
			mutate: func(buf []byte, _ []int) []byte {
				buf[0] = 'X'
				return buf
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "bad version",
			mutate: func(buf []byte, _ []int) []byte {
				buf[4] = 99
				return buf
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "header base disagrees with name",
			mutate: func(buf []byte, _ []int) []byte {
				binary.LittleEndian.PutUint64(buf[5:], 42)
				return buf
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "absurd record length",
			mutate: func(buf []byte, offsets []int) []byte {
				binary.LittleEndian.PutUint32(buf[offsets[0]:], maxRecord+1)
				return buf
			},
			wantErr: ErrCorrupt,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			buf, offsets := writeSegment(1, 5)
			buf = tc.mutate(buf, offsets)
			path := filepath.Join(dir, segmentName(1, true))
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := Open(dir, Options{SyncEvery: 0})
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Open error = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			got := collect(t, l, 1)
			if len(got) != tc.want {
				t.Fatalf("surviving records = %d, want %d", len(got), tc.want)
			}
			// The log stays usable: the truncated slot is reassigned.
			idx, err := l.Append([]byte("after-recovery"))
			if err != nil {
				t.Fatal(err)
			}
			if want := uint64(tc.want + 1); idx != want {
				t.Fatalf("post-recovery append index = %d, want %d", idx, want)
			}
		})
	}
}

func TestCorruptSealedSegmentNeverTruncates(t *testing.T) {
	// A torn tail is only forgivable in the final segment; sealed
	// segments were fsynced before their rename, so damage there is
	// corruption even at their tail.
	dir := t.TempDir()
	buf, offsets := writeSegment(1, 3)
	buf = buf[:offsets[2]+frameSize+2] // torn tail...
	if err := os.WriteFile(filepath.Join(dir, segmentName(1, false)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	// ...but a later segment exists, so segment 1 is mid-log.
	buf2, _ := writeSegment(3, 2)
	if err := os.WriteFile(filepath.Join(dir, segmentName(3, true)), buf2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestOpenRejectsBrokenChains(t *testing.T) {
	t.Run("gap in indices", func(t *testing.T) {
		dir := t.TempDir()
		b1, _ := writeSegment(1, 2)
		b2, _ := writeSegment(9, 2) // should start at 3
		os.WriteFile(filepath.Join(dir, segmentName(1, false)), b1, 0o644)
		os.WriteFile(filepath.Join(dir, segmentName(9, true)), b2, 0o644)
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})
	t.Run("two active segments", func(t *testing.T) {
		dir := t.TempDir()
		b1, _ := writeSegment(1, 2)
		b2, _ := writeSegment(3, 1)
		os.WriteFile(filepath.Join(dir, segmentName(1, true)), b1, 0o644)
		os.WriteFile(filepath.Join(dir, segmentName(3, true)), b2, 0o644)
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})
	t.Run("sealed segment above the active one", func(t *testing.T) {
		dir := t.TempDir()
		b1, _ := writeSegment(1, 2)
		b2, _ := writeSegment(3, 1)
		os.WriteFile(filepath.Join(dir, segmentName(1, true)), b1, 0o644)
		os.WriteFile(filepath.Join(dir, segmentName(3, false)), b2, 0o644)
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})
}

func TestCompactBefore(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64, SyncEvery: 0})
	defer l.Close()
	appendN(t, l, 30, "rec")
	sealedBefore, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(sealedBefore) < 3 {
		t.Fatalf("test needs several sealed segments, got %d", len(sealedBefore))
	}
	if err := l.CompactBefore(20); err != nil {
		t.Fatal(err)
	}
	first := l.FirstIndex()
	if first == 1 || first > 20 {
		t.Fatalf("FirstIndex after compaction = %d, want in (1, 20]", first)
	}
	sealedAfter, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(sealedAfter) >= len(sealedBefore) {
		t.Fatalf("compaction removed no segment files (%d -> %d)", len(sealedBefore), len(sealedAfter))
	}
	// Replay-after-compaction: the surviving suffix is intact and dense.
	got := collect(t, l, first)
	for i := first; i <= 30; i++ {
		want := fmt.Sprintf("rec-%03d", i-1)
		if got[i] != want {
			t.Fatalf("post-compaction index %d = %q, want %q", i, got[i], want)
		}
	}
	// Asking for compacted history is an explicit error, not silence.
	if err := l.Iterate(1, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Iterate(1) = %v, want ErrCompacted", err)
	}
	// Compacting everything keeps the active segment.
	if err := l.CompactBefore(l.NextIndex()); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("still alive")); err != nil {
		t.Fatal(err)
	}
	// And survives a reopen.
	l.Close()
	l = mustOpen(t, dir, Options{SegmentBytes: 64, SyncEvery: 0})
	defer l.Close()
	if l.NextIndex() != 32 {
		t.Fatalf("NextIndex after compacted reopen = %d, want 32", l.NextIndex())
	}
}

func TestSyncAndClose(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SyncEvery: 0})
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close = %v, want nil", err)
	}
	if _, err := l.Append([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close = %v, want ErrClosed", err)
	}
	if err := l.Iterate(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("iterate after close = %v, want ErrClosed", err)
	}
	if err := l.CompactBefore(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close = %v, want ErrClosed", err)
	}
}

func TestSyncEveryBatches(t *testing.T) {
	// SyncEvery=3 must not error and must still land every record.
	l := mustOpen(t, t.TempDir(), Options{SyncEvery: 3})
	defer l.Close()
	appendN(t, l, 7, "b")
	if got := collect(t, l, 1); len(got) != 7 {
		t.Fatalf("records = %d, want 7", len(got))
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{SyncEvery: -1}); err == nil {
		t.Fatal("want error for negative SyncEvery")
	}
	if _, err := Open(t.TempDir(), Options{SegmentBytes: 4}); err == nil {
		t.Fatal("want error for tiny SegmentBytes")
	}
	// A missing directory is created, nested levels and all.
	l, err := Open(filepath.Join(t.TempDir(), "nested", "wal"), Options{})
	if err != nil {
		t.Fatalf("missing directory not created: %v", err)
	}
	l.Close()
}

func TestIterateFnErrorAborts(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{SyncEvery: 0})
	defer l.Close()
	appendN(t, l, 5, "r")
	boom := fmt.Errorf("stop here")
	seen := 0
	err := l.Iterate(1, func(uint64, []byte) error {
		seen++
		if seen == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || seen != 2 {
		t.Fatalf("err=%v seen=%d, want the fn error after 2 records", err, seen)
	}
}

func TestBadSegmentNames(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-zzzz.seg"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt for unparsable name", err)
	}
	dir2 := t.TempDir()
	// Unrelated files are ignored.
	os.WriteFile(filepath.Join(dir2, "notes.txt"), []byte("x"), 0o644)
	l, err := Open(dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
}

// FuzzWALDecode feeds arbitrary bytes to the segment scanner via Open:
// whatever the bytes, recovery must either succeed or fail cleanly —
// never panic, never hang — and a successful open must iterate without
// error (the surviving records were CRC-validated).
func FuzzWALDecode(f *testing.F) {
	clean, offsets := writeSegment(1, 3)
	f.Add(clean)
	f.Add(clean[:offsets[2]+frameSize+1]) // torn tail
	f.Add(clean[:headerSize])             // header only
	f.Add([]byte{})                       // empty file
	f.Add([]byte("MWAL\x01garbage that is not a segment"))
	flipped := bytes.Clone(clean)
	flipped[offsets[1]+4] ^= 1
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1, true)), data, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(dir, Options{SyncEvery: 0})
		if err != nil {
			return // clean rejection is a valid outcome
		}
		defer l.Close()
		if err := l.Iterate(l.FirstIndex(), func(_ uint64, p []byte) error {
			_ = p
			return nil
		}); err != nil {
			t.Fatalf("Open succeeded but Iterate failed: %v", err)
		}
		if _, err := l.Append([]byte("post-recovery append")); err != nil {
			t.Fatalf("Open succeeded but Append failed: %v", err)
		}
	})
}

func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"NoSync", Options{SyncEvery: 0}},
		{"SyncEvery16", Options{SyncEvery: 16}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			l, err := Open(b.TempDir(), bc.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
