// Package wal is a durable, CRC-32-framed, versioned append-only log —
// the persistence layer under the replicated aggregation tier
// (internal/core's leader/follower replication). The leader appends one
// opaque record per training step before acking the step to the
// platform; followers append the same records as they stream in. After
// a crash, Open recovers the log, truncates a torn tail write, and
// Iterate replays the surviving suffix in order.
//
// # Layout
//
// A log is a directory of segment files. Sealed segments are named
// wal-<base>.seg and never change; the single active segment is named
// wal-<base>.open, where <base> is the 16-hex-digit index of the
// segment's first record. Each segment starts with a header:
//
//	magic "MWAL" | version u8 | base index u64 (little-endian)
//
// followed by records framed as:
//
//	length u32 | crc32(payload) u32 | payload
//
// Record indices are assigned densely starting at 1, so a record's
// index is the segment base plus its ordinal in the segment; the log
// never stores indices explicitly.
//
// # Durability
//
// Options.SyncEvery is the fsync policy knob: 1 (the default) fsyncs
// after every append — a record handed back from Append survives a
// crash, which is what lets the leader ack a training step; n > 1
// amortizes the fsync over n appends (bounded loss window); 0 leaves
// syncing to the OS (benchmarks and tests). Sealing a finished segment
// goes through the shared fsync-then-rename helper
// (internal/atomicfile), so a sealed name never points at unsynced
// bytes.
//
// # Recovery
//
// Open scans every segment and validates every CRC. A record that runs
// past the end of the final segment, or whose checksum fails with
// nothing valid after it, is a torn tail write — the crash interrupted
// the append — and is truncated silently; the log resumes right before
// it. A checksum failure anywhere else (a "bit-flipped CRC mid-log")
// is real corruption and fails Open with ErrCorrupt: replaying past it
// would silently diverge the replica.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"medsplit/internal/atomicfile"
)

// Sentinel errors.
var (
	// ErrCorrupt reports unrecoverable log damage: a checksum or framing
	// failure that is not a torn tail write.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrCompacted reports an Iterate starting below the first retained
	// index.
	ErrCompacted = errors.New("wal: index compacted away")
)

var segmentMagic = [4]byte{'M', 'W', 'A', 'L'}

const (
	segmentVersion = 1
	headerSize     = 4 + 1 + 8 // magic + version + base index
	frameSize      = 4 + 4     // length + crc
	// maxRecord caps a record frame, stopping a corrupt length prefix
	// from allocating unbounded memory (mirrors wire.maxPayload).
	maxRecord = 1 << 28
)

// Options configures a Log.
type Options struct {
	// SegmentBytes rolls the active segment once it exceeds this many
	// bytes. Defaults to 4 MiB.
	SegmentBytes int
	// SyncEvery is the fsync policy: 1 (default) syncs every append,
	// n > 1 every n appends, 0 never (OS-buffered; tests/benchmarks).
	// Negative is invalid.
	SyncEvery int
}

func (o *Options) withDefaults() error {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SegmentBytes < headerSize+frameSize {
		return fmt.Errorf("wal: segment size %d too small", o.SegmentBytes)
	}
	if o.SyncEvery < 0 {
		return fmt.Errorf("wal: negative SyncEvery %d", o.SyncEvery)
	}
	return nil
}

// segment is one on-disk segment's bookkeeping.
type segment struct {
	path  string
	base  uint64 // index of the segment's first record
	count int    // records in the segment
}

func (s *segment) last() uint64 { return s.base + uint64(s.count) - 1 }

// Log is an append-only record log over segment files. Safe for use by
// one writer goroutine; all methods are serialized internally so
// concurrent readers (Iterate from a different goroutine) are safe too.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options

	sealed []segment // ascending by base
	active segment   // the wal-<base>.open segment
	f      *os.File  // active segment handle, positioned at the end

	next        uint64 // index the next Append assigns
	first       uint64 // first retained index (moves up on compaction)
	sinceSync   int    // appends since the last fsync
	activeBytes int    // current size of the active segment
	closed      bool
}

// Open opens (or creates) the log in dir, recovering from a crash:
// segment chains are validated, every record's CRC is checked, and a
// torn tail write is truncated. The directory is created if missing.
func Open(dir string, opts Options) (*Log, error) {
	if err := opts.withDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts}
	segs, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		l.first, l.next = 1, 1
		if err := l.openActive(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Validate every segment: full CRC pass, dense index chain. Only the
	// final segment may carry (and lose) a torn tail.
	for i := range segs {
		final := i == len(segs)-1
		count, size, err := validateSegment(&segs[i], final)
		if err != nil {
			return nil, err
		}
		segs[i].count = count
		if i > 0 && segs[i].base != segs[i-1].base+uint64(segs[i-1].count) {
			return nil, fmt.Errorf("%w: segment %s base %d, want %d",
				ErrCorrupt, filepath.Base(segs[i].path), segs[i].base, segs[i-1].base+uint64(segs[i-1].count))
		}
		if final {
			l.activeBytes = size
		}
	}
	l.first = segs[0].base
	tail := segs[len(segs)-1]
	l.next = tail.base + uint64(tail.count)
	// The tail segment becomes the active one. A sealed tail (clean
	// shutdown after a roll, or a crash before the new .open was
	// created) stays sealed; appends start a fresh segment.
	if strings.HasSuffix(tail.path, ".open") {
		l.sealed = segs[:len(segs)-1]
		l.active = tail
		f, err := os.OpenFile(tail.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: reopening active segment: %w", err)
		}
		if _, err := f.Seek(int64(l.activeBytes), io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: seeking active segment: %w", err)
		}
		l.f = f
	} else {
		l.sealed = segs
		if err := l.openActive(l.next); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// scanDir lists the directory's segments in ascending base order,
// rejecting layouts Open cannot reason about (several .open files, an
// .open below a sealed segment).
func scanDir(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var segs []segment
	opens := 0
	for _, e := range ents {
		name := e.Name()
		var baseHex string
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			baseHex = strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".open"):
			baseHex = strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".open")
			opens++
		default:
			continue
		}
		base, perr := strconv.ParseUint(baseHex, 16, 64)
		if perr != nil || base == 0 {
			return nil, fmt.Errorf("%w: segment name %q", ErrCorrupt, name)
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), base: base})
	}
	if opens > 1 {
		return nil, fmt.Errorf("%w: %d active segments", ErrCorrupt, opens)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	if opens == 1 && len(segs) > 0 && !strings.HasSuffix(segs[len(segs)-1].path, ".open") {
		return nil, fmt.Errorf("%w: active segment is not the newest", ErrCorrupt)
	}
	return segs, nil
}

// validateSegment checks a segment's header and every record frame,
// returning the record count and the validated byte size. When final
// is set, a torn tail (a record running past EOF, or a CRC-failed
// record with nothing after it) is truncated off the file instead of
// failing.
func validateSegment(s *segment, final bool) (count, size int, err error) {
	buf, err := os.ReadFile(s.path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: reading segment: %w", err)
	}
	name := filepath.Base(s.path)
	if len(buf) == 0 && final {
		// Crash between creating the file and writing its header: an
		// empty segment. Rewrite the header so appends can proceed.
		if err := os.WriteFile(s.path, segmentHeader(s.base), 0o644); err != nil {
			return 0, 0, fmt.Errorf("wal: repairing empty segment: %w", err)
		}
		return 0, headerSize, nil
	}
	if len(buf) < headerSize {
		return 0, 0, fmt.Errorf("%w: segment %s shorter than its header", ErrCorrupt, name)
	}
	if [4]byte{buf[0], buf[1], buf[2], buf[3]} != segmentMagic {
		return 0, 0, fmt.Errorf("%w: segment %s bad magic", ErrCorrupt, name)
	}
	if buf[4] != segmentVersion {
		return 0, 0, fmt.Errorf("%w: segment %s version %d, want %d", ErrCorrupt, name, buf[4], segmentVersion)
	}
	if got := binary.LittleEndian.Uint64(buf[5:]); got != s.base {
		return 0, 0, fmt.Errorf("%w: segment %s header base %d, name says %d", ErrCorrupt, name, got, s.base)
	}
	off := headerSize
	for off < len(buf) {
		// Torn frame or torn payload: the write that crashed. Only legal
		// at the very tail of the final segment.
		if len(buf)-off < frameSize {
			if final {
				return count, off, truncate(s.path, off)
			}
			return 0, 0, fmt.Errorf("%w: segment %s truncated frame at %d", ErrCorrupt, name, off)
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		if n > maxRecord {
			return 0, 0, fmt.Errorf("%w: segment %s record length %d at %d", ErrCorrupt, name, n, off)
		}
		if off+frameSize+n > len(buf) {
			if final {
				return count, off, truncate(s.path, off)
			}
			return 0, 0, fmt.Errorf("%w: segment %s torn record at %d", ErrCorrupt, name, off)
		}
		wantCRC := binary.LittleEndian.Uint32(buf[off+4:])
		payload := buf[off+frameSize : off+frameSize+n]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			// A full-length record with a bad sum at the exact tail of the
			// final segment is still a torn write (the frame landed, the
			// payload didn't all make it before the crash). Anywhere else
			// it is corruption.
			if final && off+frameSize+n == len(buf) {
				return count, off, truncate(s.path, off)
			}
			return 0, 0, fmt.Errorf("%w: segment %s checksum mismatch at %d", ErrCorrupt, name, off)
		}
		off += frameSize + n
		count++
	}
	return count, off, nil
}

func truncate(path string, size int) error {
	if err := os.Truncate(path, int64(size)); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	return nil
}

func segmentHeader(base uint64) []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, segmentMagic[:])
	hdr[4] = segmentVersion
	binary.LittleEndian.PutUint64(hdr[5:], base)
	return hdr
}

func segmentName(base uint64, open bool) string {
	ext := ".seg"
	if open {
		ext = ".open"
	}
	return fmt.Sprintf("wal-%016x%s", base, ext)
}

// openActive creates a fresh active segment starting at base.
func (l *Log) openActive(base uint64) error {
	path := filepath.Join(l.dir, segmentName(base, true))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.Write(segmentHeader(base)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if l.opts.SyncEvery > 0 {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: syncing segment header: %w", err)
		}
	}
	l.f = f
	l.active = segment{path: path, base: base}
	l.activeBytes = headerSize
	return nil
}

// Append durably adds one record and returns its index (the first
// record of a log is index 1). With SyncEvery=1 the record is on
// stable storage when Append returns.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) > maxRecord {
		return 0, fmt.Errorf("wal: record %d bytes exceeds limit", len(payload))
	}
	if l.activeBytes >= l.opts.SegmentBytes && l.active.count > 0 {
		if err := l.roll(); err != nil {
			return 0, err
		}
	}
	var frame [frameSize]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(frame[:]); err != nil {
		return 0, fmt.Errorf("wal: appending frame: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: appending payload: %w", err)
	}
	l.activeBytes += frameSize + len(payload)
	l.active.count++
	idx := l.next
	l.next++
	l.sinceSync++
	if l.opts.SyncEvery > 0 && l.sinceSync >= l.opts.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return idx, nil
}

// roll seals the active segment under its final name and starts a new
// one. The seal goes through the shared fsync-then-rename helper so the
// sealed name is durable before the next segment exists.
func (l *Log) roll() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing segment before seal: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment before seal: %w", err)
	}
	sealedPath := filepath.Join(l.dir, segmentName(l.active.base, false))
	if err := atomicfile.Rename(l.active.path, sealedPath); err != nil {
		return err
	}
	l.sinceSync = 0
	sealed := l.active
	sealed.path = sealedPath
	l.sealed = append(l.sealed, sealed)
	return l.openActive(l.next)
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.sinceSync = 0
	return nil
}

// FirstIndex returns the lowest index Iterate accepts: 1 before any
// compaction, moving up as sealed segments are dropped. For an empty
// log it equals NextIndex.
func (l *Log) FirstIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// LastIndex returns the newest record's index, or first-1 when the
// retained log is empty.
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// NextIndex returns the index the next Append will assign.
func (l *Log) NextIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Iterate replays records with index >= from in order. The payload
// slice passed to fn is only valid during the call. Iterating from
// below FirstIndex returns ErrCompacted; fn errors abort the walk.
func (l *Log) Iterate(from uint64, fn func(index uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if from < l.first {
		l.mu.Unlock()
		return fmt.Errorf("%w: iterate from %d, first retained %d", ErrCompacted, from, l.first)
	}
	// Walk a stable snapshot of the segment list outside the lock.
	// Writes are unbuffered, so a read-back through the page cache sees
	// every appended record, and records below the snapshotted counts
	// are immutable even while appends extend the active file.
	segs := make([]segment, 0, len(l.sealed)+1)
	segs = append(segs, l.sealed...)
	if l.active.count > 0 {
		segs = append(segs, l.active)
	}
	l.mu.Unlock()

	for _, s := range segs {
		if s.last() < from {
			continue
		}
		if err := iterateSegment(s, from, fn); err != nil {
			return err
		}
	}
	return nil
}

// iterateSegment replays one validated segment's records >= from.
func iterateSegment(s segment, from uint64, fn func(uint64, []byte) error) error {
	buf, err := os.ReadFile(s.path)
	if err != nil {
		return fmt.Errorf("wal: reading segment: %w", err)
	}
	off := headerSize
	idx := s.base
	for i := 0; i < s.count; i++ {
		if len(buf)-off < frameSize {
			return fmt.Errorf("%w: segment %s shrank underfoot", ErrCorrupt, filepath.Base(s.path))
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		wantCRC := binary.LittleEndian.Uint32(buf[off+4:])
		if n > maxRecord || off+frameSize+n > len(buf) {
			return fmt.Errorf("%w: segment %s bad record at %d", ErrCorrupt, filepath.Base(s.path), off)
		}
		payload := buf[off+frameSize : off+frameSize+n]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return fmt.Errorf("%w: segment %s checksum mismatch at %d", ErrCorrupt, filepath.Base(s.path), off)
		}
		if idx >= from {
			if err := fn(idx, payload); err != nil {
				return err
			}
		}
		off += frameSize + n
		idx++
	}
	return nil
}

// CompactBefore drops whole sealed segments whose records all precede
// index. The active segment is never dropped, so compaction is
// segment-granular: FirstIndex after the call is <= index. Called at
// checkpoint boundaries — once a snapshot at round r is durable, the
// records that rebuilt state up to r are dead weight.
func (l *Log) CompactBefore(index uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var kept []segment
	for _, s := range l.sealed {
		if s.last() < index {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: removing compacted segment: %w", err)
			}
			l.first = s.last() + 1
			continue
		}
		kept = append(kept, s)
	}
	l.sealed = kept
	return nil
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.opts.SyncEvery > 0 {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return fmt.Errorf("wal: final sync: %w", err)
		}
	}
	return l.f.Close()
}
