package transport

import (
	"sync"

	"medsplit/internal/wire"
)

// Reconnectable is a connection endpoint whose underlying transport can
// be replaced mid-session — the plumbing under dropout recovery. The
// protocol layer holds one stable Conn value per peer; when a link dies
// (WAN drop, platform restart) the recovery logic establishes a fresh
// transport (a new TCP dial, a new accepted connection, a new pipe) and
// Swaps it in. Send/Recv simply delegate to the current transport, so
// every other layer — metering, async wrappers, the protocol loops —
// stays oblivious to reconnection.
//
// Reconnectable does not retry by itself: a Send or Recv that hits a
// dead transport still returns the error. Retrying is a protocol
// decision (which messages to replay, which to resend) that lives in
// the session layer (see core's rejoin handshake); this wrapper only
// guarantees that after Swap the same endpoint value talks over the
// new link.
//
// Swap is safe to call concurrently with Send/Recv: an operation
// already in flight finishes (or fails) on the transport it started
// on, and the next operation uses the replacement.
type Reconnectable struct {
	mu    sync.RWMutex
	cur   Conn
	swaps int
}

var _ Conn = (*Reconnectable)(nil)

// NewReconnectable wraps an established connection.
func NewReconnectable(c Conn) *Reconnectable {
	return &Reconnectable{cur: c}
}

// Swap installs a replacement transport and returns the previous one
// (which the caller should close — Swap does not, because the old
// transport may still be finishing an in-flight operation).
func (r *Reconnectable) Swap(c Conn) Conn {
	r.mu.Lock()
	old := r.cur
	r.cur = c
	r.swaps++
	r.mu.Unlock()
	return old
}

// Swaps returns how many times the transport has been replaced.
func (r *Reconnectable) Swaps() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.swaps
}

// Current returns the transport currently in use.
func (r *Reconnectable) Current() Conn {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cur
}

// Send transmits on the current transport.
func (r *Reconnectable) Send(m *wire.Message) error {
	return r.Current().Send(m)
}

// Recv receives from the current transport.
func (r *Reconnectable) Recv() (*wire.Message, error) {
	return r.Current().Recv()
}

// Close closes the current transport.
func (r *Reconnectable) Close() error {
	return r.Current().Close()
}
