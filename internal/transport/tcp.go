package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"medsplit/internal/wire"
)

// TCPOptions tunes a TCP message connection. The zero value keeps the
// historical behavior: no I/O deadlines, blocking reads and writes.
type TCPOptions struct {
	// ReadTimeout, when positive, arms a fresh read deadline before
	// every Recv. A peer that goes silent (half-open connection,
	// stalled middlebox) then surfaces a timeout error instead of
	// blocking the reader forever. Leave zero on connections that are
	// legitimately idle between requests.
	ReadTimeout time.Duration
	// WriteTimeout, when positive, arms a fresh write deadline before
	// every Send, bounding how long a full kernel buffer (dead peer,
	// zero-window stall) can wedge the sender.
	WriteTimeout time.Duration
}

// tcpConn frames wire.Messages over a net.Conn. Sends are serialized
// with a mutex and flushed per message (the split protocol is
// request/response; batching frames would only add latency).
type tcpConn struct {
	nc   net.Conn
	br   *bufio.Reader
	opts TCPOptions

	sendMu sync.Mutex
	bw     *bufio.Writer

	closeOnce sync.Once
	closeErr  error
}

var _ Conn = (*tcpConn)(nil)

// NewTCPConn wraps an established net.Conn as a message connection
// with no I/O deadlines.
func NewTCPConn(nc net.Conn) Conn {
	return NewTCPConnOpts(nc, TCPOptions{})
}

// NewTCPConnOpts wraps an established net.Conn as a message
// connection, applying the given I/O deadline options per call.
func NewTCPConnOpts(nc net.Conn, opts TCPOptions) Conn {
	return &tcpConn{
		nc:   nc,
		br:   bufio.NewReaderSize(nc, 1<<16),
		bw:   bufio.NewWriterSize(nc, 1<<16),
		opts: opts,
	}
}

// Dial connects to a TCP message endpoint with no I/O deadlines.
func Dial(addr string) (Conn, error) {
	return DialOpts(addr, TCPOptions{})
}

// DialOpts connects to a TCP message endpoint with the given I/O
// deadline options.
func DialOpts(addr string, opts TCPOptions) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConnOpts(nc, opts), nil
}

func (c *tcpConn) Send(m *wire.Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.opts.WriteTimeout > 0 {
		if err := c.nc.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout)); err != nil {
			return fmt.Errorf("transport: arming write deadline: %w", err)
		}
	}
	if _, err := m.Write(c.bw); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush: %w", err)
	}
	return nil
}

func (c *tcpConn) Recv() (*wire.Message, error) {
	if c.opts.ReadTimeout > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout)); err != nil {
			return nil, fmt.Errorf("transport: arming read deadline: %w", err)
		}
	}
	// Payloads come from the shared buffer pool: the protocol loop that
	// consumes the message releases them after decode (see the ownership
	// rules on wire.BufferPool), so steady-state receiving allocates
	// nothing but the message struct.
	m, _, err := wire.ReadPooled(c.br, &wire.Buffers)
	return m, err
}

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

// tcpListener adapts net.Listener to the package's Listener interface.
type tcpListener struct {
	nl   net.Listener
	opts TCPOptions
}

var _ Listener = (*tcpListener)(nil)

// Listen opens a TCP message listener. Use addr "127.0.0.1:0" to let the
// OS pick a free port (read it back with Addr).
func Listen(addr string) (Listener, error) {
	return ListenOpts(addr, TCPOptions{})
}

// ListenOpts opens a TCP message listener whose accepted connections
// carry the given I/O deadline options.
func ListenOpts(addr string, opts TCPOptions) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{nl: nl, opts: opts}, nil
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewTCPConnOpts(nc, l.opts), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }

func (l *tcpListener) Addr() string { return l.nl.Addr().String() }
