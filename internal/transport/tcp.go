package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"medsplit/internal/wire"
)

// tcpConn frames wire.Messages over a net.Conn. Sends are serialized
// with a mutex and flushed per message (the split protocol is
// request/response; batching frames would only add latency).
type tcpConn struct {
	nc net.Conn
	br *bufio.Reader

	sendMu sync.Mutex
	bw     *bufio.Writer

	closeOnce sync.Once
	closeErr  error
}

var _ Conn = (*tcpConn)(nil)

// NewTCPConn wraps an established net.Conn as a message connection.
func NewTCPConn(nc net.Conn) Conn {
	return &tcpConn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 1<<16),
		bw: bufio.NewWriterSize(nc, 1<<16),
	}
}

// Dial connects to a TCP message endpoint.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(nc), nil
}

func (c *tcpConn) Send(m *wire.Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if _, err := m.Write(c.bw); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("transport: flush: %w", err)
	}
	return nil
}

func (c *tcpConn) Recv() (*wire.Message, error) {
	// Payloads come from the shared buffer pool: the protocol loop that
	// consumes the message releases them after decode (see the ownership
	// rules on wire.BufferPool), so steady-state receiving allocates
	// nothing but the message struct.
	m, _, err := wire.ReadPooled(c.br, &wire.Buffers)
	return m, err
}

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

// tcpListener adapts net.Listener to the package's Listener interface.
type tcpListener struct {
	nl net.Listener
}

var _ Listener = (*tcpListener)(nil)

// Listen opens a TCP message listener. Use addr "127.0.0.1:0" to let the
// OS pick a free port (read it back with Addr).
func Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{nl: nl}, nil
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewTCPConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }

func (l *tcpListener) Addr() string { return l.nl.Addr().String() }
