package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"medsplit/internal/wire"
)

// tcpPairOpts dials a loopback pair where the accepted (server) side
// carries the given I/O options.
func tcpPairOpts(t *testing.T, opts TCPOptions) (client, server Conn) {
	t.Helper()
	l, err := ListenOpts("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, aerr := l.Accept()
		if aerr != nil {
			t.Errorf("accept: %v", aerr)
			close(accepted)
			return
		}
		accepted <- c
	}()
	a, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	b, ok := <-accepted
	if !ok {
		a.Close()
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// A read deadline must turn a silent peer into a timeout error instead
// of blocking Recv forever.
func TestTCPReadDeadlineFiresOnSilentPeer(t *testing.T) {
	_, server := tcpPairOpts(t, TCPOptions{ReadTimeout: 30 * time.Millisecond})
	start := time.Now()
	_, err := server.Recv()
	if err == nil {
		t.Fatal("Recv on a silent peer returned without error")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("Recv error %v (%T) is not a net timeout", err, err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline took %v to fire", waited)
	}
}

// The deadline is per-call: traffic inside the window must flow
// untouched, and each Recv re-arms the clock.
func TestTCPReadDeadlineRearmsPerCall(t *testing.T) {
	client, server := tcpPairOpts(t, TCPOptions{ReadTimeout: time.Second})
	for round := uint32(1); round <= 3; round++ {
		if err := client.Send(&wire.Message{Type: wire.MsgHello, Round: round}); err != nil {
			t.Fatal(err)
		}
		m, err := server.Recv()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if m.Round != round {
			t.Fatalf("round %d: got %d", round, m.Round)
		}
	}
}
