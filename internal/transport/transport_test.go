package transport

import (
	"errors"
	"io"
	"sync"
	"testing"

	"medsplit/internal/wire"
)

func msg(t wire.MsgType, round uint32, payload ...byte) *wire.Message {
	return &wire.Message{Type: t, Round: round, Payload: payload}
}

// exerciseConnPair runs the same contract tests against any connected
// pair, so the pipe and TCP transports stay behaviorally identical.
func exerciseConnPair(t *testing.T, a, b Conn) {
	t.Helper()

	// Ping-pong with ordering.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			m, err := b.Recv()
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if m.Round != uint32(i) {
				t.Errorf("out of order: got round %d, want %d", m.Round, i)
				return
			}
			if err := b.Send(msg(wire.MsgAck, m.Round)); err != nil {
				t.Errorf("ack %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		if err := a.Send(msg(wire.MsgActivations, uint32(i), 1, 2, 3)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		ack, err := a.Recv()
		if err != nil {
			t.Fatalf("recv ack %d: %v", i, err)
		}
		if ack.Type != wire.MsgAck || ack.Round != uint32(i) {
			t.Fatalf("bad ack %+v", ack)
		}
	}
	wg.Wait()

	// Close semantics: peer sees end of stream.
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("recv after peer close must fail")
	}
	// Local operations after close fail.
	if err := a.Send(msg(wire.MsgAck, 0)); err == nil {
		t.Fatal("send after close must fail")
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestPipeConnContract(t *testing.T) {
	a, b := Pipe()
	exerciseConnPair(t, a, b)
}

func TestTCPConnContract(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			close(accepted)
			return
		}
		accepted <- c
	}()
	a, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	b, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	defer b.Close()
	exerciseConnPair(t, a, b)
}

func TestPipeRecvAfterPeerCloseIsEOF(t *testing.T) {
	a, b := Pipe()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	if err := b.Send(msg(wire.MsgAck, 0)); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("send to closed peer: %v", err)
	}
}

func TestPipeRecvOnOwnClosedConn(t *testing.T) {
	a, _ := Pipe()
	a.Close()
	if _, err := a.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMeterCounts(t *testing.T) {
	rawA, rawB := Pipe()
	var ma, mb Meter
	a := Metered(rawA, &ma)
	b := Metered(rawB, &mb)

	m := msg(wire.MsgActivations, 1, make([]byte, 100)...)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := b.Recv(); err != nil {
			t.Errorf("recv: %v", err)
		}
	}()
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	<-done

	want := int64(m.WireSize())
	if ma.TxBytes() != want {
		t.Fatalf("tx bytes %d, want %d", ma.TxBytes(), want)
	}
	if mb.RxBytes() != want {
		t.Fatalf("rx bytes %d, want %d", mb.RxBytes(), want)
	}
	if ma.TxMessages() != 1 || mb.RxMessages() != 1 {
		t.Fatalf("msg counts tx=%d rx=%d", ma.TxMessages(), mb.RxMessages())
	}
	if ma.TxBytesByType(wire.MsgActivations) != want {
		t.Fatalf("per-type tx %d", ma.TxBytesByType(wire.MsgActivations))
	}
	if ma.TxBytesByType(wire.MsgLogits) != 0 {
		t.Fatal("unrelated type counted")
	}
	if ma.TotalBytes() != want {
		t.Fatalf("total %d", ma.TotalBytes())
	}
	if mb.RxBytesByType(wire.MsgActivations) != want {
		t.Fatalf("per-type rx %d", mb.RxBytesByType(wire.MsgActivations))
	}
	// Failed sends are not counted.
	a.Close()
	if err := a.Send(m); err == nil {
		t.Fatal("send after close must fail")
	}
	if ma.TxMessages() != 1 {
		t.Fatal("failed send was counted")
	}
}

func TestTCPMeteredMatchesPipeAccounting(t *testing.T) {
	// The same message must cost the same bytes on both transports.
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	var tcpMeter Meter
	tc, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	mc := Metered(tc, &tcpMeter)

	var pipeMeter Meter
	pa, pb := Pipe()
	go func() {
		for {
			if _, err := pb.Recv(); err != nil {
				return
			}
		}
	}()
	pc := Metered(pa, &pipeMeter)
	defer pa.Close()

	m := msg(wire.MsgModelPush, 7, make([]byte, 4096)...)
	if err := mc.Send(m); err != nil {
		t.Fatal(err)
	}
	if err := pc.Send(m); err != nil {
		t.Fatal(err)
	}
	if tcpMeter.TxBytes() != pipeMeter.TxBytes() {
		t.Fatalf("tcp %d bytes, pipe %d bytes", tcpMeter.TxBytes(), pipeMeter.TxBytes())
	}
}

func TestPipeConcurrentBidirectional(t *testing.T) {
	a, b := Pipe()
	const n = 50
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { defer wg.Done(); sendN(t, a, n) }()
	go func() { defer wg.Done(); recvN(t, a, n) }()
	go func() { defer wg.Done(); sendN(t, b, n) }()
	go func() { defer wg.Done(); recvN(t, b, n) }()
	wg.Wait()
}

func sendN(t *testing.T, c Conn, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.Send(msg(wire.MsgAck, uint32(i))); err != nil {
			t.Errorf("send: %v", err)
			return
		}
	}
}

func recvN(t *testing.T, c Conn, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		m, err := c.Recv()
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if m.Round != uint32(i) {
			t.Errorf("order: got %d want %d", m.Round, i)
			return
		}
	}
}

func TestPushbackDeliversQueuedFirst(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	queued := msg(wire.MsgHello, 99)
	pb := Pushback(b, queued)
	got, err := pb.Recv()
	if err != nil || got.Round != 99 {
		t.Fatalf("queued message: %+v, %v", got, err)
	}
	// Subsequent Recv reads from the underlying connection.
	go func() {
		if err := a.Send(msg(wire.MsgAck, 7)); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	got, err = pb.Recv()
	if err != nil || got.Round != 7 {
		t.Fatalf("live message: %+v, %v", got, err)
	}
	// Send passes through.
	go func() {
		if _, err := a.Recv(); err != nil {
			t.Errorf("recv: %v", err)
		}
	}()
	if err := pb.Send(msg(wire.MsgAck, 1)); err != nil {
		t.Fatalf("send through pushback: %v", err)
	}
	if err := pb.Close(); err != nil {
		t.Fatal(err)
	}
}
