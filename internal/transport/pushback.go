package transport

import "medsplit/internal/wire"

// Pushback returns a connection that yields the given messages (in
// order) from Recv before reading from the underlying connection.
//
// TCP servers need it to route platforms to their slots: platforms can
// connect in any order, so the acceptor reads each connection's Hello
// to learn its platform id, then pushes the Hello back so the protocol
// handshake still sees it.
func Pushback(c Conn, msgs ...*wire.Message) Conn {
	return &pushbackConn{inner: c, queue: append([]*wire.Message(nil), msgs...)}
}

type pushbackConn struct {
	inner Conn
	queue []*wire.Message
}

var _ Conn = (*pushbackConn)(nil)

func (p *pushbackConn) Send(m *wire.Message) error { return p.inner.Send(m) }

func (p *pushbackConn) Recv() (*wire.Message, error) {
	if len(p.queue) > 0 {
		m := p.queue[0]
		p.queue = p.queue[1:]
		return m, nil
	}
	return p.inner.Recv()
}

func (p *pushbackConn) Close() error { return p.inner.Close() }
