package transport

import (
	"io"
	"sync"

	"medsplit/internal/wire"
)

// Pipe returns two connected in-process connections. Messages sent on
// one side arrive at the other in order. Transfer is by reference (no
// serialization), but WireSize-based accounting through Metered matches
// the TCP transport byte for byte, so simulations report real wire
// costs.
//
// Channels are unbuffered: a Send completes only when the peer receives
// it, which mirrors the strict request/response rhythm of the split
// protocol and means no message can be silently lost at Close.
//
// Because delivery is by reference, the Conn ownership rules are
// load-bearing here: the receiver gets the sender's payload bytes, so a
// sender that kept writing into a sent buffer would corrupt the peer.
// The flip side is that when the receiver releases a decoded payload to
// wire.Buffers, the very same buffer becomes available to the sender's
// next encode — in-process rounds recycle one buffer set endlessly.
func Pipe() (Conn, Conn) {
	ab := make(chan *wire.Message)
	ba := make(chan *wire.Message)
	doneA := make(chan struct{})
	doneB := make(chan struct{})
	a := &pipeConn{send: ab, recv: ba, done: doneA, peerDone: doneB}
	b := &pipeConn{send: ba, recv: ab, done: doneB, peerDone: doneA}
	return a, b
}

type pipeConn struct {
	send      chan *wire.Message
	recv      chan *wire.Message
	done      chan struct{} // closed when this side closes
	peerDone  chan struct{} // closed when the peer closes
	closeOnce sync.Once
}

var _ Conn = (*pipeConn)(nil)

func (p *pipeConn) Send(m *wire.Message) error {
	select {
	case <-p.done:
		return ErrClosed
	case <-p.peerDone:
		return io.ErrClosedPipe
	default:
	}
	select {
	case p.send <- m:
		return nil
	case <-p.done:
		return ErrClosed
	case <-p.peerDone:
		return io.ErrClosedPipe
	}
}

func (p *pipeConn) Recv() (*wire.Message, error) {
	select {
	case m := <-p.recv:
		return m, nil
	case <-p.done:
		return nil, ErrClosed
	case <-p.peerDone:
		// Unbuffered channels: nothing in flight to drain. A peer close
		// reads as end of stream, matching the TCP transport.
		return nil, io.EOF
	}
}

func (p *pipeConn) Close() error {
	p.closeOnce.Do(func() { close(p.done) })
	return nil
}
