package transport

import (
	"errors"
	"io"
	"sync"
	"testing"

	"medsplit/internal/wire"
)

// A Reconnectable endpoint must keep working across a transport swap:
// operations before the swap use the old link, operations after it use
// the new one, and the endpoint value itself never changes.
func TestReconnectableSwapMidStream(t *testing.T) {
	s1, c1 := Pipe()
	rc := NewReconnectable(c1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		m, _ := s1.Recv()
		_ = m
	}()
	if err := rc.Send(&wire.Message{Type: wire.MsgAck, Round: 1}); err != nil {
		t.Fatal(err)
	}
	<-done

	// Kill the first link: the endpoint starts failing.
	s1.Close()
	c1.Close()
	if err := rc.Send(&wire.Message{Type: wire.MsgAck, Round: 2}); err == nil {
		t.Fatal("send on a dead transport succeeded")
	}

	// Swap in a fresh link: the same endpoint works again.
	s2, c2 := Pipe()
	old := rc.Swap(c2)
	if old != c1 {
		t.Fatal("Swap returned the wrong previous transport")
	}
	if rc.Swaps() != 1 {
		t.Fatalf("Swaps() = %d, want 1", rc.Swaps())
	}
	got := make(chan *wire.Message, 1)
	go func() {
		m, err := s2.Recv()
		if err != nil {
			return
		}
		got <- m
	}()
	if err := rc.Send(&wire.Message{Type: wire.MsgAck, Round: 3}); err != nil {
		t.Fatal(err)
	}
	if m := <-got; m.Round != 3 {
		t.Fatalf("round %d arrived on the new transport, want 3", m.Round)
	}

	// Recv side also follows the swap.
	go func() { _ = s2.Send(&wire.Message{Type: wire.MsgBye}) }()
	m, err := rc.Recv()
	if err != nil || m.Type != wire.MsgBye {
		t.Fatalf("recv after swap: %v %v", m, err)
	}
}

// Swapping while another goroutine is blocked in Recv must not race:
// the blocked operation finishes (or fails) on the transport it
// started on.
func TestReconnectableSwapConcurrentWithRecv(t *testing.T) {
	s1, c1 := Pipe()
	rc := NewReconnectable(c1)
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		// Depending on scheduling this Recv resolves the endpoint before
		// or after the swap — either way it must fail cleanly once both
		// transports close, never deliver data or hang.
		_, err := rc.Recv()
		if err == nil {
			t.Error("recv on a closed transport delivered a message")
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
			t.Errorf("unexpected recv error: %v", err)
		}
	}()
	<-started
	s2, c2 := Pipe()
	old := rc.Swap(c2)
	old.Close() // unblocks a Recv parked on the old transport
	s1.Close()
	s2.Close() // unblocks a Recv that landed on the new transport
	c2.Close()
	wg.Wait()
}
