// Package testutil holds test-only helpers shared by the transport,
// core, simnet and experiment test suites. It lives under transport
// because the contracts it checks — every reader/writer goroutine a
// connection spawns must be joined on every shutdown path — are
// transport-layer contracts.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutines currently executing medsplit
// code and registers a cleanup that fails the test if new ones outlive
// it. Call it at the top of any end-to-end test that spawns session
// goroutines (servers, platforms, async transport wrappers, simnet
// sessions): a leaked pipeline reader, an unjoined writer or a parked
// stop-notification goroutine shows up as a failure with its stack.
//
// The cleanup polls for a grace period before failing, because clean
// shutdown paths may still be draining (e.g. best-effort notification
// goroutines that exit when the harness closes the connections).
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := medsplitGoroutines()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			leaked := leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				var sb strings.Builder
				for _, stack := range leaked {
					fmt.Fprintf(&sb, "\n--- leaked goroutine ---\n%s", stack)
				}
				t.Errorf("%d goroutine(s) running medsplit code leaked past the test:%s", len(leaked), sb.String())
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
}

// leakedSince returns the stacks of medsplit goroutines whose ids were
// not present in the baseline snapshot.
func leakedSince(baseline map[string]bool) []string {
	var leaked []string
	for id, stack := range stacksByID() {
		if !baseline[id] {
			leaked = append(leaked, stack)
		}
	}
	return leaked
}

// medsplitGoroutines returns goroutine-id → stack for every goroutine
// whose stack mentions a medsplit non-test frame, excluding the calling
// goroutine (the test itself runs medsplit code by definition).
func medsplitGoroutines() map[string]bool {
	// Why id → bool with stacks re-fetched in leakedSince: ids are the
	// stable key across polls; the stack text is only needed for the
	// final report.
	out := make(map[string]bool)
	for id := range stacksByID() {
		out[id] = true
	}
	return out
}

func stacksByID() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	self := goroutineID(string(buf[:strings.IndexByte(string(buf), '\n')]))
	out := make(map[string]string)
	for _, block := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(block, "medsplit/internal/") {
			continue
		}
		// The probing goroutine and pure test-code goroutines (frames
		// only in _test.go files or this package) are not leaks.
		if !hasNonTestMedsplitFrame(block) {
			continue
		}
		id := goroutineID(block)
		if id == "" || id == self {
			continue
		}
		out[id] = block
	}
	return out
}

// hasNonTestMedsplitFrame reports whether the stack holds a medsplit
// frame outside _test.go files and outside this helper package.
func hasNonTestMedsplitFrame(block string) bool {
	for _, line := range strings.Split(block, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "medsplit/") && !strings.Contains(line, "/medsplit/internal/") {
			continue
		}
		if strings.Contains(line, "_test.go") || strings.Contains(line, "transport/testutil") {
			continue
		}
		// File-location lines look like "\t/path/file.go:123"; frame
		// lines look like "medsplit/internal/pkg.(*T).M(...)".
		if strings.Contains(line, ".go:") || strings.Contains(line, "(") {
			return true
		}
	}
	return false
}

// goroutineID extracts the numeric id from a "goroutine N [state]:"
// header line.
func goroutineID(block string) string {
	header := block
	if i := strings.IndexByte(header, '\n'); i >= 0 {
		header = header[:i]
	}
	header = strings.TrimSpace(header)
	if !strings.HasPrefix(header, "goroutine ") {
		return ""
	}
	rest := header[len("goroutine "):]
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		return rest[:i]
	}
	return rest
}
