package testutil

import (
	"strings"
	"testing"

	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// The detector must see a goroutine parked inside transport code and
// stop seeing it once it exits.
func TestDetectsTransportGoroutines(t *testing.T) {
	baseline := medsplitGoroutines()

	a, b := transport.Pipe()
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		_, _ = a.Recv() // parks in pipe Recv until b closes
	}()
	<-started

	// The parked receiver must eventually be visible (it may take a
	// scheduling beat for the goroutine to reach the Recv).
	var leaked []string
	for i := 0; i < 100; i++ {
		leaked = leakedSince(baseline)
		if len(leaked) > 0 {
			break
		}
	}
	if len(leaked) == 0 {
		t.Fatal("parked transport goroutine not detected")
	}
	found := false
	for _, stack := range leaked {
		if strings.Contains(stack, "transport.(*pipeConn).Recv") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak stacks do not name the parked Recv:\n%s", strings.Join(leaked, "\n"))
	}

	b.Close()
	<-done
	// After the goroutine exits, the leak set must drain (poll: the
	// runtime needs a moment to retire the goroutine).
	for i := 0; i < 500; i++ {
		if len(leakedSince(baseline)) == 0 {
			return
		}
	}
	t.Fatalf("goroutine still reported after exit: %v", leakedSince(baseline))
}

// VerifyNoLeaks on a clean test is silent; exercising it here also
// keeps the cleanup path covered.
func TestVerifyNoLeaksCleanRun(t *testing.T) {
	VerifyNoLeaks(t)
	a, b := transport.Pipe()
	go func() { _ = a.Send(&wire.Message{Type: wire.MsgAck}) }()
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b.Close()
}
