package transport

import (
	"io"
	"sync"

	"medsplit/internal/wire"
)

// AsyncOptions configures an AsyncConn.
type AsyncOptions struct {
	// SendQueue is the bounded outbound queue depth. Send blocks once
	// this many messages are waiting for the writer goroutine, so a slow
	// link exerts backpressure instead of buffering without bound.
	// Values below 1 are treated as 1.
	SendQueue int
	// RecvQueue is the bounded inbound queue depth. Zero disables the
	// reader goroutine entirely: Recv passes straight through to the
	// inner connection and only sends are asynchronous.
	RecvQueue int
	// StopRead, when set, is consulted after each inbound message has
	// been queued; returning true makes the reader goroutine exit
	// cleanly. Protocols with a terminal message (the split protocol's
	// Bye) use it so Stop can join the reader without closing the inner
	// connection.
	StopRead func(*wire.Message) bool
}

// AsyncConn decouples a Conn's I/O from the goroutine driving the
// protocol: a writer goroutine drains a bounded send queue and, when
// RecvQueue > 0, a reader goroutine eagerly pulls inbound messages into
// a bounded receive queue. The protocol loop then overlaps its compute
// with the wire — Send returns as soon as the message is queued, and
// Recv returns messages the reader prefetched while the caller was
// busy. Per-direction FIFO order is preserved, so wrapping a
// connection never changes protocol semantics, only timing.
//
// Error propagation: the first write error is returned by the Send that
// queued behind it and by Stop; the first read error is returned by
// Recv once the receive queue drains. Close always tears the wrapper
// down (closing the inner connection); Stop flushes and detaches
// without touching the inner connection; Abort releases queue-blocked
// callers on error paths without closing anything.
//
// Buffer recycling: the wrapper moves messages by reference and never
// copies payloads, so the Conn ownership rules pass straight through —
// a payload given to Send stays untouched in the send queue until the
// writer goroutine delivers it to the inner connection (the sender must
// not recycle it, even after Send returns), and a payload surfacing
// from Recv was drawn from wire.Buffers by the inner transport's reader
// (the consumer releases it after decode, which is when it re-enters
// the pool). Messages dropped on the floor by Abort/Close are simply
// garbage collected; the pool never sees them, so teardown cannot
// poison it with buffers a goroutine still references.
//
// A single goroutine must own Send/Stop and a single goroutine must own
// Recv, mirroring the Conn contract.
type AsyncConn struct {
	inner Conn
	opts  AsyncOptions

	sendq    chan *wire.Message
	recvq    chan *wire.Message // nil when RecvQueue == 0
	done     chan struct{}      // closed by Close/Abort
	stopSend chan struct{}      // closed by Stop: flush and exit

	writerDone chan struct{}
	readerDone chan struct{} // closed when the reader exits; nil without a reader

	mu       sync.Mutex
	sendErr  error
	recvErr  error
	stopping bool

	closeOnce sync.Once
	stopOnce  sync.Once
	abortOnce sync.Once
}

var _ Conn = (*AsyncConn)(nil)

// NewAsync wraps c. The wrapper's goroutines run until Close, Stop, a
// connection error, or (reader only) StopRead.
func NewAsync(c Conn, opts AsyncOptions) *AsyncConn {
	if opts.SendQueue < 1 {
		opts.SendQueue = 1
	}
	a := &AsyncConn{
		inner:      c,
		opts:       opts,
		sendq:      make(chan *wire.Message, opts.SendQueue),
		done:       make(chan struct{}),
		stopSend:   make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	go a.writer()
	if opts.RecvQueue > 0 {
		a.recvq = make(chan *wire.Message, opts.RecvQueue)
		a.readerDone = make(chan struct{})
		go a.reader()
	}
	return a
}

func (a *AsyncConn) writer() {
	defer close(a.writerDone)
	for {
		select {
		case m := <-a.sendq:
			if err := a.inner.Send(m); err != nil {
				a.setSendErr(err)
				return
			}
		case <-a.stopSend:
			// Flush whatever Send queued before Stop, then exit.
			for {
				select {
				case m := <-a.sendq:
					if err := a.inner.Send(m); err != nil {
						a.setSendErr(err)
						return
					}
				default:
					return
				}
			}
		case <-a.done:
			return
		}
	}
}

func (a *AsyncConn) reader() {
	defer close(a.readerDone)
	for {
		m, err := a.inner.Recv()
		if err != nil {
			a.setRecvErr(err)
			return
		}
		select {
		case a.recvq <- m:
		case <-a.done:
			return
		}
		if a.opts.StopRead != nil && a.opts.StopRead(m) {
			return
		}
	}
}

// Send queues m for the writer goroutine, blocking while the send queue
// is full. It returns the writer's error once one has occurred.
func (a *AsyncConn) Send(m *wire.Message) error {
	a.mu.Lock()
	stopping := a.stopping
	a.mu.Unlock()
	if stopping {
		return ErrClosed
	}
	// Check for shutdown before offering to the queue: with both cases
	// ready, select would otherwise queue a message no writer will ever
	// flush.
	select {
	case <-a.done:
		return ErrClosed
	case <-a.writerDone:
		if err := a.firstErr(); err != nil {
			return err
		}
		return ErrClosed
	default:
	}
	select {
	case a.sendq <- m:
		return nil
	case <-a.writerDone:
		if err := a.firstErr(); err != nil {
			return err
		}
		return ErrClosed
	case <-a.done:
		return ErrClosed
	}
}

// Recv returns the next inbound message. With a reader goroutine,
// prefetched messages are returned immediately and, after the reader
// exits, the queue is drained before the reader's error (io.EOF when it
// stopped at a StopRead sentinel) is surfaced. Without a reader it is a
// passthrough to the inner connection.
func (a *AsyncConn) Recv() (*wire.Message, error) {
	if a.recvq == nil {
		return a.inner.Recv()
	}
	select {
	case m := <-a.recvq:
		return m, nil
	default:
	}
	select {
	case m := <-a.recvq:
		return m, nil
	case <-a.readerDone:
		select {
		case m := <-a.recvq:
			return m, nil
		default:
		}
		a.mu.Lock()
		err := a.recvErr
		a.mu.Unlock()
		if err == nil {
			err = io.EOF
		}
		return nil, err
	case <-a.done:
		return nil, ErrClosed
	}
}

// Stop flushes queued sends, joins the wrapper goroutines, and leaves
// the inner connection open and usable — the graceful detach for a
// protocol that finished cleanly. When a reader goroutine is running,
// Stop must only be called after it is guaranteed to finish (its
// StopRead sentinel was received, or a read error occurred); otherwise
// Stop would block until the caller closes the inner connection. It
// returns the first write error, if any.
func (a *AsyncConn) Stop() error {
	a.stopOnce.Do(func() {
		a.mu.Lock()
		a.stopping = true
		a.mu.Unlock()
		close(a.stopSend)
	})
	<-a.writerDone
	if a.readerDone != nil {
		<-a.readerDone
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sendErr
}

// Abort releases queue-blocked Send/Recv callers without closing the
// inner connection and without waiting for the goroutines: a goroutine
// parked inside the inner connection's Send or Recv exits only when the
// owner of that connection closes it (RunLocal and the TCP commands
// close their connections on every exit path). Use on error paths where
// the caller still owns the connection.
func (a *AsyncConn) Abort() {
	a.abortOnce.Do(func() { close(a.done) })
}

// Close aborts the wrapper, closes the inner connection (which unblocks
// any goroutine parked in inner I/O), and joins both goroutines.
func (a *AsyncConn) Close() error {
	var err error
	a.closeOnce.Do(func() {
		a.Abort()
		err = a.inner.Close()
		<-a.writerDone
		if a.readerDone != nil {
			<-a.readerDone
		}
	})
	return err
}

func (a *AsyncConn) setSendErr(err error) {
	a.mu.Lock()
	if a.sendErr == nil {
		a.sendErr = err
	}
	a.mu.Unlock()
}

func (a *AsyncConn) setRecvErr(err error) {
	a.mu.Lock()
	if a.recvErr == nil {
		a.recvErr = err
	}
	a.mu.Unlock()
}

func (a *AsyncConn) firstErr() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sendErr != nil {
		return a.sendErr
	}
	return a.recvErr
}
