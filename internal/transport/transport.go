// Package transport carries wire.Messages between platforms and the
// central server. It provides an in-process transport (for simulations,
// tests and benchmarks), a TCP transport (for real deployments — see
// cmd/splitserver and cmd/splitplatform), and a metering wrapper that
// counts every byte in both directions, per message type. Byte counting
// lives at the transport boundary so no protocol can accidentally
// under-report its communication volume.
package transport

import (
	"errors"
	"sync/atomic"

	"medsplit/internal/wire"
)

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is a bidirectional, ordered message stream. Send and Recv may be
// called from different goroutines; neither may be called concurrently
// with itself.
//
// Payload ownership: a message handed to Send belongs to the connection
// (and, transitively, to the peer — the in-process pipe transport
// delivers the same bytes by reference, and an async wrapper may still
// be queueing them) from the moment Send is called; the caller must not
// mutate, reuse or pool the payload afterwards. A message returned by
// Recv belongs to the caller, which may recycle the payload through
// wire.Buffers once decoded. This is what lets both transports run the
// steady-state round loop without payload allocations: senders draw
// encode buffers from the pool, receivers release them after decode.
type Conn interface {
	Send(m *wire.Message) error
	Recv() (*wire.Message, error)
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// Meter counts traffic crossing a connection. All methods are safe for
// concurrent use. The zero value is ready to use.
//
// Happens-before contract: the counters are lock-free atomics, so a
// concurrent read is never a data race — but it may observe a total
// that is mid-round, because an AsyncConn writer goroutine counts a
// message only when it actually reaches the inner connection. A reader
// that needs a *final* total must establish happens-before with every
// goroutine that touched the meter: in this repo, core.RunLocal joins
// the server and all platform goroutines before returning (and the
// pipelined mode flushes its async writers before Serve/Run return), so
// experiment's trainTx/trainRx reads after RunLocal are exact.
// Mid-session snapshots (the platform's per-eval TrainingBytes) are
// exact for a different reason: the protocol's request/response
// causality guarantees every training message of the finished round was
// flushed before the snapshot point.
type Meter struct {
	txBytes atomic.Int64
	rxBytes atomic.Int64
	txMsgs  atomic.Int64
	rxMsgs  atomic.Int64

	// Per message type, indexed by wire.MsgType.
	txByType [32]atomic.Int64
	rxByType [32]atomic.Int64
}

// CountTx records an outbound message.
func (mt *Meter) CountTx(m *wire.Message) {
	mt.txBytes.Add(int64(m.WireSize()))
	mt.txMsgs.Add(1)
	mt.txByType[int(m.Type)].Add(int64(m.WireSize()))
}

// CountRx records an inbound message.
func (mt *Meter) CountRx(m *wire.Message) {
	mt.rxBytes.Add(int64(m.WireSize()))
	mt.rxMsgs.Add(1)
	mt.rxByType[int(m.Type)].Add(int64(m.WireSize()))
}

// TxBytes returns total bytes sent.
func (mt *Meter) TxBytes() int64 { return mt.txBytes.Load() }

// RxBytes returns total bytes received.
func (mt *Meter) RxBytes() int64 { return mt.rxBytes.Load() }

// TotalBytes returns bytes moved in both directions.
func (mt *Meter) TotalBytes() int64 { return mt.TxBytes() + mt.RxBytes() }

// TxMessages returns the number of messages sent.
func (mt *Meter) TxMessages() int64 { return mt.txMsgs.Load() }

// RxMessages returns the number of messages received.
func (mt *Meter) RxMessages() int64 { return mt.rxMsgs.Load() }

// TxBytesByType returns bytes sent with the given message type.
func (mt *Meter) TxBytesByType(t wire.MsgType) int64 { return mt.txByType[int(t)].Load() }

// RxBytesByType returns bytes received with the given message type.
func (mt *Meter) RxBytesByType(t wire.MsgType) int64 { return mt.rxByType[int(t)].Load() }

// meteredConn wraps a Conn and counts traffic on a Meter.
type meteredConn struct {
	inner Conn
	meter *Meter
}

var _ Conn = (*meteredConn)(nil)

// Metered wraps c so all traffic is counted on meter.
func Metered(c Conn, meter *Meter) Conn {
	return &meteredConn{inner: c, meter: meter}
}

func (m *meteredConn) Send(msg *wire.Message) error {
	if err := m.inner.Send(msg); err != nil {
		return err
	}
	m.meter.CountTx(msg)
	return nil
}

func (m *meteredConn) Recv() (*wire.Message, error) {
	msg, err := m.inner.Recv()
	if err != nil {
		return nil, err
	}
	m.meter.CountRx(msg)
	return msg, nil
}

func (m *meteredConn) Close() error { return m.inner.Close() }
