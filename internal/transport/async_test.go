package transport

import (
	"errors"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"medsplit/internal/wire"
)

// waitGoroutines polls until the live goroutine count is back at or
// below base, failing with a stack dump otherwise. Tests in this
// package do not run in parallel, so the count is meaningful.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d live, want <= %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestAsyncConnContract: an AsyncConn pair must satisfy the same
// behavioral contract as the transports it wraps.
func TestAsyncConnContract(t *testing.T) {
	base := runtime.NumGoroutine()
	p, q := Pipe()
	a := NewAsync(p, AsyncOptions{SendQueue: 4, RecvQueue: 4})
	b := NewAsync(q, AsyncOptions{SendQueue: 4, RecvQueue: 4})
	exerciseConnPair(t, a, b)
	b.Close()
	waitGoroutines(t, base)
}

// TestAsyncConnPrefetch: the reader goroutine must pull messages in
// while the consumer is busy, and deliver them in order.
func TestAsyncConnPrefetch(t *testing.T) {
	base := runtime.NumGoroutine()
	p, q := Pipe()
	a := NewAsync(p, AsyncOptions{SendQueue: 1, RecvQueue: 8})
	defer a.Close()
	defer q.Close()

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 8; i++ {
			if err := q.Send(msg(wire.MsgActivations, uint32(i))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	// The peer's sends complete against an unbuffered pipe only because
	// the async reader is consuming; the consumer hasn't called Recv yet.
	if err := <-done; err != nil {
		t.Fatalf("peer send: %v", err)
	}
	for i := 0; i < 8; i++ {
		m, err := a.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Round != uint32(i) {
			t.Fatalf("out of order: got %d want %d", m.Round, i)
		}
	}
	a.Close()
	q.Close()
	waitGoroutines(t, base)
}

// TestAsyncConnBoundedSendQueue: Send must block (backpressure), not
// buffer without bound, once the queue is full and the peer stalls.
func TestAsyncConnBoundedSendQueue(t *testing.T) {
	base := runtime.NumGoroutine()
	p, q := Pipe()
	a := NewAsync(p, AsyncOptions{SendQueue: 2})
	defer q.Close()

	// The pipe is unbuffered and the peer never reads: the writer
	// goroutine parks in inner.Send holding one message, the queue holds
	// two more, so sends 1-3 succeed and send 4 must block.
	blocked := make(chan struct{})
	go func() {
		for i := 0; i < 4; i++ {
			if i == 3 {
				close(blocked)
			}
			if err := a.Send(msg(wire.MsgActivations, uint32(i))); err != nil {
				return // unblocked by Close below
			}
		}
	}()
	<-blocked
	select {
	case <-time.After(50 * time.Millisecond):
		// Still blocked after the queue filled: bounded as intended.
	}
	a.Close()
	q.Close()
	waitGoroutines(t, base)
}

// TestAsyncConnStopFlushes: Stop must deliver every queued message to
// the peer before detaching, and leave the inner connection usable.
func TestAsyncConnStopFlushes(t *testing.T) {
	base := runtime.NumGoroutine()
	p, q := Pipe()
	a := NewAsync(p, AsyncOptions{SendQueue: 8})

	var got []uint32
	var mu sync.Mutex
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for i := 0; i < 5; i++ {
			m, err := q.Recv()
			if err != nil {
				t.Errorf("peer recv: %v", err)
				return
			}
			mu.Lock()
			got = append(got, m.Round)
			mu.Unlock()
		}
	}()
	for i := 0; i < 5; i++ {
		if err := a.Send(msg(wire.MsgCutGrad, uint32(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := a.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	<-recvDone
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 5 {
		t.Fatalf("peer received %d of 5 queued messages after Stop", n)
	}
	// Sends after Stop are rejected; the inner conn still works.
	if err := a.Send(msg(wire.MsgAck, 0)); err == nil {
		t.Fatal("send after Stop must fail")
	}
	go func() { q.Recv() }()
	if err := p.Send(msg(wire.MsgAck, 9)); err != nil {
		t.Fatalf("inner conn unusable after Stop: %v", err)
	}
	p.Close()
	q.Close()
	waitGoroutines(t, base)
}

// TestAsyncConnStopRead: the reader must exit at its sentinel so Stop
// can join it without closing the inner connection.
func TestAsyncConnStopRead(t *testing.T) {
	base := runtime.NumGoroutine()
	p, q := Pipe()
	a := NewAsync(p, AsyncOptions{SendQueue: 1, RecvQueue: 4,
		StopRead: func(m *wire.Message) bool { return m.Type == wire.MsgBye }})

	go func() {
		q.Send(msg(wire.MsgActivations, 0))
		q.Send(msg(wire.MsgBye, 1))
	}()
	for i := 0; i < 2; i++ {
		if _, err := a.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	// Reader exited at Bye; further Recv reports end of stream rather
	// than blocking on the inner connection.
	if _, err := a.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("recv after sentinel: %v, want io.EOF", err)
	}
	if err := a.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	p.Close()
	q.Close()
	waitGoroutines(t, base)
}

// TestAsyncConnErrorPropagation: a peer death must surface on both
// Recv (read error) and Send (write error), not hang.
func TestAsyncConnErrorPropagation(t *testing.T) {
	base := runtime.NumGoroutine()
	p, q := Pipe()
	a := NewAsync(p, AsyncOptions{SendQueue: 2, RecvQueue: 2})
	q.Close()

	if _, err := a.Recv(); err == nil {
		t.Fatal("recv from dead peer must fail")
	}
	// The writer hits the dead pipe on the first flush; the error
	// surfaces on a subsequent Send or on Stop.
	var sendErr error
	for i := 0; i < 10 && sendErr == nil; i++ {
		sendErr = a.Send(msg(wire.MsgAck, uint32(i)))
		time.Sleep(time.Millisecond)
	}
	if sendErr == nil {
		t.Fatal("send to dead peer never failed")
	}
	a.Close()
	waitGoroutines(t, base)
}

// TestAsyncConnMetered: AsyncConn composes with Metered, and joining
// the wrapper (Stop) makes the counts exact.
func TestAsyncConnMetered(t *testing.T) {
	p, q := Pipe()
	meter := &Meter{}
	a := NewAsync(Metered(p, meter), AsyncOptions{SendQueue: 4})
	go func() {
		for {
			if _, err := q.Recv(); err != nil {
				return
			}
		}
	}()
	m := msg(wire.MsgActivations, 0, 1, 2, 3, 4)
	for i := 0; i < 3; i++ {
		if err := a.Send(m); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := a.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if got, want := meter.TxBytes(), int64(3*m.WireSize()); got != want {
		t.Fatalf("metered %d bytes after Stop, want %d", got, want)
	}
	p.Close()
	q.Close()
}
