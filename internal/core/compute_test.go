package core

import (
	"hash/fnv"
	"math"
	"sync/atomic"
	"testing"

	"medsplit/internal/nn"
)

// countingGate admits everything but audits the acquire/release
// protocol: every acquisition released, never nested within the
// session's single compute goroutine.
type countingGate struct {
	held     atomic.Int32
	maxHeld  atomic.Int32
	acquires atomic.Int64
	releases atomic.Int64
}

func (g *countingGate) Acquire() func() {
	g.acquires.Add(1)
	n := g.held.Add(1)
	for {
		p := g.maxHeld.Load()
		if n <= p || g.maxHeld.CompareAndSwap(p, n) {
			break
		}
	}
	return func() {
		g.held.Add(-1)
		g.releases.Add(1)
	}
}

// digestNets hashes the raw float bits of every parameter so two runs
// can be compared for bit-identity.
func digestNets(fronts []*nn.Sequential, back *nn.Sequential) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	add := func(net *nn.Sequential) {
		for _, p := range net.Params() {
			for _, v := range p.W.Data() {
				bits := math.Float32bits(v)
				buf[0] = byte(bits)
				buf[1] = byte(bits >> 8)
				buf[2] = byte(bits >> 16)
				buf[3] = byte(bits >> 24)
				h.Write(buf[:])
			}
		}
	}
	for _, f := range fronts {
		add(f)
	}
	add(back)
	return h.Sum64()
}

// Every scheduling mode must route its compute through the configured
// gate, release everything it acquires, and — single session, one
// compute goroutine — never hold two acquisitions at once. Gated
// training must also leave the weights exactly where an ungated run
// does: the gate decides when compute runs, never what it computes.
func TestComputeGateWrapsEveryComputeStep(t *testing.T) {
	train, test := testData(t, 4, 64, 16, 5)
	flat, flatTest := flatten(train), flatten(test)
	in := flat.X.Dim(1)
	const rounds, K = 4, 2

	cases := []struct {
		name     string
		servMut  func(*ServerConfig)
		platMut  func(*PlatformConfig)
		minSteps int64 // forwards + backwards the gate must have seen
	}{
		{
			name:     "sequential",
			minSteps: 2 * K * rounds, // posActs forward + posLossGrad backward per platform per round
		},
		{
			name:     "concat",
			servMut:  func(c *ServerConfig) { c.Mode = RoundModeConcat },
			minSteps: 2 * rounds, // one fused forward + backward per round
		},
		{
			name: "label-sharing",
			servMut: func(c *ServerConfig) {
				c.LabelSharing = true
				c.Loss = nn.SoftmaxCrossEntropy{}
			},
			platMut: func(c *PlatformConfig) {
				c.LabelSharing = true
				c.Loss = nil
			},
			minSteps: K * rounds, // fused forward+loss+backward per platform per round
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runOnce := func(gate ComputeGate) uint64 {
				fronts, back := buildFronts(t, 31, K, in, 4)
				srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
					c.EvalEvery = 2
					c.Compute = gate
					if tc.servMut != nil {
						tc.servMut(c)
					}
				})
				platforms := make([]*Platform, K)
				for k := 0; k < K; k++ {
					k := k
					platforms[k] = defaultPlatform(t, k, fronts[k], flat, rounds, func(c *PlatformConfig) {
						c.EvalEvery = 2
						if k == 0 {
							c.EvalData = flatTest
						}
						if tc.platMut != nil {
							tc.platMut(c)
						}
					})
				}
				if _, err := RunLocal(srv, platforms); err != nil {
					t.Fatal(err)
				}
				return digestNets(fronts, back)
			}

			gate := &countingGate{}
			gated := runOnce(gate)
			ungated := runOnce(nil)

			if got := gate.acquires.Load(); got < tc.minSteps {
				t.Fatalf("gate saw %d acquisitions, want at least %d", got, tc.minSteps)
			}
			if a, r := gate.acquires.Load(), gate.releases.Load(); a != r {
				t.Fatalf("%d acquires but %d releases", a, r)
			}
			if m := gate.maxHeld.Load(); m != 1 {
				t.Fatalf("gate held %d slots at once within a single session, want 1", m)
			}
			if gated != ungated {
				t.Fatalf("gated digest %016x differs from ungated %016x: the gate must not change results", gated, ungated)
			}
		})
	}
}
