package core

import (
	"fmt"
	"sync"
	"testing"

	"medsplit/internal/dataset"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// trainEvents filters a platform's trace down to training-exchange
// messages (the paper's four communications plus label sharing).
func trainEvents(events []TraceEvent, party string) []TraceEvent {
	var out []TraceEvent
	for _, e := range events {
		if e.Party != party {
			continue
		}
		switch e.Type {
		case wire.MsgActivations, wire.MsgLogits, wire.MsgLossGrad, wire.MsgCutGrad, wire.MsgLabels:
			out = append(out, e)
		}
	}
	return out
}

// The protocol must follow the paper's Fig. 3 exactly: per minibatch,
// (1) activations up, (2) logits down, (3) loss gradients up, (4) cut
// gradients down.
func TestFourMessageSequencePerRound(t *testing.T) {
	train, _ := testData(t, 3, 32, 8, 21)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 81, flat.X.Dim(1), 3)

	var rec Recorder
	const rounds = 3
	srv := defaultServer(t, back, 1, rounds, nil)
	plat := defaultPlatform(t, 0, front, flat, rounds, func(c *PlatformConfig) {
		c.Trace = rec.Record
	})
	if _, err := RunLocal(srv, []*Platform{plat}); err != nil {
		t.Fatal(err)
	}

	evs := trainEvents(rec.Events(), "platform-0")
	if len(evs) != 4*rounds {
		t.Fatalf("%d training events, want %d", len(evs), 4*rounds)
	}
	wantSeq := []struct {
		dir string
		typ wire.MsgType
	}{
		{"send", wire.MsgActivations},
		{"recv", wire.MsgLogits},
		{"send", wire.MsgLossGrad},
		{"recv", wire.MsgCutGrad},
	}
	for r := 0; r < rounds; r++ {
		for i, want := range wantSeq {
			e := evs[4*r+i]
			if e.Dir != want.dir || e.Type != want.typ || e.Round != r {
				t.Fatalf("round %d step %d: got %v, want %s %s r%d", r, i, e, want.dir, want.typ, r)
			}
		}
	}
}

func TestLabelSharingTwoCommunicationsPerRound(t *testing.T) {
	train, _ := testData(t, 3, 32, 8, 22)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 91, flat.X.Dim(1), 3)

	var rec Recorder
	const rounds = 2
	srv := defaultServer(t, back, 1, rounds, func(c *ServerConfig) {
		c.LabelSharing = true
		c.Loss = nn.SoftmaxCrossEntropy{}
	})
	plat := defaultPlatform(t, 0, front, flat, rounds, func(c *PlatformConfig) {
		c.LabelSharing = true
		c.Loss = nil
		c.Trace = rec.Record
	})
	if _, err := RunLocal(srv, []*Platform{plat}); err != nil {
		t.Fatal(err)
	}
	evs := trainEvents(rec.Events(), "platform-0")
	// Per round: Activations up, Labels up, CutGrad down — one up/down
	// round trip instead of two.
	if len(evs) != 3*rounds {
		t.Fatalf("%d training events, want %d", len(evs), 3*rounds)
	}
	for r := 0; r < rounds; r++ {
		if evs[3*r].Type != wire.MsgActivations || evs[3*r+1].Type != wire.MsgLabels || evs[3*r+2].Type != wire.MsgCutGrad {
			t.Fatalf("round %d sequence: %v %v %v", r, evs[3*r], evs[3*r+1], evs[3*r+2])
		}
	}
}

// The server must handle platforms strictly in order within each
// sequential round (the deterministic schedule the experiments rely on).
func TestServerRoundRobinOrdering(t *testing.T) {
	train, _ := testData(t, 3, 60, 8, 23)
	flat := flatten(train)
	const rounds, K = 2, 3
	fronts, back := buildFronts(t, 101, K, flat.X.Dim(1), 3)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(24))

	var rec Recorder
	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.Trace = rec.Record
	})
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, nil)
	}
	if _, err := RunLocal(srv, platforms); err != nil {
		t.Fatal(err)
	}
	var order []int
	for _, e := range rec.Events() {
		if e.Party == "server" && e.Dir == "recv" && e.Type == wire.MsgActivations {
			order = append(order, e.Platform)
		}
	}
	want := []int{0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("activation order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("activation order %v, want %v", order, want)
		}
	}
}

// captureConn records every message sent through it, so the privacy
// test can inspect exactly what the server would see.
type captureConn struct {
	transport.Conn
	mu   sync.Mutex
	sent []*wire.Message
}

func (c *captureConn) Send(m *wire.Message) error {
	c.mu.Lock()
	c.sent = append(c.sent, m)
	c.mu.Unlock()
	return c.Conn.Send(m)
}

// The privacy invariant of the paper: the server observes only L1
// outputs, never raw patient data and never labels (in label-private
// mode). We capture the platform's entire outbound stream and assert no
// raw input row appears in any payload and no label message exists.
func TestPrivacyRawDataAndLabelsNeverLeavePlatform(t *testing.T) {
	train, test := testData(t, 3, 40, 12, 25)
	flat, flatTest := flatten(train), flatten(test)
	front, back := buildSplitMLP(t, 111, flat.X.Dim(1), 3)
	const rounds = 4

	srv := defaultServer(t, back, 1, rounds, func(c *ServerConfig) {
		c.EvalEvery = 2
	})
	plat := defaultPlatform(t, 0, front, flat, rounds, func(c *PlatformConfig) {
		c.EvalEvery = 2
		c.EvalData = flatTest
	})

	// Wire the session manually so the platform side is captured.
	sConn, pConn := transport.Pipe()
	cap := &captureConn{Conn: pConn}
	errCh := make(chan error, 2)
	go func() { errCh <- srv.Serve([]transport.Conn{sConn}) }()
	go func() {
		_, err := plat.Run(cap)
		errCh <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	for _, m := range cap.sent {
		if m.Type == wire.MsgLabels {
			t.Fatal("labels crossed the wire in label-private mode")
		}
	}
	// No payload may contain a raw input sample. Raw rows are 3072
	// floats; L1 outputs are 32 floats — but check content, not just
	// shape: decode every tensor the platform sent and scan for the
	// first input row as a contiguous subsequence.
	probe := flat.X.Row(0)
	for _, m := range cap.sent {
		switch m.Type {
		case wire.MsgActivations, wire.MsgLossGrad, wire.MsgEvalActivations, wire.MsgModelPush:
			ts, err := wire.DecodeTensors(m.Payload)
			if err != nil {
				t.Fatalf("decoding %s: %v", m.Type, err)
			}
			for _, x := range ts {
				if containsSubsequence(x.Data(), probe) {
					t.Fatalf("raw input found inside a %s payload", m.Type)
				}
			}
		}
	}
}

func containsSubsequence(haystack, needle []float32) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, v := range needle {
			if haystack[i+j] != v {
				continue outer
			}
		}
		return true
	}
	return false
}

// The activation payload must be exactly the L1 output — the only data
// the paper allows the server to see.
func TestActivationPayloadIsL1Output(t *testing.T) {
	train, _ := testData(t, 3, 16, 4, 26)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 121, flat.X.Dim(1), 3)

	srv := defaultServer(t, back, 1, 1, nil)
	plat := defaultPlatform(t, 0, front, flat, 1, func(c *PlatformConfig) {
		c.Batch = 4
	})
	sConn, pConn := transport.Pipe()
	cap := &captureConn{Conn: pConn}
	errCh := make(chan error, 2)
	go func() { errCh <- srv.Serve([]transport.Conn{sConn}) }()
	go func() {
		_, err := plat.Run(cap)
		errCh <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	var act *tensor.Tensor
	for _, m := range cap.sent {
		if m.Type == wire.MsgActivations {
			ts, err := wire.DecodeTensors(m.Payload)
			if err != nil {
				t.Fatal(err)
			}
			act = ts[0]
		}
	}
	if act == nil {
		t.Fatal("no activations captured")
	}
	if act.Dim(0) != 4 || act.Dim(1) != 32 {
		t.Fatalf("activation shape %v, want [4 32] (batch × L1 width)", act.Shape())
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	var rec Recorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rec.Record(TraceEvent{Party: fmt.Sprintf("p%d", i), Round: j})
			}
		}(i)
	}
	wg.Wait()
	if got := len(rec.Events()); got != 800 {
		t.Fatalf("%d events, want 800", got)
	}
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{Party: "server", Dir: "send", Type: wire.MsgLogits, Platform: 2, Round: 7, Bytes: 128}
	s := e.String()
	for _, sub := range []string{"server", "send", "logits", "p2", "r7", "128B"} {
		if !contains(s, sub) {
			t.Fatalf("String() = %q missing %q", s, sub)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
