package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"medsplit/internal/dataset"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/transport"
	"medsplit/internal/transport/testutil"
	"medsplit/internal/wire"
)

// severConn kills the link from the platform side: when the trigger
// matches an outbound message, the underlying pipe closes (so the
// server's pending receive dies too) and the send errors — a WAN drop
// as both ends see it.
type severConn struct {
	transport.Conn
	trigger func(*wire.Message) bool
	fired   bool
}

func (c *severConn) Send(m *wire.Message) error {
	if !c.fired && c.trigger(m) {
		c.fired = true
		c.Conn.Close()
		return fmt.Errorf("recovery test: link severed on %s r%d", m.Type, m.Round)
	}
	return c.Conn.Send(m)
}

// swallowConn kills the link from the server side while pretending the
// send succeeded: the message is dropped and the pipe closed. This is
// the TCP failure mode where a cut gradient dies in a kernel buffer —
// the server believes the round completed, the platform never saw it.
type swallowConn struct {
	transport.Conn
	trigger func(*wire.Message) bool
	fired   bool
}

func (c *swallowConn) Send(m *wire.Message) error {
	if !c.fired && c.trigger(m) {
		c.fired = true
		c.Conn.Close()
		return nil // swallowed: reported delivered, never arrives
	}
	return c.Conn.Send(m)
}

// recoveryOpts configures one manual recovery session.
type recoveryOpts struct {
	rounds      int
	policy      RejoinPolicy
	recovery    bool // attach a RecoveryConfig + Redial at all
	l1SyncEvery int
	// wrapServer / wrapPlatform interpose on the victim's two pipe ends.
	wrapServer   func(transport.Conn, *RejoinBroker) transport.Conn
	wrapPlatform func(transport.Conn) transport.Conn
	// redialGate, when non-nil, blocks the victim's first redial until
	// closed (for deterministic ProceedWithout adoption timing).
	redialGate chan struct{}
	trace      TraceFunc
}

const recoveryVictim = 1

// recoveryRun executes a 2-platform session with manual wiring and
// returns the final parameters (fronts then back) and per-platform
// stats. Fixed seeds: two runs with equal opts are bit-identical.
func recoveryRun(t *testing.T, o recoveryOpts) ([][]*nn.Param, []*PlatformStats) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	const K = 2
	train, _ := testData(t, 4, 240, 60, 171)
	flat := flatten(train)
	in := flat.X.Dim(1)
	fronts, back := buildFronts(t, 711, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(172))

	broker := NewRejoinBroker()
	defer broker.Close()
	scfg := ServerConfig{
		Back: back, Opt: &nn.SGD{LR: 0.05}, Platforms: K, Rounds: o.rounds,
		L1SyncEvery: o.l1SyncEvery, Trace: o.trace,
	}
	if o.recovery {
		scfg.Recovery = &RecoveryConfig{Policy: o.policy, Window: 30 * time.Second, Broker: broker}
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}

	serverConns := make([]transport.Conn, K)
	platformConns := make([]transport.Conn, K)
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		sEnd, cEnd := transport.Pipe()
		if k == recoveryVictim {
			if o.wrapServer != nil {
				sEnd = o.wrapServer(sEnd, broker)
			}
			if o.wrapPlatform != nil {
				cEnd = o.wrapPlatform(cEnd)
			}
		}
		serverConns[k] = sEnd
		platformConns[k] = cEnd
		pc := PlatformConfig{
			ID: k, Front: fronts[k], Opt: &nn.SGD{LR: 0.05}, Loss: nn.SoftmaxCrossEntropy{},
			Shard: flat.Subset(shards[k]), Batch: 8, Rounds: o.rounds,
			L1SyncEvery: o.l1SyncEvery, Seed: uint64(300 + k),
		}
		if o.recovery && k == recoveryVictim {
			gate := o.redialGate
			pc.RejoinWindow = 30 * time.Second
			pc.Redial = func() (transport.Conn, error) {
				if gate != nil {
					<-gate
				}
				s2, c2 := transport.Pipe()
				go broker.Offer(s2)
				return c2, nil
			}
		}
		p, err := NewPlatform(pc)
		if err != nil {
			t.Fatal(err)
		}
		platforms[k] = p
	}

	stats := make([]*PlatformStats, K)
	errs := make([]error, K+1)
	var wg sync.WaitGroup
	wg.Add(K + 1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(serverConns); err != nil {
			errs[0] = fmt.Errorf("server: %w", err)
			for _, c := range serverConns {
				c.Close()
			}
		}
	}()
	for k := 0; k < K; k++ {
		k := k
		go func() {
			defer wg.Done()
			st, err := platforms[k].Run(platformConns[k])
			if err != nil {
				errs[k+1] = fmt.Errorf("platform %d: %w", k, err)
				platformConns[k].Close()
				return
			}
			stats[k] = st
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}

	params := make([][]*nn.Param, 0, K+1)
	for k := 0; k < K; k++ {
		params = append(params, fronts[k].Params())
	}
	return append(params, back.Params()), stats
}

// severOn builds a platform-side wrapper killing the link on the given
// outbound message of the given round.
func severOn(msg wire.MsgType, round int) func(transport.Conn) transport.Conn {
	return func(c transport.Conn) transport.Conn {
		return &severConn{Conn: c, trigger: func(m *wire.Message) bool {
			return m.Type == msg && int(m.Round) == round
		}}
	}
}

// Under WaitForRejoin, a platform killed mid-round — at every wire
// position a platform-side drop can occur — rejoins and the session
// finishes with weights bit-identical to an undisturbed run.
func TestWaitForRejoinBitIdentical(t *testing.T) {
	const rounds = 10
	baseline, _ := recoveryRun(t, recoveryOpts{rounds: rounds})

	cases := []struct {
		name string
		wrap func(transport.Conn) transport.Conn
	}{
		{"drop sending activations", severOn(wire.MsgActivations, 5)},
		{"drop sending loss gradients", severOn(wire.MsgLossGrad, 5)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			params, stats := recoveryRun(t, recoveryOpts{
				rounds: rounds, policy: WaitForRejoin, recovery: true,
				wrapPlatform: tc.wrap,
			})
			assertParamsBitIdentical(t, tc.name, baseline, params)
			if len(stats[recoveryVictim].Rounds) != rounds {
				t.Fatalf("victim trained %d rounds, want %d", len(stats[recoveryVictim].Rounds), rounds)
			}
		})
	}
}

// The stale-cut-gradient replay: the server believes it delivered the
// round's cut gradient (TCP buffered it) and moves on; the platform
// never got it. On rejoin the server replays the cached payload, the
// platform applies its missed step, and training stays bit-identical.
func TestWaitForRejoinReplaysSwallowedCutGrad(t *testing.T) {
	const rounds = 10
	baseline, _ := recoveryRun(t, recoveryOpts{rounds: rounds})
	params, stats := recoveryRun(t, recoveryOpts{
		rounds: rounds, policy: WaitForRejoin, recovery: true,
		wrapServer: func(c transport.Conn, _ *RejoinBroker) transport.Conn {
			return &swallowConn{Conn: c, trigger: func(m *wire.Message) bool {
				return m.Type == wire.MsgCutGrad && m.Round == 5
			}}
		},
	})
	assertParamsBitIdentical(t, "swallowed cut-grad replay", baseline, params)
	if len(stats[recoveryVictim].Rounds) != rounds {
		t.Fatalf("victim trained %d rounds, want %d", len(stats[recoveryVictim].Rounds), rounds)
	}
}

// Under ProceedWithout, the job completes without the dropped
// platform, it rejoins at a later round boundary, and the final
// weights are a deterministic function of the kill point: two
// identical runs agree bit for bit.
func TestProceedWithoutDeterministicCompletion(t *testing.T) {
	const rounds = 12
	a, astats := proceedRunDeterministic(t, rounds)
	b, bstats := proceedRunDeterministic(t, rounds)
	assertParamsBitIdentical(t, "proceed-without repeat", a, b)

	// The healthy platform trained every round.
	if len(astats[0].Rounds) != rounds {
		t.Fatalf("healthy platform trained %d rounds, want %d", len(astats[0].Rounds), rounds)
	}
	// The victim lost rounds 5..7 (dropped mid-5, adopted at 8).
	want := rounds - 3
	if len(astats[recoveryVictim].Rounds) != want {
		t.Fatalf("victim trained %d rounds, want %d", len(astats[recoveryVictim].Rounds), want)
	}
	for _, rs := range astats[recoveryVictim].Rounds {
		if rs.Round >= 5 && rs.Round <= 7 {
			t.Fatalf("victim reports round %d, which it was dropped for", rs.Round)
		}
	}
	if len(bstats[recoveryVictim].Rounds) != want {
		t.Fatalf("second run victim trained %d rounds, want %d", len(bstats[recoveryVictim].Rounds), want)
	}
}

// proceedRunDeterministic pins the adoption round: the victim drops at
// round 5, redials only once the server has begun round 7, and the
// healthy platform's server-side connection stalls the end of round 7
// until the rejoin offer is registered — so the server adopts the
// victim at round 8 in every run.
func proceedRunDeterministic(t *testing.T, rounds int) ([][]*nn.Param, []*PlatformStats) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	const K = 2
	train, _ := testData(t, 4, 240, 60, 171)
	flat := flatten(train)
	in := flat.X.Dim(1)
	fronts, back := buildFronts(t, 711, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(172))

	broker := NewRejoinBroker()
	defer broker.Close()

	gate := make(chan struct{})
	var gateOnce sync.Once
	srv, err := NewServer(ServerConfig{
		Back: back, Opt: &nn.SGD{LR: 0.05}, Platforms: K, Rounds: rounds,
		L1SyncEvery: 4,
		Recovery:    &RecoveryConfig{Policy: ProceedWithout, Window: 30 * time.Second, Broker: broker},
		Trace: func(e TraceEvent) {
			if e.Party == "server" && e.Dir == "recv" && e.Type == wire.MsgActivations && e.Round == 7 {
				gateOnce.Do(func() { close(gate) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	offerPending := func() bool {
		broker.mu.Lock()
		defer broker.mu.Unlock()
		return len(broker.offers[recoveryVictim]) > 0
	}

	serverConns := make([]transport.Conn, K)
	platformConns := make([]transport.Conn, K)
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		sEnd, cEnd := transport.Pipe()
		if k == 0 {
			// Barrier on the healthy platform's round-7 cut gradient —
			// the last wire op before the round-8 boundary where the
			// victim is adopted.
			sEnd = &barrierConn{Conn: sEnd, ready: offerPending, trigger: func(m *wire.Message) bool {
				return m.Type == wire.MsgCutGrad && m.Round == 7
			}}
		}
		if k == recoveryVictim {
			cEnd = severOn(wire.MsgLossGrad, 5)(cEnd)
		}
		serverConns[k] = sEnd
		platformConns[k] = cEnd
		pc := PlatformConfig{
			ID: k, Front: fronts[k], Opt: &nn.SGD{LR: 0.05}, Loss: nn.SoftmaxCrossEntropy{},
			Shard: flat.Subset(shards[k]), Batch: 8, Rounds: rounds,
			L1SyncEvery: 4, Seed: uint64(300 + k),
		}
		if k == recoveryVictim {
			pc.RejoinWindow = 30 * time.Second
			pc.Redial = func() (transport.Conn, error) {
				<-gate
				s2, c2 := transport.Pipe()
				go broker.Offer(s2)
				return c2, nil
			}
		}
		p, err := NewPlatform(pc)
		if err != nil {
			t.Fatal(err)
		}
		platforms[k] = p
	}

	stats := make([]*PlatformStats, K)
	errs := make([]error, K+1)
	var wg sync.WaitGroup
	wg.Add(K + 1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(serverConns); err != nil {
			errs[0] = fmt.Errorf("server: %w", err)
			for _, c := range serverConns {
				c.Close()
			}
		}
	}()
	for k := 0; k < K; k++ {
		k := k
		go func() {
			defer wg.Done()
			st, err := platforms[k].Run(platformConns[k])
			if err != nil {
				errs[k+1] = fmt.Errorf("platform %d: %w", k, err)
				platformConns[k].Close()
				return
			}
			stats[k] = st
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	params := make([][]*nn.Param, 0, K+1)
	for k := 0; k < K; k++ {
		params = append(params, fronts[k].Params())
	}
	return append(params, back.Params()), stats
}

// barrierConn delays one outbound message until ready() holds.
type barrierConn struct {
	transport.Conn
	trigger func(*wire.Message) bool
	ready   func() bool
	fired   bool
}

func (c *barrierConn) Send(m *wire.Message) error {
	if !c.fired && c.trigger(m) {
		c.fired = true
		for !c.ready() {
			time.Sleep(time.Millisecond)
		}
	}
	return c.Conn.Send(m)
}

// A platform that never rejoins fails the job under WaitForRejoin once
// the window expires.
func TestWaitForRejoinWindowExpires(t *testing.T) {
	const K = 1
	train, _ := testData(t, 2, 32, 8, 173)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 721, flat.X.Dim(1), 2)
	broker := NewRejoinBroker()
	defer broker.Close()
	srv := defaultServer(t, back, K, 4, func(c *ServerConfig) {
		c.Recovery = &RecoveryConfig{Policy: WaitForRejoin, Window: 50 * time.Millisecond, Broker: broker}
	})
	plat := defaultPlatform(t, 0, front, flat, 4, nil) // no Redial: it will not come back

	sEnd, cEnd := transport.Pipe()
	cKill := severOn(wire.MsgLossGrad, 1)(cEnd)
	errCh := make(chan error, 2)
	go func() { errCh <- srv.Serve([]transport.Conn{sEnd}) }()
	go func() {
		_, err := plat.Run(cKill)
		errCh <- err
	}()
	sawServerTimeout := false
	for i := 0; i < 2; i++ {
		err := <-errCh
		if err != nil && !sawServerTimeout {
			sawServerTimeout = err != nil
		}
		// Unblock the other party.
		sEnd.Close()
		cEnd.Close()
	}
	if !sawServerTimeout {
		t.Fatal("no party surfaced the expired rejoin window")
	}
}

// Broker mechanics: offers route by platform, the freshest wins, and
// non-rejoin openings are rejected.
func TestRejoinBroker(t *testing.T) {
	b := NewRejoinBroker()
	defer b.Close()

	if o := b.take(0); o != nil {
		t.Fatal("empty broker produced an offer")
	}
	if o := b.await(0, 10*time.Millisecond); o != nil {
		t.Fatal("await on an empty broker produced an offer")
	}

	offer := func(platform int, round int) {
		s, c := transport.Pipe()
		go func() {
			_ = c.Send(&wire.Message{
				Type: wire.MsgRejoin, Platform: uint32(platform), Round: uint32(round),
				Payload: wire.EncodeText(rejoinMeta(round, 0)),
			})
		}()
		if err := b.Offer(s); err != nil {
			t.Errorf("offer: %v", err)
		}
	}
	offer(2, 4)
	offer(2, 5) // retried: fresher
	o := b.take(2)
	if o == nil || int(o.rejoin.Round) != 5 {
		t.Fatalf("take returned %+v, want the freshest offer (round 5)", o)
	}
	if b.take(2) != nil {
		t.Fatal("stale offers survived take")
	}

	// Wrong opening message.
	s, c := transport.Pipe()
	go func() { _ = c.Send(&wire.Message{Type: wire.MsgHello}) }()
	if err := b.Offer(s); err == nil {
		t.Fatal("broker accepted a non-rejoin opening")
	}
}

// Recovery configuration is sequential-only and must be complete.
func TestRecoveryConfigValidation(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 174)
	flat := flatten(train)
	_, back := buildSplitMLP(t, 731, flat.X.Dim(1), 2)
	broker := NewRejoinBroker()
	defer broker.Close()
	ok := &RecoveryConfig{Policy: WaitForRejoin, Window: time.Second, Broker: broker}

	mk := func(mut func(*ServerConfig)) error {
		cfg := ServerConfig{Back: back, Opt: &nn.SGD{}, Platforms: 1, Rounds: 1, Recovery: ok}
		if mut != nil {
			mut(&cfg)
		}
		_, err := NewServer(cfg)
		return err
	}
	if err := mk(nil); err != nil {
		t.Fatalf("valid recovery config rejected: %v", err)
	}
	if err := mk(func(c *ServerConfig) { c.Mode = RoundModeConcat }); err == nil {
		t.Fatal("recovery with concat mode accepted")
	}
	if err := mk(func(c *ServerConfig) {
		c.Mode = RoundModePipelined
		c.PipelineDepth = 1
	}); err == nil {
		t.Fatal("recovery with pipelined mode accepted")
	}
	if err := mk(func(c *ServerConfig) { c.Recovery = &RecoveryConfig{Policy: WaitForRejoin, Window: time.Second} }); err == nil {
		t.Fatal("recovery without a broker accepted")
	}
	if err := mk(func(c *ServerConfig) {
		c.Recovery = &RecoveryConfig{Policy: RejoinPolicy(9), Window: time.Second, Broker: broker}
	}); err == nil {
		t.Fatal("unknown rejoin policy accepted")
	}
	if err := mk(func(c *ServerConfig) { c.Recovery = &RecoveryConfig{Policy: ProceedWithout, Broker: broker} }); err == nil {
		t.Fatal("recovery without a window accepted")
	}

	front, _ := buildSplitMLP(t, 731, flat.X.Dim(1), 2)
	pcfg := PlatformConfig{
		ID: 0, Front: front, Opt: &nn.SGD{}, Loss: nn.SoftmaxCrossEntropy{},
		Shard: flat, Batch: 4, Rounds: 1,
		Redial: func() (transport.Conn, error) { return nil, nil },
	}
	if _, err := NewPlatform(pcfg); err == nil {
		t.Fatal("Redial without RejoinWindow accepted")
	}
}
