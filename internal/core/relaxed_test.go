package core

import (
	"math"
	"testing"

	"medsplit/internal/dataset"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/transport/testutil"
)

// relaxedRun executes one full split session on a fixed-seed
// 3-platform MLP workload under the given scheduling mode and returns
// the final parameters (per-platform fronts, then the server back).
// All randomness is pinned, so two runs with the same arguments must be
// bit-identical — the property the differential tests below lean on.
func relaxedRun(t *testing.T, mode RoundMode, staleness, l1sync, rounds int) ([][]*nn.Param, []*PlatformStats) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	const K = 3
	train, _ := testData(t, 4, 240, 60, 93)
	flat := flatten(train)
	in := flat.X.Dim(1)

	fronts, back := buildFronts(t, 313, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(94))
	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.Mode = mode
		c.Staleness = staleness
		c.L1SyncEvery = l1sync
	})
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
			c.L1SyncEvery = l1sync
		})
	}
	stats, err := RunLocal(srv, platforms)
	if err != nil {
		t.Fatal(err)
	}
	params := make([][]*nn.Param, 0, K+1)
	for k := 0; k < K; k++ {
		params = append(params, fronts[k].Params())
	}
	params = append(params, back.Params())
	return params, stats
}

// The acceptance bar for the bounded-staleness mode: at K=0 it is
// scheduled by the very same sequential scheduler, so the whole model —
// every platform front and the server back — must match sequential
// training down to the float bit pattern.
func TestBoundedStalenessK0BitIdenticalToSequential(t *testing.T) {
	const rounds = 12
	seq, _ := relaxedRun(t, RoundModeSequential, 0, 0, rounds)
	bs, _ := relaxedRun(t, RoundModeBoundedStaleness, 0, 0, rounds)
	assertParamsBitIdentical(t, "bounded-staleness K=0 vs sequential", seq, bs)
}

// K=0 with periodic L1 sync still routes through the sequential
// scheduler; the sync boundary must not disturb the equivalence.
func TestBoundedStalenessK0WithSyncBitIdentical(t *testing.T) {
	const rounds = 8
	seq, _ := relaxedRun(t, RoundModeSequential, 0, 2, rounds)
	bs, _ := relaxedRun(t, RoundModeBoundedStaleness, 0, 2, rounds)
	assertParamsBitIdentical(t, "bounded-staleness K=0 + L1 sync vs sequential", seq, bs)
}

// paramsDiffer reports whether any scalar differs between the two
// parameter sets.
func paramsDiffer(a, b [][]*nn.Param) bool {
	for s := range a {
		for i := range a[s] {
			x, y := a[s][i].W.Data(), b[s][i].W.Data()
			for j := range x {
				if math.Float32bits(x[j]) != math.Float32bits(y[j]) {
					return true
				}
			}
		}
	}
	return false
}

// K >= 1 runs staggered half-exchange windows, so the optimizer step
// order genuinely changes: the trajectory must diverge from sequential
// (the mode is not a no-op) yet reproduce itself bit for bit under the
// same seeds, and still make training progress.
func TestBoundedStalenessDeterministicAndDiverges(t *testing.T) {
	const rounds = 12
	a, astats := relaxedRun(t, RoundModeBoundedStaleness, 2, 0, rounds)
	b, _ := relaxedRun(t, RoundModeBoundedStaleness, 2, 0, rounds)
	assertParamsBitIdentical(t, "bounded-staleness K=2 repeat", a, b)

	seq, _ := relaxedRun(t, RoundModeSequential, 0, 0, rounds)
	if !paramsDiffer(seq, a) {
		t.Fatal("bounded-staleness K=2 matched sequential bit for bit; the relaxed schedule is not engaging")
	}
	for k, st := range astats {
		if len(st.Rounds) != rounds {
			t.Fatalf("platform %d recorded %d rounds, want %d", k, len(st.Rounds), rounds)
		}
	}
	if astats[0].FinalLoss() >= astats[0].Rounds[0].Loss {
		t.Fatalf("bounded-staleness loss did not decrease: %v -> %v",
			astats[0].Rounds[0].Loss, astats[0].FinalLoss())
	}
}

// SplitFed local-parallel training: windows span whole averaging
// periods, every platform's L1 half is averaged at each sync boundary,
// and the run is deterministic. After the final sync round the fronts
// must be bit-identical across platforms — the averaging leaves every
// platform with the same L1 weights.
func TestSplitFedDeterministicAndAveragesFronts(t *testing.T) {
	const rounds, sync = 12, 3 // rounds%sync == 0: the last round is a sync boundary
	a, astats := relaxedRun(t, RoundModeSplitFed, 0, sync, rounds)
	b, _ := relaxedRun(t, RoundModeSplitFed, 0, sync, rounds)
	assertParamsBitIdentical(t, "splitfed repeat", a, b)

	fronts := a[:len(a)-1]
	for k := 1; k < len(fronts); k++ {
		for i := range fronts[0] {
			x, y := fronts[0][i].W.Data(), fronts[k][i].W.Data()
			for j := range x {
				if math.Float32bits(x[j]) != math.Float32bits(y[j]) {
					t.Fatalf("platform %d front param %d differs from platform 0 after final sync", k, i)
				}
			}
		}
	}
	if astats[0].FinalLoss() >= astats[0].Rounds[0].Loss {
		t.Fatalf("splitfed loss did not decrease: %v -> %v",
			astats[0].Rounds[0].Loss, astats[0].FinalLoss())
	}
}

// Relaxed-mode configuration gates: the windowed scheduler runs
// exchanges ahead of the session loop's round counter, so features that
// assume synchronized round boundaries are rejected up front.
func TestRelaxedModeConfigValidation(t *testing.T) {
	train, _ := testData(t, 2, 32, 8, 95)
	flat := flatten(train)
	_, back := buildFronts(t, 317, 1, flat.X.Dim(1), 2)
	base := func() ServerConfig {
		return ServerConfig{Back: back, Opt: &nn.SGD{LR: 0.05}, Platforms: 1, Rounds: 4}
	}

	cfg := base()
	cfg.Staleness = -1
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("negative staleness accepted")
	}
	cfg = base()
	cfg.Staleness = 2 // without BoundedStaleness mode
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("staleness outside bounded-staleness mode accepted")
	}
	cfg = base()
	cfg.Mode = RoundModeSplitFed
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("splitfed without L1SyncEvery accepted")
	}
	cfg = base()
	cfg.Mode = RoundModeBoundedStaleness
	cfg.Staleness = 1
	cfg.CheckpointDir = t.TempDir()
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("relaxed mode with checkpoints accepted")
	}
	cfg = base()
	cfg.Mode = RoundModeBoundedStaleness
	cfg.Recovery = &RecoveryConfig{}
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("relaxed mode with dropout recovery accepted")
	}
	cfg = base()
	cfg.Mode = RoundModeSplitFed
	cfg.L1SyncEvery = 2
	cfg.Replication = &ReplicationConfig{}
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("relaxed mode with replication accepted")
	}
	cfg = base()
	cfg.Mode = RoundModeBoundedStaleness
	cfg.LRSchedule = nn.StepDecay(0.05, 0.5, 1)
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("relaxed mode with LR schedule accepted")
	}

	cfg = base()
	cfg.Mode = RoundModeBoundedStaleness
	cfg.Staleness = 4
	if _, err := NewServer(cfg); err != nil {
		t.Fatalf("valid bounded-staleness config rejected: %v", err)
	}
	cfg = base()
	cfg.Mode = RoundModeSplitFed
	cfg.L1SyncEvery = 2
	if _, err := NewServer(cfg); err != nil {
		t.Fatalf("valid splitfed config rejected: %v", err)
	}
}
