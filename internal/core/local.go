package core

import (
	"errors"
	"fmt"
	"sync"

	"medsplit/internal/transport"
)

// Meter returns the meter configured for this platform, if any.
func (p *Platform) Meter() *transport.Meter { return p.cfg.Meter }

// ID returns the platform's index.
func (p *Platform) ID() int { return p.cfg.ID }

// RunLocal executes a complete split-learning session in-process: it
// connects every platform to the server over pipe transports (metered
// when the platform has a meter configured), runs all parties to
// completion, and returns the per-platform stats in platform order.
//
// It is the engine behind the simulations, experiments and benchmarks;
// real deployments use the same Server/Platform code over TCP (see
// cmd/splitserver and cmd/splitplatform).
func RunLocal(server *Server, platforms []*Platform) ([]*PlatformStats, error) {
	if server == nil {
		return nil, fmt.Errorf("%w: nil server", ErrConfig)
	}
	serverConns := make([]transport.Conn, len(platforms))
	platformConns := make([]transport.Conn, len(platforms))
	for k, p := range platforms {
		s, c := transport.Pipe()
		serverConns[k] = s
		if p.cfg.Meter != nil {
			c = transport.Metered(c, p.cfg.Meter)
		}
		platformConns[k] = c
	}
	return RunConnected(server, platforms, serverConns, platformConns)
}

// RunConnected executes a session over caller-provided connections:
// serverConns[k] and platformConns[k] are the two ends of platform k's
// link (pipes, TCP, or a simulated WAN — see internal/simnet). The
// caller applies any metering wrapper to the platform ends before
// passing them in; RunConnected owns the connections from here on and
// closes them all before returning, so a failing party always unblocks
// the others. One goroutine drives the server session and one drives
// each platform — the per-connection I/O goroutine budget beyond that
// belongs to the server's scheduling mode (see
// ServerConfig.IOGoroutineBudget).
func RunConnected(server *Server, platforms []*Platform, serverConns, platformConns []transport.Conn) ([]*PlatformStats, error) {
	// Close everything on exit — including the validation-error exits
	// below — so a failing party (or a misconfigured harness) always
	// unblocks peers parked in Recv on the other end.
	defer func() {
		for _, c := range serverConns {
			if c != nil {
				c.Close()
			}
		}
		for _, c := range platformConns {
			if c != nil {
				c.Close()
			}
		}
	}()
	if server == nil {
		return nil, fmt.Errorf("%w: nil server", ErrConfig)
	}
	if len(platforms) != server.cfg.Platforms {
		return nil, fmt.Errorf("%w: %d platforms for a %d-platform server", ErrConfig, len(platforms), server.cfg.Platforms)
	}
	if len(serverConns) != len(platforms) || len(platformConns) != len(platforms) {
		return nil, fmt.Errorf("%w: %d platforms with %d server / %d platform connections",
			ErrConfig, len(platforms), len(serverConns), len(platformConns))
	}

	stats := make([]*PlatformStats, len(platforms))
	errs := make([]error, len(platforms)+1)
	var wg sync.WaitGroup
	wg.Add(len(platforms) + 1)
	go func() {
		defer wg.Done()
		if err := server.Serve(serverConns); err != nil {
			errs[0] = fmt.Errorf("server: %w", err)
			// Unblock platforms waiting on the dead server.
			for _, c := range serverConns {
				c.Close()
			}
		}
	}()
	for k, p := range platforms {
		k, p := k, p
		go func() {
			defer wg.Done()
			st, err := p.Run(platformConns[k])
			if err != nil {
				errs[k+1] = fmt.Errorf("platform %d: %w", k, err)
				platformConns[k].Close()
				return
			}
			stats[k] = st
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return stats, nil
}
