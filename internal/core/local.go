package core

import (
	"errors"
	"fmt"
	"sync"

	"medsplit/internal/transport"
)

// Meter returns the meter configured for this platform, if any.
func (p *Platform) Meter() *transport.Meter { return p.cfg.Meter }

// ID returns the platform's index.
func (p *Platform) ID() int { return p.cfg.ID }

// RunLocal executes a complete split-learning session in-process: it
// connects every platform to the server over pipe transports (metered
// when the platform has a meter configured), runs all parties to
// completion, and returns the per-platform stats in platform order.
//
// It is the engine behind the simulations, experiments and benchmarks;
// real deployments use the same Server/Platform code over TCP (see
// cmd/splitserver and cmd/splitplatform).
func RunLocal(server *Server, platforms []*Platform) ([]*PlatformStats, error) {
	if server == nil {
		return nil, fmt.Errorf("%w: nil server", ErrConfig)
	}
	if len(platforms) != server.cfg.Platforms {
		return nil, fmt.Errorf("%w: %d platforms for a %d-platform server", ErrConfig, len(platforms), server.cfg.Platforms)
	}
	serverConns := make([]transport.Conn, len(platforms))
	platformConns := make([]transport.Conn, len(platforms))
	for k, p := range platforms {
		s, c := transport.Pipe()
		serverConns[k] = s
		if p.cfg.Meter != nil {
			c = transport.Metered(c, p.cfg.Meter)
		}
		platformConns[k] = c
	}
	// Close everything on exit so a failing party unblocks the others.
	defer func() {
		for k := range platforms {
			serverConns[k].Close()
			platformConns[k].Close()
		}
	}()

	stats := make([]*PlatformStats, len(platforms))
	errs := make([]error, len(platforms)+1)
	var wg sync.WaitGroup
	wg.Add(len(platforms) + 1)
	go func() {
		defer wg.Done()
		if err := server.Serve(serverConns); err != nil {
			errs[0] = fmt.Errorf("server: %w", err)
			// Unblock platforms waiting on the dead server.
			for _, c := range serverConns {
				c.Close()
			}
		}
	}()
	for k, p := range platforms {
		k, p := k, p
		go func() {
			defer wg.Done()
			st, err := p.Run(platformConns[k])
			if err != nil {
				errs[k+1] = fmt.Errorf("platform %d: %w", k, err)
				platformConns[k].Close()
				return
			}
			stats[k] = st
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return stats, nil
}
