package core

import (
	"testing"

	"medsplit/internal/compress"
	"medsplit/internal/dataset"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// runWithCodec trains a small 2-platform session using the given codec
// on both ends and returns final platform-0 loss plus total training
// bytes.
func runWithCodec(t *testing.T, codec wire.Codec, rounds int) (loss float64, bytes int64) {
	t.Helper()
	train, _ := testData(t, 3, 120, 8, 61)
	flat := flatten(train)
	const K = 2
	fronts, back := buildFronts(t, 201, K, flat.X.Dim(1), 3)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(62))

	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.Codec = codec
	})
	meters := make([]*transport.Meter, K)
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		meters[k] = &transport.Meter{}
		k := k
		platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
			c.Codec = codec
			c.Meter = meters[k]
		})
	}
	stats, err := RunLocal(srv, platforms)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, m := range meters {
		total += TrainingBytes(m)
	}
	return stats[0].FinalLoss(), total
}

func TestCompressionCodecsTrainAndShrinkTraffic(t *testing.T) {
	const rounds = 12
	rawLoss, rawBytes := runWithCodec(t, wire.RawCodec{}, rounds)
	if rawLoss <= 0 {
		t.Fatalf("raw loss %v", rawLoss)
	}
	for _, codec := range []wire.Codec{compress.Float16{}, compress.Int8{}} {
		loss, bytes := runWithCodec(t, codec, rounds)
		if bytes >= rawBytes {
			t.Errorf("%s: %d bytes, raw %d — compression must shrink traffic", codec.Name(), bytes, rawBytes)
		}
		// Lossy but mild: training still converges to the same ballpark.
		if loss > 2*rawLoss+0.5 {
			t.Errorf("%s: final loss %v, raw %v — compression broke training", codec.Name(), loss, rawLoss)
		}
	}
}

func TestTopKCodecStillLearns(t *testing.T) {
	// Keeping 30% of activation entries is aggressive; training should
	// still make progress even if slower.
	loss, bytes := runWithCodec(t, compress.TopK{Fraction: 0.3}, 12)
	_, rawBytes := runWithCodec(t, wire.RawCodec{}, 12)
	if bytes >= rawBytes {
		t.Fatalf("topk bytes %d >= raw %d", bytes, rawBytes)
	}
	if loss > 1.3 { // ln(3) ≈ 1.10 is the chance-level loss for 3 classes
		t.Fatalf("topk training stuck at chance: loss %v", loss)
	}
}

func TestCodecMismatchRejectedAtHandshake(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 63)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 211, flat.X.Dim(1), 2)
	srv := defaultServer(t, back, 1, 2, func(c *ServerConfig) {
		c.Codec = compress.Float16{}
	})
	plat := defaultPlatform(t, 0, front, flat, 2, nil) // raw codec
	if _, err := RunLocal(srv, []*Platform{plat}); err == nil {
		t.Fatal("codec mismatch accepted")
	}
}

func TestL1SyncStaysExactUnderLossyCodec(t *testing.T) {
	// Lossy codecs apply to the activation path only; L1 weight sync
	// must still converge fronts to identical values.
	train, _ := testData(t, 3, 80, 8, 64)
	flat := flatten(train)
	const K, rounds = 2, 4
	fronts, back := buildFronts(t, 221, K, flat.X.Dim(1), 3)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(65))
	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.Codec = compress.Int8{}
		c.L1SyncEvery = 2
	})
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		k := k
		platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
			c.Codec = compress.Int8{}
			c.L1SyncEvery = 2
		})
	}
	if _, err := RunLocal(srv, platforms); err != nil {
		t.Fatal(err)
	}
	p0, p1 := fronts[0].Params(), fronts[1].Params()
	for i := range p0 {
		if !tensor.AllClose(p0[i].W, p1[i].W, 1e-6) {
			t.Fatalf("L1 param %d differs after sync under lossy codec", i)
		}
	}
}
