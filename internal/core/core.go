// Package core implements the paper's contribution: a split-learning
// engine for geo-distributed medical platforms. The network's first
// hidden layer (L1) lives on each platform next to the raw patient
// data; the remaining layers (L2 … Lk) live on a central server. Per
// minibatch the parties exchange exactly four messages (paper Fig. 2/3):
//
//  1. platform → server  MsgActivations  L1 output on the minibatch
//  2. server → platform  MsgLogits       Lk output after server forward
//  3. platform → server  MsgLossGrad     dLoss/dLogits (labels stay local)
//  4. server → platform  MsgCutGrad      dLoss/d(L1 output)
//
// Raw inputs and labels never cross the wire in the default
// (label-private) mode — the privacy tests in this package assert it.
// The engine also implements the paper's data-imbalance mitigation
// (per-platform minibatch sizes proportional to local data volume, via
// package dataset), an optional label-sharing ablation that halves the
// message count at the cost of label privacy, an optional periodic L1
// weight synchronization, and two server scheduling modes.
package core

import (
	"errors"
	"fmt"
	"sync"

	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// RoundMode selects how the server schedules platform minibatches
// within a round.
type RoundMode int

// Round modes. Sequential processes each platform's minibatch as its
// own forward/backward/step (k optimizer steps per round, the reading
// most consistent with the paper's flowchart). Concat fuses all
// platforms' minibatches into one batch and takes a single step per
// round on the union gradient. Pipelined keeps Sequential's optimizer
// semantics (one step per platform, deterministic platform order) but
// overlaps WAN I/O with server compute: per-connection reader/writer
// goroutines (transport.AsyncConn) receive platform k+1's activations
// and ship platform k-1's cut gradients while the server computes
// platform k's forward/backward. At PipelineDepth 1 the training
// trajectory is bit-identical to Sequential; at depth >= 2 platforms
// with a ShadowFront additionally overlap their local L1 backward with
// the next batch's forward (one-step-stale L1 weights, same final
// accuracy — see README "Scheduling modes").
// BoundedStaleness and SplitFed relax that bit-identical contract in
// exchange for wall-clock (see README "Consistency spectrum").
// BoundedStaleness applies each platform's updates as they arrive, but
// caps how far any platform may run ahead of the slowest one at
// ServerConfig.Staleness rounds; a cap of 0 degenerates to — and is
// scheduled by — the sequential scheduler, so it is bit-identical to
// RoundModeSequential by construction. SplitFed removes the cap
// entirely within an averaging period: platforms train local-parallel
// against per-arrival server updates and their L1 halves are averaged
// every L1SyncEvery rounds through the session state machine's sync
// phase (which reuses internal/fedavg's aggregation math).
const (
	RoundModeSequential RoundMode = iota + 1
	RoundModeConcat
	RoundModePipelined
	RoundModeBoundedStaleness
	RoundModeSplitFed
)

// String names the mode.
func (m RoundMode) String() string {
	switch m {
	case RoundModeSequential:
		return "sequential"
	case RoundModeConcat:
		return "concat"
	case RoundModePipelined:
		return "pipelined"
	case RoundModeBoundedStaleness:
		return "bounded-staleness"
	case RoundModeSplitFed:
		return "splitfed"
	default:
		return fmt.Sprintf("roundmode(%d)", int(m))
	}
}

// Protocol errors.
var (
	// ErrProtocol reports an out-of-sequence or malformed message.
	ErrProtocol = errors.New("core: protocol violation")
	// ErrConfig reports an invalid or inconsistent configuration.
	ErrConfig = errors.New("core: invalid configuration")
	// ErrStopped reports a graceful shutdown: the party finished its
	// round, wrote its final checkpoint (when configured) and left the
	// session on purpose (see Server.Stop / Platform.Stop).
	ErrStopped = errors.New("core: stopped at round boundary by request")
)

// TraceEvent records one protocol step as observed by a party. The
// trace reproduces the paper's Fig. 3 workflow and feeds the
// sequence-validation tests.
type TraceEvent struct {
	Party    string // "server" or "platform-<id>"
	Dir      string // "send" or "recv"
	Type     wire.MsgType
	Platform int
	Round    int
	Bytes    int
}

// String renders the event compactly.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%s %s %s p%d r%d %dB", e.Party, e.Dir, e.Type, e.Platform, e.Round, e.Bytes)
}

// TraceFunc observes protocol events. Implementations must be fast; the
// engine calls them inline.
type TraceFunc func(TraceEvent)

// Recorder is a thread-safe TraceFunc that stores events.
type Recorder struct {
	mu     sync.Mutex
	events []TraceEvent
}

// Record appends an event; pass bound method Recorder.Record as a
// TraceFunc.
func (r *Recorder) Record(e TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TraceEvent(nil), r.events...)
}

// trainingTypes are the message types whose bytes count as training
// communication — the quantity the paper's Fig. 4 reports. Session
// control (hello, ack, bye) and evaluation traffic are excluded.
var trainingTypes = []wire.MsgType{
	wire.MsgActivations,
	wire.MsgLogits,
	wire.MsgLossGrad,
	wire.MsgCutGrad,
	wire.MsgLabels,
	wire.MsgModelPull,
	wire.MsgModelPush,
	wire.MsgGradPush,
}

// TrainingBytes sums the bytes a meter saw, in both directions, for
// training message types only.
func TrainingBytes(m *transport.Meter) int64 {
	var total int64
	for _, t := range trainingTypes {
		total += m.TxBytesByType(t) + m.RxBytesByType(t)
	}
	return total
}

// recvExpect reads one message and validates its type (and, when round
// >= 0, its round number).
func recvExpect(conn transport.Conn, want wire.MsgType, round int) (*wire.Message, error) {
	m, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("core: receiving %s: %w", want, err)
	}
	if m.Type == wire.MsgErrorMsg {
		text, terr := wire.DecodeText(m.Payload)
		if terr != nil {
			text = "(unreadable)"
		}
		return nil, fmt.Errorf("%w: peer error: %s", ErrProtocol, text)
	}
	if m.Type != want {
		return nil, fmt.Errorf("%w: got %s, want %s", ErrProtocol, m.Type, want)
	}
	if round >= 0 && m.Round != uint32(round) {
		return nil, fmt.Errorf("%w: %s for round %d, want %d", ErrProtocol, m.Type, m.Round, round)
	}
	return m, nil
}
