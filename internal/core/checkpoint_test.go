package core

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sync"
	"testing"

	"medsplit/internal/dataset"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// ---------------------------------------------------------------------------
// Container encode/decode

func sampleSnapshot() *Snapshot {
	a := tensor.New(2, 3)
	for i, v := range []float32{1, -2, 3.5, 0, 42, -0.125} {
		a.Data()[i] = v
	}
	b := tensor.New(4)
	return &Snapshot{
		Role:      RolePlatform,
		Platform:  3,
		NextRound: 9,
		Scalars:   []uint64{7, 0xdeadbeef, 1<<63 + 5},
		Tensors:   []*tensor.Tensor{a, b},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Role != want.Role || got.Platform != want.Platform || got.NextRound != want.NextRound {
		t.Fatalf("header %v/%d/%d, want %v/%d/%d", got.Role, got.Platform, got.NextRound, want.Role, want.Platform, want.NextRound)
	}
	if len(got.Scalars) != len(want.Scalars) {
		t.Fatalf("%d scalars, want %d", len(got.Scalars), len(want.Scalars))
	}
	for i := range want.Scalars {
		if got.Scalars[i] != want.Scalars[i] {
			t.Fatalf("scalar %d: %d, want %d", i, got.Scalars[i], want.Scalars[i])
		}
	}
	if len(got.Tensors) != len(want.Tensors) {
		t.Fatalf("%d tensors, want %d", len(got.Tensors), len(want.Tensors))
	}
	for i := range want.Tensors {
		if !tensor.SameShape(got.Tensors[i], want.Tensors[i]) {
			t.Fatalf("tensor %d shape %v, want %v", i, got.Tensors[i].Shape(), want.Tensors[i].Shape())
		}
		x, y := got.Tensors[i].Data(), want.Tensors[i].Data()
		for j := range y {
			if x[j] != y[j] {
				t.Fatalf("tensor %d scalar %d: %v, want %v", i, j, x[j], y[j])
			}
		}
	}
}

// refreshCRC recomputes the trailing checksum after a targeted body
// mutation, so structural validation (not just the CRC) is exercised.
func refreshCRC(b []byte) []byte {
	body := b[:len(b)-4]
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(body))
	return b
}

func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	mk := func() []byte { return EncodeSnapshot(sampleSnapshot()) }
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated header", func(b []byte) []byte { return b[:8] }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-9] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return refreshCRC(b) }},
		{"bad role", func(b []byte) []byte { b[5] = 42; return refreshCRC(b) }},
		{"flipped payload bit", func(b []byte) []byte { b[len(b)-12] ^= 0x01; return b }},
		{"scalar count overflow", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[14:], 0xffffff)
			return refreshCRC(b)
		}},
		{"tensor length mismatch", func(b []byte) []byte {
			// The tensor-block length prefix sits right after the scalars.
			off := 18 + 8*3
			binary.LittleEndian.PutUint32(b[off:], uint32(len(b)))
			return refreshCRC(b)
		}},
		{"garbage tensor block", func(b []byte) []byte {
			off := 18 + 8*3 + 4
			b[off] = 0xee
			return refreshCRC(b)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSnapshot(tc.mut(mk())); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("err = %v, want ErrBadSnapshot", err)
			}
		})
	}
}

// FuzzDecodeSnapshot hammers the decoder with arbitrary bytes: it must
// reject garbage with ErrBadSnapshot (never panic or over-allocate),
// and anything it accepts must re-encode to a decodable equivalent.
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(EncodeSnapshot(sampleSnapshot()))
	f.Add(EncodeSnapshot(&Snapshot{Role: RoleServer}))
	f.Add(EncodeSnapshot(&Snapshot{Role: RolePlatform, NextRound: 1, Scalars: []uint64{0}}))
	f.Add([]byte("MSNP garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("non-sentinel decode error: %v", err)
			}
			return
		}
		s2, err := DecodeSnapshot(EncodeSnapshot(s))
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot failed to decode: %v", err)
		}
		if s2.Role != s.Role || s2.Platform != s.Platform || s2.NextRound != s.NextRound ||
			len(s2.Scalars) != len(s.Scalars) || len(s2.Tensors) != len(s.Tensors) {
			t.Fatal("round trip changed the snapshot")
		}
	})
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := ServerSnapshotPath(dir)
	want := sampleSnapshot()
	if err := SaveSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextRound != want.NextRound || len(got.Tensors) != len(want.Tensors) {
		t.Fatal("file round trip changed the snapshot")
	}
}

// ---------------------------------------------------------------------------
// Restore validation

func TestRestoreSnapshotValidation(t *testing.T) {
	train, _ := testData(t, 3, 60, 8, 41)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 211, flat.X.Dim(1), 3)
	srv := defaultServer(t, back, 1, 8, nil)
	plat := defaultPlatform(t, 0, front, flat, 8, nil)

	srvSnap := srv.Snapshot(0)
	platSnap := plat.Snapshot(0)

	if err := srv.RestoreSnapshot(platSnap); err == nil {
		t.Fatal("server accepted a platform snapshot")
	}
	if err := plat.RestoreSnapshot(srvSnap); err == nil {
		t.Fatal("platform accepted a server snapshot")
	}
	late := srv.Snapshot(5)
	if err := srv.RestoreSnapshot(late); err == nil {
		t.Fatal("server accepted a snapshot for a different start round")
	}
	wrongID := plat.Snapshot(0)
	wrongID.Platform = 7
	if err := plat.RestoreSnapshot(wrongID); err == nil {
		t.Fatal("platform accepted another platform's snapshot")
	}
	// Wrong architecture: tensor shapes must be validated. A different
	// hidden width changes both halves' shapes.
	m := models.MLP(flat.X.Dim(1), []int{16}, 3, rng.New(212))
	otherFront, otherBack, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	otherSrv := defaultServer(t, otherBack, 1, 8, nil)
	if err := otherSrv.RestoreSnapshot(srvSnap); err == nil {
		t.Fatal("server accepted a snapshot from a different architecture")
	}
	otherPlat := defaultPlatform(t, 0, otherFront, flat, 8, nil)
	if err := otherPlat.RestoreSnapshot(platSnap); err == nil {
		t.Fatal("platform accepted a snapshot from a different architecture")
	}
}

// ---------------------------------------------------------------------------
// The differential guarantee: checkpoint at round r + resume equals an
// uninterrupted run bit for bit.

type diffOpts struct {
	mode        RoundMode
	depth       int
	momentum    bool
	l1SyncEvery int
}

// diffRun builds a fresh 2-platform split session from fixed seeds and
// runs rounds [start, rounds). With ckptEvery > 0 it writes snapshots
// into dir; with resume it restores the whole session from dir first.
// Returns the final parameters (fronts then back).
func diffRun(t *testing.T, o diffOpts, rounds, start int, dir string, ckptEvery int, resume bool) [][]*nn.Param {
	t.Helper()
	const K = 2
	train, _ := testData(t, 4, 240, 60, 143)
	flat := flatten(train)
	in := flat.X.Dim(1)
	fronts, back := buildFronts(t, 611, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(144))

	mkOpt := func() nn.Optimizer {
		if o.momentum {
			return &nn.Momentum{LR: 0.05, Mu: 0.9}
		}
		return &nn.SGD{LR: 0.05}
	}
	srv, err := NewServer(ServerConfig{
		Back: back, Opt: mkOpt(), Platforms: K, Rounds: rounds, StartRound: start,
		Mode: o.mode, PipelineDepth: o.depth, L1SyncEvery: o.l1SyncEvery,
		CheckpointEvery: ckptEvery, CheckpointDir: ckptDirFor(dir, ckptEvery, resume),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resume {
		snap, err := LoadLatestSnapshot(dir, RoleServer, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.RestoreSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		p, err := NewPlatform(PlatformConfig{
			ID: k, Front: fronts[k], Opt: mkOpt(), Loss: nn.SoftmaxCrossEntropy{},
			Shard: flat.Subset(shards[k]), Batch: 8, Rounds: rounds, StartRound: start,
			L1SyncEvery: o.l1SyncEvery, Seed: uint64(500 + k),
			CheckpointEvery: ckptEvery, CheckpointDir: ckptDirFor(dir, ckptEvery, resume),
		})
		if err != nil {
			t.Fatal(err)
		}
		if resume {
			snap, err := LoadLatestSnapshot(dir, RolePlatform, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.RestoreSnapshot(snap); err != nil {
				t.Fatal(err)
			}
		}
		platforms[k] = p
	}
	if _, err := RunLocal(srv, platforms); err != nil {
		t.Fatal(err)
	}
	params := make([][]*nn.Param, 0, K+1)
	for k := 0; k < K; k++ {
		params = append(params, fronts[k].Params())
	}
	return append(params, back.Params())
}

// ckptDirFor passes the checkpoint directory only to the run that
// writes checkpoints (resumed runs read them via LoadSnapshotFile; the
// uninterrupted baseline writes nothing).
func ckptDirFor(dir string, every int, resume bool) string {
	if every > 0 {
		return dir
	}
	return ""
}

// A run checkpointed at round r and resumed must produce bit-identical
// weights to an uninterrupted run — for sequential, concat and
// pipelined (depth 1) scheduling, with both stateless (SGD) and
// stateful (momentum) optimizers, across L1-sync boundaries.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const total, cut = 12, 7
	cases := []struct {
		name string
		o    diffOpts
	}{
		{"sequential", diffOpts{mode: RoundModeSequential}},
		{"concat", diffOpts{mode: RoundModeConcat}},
		{"pipelined-depth1", diffOpts{mode: RoundModePipelined, depth: 1}},
		{"sequential-momentum-l1sync", diffOpts{mode: RoundModeSequential, momentum: true, l1SyncEvery: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full := diffRun(t, tc.o, total, 0, "", 0, false)

			dir := t.TempDir()
			// Segment 1: rounds [0, cut), snapshots written at the final
			// boundary (cut is a multiple of itself).
			_ = diffRun(t, tc.o, cut, 0, dir, cut, false)
			// Segment 2: fresh processes restore and run rounds [cut, total).
			resumed := diffRun(t, tc.o, total, cut, dir, 0, true)

			assertParamsBitIdentical(t, tc.name+" resumed vs uninterrupted", full, resumed)
		})
	}
}

// The checkpoint schedule writes at every due boundary, and the files
// carry the round counter a resume needs.
func TestCheckpointScheduleWritesNextRound(t *testing.T) {
	dir := t.TempDir()
	_ = diffRun(t, diffOpts{mode: RoundModeSequential}, 6, 0, dir, 3, false)
	snap, err := LoadSnapshotFile(ServerSnapshotGenPath(dir, 6))
	if err != nil {
		t.Fatal(err)
	}
	if snap.NextRound != 6 {
		t.Fatalf("final server snapshot resumes at %d, want 6", snap.NextRound)
	}
	for k := 0; k < 2; k++ {
		ps, err := LoadSnapshotFile(PlatformSnapshotPath(dir, k))
		if err != nil {
			t.Fatal(err)
		}
		if ps.NextRound != 6 {
			t.Fatalf("platform %d snapshot resumes at %d, want 6", k, ps.NextRound)
		}
		if ps.Platform != k {
			t.Fatalf("platform snapshot carries id %d, want %d", ps.Platform, k)
		}
	}
}

// A graceful stop writes the final checkpoint and surfaces ErrStopped;
// a session resumed from it matches the uninterrupted run bit for bit.
func TestGracefulStopCheckpointsAndResumes(t *testing.T) {
	const total = 10
	full := diffRun(t, diffOpts{mode: RoundModeSequential}, total, 0, "", 0, false)

	// Interrupted run: the server is stopped before round 0 even starts
	// (the flag is checked at boundaries), so it trains some prefix of
	// rounds and checkpoints wherever it lands deterministically — here
	// we stop after the handshake by setting the flag immediately; the
	// first boundary (after round 0) honors it.
	const K = 2
	train, _ := testData(t, 4, 240, 60, 143)
	flat := flatten(train)
	in := flat.X.Dim(1)
	fronts, back := buildFronts(t, 611, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(144))
	dir := t.TempDir()
	srv, err := NewServer(ServerConfig{
		Back: back, Opt: &nn.SGD{LR: 0.05}, Platforms: K, Rounds: total,
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Stop() // requested before serving: honored at the first boundary
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		p, err := NewPlatform(PlatformConfig{
			ID: k, Front: fronts[k], Opt: &nn.SGD{LR: 0.05}, Loss: nn.SoftmaxCrossEntropy{},
			Shard: flat.Subset(shards[k]), Batch: 8, Rounds: total, Seed: uint64(500 + k),
			CheckpointDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		platforms[k] = p
	}
	_, err = RunLocal(srv, platforms)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	// Stop/abort snapshots land in the stash files (the scheduled
	// checkpoint set stays untouched).
	snap, err := LoadSnapshotFile(ServerStashPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if snap.NextRound != 1 {
		t.Fatalf("stop checkpointed at round %d, want 1 (first boundary)", snap.NextRound)
	}
	// The platforms saw the server's stop as a peer error mid-round 1
	// and wrote their round-1 boundary stashes.
	for k := 0; k < K; k++ {
		ps, err := LoadSnapshotFile(PlatformStashPath(dir, k))
		if err != nil {
			t.Fatalf("platform %d abort stash: %v", k, err)
		}
		if ps.NextRound != 1 {
			t.Fatalf("platform %d stash resumes at %d, want 1", k, ps.NextRound)
		}
	}

	resumed := diffRun(t, diffOpts{mode: RoundModeSequential}, total, 1, dir, 0, true)
	assertParamsBitIdentical(t, "graceful-stop resume vs uninterrupted", full, resumed)
}

// A mid-round abort must never destroy the last scheduled checkpoint
// set: abort stashes go to separate files, and LoadLatestSnapshot
// picks whichever is newer. Here the server "crashes" (a platform
// protocol violation kills the session) after the scheduled round-4
// checkpoints; the platforms' round-6 stashes must coexist with the
// intact round-4 scheduled set.
func TestAbortStashDoesNotClobberScheduledCheckpoint(t *testing.T) {
	const K = 2
	train, _ := testData(t, 4, 240, 60, 143)
	flat := flatten(train)
	in := flat.X.Dim(1)
	fronts, back := buildFronts(t, 611, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(144))
	dir := t.TempDir()

	srv, err := NewServer(ServerConfig{
		Back: back, Opt: &nn.SGD{LR: 0.05}, Platforms: K, Rounds: 20,
		CheckpointEvery: 4, CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		p, err := NewPlatform(PlatformConfig{
			ID: k, Front: fronts[k], Opt: &nn.SGD{LR: 0.05}, Loss: nn.SoftmaxCrossEntropy{},
			Shard: flat.Subset(shards[k]), Batch: 8, Rounds: 20, Seed: uint64(500 + k),
			CheckpointEvery: 4, CheckpointDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		platforms[k] = p
	}
	// Kill the session mid-round 6: platform 1's link dies while it
	// ships its loss gradients, no recovery configured.
	sConns := make([]transport.Conn, K)
	pConns := make([]transport.Conn, K)
	for k := 0; k < K; k++ {
		s, c := transport.Pipe()
		if k == 1 {
			c = severOn(wire.MsgLossGrad, 6)(c)
		}
		sConns[k], pConns[k] = s, c
	}
	var wg sync.WaitGroup
	wg.Add(K + 1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(sConns); err != nil {
			for _, c := range sConns {
				c.Close()
			}
		}
	}()
	for k := 0; k < K; k++ {
		k := k
		go func() {
			defer wg.Done()
			if _, err := platforms[k].Run(pConns[k]); err != nil {
				pConns[k].Close()
			}
		}()
	}
	wg.Wait()

	// Scheduled set: intact at round 4.
	for _, probe := range []struct {
		name string
		path string
		want int
	}{
		{"server scheduled", ServerSnapshotGenPath(dir, 4), 4},
		{"platform 0 scheduled", PlatformSnapshotPath(dir, 0), 4},
		{"platform 1 scheduled", PlatformSnapshotPath(dir, 1), 4},
		{"server stash", ServerStashPath(dir), 6},
		{"platform 1 stash", PlatformStashPath(dir, 1), 6},
	} {
		snap, err := LoadSnapshotFile(probe.path)
		if err != nil {
			t.Fatalf("%s: %v", probe.name, err)
		}
		if snap.NextRound != probe.want {
			t.Fatalf("%s resumes at %d, want %d", probe.name, snap.NextRound, probe.want)
		}
	}
	// LoadLatestSnapshot prefers the newer stash.
	latest, err := LoadLatestSnapshot(dir, RoleServer, 0)
	if err != nil {
		t.Fatal(err)
	}
	if latest.NextRound != 6 {
		t.Fatalf("latest server snapshot resumes at %d, want 6", latest.NextRound)
	}
}
