package core

import "testing"

// walk records the (state, round) sequence a session produces.
func walk(s *Session) []string {
	var out []string
	for {
		out = append(out, s.State().String()+":"+itoa(s.Round()))
		if s.State() == StateDone {
			return out
		}
		s.Advance()
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// The session must produce the exact phase sequence of the paper's
// flow: handshake, per-round train with sync/eval where scheduled, and
// a final-round eval, then done.
func TestSessionPhaseSequence(t *testing.T) {
	s := newSession(sessionPlan{rounds: 4, l1SyncEvery: 2, evalEvery: 3})
	want := []string{
		"handshake:0",
		"train:0",
		"train:1", "l1sync:1",
		"train:2", "eval:2",
		"train:3", "l1sync:3", "eval:3", // final round always evals
		"done:4",
	}
	got := walk(s)
	if len(got) != len(want) {
		t.Fatalf("sequence %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

// Without sync or eval the session is a plain round loop.
func TestSessionPlainRounds(t *testing.T) {
	s := newSession(sessionPlan{rounds: 3})
	want := []string{"handshake:0", "train:0", "train:1", "train:2", "done:3"}
	got := walk(s)
	if len(got) != len(want) {
		t.Fatalf("sequence %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: %s, want %s", i, got[i], want[i])
		}
	}
}

// A resumed session starts at its checkpointed round and preserves the
// absolute schedule: sync/eval rounds fall exactly where an
// uninterrupted session would put them.
func TestSessionResumePreservesAbsoluteSchedule(t *testing.T) {
	s := newSession(sessionPlan{start: 3, rounds: 6, l1SyncEvery: 2, evalEvery: 5})
	want := []string{
		"handshake:3",
		"train:3", "l1sync:3",
		"train:4", "eval:4",
		"train:5", "l1sync:5", "eval:5",
		"done:6",
	}
	got := walk(s)
	if len(got) != len(want) {
		t.Fatalf("sequence %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

// SkipTo jumps forward to a train phase (the ProceedWithout rejoin
// path) and rejects going backwards or past the end.
func TestSessionSkipTo(t *testing.T) {
	s := newSession(sessionPlan{rounds: 10})
	s.Advance() // handshake -> train:0
	if err := s.SkipTo(6); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateTrain || s.Round() != 6 {
		t.Fatalf("after SkipTo: %v round %d", s.State(), s.Round())
	}
	if err := s.SkipTo(2); err == nil {
		t.Fatal("skipped backwards")
	}
	if err := s.SkipTo(10); err == nil {
		t.Fatal("skipped past the end")
	}
}

// Advancing past Done stays at Done.
func TestSessionDoneIsTerminal(t *testing.T) {
	s := newSession(sessionPlan{rounds: 1})
	for i := 0; i < 5; i++ {
		s.Advance()
	}
	if s.State() != StateDone {
		t.Fatalf("state %v, want done", s.State())
	}
}

func TestSessionStateStrings(t *testing.T) {
	states := map[SessionState]string{
		StateHandshake: "handshake", StateTrain: "train", StateL1Sync: "l1sync",
		StateEval: "eval", StateDone: "done",
	}
	for st, want := range states {
		if st.String() != want {
			t.Fatalf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	statuses := map[PlatformStatus]string{
		PlatformActive: "active", PlatformDropped: "dropped", PlatformDone: "done",
	}
	for st, want := range statuses {
		if st.String() != want {
			t.Fatalf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}
