package core

import (
	"math"
	"testing"

	"medsplit/internal/dataset"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/transport"
	"medsplit/internal/transport/testutil"
)

// splitRun executes one full split session on a fixed-seed 2-platform
// MLP workload and returns the final parameters (per-platform fronts,
// then the server back) plus the per-platform stats. All randomness is
// pinned, so two runs with the same arguments are bit-identical.
func splitRun(t *testing.T, mode RoundMode, depth, rounds int, shadows, eval bool) ([][]*nn.Param, []*PlatformStats) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	const K = 2
	train, test := testData(t, 4, 240, 60, 91)
	flat, flatTest := flatten(train), flatten(test)
	in := flat.X.Dim(1)

	fronts, back := buildFronts(t, 311, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(92))
	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.Mode = mode
		c.PipelineDepth = depth
		if eval {
			c.EvalEvery = rounds
		}
	})
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		k := k
		platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
			if shadows {
				shadow, _ := buildSplitMLP(t, 311, in, 4)
				c.ShadowFront = shadow
			}
			if eval {
				c.EvalEvery = rounds
				if k == 0 {
					c.EvalData = flatTest
				}
			}
		})
	}
	stats, err := RunLocal(srv, platforms)
	if err != nil {
		t.Fatal(err)
	}
	params := make([][]*nn.Param, 0, K+1)
	for k := 0; k < K; k++ {
		params = append(params, fronts[k].Params())
	}
	params = append(params, back.Params())
	return params, stats
}

// assertParamsBitIdentical compares two parameter sets down to the
// float bit pattern — no tolerance.
func assertParamsBitIdentical(t *testing.T, label string, a, b [][]*nn.Param) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d param sets vs %d", label, len(a), len(b))
	}
	for s := range a {
		if len(a[s]) != len(b[s]) {
			t.Fatalf("%s: set %d has %d vs %d params", label, s, len(a[s]), len(b[s]))
		}
		for i := range a[s] {
			x, y := a[s][i].W.Data(), b[s][i].W.Data()
			if len(x) != len(y) {
				t.Fatalf("%s: set %d param %d size %d vs %d", label, s, i, len(x), len(y))
			}
			for j := range x {
				if math.Float32bits(x[j]) != math.Float32bits(y[j]) {
					t.Fatalf("%s: set %d param %d (%s) differs at scalar %d: %v vs %v",
						label, s, i, a[s][i].Name, j, x[j], y[j])
				}
			}
		}
	}
}

// At PipelineDepth 1 the pipelined mode's compute schedule is exactly
// sequential — the async transport only changes when bytes move, never
// what is computed — so final weights must be bit-identical across the
// whole model (both platform fronts and the server back).
func TestPipelinedDepth1BitIdenticalToSequential(t *testing.T) {
	const rounds = 12
	seq, _ := splitRun(t, RoundModeSequential, 0, rounds, false, false)
	pipe, _ := splitRun(t, RoundModePipelined, 1, rounds, false, false)
	assertParamsBitIdentical(t, "pipelined depth 1 vs sequential", seq, pipe)
}

// A ShadowFront without pipelining at depth >= 2 is inert: the plain
// loop runs, and the result still matches sequential bit for bit.
func TestPipelinedDepth1IgnoresShadowFront(t *testing.T) {
	const rounds = 8
	seq, _ := splitRun(t, RoundModeSequential, 0, rounds, false, false)
	pipe, _ := splitRun(t, RoundModePipelined, 1, rounds, true, false)
	assertParamsBitIdentical(t, "pipelined depth 1 with shadow vs sequential", seq, pipe)
}

// Depth >= 2 engages the platforms' overlapped loop (one-step-stale L1
// forward), which follows a different — but deterministic — trajectory:
// the run must reproduce itself bit for bit, reduce the loss, and land
// at the same accuracy level as sequential scheduling.
func TestPipelinedDepth2DeterministicAndConverges(t *testing.T) {
	const rounds = 30
	a, astats := splitRun(t, RoundModePipelined, 2, rounds, true, true)
	b, _ := splitRun(t, RoundModePipelined, 2, rounds, true, true)
	assertParamsBitIdentical(t, "pipelined depth 2 repeat", a, b)

	if astats[0].FinalLoss() >= astats[0].Rounds[0].Loss {
		t.Fatalf("pipelined depth 2 loss did not decrease: %v -> %v",
			astats[0].Rounds[0].Loss, astats[0].FinalLoss())
	}
	for k, st := range astats {
		if len(st.Rounds) != rounds {
			t.Fatalf("platform %d recorded %d rounds, want %d", k, len(st.Rounds), rounds)
		}
		for r, rs := range st.Rounds {
			if rs.Round != r {
				t.Fatalf("platform %d round stats out of order: %d at index %d", k, rs.Round, r)
			}
		}
	}

	_, seqStats := splitRun(t, RoundModeSequential, 0, rounds, false, true)
	accSeq := seqStats[0].Evals[len(seqStats[0].Evals)-1].Accuracy
	accPipe := astats[0].Evals[len(astats[0].Evals)-1].Accuracy
	if accPipe < 0.3 {
		t.Fatalf("pipelined depth 2 accuracy %v below chance band", accPipe)
	}
	if d := accPipe - accSeq; d > 0.2 || d < -0.2 {
		t.Fatalf("pipelined depth 2 accuracy %v too far from sequential %v", accPipe, accSeq)
	}
}

// The shadow front must remain an exact mirror of the canonical front
// after training (the invariant the overlapped loop relies on).
func TestPipelinedShadowStaysMirrored(t *testing.T) {
	train, _ := testData(t, 3, 120, 8, 95)
	flat := flatten(train)
	in := flat.X.Dim(1)
	const rounds = 9 // odd: last round ran on the shadow instance

	front, back := buildSplitMLP(t, 331, in, 3)
	shadow, _ := buildSplitMLP(t, 331, in, 3)
	srv := defaultServer(t, back, 1, rounds, func(c *ServerConfig) {
		c.Mode = RoundModePipelined
		c.PipelineDepth = 2
	})
	plat := defaultPlatform(t, 0, front, flat, rounds, func(c *PlatformConfig) {
		c.ShadowFront = shadow
	})
	if _, err := RunLocal(srv, []*Platform{plat}); err != nil {
		t.Fatal(err)
	}
	fp, sp := front.Params(), shadow.Params()
	for i := range fp {
		x, y := fp[i].W.Data(), sp[i].W.Data()
		for j := range x {
			if math.Float32bits(x[j]) != math.Float32bits(y[j]) {
				t.Fatalf("front and shadow diverged at param %d scalar %d: %v vs %v", i, j, x[j], y[j])
			}
		}
	}
}

// Pipelined scheduling composes with label sharing, L1 sync and eval
// phases: the pipeline drains at every synchronization point, so the
// existing barriers keep their semantics. Three platforms at depth 3
// also exercise the concurrency harder for the race detector.
func TestPipelinedComposesWithSyncEvalAndLabelSharing(t *testing.T) {
	train, test := testData(t, 4, 240, 60, 96)
	flat, flatTest := flatten(train), flatten(test)
	in := flat.X.Dim(1)
	const rounds, K = 16, 3

	for _, sharing := range []bool{false, true} {
		fronts, back := buildFronts(t, 351, K, in, 4)
		shards := dataset.ShardIID(flat.Len(), K, rng.New(97))
		srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
			c.Mode = RoundModePipelined
			c.PipelineDepth = 3
			c.L1SyncEvery = 8
			c.EvalEvery = 8
			if sharing {
				c.LabelSharing = true
				c.Loss = nn.SoftmaxCrossEntropy{}
			}
		})
		meters := make([]*transport.Meter, K)
		platforms := make([]*Platform, K)
		for k := 0; k < K; k++ {
			k := k
			meters[k] = &transport.Meter{}
			platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
				shadow, _ := buildSplitMLP(t, 351, in, 4)
				c.ShadowFront = shadow
				c.L1SyncEvery = 8
				c.EvalEvery = 8
				c.Meter = meters[k]
				if sharing {
					c.LabelSharing = true
					c.Loss = nil
				}
				if k == 0 {
					c.EvalData = flatTest
				}
			})
		}
		stats, err := RunLocal(srv, platforms)
		if err != nil {
			t.Fatalf("sharing=%t: %v", sharing, err)
		}
		if stats[0].FinalLoss() >= stats[0].Rounds[0].Loss {
			t.Fatalf("sharing=%t: loss did not decrease: %v -> %v",
				sharing, stats[0].Rounds[0].Loss, stats[0].FinalLoss())
		}
		// L1 sync ran at a drained pipeline: all fronts hold identical
		// weights after the final sync round (16 is a multiple of 8).
		p0 := fronts[0].Params()
		for k := 1; k < K; k++ {
			pk := fronts[k].Params()
			for i := range p0 {
				x, y := p0[i].W.Data(), pk[i].W.Data()
				for j := range x {
					if math.Float32bits(x[j]) != math.Float32bits(y[j]) {
						t.Fatalf("sharing=%t: fronts 0 and %d differ after L1 sync", sharing, k)
					}
				}
			}
		}
		if stats[0].Evals[len(stats[0].Evals)-1].Accuracy < 0.3 {
			t.Fatalf("sharing=%t: accuracy %v below chance band",
				sharing, stats[0].Evals[len(stats[0].Evals)-1].Accuracy)
		}
		for k, m := range meters {
			if TrainingBytes(m) == 0 {
				t.Fatalf("sharing=%t: platform %d reports zero training bytes", sharing, k)
			}
		}
	}
}

// A stateful front (resnet-lite's stem keeps a BatchNorm on the
// platform) must track the same running-statistics stream in pipelined
// depth-2 mode as in sequential mode: the state is handed to the
// instance about to run a forward, never overwritten after a newer
// batch already updated it. A regression here freezes the statistics
// near their round-0 values and silently degrades eval accuracy.
func TestPipelinedBatchNormStateTracksSequential(t *testing.T) {
	const rounds = 12
	run := func(pipelined bool) ([]float32, []float32) {
		train, test := testData(t, 3, 120, 30, 501)
		m := models.ResNetLite(3, 4, rng.New(421))
		front, back, err := models.Split(m.Net, m.DefaultCut)
		if err != nil {
			t.Fatal(err)
		}
		mode := RoundModeSequential
		depth := 0
		if pipelined {
			mode, depth = RoundModePipelined, 2
		}
		srv := defaultServer(t, back, 1, rounds, func(c *ServerConfig) {
			c.Mode = mode
			c.PipelineDepth = depth
			c.EvalEvery = rounds
		})
		plat := defaultPlatform(t, 0, front, train, rounds, func(c *PlatformConfig) {
			c.Batch = 8
			c.EvalEvery = rounds
			c.EvalData = test
			if pipelined {
				m2 := models.ResNetLite(3, 4, rng.New(421))
				shadow, _, serr := models.Split(m2.Net, m2.DefaultCut)
				if serr != nil {
					t.Fatal(serr)
				}
				c.ShadowFront = shadow
			}
		})
		if _, err := RunLocal(srv, []*Platform{plat}); err != nil {
			t.Fatal(err)
		}
		var flatState []float32
		for _, s := range nn.CollectState(front) {
			flatState = append(flatState, s.Data()...)
		}
		// A freshly initialized front gives the round-0 reference.
		m3 := models.ResNetLite(3, 4, rng.New(421))
		freshFront, _, err := models.Split(m3.Net, m3.DefaultCut)
		if err != nil {
			t.Fatal(err)
		}
		var initState []float32
		for _, s := range nn.CollectState(freshFront) {
			initState = append(initState, s.Data()...)
		}
		return flatState, initState
	}
	seqState, initState := run(false)
	pipeState, _ := run(true)

	maxAbs := func(a, b []float32) float64 {
		var m float64
		for i := range a {
			d := float64(a[i] - b[i])
			if d < 0 {
				d = -d
			}
			if d > m {
				m = d
			}
		}
		return m
	}
	moved := maxAbs(seqState, initState)
	if moved < 1e-3 {
		t.Fatalf("sequential run barely moved the running statistics (%v); test is vacuous", moved)
	}
	if pipeMoved := maxAbs(pipeState, initState); pipeMoved < moved/2 {
		t.Fatalf("pipelined running statistics look frozen: moved %v vs sequential %v", pipeMoved, moved)
	}
	// One-step-stale weights perturb the statistics slightly; anything
	// beyond a fraction of the total movement means an update was lost.
	if diff := maxAbs(pipeState, seqState); diff > moved/4 {
		t.Fatalf("pipelined running statistics diverged from sequential: diff %v, total movement %v", diff, moved)
	}
}

// Pipelined scheduling through a CNN front (conv + pool L1) with
// augmentation, covering the rank-4 activation path.
func TestPipelinedCNNFront(t *testing.T) {
	train, _ := testData(t, 3, 60, 8, 98)
	const rounds = 6
	m := models.VGGLite(3, 2, rng.New(361))
	front, back, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	m2 := models.VGGLite(3, 2, rng.New(361))
	shadow, _, err := models.Split(m2.Net, m2.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	srv := defaultServer(t, back, 1, rounds, func(c *ServerConfig) {
		c.Mode = RoundModePipelined
		c.PipelineDepth = 2
	})
	plat := defaultPlatform(t, 0, front, train, rounds, func(c *PlatformConfig) {
		c.Batch = 6
		c.ShadowFront = shadow
		c.Augment = dataset.NewAugmenter(4, true, rng.New(99))
	})
	if _, err := RunLocal(srv, []*Platform{plat}); err != nil {
		t.Fatal(err)
	}
}

// Config validation for the new mode.
func TestPipelinedConfigValidation(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 101)
	flat := flatten(train)
	_, back := buildSplitMLP(t, 371, flat.X.Dim(1), 2)

	if _, err := NewServer(ServerConfig{Back: back, Opt: &nn.SGD{}, Platforms: 1, Rounds: 1, PipelineDepth: -1}); err == nil {
		t.Fatal("negative pipeline depth accepted")
	}
	if _, err := NewServer(ServerConfig{Back: back, Opt: &nn.SGD{}, Platforms: 1, Rounds: 1, Mode: RoundModeSequential, PipelineDepth: 2}); err == nil {
		t.Fatal("pipeline depth on sequential mode accepted")
	}
	s, err := NewServer(ServerConfig{Back: back, Opt: &nn.SGD{}, Platforms: 1, Rounds: 1, Mode: RoundModePipelined})
	if err != nil {
		t.Fatalf("pipelined server without explicit depth: %v", err)
	}
	if s.cfg.PipelineDepth != 1 {
		t.Fatalf("default pipeline depth %d, want 1", s.cfg.PipelineDepth)
	}
}
