package core

import (
	"fmt"
	"strings"

	"medsplit/internal/nn"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// ServerConfig configures the central server, which owns the network's
// layers above the cut (L2 … Lk in the paper).
type ServerConfig struct {
	// Back is the server-side half of the model (from models.Split).
	Back *nn.Sequential
	// Opt updates Back's parameters.
	Opt nn.Optimizer
	// Platforms is the number of platforms that will connect.
	Platforms int
	// Rounds is the number of synchronous training rounds.
	Rounds int
	// Mode selects Sequential (default), Concat or Pipelined scheduling.
	Mode RoundMode
	// PipelineDepth bounds how many rounds of platform messages the
	// pipelined mode's per-connection readers may buffer ahead of the
	// compute loop (and is advertised to platforms at the handshake so
	// they can overlap their own L1 backward with the next forward when
	// depth >= 2). Defaults to 1, which is bit-identical to Sequential.
	// Only meaningful with RoundModePipelined.
	PipelineDepth int
	// LabelSharing enables the 2-message ablation where platforms ship
	// labels and the server computes the loss. Requires Loss.
	LabelSharing bool
	// Loss is required when LabelSharing is set.
	Loss nn.Loss
	// ClipGrads, when positive, clamps server-side gradients before each
	// optimizer step.
	ClipGrads float32
	// L1SyncEvery, when positive, averages the platforms' L1 weights
	// through the server every so many rounds.
	L1SyncEvery int
	// EvalEvery, when positive, schedules evaluation phases every so
	// many rounds (and after the final round).
	EvalEvery int
	// LRSchedule, when set, adjusts the optimizer's learning rate at the
	// start of every round (see nn.StepDecay, nn.CosineDecay).
	LRSchedule nn.Schedule
	// Codec compresses the four training-exchange payloads
	// (activations, logits, loss gradients, cut gradients). Defaults to
	// the exact wire.RawCodec; both ends must agree (validated at
	// handshake). L1-sync weights and evaluation traffic always use the
	// exact codec so weight averaging and reported accuracy stay exact.
	Codec wire.Codec
	// Trace, when set, observes every protocol step.
	Trace TraceFunc
}

// Server runs the server side of the split-learning protocol.
type Server struct {
	cfg       ServerConfig
	lastBatch []int // most recent minibatch rows seen per platform
	evaluator int   // platform id that runs eval phases; -1 if none

	// Concat-mode scratch, reused across rounds so fusing per-platform
	// minibatches stops allocating once batch shapes stabilize.
	fusedActs *tensor.Tensor
	fusedGrad *tensor.Tensor

	// Wire-path scratch (see wirebuf.go). Decoded-tensor slices are per
	// platform because concat mode holds every platform's activations
	// and loss gradients at once; sequential mode simply reuses slot k.
	// Encode buffers come from the shared pool via the per-site sizers.
	actsDec    [][]*tensor.Tensor
	gradDec    [][]*tensor.Tensor
	labelsDec  [][]int
	lossScalar *tensor.Tensor // label-sharing loss value, reused per round
	encLogits  payloadSizer
	encCut     payloadSizer
}

// NewServer validates cfg and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Back == nil {
		return nil, fmt.Errorf("%w: nil back network", ErrConfig)
	}
	if cfg.Opt == nil {
		return nil, fmt.Errorf("%w: nil optimizer", ErrConfig)
	}
	if cfg.Platforms <= 0 {
		return nil, fmt.Errorf("%w: %d platforms", ErrConfig, cfg.Platforms)
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("%w: %d rounds", ErrConfig, cfg.Rounds)
	}
	if cfg.Mode == 0 {
		cfg.Mode = RoundModeSequential
	}
	switch cfg.Mode {
	case RoundModeSequential, RoundModeConcat, RoundModePipelined:
	default:
		return nil, fmt.Errorf("%w: round mode %v", ErrConfig, cfg.Mode)
	}
	if cfg.PipelineDepth < 0 {
		return nil, fmt.Errorf("%w: pipeline depth %d", ErrConfig, cfg.PipelineDepth)
	}
	if cfg.PipelineDepth > 1 && cfg.Mode != RoundModePipelined {
		return nil, fmt.Errorf("%w: pipeline depth %d requires RoundModePipelined", ErrConfig, cfg.PipelineDepth)
	}
	if cfg.Mode == RoundModePipelined && cfg.PipelineDepth == 0 {
		cfg.PipelineDepth = 1
	}
	if cfg.LabelSharing && cfg.Loss == nil {
		return nil, fmt.Errorf("%w: label sharing requires a server-side loss", ErrConfig)
	}
	if cfg.Codec == nil {
		cfg.Codec = wire.RawCodec{}
	}
	return &Server{
		cfg:       cfg,
		lastBatch: make([]int, cfg.Platforms),
		evaluator: -1,
		actsDec:   make([][]*tensor.Tensor, cfg.Platforms),
		gradDec:   make([][]*tensor.Tensor, cfg.Platforms),
		labelsDec: make([][]int, cfg.Platforms),
	}, nil
}

// Serve drives the full protocol over the given per-platform
// connections (conns[k] talks to platform k). It performs the
// handshake, cfg.Rounds training rounds, the scheduled evaluation
// phases, and the shutdown, then returns. Connections are not closed.
//
// In pipelined mode each connection is wrapped in a transport.AsyncConn
// so WAN I/O overlaps server compute; the wrappers are flushed and
// joined before Serve returns (on errors, the caller unblocks any
// remaining wrapper goroutine by closing the connections, which every
// caller in this repo does).
func (s *Server) Serve(conns []transport.Conn) error {
	if len(conns) != s.cfg.Platforms {
		return fmt.Errorf("%w: %d connections for %d platforms", ErrConfig, len(conns), s.cfg.Platforms)
	}
	if s.cfg.Mode == RoundModePipelined {
		return s.servePipelined(conns)
	}
	return s.serve(conns)
}

// servePipelined runs serve over async connection wrappers. The
// compute loop is byte-for-byte the sequential one — the overlap comes
// entirely from the transport layer, which is why PipelineDepth=1 is
// bit-identical to RoundModeSequential: reader goroutines prefetch
// platform k+1's activations while the server computes platform k, and
// writer goroutines ship platform k-1's cut gradients in the
// background.
func (s *Server) servePipelined(conns []transport.Conn) error {
	// Queue depths in messages: a platform sends at most 3 training
	// messages per round (activations, labels, loss-grad), plus sync and
	// eval control; 4 per in-flight round plus slack covers every mode.
	depth := 4*s.cfg.PipelineDepth + 4
	async := make([]*transport.AsyncConn, len(conns))
	wrapped := make([]transport.Conn, len(conns))
	for k, c := range conns {
		async[k] = transport.NewAsync(c, transport.AsyncOptions{
			SendQueue: depth,
			RecvQueue: depth,
			// Bye is the last message a platform ever sends, so the reader
			// can exit after delivering it and Stop below joins cleanly.
			StopRead: func(m *wire.Message) bool { return m.Type == wire.MsgBye },
		})
		wrapped[k] = async[k]
	}
	if err := s.serve(wrapped); err != nil {
		for _, a := range async {
			a.Abort()
		}
		return err
	}
	// Stop every wrapper even when one fails to flush: returning early
	// would leave the remaining writer goroutines parked on their
	// queues forever (closing the inner connection only unblocks
	// goroutines inside inner I/O, not channel waits).
	var flushErr error
	for k, a := range async {
		if err := a.Stop(); err != nil && flushErr == nil {
			flushErr = fmt.Errorf("core: server flushing platform %d: %w", k, err)
		}
	}
	return flushErr
}

func (s *Server) serve(conns []transport.Conn) error {
	if err := s.handshake(conns); err != nil {
		return err
	}
	for r := 0; r < s.cfg.Rounds; r++ {
		nn.ApplySchedule(s.cfg.Opt, s.cfg.LRSchedule, r)
		var err error
		if s.cfg.Mode == RoundModeConcat {
			err = s.concatRound(conns, r)
		} else {
			err = s.sequentialRound(conns, r)
		}
		if err != nil {
			return fmt.Errorf("core: server round %d: %w", r, err)
		}
		if s.syncRound(r) {
			if err := s.l1Sync(conns, r); err != nil {
				return fmt.Errorf("core: server L1 sync round %d: %w", r, err)
			}
		}
		if s.evalRound(r) && s.evaluator >= 0 {
			if err := s.evalPhase(conns[s.evaluator], r); err != nil {
				return fmt.Errorf("core: server eval round %d: %w", r, err)
			}
		}
	}
	// Shutdown: every platform says goodbye.
	for k, conn := range conns {
		if _, err := s.recv(conn, wire.MsgBye, -1, k); err != nil {
			return fmt.Errorf("core: platform %d shutdown: %w", k, err)
		}
	}
	return nil
}

func (s *Server) syncRound(r int) bool {
	return s.cfg.L1SyncEvery > 0 && (r+1)%s.cfg.L1SyncEvery == 0
}

func (s *Server) evalRound(r int) bool {
	if s.cfg.EvalEvery <= 0 {
		return false
	}
	return (r+1)%s.cfg.EvalEvery == 0 || r == s.cfg.Rounds-1
}

// handshake validates every platform's declared configuration against
// the server's, and learns which platform (if any) evaluates.
func (s *Server) handshake(conns []transport.Conn) error {
	want := fmt.Sprintf("v=1;rounds=%d;labelshare=%t;sync=%d;eval=%d;codec=%s",
		s.cfg.Rounds, s.cfg.LabelSharing, s.cfg.L1SyncEvery, s.cfg.EvalEvery, s.cfg.Codec.Name())
	for k, conn := range conns {
		m, err := s.recv(conn, wire.MsgHello, -1, k)
		if err != nil {
			return fmt.Errorf("core: hello from platform %d: %w", k, err)
		}
		if int(m.Platform) != k {
			return fmt.Errorf("%w: connection %d identifies as platform %d", ErrProtocol, k, m.Platform)
		}
		meta, err := wire.DecodeText(m.Payload)
		if err != nil {
			return fmt.Errorf("core: hello meta from platform %d: %w", k, err)
		}
		base, evaluator, perr := parseHello(meta)
		if perr != nil {
			return fmt.Errorf("core: hello from platform %d: %w", k, perr)
		}
		if base != want {
			s.sendError(conn, k, fmt.Sprintf("config mismatch: server %q, platform %q", want, base))
			return fmt.Errorf("%w: platform %d config %q, server %q", ErrConfig, k, base, want)
		}
		if evaluator {
			if s.evaluator >= 0 {
				return fmt.Errorf("%w: platforms %d and %d both claim evaluator", ErrConfig, s.evaluator, k)
			}
			s.evaluator = k
		}
		ack := "mode=" + s.cfg.Mode.String()
		if s.cfg.Mode == RoundModePipelined {
			// Platforms use the advertised depth to decide whether to
			// overlap their local L1 backward with the next forward.
			ack = fmt.Sprintf("%s;depth=%d", ack, s.cfg.PipelineDepth)
		}
		if err := s.send(conn, &wire.Message{
			Type:     wire.MsgHelloAck,
			Platform: uint32(k),
			Payload:  wire.EncodeText(ack),
		}, k, -1); err != nil {
			return err
		}
	}
	if s.cfg.EvalEvery > 0 && s.evaluator < 0 {
		return fmt.Errorf("%w: EvalEvery=%d but no platform declared evaluator", ErrConfig, s.cfg.EvalEvery)
	}
	return nil
}

// parseHello splits a hello meta string into the comparable base part
// and the evaluator flag.
func parseHello(meta string) (base string, evaluator bool, err error) {
	idx := strings.LastIndex(meta, ";evaluator=")
	if idx < 0 {
		return "", false, fmt.Errorf("%w: hello meta %q missing evaluator field", ErrProtocol, meta)
	}
	switch meta[idx+len(";evaluator="):] {
	case "true":
		return meta[:idx], true, nil
	case "false":
		return meta[:idx], false, nil
	default:
		return "", false, fmt.Errorf("%w: hello meta %q has bad evaluator value", ErrProtocol, meta)
	}
}

// sequentialRound serves one training round in sequential mode: each
// platform's minibatch gets its own forward/backward/optimizer step.
func (s *Server) sequentialRound(conns []transport.Conn, r int) error {
	for k, conn := range conns {
		a, labels, err := s.recvActivations(conn, r, k)
		if err != nil {
			return err
		}
		s.lastBatch[k] = a.Dim(0)
		z := s.cfg.Back.Forward(a, true)
		var dz *tensor.Tensor
		var lossVal float64
		if s.cfg.LabelSharing {
			lossVal, dz = s.cfg.Loss.Loss(z, labels)
		} else {
			if err := s.send(conn, &wire.Message{
				Type:     wire.MsgLogits,
				Platform: uint32(k),
				Round:    uint32(r),
				Payload:  s.encLogits.encode(s.cfg.Codec, z),
			}, k, r); err != nil {
				return err
			}
			m, err := s.recv(conn, wire.MsgLossGrad, r, k)
			if err != nil {
				return err
			}
			ts, derr := wire.DecodeInto(s.cfg.Codec, s.gradDec[k], m.Payload)
			if derr != nil || len(ts) != 1 {
				return fmt.Errorf("%w: bad loss-grad payload from platform %d", ErrProtocol, k)
			}
			s.gradDec[k] = ts
			releasePayload(m)
			dz = ts[0]
			if !tensor.SameShape(dz, z) {
				return fmt.Errorf("%w: loss-grad shape %v, logits %v", ErrProtocol, dz.Shape(), z.Shape())
			}
		}
		nn.ZeroGrads(s.cfg.Back.Params())
		da := s.cfg.Back.Backward(dz)
		if s.cfg.ClipGrads > 0 {
			nn.ClipGrads(s.cfg.Back.Params(), s.cfg.ClipGrads)
		}
		s.cfg.Opt.Step(s.cfg.Back.Params())

		var cutPayload []byte
		if s.cfg.LabelSharing {
			if s.lossScalar == nil {
				s.lossScalar = tensor.New()
			}
			s.lossScalar.Set(float32(lossVal))
			cutPayload = s.encCut.encode(s.cfg.Codec, da, s.lossScalar)
		} else {
			cutPayload = s.encCut.encode(s.cfg.Codec, da)
		}
		if err := s.send(conn, &wire.Message{
			Type:     wire.MsgCutGrad,
			Platform: uint32(k),
			Round:    uint32(r),
			Payload:  cutPayload,
		}, k, r); err != nil {
			return err
		}
	}
	return nil
}

// concatRound serves one training round in concat mode: all platforms'
// minibatches are fused into a single batch and the server takes one
// optimizer step on the union gradient. Per-platform loss gradients are
// rescaled by s_k/S so the fused gradient is the mean over the union
// batch regardless of per-platform batch sizes.
func (s *Server) concatRound(conns []transport.Conn, r int) error {
	acts := make([]*tensor.Tensor, len(conns))
	labelsPer := make([][]int, len(conns))
	sizes := make([]int, len(conns))
	total := 0
	for k, conn := range conns {
		a, labels, err := s.recvActivations(conn, r, k)
		if err != nil {
			return err
		}
		acts[k] = a
		labelsPer[k] = labels
		sizes[k] = a.Dim(0)
		s.lastBatch[k] = sizes[k]
		total += sizes[k]
	}
	fusedShape := append([]int{total}, acts[0].Shape()[1:]...)
	s.fusedActs = tensor.EnsureShape(s.fusedActs, fusedShape...)
	fused := tensor.ConcatDim0Into(s.fusedActs, acts...)
	z := s.cfg.Back.Forward(fused, true)

	var dz *tensor.Tensor
	var lossVals []float64
	if s.cfg.LabelSharing {
		var allLabels []int
		for _, l := range labelsPer {
			allLabels = append(allLabels, l...)
		}
		var lossVal float64
		lossVal, dz = s.cfg.Loss.Loss(z, allLabels)
		lossVals = make([]float64, len(conns))
		for k := range lossVals {
			lossVals[k] = lossVal
		}
	} else {
		zs := tensor.SplitDim0(z, sizes)
		for k, conn := range conns {
			if err := s.send(conn, &wire.Message{
				Type:     wire.MsgLogits,
				Platform: uint32(k),
				Round:    uint32(r),
				Payload:  s.encLogits.encode(s.cfg.Codec, zs[k]),
			}, k, r); err != nil {
				return err
			}
		}
		grads := make([]*tensor.Tensor, len(conns))
		for k, conn := range conns {
			m, err := s.recv(conn, wire.MsgLossGrad, r, k)
			if err != nil {
				return err
			}
			ts, derr := wire.DecodeInto(s.cfg.Codec, s.gradDec[k], m.Payload)
			if derr != nil || len(ts) != 1 {
				return fmt.Errorf("%w: bad loss-grad payload from platform %d", ErrProtocol, k)
			}
			s.gradDec[k] = ts
			releasePayload(m)
			// Rescale from per-platform mean to union mean.
			ts[0].Scale(float32(sizes[k]) / float32(total))
			grads[k] = ts[0]
		}
		gradShape := append([]int{total}, grads[0].Shape()[1:]...)
		s.fusedGrad = tensor.EnsureShape(s.fusedGrad, gradShape...)
		dz = tensor.ConcatDim0Into(s.fusedGrad, grads...)
	}

	nn.ZeroGrads(s.cfg.Back.Params())
	da := s.cfg.Back.Backward(dz)
	if s.cfg.ClipGrads > 0 {
		nn.ClipGrads(s.cfg.Back.Params(), s.cfg.ClipGrads)
	}
	s.cfg.Opt.Step(s.cfg.Back.Params())

	das := tensor.SplitDim0(da, sizes)
	for k, conn := range conns {
		var payload []byte
		if s.cfg.LabelSharing {
			if s.lossScalar == nil {
				s.lossScalar = tensor.New()
			}
			s.lossScalar.Set(float32(lossVals[k]))
			payload = s.encCut.encode(s.cfg.Codec, das[k], s.lossScalar)
		} else {
			payload = s.encCut.encode(s.cfg.Codec, das[k])
		}
		if err := s.send(conn, &wire.Message{
			Type:     wire.MsgCutGrad,
			Platform: uint32(k),
			Round:    uint32(r),
			Payload:  payload,
		}, k, r); err != nil {
			return err
		}
	}
	return nil
}

// recvActivations reads platform k's minibatch activations (and, in
// label-sharing mode, the label vector that follows) into the
// platform's decode scratch, recycling the payload buffers. The
// returned tensor is owned by the server and valid until platform k's
// next activations decode — which in every round mode happens after the
// round's backward has consumed it.
func (s *Server) recvActivations(conn transport.Conn, r, k int) (*tensor.Tensor, []int, error) {
	m, err := s.recv(conn, wire.MsgActivations, r, k)
	if err != nil {
		return nil, nil, err
	}
	ts, derr := wire.DecodeInto(s.cfg.Codec, s.actsDec[k], m.Payload)
	if derr != nil || len(ts) != 1 {
		return nil, nil, fmt.Errorf("%w: bad activations payload from platform %d", ErrProtocol, k)
	}
	s.actsDec[k] = ts
	releasePayload(m)
	var labels []int
	if s.cfg.LabelSharing {
		lm, err := s.recv(conn, wire.MsgLabels, r, k)
		if err != nil {
			return nil, nil, err
		}
		labels, err = wire.DecodeLabelsInto(s.labelsDec[k], lm.Payload)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: bad labels payload from platform %d", ErrProtocol, k)
		}
		s.labelsDec[k] = labels
		releasePayload(lm)
		if len(labels) != ts[0].Dim(0) {
			return nil, nil, fmt.Errorf("%w: %d labels for %d activations", ErrProtocol, len(labels), ts[0].Dim(0))
		}
	}
	return ts[0], labels, nil
}

// l1Sync averages the platforms' L1 weights (weighted by their latest
// minibatch sizes) and redistributes the result.
func (s *Server) l1Sync(conns []transport.Conn, r int) error {
	var lists [][]*tensor.Tensor
	for k, conn := range conns {
		m, err := s.recv(conn, wire.MsgModelPush, r, k)
		if err != nil {
			return err
		}
		ts, derr := wire.DecodeTensors(m.Payload)
		if derr != nil {
			return fmt.Errorf("%w: bad L1 push from platform %d", ErrProtocol, k)
		}
		if len(lists) > 0 && len(ts) != len(lists[0]) {
			return fmt.Errorf("%w: platform %d pushed %d tensors, platform 0 pushed %d", ErrProtocol, k, len(ts), len(lists[0]))
		}
		lists = append(lists, ts)
	}
	// Weighted average into fresh tensors.
	avg := make([]*tensor.Tensor, len(lists[0]))
	var totalW float64
	for k := range lists {
		totalW += float64(s.lastBatch[k])
	}
	if totalW == 0 {
		return fmt.Errorf("%w: L1 sync before any training batch", ErrProtocol)
	}
	for i := range avg {
		avg[i] = tensor.New(lists[0][i].Shape()...)
		for k, ts := range lists {
			if !tensor.SameShape(ts[i], avg[i]) {
				return fmt.Errorf("%w: platform %d L1 tensor %d shape %v, want %v", ErrProtocol, k, i, ts[i].Shape(), avg[i].Shape())
			}
			avg[i].AxpyInPlace(float32(float64(s.lastBatch[k])/totalW), ts[i])
		}
	}
	payload := wire.EncodeTensors(avg...)
	for k, conn := range conns {
		if err := s.send(conn, &wire.Message{
			Type:     wire.MsgModelPush,
			Platform: uint32(k),
			Round:    uint32(r),
			Payload:  payload,
		}, k, r); err != nil {
			return err
		}
	}
	return nil
}

// evalPhase answers a stream of evaluation batches from the evaluator
// platform until it sends MsgAck. Evaluation runs the back half in
// inference mode and never updates weights.
func (s *Server) evalPhase(conn transport.Conn, r int) error {
	for {
		m, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("core: eval recv: %w", err)
		}
		s.trace("recv", m, s.evaluator)
		switch m.Type {
		case wire.MsgAck:
			return nil
		case wire.MsgEvalActivations:
			ts, derr := wire.DecodeTensors(m.Payload)
			if derr != nil || len(ts) != 1 {
				return fmt.Errorf("%w: bad eval activations", ErrProtocol)
			}
			z := s.cfg.Back.Forward(ts[0], false)
			if err := s.send(conn, &wire.Message{
				Type:     wire.MsgEvalLogits,
				Platform: uint32(s.evaluator),
				Round:    uint32(r),
				Payload:  wire.EncodeTensors(z),
			}, s.evaluator, r); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: %s during eval phase", ErrProtocol, m.Type)
		}
	}
}

// send traces and transmits.
func (s *Server) send(conn transport.Conn, m *wire.Message, platform, round int) error {
	if err := conn.Send(m); err != nil {
		return fmt.Errorf("core: server send %s to platform %d: %w", m.Type, platform, err)
	}
	s.trace("send", m, platform)
	_ = round
	return nil
}

// recv traces and validates an expected message.
func (s *Server) recv(conn transport.Conn, want wire.MsgType, round, platform int) (*wire.Message, error) {
	m, err := recvExpect(conn, want, round)
	if err != nil {
		return nil, fmt.Errorf("core: server: platform %d: %w", platform, err)
	}
	s.trace("recv", m, platform)
	return m, nil
}

func (s *Server) trace(dir string, m *wire.Message, platform int) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace(TraceEvent{
		Party:    "server",
		Dir:      dir,
		Type:     m.Type,
		Platform: platform,
		Round:    int(m.Round),
		Bytes:    m.WireSize(),
	})
}

// sendError reports a fatal condition to a platform (best effort).
func (s *Server) sendError(conn transport.Conn, platform int, text string) {
	_ = s.send(conn, &wire.Message{
		Type:     wire.MsgErrorMsg,
		Platform: uint32(platform),
		Payload:  wire.EncodeText(text),
	}, platform, -1)
}
