package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"medsplit/internal/fedavg"
	"medsplit/internal/nn"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// ServerConfig configures the central server, which owns the network's
// layers above the cut (L2 … Lk in the paper).
type ServerConfig struct {
	// Back is the server-side half of the model (from models.Split).
	Back *nn.Sequential
	// Opt updates Back's parameters.
	Opt nn.Optimizer
	// Platforms is the number of platforms that will connect.
	Platforms int
	// Rounds is the number of synchronous training rounds. When
	// resuming, rounds in [StartRound, Rounds) execute.
	Rounds int
	// StartRound is the first round to execute: 0 for a fresh run, the
	// checkpoint's NextRound when resuming (see RestoreSnapshot). All
	// parties must agree; the handshake validates it.
	StartRound int
	// Mode selects Sequential (default), Concat, Pipelined,
	// BoundedStaleness or SplitFed scheduling.
	Mode RoundMode
	// Staleness is the bounded-staleness cap K: a platform's exchange
	// may train against server state missing at most K rounds of the
	// other platforms' updates. 0 (the default) is scheduled by the
	// sequential scheduler and therefore bit-identical to
	// RoundModeSequential. Only valid with RoundModeBoundedStaleness.
	Staleness int
	// PipelineDepth bounds how many rounds of platform messages the
	// pipelined mode's per-connection readers may buffer ahead of the
	// compute loop (and is advertised to platforms at the handshake so
	// they can overlap their own L1 backward with the next forward when
	// depth >= 2). Defaults to 1, which is bit-identical to Sequential.
	// Only valid with RoundModePipelined.
	PipelineDepth int
	// IOGoroutineBudget caps the dedicated I/O goroutines the pipelined
	// server spawns (each overlapped connection costs two: a reader and
	// a writer). Connections beyond the budget run synchronously inside
	// the compute loop — final weights are identical either way, the
	// budget only bounds how much WAN I/O overlaps compute. This is the
	// knob that keeps a 100-platform session from minting 200 goroutines
	// when a few dozen already hide the latency. 0 means no cap. Only
	// valid with RoundModePipelined.
	IOGoroutineBudget int
	// LabelSharing enables the 2-message ablation where platforms ship
	// labels and the server computes the loss. Requires Loss.
	LabelSharing bool
	// Loss is required when LabelSharing is set.
	Loss nn.Loss
	// ClipGrads, when positive, clamps server-side gradients before each
	// optimizer step.
	ClipGrads float32
	// L1SyncEvery, when positive, averages the platforms' L1 weights
	// through the server every so many rounds.
	L1SyncEvery int
	// EvalEvery, when positive, schedules evaluation phases every so
	// many rounds (and after the final round).
	EvalEvery int
	// CheckpointEvery, when positive, writes a snapshot of the server's
	// state to CheckpointDir at every round boundary where the number
	// of completed rounds is a multiple of it. Requires CheckpointDir.
	CheckpointEvery int
	// CheckpointDir, when set, receives snapshot files (numbered
	// server-<round>.ckpt generations; legacy server.ckpt stays
	// readable). A graceful Stop also writes its final checkpoint here.
	CheckpointDir string
	// CheckpointRetain, when positive, bounds how many numbered
	// checkpoint generations are kept (oldest pruned first). 0 keeps
	// every generation. Requires CheckpointDir.
	CheckpointRetain int
	// Replication, when set, enables the replicated aggregation tier:
	// every training step is appended to a WAL before its cut gradient
	// is acked, and streamed to warm followers that can promote on
	// leader death (see Follower). Sequential and pipelined modes only;
	// off by default and free when off.
	Replication *ReplicationConfig
	// Recovery, when set, enables platform-dropout recovery: a platform
	// whose connection dies mid-round can rejoin through the broker and
	// resume. Sequential mode only.
	Recovery *RecoveryConfig
	// LRSchedule, when set, adjusts the optimizer's learning rate at the
	// start of every round (see nn.StepDecay, nn.CosineDecay).
	LRSchedule nn.Schedule
	// Compute, when set, gates every server-side compute step (back-half
	// forward, backward, optimizer step, eval forward) through an
	// external admission point. The multi-tenant session manager
	// (internal/serve) uses it to share one process's compute budget
	// fairly across many concurrent sessions; nil (the default) runs
	// ungated. See ComputeGate.
	Compute ComputeGate
	// Codec compresses the four training-exchange payloads
	// (activations, logits, loss gradients, cut gradients). Defaults to
	// the exact wire.RawCodec; both ends must agree (validated at
	// handshake). L1-sync weights and evaluation traffic always use the
	// exact codec so weight averaging and reported accuracy stay exact.
	Codec wire.Codec
	// Trace, when set, observes every protocol step.
	Trace TraceFunc
}

// validate checks the configuration for consistency and fills
// defaults. All ServerConfig rules live here — NewServer is the only
// caller, so every constructed server passed exactly this gate.
func (cfg *ServerConfig) validate() error {
	if cfg.Back == nil {
		return fmt.Errorf("%w: nil back network", ErrConfig)
	}
	if cfg.Opt == nil {
		return fmt.Errorf("%w: nil optimizer", ErrConfig)
	}
	if cfg.Platforms <= 0 {
		return fmt.Errorf("%w: %d platforms", ErrConfig, cfg.Platforms)
	}
	if cfg.Rounds <= 0 {
		return fmt.Errorf("%w: %d rounds", ErrConfig, cfg.Rounds)
	}
	if cfg.StartRound < 0 || cfg.StartRound >= cfg.Rounds {
		return fmt.Errorf("%w: start round %d of %d", ErrConfig, cfg.StartRound, cfg.Rounds)
	}
	if cfg.Mode == 0 {
		cfg.Mode = RoundModeSequential
	}
	switch cfg.Mode {
	case RoundModeSequential, RoundModeConcat, RoundModePipelined,
		RoundModeBoundedStaleness, RoundModeSplitFed:
	default:
		return fmt.Errorf("%w: round mode %v", ErrConfig, cfg.Mode)
	}
	if cfg.Staleness < 0 {
		return fmt.Errorf("%w: staleness cap %d", ErrConfig, cfg.Staleness)
	}
	if cfg.Staleness > 0 && cfg.Mode != RoundModeBoundedStaleness {
		return fmt.Errorf("%w: staleness cap %d requires RoundModeBoundedStaleness", ErrConfig, cfg.Staleness)
	}
	if relaxedMode(cfg.Mode) {
		// The relaxed schedulers run platform exchanges ahead of the
		// session loop's round counter, so every per-round side effect
		// that assumes a fully synchronized boundary is rejected rather
		// than silently wrong: checkpoints would snapshot mid-window
		// state, recovery/replication reconcile per-round positions, and
		// a schedule would apply round r's learning rate to later rounds.
		if cfg.CheckpointDir != "" {
			return fmt.Errorf("%w: checkpoints require a synchronized round mode, got %v", ErrConfig, cfg.Mode)
		}
		if cfg.Recovery != nil {
			return fmt.Errorf("%w: dropout recovery requires RoundModeSequential, got %v", ErrConfig, cfg.Mode)
		}
		if cfg.Back != nil && !nn.ReplaySafe(cfg.Back) {
			// The staggered scheduler rebuilds the back half's backward
			// cache by replaying its forward pass; stateful or stochastic
			// layers would advance twice per exchange.
			return fmt.Errorf("%w: %v requires a replay-safe back half (no stateful or stochastic layers)", ErrConfig, cfg.Mode)
		}
		if cfg.Replication != nil {
			return fmt.Errorf("%w: replication requires a synchronized round mode, got %v", ErrConfig, cfg.Mode)
		}
		if cfg.LRSchedule != nil {
			return fmt.Errorf("%w: LR schedules require a synchronized round mode, got %v", ErrConfig, cfg.Mode)
		}
	}
	if cfg.Mode == RoundModeSplitFed && cfg.L1SyncEvery <= 0 {
		return fmt.Errorf("%w: RoundModeSplitFed requires L1SyncEvery >= 1 (the averaging period)", ErrConfig)
	}
	if cfg.PipelineDepth < 0 {
		return fmt.Errorf("%w: pipeline depth %d", ErrConfig, cfg.PipelineDepth)
	}
	if cfg.PipelineDepth > 0 && cfg.Mode != RoundModePipelined {
		return fmt.Errorf("%w: pipeline depth %d requires RoundModePipelined", ErrConfig, cfg.PipelineDepth)
	}
	if cfg.Mode == RoundModePipelined && cfg.PipelineDepth == 0 {
		cfg.PipelineDepth = 1
	}
	if cfg.IOGoroutineBudget < 0 {
		return fmt.Errorf("%w: I/O goroutine budget %d", ErrConfig, cfg.IOGoroutineBudget)
	}
	if cfg.IOGoroutineBudget > 0 && cfg.Mode != RoundModePipelined {
		return fmt.Errorf("%w: I/O goroutine budget %d requires RoundModePipelined", ErrConfig, cfg.IOGoroutineBudget)
	}
	if cfg.LabelSharing && cfg.Loss == nil {
		return fmt.Errorf("%w: label sharing requires a server-side loss", ErrConfig)
	}
	if cfg.CheckpointEvery < 0 {
		return fmt.Errorf("%w: checkpoint every %d rounds", ErrConfig, cfg.CheckpointEvery)
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointDir == "" {
		return fmt.Errorf("%w: CheckpointEvery without CheckpointDir", ErrConfig)
	}
	if cfg.CheckpointRetain < 0 {
		return fmt.Errorf("%w: checkpoint retain %d", ErrConfig, cfg.CheckpointRetain)
	}
	if cfg.CheckpointRetain > 0 && cfg.CheckpointDir == "" {
		return fmt.Errorf("%w: CheckpointRetain without CheckpointDir", ErrConfig)
	}
	if cfg.Replication != nil {
		if err := cfg.Replication.validate(cfg); err != nil {
			return err
		}
	}
	if cfg.Recovery != nil {
		if cfg.Mode != RoundModeSequential {
			return fmt.Errorf("%w: dropout recovery requires RoundModeSequential, got %v", ErrConfig, cfg.Mode)
		}
		if err := cfg.Recovery.validate(); err != nil {
			return err
		}
	}
	if cfg.Codec == nil {
		cfg.Codec = wire.RawCodec{}
	}
	return nil
}

// platformState is the server's per-platform connection state: the
// transport endpoint, the connection status, and the recovery
// bookkeeping the rejoin handshake needs.
type platformState struct {
	conn   transport.Conn
	rc     *transport.Reconnectable // == conn when recovery is enabled
	status PlatformStatus

	// droppedRound is the round during which the connection died
	// (meaningful while status == PlatformDropped).
	droppedRound int

	// lastCut replays the most recent cut-gradient payload to a
	// platform that died waiting for it (recovery mode only): by the
	// time such a platform rejoins, the server may have moved on and
	// could no longer recompute the gradient from live state.
	lastCut      []byte
	lastCutRound int
	lastCutLoss  bool // payload carries the label-sharing loss scalar
}

// Server runs the server side of the split-learning protocol.
type Server struct {
	cfg       ServerConfig
	sched     roundScheduler
	sess      *Session
	reg       *platformRegistry
	lastBatch []int // most recent minibatch rows seen per platform
	evaluator int   // platform id that runs eval phases; -1 if none
	stop      atomic.Bool

	// repl is the leader-side replication engine (nil when the
	// replicated tier is off); promo is set only on a server built by
	// Follower.Promote and describes the round it resumes inside.
	repl  *replicator
	promo *promoState

	// stash is the in-memory boundary snapshot (CheckpointDir mode):
	// the server's complete state as of the last round boundary,
	// written to the stash file if the session dies mid-round, so a
	// platform failure never costs more than the unfinished round.
	stash *Snapshot

	// Concat-mode scratch, reused across rounds so fusing per-platform
	// minibatches stops allocating once batch shapes stabilize.
	fusedActs *tensor.Tensor
	fusedGrad *tensor.Tensor

	// Wire-path scratch (see wirebuf.go). Decoded-tensor slices are per
	// platform because concat mode holds every platform's activations
	// and loss gradients at once; sequential mode simply reuses slot k.
	// Encode buffers come from the shared pool via the per-site sizers.
	actsDec    [][]*tensor.Tensor
	gradDec    [][]*tensor.Tensor
	labelsDec  [][]int
	lossScalar *tensor.Tensor // label-sharing loss value, reused per round
	encLogits  payloadSizer
	encCut     payloadSizer
}

// NewServer validates cfg and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		lastBatch: make([]int, cfg.Platforms),
		evaluator: -1,
		actsDec:   make([][]*tensor.Tensor, cfg.Platforms),
		gradDec:   make([][]*tensor.Tensor, cfg.Platforms),
		labelsDec: make([][]int, cfg.Platforms),
	}
	switch {
	case cfg.Mode == RoundModeConcat:
		s.sched = concatScheduler{}
	case cfg.Mode == RoundModeBoundedStaleness && cfg.Staleness > 0:
		s.sched = &windowScheduler{window: cfg.Staleness + 1}
	case cfg.Mode == RoundModeSplitFed:
		s.sched = &windowScheduler{} // unbounded within an averaging period
	default:
		// Sequential, pipelined, and bounded-staleness at K=0: the
		// K=0 bit-identity guarantee holds by construction because it
		// runs the very same scheduler as RoundModeSequential.
		s.sched = sequentialScheduler{}
	}
	if cfg.Replication != nil {
		s.repl = newReplicator(cfg.Replication, cfg.Platforms)
	}
	return s, nil
}

// Stop requests a graceful shutdown: the server finishes the round in
// flight, writes a final checkpoint (when CheckpointDir is set),
// notifies the platforms, and Serve returns ErrStopped. Safe to call
// from any goroutine (the signal handlers in cmd/splitserver do).
func (s *Server) Stop() { s.stop.Store(true) }

// plan derives the deterministic session schedule from the config.
func (s *Server) plan() sessionPlan {
	return sessionPlan{
		start:       s.cfg.StartRound,
		rounds:      s.cfg.Rounds,
		l1SyncEvery: s.cfg.L1SyncEvery,
		evalEvery:   s.cfg.EvalEvery,
	}
}

// roundScheduler is how a scheduling mode executes one Train phase.
// The session machine owns everything else — what phase comes next,
// when to sync, evaluate, checkpoint or stop — so the three modes
// differ only in how a round's bytes and compute are ordered.
type roundScheduler interface {
	trainRound(s *Server, r int) error
}

// Serve drives the full protocol over the given per-platform
// connections (conns[k] talks to platform k). It performs the
// handshake, the training rounds with the scheduled L1-sync and
// evaluation phases, and the shutdown, then returns. Connections are
// not closed.
//
// In pipelined mode each connection is wrapped in a transport.AsyncConn
// so WAN I/O overlaps server compute; the wrappers are flushed and
// joined before Serve returns (on errors, the caller unblocks any
// remaining wrapper goroutine by closing the connections, which every
// caller in this repo does).
func (s *Server) Serve(conns []transport.Conn) error {
	if len(conns) != s.cfg.Platforms {
		return fmt.Errorf("%w: %d connections for %d platforms", ErrConfig, len(conns), s.cfg.Platforms)
	}
	var err error
	if s.cfg.Mode == RoundModePipelined {
		err = s.servePipelined(conns)
	} else {
		err = s.serve(conns)
	}
	if err != nil && !errors.Is(err, ErrStopped) {
		// Mid-round failure: persist the last consistent boundary so the
		// session can resume from it (graceful stops already wrote it).
		s.writeStashOnAbort()
	}
	return err
}

// refreshStash captures the boundary snapshot kept in memory for
// abort-time persistence. Only active in CheckpointDir mode.
func (s *Server) refreshStash(nextRound int) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	s.stash = s.Snapshot(nextRound)
}

// writeStashOnAbort persists the last boundary snapshot after a fatal
// mid-round error (best effort: the session is already failing). It
// writes the stash file, never the scheduled-checkpoint file — a crash
// must not destroy the last matched checkpoint set.
func (s *Server) writeStashOnAbort() {
	if s.stash == nil || s.cfg.CheckpointDir == "" {
		return
	}
	_ = SaveSnapshotFile(ServerStashPath(s.cfg.CheckpointDir), s.stash)
}

// servePipelined runs serve over async connection wrappers. The
// compute loop is byte-for-byte the sequential one — the overlap comes
// entirely from the transport layer, which is why PipelineDepth=1 is
// bit-identical to RoundModeSequential: reader goroutines prefetch
// platform k+1's activations while the server computes platform k, and
// writer goroutines ship platform k-1's cut gradients in the
// background.
func (s *Server) servePipelined(conns []transport.Conn) error {
	// Queue depths in messages: a platform sends at most 3 training
	// messages per round (activations, labels, loss-grad), plus sync and
	// eval control; 4 per in-flight round plus slack covers every mode.
	depth := 4*s.cfg.PipelineDepth + 4
	// The goroutine budget decides how many connections get dedicated
	// reader/writer goroutines (2 each); the rest stay synchronous.
	overlapped := len(conns)
	if b := s.cfg.IOGoroutineBudget; b > 0 && b/2 < overlapped {
		overlapped = b / 2
	}
	async := make([]*transport.AsyncConn, overlapped)
	wrapped := make([]transport.Conn, len(conns))
	copy(wrapped, conns)
	for k := 0; k < overlapped; k++ {
		async[k] = transport.NewAsync(conns[k], transport.AsyncOptions{
			SendQueue: depth,
			RecvQueue: depth,
			// Bye is the last message a platform ever sends, so the reader
			// can exit after delivering it and Stop below joins cleanly.
			StopRead: func(m *wire.Message) bool { return m.Type == wire.MsgBye },
		})
		wrapped[k] = async[k]
	}
	if err := s.serve(wrapped); err != nil {
		for _, a := range async {
			a.Abort()
		}
		return err
	}
	// Stop every wrapper even when one fails to flush: returning early
	// would leave the remaining writer goroutines parked on their
	// queues forever (closing the inner connection only unblocks
	// goroutines inside inner I/O, not channel waits).
	var flushErr error
	for k, a := range async {
		if err := a.Stop(); err != nil && flushErr == nil {
			flushErr = fmt.Errorf("core: server flushing platform %d: %w", k, err)
		}
	}
	return flushErr
}

// serve walks the session state machine. The scheduler executes Train
// phases; everything else — handshake, L1 sync, eval, checkpoints,
// graceful stop, shutdown — is shared across modes.
func (s *Server) serve(conns []transport.Conn) error {
	s.reg = newPlatformRegistry(conns, s.cfg.Recovery != nil)
	s.sess = newSession(s.plan())
	s.refreshStash(s.cfg.StartRound)
	for {
		switch s.sess.State() {
		case StateHandshake:
			if s.promo != nil {
				// Promoted server: the platforms were validated by the dead
				// leader's handshake and reconciled during Promote; install
				// the session facts the handshake would have produced.
				s.adoptPromotion()
			} else if err := s.handshake(); err != nil {
				return err
			}
			if s.repl != nil {
				if err := s.repl.start(s); err != nil {
					return err
				}
			}
		case StateTrain:
			r := s.sess.Round()
			nn.ApplySchedule(s.cfg.Opt, s.cfg.LRSchedule, r)
			s.adoptRejoiners(r)
			if err := s.sched.trainRound(s, r); err != nil {
				return fmt.Errorf("core: server round %d: %w", r, err)
			}
		case StateL1Sync:
			if err := s.l1Sync(s.sess.Round()); err != nil {
				return fmt.Errorf("core: server L1 sync round %d: %w", s.sess.Round(), err)
			}
		case StateEval:
			if err := s.evalIfPresent(s.sess.Round()); err != nil {
				return fmt.Errorf("core: server eval round %d: %w", s.sess.Round(), err)
			}
		case StateDone:
			return s.shutdown()
		}
		prev := s.sess.Round()
		st := s.sess.Advance()
		if st == StateDone || (st == StateTrain && s.sess.Round() != prev) {
			if err := s.atBoundary(prev + 1); err != nil {
				return err
			}
		}
	}
}

// atBoundary runs the round-boundary hooks: scheduled checkpoints and
// the graceful-stop check. completed is the number of rounds fully
// finished (train + any sync/eval phases).
func (s *Server) atBoundary(completed int) error {
	stopping := s.stop.Load() && s.sess.State() != StateDone
	if s.cfg.CheckpointDir != "" {
		if checkpointDue(s.cfg.CheckpointEvery, completed, false) {
			if err := SaveServerSnapshotGen(s.cfg.CheckpointDir, s.Snapshot(completed), s.cfg.CheckpointRetain); err != nil {
				return fmt.Errorf("core: server checkpoint at round %d: %w", completed, err)
			}
			if s.repl != nil {
				// The checkpoint generation is durable: re-anchor the WAL
				// chain here and drop the records it subsumes.
				if err := s.repl.atCheckpoint(s, completed); err != nil {
					return err
				}
			}
		}
		s.refreshStash(completed)
	}
	if stopping {
		// The stop snapshot goes to the stash file: the other parties
		// did not checkpoint this boundary on their schedules, so the
		// scheduled set must stay intact as a matched fallback.
		if s.cfg.CheckpointDir != "" {
			if err := SaveSnapshotFile(ServerStashPath(s.cfg.CheckpointDir), s.stash); err != nil {
				return fmt.Errorf("core: server stop checkpoint at round %d: %w", completed, err)
			}
		}
		// Best-effort, non-blocking notification: a platform already
		// blocked sending its next round's activations cannot take this
		// message (over the in-process pipe transport nobody is
		// receiving), so a synchronous send here would deadlock. The
		// caller closes the connections right after Serve returns, which
		// both delivers the close to the platforms and reaps these
		// goroutines.
		_ = s.reg.eachActive(func(k int, ps *platformState) error {
			// Raw send, no tracing: TraceFuncs are not required to be
			// goroutine-safe and the session goroutine moves on.
			msg := &wire.Message{
				Type:     wire.MsgErrorMsg,
				Platform: uint32(k),
				Payload:  wire.EncodeText(fmt.Sprintf("server stopping: checkpointed %d rounds", completed)),
			}
			conn := ps.conn
			go func() { _ = conn.Send(msg) }()
			return nil
		})
		return fmt.Errorf("%w: after %d rounds", ErrStopped, completed)
	}
	return nil
}

// shutdown completes the session: every active platform says goodbye.
// Dropped platforms (ProceedWithout policy) have nothing to say.
func (s *Server) shutdown() error {
	return s.reg.eachActive(func(k int, ps *platformState) error {
		if _, err := s.recv(ps.conn, wire.MsgBye, -1, k); err != nil {
			return fmt.Errorf("core: platform %d shutdown: %w", k, err)
		}
		ps.status = PlatformDone
		return nil
	})
}

// handshake validates every platform's declared configuration against
// the server's, and learns which platform (if any) evaluates.
func (s *Server) handshake() error {
	want := helloBase(s.cfg.Rounds, s.cfg.LabelSharing, s.cfg.L1SyncEvery, s.cfg.EvalEvery, s.cfg.Codec.Name(), s.cfg.StartRound)
	if err := s.reg.each(func(k int, ps *platformState) error {
		conn := ps.conn
		m, err := s.recv(conn, wire.MsgHello, -1, k)
		if err != nil {
			return fmt.Errorf("core: hello from platform %d: %w", k, err)
		}
		if int(m.Platform) != k {
			return fmt.Errorf("%w: connection %d identifies as platform %d", ErrProtocol, k, m.Platform)
		}
		meta, err := wire.DecodeText(m.Payload)
		if err != nil {
			return fmt.Errorf("core: hello meta from platform %d: %w", k, err)
		}
		base, evaluator, perr := parseHello(meta)
		if perr != nil {
			return fmt.Errorf("core: hello from platform %d: %w", k, perr)
		}
		if base != want {
			s.sendError(conn, k, fmt.Sprintf("config mismatch: server %q, platform %q", want, base))
			return fmt.Errorf("%w: platform %d config %q, server %q", ErrConfig, k, base, want)
		}
		if evaluator {
			if s.evaluator >= 0 {
				return fmt.Errorf("%w: platforms %d and %d both claim evaluator", ErrConfig, s.evaluator, k)
			}
			s.evaluator = k
		}
		ack := "mode=" + s.cfg.Mode.String()
		if s.cfg.Mode == RoundModePipelined {
			// Platforms use the advertised depth to decide whether to
			// overlap their local L1 backward with the next forward.
			ack = fmt.Sprintf("%s;depth=%d", ack, s.cfg.PipelineDepth)
		}
		if s.cfg.Mode == RoundModeBoundedStaleness {
			// Informational: platforms run the plain session walk in
			// every relaxed mode; the cap only changes server scheduling.
			ack = fmt.Sprintf("%s;k=%d", ack, s.cfg.Staleness)
		}
		return s.send(conn, &wire.Message{
			Type:     wire.MsgHelloAck,
			Platform: uint32(k),
			Payload:  wire.EncodeText(ack),
		}, k, -1)
	}); err != nil {
		return err
	}
	if s.cfg.EvalEvery > 0 && s.evaluator < 0 {
		return fmt.Errorf("%w: EvalEvery=%d but no platform declared evaluator", ErrConfig, s.cfg.EvalEvery)
	}
	return nil
}

// helloBase builds the comparable handshake string both parties derive
// from their configs. The start field appears only on resumed runs, so
// fresh-run handshakes stay wire-compatible round-trip for round-trip
// with earlier releases.
func helloBase(rounds int, labelShare bool, sync, eval int, codec string, start int) string {
	base := fmt.Sprintf("v=1;rounds=%d;labelshare=%t;sync=%d;eval=%d;codec=%s",
		rounds, labelShare, sync, eval, codec)
	if start > 0 {
		base = fmt.Sprintf("%s;start=%d", base, start)
	}
	return base
}

// parseHello splits a hello meta string into the comparable base part
// and the evaluator flag.
func parseHello(meta string) (base string, evaluator bool, err error) {
	idx := strings.LastIndex(meta, ";evaluator=")
	if idx < 0 {
		return "", false, fmt.Errorf("%w: hello meta %q missing evaluator field", ErrProtocol, meta)
	}
	switch meta[idx+len(";evaluator="):] {
	case "true":
		return meta[:idx], true, nil
	case "false":
		return meta[:idx], false, nil
	default:
		return "", false, fmt.Errorf("%w: hello meta %q has bad evaluator value", ErrProtocol, meta)
	}
}

// sequentialScheduler processes each platform's minibatch as its own
// forward/backward/optimizer step (k steps per round, the reading most
// consistent with the paper's flowchart). It is the only scheduler
// that supports dropout recovery: each platform's exchange is an
// independent stage machine, so a dead platform can be skipped or
// resumed without touching the others.
type sequentialScheduler struct{}

func (sequentialScheduler) trainRound(s *Server, r int) error {
	return s.reg.each(func(k int, ps *platformState) error {
		if ps.status == PlatformDropped {
			return nil
		}
		if s.promo != nil && r == s.promo.round && s.promo.done[k] {
			// Failover resume: the dead leader already recorded this
			// platform's step for this round — it lives in the replayed
			// state — and Promote replayed the platform its cut gradient.
			return nil
		}
		return s.seqExchange(k, r)
	})
}

// Wire positions within one platform's train exchange, in protocol
// order. Both parties number them identically; the rejoin handshake
// exchanges positions to agree where a recovered round resumes.
const (
	posActs     = 0 // platform → server: activations
	posLabels   = 1 // platform → server: labels (label-sharing mode)
	posLogits   = 2 // server → platform: logits (label-private mode)
	posLossGrad = 3 // platform → server: loss gradients (label-private mode)
	posCutGrad  = 4 // server → platform: cut gradients
	posDone     = 5 // exchange complete
)

// seqExchange runs one platform's training exchange for round r as an
// explicit stage machine. Compute (forward, backward, optimizer step)
// is bound to stage *transitions*, so re-entering a wire stage after a
// dropout recovery never recomputes — BatchNorm statistics and
// optimizer state advance exactly once per round no matter how many
// times the wire stages retry.
func (s *Server) seqExchange(k, r int) error {
	ps := s.reg.state(k)
	conn := ps.conn
	var a, z, da *tensor.Tensor
	var labels []int
	var lossVal float64
	pos := posActs
	for pos != posDone {
		var err error
		switch pos {
		case posActs:
			a, err = s.recvActs(conn, r, k)
			if err == nil {
				s.lastBatch[k] = a.Dim(0)
				if s.cfg.LabelSharing {
					pos = posLabels
				} else {
					release := s.acquireCompute()
					z = s.cfg.Back.Forward(a, true)
					release()
					pos = posLogits
				}
			}
		case posLabels:
			labels, err = s.recvLabels(conn, r, k, a.Dim(0))
			if err == nil {
				// Forward, loss and backward run back to back with no
				// wire I/O between them, so they share one gate slot.
				release := s.acquireCompute()
				z = s.cfg.Back.Forward(a, true)
				var dz *tensor.Tensor
				lossVal, dz = s.cfg.Loss.Loss(z, labels)
				da = s.backwardStep(dz)
				release()
				pos = posCutGrad
			}
		case posLogits:
			err = s.send(conn, &wire.Message{
				Type:     wire.MsgLogits,
				Platform: uint32(k),
				Round:    uint32(r),
				Payload:  s.encLogits.encode(s.cfg.Codec, z),
			}, k, r)
			if err == nil {
				pos = posLossGrad
			}
		case posLossGrad:
			var dz *tensor.Tensor
			dz, err = s.recvLossGrad(conn, r, k, z)
			if err == nil {
				release := s.acquireCompute()
				da = s.backwardStep(dz)
				release()
				pos = posCutGrad
			}
		case posCutGrad:
			err = s.sendCutGrad(ps, k, r, da, lossVal)
			if err == nil {
				pos = posDone
			}
		}
		if err != nil {
			resume, skip, rerr := s.handleDrop(k, r, pos, err)
			if rerr != nil {
				return rerr
			}
			if skip {
				return nil
			}
			pos = resume
		}
	}
	return nil
}

// exchangeFront runs the first half of platform k's round-r exchange:
// receive the cut activations, forward them through the back half and
// ship the logits. It returns the logits so exchangeBack can validate
// the loss gradient against them, or nil when the exchange completed
// entirely (label-sharing mode has no logits leg: the server owns the
// loss, so the whole exchange runs front to back with no mid-exchange
// round trip to overlap).
//
// The relaxed schedulers call the two halves with other platforms'
// halves in between, which moves each platform's logits → loss-grad
// turnaround off the server's serial path. The shared back model holds
// only one backward cache, so exchangeBack replays the forward to
// rebuild it — NewServer rejects relaxed configs whose back half is
// not nn.ReplaySafe.
func (s *Server) exchangeFront(k, r int) (*tensor.Tensor, error) {
	ps := s.reg.state(k)
	a, err := s.recvActs(ps.conn, r, k)
	if err != nil {
		return nil, err
	}
	s.lastBatch[k] = a.Dim(0)
	if s.cfg.LabelSharing {
		labels, err := s.recvLabels(ps.conn, r, k, a.Dim(0))
		if err != nil {
			return nil, err
		}
		release := s.acquireCompute()
		z := s.cfg.Back.Forward(a, true)
		lossVal, dz := s.cfg.Loss.Loss(z, labels)
		da := s.backwardStep(dz)
		release()
		return nil, s.sendCutGrad(ps, k, r, da, lossVal)
	}
	release := s.acquireCompute()
	z := s.cfg.Back.Forward(a, true)
	release()
	return z, s.send(ps.conn, &wire.Message{
		Type:     wire.MsgLogits,
		Platform: uint32(k),
		Round:    uint32(r),
		Payload:  s.encLogits.encode(s.cfg.Codec, z),
	}, k, r)
}

// exchangeBack finishes a split exchange opened by exchangeFront:
// receive the loss gradient, replay the forward to rebuild the back
// half's backward cache (other platforms' forwards overwrote it since
// the front half ran), then backward, step, and ship the cut gradient.
// The replay reuses platform k's decoded activations, which stay valid
// until its next exchangeFront.
func (s *Server) exchangeBack(k, r int, z *tensor.Tensor) error {
	ps := s.reg.state(k)
	dz, err := s.recvLossGrad(ps.conn, r, k, z)
	if err != nil {
		return err
	}
	release := s.acquireCompute()
	s.cfg.Back.Forward(s.actsDec[k][0], true)
	da := s.backwardStep(dz)
	release()
	return s.sendCutGrad(ps, k, r, da, 0)
}

// backwardStep runs the server backward pass and optimizer step for
// one minibatch, returning the cut gradient.
func (s *Server) backwardStep(dz *tensor.Tensor) *tensor.Tensor {
	nn.ZeroGrads(s.cfg.Back.Params())
	da := s.cfg.Back.Backward(dz)
	if s.cfg.ClipGrads > 0 {
		nn.ClipGrads(s.cfg.Back.Params(), s.cfg.ClipGrads)
	}
	s.cfg.Opt.Step(s.cfg.Back.Params())
	return da
}

// sendCutGrad ships the cut gradient (plus the loss scalar in
// label-sharing mode). In recovery mode the encoded payload is also
// cached so a platform that died waiting for it can be replayed after
// the server has moved on.
func (s *Server) sendCutGrad(ps *platformState, k, r int, da *tensor.Tensor, lossVal float64) error {
	var payload []byte
	if s.cfg.LabelSharing {
		if s.lossScalar == nil {
			s.lossScalar = tensor.New()
		}
		s.lossScalar.Set(float32(lossVal))
		payload = s.encCut.encode(s.cfg.Codec, da, s.lossScalar)
	} else {
		payload = s.encCut.encode(s.cfg.Codec, da)
	}
	if s.cfg.Recovery != nil {
		ps.lastCut = append(ps.lastCut[:0], payload...)
		ps.lastCutRound = r
		ps.lastCutLoss = s.cfg.LabelSharing
	}
	if s.repl != nil {
		// Durability before acknowledgement: the step's record (state
		// delta + this exact payload) hits the WAL and the follower
		// streams before the platform can observe the step happened.
		if err := s.repl.onStep(s, k, r, payload); err != nil {
			return err
		}
	}
	return s.send(ps.conn, &wire.Message{
		Type:     wire.MsgCutGrad,
		Platform: uint32(k),
		Round:    uint32(r),
		Payload:  payload,
	}, k, r)
}

// concatScheduler fuses all platforms' minibatches into a single batch
// and takes one optimizer step per round on the union gradient.
// Per-platform loss gradients are rescaled by s_k/S so the fused
// gradient is the mean over the union batch regardless of per-platform
// batch sizes.
type concatScheduler struct{}

func (concatScheduler) trainRound(s *Server, r int) error {
	conns := make([]transport.Conn, s.reg.len())
	_ = s.reg.each(func(k int, ps *platformState) error {
		conns[k] = ps.conn
		return nil
	})
	acts := make([]*tensor.Tensor, len(conns))
	labelsPer := make([][]int, len(conns))
	sizes := make([]int, len(conns))
	total := 0
	for k, conn := range conns {
		a, err := s.recvActs(conn, r, k)
		if err != nil {
			return err
		}
		if s.cfg.LabelSharing {
			labels, err := s.recvLabels(conn, r, k, a.Dim(0))
			if err != nil {
				return err
			}
			labelsPer[k] = labels
		}
		acts[k] = a
		sizes[k] = a.Dim(0)
		s.lastBatch[k] = sizes[k]
		total += sizes[k]
	}
	fusedShape := append([]int{total}, acts[0].Shape()[1:]...)
	s.fusedActs = tensor.EnsureShape(s.fusedActs, fusedShape...)
	fused := tensor.ConcatDim0Into(s.fusedActs, acts...)
	release := s.acquireCompute()
	z := s.cfg.Back.Forward(fused, true)
	release()

	var dz *tensor.Tensor
	var lossVals []float64
	if s.cfg.LabelSharing {
		var allLabels []int
		for _, l := range labelsPer {
			allLabels = append(allLabels, l...)
		}
		var lossVal float64
		lossVal, dz = s.cfg.Loss.Loss(z, allLabels)
		lossVals = make([]float64, len(conns))
		for k := range lossVals {
			lossVals[k] = lossVal
		}
	} else {
		zs := tensor.SplitDim0(z, sizes)
		for k, conn := range conns {
			if err := s.send(conn, &wire.Message{
				Type:     wire.MsgLogits,
				Platform: uint32(k),
				Round:    uint32(r),
				Payload:  s.encLogits.encode(s.cfg.Codec, zs[k]),
			}, k, r); err != nil {
				return err
			}
		}
		grads := make([]*tensor.Tensor, len(conns))
		for k, conn := range conns {
			g, err := s.recvLossGrad(conn, r, k, zs[k])
			if err != nil {
				return err
			}
			// Rescale from per-platform mean to union mean.
			g.Scale(float32(sizes[k]) / float32(total))
			grads[k] = g
		}
		gradShape := append([]int{total}, grads[0].Shape()[1:]...)
		s.fusedGrad = tensor.EnsureShape(s.fusedGrad, gradShape...)
		dz = tensor.ConcatDim0Into(s.fusedGrad, grads...)
	}

	release = s.acquireCompute()
	da := s.backwardStep(dz)
	release()

	das := tensor.SplitDim0(da, sizes)
	for k, conn := range conns {
		var payload []byte
		if s.cfg.LabelSharing {
			if s.lossScalar == nil {
				s.lossScalar = tensor.New()
			}
			s.lossScalar.Set(float32(lossVals[k]))
			payload = s.encCut.encode(s.cfg.Codec, das[k], s.lossScalar)
		} else {
			payload = s.encCut.encode(s.cfg.Codec, das[k])
		}
		if err := s.send(conn, &wire.Message{
			Type:     wire.MsgCutGrad,
			Platform: uint32(k),
			Round:    uint32(r),
			Payload:  payload,
		}, k, r); err != nil {
			return err
		}
	}
	return nil
}

// recvActs reads platform k's minibatch activations into the
// platform's decode scratch, recycling the payload buffer. The
// returned tensor is owned by the server and valid until platform k's
// next activations decode — which in every round mode happens after
// the round's backward has consumed it.
func (s *Server) recvActs(conn transport.Conn, r, k int) (*tensor.Tensor, error) {
	m, err := s.recv(conn, wire.MsgActivations, r, k)
	if err != nil {
		return nil, err
	}
	ts, derr := wire.DecodeInto(s.cfg.Codec, s.actsDec[k], m.Payload)
	if derr != nil || len(ts) != 1 {
		return nil, fmt.Errorf("%w: bad activations payload from platform %d", ErrProtocol, k)
	}
	s.actsDec[k] = ts
	releasePayload(m)
	return ts[0], nil
}

// recvLabels reads platform k's label vector (label-sharing mode) and
// validates its length against the activation batch.
func (s *Server) recvLabels(conn transport.Conn, r, k, batch int) ([]int, error) {
	lm, err := s.recv(conn, wire.MsgLabels, r, k)
	if err != nil {
		return nil, err
	}
	labels, derr := wire.DecodeLabelsInto(s.labelsDec[k], lm.Payload)
	if derr != nil {
		return nil, fmt.Errorf("%w: bad labels payload from platform %d", ErrProtocol, k)
	}
	s.labelsDec[k] = labels
	releasePayload(lm)
	if len(labels) != batch {
		return nil, fmt.Errorf("%w: %d labels for %d activations", ErrProtocol, len(labels), batch)
	}
	return labels, nil
}

// recvLossGrad reads platform k's loss gradient and validates its
// shape against the logits it answers.
func (s *Server) recvLossGrad(conn transport.Conn, r, k int, z *tensor.Tensor) (*tensor.Tensor, error) {
	m, err := s.recv(conn, wire.MsgLossGrad, r, k)
	if err != nil {
		return nil, err
	}
	ts, derr := wire.DecodeInto(s.cfg.Codec, s.gradDec[k], m.Payload)
	if derr != nil || len(ts) != 1 {
		return nil, fmt.Errorf("%w: bad loss-grad payload from platform %d", ErrProtocol, k)
	}
	s.gradDec[k] = ts
	releasePayload(m)
	dz := ts[0]
	if !tensor.SameShape(dz, z) {
		return nil, fmt.Errorf("%w: loss-grad shape %v, logits %v", ErrProtocol, dz.Shape(), z.Shape())
	}
	return dz, nil
}

// l1Sync averages the active platforms' L1 weights (weighted by their
// latest minibatch sizes) and redistributes the result. Dropped
// platforms (ProceedWithout policy) neither contribute nor receive;
// they re-align at their next L1 sync after rejoining.
func (s *Server) l1Sync(r int) error {
	var lists [][]*tensor.Tensor
	var weights []float64
	if err := s.reg.eachActive(func(k int, ps *platformState) error {
		m, err := s.recv(ps.conn, wire.MsgModelPush, r, k)
		if err != nil {
			return err
		}
		ts, derr := wire.DecodeTensors(m.Payload)
		if derr != nil {
			return fmt.Errorf("%w: bad L1 push from platform %d", ErrProtocol, k)
		}
		if len(lists) > 0 && len(ts) != len(lists[0]) {
			return fmt.Errorf("%w: platform %d pushed %d tensors, want %d", ErrProtocol, k, len(ts), len(lists[0]))
		}
		lists = append(lists, ts)
		weights = append(weights, float64(s.lastBatch[k]))
		return nil
	}); err != nil {
		return err
	}
	if len(lists) == 0 {
		return fmt.Errorf("%w: L1 sync with no active platforms", ErrProtocol)
	}
	// Weighted average into fresh tensors. The arithmetic is the
	// parameter-averaging kernel shared with the FedAvg baseline, so
	// SplitFed's periodic averaging and standalone FedAvg agree bit for
	// bit on how platform weights combine.
	avg := make([]*tensor.Tensor, len(lists[0]))
	for i := range avg {
		avg[i] = tensor.New(lists[0][i].Shape()...)
	}
	if err := fedavg.AverageInto(avg, lists, weights); err != nil {
		return fmt.Errorf("%w: L1 sync: %v", ErrProtocol, err)
	}
	payload := wire.EncodeTensors(avg...)
	return s.reg.eachActive(func(k int, ps *platformState) error {
		return s.send(ps.conn, &wire.Message{
			Type:     wire.MsgModelPush,
			Platform: uint32(k),
			Round:    uint32(r),
			Payload:  payload,
		}, k, r)
	})
}

// evalIfPresent runs the evaluation phase when an evaluator exists and
// is connected.
func (s *Server) evalIfPresent(r int) error {
	if s.evaluator < 0 || s.reg.state(s.evaluator).status != PlatformActive {
		return nil
	}
	return s.evalPhase(s.reg.state(s.evaluator).conn, r)
}

// evalPhase answers a stream of evaluation batches from the evaluator
// platform until it sends MsgAck. Evaluation runs the back half in
// inference mode and never updates weights.
func (s *Server) evalPhase(conn transport.Conn, r int) error {
	for {
		m, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("core: eval recv: %w", err)
		}
		s.trace("recv", m, s.evaluator)
		switch m.Type {
		case wire.MsgAck:
			return nil
		case wire.MsgEvalActivations:
			ts, derr := wire.DecodeTensors(m.Payload)
			if derr != nil || len(ts) != 1 {
				return fmt.Errorf("%w: bad eval activations", ErrProtocol)
			}
			release := s.acquireCompute()
			z := s.cfg.Back.Forward(ts[0], false)
			release()
			if err := s.send(conn, &wire.Message{
				Type:     wire.MsgEvalLogits,
				Platform: uint32(s.evaluator),
				Round:    uint32(r),
				Payload:  wire.EncodeTensors(z),
			}, s.evaluator, r); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: %s during eval phase", ErrProtocol, m.Type)
		}
	}
}

// send traces and transmits.
func (s *Server) send(conn transport.Conn, m *wire.Message, platform, round int) error {
	if err := conn.Send(m); err != nil {
		return fmt.Errorf("core: server send %s to platform %d: %w", m.Type, platform, err)
	}
	s.trace("send", m, platform)
	_ = round
	return nil
}

// recv traces and validates an expected message.
func (s *Server) recv(conn transport.Conn, want wire.MsgType, round, platform int) (*wire.Message, error) {
	m, err := recvExpect(conn, want, round)
	if err != nil {
		return nil, fmt.Errorf("core: server: platform %d: %w", platform, err)
	}
	s.trace("recv", m, platform)
	return m, nil
}

func (s *Server) trace(dir string, m *wire.Message, platform int) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace(TraceEvent{
		Party:    "server",
		Dir:      dir,
		Type:     m.Type,
		Platform: platform,
		Round:    int(m.Round),
		Bytes:    m.WireSize(),
	})
}

// sendError reports a fatal condition to a platform (best effort).
func (s *Server) sendError(conn transport.Conn, platform int, text string) {
	_ = s.send(conn, &wire.Message{
		Type:     wire.MsgErrorMsg,
		Platform: uint32(platform),
		Payload:  wire.EncodeText(text),
	}, platform, -1)
}
