package core

import (
	"fmt"

	"medsplit/internal/nn"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// This file implements the platform's overlapped scheduler — the
// RoundModePipelined / PipelineDepth >= 2 counterpart of runPlain: a
// software pipeline that keeps one round in flight so the L1 backward
// of round r overlaps the forward (and activation upload) of round
// r+1. It drives the same session state machine as the plain
// scheduler; only the Train phase differs.
//
// Schedule, per Train phase r (label-private mode):
//
//	forward r          on fronts[r%2]            } overlaps the server's
//	send activations r                           } backward/step of round
//	finish r-1: recv cut-grad, backward, step    } r-1 and the cut-grad
//	recv logits r, send loss-grad r              } WAN transfer
//
// The forward of round r therefore runs before the optimizer step of
// round r-1 is applied: L1 weights are one step stale, the classic
// pipeline-parallel trade (the server-side halves are never stale —
// the server's compute loop is strictly sequential in every mode).
// The schedule is fixed, so training remains bit-for-bit reproducible
// for a given configuration; it just follows a different (overlapped)
// trajectory than RoundModeSequential. The pipeline drains at L1-sync,
// evaluation, final and checkpoint rounds, so synchronization points
// (and snapshots) see exactly the weights sequential mode would
// exchange at that round.
//
// Two front instances are required because layer instances cache
// activations between forward and backward; alternating rounds between
// Front and ShadowFront keeps both rounds' caches alive. The optimizer
// (and its state) always steps Front's parameters; gradients computed
// on the shadow are copied over first and the stepped weights are
// mirrored back after every step. Stateful buffers (BatchNorm running
// statistics) instead follow the forward stream: they are handed to
// the instance about to run a forward (handStateTo), so they track the
// same per-batch EMA chain a single sequential front would compute.

// inflight is one round whose L1 backward has not happened yet.
type inflight struct {
	round  int
	front  *nn.Sequential
	acts   *tensor.Tensor
	labels []int // label-private mode only
	loss   float64
	batch  int
}

// runOverlapped executes the overlapped training schedule. Sends go
// through a write-only transport.AsyncConn so the activation upload of
// round r+1 does not block the backward of round r on a slow link.
func (p *Platform) runOverlapped(conn transport.Conn, sess *Session, stats *PlatformStats) (*PlatformStats, error) {
	ac := transport.NewAsync(conn, transport.AsyncOptions{SendQueue: 4})
	ok := false
	defer func() {
		if !ok {
			ac.Abort()
		}
	}()

	finish := func() error {
		if p.pend == nil {
			return nil
		}
		fl := p.pend
		p.pend = nil
		if err := p.finishRound(ac, fl, stats); err != nil {
			return fmt.Errorf("core: platform %d round %d: %w", p.cfg.ID, fl.round, err)
		}
		return nil
	}
	for {
		switch sess.State() {
		case StateTrain:
			r := sess.Round()
			fl, err := p.startRound(ac, r)
			if err != nil {
				return nil, fmt.Errorf("core: platform %d round %d: %w", p.cfg.ID, r, err)
			}
			if err := finish(); err != nil {
				return nil, err
			}
			if !p.cfg.LabelSharing {
				if err := p.exchangeLossGrad(ac, fl); err != nil {
					return nil, fmt.Errorf("core: platform %d round %d: %w", p.cfg.ID, r, err)
				}
			}
			p.pend = fl
			// Synchronization points drain the pipeline: the step for
			// round r must be applied before weights are pushed, accuracy
			// is measured, a snapshot is taken, or training ends.
			if p.drainAfter(sess, r) {
				if err := finish(); err != nil {
					return nil, err
				}
			}
		case StateL1Sync:
			r := sess.Round()
			if err := p.l1Sync(ac, r); err != nil {
				return nil, fmt.Errorf("core: platform %d L1 sync round %d: %w", p.cfg.ID, r, err)
			}
			// l1Sync installed averaged weights into Front; re-mirror.
			if err := nn.CopyParams(p.cfg.ShadowFront.Params(), p.cfg.Front.Params()); err != nil {
				return nil, fmt.Errorf("core: platform %d L1 sync round %d: %w", p.cfg.ID, r, err)
			}
		case StateEval:
			// Inference normalizes with running statistics: make sure
			// Front holds the newest ones before evaluating.
			if err := p.evalPoint(ac, sess.Round(), stats, func() error { return p.handStateTo(0) }); err != nil {
				return nil, err
			}
		case StateDone:
			if err := p.send(ac, &wire.Message{
				Type:     wire.MsgBye,
				Platform: uint32(p.cfg.ID),
				Round:    uint32(p.cfg.Rounds),
			}); err != nil {
				return nil, err
			}
			if err := ac.Stop(); err != nil {
				return nil, fmt.Errorf("core: platform %d flushing connection: %w", p.cfg.ID, err)
			}
			ok = true
			return stats, nil
		}
		if err := p.advance(sess, ac); err != nil {
			return nil, err
		}
	}
}

// drainAfter reports whether the pipeline must drain after round r's
// start phase: before an L1 sync, an evaluation, the final round, a
// checkpoint boundary, or a graceful stop — every point that must
// observe fully stepped weights.
func (p *Platform) drainAfter(sess *Session, r int) bool {
	plan := sess.plan
	if plan.syncRound(r) || plan.evalRound(r) || r == plan.rounds-1 {
		return true
	}
	if p.stop.Load() {
		return true
	}
	return p.cfg.CheckpointDir != "" && checkpointDue(p.cfg.CheckpointEvery, r+1, false)
}

// pipelineFront alternates rounds between the two front instances so
// consecutive rounds' layer caches never collide.
func (p *Platform) pipelineFront(r int) *nn.Sequential {
	if r%2 == 1 {
		return p.cfg.ShadowFront
	}
	return p.cfg.Front
}

// startRound samples the round's minibatch, runs the L1 forward on the
// round's front instance and ships the activations (and labels, when
// sharing). The L1 backward for this round happens later, in
// finishRound.
func (p *Platform) startRound(conn transport.Conn, r int) (*inflight, error) {
	idx := p.sampler.Next()
	// Slot r%2 follows the front instance: the instance's backward (in
	// finishRound, one round later) reads the batch its Forward cached,
	// so the batch must live as long as the instance's round is in
	// flight.
	x, labels := p.cfg.Shard.BatchInto(p.batchX[r%2], p.batchLabels[r%2], idx)
	p.batchX[r%2], p.batchLabels[r%2] = x, labels
	if p.cfg.Augment != nil && x.Rank() == 4 {
		p.cfg.Augment.Apply(x)
	}
	f := p.pipelineFront(r)
	if err := p.handStateTo(r % 2); err != nil {
		return nil, err
	}
	a := f.Forward(x, true)
	if err := p.send(conn, &wire.Message{
		Type:     wire.MsgActivations,
		Platform: uint32(p.cfg.ID),
		Round:    uint32(r),
		Payload:  p.encActs.encode(p.cfg.Codec, a),
	}); err != nil {
		return nil, err
	}
	fl := &inflight{round: r, front: f, acts: a, batch: len(labels)}
	if p.cfg.LabelSharing {
		if err := p.send(conn, &wire.Message{
			Type:     wire.MsgLabels,
			Platform: uint32(p.cfg.ID),
			Round:    uint32(r),
			Payload:  p.encLabels.encodeLabels(labels),
		}); err != nil {
			return nil, err
		}
	} else {
		fl.labels = labels
	}
	return fl, nil
}

// exchangeLossGrad receives the round's logits, computes the local loss
// gradient and ships it back (label-private mode only).
func (p *Platform) exchangeLossGrad(conn transport.Conn, fl *inflight) error {
	m, err := p.recv(conn, wire.MsgLogits, fl.round)
	if err != nil {
		return err
	}
	ts, derr := wire.DecodeInto(p.cfg.Codec, p.logitsDec, m.Payload)
	if derr != nil || len(ts) != 1 {
		return fmt.Errorf("%w: bad logits payload", ErrProtocol)
	}
	p.logitsDec = ts
	releasePayload(m)
	z := ts[0]
	if z.Dim(0) != len(fl.labels) {
		return fmt.Errorf("%w: %d logit rows for %d labels", ErrProtocol, z.Dim(0), len(fl.labels))
	}
	var dz *tensor.Tensor
	fl.loss, dz = p.cfg.Loss.Loss(z, fl.labels)
	return p.send(conn, &wire.Message{
		Type:     wire.MsgLossGrad,
		Platform: uint32(p.cfg.ID),
		Round:    uint32(fl.round),
		Payload:  p.encGrad.encode(p.cfg.Codec, dz),
	})
}

// finishRound receives the round's cut gradient, runs the L1 backward
// on the instance that did the forward, steps the canonical (Front)
// parameters and mirrors the stepped weights onto the other instance.
// Stateful buffers are NOT mirrored here: by this point the next
// round's forward may already have updated the other instance's
// statistics, and overwriting them would lose that batch. They are
// handed over in startRound instead (handStateTo).
func (p *Platform) finishRound(conn transport.Conn, fl *inflight, stats *PlatformStats) error {
	m, err := p.recv(conn, wire.MsgCutGrad, fl.round)
	if err != nil {
		return err
	}
	ts, derr := wire.DecodeInto(p.cfg.Codec, p.cutDec, m.Payload)
	var da *tensor.Tensor
	if p.cfg.LabelSharing {
		if derr != nil || len(ts) != 2 {
			return fmt.Errorf("%w: bad cut-grad payload (label sharing)", ErrProtocol)
		}
		da = ts[0]
		fl.loss = float64(ts[1].At())
	} else {
		if derr != nil || len(ts) != 1 {
			return fmt.Errorf("%w: bad cut-grad payload", ErrProtocol)
		}
		da = ts[0]
	}
	p.cutDec = ts
	releasePayload(m)
	if !tensor.SameShape(da, fl.acts) {
		return fmt.Errorf("%w: cut-grad shape %v, activations %v", ErrProtocol, da.Shape(), fl.acts.Shape())
	}

	nn.ZeroGrads(fl.front.Params())
	fl.front.Backward(da)
	if fl.front != p.cfg.Front {
		// Gradients were accumulated on the shadow; move them onto the
		// canonical params so the optimizer state always follows Front.
		fp, sp := p.cfg.Front.Params(), fl.front.Params()
		for i := range fp {
			fp[i].G.CopyFrom(sp[i].G)
		}
	}
	// The schedule is applied per step with the step's own round index:
	// the step for round r lands during loop iteration r+1, and using
	// iteration r+1's learning rate would diverge from sequential mode.
	nn.ApplySchedule(p.cfg.Opt, p.cfg.LRSchedule, fl.round)
	if p.cfg.ClipGrads > 0 {
		nn.ClipGrads(p.cfg.Front.Params(), p.cfg.ClipGrads)
	}
	p.cfg.Opt.Step(p.cfg.Front.Params())
	if err := nn.CopyParams(p.cfg.ShadowFront.Params(), p.cfg.Front.Params()); err != nil {
		return fmt.Errorf("core: mirroring weights: %w", err)
	}
	stats.Rounds = append(stats.Rounds, RoundStat{Round: fl.round, Loss: fl.loss, Batch: fl.batch})
	return nil
}

// handStateTo copies the newest stateful buffers (BatchNorm running
// statistics) onto the given instance, making it the owner. Called
// immediately before a forward on that instance — never after a later
// forward already ran elsewhere, which would overwrite the newer
// update — so the statistics follow the exact per-batch EMA chain a
// single sequential front would compute.
func (p *Platform) handStateTo(owner int) error {
	if len(p.frontState) == 0 || p.stateOwner == owner {
		p.stateOwner = owner
		return nil
	}
	src, dst := p.frontState, p.shadowState
	if owner == 0 {
		src, dst = p.shadowState, p.frontState
	}
	if err := copyState(dst, src); err != nil {
		return fmt.Errorf("core: mirroring state: %w", err)
	}
	p.stateOwner = owner
	return nil
}
