package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"medsplit/internal/dataset"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// serveOne starts a 1-platform server on a pipe and returns the client
// end plus the server's error channel, letting tests drive the protocol
// by hand with hostile inputs.
func serveOne(t *testing.T, mut func(*ServerConfig)) (transport.Conn, chan error) {
	t.Helper()
	train, _ := testData(t, 2, 16, 4, 31)
	flat := flatten(train)
	_, back := buildSplitMLP(t, 131, flat.X.Dim(1), 2)
	srv := defaultServer(t, back, 1, 2, mut)
	sConn, pConn := transport.Pipe()
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.Serve([]transport.Conn{sConn})
		sConn.Close()
	}()
	return pConn, errCh
}

func hello(rounds int) *wire.Message {
	meta := fmt.Sprintf("v=1;rounds=%d;labelshare=false;sync=0;eval=0;codec=raw;evaluator=false", rounds)
	return &wire.Message{Type: wire.MsgHello, Platform: 0, Payload: wire.EncodeText(meta)}
}

func TestServerRejectsWrongFirstMessage(t *testing.T) {
	conn, errCh := serveOne(t, nil)
	defer conn.Close()
	if err := conn.Send(&wire.Message{Type: wire.MsgAck}); err != nil {
		t.Fatal(err)
	}
	err := <-errCh
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestServerRejectsWrongPlatformID(t *testing.T) {
	conn, errCh := serveOne(t, nil)
	defer conn.Close()
	m := hello(2)
	m.Platform = 5
	if err := conn.Send(m); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestServerRejectsMalformedActivations(t *testing.T) {
	conn, errCh := serveOne(t, nil)
	defer conn.Close()
	if err := conn.Send(hello(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // hello-ack
		t.Fatal(err)
	}
	// Garbage payload in a validly framed message.
	if err := conn.Send(&wire.Message{
		Type:    wire.MsgActivations,
		Round:   0,
		Payload: []byte{0xde, 0xad, 0xbe, 0xef},
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestServerRejectsWrongRoundNumber(t *testing.T) {
	conn, errCh := serveOne(t, nil)
	defer conn.Close()
	if err := conn.Send(hello(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	a := tensor.New(4, 32)
	if err := conn.Send(&wire.Message{
		Type:    wire.MsgActivations,
		Round:   7, // server expects round 0
		Payload: wire.EncodeTensors(a),
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestServerRejectsMismatchedLossGradShape(t *testing.T) {
	conn, errCh := serveOne(t, nil)
	defer conn.Close()
	if err := conn.Send(hello(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	a := tensor.New(4, 32)
	if err := conn.Send(&wire.Message{Type: wire.MsgActivations, Round: 0, Payload: wire.EncodeTensors(a)}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // logits
		t.Fatal(err)
	}
	bad := tensor.New(4, 99) // wrong class count
	if err := conn.Send(&wire.Message{Type: wire.MsgLossGrad, Round: 0, Payload: wire.EncodeTensors(bad)}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestPlatformFailsCleanlyOnServerDeath(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 32)
	flat := flatten(train)
	front, _ := buildSplitMLP(t, 141, flat.X.Dim(1), 2)
	plat := defaultPlatform(t, 0, front, flat, 5, nil)

	sConn, pConn := transport.Pipe()
	// Server accepts the handshake then dies.
	go func() {
		m, err := sConn.Recv()
		if err != nil || m.Type != wire.MsgHello {
			sConn.Close()
			return
		}
		_ = sConn.Send(&wire.Message{Type: wire.MsgHelloAck, Payload: wire.EncodeText("mode=sequential")})
		sConn.Close()
	}()
	_, err := plat.Run(pConn)
	if err == nil {
		t.Fatal("platform must fail when the server dies")
	}
}

func TestPlatformRejectsPeerError(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 33)
	flat := flatten(train)
	front, _ := buildSplitMLP(t, 151, flat.X.Dim(1), 2)
	plat := defaultPlatform(t, 0, front, flat, 5, nil)

	sConn, pConn := transport.Pipe()
	go func() {
		defer sConn.Close()
		if _, err := sConn.Recv(); err != nil {
			return
		}
		_ = sConn.Send(&wire.Message{Type: wire.MsgErrorMsg, Payload: wire.EncodeText("config mismatch")})
	}()
	_, err := plat.Run(pConn)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol wrapping peer error", err)
	}
}

func TestRunLocalSurvivesPlatformConfigError(t *testing.T) {
	// A platform whose shard is smaller than its batch gets the batch
	// clamped (sampler behaviour), so build a genuinely broken pairing:
	// rounds mismatch, which must surface as one joined error, not a
	// deadlock.
	train, _ := testData(t, 2, 16, 4, 34)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 161, flat.X.Dim(1), 2)
	srv := defaultServer(t, back, 1, 3, nil)
	plat := defaultPlatform(t, 0, front, flat, 9, nil)
	if _, err := RunLocal(srv, []*Platform{plat}); err == nil {
		t.Fatal("expected error")
	}
}

// waitGoroutines polls until the live goroutine count drops back to at
// most base — the manual leak assertion for the pipelined mode's
// reader/writer goroutines (this repo deliberately has no external
// goleak dependency). Tests here never run in parallel, so the global
// count is meaningful.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d live, want <= %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// A platform that dies mid-pipeline (after shipping its first
// activations) must surface as a server error, not a hang, and the
// async wrapper goroutines must all exit once the caller closes the
// connection — exactly what RunLocal and the TCP commands do.
func TestPipelinedPlatformDiesMidPipeline(t *testing.T) {
	base := runtime.NumGoroutine()
	conn, errCh := serveOne(t, func(c *ServerConfig) {
		c.Mode = RoundModePipelined
		c.PipelineDepth = 2
	})
	if err := conn.Send(hello(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // hello-ack
		t.Fatal(err)
	}
	a := tensor.New(4, 32)
	if err := conn.Send(&wire.Message{Type: wire.MsgActivations, Round: 0, Payload: wire.EncodeTensors(a)}); err != nil {
		t.Fatal(err)
	}
	conn.Close() // die before answering the logits
	if err := <-errCh; err == nil {
		t.Fatal("server survived a platform dying mid-pipeline")
	}
	waitGoroutines(t, base)
}

// slowConn delays every send, simulating a platform behind a congested
// WAN link. The pipelined scheduler may stall on its bounded queues but
// must never corrupt or reorder the protocol.
type slowConn struct {
	transport.Conn
	delay time.Duration
}

func (s slowConn) Send(m *wire.Message) error {
	time.Sleep(s.delay)
	return s.Conn.Send(m)
}

// A slow platform fills the server's receive queue for its connection
// and stalls its own slot, but training still completes correctly for
// every platform — backpressure, not breakage.
func TestPipelinedSlowPlatformStallsQueueNotCorrectness(t *testing.T) {
	base := runtime.NumGoroutine()
	train, _ := testData(t, 3, 120, 8, 201)
	flat := flatten(train)
	in := flat.X.Dim(1)
	const rounds, K = 5, 2

	fronts, back := buildFronts(t, 401, K, in, 3)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(202))
	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.Mode = RoundModePipelined
		c.PipelineDepth = 2
	})
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
			shadow, _ := buildSplitMLP(t, 401, in, 3)
			c.ShadowFront = shadow
		})
	}
	sConns := make([]transport.Conn, K)
	pConns := make([]transport.Conn, K)
	for k := 0; k < K; k++ {
		s, c := transport.Pipe()
		sConns[k] = s
		if k == 1 {
			c = slowConn{Conn: c, delay: 2 * time.Millisecond}
		}
		pConns[k] = c
	}
	defer func() {
		for k := 0; k < K; k++ {
			sConns[k].Close()
			pConns[k].Close()
		}
	}()
	errs := make([]error, K+1)
	stats := make([]*PlatformStats, K)
	var wg sync.WaitGroup
	wg.Add(K + 1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(sConns); err != nil {
			errs[0] = err
			for _, c := range sConns {
				c.Close()
			}
		}
	}()
	for k := 0; k < K; k++ {
		k := k
		go func() {
			defer wg.Done()
			st, err := platforms[k].Run(pConns[k])
			if err != nil {
				errs[k+1] = err
				pConns[k].Close()
				return
			}
			stats[k] = st
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < K; k++ {
		if len(stats[k].Rounds) != rounds {
			t.Fatalf("platform %d finished %d rounds, want %d", k, len(stats[k].Rounds), rounds)
		}
	}
	for k := 0; k < K; k++ {
		sConns[k].Close()
		pConns[k].Close()
	}
	waitGoroutines(t, base)
}

// A protocol violation by one platform mid-round must error the server,
// propagate to the healthy platform (which is blocked on the dead
// server), and leave no goroutines behind once connections close.
func TestPipelinedServerErrorPropagatesToAllPlatforms(t *testing.T) {
	base := runtime.NumGoroutine()
	train, _ := testData(t, 3, 120, 8, 203)
	flat := flatten(train)
	in := flat.X.Dim(1)
	const rounds, K = 4, 2

	fronts, back := buildFronts(t, 411, K, in, 3)
	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.Mode = RoundModePipelined
		c.PipelineDepth = 2
	})
	healthy := defaultPlatform(t, 1, fronts[1], flat, rounds, func(c *PlatformConfig) {
		c.ID = 1
		shadow, _ := buildSplitMLP(t, 411, in, 3)
		c.ShadowFront = shadow
	})

	sConns := make([]transport.Conn, K)
	pConns := make([]transport.Conn, K)
	for k := 0; k < K; k++ {
		sConns[k], pConns[k] = transport.Pipe()
	}
	defer func() {
		for k := 0; k < K; k++ {
			sConns[k].Close()
			pConns[k].Close()
		}
	}()

	serverErr := make(chan error, 1)
	go func() {
		err := srv.Serve(sConns)
		if err != nil {
			for _, c := range sConns {
				c.Close()
			}
		}
		serverErr <- err
	}()
	healthyErr := make(chan error, 1)
	go func() {
		_, err := healthy.Run(pConns[1])
		healthyErr <- err
	}()

	// Platform 0 handshakes correctly, then violates the protocol with a
	// garbage activations payload.
	hostile := pConns[0]
	if err := hostile.Send(hello(rounds)); err != nil {
		t.Fatal(err)
	}
	if _, err := hostile.Recv(); err != nil { // hello-ack
		t.Fatal(err)
	}
	if err := hostile.Send(&wire.Message{Type: wire.MsgActivations, Round: 0, Payload: []byte{0xbe, 0xef}}); err != nil {
		t.Fatal(err)
	}

	if err := <-serverErr; !errors.Is(err, ErrProtocol) {
		t.Fatalf("server err = %v, want ErrProtocol", err)
	}
	if err := <-healthyErr; err == nil {
		t.Fatal("healthy platform did not observe the server failure")
	}
	for k := 0; k < K; k++ {
		sConns[k].Close()
		pConns[k].Close()
	}
	waitGoroutines(t, base)
}

// Label-sharing handshakes must agree on both ends.
func TestHandshakeRejectsLabelSharingMismatch(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 35)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 171, flat.X.Dim(1), 2)
	srv := defaultServer(t, back, 1, 2, func(c *ServerConfig) {
		c.LabelSharing = true
		c.Loss = nn.SoftmaxCrossEntropy{}
	})
	plat := defaultPlatform(t, 0, front, flat, 2, nil) // label-private
	if _, err := RunLocal(srv, []*Platform{plat}); err == nil {
		t.Fatal("label-sharing mismatch accepted")
	}
}
