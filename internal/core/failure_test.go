package core

import (
	"errors"
	"fmt"
	"testing"

	"medsplit/internal/nn"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// serveOne starts a 1-platform server on a pipe and returns the client
// end plus the server's error channel, letting tests drive the protocol
// by hand with hostile inputs.
func serveOne(t *testing.T, mut func(*ServerConfig)) (transport.Conn, chan error) {
	t.Helper()
	train, _ := testData(t, 2, 16, 4, 31)
	flat := flatten(train)
	_, back := buildSplitMLP(t, 131, flat.X.Dim(1), 2)
	srv := defaultServer(t, back, 1, 2, mut)
	sConn, pConn := transport.Pipe()
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.Serve([]transport.Conn{sConn})
		sConn.Close()
	}()
	return pConn, errCh
}

func hello(rounds int) *wire.Message {
	meta := fmt.Sprintf("v=1;rounds=%d;labelshare=false;sync=0;eval=0;codec=raw;evaluator=false", rounds)
	return &wire.Message{Type: wire.MsgHello, Platform: 0, Payload: wire.EncodeText(meta)}
}

func TestServerRejectsWrongFirstMessage(t *testing.T) {
	conn, errCh := serveOne(t, nil)
	defer conn.Close()
	if err := conn.Send(&wire.Message{Type: wire.MsgAck}); err != nil {
		t.Fatal(err)
	}
	err := <-errCh
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestServerRejectsWrongPlatformID(t *testing.T) {
	conn, errCh := serveOne(t, nil)
	defer conn.Close()
	m := hello(2)
	m.Platform = 5
	if err := conn.Send(m); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestServerRejectsMalformedActivations(t *testing.T) {
	conn, errCh := serveOne(t, nil)
	defer conn.Close()
	if err := conn.Send(hello(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // hello-ack
		t.Fatal(err)
	}
	// Garbage payload in a validly framed message.
	if err := conn.Send(&wire.Message{
		Type:    wire.MsgActivations,
		Round:   0,
		Payload: []byte{0xde, 0xad, 0xbe, 0xef},
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestServerRejectsWrongRoundNumber(t *testing.T) {
	conn, errCh := serveOne(t, nil)
	defer conn.Close()
	if err := conn.Send(hello(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	a := tensor.New(4, 32)
	if err := conn.Send(&wire.Message{
		Type:    wire.MsgActivations,
		Round:   7, // server expects round 0
		Payload: wire.EncodeTensors(a),
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestServerRejectsMismatchedLossGradShape(t *testing.T) {
	conn, errCh := serveOne(t, nil)
	defer conn.Close()
	if err := conn.Send(hello(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	a := tensor.New(4, 32)
	if err := conn.Send(&wire.Message{Type: wire.MsgActivations, Round: 0, Payload: wire.EncodeTensors(a)}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // logits
		t.Fatal(err)
	}
	bad := tensor.New(4, 99) // wrong class count
	if err := conn.Send(&wire.Message{Type: wire.MsgLossGrad, Round: 0, Payload: wire.EncodeTensors(bad)}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestPlatformFailsCleanlyOnServerDeath(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 32)
	flat := flatten(train)
	front, _ := buildSplitMLP(t, 141, flat.X.Dim(1), 2)
	plat := defaultPlatform(t, 0, front, flat, 5, nil)

	sConn, pConn := transport.Pipe()
	// Server accepts the handshake then dies.
	go func() {
		m, err := sConn.Recv()
		if err != nil || m.Type != wire.MsgHello {
			sConn.Close()
			return
		}
		_ = sConn.Send(&wire.Message{Type: wire.MsgHelloAck, Payload: wire.EncodeText("mode=sequential")})
		sConn.Close()
	}()
	_, err := plat.Run(pConn)
	if err == nil {
		t.Fatal("platform must fail when the server dies")
	}
}

func TestPlatformRejectsPeerError(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 33)
	flat := flatten(train)
	front, _ := buildSplitMLP(t, 151, flat.X.Dim(1), 2)
	plat := defaultPlatform(t, 0, front, flat, 5, nil)

	sConn, pConn := transport.Pipe()
	go func() {
		defer sConn.Close()
		if _, err := sConn.Recv(); err != nil {
			return
		}
		_ = sConn.Send(&wire.Message{Type: wire.MsgErrorMsg, Payload: wire.EncodeText("config mismatch")})
	}()
	_, err := plat.Run(pConn)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol wrapping peer error", err)
	}
}

func TestRunLocalSurvivesPlatformConfigError(t *testing.T) {
	// A platform whose shard is smaller than its batch gets the batch
	// clamped (sampler behaviour), so build a genuinely broken pairing:
	// rounds mismatch, which must surface as one joined error, not a
	// deadlock.
	train, _ := testData(t, 2, 16, 4, 34)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 161, flat.X.Dim(1), 2)
	srv := defaultServer(t, back, 1, 3, nil)
	plat := defaultPlatform(t, 0, front, flat, 9, nil)
	if _, err := RunLocal(srv, []*Platform{plat}); err == nil {
		t.Fatal("expected error")
	}
}

// Label-sharing handshakes must agree on both ends.
func TestHandshakeRejectsLabelSharingMismatch(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 35)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 171, flat.X.Dim(1), 2)
	srv := defaultServer(t, back, 1, 2, func(c *ServerConfig) {
		c.LabelSharing = true
		c.Loss = nn.SoftmaxCrossEntropy{}
	})
	plat := defaultPlatform(t, 0, front, flat, 2, nil) // label-private
	if _, err := RunLocal(srv, []*Platform{plat}); err == nil {
		t.Fatal("label-sharing mismatch accepted")
	}
}
