package core

// ComputeGate admits server-side compute. When ServerConfig.Compute is
// set, the server acquires the gate around every back-half forward,
// backward and optimizer step (training, batched inference and eval
// forwards alike) and releases it as soon as the step finishes.
//
// The gate exists so one process can multiplex many sessions: a
// multi-tenant session manager (internal/serve) hands every session a
// gate backed by a shared slot pool with round-robin fairness, bounding
// concurrent compute and keeping one hot session from starving the
// rest. Within a session the gate never reorders anything — compute
// still runs on the session goroutine, in protocol order — so a gated
// session's weights are bit-identical to an ungated one.
//
// Acquire may block; it returns the matching release function. A gate
// must be safe for use from one goroutine per session (the session
// goroutine), and acquisitions are never nested.
type ComputeGate interface {
	Acquire() (release func())
}

// acquireCompute enters the configured compute gate, or no-ops when
// the server runs ungated (the single-session default).
func (s *Server) acquireCompute() (release func()) {
	if s.cfg.Compute == nil {
		return func() {}
	}
	return s.cfg.Compute.Acquire()
}
