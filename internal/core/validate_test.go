package core

import (
	"errors"
	"testing"
	"time"

	"medsplit/internal/nn"
	"medsplit/internal/transport"
)

// Consolidated config validation: every rule in ServerConfig.validate
// and PlatformConfig.validate, table-driven. NewServer/NewPlatform are
// the only gates, so these tables are the contract.
func TestServerConfigValidationTable(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 61)
	flat := flatten(train)
	_, back := buildSplitMLP(t, 261, flat.X.Dim(1), 2)
	broker := NewRejoinBroker()
	defer broker.Close()

	valid := func() ServerConfig {
		return ServerConfig{Back: back, Opt: &nn.SGD{}, Platforms: 2, Rounds: 4}
	}
	cases := []struct {
		name string
		mut  func(*ServerConfig)
		ok   bool
	}{
		{"valid", nil, true},
		{"nil back", func(c *ServerConfig) { c.Back = nil }, false},
		{"nil optimizer", func(c *ServerConfig) { c.Opt = nil }, false},
		{"zero platforms", func(c *ServerConfig) { c.Platforms = 0 }, false},
		{"negative platforms", func(c *ServerConfig) { c.Platforms = -1 }, false},
		{"zero rounds", func(c *ServerConfig) { c.Rounds = 0 }, false},
		{"negative start round", func(c *ServerConfig) { c.StartRound = -1 }, false},
		{"start round past end", func(c *ServerConfig) { c.StartRound = 4 }, false},
		{"start round in range", func(c *ServerConfig) { c.StartRound = 3 }, true},
		{"unknown mode", func(c *ServerConfig) { c.Mode = RoundMode(9) }, false},
		{"negative pipeline depth", func(c *ServerConfig) { c.PipelineDepth = -1 }, false},
		{"pipeline depth 1 without pipelined mode", func(c *ServerConfig) { c.PipelineDepth = 1 }, false},
		{"pipeline depth 2 with sequential mode", func(c *ServerConfig) {
			c.Mode = RoundModeSequential
			c.PipelineDepth = 2
		}, false},
		{"pipeline depth 2 with concat mode", func(c *ServerConfig) {
			c.Mode = RoundModeConcat
			c.PipelineDepth = 2
		}, false},
		{"pipelined depth defaults", func(c *ServerConfig) { c.Mode = RoundModePipelined }, true},
		{"label sharing without loss", func(c *ServerConfig) { c.LabelSharing = true }, false},
		{"label sharing with loss", func(c *ServerConfig) {
			c.LabelSharing = true
			c.Loss = nn.SoftmaxCrossEntropy{}
		}, true},
		{"negative checkpoint every", func(c *ServerConfig) { c.CheckpointEvery = -2 }, false},
		{"checkpoint every without dir", func(c *ServerConfig) { c.CheckpointEvery = 5 }, false},
		{"checkpoint every with dir", func(c *ServerConfig) {
			c.CheckpointEvery = 5
			c.CheckpointDir = t.TempDir()
		}, true},
		{"recovery without broker", func(c *ServerConfig) {
			c.Recovery = &RecoveryConfig{Policy: WaitForRejoin, Window: time.Second}
		}, false},
		{"recovery with concat", func(c *ServerConfig) {
			c.Mode = RoundModeConcat
			c.Recovery = &RecoveryConfig{Policy: WaitForRejoin, Window: time.Second, Broker: broker}
		}, false},
		{"recovery sequential", func(c *ServerConfig) {
			c.Recovery = &RecoveryConfig{Policy: ProceedWithout, Window: time.Second, Broker: broker}
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			_, err := NewServer(cfg)
			if tc.ok && err != nil {
				t.Fatalf("valid config rejected: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("invalid config accepted")
				}
				if !errors.Is(err, ErrConfig) {
					t.Fatalf("err = %v, want ErrConfig", err)
				}
			}
		})
	}
}

func TestPlatformConfigValidationTable(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 62)
	flat := flatten(train)
	front, _ := buildSplitMLP(t, 271, flat.X.Dim(1), 2)

	valid := func() PlatformConfig {
		return PlatformConfig{
			ID: 0, Front: front, Opt: &nn.SGD{}, Loss: nn.SoftmaxCrossEntropy{},
			Shard: flat, Batch: 4, Rounds: 4,
		}
	}
	cases := []struct {
		name string
		mut  func(*PlatformConfig)
		ok   bool
	}{
		{"valid", nil, true},
		{"nil front", func(c *PlatformConfig) { c.Front = nil }, false},
		{"nil optimizer", func(c *PlatformConfig) { c.Opt = nil }, false},
		{"nil shard", func(c *PlatformConfig) { c.Shard = nil }, false},
		{"zero batch", func(c *PlatformConfig) { c.Batch = 0 }, false},
		{"zero rounds", func(c *PlatformConfig) { c.Rounds = 0 }, false},
		{"negative start round", func(c *PlatformConfig) { c.StartRound = -1 }, false},
		{"start round past end", func(c *PlatformConfig) { c.StartRound = 9 }, false},
		{"label-private without loss", func(c *PlatformConfig) { c.Loss = nil }, false},
		{"label sharing drops the loss requirement", func(c *PlatformConfig) {
			c.LabelSharing = true
			c.Loss = nil
		}, true},
		{"negative checkpoint every", func(c *PlatformConfig) { c.CheckpointEvery = -1 }, false},
		{"checkpoint every without dir", func(c *PlatformConfig) { c.CheckpointEvery = 2 }, false},
		{"checkpoint every with dir", func(c *PlatformConfig) {
			c.CheckpointEvery = 2
			c.CheckpointDir = t.TempDir()
		}, true},
		{"redial without window", func(c *PlatformConfig) {
			c.Redial = func() (transport.Conn, error) { return nil, nil }
		}, false},
		{"window without redial", func(c *PlatformConfig) { c.RejoinWindow = time.Second }, false},
		{"redial with window", func(c *PlatformConfig) {
			c.Redial = func() (transport.Conn, error) { return nil, nil }
			c.RejoinWindow = time.Second
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			_, err := NewPlatform(cfg)
			if tc.ok && err != nil {
				t.Fatalf("valid config rejected: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("invalid config accepted")
				}
				if !errors.Is(err, ErrConfig) {
					t.Fatalf("err = %v, want ErrConfig", err)
				}
			}
		})
	}
}
