package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// Dropout recovery. Geo-distributed platforms disconnect: WAN links
// flap, hospital processes restart, stragglers time out. Without
// recovery, one mid-round connection error aborts the whole job and
// every trained weight is lost. This file implements the rejoin
// protocol on top of the session layer:
//
//   - A platform whose connection dies redials (PlatformConfig.Redial),
//     sends MsgRejoin carrying its protocol position — the round it is
//     executing and the wire position (pos*) it stopped at — and waits
//     for MsgRejoinAck.
//   - Replacement connections reach the server through a RejoinBroker:
//     whatever accepts connections (a TCP accept loop, a test harness,
//     an example) hands them to Broker.Offer, which reads the MsgRejoin
//     and routes it by platform id.
//   - The server reconciles the two positions. Exactly one message can
//     be in flight when a link dies; comparing the server's position
//     with the platform's identifies it, the ack tells the platform
//     where to resume (round + position), and each side re-emits only
//     what the other never received. Compute is bound to position
//     *transitions* (see seqExchange / trainStep), so a replayed wire
//     stage never re-runs a forward, backward or optimizer step.
//
// Two policies govern a drop (RecoveryConfig.Policy):
//
//   - WaitForRejoin: the server blocks the round up to Window for the
//     platform to return, then resumes exactly where the exchange
//     broke. A run interrupted this way finishes with weights
//     bit-identical to an uninterrupted run — the recovery tests
//     enforce it.
//   - ProceedWithout: the server abandons the platform's in-flight
//     exchange (deterministically: its remaining minibatches are
//     simply not trained on) and continues serving the others. The
//     platform may rejoin at a later round boundary; the ack then
//     fast-forwards it — it skips the missed rounds, realigns its
//     sampler, and resumes. Final weights differ from the
//     uninterrupted run but are a deterministic function of the kill
//     point.
//
// Recovery covers the training exchange in sequential mode (validated
// at construction). Drops during handshake, L1 sync or evaluation
// phases remain fatal — those phases are rare, cheap to retry from a
// checkpoint, and their replay semantics (partial weight averages)
// are genuinely ambiguous.

// RejoinPolicy selects how the server treats a dropped platform.
type RejoinPolicy uint8

// Rejoin policies.
const (
	// WaitForRejoin blocks the round until the platform reconnects
	// (bounded by RecoveryConfig.Window), preserving bit-identical
	// training.
	WaitForRejoin RejoinPolicy = iota + 1
	// ProceedWithout deterministically skips the dropped platform's
	// minibatches and lets it rejoin at a later round boundary.
	ProceedWithout
)

// String names the policy.
func (p RejoinPolicy) String() string {
	switch p {
	case WaitForRejoin:
		return "wait-for-rejoin"
	case ProceedWithout:
		return "proceed-without"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// RecoveryConfig enables platform-dropout recovery on the server.
type RecoveryConfig struct {
	// Policy selects WaitForRejoin or ProceedWithout.
	Policy RejoinPolicy
	// Window bounds how long the server waits for a rejoin: the whole
	// wait under WaitForRejoin, the total patience for stragglers under
	// ProceedWithout (a platform that has not rejoined by the end of
	// the session is simply left out).
	Window time.Duration
	// Broker delivers replacement connections.
	Broker *RejoinBroker
}

func (rc *RecoveryConfig) validate() error {
	switch rc.Policy {
	case WaitForRejoin, ProceedWithout:
	default:
		return fmt.Errorf("%w: rejoin policy %v", ErrConfig, rc.Policy)
	}
	if rc.Window <= 0 {
		return fmt.Errorf("%w: rejoin window %v", ErrConfig, rc.Window)
	}
	if rc.Broker == nil {
		return fmt.Errorf("%w: recovery without a rejoin broker", ErrConfig)
	}
	return nil
}

// rejoinOffer is one replacement connection with its opening MsgRejoin.
type rejoinOffer struct {
	conn   transport.Conn
	rejoin *wire.Message
}

// RejoinBroker routes replacement connections to the server session.
// The accept side (a TCP accept loop, a test harness) calls Offer with
// each new connection whose first message is a MsgRejoin; the server
// session collects offers at its recovery points. All methods are safe
// for concurrent use.
type RejoinBroker struct {
	mu     sync.Mutex
	offers map[int][]*rejoinOffer
	notify chan struct{}
	closed bool
}

// NewRejoinBroker builds an empty broker.
func NewRejoinBroker() *RejoinBroker {
	return &RejoinBroker{offers: make(map[int][]*rejoinOffer), notify: make(chan struct{})}
}

// Offer reads the connection's opening message — which must be a
// MsgRejoin — and queues the connection for the server session. It
// blocks until that first message arrives, so callers run it from the
// accept goroutine. On any error the connection is closed.
func (b *RejoinBroker) Offer(conn transport.Conn) error {
	m, err := conn.Recv()
	if err != nil {
		conn.Close()
		return fmt.Errorf("core: rejoin offer: %w", err)
	}
	if m.Type != wire.MsgRejoin {
		conn.Close()
		return fmt.Errorf("%w: rejoin offer opened with %s", ErrProtocol, m.Type)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		conn.Close()
		return fmt.Errorf("core: rejoin broker closed")
	}
	k := int(m.Platform)
	b.offers[k] = append(b.offers[k], &rejoinOffer{conn: conn, rejoin: m})
	close(b.notify)
	b.notify = make(chan struct{})
	return nil
}

// Close rejects future offers and closes any queued, un-adopted
// connections.
func (b *RejoinBroker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, q := range b.offers {
		for _, o := range q {
			o.conn.Close()
		}
	}
	b.offers = nil
	close(b.notify)
}

// take pops the freshest offer for platform k without blocking,
// closing any staler ones (the platform abandoned those transports
// when it retried).
func (b *RejoinBroker) take(k int) *rejoinOffer {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.offers[k]
	if len(q) == 0 {
		return nil
	}
	for _, stale := range q[:len(q)-1] {
		stale.conn.Close()
	}
	latest := q[len(q)-1]
	delete(b.offers, k)
	return latest
}

// await blocks up to window for an offer for platform k.
func (b *RejoinBroker) await(k int, window time.Duration) *rejoinOffer {
	deadline := time.Now().Add(window)
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return nil
		}
		if len(b.offers[k]) > 0 {
			b.mu.Unlock()
			return b.take(k)
		}
		ch := b.notify
		b.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// recoverable reports whether an I/O error is a candidate for
// recovery: transport failures (resets, EOFs, closed links) are;
// protocol violations and wire-level decode failures (bad frame,
// version skew, checksum mismatch) are not — a peer that speaks
// garbage is a configuration or corruption problem, and redialing it
// would just burn the rejoin window re-admitting the same garbage.
func recoverable(err error) bool {
	if err == nil || errors.Is(err, ErrProtocol) {
		return false
	}
	for _, fatal := range []error{
		wire.ErrBadMagic, wire.ErrBadVersion, wire.ErrBadType,
		wire.ErrChecksum, wire.ErrTooLarge, wire.ErrBadPayload,
	} {
		if errors.Is(err, fatal) {
			return false
		}
	}
	return true
}

// rejoinMeta formats / parses the MsgRejoin payload: the round the
// platform is executing and the wire position it stopped at.
func rejoinMeta(round, pos int) string {
	return fmt.Sprintf("next=%d;pos=%d", round, pos)
}

// ackMeta formats / parses the MsgRejoinAck payload: the round and
// wire position the platform must resume at.
func ackMeta(round, pos int) string {
	return fmt.Sprintf("round=%d;pos=%d", round, pos)
}

// parseMetaInts extracts integer fields from a k=v;k=v meta string.
func parseMetaInts(meta string, keys ...string) (map[string]int, error) {
	out := make(map[string]int, len(keys))
	for _, f := range strings.Split(meta, ";") {
		eq := strings.IndexByte(f, '=')
		if eq < 0 {
			continue
		}
		k, v := f[:eq], f[eq+1:]
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("%w: meta field %q", ErrProtocol, f)
		}
		out[k] = n
	}
	for _, k := range keys {
		if _, ok := out[k]; !ok {
			return nil, fmt.Errorf("%w: meta %q missing %q", ErrProtocol, meta, k)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Server side

// handleDrop is the server's recovery entry point: a wire operation
// for platform k at round r failed at wire position pos. It returns
// the position to resume the exchange at, or skip=true when the round
// proceeds without the platform (ProceedWithout), or an error when the
// drop is fatal (no recovery configured, protocol violation, window
// expired).
func (s *Server) handleDrop(k, r, pos int, cause error) (resume int, skip bool, err error) {
	if s.cfg.Recovery == nil || !recoverable(cause) {
		return 0, false, cause
	}
	ps := s.reg.state(k)
	if s.cfg.Recovery.Policy == ProceedWithout {
		ps.status = PlatformDropped
		ps.droppedRound = r
		return 0, true, nil
	}
	offer := s.cfg.Recovery.Broker.await(k, s.cfg.Recovery.Window)
	if offer == nil {
		return 0, false, fmt.Errorf("core: platform %d dropped at round %d pos %d and did not rejoin within %v: %w",
			k, r, pos, s.cfg.Recovery.Window, cause)
	}
	resume, err = s.adopt(ps, k, r, pos, offer)
	if err != nil {
		return 0, false, err
	}
	return resume, false, nil
}

// adopt installs a replacement connection for platform k, reconciles
// protocol positions, replies with the ack, and replays the cached cut
// gradient when that is what the platform was missing. serverRound /
// serverPos describe where the server's exchange for k stands; they
// are the current round and posActs when adoption happens at a round
// boundary (ProceedWithout).
func (s *Server) adopt(ps *platformState, k, serverRound, serverPos int, offer *rejoinOffer) (resume int, err error) {
	meta, err := wire.DecodeText(offer.rejoin.Payload)
	if err != nil {
		offer.conn.Close()
		return 0, fmt.Errorf("core: platform %d rejoin meta: %w", k, err)
	}
	fields, err := parseMetaInts(meta, "next", "pos")
	if err != nil {
		offer.conn.Close()
		return 0, fmt.Errorf("core: platform %d rejoin meta: %w", k, err)
	}
	pRound, pPos := fields["next"], fields["pos"]
	s.trace("recv", offer.rejoin, k)

	replayCut := false
	var ackRound, ackPos int
	switch {
	case pRound == serverRound:
		// Same round: the lost message is the earliest position either
		// side still needs; both resume there.
		ackRound = serverRound
		ackPos = serverPos
		if pPos < ackPos {
			ackPos = pPos
		}
		resume = ackPos
	case pRound == serverRound-1 && pPos == posCutGrad && ps.lastCutRound == pRound:
		// The platform died waiting for the previous round's cut
		// gradient, which the server has already moved past. Replay the
		// cached payload; the platform finishes that round and arrives
		// at the server's current position naturally.
		ackRound = pRound
		ackPos = posCutGrad
		replayCut = true
		resume = serverPos
	case pRound < serverRound:
		// The platform is behind (it was dropped while the server
		// proceeded): fast-forward it to the server's round.
		ackRound = serverRound
		ackPos = posActs
		resume = serverPos
	default:
		offer.conn.Close()
		return 0, fmt.Errorf("%w: platform %d rejoins at round %d pos %d, server at round %d pos %d",
			ErrProtocol, k, pRound, pPos, serverRound, serverPos)
	}

	ack := &wire.Message{
		Type:     wire.MsgRejoinAck,
		Platform: uint32(k),
		Round:    uint32(ackRound),
		Payload:  wire.EncodeText(ackMeta(ackRound, ackPos)),
	}
	if err := offer.conn.Send(ack); err != nil {
		offer.conn.Close()
		return 0, fmt.Errorf("core: platform %d rejoin ack: %w", k, err)
	}
	s.trace("send", ack, k)
	old := ps.rc.Swap(offer.conn)
	old.Close()
	ps.status = PlatformActive
	if replayCut {
		replay := &wire.Message{
			Type:     wire.MsgCutGrad,
			Platform: uint32(k),
			Round:    uint32(ps.lastCutRound),
			Payload:  append([]byte(nil), ps.lastCut...),
		}
		if err := s.send(ps.conn, replay, k, ps.lastCutRound); err != nil {
			return 0, err
		}
	}
	return resume, nil
}

// adoptRejoiners runs at the start of each training round under the
// ProceedWithout policy: dropped platforms whose replacement
// connections have arrived are fast-forwarded to the current round and
// re-enter the rotation.
func (s *Server) adoptRejoiners(r int) {
	if s.cfg.Recovery == nil || s.cfg.Recovery.Policy != ProceedWithout {
		return
	}
	_ = s.reg.each(func(k int, ps *platformState) error {
		if ps.status != PlatformDropped {
			return nil
		}
		offer := s.cfg.Recovery.Broker.take(k)
		if offer == nil {
			return nil
		}
		if _, err := s.adopt(ps, k, r, posActs, offer); err != nil {
			// A malformed rejoin keeps the platform dropped; it may try
			// again at the next boundary.
			ps.status = PlatformDropped
		}
		return nil
	})
}

// ---------------------------------------------------------------------------
// Platform side

// fastForwardError reroutes the plain scheduler: the server assigned a
// later round after a ProceedWithout rejoin; the in-flight round is
// abandoned and the session skips ahead.
type fastForwardError struct{ round int }

func (e *fastForwardError) Error() string {
	return fmt.Sprintf("core: fast-forwarded to round %d after rejoin", e.round)
}

// maybeRejoin is the platform's recovery entry point: a wire operation
// at round r failed at wire position pos. When recovery is configured
// it redials, performs the rejoin handshake, and returns the position
// to resume at (or a fastForwardError that the scheduler turns into a
// session skip). Otherwise the original error is returned.
func (p *Platform) maybeRejoin(conn transport.Conn, r, pos int, cause error) (resume int, err error) {
	if p.cfg.Redial == nil || !recoverable(cause) {
		return 0, cause
	}
	rc, ok := conn.(*transport.Reconnectable)
	if !ok {
		return 0, cause
	}
	deadline := time.Now().Add(p.cfg.RejoinWindow)
	for {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("core: platform %d could not rejoin within %v: %w", p.cfg.ID, p.cfg.RejoinWindow, cause)
		}
		fresh, derr := p.cfg.Redial()
		if derr != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		// Watchdog: Conn has no deadline API, so a server that accepts
		// the dial but never answers the rejoin would park the Recv
		// forever. Closing the connection at the window's edge unblocks
		// it and the loop's deadline check turns that into the timeout
		// error RejoinWindow promises.
		watchdog := time.AfterFunc(time.Until(deadline), func() { fresh.Close() })
		ackRound, ackPos, jerr := p.rejoinHandshake(fresh, r, pos)
		watchdog.Stop()
		if jerr != nil {
			fresh.Close()
			if errors.Is(jerr, ErrProtocol) {
				return 0, jerr
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		old := rc.Swap(fresh)
		old.Close()
		if ackRound > r {
			// The server proceeded without us: realign the batch stream
			// (round r's batch was drawn; rounds r+1..ackRound-1 are
			// skipped) and let the scheduler jump the session.
			p.sampler.Skip(ackRound - 1 - r)
			return 0, &fastForwardError{round: ackRound}
		}
		if ackRound == r-1 && ackPos == posCutGrad {
			// Stale-cut-grad replay only ever acks the round the
			// platform announced; r is that round, so this arm is
			// unreachable — kept as a guard against a confused server.
			return 0, fmt.Errorf("%w: rejoin ack for finished round %d", ErrProtocol, ackRound)
		}
		if ackRound != r || ackPos > pos {
			return 0, fmt.Errorf("%w: rejoin ack round %d pos %d, platform at round %d pos %d",
				ErrProtocol, ackRound, ackPos, r, pos)
		}
		return ackPos, nil
	}
}

// rejoinHandshake sends MsgRejoin on a fresh connection and waits for
// the ack.
func (p *Platform) rejoinHandshake(conn transport.Conn, r, pos int) (ackRound, ackPos int, err error) {
	rejoin := &wire.Message{
		Type:     wire.MsgRejoin,
		Platform: uint32(p.cfg.ID),
		Round:    uint32(r),
		Payload:  wire.EncodeText(rejoinMeta(r, pos)),
	}
	if err := conn.Send(rejoin); err != nil {
		return 0, 0, err
	}
	p.trace("send", rejoin)
	m, err := conn.Recv()
	if err != nil {
		return 0, 0, err
	}
	if m.Type == wire.MsgErrorMsg {
		text, terr := wire.DecodeText(m.Payload)
		if terr != nil {
			text = "(unreadable)"
		}
		return 0, 0, fmt.Errorf("%w: peer error: %s", ErrProtocol, text)
	}
	if m.Type != wire.MsgRejoinAck {
		return 0, 0, fmt.Errorf("%w: got %s, want rejoin-ack", ErrProtocol, m.Type)
	}
	p.trace("recv", m)
	meta, err := wire.DecodeText(m.Payload)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: rejoin ack payload: %v", ErrProtocol, err)
	}
	fields, err := parseMetaInts(meta, "round", "pos")
	if err != nil {
		return 0, 0, err
	}
	return fields["round"], fields["pos"], nil
}
