package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wal"
	"medsplit/internal/wire"
)

// Replicated aggregation tier. The split server is the architecture's
// single point of failure: it holds the only live copy of the back
// half, the optimizer state and the session position. This file makes
// that state survive a leader crash with a bit-identical training
// trajectory:
//
//   - The leader appends one WAL record per training step (round r,
//     platform k) BEFORE sending the step's cut gradient — the ack a
//     platform acts on is never ahead of durable state — and streams
//     the same records to N warm followers.
//   - A follower applies records into a materialized replica of the
//     server state and tracks a replication watermark (the WAL index
//     of the last applied record).
//   - On leader death the follower promotes: it replays its WAL tail,
//     derives the exact round/step the leader died at, opens a rejoin
//     window, and re-adopts every platform through the same
//     rejoin-handshake vocabulary the dropout-recovery path uses —
//     failover is a server-initiated rejoin in reverse.
//
// Record contents. A step record carries the optimizer scalars
// verbatim, the post-step state tensors as XOR deltas against the
// previous record's state, and the exact encoded cut-gradient payload
// the leader (re)sent. XOR of raw float32 bit patterns is exactly
// reversible because the tensor codec is bit-preserving
// (Float32bits/Float32frombits, no float64 round trip), so a replica
// that applies the chain lands on byte-identical state. The cut
// payload rides along because a platform that never received it cannot
// have it recomputed — by promotion time the replica has already
// stepped past the weights that produced it.
//
// Chain anchoring. The first WAL record is a full base snapshot; at
// every durable checkpoint generation the leader appends a fresh base
// record and compacts the log before it, so the log is always
// self-contained: replay = install the last base, XOR forward.
//
// Scope. Replication covers leader death during the training phase
// (where the paper's traffic and compute live). Death during the
// handshake, an L1-sync or an eval phase remains fatal, mirroring the
// dropout-recovery scope and for the same reason: partial
// weight-average replay semantics are genuinely ambiguous. Promoted
// servers always run sequentially (bit-identical to pipelined depth 1,
// the only pipelined shape replication admits).

// ErrReplica reports a malformed replication record or stream.
var ErrReplica = errors.New("core: bad replication record")

// Record kinds inside WAL records and MsgReplRecord payloads.
const (
	replKindBase byte = 1 // payload: EncodeSnapshot (full server state)
	replKindStep byte = 2 // payload: step record (see encodeStepRecord)
)

// ReplicationConfig enables the replicated aggregation tier on the
// leader.
type ReplicationConfig struct {
	// Log is the leader's write-ahead log. Every training step is
	// appended (and, per the log's fsync policy, made durable) before
	// the step's cut gradient is sent.
	Log *wal.Log
	// Followers are open streams to warm followers (core.Follower on
	// the far side). A follower whose stream dies is dropped; the
	// leader trains on.
	Followers []transport.Conn
}

func (rc *ReplicationConfig) validate(cfg *ServerConfig) error {
	if rc.Log == nil {
		return fmt.Errorf("%w: replication without a WAL", ErrConfig)
	}
	if cfg.Mode == RoundModeConcat {
		// Concat fuses all platforms into one step; the per-(round,
		// platform) record grammar — and the per-platform failover
		// reconciliation built on it — does not describe it.
		return fmt.Errorf("%w: replication requires sequential or pipelined mode", ErrConfig)
	}
	if cfg.Recovery != nil && cfg.Recovery.Policy != WaitForRejoin {
		// ProceedWithout lets the round structure diverge per platform;
		// the promotion reconciliation assumes the dense step grammar.
		return fmt.Errorf("%w: replication requires the WaitForRejoin recovery policy", ErrConfig)
	}
	return nil
}

// stepRecord is one training step's replicated effect.
type stepRecord struct {
	round    int
	platform int
	batch    int  // minibatch rows (primes lastBatch for L1-sync weighting)
	lossFlag bool // cut payload carries the label-sharing loss scalar
	scalars  []uint64
	deltas   []*tensor.Tensor
	cut      []byte
}

// encodeStepRecord serializes a step record. Layout (little-endian):
//
//	kind u8 | round u32 | platform u32 | batch u32 | flags u8 |
//	scalarCount u32 | scalars u64×n |
//	deltaBytes u32 | delta tensor payload | cutBytes u32 | cut payload
//
// Integrity comes from the containers: WAL records and wire frames
// both carry CRC-32 over exactly these bytes.
func encodeStepRecord(rec *stepRecord) []byte {
	deltaPayload := wire.EncodeTensors(rec.deltas...)
	size := 1 + 4 + 4 + 4 + 1 + 4 + 8*len(rec.scalars) + 4 + len(deltaPayload) + 4 + len(rec.cut)
	buf := make([]byte, 0, size)
	buf = append(buf, replKindStep)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.round))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.platform))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.batch))
	var flags byte
	if rec.lossFlag {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.scalars)))
	for _, v := range rec.scalars {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(deltaPayload)))
	buf = append(buf, deltaPayload...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.cut)))
	return append(buf, rec.cut...)
}

// decodeStepRecord parses a step record (including its kind byte).
func decodeStepRecord(buf []byte) (*stepRecord, error) {
	const fixed = 1 + 4 + 4 + 4 + 1 + 4
	if len(buf) < fixed {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrReplica, len(buf))
	}
	if buf[0] != replKindStep {
		return nil, fmt.Errorf("%w: kind %d, want step", ErrReplica, buf[0])
	}
	rec := &stepRecord{
		round:    int(binary.LittleEndian.Uint32(buf[1:])),
		platform: int(binary.LittleEndian.Uint32(buf[5:])),
		batch:    int(binary.LittleEndian.Uint32(buf[9:])),
		lossFlag: buf[13]&1 != 0,
	}
	nScalars := int(binary.LittleEndian.Uint32(buf[14:]))
	rest := buf[fixed:]
	if nScalars < 0 || len(rest) < 8*nScalars+4 {
		return nil, fmt.Errorf("%w: %d scalars overflow %d bytes", ErrReplica, nScalars, len(rest))
	}
	if nScalars > 0 {
		rec.scalars = make([]uint64, nScalars)
		for i := range rec.scalars {
			rec.scalars[i] = binary.LittleEndian.Uint64(rest[8*i:])
		}
	}
	rest = rest[8*nScalars:]
	deltaBytes := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if deltaBytes < 0 || len(rest) < deltaBytes+4 {
		return nil, fmt.Errorf("%w: delta block %d bytes, %d remain", ErrReplica, deltaBytes, len(rest))
	}
	deltas, err := wire.DecodeTensors(rest[:deltaBytes])
	if err != nil {
		return nil, fmt.Errorf("%w: delta block: %v", ErrReplica, err)
	}
	rec.deltas = deltas
	rest = rest[deltaBytes:]
	cutBytes := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if cutBytes != len(rest) {
		return nil, fmt.Errorf("%w: cut block %d bytes, %d remain", ErrReplica, cutBytes, len(rest))
	}
	rec.cut = append([]byte(nil), rest...)
	return rec, nil
}

// xorInto XORs src's raw float32 bit patterns into dst in place.
// Applied twice it is the identity, which is the whole trick: delta =
// cur XOR prev on the leader, cur = prev XOR delta on the replica,
// byte-identical regardless of NaN payloads or denormals.
func xorInto(dst, src *tensor.Tensor) {
	d, s := dst.Data(), src.Data()
	for i := range d {
		d[i] = math.Float32frombits(math.Float32bits(d[i]) ^ math.Float32bits(s[i]))
	}
}

// xorDeltas returns cur's tensors XORed against prev's. Tensors cur
// has beyond prev (an optimizer lazily allocating momentum buffers on
// its first step) are deltas against implicit zero — their raw bits.
func xorDeltas(cur, prev []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(cur) < len(prev) {
		return nil, fmt.Errorf("%w: state shrank from %d to %d tensors", ErrReplica, len(prev), len(cur))
	}
	out := make([]*tensor.Tensor, len(cur))
	for i, c := range cur {
		d := c.Clone()
		if i < len(prev) {
			if !tensor.SameShape(c, prev[i]) {
				return nil, fmt.Errorf("%w: state tensor %d changed shape %v -> %v", ErrReplica, i, prev[i].Shape(), c.Shape())
			}
			xorInto(d, prev[i])
		}
		out[i] = d
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Leader side

// replicator is the leader's replication engine: WAL appends plus the
// follower streams. It lives on the session goroutine; no locking.
type replicator struct {
	log       *wal.Log
	followers []transport.Conn // dead entries are nil
	prev      []*tensor.Tensor // state as of the last appended record
	lastRound []int            // dedup: last round recorded per platform
}

func newReplicator(rc *ReplicationConfig, platforms int) *replicator {
	rp := &replicator{
		log:       rc.Log,
		followers: append([]transport.Conn(nil), rc.Followers...),
		lastRound: make([]int, platforms),
	}
	for k := range rp.lastRound {
		rp.lastRound[k] = -1
	}
	return rp
}

// start anchors the chain: append the full base snapshot to the WAL,
// then bootstrap every follower (base + session meta) and wait for
// each one's ack so a "warm" follower is provably warm before the
// first round trains. A follower that fails to bootstrap is dropped —
// durability comes from the WAL; followers only buy failover latency.
func (rp *replicator) start(s *Server) error {
	base := s.Snapshot(s.cfg.StartRound)
	baseBytes := EncodeSnapshot(base)
	if _, err := rp.log.Append(append([]byte{replKindBase}, baseBytes...)); err != nil {
		return fmt.Errorf("core: replication base append: %w", err)
	}
	rp.prev = base.Tensors
	meta := wire.EncodeText(fmt.Sprintf("evaluator=%d", s.evaluator))
	for i, fc := range rp.followers {
		if fc == nil {
			continue
		}
		// Base, ack, then meta: the follower acks right after the base
		// lands, so collecting the ack before the next send keeps the
		// bootstrap deadlock-free over rendezvous transports.
		ok := fc.Send(&wire.Message{Type: wire.MsgReplBase, Payload: baseBytes}) == nil
		if ok {
			m, err := fc.Recv()
			ok = err == nil && m.Type == wire.MsgReplAck
		}
		if ok {
			ok = fc.Send(&wire.Message{Type: wire.MsgReplMeta, Payload: meta}) == nil
		}
		if !ok {
			fc.Close()
			rp.followers[i] = nil
		}
	}
	return nil
}

// onStep records one completed training step, durably, before the
// caller sends the step's cut gradient. Re-entering the cut-grad wire
// stage after a platform drop calls this again with the same (r, k);
// the dedup guard keeps the step recorded exactly once, matching the
// compute-exactly-once contract of the stage machine.
func (rp *replicator) onStep(s *Server, k, r int, cut []byte) error {
	if rp.lastRound[k] == r {
		return nil
	}
	cur := s.Snapshot(r)
	deltas, err := xorDeltas(cur.Tensors, rp.prev)
	if err != nil {
		return err
	}
	payload := encodeStepRecord(&stepRecord{
		round:    r,
		platform: k,
		batch:    s.lastBatch[k],
		lossFlag: s.cfg.LabelSharing,
		scalars:  cur.Scalars,
		deltas:   deltas,
		cut:      cut,
	})
	if _, err := rp.log.Append(payload); err != nil {
		return fmt.Errorf("core: replication append round %d platform %d: %w", r, k, err)
	}
	rp.prev = cur.Tensors
	rp.lastRound[k] = r
	rp.broadcast(&wire.Message{
		Type:     wire.MsgReplRecord,
		Platform: uint32(k),
		Round:    uint32(r),
		Payload:  payload,
	})
	return nil
}

// broadcast streams a record to the live followers, dropping any whose
// stream has died. Best effort by design: the leader's durability
// story is the WAL, and a leader must not abort training because a
// standby machine went away.
func (rp *replicator) broadcast(m *wire.Message) {
	for i, fc := range rp.followers {
		if fc == nil {
			continue
		}
		if err := fc.Send(m); err != nil {
			fc.Close()
			rp.followers[i] = nil
		}
	}
}

// atCheckpoint re-anchors the chain at a durable checkpoint boundary:
// append a fresh base record and compact everything before it. The
// log stays self-contained (replay = last base + XOR forward) while
// its size tracks the checkpoint interval instead of the session
// length. Compaction is segment-granular, so some pre-base records may
// survive; replay handles that by letting a later base reset state.
func (rp *replicator) atCheckpoint(s *Server, completed int) error {
	base := s.Snapshot(completed)
	idx, err := rp.log.Append(append([]byte{replKindBase}, EncodeSnapshot(base)...))
	if err != nil {
		return fmt.Errorf("core: replication base at round %d: %w", completed, err)
	}
	rp.prev = base.Tensors
	if err := rp.log.CompactBefore(idx); err != nil {
		return fmt.Errorf("core: replication compaction at round %d: %w", completed, err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Replica state

// replicaState is a materialized copy of the leader's server state
// plus the reconciliation bookkeeping promotion needs. Both the
// streaming follower and offline WAL replay build one.
type replicaState struct {
	snap      *Snapshot // tensors + optimizer scalars, live
	lastRound []int     // last recorded round per platform
	lastCut   [][]byte  // last cut payload per platform (replay on rejoin)
	lastLoss  []bool
	lastBatch []int
}

func newReplicaState(platforms int) *replicaState {
	rs := &replicaState{
		lastRound: make([]int, platforms),
		lastCut:   make([][]byte, platforms),
		lastLoss:  make([]bool, platforms),
		lastBatch: make([]int, platforms),
	}
	for k := range rs.lastRound {
		rs.lastRound[k] = -1
	}
	return rs
}

// applyBase installs a full snapshot, resetting the chain.
func (rs *replicaState) applyBase(snap *Snapshot) error {
	if snap.Role != RoleServer {
		return fmt.Errorf("%w: base snapshot role %s", ErrReplica, snap.Role)
	}
	rs.snap = snap
	for k := range rs.lastRound {
		rs.lastRound[k] = snap.NextRound - 1
		rs.lastCut[k] = nil
		rs.lastLoss[k] = false
	}
	return nil
}

// applyStep advances the replica by one step record.
func (rs *replicaState) applyStep(rec *stepRecord) error {
	if rs.snap == nil {
		return fmt.Errorf("%w: step record before any base", ErrReplica)
	}
	if rec.platform < 0 || rec.platform >= len(rs.lastRound) {
		return fmt.Errorf("%w: step for platform %d of %d", ErrReplica, rec.platform, len(rs.lastRound))
	}
	if len(rec.deltas) < len(rs.snap.Tensors) {
		return fmt.Errorf("%w: step carries %d deltas for %d state tensors", ErrReplica, len(rec.deltas), len(rs.snap.Tensors))
	}
	for i, d := range rec.deltas {
		if i < len(rs.snap.Tensors) {
			if !tensor.SameShape(d, rs.snap.Tensors[i]) {
				return fmt.Errorf("%w: delta %d shape %v, state %v", ErrReplica, i, d.Shape(), rs.snap.Tensors[i].Shape())
			}
			xorInto(rs.snap.Tensors[i], d)
		} else {
			// A tensor the optimizer allocated on this step: the delta is
			// the value itself (XOR against implicit zero).
			rs.snap.Tensors = append(rs.snap.Tensors, d)
		}
	}
	rs.snap.Scalars = rec.scalars
	rs.lastRound[rec.platform] = rec.round
	rs.lastCut[rec.platform] = rec.cut
	rs.lastLoss[rec.platform] = rec.lossFlag
	rs.lastBatch[rec.platform] = rec.batch
	return nil
}

// applyRecord dispatches a raw record (base or step).
func (rs *replicaState) applyRecord(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("%w: empty record", ErrReplica)
	}
	switch payload[0] {
	case replKindBase:
		snap, err := DecodeSnapshot(payload[1:])
		if err != nil {
			return fmt.Errorf("%w: base record: %v", ErrReplica, err)
		}
		return rs.applyBase(snap)
	case replKindStep:
		rec, err := decodeStepRecord(payload)
		if err != nil {
			return err
		}
		return rs.applyStep(rec)
	default:
		return fmt.Errorf("%w: record kind %d", ErrReplica, payload[0])
	}
}

// ReplayWAL rebuilds the replicated server state from a log: install
// the bases, XOR the steps forward. This is both the follower's
// promotion path (replaying its own tail proves the durable copy, not
// just the in-memory one, is complete) and the leader-restart path
// (reopen the WAL, replay, resume).
func ReplayWAL(log *wal.Log, platforms int) (*replicaState, error) {
	rs := newReplicaState(platforms)
	err := log.Iterate(log.FirstIndex(), func(_ uint64, payload []byte) error {
		return rs.applyRecord(payload)
	})
	if err != nil {
		return nil, err
	}
	if rs.snap == nil {
		return nil, fmt.Errorf("%w: log holds no base record", ErrReplica)
	}
	return rs, nil
}

// RecoverServerState is the leader-restart entry point: replay a WAL
// directory's log into a server snapshot. nextRound on the returned
// snapshot is set to the round a restarted server must resume at (see
// Follower.Promote for the same derivation). Callers restore it into
// a fresh Server via RestoreSnapshot with a matching StartRound.
func RecoverServerState(log *wal.Log, platforms int) (*Snapshot, error) {
	rs, err := ReplayWAL(log, platforms)
	if err != nil {
		return nil, err
	}
	r, _ := rs.resumePoint()
	rs.snap.NextRound = r
	rs.snap.Role = RoleServer
	return rs.snap, nil
}

// resumePoint derives where the session stands from the per-platform
// record rounds. Sequential scheduling records platforms in id order
// within a round, so either every platform recorded round r (the round
// completed; resume at r+1) or a prefix did (the leader died inside
// round max; resume there, skipping the platforms already stepped).
func (rs *replicaState) resumePoint() (round int, done []bool) {
	lo, hi := rs.lastRound[0], rs.lastRound[0]
	for _, r := range rs.lastRound {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo == hi {
		return hi + 1, make([]bool, len(rs.lastRound))
	}
	done = make([]bool, len(rs.lastRound))
	for k, r := range rs.lastRound {
		done[k] = r == hi
	}
	return hi, done
}

// ---------------------------------------------------------------------------
// Follower side

// FollowerConfig configures a warm follower.
type FollowerConfig struct {
	// Platforms is the session's platform count (must match the
	// leader's).
	Platforms int
	// Conn is the replication stream from the leader.
	Conn transport.Conn
	// Log is the follower's own WAL: every record is persisted locally
	// before it is applied, so promotion replays a durable tail.
	Log *wal.Log
}

// Follower is a warm standby for the aggregation tier: it applies the
// leader's replication stream into live state and can promote into a
// serving Server when the leader dies.
type Follower struct {
	cfg       FollowerConfig
	state     *replicaState
	evaluator int
	baseSeen  bool
	watermark uint64
}

// NewFollower validates cfg and builds a follower.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Platforms <= 0 {
		return nil, fmt.Errorf("%w: %d platforms", ErrConfig, cfg.Platforms)
	}
	if cfg.Conn == nil {
		return nil, fmt.Errorf("%w: follower without a replication stream", ErrConfig)
	}
	if cfg.Log == nil {
		return nil, fmt.Errorf("%w: follower without a WAL", ErrConfig)
	}
	return &Follower{
		cfg:       cfg,
		state:     newReplicaState(cfg.Platforms),
		evaluator: -1,
	}, nil
}

// Run consumes the replication stream until it ends. A nil return
// means the stream closed after a complete bootstrap — the leader is
// gone (crashed or finished) and the follower is safe to promote. A
// non-nil return means the replica cannot be trusted (stream died
// before bootstrap, or a record failed to decode or apply).
func (f *Follower) Run() error {
	for {
		m, err := f.cfg.Conn.Recv()
		if err != nil {
			if f.baseSeen {
				return nil
			}
			return fmt.Errorf("core: follower stream before bootstrap: %w", err)
		}
		switch m.Type {
		case wire.MsgReplBase:
			payload := append([]byte{replKindBase}, m.Payload...)
			if err := f.persistAndApply(payload); err != nil {
				return err
			}
			f.baseSeen = true
			ack := &wire.Message{Type: wire.MsgReplAck,
				Payload: wire.EncodeText(fmt.Sprintf("watermark=%d", f.watermark))}
			if err := f.cfg.Conn.Send(ack); err != nil {
				return fmt.Errorf("core: follower ack: %w", err)
			}
		case wire.MsgReplMeta:
			meta, derr := wire.DecodeText(m.Payload)
			if derr != nil {
				return fmt.Errorf("core: follower meta: %w", derr)
			}
			fields, perr := parseMetaInts(meta, "evaluator")
			if perr != nil {
				return perr
			}
			f.evaluator = fields["evaluator"]
		case wire.MsgReplRecord:
			if err := f.persistAndApply(m.Payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: %s on the replication stream", ErrProtocol, m.Type)
		}
	}
}

// persistAndApply writes a record to the local WAL, then applies it.
// WAL first: the watermark must never run ahead of durable state.
func (f *Follower) persistAndApply(payload []byte) error {
	idx, err := f.cfg.Log.Append(payload)
	if err != nil {
		return fmt.Errorf("core: follower WAL append: %w", err)
	}
	if err := f.state.applyRecord(payload); err != nil {
		return err
	}
	f.watermark = idx
	return nil
}

// Watermark returns the WAL index of the last durably applied record.
func (f *Follower) Watermark() uint64 { return f.watermark }

// PromoteConfig configures a failover promotion.
type PromoteConfig struct {
	// Server is the configuration template for the promoted server —
	// the same schedule knobs (Rounds, LabelSharing, Loss, L1SyncEvery,
	// EvalEvery, ClipGrads, LRSchedule, Codec) the dead leader ran, with
	// Back/Opt being the follower's own halves. StartRound and Mode are
	// derived here and overwritten; Replication must be unset (chained
	// replication is out of scope).
	Server ServerConfig
	// Broker receives the platforms' redialed connections.
	Broker *RejoinBroker
	// Window bounds the wait for each platform to redial.
	Window time.Duration
}

// Promote turns the follower into a serving leader. It replays the
// follower's own WAL tail (proving the durable copy is complete),
// derives the exact resume point, awaits every platform's rejoin
// through the broker, reconciles each one — replaying a cut-gradient
// payload the dead leader recorded but never delivered, when that is
// what a platform is missing — and returns the promoted server plus
// the adopted connections, ready for Serve. The training trajectory
// continues bit-identically: the differential failover tests compare
// final weight digests against an uninterrupted run.
func (f *Follower) Promote(pc PromoteConfig) (*Server, []transport.Conn, error) {
	if !f.baseSeen {
		return nil, nil, fmt.Errorf("%w: promoting before bootstrap", ErrReplica)
	}
	if pc.Broker == nil || pc.Window <= 0 {
		return nil, nil, fmt.Errorf("%w: promotion needs a broker and a positive window", ErrConfig)
	}
	if pc.Server.Replication != nil {
		return nil, nil, fmt.Errorf("%w: a promoted server cannot itself replicate", ErrConfig)
	}
	rs, err := ReplayWAL(f.cfg.Log, f.cfg.Platforms)
	if err != nil {
		return nil, nil, fmt.Errorf("core: promotion replay: %w", err)
	}
	round, done := rs.resumePoint()

	scfg := pc.Server
	scfg.StartRound = round
	scfg.Mode = RoundModeSequential
	scfg.PipelineDepth = 0
	scfg.IOGoroutineBudget = 0
	srv, err := NewServer(scfg)
	if err != nil {
		return nil, nil, fmt.Errorf("core: promoted server: %w", err)
	}
	rs.snap.Role = RoleServer
	rs.snap.NextRound = round
	if err := srv.RestoreSnapshot(rs.snap); err != nil {
		return nil, nil, fmt.Errorf("core: promotion restore: %w", err)
	}
	srv.promo = &promoState{
		evaluator: f.evaluator,
		round:     round,
		done:      done,
		state:     rs,
	}

	conns := make([]transport.Conn, f.cfg.Platforms)
	for k := 0; k < f.cfg.Platforms; k++ {
		offer := pc.Broker.await(k, pc.Window)
		if offer == nil {
			closeAll(conns)
			return nil, nil, fmt.Errorf("core: platform %d did not rejoin the promoted server within %v", k, pc.Window)
		}
		conn, aerr := adoptForPromotion(offer, k, rs)
		if aerr != nil {
			closeAll(conns)
			return nil, nil, aerr
		}
		conns[k] = conn
	}
	return srv, conns, nil
}

func closeAll(conns []transport.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// adoptForPromotion reconciles one platform's rejoin against the
// replayed record grammar. Exactly two shapes are legal:
//
//   - The platform announces the round of its last recorded step at
//     the cut-grad position: the leader recorded the step but the cut
//     gradient never arrived (it died between append and delivery, or
//     the delivery died with it). Ack that position and replay the
//     recorded payload; the platform finishes the round and arrives at
//     the promoted server's round naturally.
//   - The platform announces the round after its last recorded step:
//     it holds everything the chain holds. Ack (round, posActs); the
//     platform re-enters the round from the top, re-sending from its
//     stage cache, and the server — which never recorded the step —
//     recomputes it from bit-identical state.
//
// Anything else means the replica and the platform disagree about
// history: refuse loudly rather than train on divergent state.
func adoptForPromotion(offer *rejoinOffer, k int, rs *replicaState) (transport.Conn, error) {
	meta, err := wire.DecodeText(offer.rejoin.Payload)
	if err != nil {
		offer.conn.Close()
		return nil, fmt.Errorf("core: platform %d promotion rejoin meta: %w", k, err)
	}
	fields, err := parseMetaInts(meta, "next", "pos")
	if err != nil {
		offer.conn.Close()
		return nil, fmt.Errorf("core: platform %d promotion rejoin meta: %w", k, err)
	}
	pRound, pPos := fields["next"], fields["pos"]
	recorded := rs.lastRound[k]

	var ackPos int
	replayCut := false
	switch {
	case pRound == recorded && pPos == posCutGrad && rs.lastCut[k] != nil:
		ackPos = posCutGrad
		replayCut = true
	case pRound == recorded+1 && pPos >= posActs && pPos <= posDone:
		ackPos = posActs
	default:
		offer.conn.Close()
		return nil, fmt.Errorf("%w: platform %d rejoins promoted server at round %d pos %d, last recorded round %d",
			ErrProtocol, k, pRound, pPos, recorded)
	}
	ack := &wire.Message{
		Type:     wire.MsgRejoinAck,
		Platform: uint32(k),
		Round:    uint32(pRound),
		Payload:  wire.EncodeText(ackMeta(pRound, ackPos)),
	}
	if err := offer.conn.Send(ack); err != nil {
		offer.conn.Close()
		return nil, fmt.Errorf("core: platform %d promotion ack: %w", k, err)
	}
	if replayCut {
		replay := &wire.Message{
			Type:     wire.MsgCutGrad,
			Platform: uint32(k),
			Round:    uint32(pRound),
			Payload:  append([]byte(nil), rs.lastCut[k]...),
		}
		if err := offer.conn.Send(replay); err != nil {
			offer.conn.Close()
			return nil, fmt.Errorf("core: platform %d promotion cut replay: %w", k, err)
		}
	}
	return offer.conn, nil
}

// promoState carries what a promoted server must know about the round
// it resumes inside: which platforms the dead leader already stepped
// (their exchanges are skipped — the steps are in the replayed state),
// the evaluator identity the original handshake established, and the
// reconciliation bookkeeping to prime per-platform recovery caches.
type promoState struct {
	evaluator int
	round     int
	done      []bool
	state     *replicaState
}

// adoptPromotion replaces the handshake on a promoted server: the
// platforms were already validated by the original leader and
// reconciled during Promote; what remains is installing the session
// facts the handshake would have produced.
func (s *Server) adoptPromotion() {
	s.evaluator = s.promo.evaluator
	copy(s.lastBatch, s.promo.state.lastBatch)
	if s.cfg.Recovery != nil {
		// Prime the cut-replay caches so a platform that drops again
		// right after failover can still be replayed its last payload.
		_ = s.reg.each(func(k int, ps *platformState) error {
			if cut := s.promo.state.lastCut[k]; cut != nil {
				ps.lastCut = append([]byte(nil), cut...)
				ps.lastCutRound = s.promo.state.lastRound[k]
				ps.lastCutLoss = s.promo.state.lastLoss[k]
			}
			return nil
		})
	}
}
