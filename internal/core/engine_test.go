package core

import (
	"strings"
	"testing"

	"medsplit/internal/dataset"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
)

// testData builds a small deterministic dataset.
func testData(t *testing.T, classes, train, test int, seed uint64) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	return dataset.SynthCIFAR(dataset.SynthConfig{Classes: classes, Train: train, Test: test, Seed: seed})
}

// buildSplitMLP returns a fresh MLP on flattened inputs split at the
// default cut. MLPs keep core tests fast; CNN paths are covered by the
// models and experiment tests.
func buildSplitMLP(t *testing.T, seed uint64, in, classes int) (front, back *nn.Sequential) {
	t.Helper()
	m := models.MLP(in, []int{32}, classes, rng.New(seed))
	f, b, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	return f, b
}

// buildFronts builds K identically initialized fronts (one per
// platform — layer instances cache activations, so platforms cannot
// share one front) plus the single server-side back. Same seed ⇒ same
// initial L1 weights, the paper's starting postulate.
func buildFronts(t *testing.T, seed uint64, k, in, classes int) (fronts []*nn.Sequential, back *nn.Sequential) {
	t.Helper()
	for i := 0; i < k; i++ {
		f, b := buildSplitMLP(t, seed, in, classes)
		fronts = append(fronts, f)
		if i == 0 {
			back = b
		}
	}
	return fronts, back
}

// flatten turns an image dataset into vectors for MLP tests.
func flatten(d *dataset.Dataset) *dataset.Dataset {
	n := d.X.Dim(0)
	return &dataset.Dataset{
		X:       d.X.Reshape(n, d.X.Size()/n),
		Labels:  d.Labels,
		Classes: d.Classes,
	}
}

func defaultServer(t *testing.T, back *nn.Sequential, platforms, rounds int, mut func(*ServerConfig)) *Server {
	t.Helper()
	cfg := ServerConfig{
		Back:      back,
		Opt:       &nn.SGD{LR: 0.05},
		Platforms: platforms,
		Rounds:    rounds,
		EvalEvery: 0,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func defaultPlatform(t *testing.T, id int, front *nn.Sequential, shard *dataset.Dataset, rounds int, mut func(*PlatformConfig)) *Platform {
	t.Helper()
	cfg := PlatformConfig{
		ID:     id,
		Front:  front,
		Opt:    &nn.SGD{LR: 0.05},
		Loss:   nn.SoftmaxCrossEntropy{},
		Shard:  shard,
		Batch:  8,
		Rounds: rounds,
		Seed:   uint64(100 + id),
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// With one platform and SGD, split training must be bit-for-bit
// identical to centralized training of the unsplit model on the same
// batches: the cut only relocates computation.
func TestSplitEqualsCentralizedSinglePlatform(t *testing.T) {
	train, _ := testData(t, 4, 64, 8, 1)
	flat := flatten(train)
	in := flat.X.Dim(1)

	const rounds = 10

	// Centralized reference.
	ref := models.MLP(in, []int{32}, 4, rng.New(7))
	refOpt := &nn.SGD{LR: 0.05}
	loss := nn.SoftmaxCrossEntropy{}
	sampler := dataset.NewBatchSampler(seqIdx(flat.Len()), 8, rng.New(100^0x9e3779b97f4a7c15))
	for r := 0; r < rounds; r++ {
		x, labels := flat.Batch(sampler.Next())
		nn.ZeroGrads(ref.Net.Params())
		logits := ref.Net.Forward(x, true)
		_, g := loss.Loss(logits, labels)
		ref.Net.Backward(g)
		refOpt.Step(ref.Net.Params())
	}

	// Split run with identical seeds. The platform sampler must draw the
	// same batches: NewPlatform seeds its sampler with Seed^const, so we
	// pass Seed=100 and seeded the reference sampler identically above.
	frontM := models.MLP(in, []int{32}, 4, rng.New(7))
	front, back, err := models.Split(frontM.Net, frontM.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	srv := defaultServer(t, back, 1, rounds, nil)
	plat := defaultPlatform(t, 0, front, flat, rounds, func(c *PlatformConfig) {
		c.Seed = 100
	})
	if _, err := RunLocal(srv, []*Platform{plat}); err != nil {
		t.Fatal(err)
	}

	refParams := ref.Net.Params()
	gotParams := frontM.Net.Params()
	for i := range refParams {
		if !tensor.AllClose(refParams[i].W, gotParams[i].W, 1e-6) {
			t.Fatalf("param %d (%s) diverged between centralized and split training", i, refParams[i].Name)
		}
	}
}

func TestMultiPlatformTrainingReducesLoss(t *testing.T) {
	train, test := testData(t, 4, 240, 60, 2)
	flat, flatTest := flatten(train), flatten(test)
	in := flat.X.Dim(1)

	const rounds, K = 40, 3
	fronts, back := buildFronts(t, 11, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(3))

	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.EvalEvery = 20
	})
	meters := make([]*transport.Meter, K)
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		meters[k] = &transport.Meter{}
		k := k
		platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
			c.Meter = meters[k]
			c.EvalEvery = 20
			if k == 0 {
				c.EvalData = flatTest
			}
		})
	}
	stats, err := RunLocal(srv, platforms)
	if err != nil {
		t.Fatal(err)
	}
	// Loss trends down.
	first := stats[0].Rounds[0].Loss
	last := stats[0].FinalLoss()
	if last >= first {
		t.Fatalf("platform 0 loss did not decrease: %v -> %v", first, last)
	}
	// Evaluator measured accuracy above chance; others recorded -1.
	finalEval := stats[0].Evals[len(stats[0].Evals)-1]
	if finalEval.Accuracy < 0.3 {
		t.Fatalf("final accuracy %v (chance 0.25)", finalEval.Accuracy)
	}
	if stats[1].Evals[0].Accuracy != -1 {
		t.Fatal("non-evaluator reported accuracy")
	}
	// All platforms moved training bytes.
	for k, m := range meters {
		if TrainingBytes(m) == 0 {
			t.Fatalf("platform %d reports zero training bytes", k)
		}
	}
	// The evaluator also moved eval traffic, which must be excluded from
	// training bytes.
	if TrainingBytes(meters[0]) >= meters[0].TotalBytes() {
		t.Fatal("eval/control traffic leaked into training bytes")
	}
}

// Sharing one front instance across platforms in the same process would
// corrupt caches; each platform needs its own front. This test documents
// the supported pattern: separate instances, optionally synced via
// L1SyncEvery.
func TestL1SyncConvergesFronts(t *testing.T) {
	train, _ := testData(t, 4, 120, 8, 4)
	flat := flatten(train)
	in := flat.X.Dim(1)
	const rounds, K = 8, 2

	// Distinct per-platform fronts (different init seeds), shared back.
	m0 := models.MLP(in, []int{32}, 4, rng.New(21))
	m1 := models.MLP(in, []int{32}, 4, rng.New(22))
	f0, back, err := models.Split(m0.Net, m0.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	f1, _, err := models.Split(m1.Net, m1.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	shards := dataset.ShardIID(flat.Len(), K, rng.New(5))
	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.L1SyncEvery = 4
	})
	mk := func(id int, f *nn.Sequential) *Platform {
		return defaultPlatform(t, id, f, flat.Subset(shards[id]), rounds, func(c *PlatformConfig) {
			c.L1SyncEvery = 4
		})
	}
	if _, err := RunLocal(srv, []*Platform{mk(0, f0), mk(1, f1)}); err != nil {
		t.Fatal(err)
	}
	// After a sync round at the end (round 8 = multiple of 4), both
	// fronts hold identical weights.
	p0, p1 := f0.Params(), f1.Params()
	for i := range p0 {
		if !tensor.AllClose(p0[i].W, p1[i].W, 1e-6) {
			t.Fatalf("L1 param %d differs after sync: %v vs %v", i, p0[i].W, p1[i].W)
		}
	}
}

func TestConcatModeRuns(t *testing.T) {
	train, test := testData(t, 4, 120, 40, 6)
	flat, flatTest := flatten(train), flatten(test)
	in := flat.X.Dim(1)
	const rounds, K = 20, 2
	fronts, back := buildFronts(t, 31, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(7))
	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.Mode = RoundModeConcat
		c.EvalEvery = 10
	})
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		k := k
		platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
			c.EvalEvery = 10
			if k == 0 {
				c.EvalData = flatTest
			}
			// Different batch sizes exercise the union-mean rescaling.
			c.Batch = 6 + 4*k
		})
	}
	stats, err := RunLocal(srv, platforms)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].FinalLoss() >= stats[0].Rounds[0].Loss {
		t.Fatalf("concat mode loss did not decrease: %v -> %v",
			stats[0].Rounds[0].Loss, stats[0].FinalLoss())
	}
}

// Concat mode with a single platform must match sequential mode exactly:
// with one platform the union batch IS the platform batch.
func TestConcatEqualsSequentialSinglePlatform(t *testing.T) {
	train, _ := testData(t, 3, 60, 8, 8)
	flat := flatten(train)
	in := flat.X.Dim(1)
	const rounds = 6

	run := func(mode RoundMode) []*nn.Param {
		m := models.MLP(in, []int{16}, 3, rng.New(77))
		front, back, err := models.Split(m.Net, m.DefaultCut)
		if err != nil {
			t.Fatal(err)
		}
		srv := defaultServer(t, back, 1, rounds, func(c *ServerConfig) { c.Mode = mode })
		plat := defaultPlatform(t, 0, front, flat, rounds, nil)
		if _, err := RunLocal(srv, []*Platform{plat}); err != nil {
			t.Fatal(err)
		}
		return m.Net.Params()
	}
	seqParams := run(RoundModeSequential)
	catParams := run(RoundModeConcat)
	for i := range seqParams {
		if !tensor.AllClose(seqParams[i].W, catParams[i].W, 1e-6) {
			t.Fatalf("param %d differs between modes", i)
		}
	}
}

func TestLabelSharingMode(t *testing.T) {
	train, _ := testData(t, 4, 120, 8, 9)
	flat := flatten(train)
	in := flat.X.Dim(1)
	const rounds, K = 15, 2
	fronts, back := buildFronts(t, 41, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(10))
	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.LabelSharing = true
		c.Loss = nn.SoftmaxCrossEntropy{}
	})
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
			c.LabelSharing = true
			c.Loss = nil // loss lives on the server in this mode
		})
	}
	stats, err := RunLocal(srv, platforms)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].FinalLoss() >= stats[0].Rounds[0].Loss {
		t.Fatalf("label-sharing loss did not decrease: %v -> %v",
			stats[0].Rounds[0].Loss, stats[0].FinalLoss())
	}
}

func TestConfigValidation(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 12)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 51, flat.X.Dim(1), 2)

	if _, err := NewServer(ServerConfig{Opt: &nn.SGD{}, Platforms: 1, Rounds: 1}); err == nil {
		t.Fatal("nil back accepted")
	}
	if _, err := NewServer(ServerConfig{Back: back, Platforms: 1, Rounds: 1}); err == nil {
		t.Fatal("nil optimizer accepted")
	}
	if _, err := NewServer(ServerConfig{Back: back, Opt: &nn.SGD{}, Platforms: 0, Rounds: 1}); err == nil {
		t.Fatal("zero platforms accepted")
	}
	if _, err := NewServer(ServerConfig{Back: back, Opt: &nn.SGD{}, Platforms: 1, Rounds: 1, LabelSharing: true}); err == nil {
		t.Fatal("label sharing without loss accepted")
	}
	if _, err := NewServer(ServerConfig{Back: back, Opt: &nn.SGD{}, Platforms: 1, Rounds: 1, Mode: RoundMode(9)}); err == nil {
		t.Fatal("bad mode accepted")
	}

	base := PlatformConfig{
		ID: 0, Front: front, Opt: &nn.SGD{}, Loss: nn.SoftmaxCrossEntropy{},
		Shard: flat, Batch: 4, Rounds: 1,
	}
	bad := base
	bad.Front = nil
	if _, err := NewPlatform(bad); err == nil {
		t.Fatal("nil front accepted")
	}
	bad = base
	bad.Batch = 0
	if _, err := NewPlatform(bad); err == nil {
		t.Fatal("zero batch accepted")
	}
	bad = base
	bad.Loss = nil
	if _, err := NewPlatform(bad); err == nil {
		t.Fatal("label-private without loss accepted")
	}
	bad = base
	bad.Shard = nil
	if _, err := NewPlatform(bad); err == nil {
		t.Fatal("nil shard accepted")
	}
}

// Mismatched configurations must be rejected at the handshake, not
// produce silent divergence.
func TestHandshakeRejectsConfigMismatch(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 13)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 61, flat.X.Dim(1), 2)
	srv := defaultServer(t, back, 1, 5, nil)
	plat := defaultPlatform(t, 0, front, flat, 7, nil) // 7 != 5 rounds
	_, err := RunLocal(srv, []*Platform{plat})
	if err == nil {
		t.Fatal("round-count mismatch accepted")
	}
	if !strings.Contains(err.Error(), "config") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunLocalValidation(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 14)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 71, flat.X.Dim(1), 2)
	srv := defaultServer(t, back, 2, 1, nil)
	plat := defaultPlatform(t, 0, front, flat, 1, nil)
	if _, err := RunLocal(srv, []*Platform{plat}); err == nil {
		t.Fatal("platform count mismatch accepted")
	}
	if _, err := RunLocal(nil, nil); err == nil {
		t.Fatal("nil server accepted")
	}
}

func seqIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestLRScheduleAppliedDuringTraining(t *testing.T) {
	train, _ := testData(t, 3, 60, 8, 71)
	flat := flatten(train)
	front, back := buildSplitMLP(t, 231, flat.X.Dim(1), 3)
	const rounds = 6

	serverOpt := &nn.SGD{LR: 1}
	platOpt := &nn.SGD{LR: 1}
	sched := nn.StepDecay(0.1, 0.5, 3)
	srv, err := NewServer(ServerConfig{
		Back: back, Opt: serverOpt, Platforms: 1, Rounds: rounds, LRSchedule: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	plat, err := NewPlatform(PlatformConfig{
		ID: 0, Front: front, Opt: platOpt, Loss: nn.SoftmaxCrossEntropy{},
		Shard: flat, Batch: 8, Rounds: rounds, Seed: 72, LRSchedule: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLocal(srv, []*Platform{plat}); err != nil {
		t.Fatal(err)
	}
	// After round 5 the schedule has halved once: 0.1 → 0.05.
	if d := serverOpt.LR - 0.05; d > 1e-7 || d < -1e-7 {
		t.Fatalf("server LR %v, want 0.05", serverOpt.LR)
	}
	if d := platOpt.LR - 0.05; d > 1e-7 || d < -1e-7 {
		t.Fatalf("platform LR %v, want 0.05", platOpt.LR)
	}
}

// Concat scheduling and label sharing compose: the server fuses all
// platforms' activations AND computes the loss from shipped labels.
func TestConcatWithLabelSharing(t *testing.T) {
	train, _ := testData(t, 3, 120, 8, 81)
	flat := flatten(train)
	const rounds, K = 10, 2
	fronts, back := buildFronts(t, 251, K, flat.X.Dim(1), 3)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(82))
	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.Mode = RoundModeConcat
		c.LabelSharing = true
		c.Loss = nn.SoftmaxCrossEntropy{}
	})
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		k := k
		platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
			c.LabelSharing = true
			c.Loss = nil
			c.Batch = 4 + 4*k // unequal batches through the concat path
		})
	}
	stats, err := RunLocal(srv, platforms)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].FinalLoss() >= stats[0].Rounds[0].Loss {
		t.Fatalf("concat+labelshare loss did not decrease: %v -> %v",
			stats[0].Rounds[0].Loss, stats[0].FinalLoss())
	}
}

// Augmented platform training through the full protocol.
func TestPlatformAugmentationInProtocol(t *testing.T) {
	train, _ := testData(t, 3, 60, 8, 83)
	// Keep images rank-4 (no flatten): augmentation needs NCHW.
	m := models.VGGLite(3, 2, rng.New(261))
	front, back, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	srv := defaultServer(t, back, 1, 4, nil)
	plat := defaultPlatform(t, 0, front, train, 4, func(c *PlatformConfig) {
		c.Batch = 6
		c.Augment = dataset.NewAugmenter(4, true, rng.New(84))
	})
	if _, err := RunLocal(srv, []*Platform{plat}); err != nil {
		t.Fatal(err)
	}
}
