package core

import (
	"medsplit/internal/transport"
)

// platformRegistry owns the server's per-platform connection state. It
// replaced the raw fixed-size slice when sessions grew from a handful
// of hospitals toward O(100) clinics: every scheduler, the recovery
// machinery and the shutdown path now go through one API with
// deterministic id-ordered iteration and status bookkeeping, so code
// that cares about "the active platforms" never re-derives that set
// with ad-hoc loops. Lookups stay O(1) and iteration allocation-free —
// a registry entry is created per connection at Serve time and lives
// for the whole session.
//
// The registry is confined to the server's session goroutine (like the
// states it holds); it needs no locking.
type platformRegistry struct {
	states []*platformState
}

// newPlatformRegistry builds one entry per connection, wrapping each in
// a Reconnectable when recovery needs to swap transports mid-session.
func newPlatformRegistry(conns []transport.Conn, withRecovery bool) *platformRegistry {
	reg := &platformRegistry{states: make([]*platformState, len(conns))}
	for k, c := range conns {
		ps := &platformState{conn: c, status: PlatformActive}
		if withRecovery {
			ps.rc = transport.NewReconnectable(c)
			ps.conn = ps.rc
		}
		reg.states[k] = ps
	}
	return reg
}

// len returns the number of registered platforms.
func (reg *platformRegistry) len() int { return len(reg.states) }

// state returns platform k's entry.
func (reg *platformRegistry) state(k int) *platformState { return reg.states[k] }

// each visits every platform in id order, stopping at the first error.
func (reg *platformRegistry) each(fn func(k int, ps *platformState) error) error {
	for k, ps := range reg.states {
		if err := fn(k, ps); err != nil {
			return err
		}
	}
	return nil
}

// eachActive visits the platforms currently in lockstep with the
// session, in id order.
func (reg *platformRegistry) eachActive(fn func(k int, ps *platformState) error) error {
	return reg.each(func(k int, ps *platformState) error {
		if ps.status != PlatformActive {
			return nil
		}
		return fn(k, ps)
	})
}
