package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"medsplit/internal/dataset"
	"medsplit/internal/geonet"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/simnet"
	"medsplit/internal/transport"
	"medsplit/internal/transport/testutil"
	"medsplit/internal/wire"
)

// connector builds the K connection pairs a session runs over.
type connector func(K int) (serverConns, platformConns []transport.Conn)

// pipeConnector is the in-process reference transport.
func pipeConnector(K int) ([]transport.Conn, []transport.Conn) {
	s := make([]transport.Conn, K)
	p := make([]transport.Conn, K)
	for k := 0; k < K; k++ {
		s[k], p[k] = transport.Pipe()
	}
	return s, p
}

// simConnector runs the session over a simulated WAN with the given
// per-link parameters (the same link for every platform).
func simConnector(link geonet.Link, opts simnet.Options) connector {
	return func(K int) ([]transport.Conn, []transport.Conn) {
		n := simnet.New(opts)
		s := make([]transport.Conn, K)
		p := make([]transport.Conn, K)
		for k := 0; k < K; k++ {
			s[k], p[k] = n.AddLink(k, link)
		}
		return s, p
	}
}

// splitRunOver executes the fixed-seed 2-platform MLP workload from
// splitRun over caller-provided connections and returns the final
// parameters (fronts then back).
func splitRunOver(t *testing.T, mode RoundMode, depth, rounds int, shadows bool, connect connector) [][]*nn.Param {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	const K = 2
	train, _ := testData(t, 4, 240, 60, 91)
	flat := flatten(train)
	in := flat.X.Dim(1)

	fronts, back := buildFronts(t, 311, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(92))
	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.Mode = mode
		c.PipelineDepth = depth
	})
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
			if shadows {
				shadow, _ := buildSplitMLP(t, 311, in, 4)
				c.ShadowFront = shadow
			}
		})
	}
	serverConns, platformConns := connect(K)
	if _, err := RunConnected(srv, platforms, serverConns, platformConns); err != nil {
		t.Fatal(err)
	}
	params := make([][]*nn.Param, 0, K+1)
	for k := 0; k < K; k++ {
		params = append(params, fronts[k].Params())
	}
	return append(params, back.Params())
}

// The acceptance differential: a full training run over the simulated
// WAN with ideal links is bit-identical to the same run over
// transport.Pipe, for all three round modes — the simnet transport
// moves bytes without ever touching what is computed.
func TestSimnetZeroLatencyBitIdenticalToPipe(t *testing.T) {
	const rounds = 10
	cases := []struct {
		name    string
		mode    RoundMode
		depth   int
		shadows bool
	}{
		{"sequential", RoundModeSequential, 0, false},
		{"concat", RoundModeConcat, 0, false},
		{"pipelined-depth2", RoundModePipelined, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := splitRunOver(t, tc.mode, tc.depth, rounds, tc.shadows, pipeConnector)
			sim := splitRunOver(t, tc.mode, tc.depth, rounds, tc.shadows,
				simConnector(geonet.Link{}, simnet.Options{Seed: 5}))
			assertParamsBitIdentical(t, tc.name+" simnet-ideal vs pipe", ref, sim)
		})
	}
}

// Latency, bandwidth and jitter shift the virtual timeline but must
// never leak into training: a run over the 5-hospital WAN parameters
// stays bit-identical to the pipe reference.
func TestSimnetWANParametersDoNotAffectWeights(t *testing.T) {
	const rounds = 8
	ref := splitRunOver(t, RoundModeSequential, 0, rounds, false, pipeConnector)
	sim := splitRunOver(t, RoundModeSequential, 0, rounds, false,
		simConnector(geonet.Link{LatencyMs: 95, Mbps: 50}, simnet.Options{Seed: 9, Jitter: 0.4}))
	assertParamsBitIdentical(t, "simnet-wan vs pipe", ref, sim)
}

// simnetRecoveryRun executes the recoveryRun workload over a simulated
// WAN whose fault script drops the victim, with redial wired through
// Network.Redial and the rejoin broker.
func simnetRecoveryRun(t *testing.T, rounds int, policy RejoinPolicy, faults []simnet.Fault) ([][]*nn.Param, []*PlatformStats) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	const K = 2
	train, _ := testData(t, 4, 240, 60, 171)
	flat := flatten(train)
	in := flat.X.Dim(1)
	fronts, back := buildFronts(t, 711, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(172))

	net := simnet.New(simnet.Options{Seed: 31, Jitter: 0.1, Faults: faults})
	link := geonet.Link{LatencyMs: 8, Mbps: 200}
	serverConns := make([]transport.Conn, K)
	platformConns := make([]transport.Conn, K)
	for k := 0; k < K; k++ {
		serverConns[k], platformConns[k] = net.AddLink(k, link)
	}

	broker := NewRejoinBroker()
	defer broker.Close()
	srv, err := NewServer(ServerConfig{
		Back: back, Opt: &nn.SGD{LR: 0.05}, Platforms: K, Rounds: rounds,
		Recovery: &RecoveryConfig{Policy: policy, Window: 30 * time.Second, Broker: broker},
	})
	if err != nil {
		t.Fatal(err)
	}
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		pc := PlatformConfig{
			ID: k, Front: fronts[k], Opt: &nn.SGD{LR: 0.05}, Loss: nn.SoftmaxCrossEntropy{},
			Shard: flat.Subset(shards[k]), Batch: 8, Rounds: rounds,
			Seed:         uint64(300 + k),
			RejoinWindow: 30 * time.Second,
		}
		k := k
		pc.Redial = func() (transport.Conn, error) {
			sEnd, pEnd, derr := net.Redial(k)
			if derr != nil {
				return nil, derr
			}
			go broker.Offer(sEnd)
			return pEnd, nil
		}
		p, perr := NewPlatform(pc)
		if perr != nil {
			t.Fatal(perr)
		}
		platforms[k] = p
	}
	stats, err := RunConnected(srv, platforms, serverConns, platformConns)
	if err != nil {
		t.Fatal(err)
	}
	params := make([][]*nn.Param, 0, K+1)
	for k := 0; k < K; k++ {
		params = append(params, fronts[k].Params())
	}
	return append(params, back.Params()), stats
}

// WaitForRejoin over the simulated WAN: scripted drops at both
// platform-send positions, and the swallowed-cut-grad failure mode,
// all recover to weights bit-identical to the undisturbed pipe run.
func TestSimnetWaitForRejoinBitIdentical(t *testing.T) {
	const rounds = 10
	baseline, _ := recoveryRun(t, recoveryOpts{rounds: rounds})
	cases := []struct {
		name  string
		fault simnet.Fault
	}{
		{"drop uploading activations",
			simnet.Fault{Platform: recoveryVictim, Round: 5, Type: wire.MsgActivations, Dir: simnet.DirUp}},
		{"drop uploading loss gradients",
			simnet.Fault{Platform: recoveryVictim, Round: 5, Type: wire.MsgLossGrad, Dir: simnet.DirUp, FailDials: 3}},
		{"cut gradient swallowed by the link",
			simnet.Fault{Platform: recoveryVictim, Round: 5, Type: wire.MsgCutGrad, Dir: simnet.DirDown, Swallow: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			params, stats := simnetRecoveryRun(t, rounds, WaitForRejoin, []simnet.Fault{tc.fault})
			assertParamsBitIdentical(t, tc.name, baseline, params)
			if got := len(stats[recoveryVictim].Rounds); got != rounds {
				t.Fatalf("victim trained %d rounds, want %d", got, rounds)
			}
		})
	}
}

// ProceedWithout over the simulated WAN, with the adoption round pinned
// the same way proceedRunDeterministic pins it over pipes: two runs
// must agree bit for bit and the victim must have skipped exactly the
// dropped rounds.
func TestSimnetProceedWithoutDeterministic(t *testing.T) {
	const rounds = 12
	a, astats := simnetProceedRun(t, rounds)
	b, _ := simnetProceedRun(t, rounds)
	assertParamsBitIdentical(t, "simnet proceed-without repeat", a, b)
	if len(astats[0].Rounds) != rounds {
		t.Fatalf("healthy platform trained %d rounds, want %d", len(astats[0].Rounds), rounds)
	}
	want := rounds - 3 // dropped mid-5, adopted at 8
	if len(astats[recoveryVictim].Rounds) != want {
		t.Fatalf("victim trained %d rounds, want %d", len(astats[recoveryVictim].Rounds), want)
	}
}

// simnetProceedRun mirrors proceedRunDeterministic over the simulated
// WAN: the victim's link drops at round 5 via the fault script, the
// redial gate opens once the server reaches round 7, and the healthy
// platform's server end stalls the round-7 boundary until the offer is
// registered — so adoption lands at round 8 every run.
func simnetProceedRun(t *testing.T, rounds int) ([][]*nn.Param, []*PlatformStats) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	const K = 2
	train, _ := testData(t, 4, 240, 60, 171)
	flat := flatten(train)
	in := flat.X.Dim(1)
	fronts, back := buildFronts(t, 711, K, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(172))

	net := simnet.New(simnet.Options{Seed: 13, Faults: []simnet.Fault{
		{Platform: recoveryVictim, Round: 5, Type: wire.MsgLossGrad, Dir: simnet.DirUp},
	}})
	link := geonet.Link{LatencyMs: 3, Mbps: 500}

	broker := NewRejoinBroker()
	defer broker.Close()
	gate := make(chan struct{})
	var gateOnce sync.Once
	srv, err := NewServer(ServerConfig{
		Back: back, Opt: &nn.SGD{LR: 0.05}, Platforms: K, Rounds: rounds,
		L1SyncEvery: 4,
		Recovery:    &RecoveryConfig{Policy: ProceedWithout, Window: 30 * time.Second, Broker: broker},
		Trace: func(e TraceEvent) {
			if e.Party == "server" && e.Dir == "recv" && e.Type == wire.MsgActivations && e.Round == 7 {
				gateOnce.Do(func() { close(gate) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	offerPending := func() bool {
		broker.mu.Lock()
		defer broker.mu.Unlock()
		return len(broker.offers[recoveryVictim]) > 0
	}

	serverConns := make([]transport.Conn, K)
	platformConns := make([]transport.Conn, K)
	platforms := make([]*Platform, K)
	for k := 0; k < K; k++ {
		sEnd, cEnd := net.AddLink(k, link)
		if k == 0 {
			sEnd = &barrierConn{Conn: sEnd, ready: offerPending, trigger: func(m *wire.Message) bool {
				return m.Type == wire.MsgCutGrad && m.Round == 7
			}}
		}
		serverConns[k] = sEnd
		platformConns[k] = cEnd
		pc := PlatformConfig{
			ID: k, Front: fronts[k], Opt: &nn.SGD{LR: 0.05}, Loss: nn.SoftmaxCrossEntropy{},
			Shard: flat.Subset(shards[k]), Batch: 8, Rounds: rounds,
			L1SyncEvery: 4, Seed: uint64(300 + k),
		}
		if k == recoveryVictim {
			pc.RejoinWindow = 30 * time.Second
			pc.Redial = func() (transport.Conn, error) {
				<-gate
				sEnd2, pEnd2, derr := net.Redial(recoveryVictim)
				if derr != nil {
					return nil, derr
				}
				go broker.Offer(sEnd2)
				return pEnd2, nil
			}
		}
		p, perr := NewPlatform(pc)
		if perr != nil {
			t.Fatal(perr)
		}
		platforms[k] = p
	}
	stats, err := RunConnected(srv, platforms, serverConns, platformConns)
	if err != nil {
		t.Fatal(err)
	}
	params := make([][]*nn.Param, 0, K+1)
	for k := 0; k < K; k++ {
		params = append(params, fronts[k].Params())
	}
	return append(params, back.Params()), stats
}

// A pipelined session under a tight I/O goroutine budget (only some
// connections get dedicated reader/writer goroutines) must remain
// bit-identical to sequential at depth 1 — the budget only trades
// overlap, never semantics — and must leak nothing.
func TestPipelinedIOGoroutineBudgetBitIdentical(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const K, rounds = 5, 8
	run := func(mode RoundMode, budget int) [][]*nn.Param {
		train, _ := testData(t, 4, 300, 60, 91)
		flat := flatten(train)
		in := flat.X.Dim(1)
		fronts, back := buildFronts(t, 311, K, in, 4)
		shards := dataset.ShardIID(flat.Len(), K, rng.New(92))
		srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
			c.Mode = mode
			if mode == RoundModePipelined {
				c.PipelineDepth = 1
				c.IOGoroutineBudget = budget
			}
		})
		platforms := make([]*Platform, K)
		for k := 0; k < K; k++ {
			platforms[k] = defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, nil)
		}
		if _, err := RunLocal(srv, platforms); err != nil {
			t.Fatal(err)
		}
		params := make([][]*nn.Param, 0, K+1)
		for k := 0; k < K; k++ {
			params = append(params, fronts[k].Params())
		}
		return append(params, back.Params())
	}
	ref := run(RoundModeSequential, 0)
	for _, budget := range []int{1, 4, 6, 2 * K} {
		got := run(RoundModePipelined, budget)
		assertParamsBitIdentical(t, fmt.Sprintf("pipelined budget=%d vs sequential", budget), ref, got)
	}
}

// The budget knob is validated: negative values and non-pipelined use
// are rejected.
func TestIOGoroutineBudgetValidation(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 174)
	flat := flatten(train)
	_, back := buildSplitMLP(t, 731, flat.X.Dim(1), 2)
	mk := func(mut func(*ServerConfig)) error {
		cfg := ServerConfig{Back: back, Opt: &nn.SGD{}, Platforms: 1, Rounds: 1}
		mut(&cfg)
		_, err := NewServer(cfg)
		return err
	}
	if err := mk(func(c *ServerConfig) { c.IOGoroutineBudget = -1 }); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative budget: %v, want ErrConfig", err)
	}
	if err := mk(func(c *ServerConfig) { c.IOGoroutineBudget = 4 }); !errors.Is(err, ErrConfig) {
		t.Fatalf("budget without pipelined mode: %v, want ErrConfig", err)
	}
	if err := mk(func(c *ServerConfig) {
		c.Mode = RoundModePipelined
		c.IOGoroutineBudget = 4
	}); err != nil {
		t.Fatalf("valid budget rejected: %v", err)
	}
}
