package core

import "fmt"

// This file is the session layer: one explicit state machine for the
// split-learning protocol that both parties — and every scheduling
// mode — drive. Before the refactor each party had a monolithic round
// loop (and the pipelined variant a third), with the schedule logic
// (when to train, sync L1, evaluate, stop) duplicated and interleaved
// with wire I/O. Now the schedule is a value (sessionPlan), the
// protocol position is a value (Session), and the round modes are
// schedulers that decide only HOW a train phase moves bytes, never
// WHAT the next phase is. Checkpointing and dropout recovery both
// hang off this machine: a checkpoint is a serialization of the
// session position plus party state at a round boundary, and a rejoin
// is a negotiation that re-enters the machine at an agreed position.

// SessionState names a phase of the split-learning session. The
// sequence for a run of R rounds is:
//
//	Handshake → { Train → [L1Sync] → [Eval] }×R → Done
//
// with L1Sync and Eval appearing on the rounds the plan schedules
// them (always in that order, matching the paper's Fig. 3 flow).
type SessionState uint8

// Session states.
const (
	StateHandshake SessionState = iota + 1
	StateTrain
	StateL1Sync
	StateEval
	StateDone
)

// String names the state for diagnostics.
func (s SessionState) String() string {
	switch s {
	case StateHandshake:
		return "handshake"
	case StateTrain:
		return "train"
	case StateL1Sync:
		return "l1sync"
	case StateEval:
		return "eval"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// sessionPlan is the deterministic schedule both parties derive from
// their configurations (and validate equal at the handshake): which
// rounds run, and which of them carry an L1 sync or an evaluation
// phase. It is pure data — both ends computing the same plan is what
// keeps a geo-distributed session in lockstep without a coordinator.
type sessionPlan struct {
	start  int // first round to execute (> 0 when resuming a checkpoint)
	rounds int // total rounds; rounds in [start, rounds) execute

	l1SyncEvery int
	evalEvery   int
}

// syncRound reports whether round r ends with an L1 weight sync.
func (p sessionPlan) syncRound(r int) bool {
	return p.l1SyncEvery > 0 && (r+1)%p.l1SyncEvery == 0
}

// evalRound reports whether round r ends with an evaluation phase.
// The final round always evaluates when evaluation is on.
func (p sessionPlan) evalRound(r int) bool {
	if p.evalEvery <= 0 {
		return false
	}
	return (r+1)%p.evalEvery == 0 || r == p.rounds-1
}

// Session tracks a party's position in the protocol: the current
// state and the current round. Both the server and each platform hold
// one; the schedulers (sequential, concat, pipelined; plain and
// overlapped platform loops) advance it identically, which is the
// lockstep invariant the handshake establishes.
type Session struct {
	plan  sessionPlan
	state SessionState
	round int
}

// newSession starts a session at the handshake, positioned on the
// plan's first round.
func newSession(plan sessionPlan) *Session {
	return &Session{plan: plan, state: StateHandshake, round: plan.start}
}

// State returns the current phase.
func (s *Session) State() SessionState { return s.state }

// Round returns the round the session is positioned on. Meaningful in
// Train/L1Sync/Eval; after Done it holds the last executed round + 1.
func (s *Session) Round() int { return s.round }

// Advance moves to the next phase per the plan and returns it.
// Advancing past the last phase of the last round reaches StateDone;
// advancing from StateDone stays there.
func (s *Session) Advance() SessionState {
	switch s.state {
	case StateHandshake:
		if s.round >= s.plan.rounds {
			s.state = StateDone
			break
		}
		s.state = StateTrain
	case StateTrain:
		switch {
		case s.plan.syncRound(s.round):
			s.state = StateL1Sync
		case s.plan.evalRound(s.round):
			s.state = StateEval
		default:
			s.nextRound()
		}
	case StateL1Sync:
		if s.plan.evalRound(s.round) {
			s.state = StateEval
		} else {
			s.nextRound()
		}
	case StateEval:
		s.nextRound()
	case StateDone:
	}
	return s.state
}

// nextRound crosses a round boundary: the following round's Train
// phase, or Done after the last round.
func (s *Session) nextRound() {
	s.round++
	if s.round >= s.plan.rounds {
		s.state = StateDone
		return
	}
	s.state = StateTrain
}

// SkipTo jumps the session to the Train phase of round r — how a
// platform that was disconnected while the server proceeded without it
// realigns after a rejoin. Jumping backwards or past the end is a
// protocol violation.
func (s *Session) SkipTo(r int) error {
	if r < s.round || r >= s.plan.rounds {
		return fmt.Errorf("%w: skip to round %d from round %d of %d", ErrProtocol, r, s.round, s.plan.rounds)
	}
	s.round = r
	s.state = StateTrain
	return nil
}

// PlatformStatus is the server's view of one platform's connection.
type PlatformStatus uint8

// Platform connection states.
const (
	// PlatformActive: connected and in lockstep with the session.
	PlatformActive PlatformStatus = iota + 1
	// PlatformDropped: the connection died and the server is proceeding
	// without the platform (ProceedWithout policy); it may rejoin at a
	// later round boundary.
	PlatformDropped
	// PlatformDone: the platform completed the session and said Bye.
	PlatformDone
)

// String names the status.
func (s PlatformStatus) String() string {
	switch s {
	case PlatformActive:
		return "active"
	case PlatformDropped:
		return "dropped"
	case PlatformDone:
		return "done"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}
