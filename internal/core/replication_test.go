package core

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"medsplit/internal/dataset"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/transport/testutil"
	"medsplit/internal/wal"
	"medsplit/internal/wire"
)

// ---------------------------------------------------------------------------
// Record codec and delta algebra

func TestStepRecordRoundTrip(t *testing.T) {
	a := tensor.FromSlice([]float32{1.5, -2.25, float32(math.NaN()), 0}, 2, 2)
	b := tensor.FromSlice([]float32{3e-39, -0}, 2) // denormal and signed zero
	rec := &stepRecord{
		round:    7,
		platform: 1,
		batch:    8,
		lossFlag: true,
		scalars:  []uint64{3, math.Float64bits(0.05), 42, 0},
		deltas:   []*tensor.Tensor{a, b},
		cut:      []byte{9, 8, 7, 6, 5},
	}
	got, err := decodeStepRecord(encodeStepRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.round != rec.round || got.platform != rec.platform || got.batch != rec.batch || got.lossFlag != rec.lossFlag {
		t.Fatalf("header fields: got %+v", got)
	}
	if len(got.scalars) != len(rec.scalars) {
		t.Fatalf("scalars: got %v", got.scalars)
	}
	for i, v := range rec.scalars {
		if got.scalars[i] != v {
			t.Fatalf("scalar %d: got %d, want %d", i, got.scalars[i], v)
		}
	}
	if len(got.deltas) != 2 {
		t.Fatalf("deltas: got %d tensors", len(got.deltas))
	}
	for i, want := range rec.deltas {
		d := got.deltas[i].Data()
		w := want.Data()
		for j := range w {
			if math.Float32bits(d[j]) != math.Float32bits(w[j]) {
				t.Fatalf("delta %d[%d]: bits %x, want %x", i, j, math.Float32bits(d[j]), math.Float32bits(w[j]))
			}
		}
	}
	if string(got.cut) != string(rec.cut) {
		t.Fatalf("cut: got %v", got.cut)
	}

	// A record with no scalars, no deltas and no cut still round-trips.
	empty := &stepRecord{round: 0, platform: 0}
	if _, err := decodeStepRecord(encodeStepRecord(empty)); err != nil {
		t.Fatalf("empty record: %v", err)
	}
}

func TestStepRecordDecodeErrors(t *testing.T) {
	good := encodeStepRecord(&stepRecord{
		round: 1, platform: 0, scalars: []uint64{7},
		deltas: []*tensor.Tensor{tensor.FromSlice([]float32{1, 2}, 2)},
		cut:    []byte{1, 2, 3},
	})
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"short header", good[:10]},
		{"wrong kind", append([]byte{replKindBase}, good[1:]...)},
		{"truncated scalars", good[:19]},
		{"truncated delta block", good[:len(good)-8]},
		{"trailing garbage", append(append([]byte(nil), good...), 0xFF)},
	}
	for _, tc := range cases {
		if _, err := decodeStepRecord(tc.buf); err == nil {
			t.Errorf("%s: decode accepted a malformed record", tc.name)
		}
	}
}

func TestXorDeltasReversible(t *testing.T) {
	r := rng.New(99)
	randT := func(shape ...int) *tensor.Tensor {
		x := tensor.New(shape...)
		d := x.Data()
		for i := range d {
			d[i] = math.Float32frombits(uint32(r.Uint64()))
		}
		return x
	}
	prev := []*tensor.Tensor{randT(3, 4), randT(7)}
	// cur has one extra tensor: the lazily-allocated optimizer buffer case.
	cur := []*tensor.Tensor{randT(3, 4), randT(7), randT(2, 2)}

	deltas, err := xorDeltas(cur, prev)
	if err != nil {
		t.Fatal(err)
	}
	// Replica side: state = prev, apply the deltas.
	state := []*tensor.Tensor{prev[0].Clone(), prev[1].Clone()}
	for i, d := range deltas {
		if i < len(state) {
			xorInto(state[i], d)
		} else {
			state = append(state, d)
		}
	}
	if len(state) != len(cur) {
		t.Fatalf("replica has %d tensors, want %d", len(state), len(cur))
	}
	for i := range cur {
		a, b := state[i].Data(), cur[i].Data()
		for j := range b {
			if math.Float32bits(a[j]) != math.Float32bits(b[j]) {
				t.Fatalf("tensor %d[%d]: bits %x, want %x", i, j, math.Float32bits(a[j]), math.Float32bits(b[j]))
			}
		}
	}

	// Shrinking or reshaping state is a refused corruption, not a delta.
	if _, err := xorDeltas(prev, cur); err == nil {
		t.Fatal("xorDeltas accepted shrinking state")
	}
	if _, err := xorDeltas([]*tensor.Tensor{randT(4, 3), randT(7)}, prev); err == nil {
		t.Fatal("xorDeltas accepted a shape change")
	}
}

func TestResumePoint(t *testing.T) {
	cases := []struct {
		name      string
		lastRound []int
		wantRound int
		wantDone  []bool
	}{
		{"round complete", []int{5, 5}, 6, []bool{false, false}},
		{"mid round", []int{5, 4}, 5, []bool{true, false}},
		{"nothing recorded", []int{-1, -1}, 0, []bool{false, false}},
		{"first platform only", []int{0, -1}, 0, []bool{true, false}},
		{"three way prefix", []int{3, 3, 2}, 3, []bool{true, true, false}},
	}
	for _, tc := range cases {
		rs := newReplicaState(len(tc.lastRound))
		copy(rs.lastRound, tc.lastRound)
		round, done := rs.resumePoint()
		if round != tc.wantRound {
			t.Errorf("%s: round %d, want %d", tc.name, round, tc.wantRound)
		}
		for k := range tc.wantDone {
			if done[k] != tc.wantDone[k] {
				t.Errorf("%s: done[%d]=%v, want %v", tc.name, k, done[k], tc.wantDone[k])
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Configuration validation

func TestReplicationConfigValidation(t *testing.T) {
	train, _ := testData(t, 2, 16, 4, 174)
	flat := flatten(train)
	_, back := buildSplitMLP(t, 731, flat.X.Dim(1), 2)
	log := openTestWAL(t, "valid")
	broker := NewRejoinBroker()
	defer broker.Close()

	mk := func(mut func(*ServerConfig)) error {
		cfg := ServerConfig{
			Back: back, Opt: &nn.SGD{}, Platforms: 1, Rounds: 1,
			Replication: &ReplicationConfig{Log: log},
		}
		if mut != nil {
			mut(&cfg)
		}
		_, err := NewServer(cfg)
		return err
	}
	if err := mk(nil); err != nil {
		t.Fatalf("valid replication config rejected: %v", err)
	}
	if err := mk(func(c *ServerConfig) { c.Replication = &ReplicationConfig{} }); err == nil {
		t.Fatal("replication without a WAL accepted")
	}
	if err := mk(func(c *ServerConfig) { c.Mode = RoundModeConcat }); err == nil {
		t.Fatal("replication with concat mode accepted")
	}

	if _, err := NewFollower(FollowerConfig{Platforms: 0, Conn: nil, Log: log}); err == nil {
		t.Fatal("follower with zero platforms accepted")
	}
	s, c := transport.Pipe()
	defer s.Close()
	defer c.Close()
	if _, err := NewFollower(FollowerConfig{Platforms: 1, Conn: c}); err == nil {
		t.Fatal("follower without a WAL accepted")
	}
	f, err := NewFollower(FollowerConfig{Platforms: 1, Conn: c, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	// Promoting before bootstrap must refuse.
	if _, _, err := f.Promote(PromoteConfig{Broker: broker, Window: time.Second}); err == nil {
		t.Fatal("promotion before bootstrap accepted")
	}
	// A dead stream before the bootstrap is an error, not a clean end.
	s.Close()
	if err := f.Run(); err == nil {
		t.Fatal("follower stream death before bootstrap reported success")
	}
}

func openTestWAL(t *testing.T, name string) *wal.Log {
	t.Helper()
	log, err := wal.Open(filepath.Join(t.TempDir(), name), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	return log
}

// ---------------------------------------------------------------------------
// Differential failover harness

// leaderKiller emulates the leader process dying at one scripted wire
// operation: when the trigger matches, every connection the leader
// holds — all platform links and the follower stream — closes at once
// and the send errors.
type leaderKiller struct {
	transport.Conn
	trigger func(*wire.Message) bool
	kill    func()
	fired   bool
}

func (c *leaderKiller) Send(m *wire.Message) error {
	if !c.fired && c.trigger(m) {
		c.fired = true
		c.kill()
		return fmt.Errorf("failover test: leader died on %s r%d", m.Type, m.Round)
	}
	return c.Conn.Send(m)
}

// failoverOpts configures one replicated session (optionally killed).
type failoverOpts struct {
	rounds      int
	pipelined   bool // leader runs RoundModePipelined at depth 1
	l1SyncEvery int
	ckptEvery   int // exercises checkpoint-boundary WAL compaction
	// kill, when non-nil, names the leader's outbound message that
	// kills it (k is the destination platform).
	kill func(k int, m *wire.Message) bool
}

// failoverResult is what a replicated run leaves behind.
type failoverResult struct {
	params    [][]*nn.Param // fronts..., back (the surviving server's)
	stats     []*PlatformStats
	leaderWAL string  // leader's WAL dir, log closed
	leader    *Server // nil if the leader was killed
}

// failoverRun executes a 2-platform replicated session with one warm
// follower. Without a kill the leader finishes and its back half is the
// result; with one, the leader dies mid-training, the follower promotes
// and finishes the session, and the promoted back half is the result.
// All seeds match recoveryRun, so its baselines compare bit for bit.
func failoverRun(t *testing.T, o failoverOpts) failoverResult {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	const K = 2
	train, _ := testData(t, 4, 240, 60, 171)
	flat := flatten(train)
	in := flat.X.Dim(1)
	fronts, back := buildFronts(t, 711, K, in, 4)
	// The follower's own back half: same architecture, different init —
	// bootstrap and replay must fully overwrite it.
	_, followerBack := buildSplitMLP(t, 712, in, 4)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(172))

	leaderWALDir := filepath.Join(t.TempDir(), "leader-wal")
	leaderLog, err := wal.Open(leaderWALDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderLog.Close()
	followerLog := openTestWAL(t, "follower-wal")

	streamLeader, streamFollower := transport.Pipe()
	follower, err := NewFollower(FollowerConfig{Platforms: K, Conn: streamFollower, Log: followerLog})
	if err != nil {
		t.Fatal(err)
	}

	broker := NewRejoinBroker()
	defer broker.Close()

	scfg := ServerConfig{
		Back: back, Opt: &nn.SGD{LR: 0.05}, Platforms: K, Rounds: o.rounds,
		L1SyncEvery: o.l1SyncEvery,
		Replication: &ReplicationConfig{Log: leaderLog, Followers: []transport.Conn{streamLeader}},
	}
	if o.ckptEvery > 0 {
		scfg.CheckpointEvery = o.ckptEvery
		scfg.CheckpointDir = t.TempDir()
	}
	if o.pipelined {
		scfg.Mode = RoundModePipelined
		scfg.PipelineDepth = 1
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}

	rawServer := make([]transport.Conn, K)
	serverConns := make([]transport.Conn, K)
	platformConns := make([]transport.Conn, K)
	platforms := make([]*Platform, K)
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			for _, c := range rawServer {
				c.Close()
			}
			streamLeader.Close()
		})
	}
	for k := 0; k < K; k++ {
		sEnd, cEnd := transport.Pipe()
		rawServer[k] = sEnd
		serverConns[k] = sEnd
		if o.kill != nil {
			kk := k
			serverConns[k] = &leaderKiller{
				Conn:    sEnd,
				trigger: func(m *wire.Message) bool { return o.kill(kk, m) },
				kill:    kill,
			}
		}
		platformConns[k] = cEnd
		pc := PlatformConfig{
			ID: k, Front: fronts[k], Opt: &nn.SGD{LR: 0.05}, Loss: nn.SoftmaxCrossEntropy{},
			Shard: flat.Subset(shards[k]), Batch: 8, Rounds: o.rounds,
			L1SyncEvery: o.l1SyncEvery, Seed: uint64(300 + k),
			RejoinWindow: 30 * time.Second,
			Redial: func() (transport.Conn, error) {
				s2, c2 := transport.Pipe()
				go broker.Offer(s2)
				return c2, nil
			},
		}
		p, perr := NewPlatform(pc)
		if perr != nil {
			t.Fatal(perr)
		}
		platforms[k] = p
	}

	// Leader: a clean finish ends the replication stream; a death takes
	// every connection the process held down with it.
	leaderErr := make(chan error, 1)
	go func() {
		err := srv.Serve(serverConns)
		if err != nil {
			kill()
		}
		streamLeader.Close()
		leaderErr <- err
	}()

	// Follower: consume the stream; when the leader dies, promote and
	// finish the session.
	standbyErr := make(chan error, 1)
	go func() {
		if err := follower.Run(); err != nil {
			standbyErr <- fmt.Errorf("follower: %w", err)
			return
		}
		if o.kill == nil {
			standbyErr <- nil
			return
		}
		promoted, conns, err := follower.Promote(PromoteConfig{
			Server: ServerConfig{
				Back: followerBack, Opt: &nn.SGD{LR: 0.05}, Platforms: K,
				Rounds: o.rounds, L1SyncEvery: o.l1SyncEvery,
			},
			Broker: broker,
			Window: 30 * time.Second,
		})
		if err != nil {
			standbyErr <- fmt.Errorf("promote: %w", err)
			return
		}
		if err := promoted.Serve(conns); err != nil {
			standbyErr <- fmt.Errorf("promoted server: %w", err)
			return
		}
		for _, c := range conns {
			c.Close()
		}
		standbyErr <- nil
	}()

	stats := make([]*PlatformStats, K)
	perrs := make([]error, K)
	var wg sync.WaitGroup
	wg.Add(K)
	for k := 0; k < K; k++ {
		k := k
		go func() {
			defer wg.Done()
			st, err := platforms[k].Run(platformConns[k])
			if err != nil {
				perrs[k] = fmt.Errorf("platform %d: %w", k, err)
				platformConns[k].Close()
				return
			}
			stats[k] = st
		}()
	}
	wg.Wait()
	lerr := <-leaderErr
	serr := <-standbyErr
	streamFollower.Close()
	for _, c := range rawServer {
		c.Close()
	}

	if err := errors.Join(append(perrs, serr)...); err != nil {
		t.Fatal(err)
	}
	if o.kill == nil && lerr != nil {
		t.Fatalf("leader: %v", lerr)
	}
	if o.kill != nil && lerr == nil {
		t.Fatal("the scripted kill never fired: the leader finished cleanly")
	}

	res := failoverResult{stats: stats, leaderWAL: leaderWALDir}
	for k := 0; k < K; k++ {
		res.params = append(res.params, fronts[k].Params())
	}
	if o.kill == nil {
		res.params = append(res.params, back.Params())
		res.leader = srv
	} else {
		res.params = append(res.params, followerBack.Params())
	}
	return res
}

// killOn scripts the leader's death on one outbound message.
func killOn(platform int, msg wire.MsgType, round int) func(int, *wire.Message) bool {
	return func(k int, m *wire.Message) bool {
		return k == platform && m.Type == msg && int(m.Round) == round
	}
}

// Replication must be trajectory-transparent: a replicated session with
// a healthy leader lands on exactly the weights an unreplicated one
// does.
func TestReplicationTransparent(t *testing.T) {
	const rounds = 10
	baseline, _ := recoveryRun(t, recoveryOpts{rounds: rounds})
	res := failoverRun(t, failoverOpts{rounds: rounds})
	assertParamsBitIdentical(t, "replicated healthy run", baseline, res.params)
}

// The headline guarantee: the leader is killed mid-training, the warm
// follower promotes, every platform re-homes to it, and the finished
// session's weights are bit-identical to an undisturbed run. Each case
// lands the death at a different point of the record grammar, covering
// both reconciliation arms (replay the recorded-but-undelivered cut
// gradient; re-enter the round from the platform's stage cache) and the
// mid-round resume that skips already-recorded steps.
func TestFailoverBitIdentical(t *testing.T) {
	const rounds = 10
	baseline, _ := recoveryRun(t, recoveryOpts{rounds: rounds})

	cases := []struct {
		name string
		o    failoverOpts
	}{
		{"die sending cut-grad to platform 0 (mid-round resume + cut replay)",
			failoverOpts{rounds: rounds, kill: killOn(0, wire.MsgCutGrad, 5)}},
		{"die sending cut-grad to platform 1 (round complete + cut replay)",
			failoverOpts{rounds: rounds, kill: killOn(1, wire.MsgCutGrad, 5)}},
		{"die sending logits to platform 0 (no step recorded, both re-enter)",
			failoverOpts{rounds: rounds, kill: killOn(0, wire.MsgLogits, 5)}},
		{"pipelined depth-1 leader dies on cut-grad",
			failoverOpts{rounds: rounds, pipelined: true, kill: killOn(1, wire.MsgCutGrad, 5)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := failoverRun(t, tc.o)
			assertParamsBitIdentical(t, tc.name, baseline, res.params)
			for k, st := range res.stats {
				if len(st.Rounds) != rounds {
					t.Fatalf("platform %d trained %d rounds, want %d", k, len(st.Rounds), rounds)
				}
			}
		})
	}
}

// Failover composed with L1-sync weight averaging and checkpoint-driven
// WAL compaction: the promoted server's sync weighting (primed from the
// replicated lastBatch bookkeeping) and a log that was compacted at the
// round-4 checkpoint must still land bit-identically.
func TestFailoverWithSyncAndCompaction(t *testing.T) {
	const rounds = 10
	baseline, _ := recoveryRun(t, recoveryOpts{rounds: rounds, l1SyncEvery: 4})
	res := failoverRun(t, failoverOpts{
		rounds: rounds, l1SyncEvery: 4, ckptEvery: 4,
		kill: killOn(0, wire.MsgCutGrad, 6),
	})
	assertParamsBitIdentical(t, "failover with sync and compaction", baseline, res.params)
}

// A finished leader's WAL replays offline into exactly the live final
// state — the leader-restart recovery path, including replay across the
// compaction the round-8 checkpoint performed.
func TestRecoverServerStateFromWAL(t *testing.T) {
	const rounds = 10
	res := failoverRun(t, failoverOpts{rounds: rounds, ckptEvery: 4})

	log, err := wal.Open(res.leaderWAL, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	snap, err := RecoverServerState(log, 2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NextRound != rounds {
		t.Fatalf("recovered NextRound %d, want %d", snap.NextRound, rounds)
	}
	live := res.leader.Snapshot(rounds)
	if len(snap.Tensors) != len(live.Tensors) {
		t.Fatalf("recovered %d tensors, live has %d", len(snap.Tensors), len(live.Tensors))
	}
	for i := range live.Tensors {
		a, b := snap.Tensors[i].Data(), live.Tensors[i].Data()
		for j := range b {
			if math.Float32bits(a[j]) != math.Float32bits(b[j]) {
				t.Fatalf("tensor %d[%d]: recovered bits %x, live %x", i, j, math.Float32bits(a[j]), math.Float32bits(b[j]))
			}
		}
	}
	if len(snap.Scalars) != len(live.Scalars) {
		t.Fatalf("recovered %d scalars, live has %d", len(snap.Scalars), len(live.Scalars))
	}
	for i := range live.Scalars {
		if snap.Scalars[i] != live.Scalars[i] {
			t.Fatalf("scalar %d: recovered %d, live %d", i, snap.Scalars[i], live.Scalars[i])
		}
	}
}
