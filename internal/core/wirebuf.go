package core

import (
	"medsplit/internal/tensor"
	"medsplit/internal/wire"
)

// This file holds the engine's side of the zero-allocation wire path:
// per-call-site pooled encode buffers and per-connection decode scratch.
// Encode buffers are drawn from the process-wide wire.Buffers pool and
// handed to the transport with the message (the receiver releases them
// after decode — see the ownership rules on wire.BufferPool); decoded
// tensors live in scratch slices owned by the protocol loops, reused
// round after round once shapes stabilize.

// payloadSizer remembers the largest payload a call site has produced
// so the next round's pooled buffer is already big enough and the
// append inside the codec never reallocates. One sizer per message
// site; the high-water mark covers per-platform batch-size skew.
type payloadSizer struct{ max int }

// encode packs ts through codec into a pooled buffer.
func (ps *payloadSizer) encode(codec wire.Codec, ts ...*tensor.Tensor) []byte {
	buf := wire.EncodeInto(codec, wire.Buffers.Get(ps.max), ts...)
	if len(buf) > ps.max {
		ps.max = len(buf)
	}
	return buf
}

// encodeLabels packs a label vector into a pooled buffer.
func (ps *payloadSizer) encodeLabels(labels []int) []byte {
	buf := wire.EncodeLabelsInto(wire.Buffers.Get(ps.max), labels)
	if len(buf) > ps.max {
		ps.max = len(buf)
	}
	return buf
}

// releasePayload recycles a fully decoded inbound payload. Only the
// four per-connection training messages go through here — broadcast
// payloads (L1 sync) must never be released by their receivers.
func releasePayload(m *wire.Message) {
	wire.ReleasePayload(&wire.Buffers, m)
}
