package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"medsplit/internal/atomicfile"
	"medsplit/internal/dataset"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/wire"
)

// Checkpoint/restore for split-learning sessions. A Snapshot captures
// everything a party needs to resume training at a round boundary with
// a bit-identical trajectory: model weights and normalization state,
// optimizer state (momentum/Adam buffers), the RNG streams behind the
// minibatch sampler and data augmentation, the sampler's epoch
// permutation and cursor, and the session's round counter. The
// differential tests in checkpoint_test.go enforce the guarantee: a
// run checkpointed at round r and resumed equals an uninterrupted run
// scalar for scalar.
//
// Serialization goes through the existing binary layers: tensors use
// the wire tensor-payload encoding (wire.EncodeTensors), scalars are
// little-endian uint64 bit patterns, and the whole snapshot is framed
// with a magic, a version byte and a CRC-32 so corruption and version
// skew fail fast (table-driven rejection tests + FuzzDecodeSnapshot
// hammer the decoder).
//
// Layout (little-endian):
//
//	magic "MSNP" | version u8 | role u8 | platform u32 | nextRound u32 |
//	scalarCount u32 | scalars u64×n | tensorBytes u32 | tensor payload |
//	crc32 over everything before it

// ErrBadSnapshot reports an unreadable, corrupt or mismatched session
// snapshot.
var ErrBadSnapshot = errors.New("core: bad snapshot")

// SnapshotRole identifies which party a snapshot belongs to.
type SnapshotRole uint8

// Snapshot roles.
const (
	RoleServer SnapshotRole = iota + 1
	RolePlatform
)

// String names the role.
func (r SnapshotRole) String() string {
	switch r {
	case RoleServer:
		return "server"
	case RolePlatform:
		return "platform"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

var snapshotMagic = [4]byte{'M', 'S', 'N', 'P'}

const snapshotVersion = 1

// Snapshot is one party's complete training state at a round boundary.
// Tensors are deep copies: a snapshot stays valid while the live
// session trains on. The scalar stream's layout is role-specific and
// private to the capture/restore pair; the container only guarantees
// framing and integrity.
type Snapshot struct {
	Role      SnapshotRole
	Platform  int // platform id; 0 for the server
	NextRound int // first round the resumed session will execute
	Scalars   []uint64
	Tensors   []*tensor.Tensor
}

// EncodeSnapshot serializes s.
func EncodeSnapshot(s *Snapshot) []byte {
	tensorPayload := wire.EncodeTensors(s.Tensors...)
	size := 4 + 1 + 1 + 4 + 4 + 4 + 8*len(s.Scalars) + 4 + len(tensorPayload) + 4
	buf := make([]byte, 0, size)
	buf = append(buf, snapshotMagic[:]...)
	buf = append(buf, snapshotVersion, byte(s.Role))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Platform))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.NextRound))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Scalars)))
	for _, v := range s.Scalars {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tensorPayload)))
	buf = append(buf, tensorPayload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeSnapshot parses a snapshot, validating framing, version, role
// and the CRC before touching any content.
func DecodeSnapshot(buf []byte) (*Snapshot, error) {
	const headerSize = 4 + 1 + 1 + 4 + 4 + 4
	if len(buf) < headerSize+4+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrBadSnapshot, len(buf))
	}
	if [4]byte{buf[0], buf[1], buf[2], buf[3]} != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if buf[4] != snapshotVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadSnapshot, buf[4], snapshotVersion)
	}
	role := SnapshotRole(buf[5])
	if role != RoleServer && role != RolePlatform {
		return nil, fmt.Errorf("%w: unknown role %d", ErrBadSnapshot, buf[5])
	}
	body, crcBytes := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	s := &Snapshot{
		Role:      role,
		Platform:  int(binary.LittleEndian.Uint32(buf[6:])),
		NextRound: int(binary.LittleEndian.Uint32(buf[10:])),
	}
	rest := body[headerSize:]
	nScalars := int(binary.LittleEndian.Uint32(buf[14:]))
	if len(rest) < 8*nScalars+4 {
		return nil, fmt.Errorf("%w: %d scalars overflow %d bytes", ErrBadSnapshot, nScalars, len(rest))
	}
	if nScalars > 0 {
		s.Scalars = make([]uint64, nScalars)
		for i := range s.Scalars {
			s.Scalars[i] = binary.LittleEndian.Uint64(rest[8*i:])
		}
	}
	rest = rest[8*nScalars:]
	tensorBytes := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if tensorBytes != len(rest) {
		return nil, fmt.Errorf("%w: tensor block %d bytes, %d remain", ErrBadSnapshot, tensorBytes, len(rest))
	}
	ts, err := wire.DecodeTensors(rest)
	if err != nil {
		return nil, fmt.Errorf("%w: tensor block: %v", ErrBadSnapshot, err)
	}
	s.Tensors = ts
	return s, nil
}

// SaveSnapshotFile writes a snapshot through the shared
// fsync-then-rename helper, so a crash mid-save never corrupts the
// previous checkpoint and the install survives a power cut.
func SaveSnapshotFile(path string, s *Snapshot) error {
	if err := atomicfile.WriteFile(path, EncodeSnapshot(s)); err != nil {
		return fmt.Errorf("core: saving snapshot: %w", err)
	}
	return nil
}

// LoadSnapshotFile reads and decodes a snapshot from disk.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading snapshot: %w", err)
	}
	return DecodeSnapshot(buf)
}

// ServerSnapshotPath names the server's legacy single-slot
// scheduled-checkpoint file inside a checkpoint directory. New writes
// go to numbered generation files (ServerSnapshotGenPath); this path
// stays readable so checkpoint directories from before retained
// history still resume.
func ServerSnapshotPath(dir string) string { return filepath.Join(dir, "server.ckpt") }

// ServerSnapshotGenPath names one retained server checkpoint
// generation. The generation number is the snapshot's NextRound, so
// the filename states exactly which boundary it captures — and WAL
// compaction can anchor to any retained generation, not only the
// newest one.
func ServerSnapshotGenPath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("server-%06d.ckpt", gen))
}

// serverSnapshotGens lists the retained generation numbers in dir,
// ascending. Unparsable lookalike names are ignored rather than fatal:
// a checkpoint directory is user-managed space.
func serverSnapshotGens(dir string) []int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var gens []int
	for _, e := range ents {
		var gen int
		if n, err := fmt.Sscanf(e.Name(), "server-%d.ckpt", &gen); n == 1 && err == nil {
			gens = append(gens, gen)
		}
	}
	sort.Ints(gens)
	return gens
}

// SaveServerSnapshotGen writes s as a numbered generation and prunes
// the oldest generations beyond retain (retain <= 0 keeps everything).
// The legacy single-slot file and the abort stash are never pruned.
func SaveServerSnapshotGen(dir string, s *Snapshot, retain int) error {
	if s.Role != RoleServer {
		return fmt.Errorf("%w: generation files hold server snapshots, got %s", ErrBadSnapshot, s.Role)
	}
	if err := SaveSnapshotFile(ServerSnapshotGenPath(dir, s.NextRound), s); err != nil {
		return err
	}
	if retain <= 0 {
		return nil
	}
	gens := serverSnapshotGens(dir)
	for len(gens) > retain {
		if err := os.Remove(ServerSnapshotGenPath(dir, gens[0])); err != nil {
			return fmt.Errorf("core: pruning snapshot generation %d: %w", gens[0], err)
		}
		gens = gens[1:]
	}
	return nil
}

// PlatformSnapshotPath names platform id's scheduled-checkpoint file
// inside a checkpoint directory.
func PlatformSnapshotPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("platform-%d.ckpt", id))
}

// Stop/abort writes land in separate stash files so they can never
// clobber the last scheduled checkpoint: a scheduled set is always a
// matched pair across parties (same CheckpointEvery schedule), while a
// stash records whatever boundary each party reached when the session
// died. Keeping them apart means a crash can only ADD information,
// never destroy the last known-good resumable set.

// ServerStashPath names the server's abort/stop snapshot file.
func ServerStashPath(dir string) string { return filepath.Join(dir, "server.stash.ckpt") }

// PlatformStashPath names platform id's abort/stop snapshot file.
func PlatformStashPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("platform-%d.stash.ckpt", id))
}

// LoadLatestSnapshot loads a party's most advanced snapshot from a
// checkpoint directory. For the server the candidate set is the legacy
// single-slot file, every retained numbered generation, and the abort
// stash; for platforms it is the scheduled checkpoint and the stash.
// The candidate with the highest NextRound wins, ties preferring the
// stash (matching the pre-generation behavior). Parties that all died
// in the same round agree on their stash boundaries, so independent
// processes resolving "latest" independently still converge; a
// genuinely mixed state surfaces as a start-round mismatch at the
// handshake instead of silent divergence.
func LoadLatestSnapshot(dir string, role SnapshotRole, platform int) (*Snapshot, error) {
	// Candidate paths in ascending preference: a later entry wins ties.
	var paths []string
	if role == RoleServer {
		paths = append(paths, ServerSnapshotPath(dir))
		for _, gen := range serverSnapshotGens(dir) {
			paths = append(paths, ServerSnapshotGenPath(dir, gen))
		}
		paths = append(paths, ServerStashPath(dir))
	} else {
		paths = append(paths, PlatformSnapshotPath(dir, platform), PlatformStashPath(dir, platform))
	}
	var best *Snapshot
	var firstErr error
	for _, p := range paths {
		s, err := LoadSnapshotFile(p)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if best == nil || s.NextRound >= best.NextRound {
			best = s
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no snapshot for %s in %s: %v", role, dir, firstErr)
	}
	return best, nil
}

// cloneTensor deep-copies t.
func cloneTensor(t *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(t.Shape()...)
	out.CopyFrom(t)
	return out
}

// appendModelTensors appends deep copies of a model half's weights and
// stateful buffers (BatchNorm statistics).
func appendModelTensors(dst []*tensor.Tensor, net *nn.Sequential) []*tensor.Tensor {
	for _, p := range net.Params() {
		dst = append(dst, cloneTensor(p.W))
	}
	for _, st := range nn.CollectState(net) {
		dst = append(dst, cloneTensor(st))
	}
	return dst
}

// restoreModelTensors copies weights and stateful buffers back into a
// model half, consuming len(params)+len(state) tensors from ts.
func restoreModelTensors(net *nn.Sequential, ts []*tensor.Tensor) (rest []*tensor.Tensor, err error) {
	params := net.Params()
	state := nn.CollectState(net)
	if len(ts) < len(params)+len(state) {
		return nil, fmt.Errorf("%w: %d tensors for %d params + %d state", ErrBadSnapshot, len(ts), len(params), len(state))
	}
	for i, p := range params {
		if !tensor.SameShape(p.W, ts[i]) {
			return nil, fmt.Errorf("%w: param %q shape %v, want %v", ErrBadSnapshot, p.Name, ts[i].Shape(), p.W.Shape())
		}
	}
	for i, st := range state {
		if !tensor.SameShape(st, ts[len(params)+i]) {
			return nil, fmt.Errorf("%w: state %d shape %v, want %v", ErrBadSnapshot, i, ts[len(params)+i].Shape(), st.Shape())
		}
	}
	for i, p := range params {
		p.W.CopyFrom(ts[i])
	}
	for i, st := range state {
		st.CopyFrom(ts[len(params)+i])
	}
	return ts[len(params)+len(state):], nil
}

// RestoreServerModel copies a server snapshot's model weights and
// stateful buffers (BatchNorm statistics) into back, ignoring the
// optimizer state that follows them in the tensor stream. It is the
// serving-side restore: an inference tier wants the weights as of a
// checkpoint generation, not the trainer's momentum, and the back
// half it loads into has no optimizer attached.
func RestoreServerModel(back *nn.Sequential, snap *Snapshot) error {
	if snap.Role != RoleServer {
		return fmt.Errorf("%w: restoring a %s snapshot into a serving model", ErrBadSnapshot, snap.Role)
	}
	_, err := restoreModelTensors(back, snap.Tensors)
	return err
}

// appendOptimizer appends an optimizer's captured state: the scalar
// count, its scalars, and its tensors.
func appendOptimizer(scalars []uint64, tensors []*tensor.Tensor, opt nn.Optimizer, params []*nn.Param) ([]uint64, []*tensor.Tensor) {
	st := nn.CaptureOptimizerState(opt, params)
	scalars = append(scalars, uint64(len(st.Scalars)))
	scalars = append(scalars, st.Scalars...)
	return scalars, append(tensors, st.Tensors...)
}

// scalarCursor reads a snapshot's scalar stream with bounds checking.
type scalarCursor struct {
	s []uint64
	i int
}

func (c *scalarCursor) next() (uint64, error) {
	if c.i >= len(c.s) {
		return 0, fmt.Errorf("%w: scalar stream exhausted at index %d", ErrBadSnapshot, c.i)
	}
	v := c.s[c.i]
	c.i++
	return v, nil
}

func (c *scalarCursor) take(n int) ([]uint64, error) {
	if n < 0 || c.i+n > len(c.s) {
		return nil, fmt.Errorf("%w: scalar stream needs %d more values, has %d", ErrBadSnapshot, n, len(c.s)-c.i)
	}
	out := c.s[c.i : c.i+n]
	c.i += n
	return out, nil
}

// appendRNG appends an RNG snapshot as three scalars.
func appendRNG(scalars []uint64, s rng.Snapshot) []uint64 {
	has := uint64(0)
	if s.HasCachedNorm {
		has = 1
	}
	return append(scalars, s.State, math.Float64bits(s.CachedNorm), has)
}

// readRNG reads an RNG snapshot written by appendRNG.
func readRNG(c *scalarCursor) (rng.Snapshot, error) {
	vals, err := c.take(3)
	if err != nil {
		return rng.Snapshot{}, err
	}
	return rng.Snapshot{
		State:         vals[0],
		CachedNorm:    math.Float64frombits(vals[1]),
		HasCachedNorm: vals[2] != 0,
	}, nil
}

// Snapshot captures the server's complete state: the back half's
// weights and normalization buffers, the optimizer state, and the
// round counter. nextRound is the first round a resumed session will
// execute (i.e. the number of completed rounds).
func (s *Server) Snapshot(nextRound int) *Snapshot {
	snap := &Snapshot{Role: RoleServer, NextRound: nextRound}
	snap.Tensors = appendModelTensors(nil, s.cfg.Back)
	snap.Scalars, snap.Tensors = appendOptimizer(snap.Scalars, snap.Tensors, s.cfg.Opt, s.cfg.Back.Params())
	return snap
}

// RestoreSnapshot installs a server snapshot. The server must have
// been constructed with ServerConfig.StartRound equal to the
// snapshot's NextRound, so the resumed schedule (LR decay, sync and
// eval rounds) continues where the checkpoint left off.
func (s *Server) RestoreSnapshot(snap *Snapshot) error {
	if snap.Role != RoleServer {
		return fmt.Errorf("%w: restoring a %s snapshot into a server", ErrBadSnapshot, snap.Role)
	}
	if snap.NextRound != s.cfg.StartRound {
		return fmt.Errorf("%w: snapshot resumes at round %d, server configured to start at %d",
			ErrBadSnapshot, snap.NextRound, s.cfg.StartRound)
	}
	ts, err := restoreModelTensors(s.cfg.Back, snap.Tensors)
	if err != nil {
		return err
	}
	cur := &scalarCursor{s: snap.Scalars}
	if err := restoreOptimizer(cur, ts, s.cfg.Opt, s.cfg.Back.Params()); err != nil {
		return err
	}
	return nil
}

// restoreOptimizer consumes the optimizer section: its scalar count
// was written first; the remaining tensors all belong to it.
func restoreOptimizer(cur *scalarCursor, ts []*tensor.Tensor, opt nn.Optimizer, params []*nn.Param) error {
	n, err := cur.next()
	if err != nil {
		return err
	}
	optScalars, err := cur.take(int(n))
	if err != nil {
		return err
	}
	st := nn.OptimizerState{Scalars: optScalars, Tensors: ts}
	if err := nn.RestoreOptimizerState(opt, params, st); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return nil
}

// Snapshot captures the platform's complete state: the front half's
// weights and normalization buffers, the optimizer state, the
// minibatch sampler (epoch permutation, cursor, RNG), and the
// augmentation RNG when configured.
func (p *Platform) Snapshot(nextRound int) *Snapshot {
	snap := &Snapshot{Role: RolePlatform, Platform: p.cfg.ID, NextRound: nextRound}
	ss := p.sampler.Snapshot()
	snap.Scalars = append(snap.Scalars, uint64(ss.Cursor), uint64(ss.Epoch))
	snap.Scalars = appendRNG(snap.Scalars, ss.RNG)
	snap.Scalars = append(snap.Scalars, uint64(len(ss.Indices)))
	for _, idx := range ss.Indices {
		snap.Scalars = append(snap.Scalars, uint64(idx))
	}
	if p.cfg.Augment != nil {
		snap.Scalars = append(snap.Scalars, 1)
		snap.Scalars = appendRNG(snap.Scalars, p.cfg.Augment.RNGSnapshot())
	} else {
		snap.Scalars = append(snap.Scalars, 0)
	}
	snap.Tensors = appendModelTensors(nil, p.cfg.Front)
	snap.Scalars, snap.Tensors = appendOptimizer(snap.Scalars, snap.Tensors, p.cfg.Opt, p.cfg.Front.Params())
	return snap
}

// RestoreSnapshot installs a platform snapshot. The platform must have
// been constructed with PlatformConfig.StartRound equal to the
// snapshot's NextRound and over the same shard (the sampler validates
// the index-set size). The shadow front, when configured, is
// re-mirrored from the restored weights.
func (p *Platform) RestoreSnapshot(snap *Snapshot) error {
	if snap.Role != RolePlatform {
		return fmt.Errorf("%w: restoring a %s snapshot into a platform", ErrBadSnapshot, snap.Role)
	}
	if snap.Platform != p.cfg.ID {
		return fmt.Errorf("%w: snapshot belongs to platform %d, this is platform %d", ErrBadSnapshot, snap.Platform, p.cfg.ID)
	}
	if snap.NextRound != p.cfg.StartRound {
		return fmt.Errorf("%w: snapshot resumes at round %d, platform configured to start at %d",
			ErrBadSnapshot, snap.NextRound, p.cfg.StartRound)
	}
	cur := &scalarCursor{s: snap.Scalars}
	cursor, err := cur.next()
	if err != nil {
		return err
	}
	epoch, err := cur.next()
	if err != nil {
		return err
	}
	rngSnap, err := readRNG(cur)
	if err != nil {
		return err
	}
	nIdx, err := cur.next()
	if err != nil {
		return err
	}
	idxVals, err := cur.take(int(nIdx))
	if err != nil {
		return err
	}
	indices := make([]int, len(idxVals))
	for i, v := range idxVals {
		indices[i] = int(v)
	}
	if err := p.sampler.Restore(dataset.SamplerSnapshot{
		Indices: indices, Cursor: int(cursor), Epoch: int(epoch), RNG: rngSnap,
	}); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	hasAug, err := cur.next()
	if err != nil {
		return err
	}
	if hasAug != 0 {
		augSnap, err := readRNG(cur)
		if err != nil {
			return err
		}
		if p.cfg.Augment == nil {
			return fmt.Errorf("%w: snapshot carries an augmentation RNG but the platform has no augmenter", ErrBadSnapshot)
		}
		p.cfg.Augment.RestoreRNG(augSnap)
	} else if p.cfg.Augment != nil {
		return fmt.Errorf("%w: platform has an augmenter but the snapshot has no augmentation RNG", ErrBadSnapshot)
	}
	ts, err := restoreModelTensors(p.cfg.Front, snap.Tensors)
	if err != nil {
		return err
	}
	if err := restoreOptimizer(cur, ts, p.cfg.Opt, p.cfg.Front.Params()); err != nil {
		return err
	}
	if p.cfg.ShadowFront != nil {
		if err := nn.CopyParams(p.cfg.ShadowFront.Params(), p.cfg.Front.Params()); err != nil {
			return fmt.Errorf("%w: re-mirroring shadow front: %v", ErrBadSnapshot, err)
		}
		if err := copyState(p.shadowState, p.frontState); err != nil {
			return fmt.Errorf("%w: re-mirroring shadow state: %v", ErrBadSnapshot, err)
		}
		p.stateOwner = 0
	}
	return nil
}

// maybeWriteCheckpoint writes a snapshot when the schedule says a
// checkpoint is due at this boundary (completed rounds since start are
// a multiple of every, or force is set for final checkpoints).
func checkpointDue(every, completed int, force bool) bool {
	if force {
		return true
	}
	return every > 0 && completed > 0 && completed%every == 0
}
