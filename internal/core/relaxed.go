package core

import (
	"fmt"

	"medsplit/internal/tensor"
)

// This file is the relaxed-consistency side of the scheduler spectrum
// (README "Consistency spectrum"). Sequential, concat and pipelined
// scheduling are all held bit-identical to the sequential trajectory,
// which serializes every platform's logits → loss-grad turnaround on
// the server's clock: each exchange is atomic, so a round costs the
// *sum* over platforms of their WAN round trips and compute, and a
// straggler's slow turnaround stalls everyone behind it. The staggered
// scheduler below trades the bit-identity away for overlap: exchanges
// are split into halves (ship the logits, come back for the loss
// gradient later), so while one platform's gradient crosses the WAN
// the server services the other platforms — and with a round stagger,
// their *later rounds*. A delay spike or compute straggler then
// overlaps useful work instead of blocking it.

// relaxedMode reports whether a round mode runs platform exchanges
// ahead of the session loop's round counter (see windowScheduler).
func relaxedMode(m RoundMode) bool {
	return m == RoundModeBoundedStaleness || m == RoundModeSplitFed
}

// windowScheduler executes training rounds in staggered windows. When
// the session loop asks for round r and the window [r, end] has not
// run yet, the scheduler runs the whole window as a software-pipelined
// wavefront and the remaining trainRound calls inside the window are
// no-ops.
//
// Within a wave, each platform k advances by one half-exchange pair:
// first the second half of its previous exchange (receive the loss
// gradient, replay the forward, backward, step, ship the cut
// gradient), then the first half of its next one (receive activations,
// forward, ship logits). Platform k's rounds are offset by a stagger
// of min(k, cap) waves, so lower-numbered platforms run ahead: when
// the server blocks on a straggler's late message, the fast platforms'
// exchanges for later rounds have already been processed at earlier
// virtual times and are absorbed into the wait.
//
// Staleness accounting: an exchange's forward at stagger cap C can
// miss at most C+1 rounds of the other platforms' updates (C rounds of
// stagger plus the half-exchange in flight), so bounded staleness with
// cap K runs windows of K+1 rounds with stagger cap K-1. The window
// never crosses an L1-sync or eval boundary: barrier phases observe a
// fully flushed state, which is what lets SplitFed's periodic weight
// averaging run through the ordinary session state machine. With
// window == 0 the window extends to the next sync/eval boundary and
// the stagger spans it (RoundModeSplitFed: platforms run
// local-parallel between syncs, staleness capped by the averaging
// period itself).
//
// Over the wire this needs no platform-side changes: each platform
// independently walks its session and blocks on the server's replies,
// so the server's processing order alone decides the consistency
// model. Processing is single-goroutine in a fixed wave order, which
// keeps relaxed sessions deterministic under fixed seeds and identical
// across transports (the differential suite runs them twice and
// compares digests).
type windowScheduler struct {
	// window is the number of consecutive rounds one window spans (the
	// staleness cap plus one). 0 means unbounded: the window extends
	// to the next sync/eval boundary.
	window int
	// flushedThrough is one past the last round every platform has
	// completed; trainRound calls below it are no-ops.
	flushedThrough int
}

// halfOpen tracks a platform's exchange between its two halves: the
// round in flight and the logits the loss gradient must match.
type halfOpen struct {
	round int
	z     *tensor.Tensor
	open  bool
}

func (w *windowScheduler) trainRound(s *Server, r int) error {
	if r < w.flushedThrough {
		return nil // covered by the window a previous call processed
	}
	end := w.windowEnd(s, r)
	stagger := end - r // splitfed: full stagger across the window
	if w.window > 0 {
		// Bounded staleness cap K = window-1: stagger K-1 waves so a
		// forward misses at most K rounds of updates (see type doc).
		if c := w.window - 2; c < stagger {
			stagger = c
		}
		if stagger < 0 {
			stagger = 0
		}
	}
	pending := make([]halfOpen, s.cfg.Platforms)
	// Waves 0..end-r+stagger open first halves; one extra wave drains
	// the second halves still in flight after the last opener.
	lastWave := (end - r) + stagger
	for wave := 0; wave <= lastWave+1; wave++ {
		if err := s.reg.each(func(k int, ps *platformState) error {
			if ps.status == PlatformDropped {
				return nil
			}
			if pending[k].open {
				f := pending[k]
				pending[k] = halfOpen{}
				if err := s.exchangeBack(k, f.round, f.z); err != nil {
					return fmt.Errorf("core: platform %d staggered round %d: %w", k, f.round, err)
				}
			}
			off := k
			if off > stagger {
				off = stagger
			}
			q := r + wave - off
			if q < r || q > end {
				return nil
			}
			z, err := s.exchangeFront(k, q)
			if err != nil {
				return fmt.Errorf("core: platform %d staggered round %d: %w", k, q, err)
			}
			if z != nil {
				pending[k] = halfOpen{round: q, z: z, open: true}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	w.flushedThrough = end + 1
	return nil
}

// windowEnd returns the last round of the window opening at r: bounded
// by the staleness window, the end of the session, and the next
// L1-sync or eval boundary (every platform must be flushed before a
// barrier phase runs).
func (w *windowScheduler) windowEnd(s *Server, r int) int {
	end := s.cfg.Rounds - 1
	if w.window > 0 && r+w.window-1 < end {
		end = r + w.window - 1
	}
	plan := s.plan()
	for q := r; q < end; q++ {
		if plan.syncRound(q) || plan.evalRound(q) {
			return q
		}
	}
	return end
}
