package core

import (
	"sync"
	"testing"

	"medsplit/internal/dataset"
	"medsplit/internal/rng"
	"medsplit/internal/transport"
	"medsplit/internal/transport/testutil"
	"medsplit/internal/wire"
)

// TestFullSessionOverTCP runs the complete protocol — handshake,
// training, L1 sync, evaluation, shutdown — over real TCP sockets with
// platforms connecting out of order, exactly as the cmd daemons deploy
// it. The same engine code must behave identically to the pipe
// transport.
func TestFullSessionOverTCP(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	train, test := testData(t, 3, 120, 40, 91)
	flat, flatTest := flatten(train), flatten(test)
	const K, rounds = 2, 10
	fronts, back := buildFronts(t, 241, K, flat.X.Dim(1), 3)
	shards := dataset.ShardIID(flat.Len(), K, rng.New(92))

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	srv := defaultServer(t, back, K, rounds, func(c *ServerConfig) {
		c.L1SyncEvery = 5
		c.EvalEvery = 5
	})

	// Acceptor: route connections to slots by their Hello platform id.
	serverErr := make(chan error, 1)
	go func() {
		conns := make([]transport.Conn, K)
		for n := 0; n < K; n++ {
			c, err := l.Accept()
			if err != nil {
				serverErr <- err
				return
			}
			hello, err := c.Recv()
			if err != nil || hello.Type != wire.MsgHello {
				serverErr <- err
				return
			}
			conns[hello.Platform] = transport.Pushback(c, hello)
		}
		defer func() {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
		}()
		serverErr <- srv.Serve(conns)
	}()

	stats := make([]*PlatformStats, K)
	var wg sync.WaitGroup
	errs := make([]error, K)
	// Connect in reverse order to exercise the out-of-order path.
	for k := K - 1; k >= 0; k-- {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			meter := &transport.Meter{}
			plat := defaultPlatform(t, k, fronts[k], flat.Subset(shards[k]), rounds, func(c *PlatformConfig) {
				c.L1SyncEvery = 5
				c.EvalEvery = 5
				c.Meter = meter
				if k == 0 {
					c.EvalData = flatTest
				}
			})
			conn, err := transport.Dial(l.Addr())
			if err != nil {
				errs[k] = err
				return
			}
			defer conn.Close()
			st, err := plat.Run(transport.Metered(conn, meter))
			if err != nil {
				errs[k] = err
				return
			}
			stats[k] = st
		}()
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("platform %d: %v", k, err)
		}
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(stats[0].Rounds) != rounds {
		t.Fatalf("platform 0 ran %d rounds", len(stats[0].Rounds))
	}
	final := stats[0].Evals[len(stats[0].Evals)-1]
	if final.Accuracy < 0 {
		t.Fatal("no accuracy measured over TCP")
	}
}
