package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"medsplit/internal/dataset"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// PlatformConfig configures one medical platform (a hospital), which
// owns the raw local data and the network's first hidden layer L1.
type PlatformConfig struct {
	// ID is the platform index, matching its connection slot on the
	// server.
	ID int
	// Front is the platform-side half of the model (L1, from
	// models.Split).
	Front *nn.Sequential
	// ShadowFront, when set, is a second instance of the same front
	// architecture. When the server runs RoundModePipelined with
	// PipelineDepth >= 2, the platform alternates forward passes between
	// Front and ShadowFront so the L1 backward of round r can overlap
	// the forward of round r+1 (layer instances cache activations for
	// backward, so one instance cannot hold two rounds in flight). The
	// forward of round r+1 then runs one optimizer step stale. Weights
	// and stateful buffers are copied from Front at construction;
	// weights are re-mirrored after every step, and stateful buffers
	// (BatchNorm running statistics) are handed to the instance about
	// to run a forward so they follow the sequential per-batch chain.
	// Optimizer state always lives on Front. Ignored unless the
	// handshake selects pipelining at depth >= 2.
	ShadowFront *nn.Sequential
	// Opt updates Front's parameters.
	Opt nn.Optimizer
	// Loss computes the task loss from logits and local labels. Unused
	// (and may be nil) in label-sharing mode, where the server computes
	// the loss.
	Loss nn.Loss
	// Shard is the platform's local dataset. It never leaves the
	// platform.
	Shard *dataset.Dataset
	// Augment, when non-nil, applies local data augmentation (random
	// crop/flip) to each training minibatch before the L1 forward pass.
	// Augmentation is platform-local, so it is privacy-neutral.
	Augment *dataset.Augmenter
	// Batch is the platform's minibatch size s_k. Use
	// dataset.ProportionalBatches to apply the paper's imbalance
	// mitigation.
	Batch int
	// Rounds is the number of training rounds (must match the server
	// and all other platforms; validated at handshake).
	Rounds int
	// StartRound is the first round to execute: 0 for a fresh run, the
	// checkpoint's NextRound when resuming. Must match the server's.
	StartRound int
	// LabelSharing enables the 2-message ablation: labels accompany the
	// activations and the server computes the loss.
	LabelSharing bool
	// ClipGrads, when positive, clamps L1 gradients before each step.
	ClipGrads float32
	// L1SyncEvery, when positive, synchronizes L1 weights through the
	// server every so many rounds.
	L1SyncEvery int
	// EvalEvery, when positive, schedules evaluation every so many
	// rounds (and after the final round).
	EvalEvery int
	// EvalData, when non-nil, marks this platform as the evaluator: it
	// measures test accuracy of the composite model (its L1 + the
	// server's layers) during evaluation phases.
	EvalData *dataset.Dataset
	// EvalBatch is the evaluation batch size (default 64).
	EvalBatch int
	// CheckpointEvery, when positive, writes a snapshot of the
	// platform's state to CheckpointDir at every round boundary where
	// the completed-round count is a multiple of it. Requires
	// CheckpointDir.
	CheckpointEvery int
	// CheckpointDir, when set, receives snapshot files
	// (platform-<id>.ckpt). With it set the platform also keeps an
	// in-memory boundary snapshot and writes it out when the session
	// dies mid-round (a server stop, a fatal peer error), so the last
	// consistent state is never lost.
	CheckpointDir string
	// Redial, when set together with RejoinWindow, enables dropout
	// recovery: after a connection error during a training exchange the
	// platform redials, replays the handshake with a Rejoin carrying
	// its protocol position, and resumes where the server tells it to.
	// The returned connection should carry the same metering wrapper as
	// the original. Requires the server to run a RecoveryConfig.
	Redial func() (transport.Conn, error)
	// RejoinWindow bounds how long the platform keeps trying to rejoin
	// after a connection error before giving up.
	RejoinWindow time.Duration
	// Seed seeds the platform's minibatch sampler.
	Seed uint64
	// LRSchedule, when set, adjusts the optimizer's learning rate at the
	// start of every round. Platforms and server normally share the same
	// schedule so the two halves of the model anneal together.
	LRSchedule nn.Schedule
	// Codec compresses the four training-exchange payloads; must match
	// the server's (validated at handshake). Defaults to wire.RawCodec.
	Codec wire.Codec
	// Trace, when set, observes every protocol step.
	Trace TraceFunc
	// Meter, when set, lets the platform snapshot its cumulative
	// training-traffic bytes at each evaluation point (wrap the
	// connection with transport.Metered on the same meter).
	Meter *transport.Meter
}

// validate checks the configuration for consistency and fills
// defaults. All PlatformConfig rules live here.
func (cfg *PlatformConfig) validate() error {
	if cfg.Front == nil {
		return fmt.Errorf("%w: nil front network", ErrConfig)
	}
	if cfg.Opt == nil {
		return fmt.Errorf("%w: nil optimizer", ErrConfig)
	}
	if cfg.Shard == nil || cfg.Shard.Len() == 0 {
		return fmt.Errorf("%w: platform %d has no local data", ErrConfig, cfg.ID)
	}
	if cfg.Batch <= 0 {
		return fmt.Errorf("%w: batch size %d", ErrConfig, cfg.Batch)
	}
	if cfg.Rounds <= 0 {
		return fmt.Errorf("%w: %d rounds", ErrConfig, cfg.Rounds)
	}
	if cfg.StartRound < 0 || cfg.StartRound >= cfg.Rounds {
		return fmt.Errorf("%w: start round %d of %d", ErrConfig, cfg.StartRound, cfg.Rounds)
	}
	if !cfg.LabelSharing && cfg.Loss == nil {
		return fmt.Errorf("%w: label-private mode requires a platform-side loss", ErrConfig)
	}
	if cfg.EvalData != nil && cfg.EvalBatch == 0 {
		cfg.EvalBatch = 64
	}
	if cfg.CheckpointEvery < 0 {
		return fmt.Errorf("%w: checkpoint every %d rounds", ErrConfig, cfg.CheckpointEvery)
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointDir == "" {
		return fmt.Errorf("%w: CheckpointEvery without CheckpointDir", ErrConfig)
	}
	if (cfg.Redial != nil) != (cfg.RejoinWindow > 0) {
		return fmt.Errorf("%w: Redial and RejoinWindow must be set together", ErrConfig)
	}
	if cfg.Codec == nil {
		cfg.Codec = wire.RawCodec{}
	}
	return nil
}

// RoundStat records one round of local training.
type RoundStat struct {
	Round int
	Loss  float64
	Batch int
}

// EvalStat records one evaluation point. Accuracy is -1 on platforms
// that are not the evaluator (they still snapshot their traffic so the
// harness can sum system-wide bytes at the same round).
type EvalStat struct {
	Round         int
	Accuracy      float64
	TrainingBytes int64
}

// PlatformStats is everything a platform measured during a run.
type PlatformStats struct {
	Rounds []RoundStat
	Evals  []EvalStat
}

// FinalLoss returns the last round's training loss.
func (s *PlatformStats) FinalLoss() float64 {
	if len(s.Rounds) == 0 {
		return 0
	}
	return s.Rounds[len(s.Rounds)-1].Loss
}

// Platform runs the platform side of the split-learning protocol.
type Platform struct {
	cfg     PlatformConfig
	sampler *dataset.BatchSampler
	stop    atomic.Bool

	// stash is the in-memory boundary snapshot (CheckpointDir mode):
	// the platform's complete state as of the last round boundary,
	// written to disk if the session dies mid-round.
	stash *Snapshot

	// pend is the overlapped scheduler's in-flight round (nil in the
	// plain scheduler, and at every drained boundary). While non-nil,
	// weights lag one step behind the round counter, so snapshots and
	// stashes are skipped.
	pend *inflight

	// Stateful buffers of the two front instances (BatchNorm running
	// statistics), collected once so pipelined rounds can mirror them.
	// stateOwner names the instance holding the newest statistics
	// (0 = Front, 1 = ShadowFront): each training forward updates only
	// the instance it ran on, so the stream of updates is handed from
	// instance to instance just before the next forward.
	frontState  []*tensor.Tensor
	shadowState []*tensor.Tensor
	stateOwner  int

	// Wire-path scratch (see wirebuf.go): decode targets for the two
	// inbound training messages, reused round after round, and pooled
	// encode buffers for the two outbound ones. Each message type is in
	// flight at most once per platform, in both the plain and the
	// pipelined loop, so one slot per type suffices.
	logitsDec []*tensor.Tensor
	cutDec    []*tensor.Tensor
	encActs   payloadSizer
	encGrad   payloadSizer
	encLabels payloadSizer

	// Minibatch gather scratch. Two slots because the pipelined loop
	// keeps one round in flight: the front instance for round r caches
	// its input batch until finishRound's backward, which runs after
	// round r+1's batch has already been gathered. Slot r%2 tracks the
	// front instance the round runs on; the plain loop only uses slot 0.
	batchX      [2]*tensor.Tensor
	batchLabels [2][]int
}

// NewPlatform validates cfg and builds a platform.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	indices := make([]int, cfg.Shard.Len())
	for i := range indices {
		indices[i] = i
	}
	p := &Platform{
		cfg:     cfg,
		sampler: dataset.NewBatchSampler(indices, cfg.Batch, rng.New(cfg.Seed^0x9e3779b97f4a7c15)),
	}
	if cfg.ShadowFront != nil {
		// The shadow starts as an exact mirror of Front: weights and
		// stateful buffers are copied here, so the caller only has to
		// provide a structurally identical instance.
		if err := nn.CopyParams(cfg.ShadowFront.Params(), cfg.Front.Params()); err != nil {
			return nil, fmt.Errorf("%w: shadow front: %v", ErrConfig, err)
		}
		p.frontState = nn.CollectState(cfg.Front)
		p.shadowState = nn.CollectState(cfg.ShadowFront)
		if len(p.frontState) != len(p.shadowState) {
			return nil, fmt.Errorf("%w: shadow front has %d state tensors, front %d",
				ErrConfig, len(p.shadowState), len(p.frontState))
		}
		if err := copyState(p.shadowState, p.frontState); err != nil {
			return nil, fmt.Errorf("%w: shadow front: %v", ErrConfig, err)
		}
	}
	return p, nil
}

// Stop requests a graceful shutdown: the platform finishes the round
// in flight, writes a final checkpoint (when CheckpointDir is set),
// notifies the server, and Run returns ErrStopped. Safe to call from
// any goroutine (the signal handlers in cmd/splitplatform do).
func (p *Platform) Stop() { p.stop.Store(true) }

// copyState copies each stateful tensor from src into dst.
func copyState(dst, src []*tensor.Tensor) error {
	for i := range dst {
		if !tensor.SameShape(dst[i], src[i]) {
			return fmt.Errorf("state tensor %d shape %v, want %v", i, dst[i].Shape(), src[i].Shape())
		}
		dst[i].CopyFrom(src[i])
	}
	return nil
}

// plan derives the deterministic session schedule from the config.
// It must equal the server's (the handshake validates the inputs).
func (p *Platform) plan() sessionPlan {
	return sessionPlan{
		start:       p.cfg.StartRound,
		rounds:      p.cfg.Rounds,
		l1SyncEvery: p.cfg.L1SyncEvery,
		evalEvery:   p.cfg.EvalEvery,
	}
}

// Run executes the full protocol against the server over conn:
// handshake, the training rounds (with L1 sync and evaluation as
// scheduled), and shutdown. It returns the platform's measurements.
// The connection is not closed.
//
// The server's HelloAck names its scheduling mode; when it advertises
// pipelining at depth >= 2 and a ShadowFront is configured, the
// platform switches to the overlapped scheduler (runOverlapped). In
// every other case — including pipelined mode at depth 1, where the
// platform schedule is identical to sequential — the plain scheduler
// runs. Both drive the same session state machine.
func (p *Platform) Run(conn transport.Conn) (*PlatformStats, error) {
	if p.cfg.Redial != nil {
		rc := transport.NewReconnectable(conn)
		conn = rc
	}
	sess := newSession(p.plan())
	mode, depth, err := p.handshake(conn)
	if err != nil {
		return nil, err
	}
	stats := &PlatformStats{}
	p.refreshStash(sess.Round())
	if mode == RoundModePipelined.String() && depth >= 2 && p.cfg.ShadowFront != nil {
		stats, err = p.runOverlapped(conn, sess, stats)
	} else {
		stats, err = p.runPlain(conn, sess, stats)
	}
	if err != nil && !errors.Is(err, ErrStopped) {
		p.writeStashOnAbort()
	}
	return stats, err
}

// runPlain walks the session state machine with the plain (one round
// in flight) scheduler.
func (p *Platform) runPlain(conn transport.Conn, sess *Session, stats *PlatformStats) (*PlatformStats, error) {
	for {
		switch sess.State() {
		case StateTrain:
			r := sess.Round()
			nn.ApplySchedule(p.cfg.Opt, p.cfg.LRSchedule, r)
			loss, batch, err := p.trainStep(conn, r)
			var ff *fastForwardError
			if errors.As(err, &ff) {
				// The server proceeded without us while we were
				// disconnected; realign at the round it assigned.
				if serr := sess.SkipTo(ff.round); serr != nil {
					return nil, serr
				}
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("core: platform %d round %d: %w", p.cfg.ID, r, err)
			}
			stats.Rounds = append(stats.Rounds, RoundStat{Round: r, Loss: loss, Batch: batch})
		case StateL1Sync:
			if err := p.l1Sync(conn, sess.Round()); err != nil {
				return nil, fmt.Errorf("core: platform %d L1 sync round %d: %w", p.cfg.ID, sess.Round(), err)
			}
		case StateEval:
			if err := p.evalPoint(conn, sess.Round(), stats, nil); err != nil {
				return nil, err
			}
		case StateDone:
			if err := p.send(conn, &wire.Message{
				Type:     wire.MsgBye,
				Platform: uint32(p.cfg.ID),
				Round:    uint32(p.cfg.Rounds),
			}); err != nil {
				return nil, err
			}
			return stats, nil
		}
		if err := p.advance(sess, conn); err != nil {
			return nil, err
		}
	}
}

// advance moves the session forward and runs the round-boundary hooks
// (checkpoints, graceful stop, stash refresh).
func (p *Platform) advance(sess *Session, conn transport.Conn) error {
	prev := sess.Round()
	st := sess.Advance()
	if st == StateDone || (st == StateTrain && sess.Round() != prev) {
		return p.atBoundary(sess, conn, prev+1)
	}
	return nil
}

// atBoundary runs the platform's round-boundary hooks. completed is
// the number of rounds fully finished.
func (p *Platform) atBoundary(sess *Session, conn transport.Conn, completed int) error {
	stopping := p.stop.Load() && sess.State() != StateDone
	if p.cfg.CheckpointDir != "" {
		if checkpointDue(p.cfg.CheckpointEvery, completed, false) {
			path := PlatformSnapshotPath(p.cfg.CheckpointDir, p.cfg.ID)
			if err := SaveSnapshotFile(path, p.Snapshot(completed)); err != nil {
				return fmt.Errorf("core: platform %d checkpoint at round %d: %w", p.cfg.ID, completed, err)
			}
		}
		p.refreshStash(completed)
	}
	if stopping {
		// The stop snapshot goes to the stash file (never the scheduled
		// checkpoint, which must stay a matched set across parties), and
		// it persists the in-memory stash rather than live state: in the
		// overlapped scheduler a Stop() can land after drainAfter already
		// decided not to drain, leaving an in-flight round whose step has
		// not been applied — the stash is the last state that is
		// guaranteed boundary-consistent.
		if p.cfg.CheckpointDir != "" && p.stash != nil {
			path := PlatformStashPath(p.cfg.CheckpointDir, p.cfg.ID)
			if err := SaveSnapshotFile(path, p.stash); err != nil {
				return fmt.Errorf("core: platform %d stop checkpoint: %w", p.cfg.ID, err)
			}
		}
		// Best-effort, non-blocking notice: the server surfaces it as a
		// peer error when it next serves this platform's slot, and the
		// other platforms can then save their own boundary stashes. The
		// caller closes the connection after Run returns, which reaps
		// the goroutine if nobody ever receives.
		msg := &wire.Message{
			Type:     wire.MsgErrorMsg,
			Platform: uint32(p.cfg.ID),
			Payload:  wire.EncodeText(fmt.Sprintf("platform %d stopping: checkpointed %d rounds", p.cfg.ID, completed)),
		}
		go func() { _ = conn.Send(msg) }()
		return fmt.Errorf("%w: platform %d after %d rounds", ErrStopped, p.cfg.ID, completed)
	}
	return nil
}

// refreshStash captures the boundary snapshot kept in memory for
// abort-time persistence. Only active in CheckpointDir mode, and only
// at drained boundaries (the overlapped scheduler's in-flight round
// would otherwise be captured with its step missing).
func (p *Platform) refreshStash(nextRound int) {
	if p.cfg.CheckpointDir == "" || p.pend != nil {
		return
	}
	p.stash = p.Snapshot(nextRound)
}

// writeStashOnAbort persists the last boundary snapshot after a fatal
// mid-round error (best effort — the session is already failing, so a
// save error is not allowed to mask the original one). It writes the
// stash file, never the scheduled-checkpoint file: the peers did not
// checkpoint this boundary, so overwriting the scheduled file would
// destroy the last matched set and make resume impossible.
func (p *Platform) writeStashOnAbort() {
	if p.stash == nil || p.cfg.CheckpointDir == "" {
		return
	}
	_ = SaveSnapshotFile(PlatformStashPath(p.cfg.CheckpointDir, p.cfg.ID), p.stash)
}

// evalPoint records one evaluation point (and, on the evaluator, runs
// the accuracy exchange). syncState, when non-nil, is called before an
// evaluator exchange to make Front hold the newest BatchNorm state
// (overlapped scheduler only).
func (p *Platform) evalPoint(conn transport.Conn, r int, stats *PlatformStats, syncState func() error) error {
	ev := EvalStat{Round: r, Accuracy: -1}
	if p.cfg.Meter != nil {
		ev.TrainingBytes = TrainingBytes(p.cfg.Meter)
	}
	if p.cfg.EvalData != nil {
		if syncState != nil {
			if err := syncState(); err != nil {
				return fmt.Errorf("core: platform %d eval round %d: %w", p.cfg.ID, r, err)
			}
		}
		acc, err := p.evalExchange(conn, r)
		if err != nil {
			return fmt.Errorf("core: platform %d eval round %d: %w", p.cfg.ID, r, err)
		}
		ev.Accuracy = acc
	}
	stats.Evals = append(stats.Evals, ev)
	return nil
}

func (p *Platform) handshake(conn transport.Conn) (mode string, depth int, err error) {
	meta := helloBase(p.cfg.Rounds, p.cfg.LabelSharing, p.cfg.L1SyncEvery, p.cfg.EvalEvery, p.cfg.Codec.Name(), p.cfg.StartRound)
	meta = fmt.Sprintf("%s;evaluator=%t", meta, p.cfg.EvalData != nil)
	if err := p.send(conn, &wire.Message{
		Type:     wire.MsgHello,
		Platform: uint32(p.cfg.ID),
		Payload:  wire.EncodeText(meta),
	}); err != nil {
		return "", 0, err
	}
	m, err := p.recv(conn, wire.MsgHelloAck, -1)
	if err != nil {
		return "", 0, fmt.Errorf("core: platform %d handshake: %w", p.cfg.ID, err)
	}
	ack, err := wire.DecodeText(m.Payload)
	if err != nil {
		return "", 0, fmt.Errorf("core: platform %d handshake ack: %w", p.cfg.ID, err)
	}
	mode, depth = parseAck(ack)
	return mode, depth, nil
}

// parseAck extracts the server's scheduling mode and pipeline depth
// from the HelloAck payload ("mode=pipelined;depth=2"). Depth defaults
// to 1 when absent, matching non-pipelined servers.
func parseAck(meta string) (mode string, depth int) {
	depth = 1
	for _, f := range strings.Split(meta, ";") {
		if v, ok := strings.CutPrefix(f, "mode="); ok {
			mode = v
		}
		if v, ok := strings.CutPrefix(f, "depth="); ok {
			if n, aerr := strconv.Atoi(v); aerr == nil && n > 0 {
				depth = n
			}
		}
	}
	return mode, depth
}

// trainStep performs one local minibatch through the split protocol as
// an explicit stage machine and returns the training loss observed for
// it. Compute (forward, loss, backward, step) is bound to stage
// transitions, so a dropout recovery re-entering a wire stage never
// recomputes; the L1 step applies exactly once per round.
func (p *Platform) trainStep(conn transport.Conn, r int) (loss float64, batch int, err error) {
	idx := p.sampler.Next()
	x, labels := p.cfg.Shard.BatchInto(p.batchX[0], p.batchLabels[0], idx)
	p.batchX[0], p.batchLabels[0] = x, labels
	if p.cfg.Augment != nil && x.Rank() == 4 {
		p.cfg.Augment.Apply(x)
	}

	a := p.cfg.Front.Forward(x, true)
	var da, dz *tensor.Tensor
	pos := posActs
	for pos != posDone {
		var err error
		switch pos {
		case posActs:
			err = p.send(conn, &wire.Message{
				Type:     wire.MsgActivations,
				Platform: uint32(p.cfg.ID),
				Round:    uint32(r),
				Payload:  p.encActs.encode(p.cfg.Codec, a),
			})
			if err == nil {
				if p.cfg.LabelSharing {
					pos = posLabels
				} else {
					pos = posLogits
				}
			}
		case posLabels:
			err = p.send(conn, &wire.Message{
				Type:     wire.MsgLabels,
				Platform: uint32(p.cfg.ID),
				Round:    uint32(r),
				Payload:  p.encLabels.encodeLabels(labels),
			})
			if err == nil {
				pos = posCutGrad
			}
		case posLogits:
			var z *tensor.Tensor
			z, err = p.recvLogits(conn, r)
			if err == nil {
				if z.Dim(0) != len(labels) {
					return 0, 0, fmt.Errorf("%w: %d logit rows for %d labels", ErrProtocol, z.Dim(0), len(labels))
				}
				loss, dz = p.cfg.Loss.Loss(z, labels)
				pos = posLossGrad
			}
		case posLossGrad:
			err = p.send(conn, &wire.Message{
				Type:     wire.MsgLossGrad,
				Platform: uint32(p.cfg.ID),
				Round:    uint32(r),
				Payload:  p.encGrad.encode(p.cfg.Codec, dz),
			})
			if err == nil {
				pos = posCutGrad
			}
		case posCutGrad:
			var lossVal float64
			da, lossVal, err = p.recvCutGrad(conn, r)
			if err == nil {
				if p.cfg.LabelSharing {
					loss = lossVal
				}
				pos = posDone
			}
		}
		if err != nil {
			resume, rerr := p.maybeRejoin(conn, r, pos, err)
			if rerr != nil {
				return 0, 0, rerr
			}
			pos = resume
		}
	}
	if !tensor.SameShape(da, a) {
		return 0, 0, fmt.Errorf("%w: cut-grad shape %v, activations %v", ErrProtocol, da.Shape(), a.Shape())
	}

	nn.ZeroGrads(p.cfg.Front.Params())
	p.cfg.Front.Backward(da)
	if p.cfg.ClipGrads > 0 {
		nn.ClipGrads(p.cfg.Front.Params(), p.cfg.ClipGrads)
	}
	p.cfg.Opt.Step(p.cfg.Front.Params())
	return loss, len(labels), nil
}

// recvLogits reads and decodes the round's logits.
func (p *Platform) recvLogits(conn transport.Conn, r int) (*tensor.Tensor, error) {
	m, err := p.recv(conn, wire.MsgLogits, r)
	if err != nil {
		return nil, err
	}
	ts, derr := wire.DecodeInto(p.cfg.Codec, p.logitsDec, m.Payload)
	if derr != nil || len(ts) != 1 {
		return nil, fmt.Errorf("%w: bad logits payload", ErrProtocol)
	}
	p.logitsDec = ts
	releasePayload(m)
	return ts[0], nil
}

// recvCutGrad reads and decodes the round's cut gradient (and the loss
// scalar in label-sharing mode).
func (p *Platform) recvCutGrad(conn transport.Conn, r int) (*tensor.Tensor, float64, error) {
	m, err := p.recv(conn, wire.MsgCutGrad, r)
	if err != nil {
		return nil, 0, err
	}
	ts, derr := wire.DecodeInto(p.cfg.Codec, p.cutDec, m.Payload)
	if p.cfg.LabelSharing {
		if derr != nil || len(ts) != 2 {
			return nil, 0, fmt.Errorf("%w: bad cut-grad payload (label sharing)", ErrProtocol)
		}
		p.cutDec = ts
		releasePayload(m)
		return ts[0], float64(ts[1].At()), nil
	}
	if derr != nil || len(ts) != 1 {
		return nil, 0, fmt.Errorf("%w: bad cut-grad payload", ErrProtocol)
	}
	p.cutDec = ts
	releasePayload(m)
	return ts[0], 0, nil
}

// l1Sync pushes L1 weights to the server and installs the weighted
// average it returns.
func (p *Platform) l1Sync(conn transport.Conn, r int) error {
	params := p.cfg.Front.Params()
	weights := make([]*tensor.Tensor, len(params))
	for i, prm := range params {
		weights[i] = prm.W
	}
	if err := p.send(conn, &wire.Message{
		Type:     wire.MsgModelPush,
		Platform: uint32(p.cfg.ID),
		Round:    uint32(r),
		Payload:  wire.EncodeTensors(weights...),
	}); err != nil {
		return err
	}
	m, err := p.recv(conn, wire.MsgModelPush, r)
	if err != nil {
		return err
	}
	ts, derr := wire.DecodeTensors(m.Payload)
	if derr != nil || len(ts) != len(params) {
		return fmt.Errorf("%w: bad averaged-L1 payload", ErrProtocol)
	}
	for i, prm := range params {
		if !tensor.SameShape(prm.W, ts[i]) {
			return fmt.Errorf("%w: averaged L1 tensor %d shape %v, want %v", ErrProtocol, i, ts[i].Shape(), prm.W.Shape())
		}
		prm.W.CopyFrom(ts[i])
	}
	return nil
}

// evalExchange streams the evaluation set through the composite model
// (local L1 forward, remote L2…Lk forward) and returns test accuracy.
// Labels never leave the platform: accuracy is computed locally from
// the logits the server returns.
func (p *Platform) evalExchange(conn transport.Conn, r int) (float64, error) {
	data := p.cfg.EvalData
	n := data.Len()
	correct := 0
	for off := 0; off < n; off += p.cfg.EvalBatch {
		end := off + p.cfg.EvalBatch
		if end > n {
			end = n
		}
		idx := make([]int, end-off)
		for i := range idx {
			idx[i] = off + i
		}
		x, labels := data.Batch(idx)
		a := p.cfg.Front.Forward(x, false)
		if err := p.send(conn, &wire.Message{
			Type:     wire.MsgEvalActivations,
			Platform: uint32(p.cfg.ID),
			Round:    uint32(r),
			Payload:  wire.EncodeTensors(a),
		}); err != nil {
			return 0, err
		}
		m, err := p.recv(conn, wire.MsgEvalLogits, r)
		if err != nil {
			return 0, err
		}
		ts, derr := wire.DecodeTensors(m.Payload)
		if derr != nil || len(ts) != 1 {
			return 0, fmt.Errorf("%w: bad eval logits payload", ErrProtocol)
		}
		pred := tensor.ArgmaxRows(ts[0])
		if len(pred) != len(labels) {
			return 0, fmt.Errorf("%w: %d eval predictions for %d labels", ErrProtocol, len(pred), len(labels))
		}
		for i, c := range pred {
			if c == labels[i] {
				correct++
			}
		}
	}
	if err := p.send(conn, &wire.Message{
		Type:     wire.MsgAck,
		Platform: uint32(p.cfg.ID),
		Round:    uint32(r),
	}); err != nil {
		return 0, err
	}
	return float64(correct) / float64(n), nil
}

func (p *Platform) send(conn transport.Conn, m *wire.Message) error {
	if err := conn.Send(m); err != nil {
		return fmt.Errorf("core: platform %d send %s: %w", p.cfg.ID, m.Type, err)
	}
	p.trace("send", m)
	return nil
}

func (p *Platform) recv(conn transport.Conn, want wire.MsgType, round int) (*wire.Message, error) {
	m, err := recvExpect(conn, want, round)
	if err != nil {
		return nil, fmt.Errorf("core: platform %d: %w", p.cfg.ID, err)
	}
	p.trace("recv", m)
	return m, nil
}

func (p *Platform) trace(dir string, m *wire.Message) {
	if p.cfg.Trace == nil {
		return
	}
	p.cfg.Trace(TraceEvent{
		Party:    fmt.Sprintf("platform-%d", p.cfg.ID),
		Dir:      dir,
		Type:     m.Type,
		Platform: p.cfg.ID,
		Round:    int(m.Round),
		Bytes:    m.WireSize(),
	})
}
