package core

import (
	"fmt"
	"strconv"
	"strings"

	"medsplit/internal/dataset"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// PlatformConfig configures one medical platform (a hospital), which
// owns the raw local data and the network's first hidden layer L1.
type PlatformConfig struct {
	// ID is the platform index, matching its connection slot on the
	// server.
	ID int
	// Front is the platform-side half of the model (L1, from
	// models.Split).
	Front *nn.Sequential
	// ShadowFront, when set, is a second instance of the same front
	// architecture. When the server runs RoundModePipelined with
	// PipelineDepth >= 2, the platform alternates forward passes between
	// Front and ShadowFront so the L1 backward of round r can overlap
	// the forward of round r+1 (layer instances cache activations for
	// backward, so one instance cannot hold two rounds in flight). The
	// forward of round r+1 then runs one optimizer step stale. Weights
	// and stateful buffers are copied from Front at construction;
	// weights are re-mirrored after every step, and stateful buffers
	// (BatchNorm running statistics) are handed to the instance about
	// to run a forward so they follow the sequential per-batch chain.
	// Optimizer state always lives on Front. Ignored unless the
	// handshake selects pipelining at depth >= 2.
	ShadowFront *nn.Sequential
	// Opt updates Front's parameters.
	Opt nn.Optimizer
	// Loss computes the task loss from logits and local labels. Unused
	// (and may be nil) in label-sharing mode, where the server computes
	// the loss.
	Loss nn.Loss
	// Shard is the platform's local dataset. It never leaves the
	// platform.
	Shard *dataset.Dataset
	// Augment, when non-nil, applies local data augmentation (random
	// crop/flip) to each training minibatch before the L1 forward pass.
	// Augmentation is platform-local, so it is privacy-neutral.
	Augment *dataset.Augmenter
	// Batch is the platform's minibatch size s_k. Use
	// dataset.ProportionalBatches to apply the paper's imbalance
	// mitigation.
	Batch int
	// Rounds is the number of training rounds (must match the server
	// and all other platforms; validated at handshake).
	Rounds int
	// LabelSharing enables the 2-message ablation: labels accompany the
	// activations and the server computes the loss.
	LabelSharing bool
	// ClipGrads, when positive, clamps L1 gradients before each step.
	ClipGrads float32
	// L1SyncEvery, when positive, synchronizes L1 weights through the
	// server every so many rounds.
	L1SyncEvery int
	// EvalEvery, when positive, schedules evaluation every so many
	// rounds (and after the final round).
	EvalEvery int
	// EvalData, when non-nil, marks this platform as the evaluator: it
	// measures test accuracy of the composite model (its L1 + the
	// server's layers) during evaluation phases.
	EvalData *dataset.Dataset
	// EvalBatch is the evaluation batch size (default 64).
	EvalBatch int
	// Seed seeds the platform's minibatch sampler.
	Seed uint64
	// LRSchedule, when set, adjusts the optimizer's learning rate at the
	// start of every round. Platforms and server normally share the same
	// schedule so the two halves of the model anneal together.
	LRSchedule nn.Schedule
	// Codec compresses the four training-exchange payloads; must match
	// the server's (validated at handshake). Defaults to wire.RawCodec.
	Codec wire.Codec
	// Trace, when set, observes every protocol step.
	Trace TraceFunc
	// Meter, when set, lets the platform snapshot its cumulative
	// training-traffic bytes at each evaluation point (wrap the
	// connection with transport.Metered on the same meter).
	Meter *transport.Meter
}

// RoundStat records one round of local training.
type RoundStat struct {
	Round int
	Loss  float64
	Batch int
}

// EvalStat records one evaluation point. Accuracy is -1 on platforms
// that are not the evaluator (they still snapshot their traffic so the
// harness can sum system-wide bytes at the same round).
type EvalStat struct {
	Round         int
	Accuracy      float64
	TrainingBytes int64
}

// PlatformStats is everything a platform measured during a run.
type PlatformStats struct {
	Rounds []RoundStat
	Evals  []EvalStat
}

// FinalLoss returns the last round's training loss.
func (s *PlatformStats) FinalLoss() float64 {
	if len(s.Rounds) == 0 {
		return 0
	}
	return s.Rounds[len(s.Rounds)-1].Loss
}

// Platform runs the platform side of the split-learning protocol.
type Platform struct {
	cfg     PlatformConfig
	sampler *dataset.BatchSampler

	// Stateful buffers of the two front instances (BatchNorm running
	// statistics), collected once so pipelined rounds can mirror them.
	// stateOwner names the instance holding the newest statistics
	// (0 = Front, 1 = ShadowFront): each training forward updates only
	// the instance it ran on, so the stream of updates is handed from
	// instance to instance just before the next forward.
	frontState  []*tensor.Tensor
	shadowState []*tensor.Tensor
	stateOwner  int

	// Wire-path scratch (see wirebuf.go): decode targets for the two
	// inbound training messages, reused round after round, and pooled
	// encode buffers for the two outbound ones. Each message type is in
	// flight at most once per platform, in both the plain and the
	// pipelined loop, so one slot per type suffices.
	logitsDec []*tensor.Tensor
	cutDec    []*tensor.Tensor
	encActs   payloadSizer
	encGrad   payloadSizer
	encLabels payloadSizer

	// Minibatch gather scratch. Two slots because the pipelined loop
	// keeps one round in flight: the front instance for round r caches
	// its input batch until finishRound's backward, which runs after
	// round r+1's batch has already been gathered. Slot r%2 tracks the
	// front instance the round runs on; the plain loop only uses slot 0.
	batchX      [2]*tensor.Tensor
	batchLabels [2][]int
}

// NewPlatform validates cfg and builds a platform.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	if cfg.Front == nil {
		return nil, fmt.Errorf("%w: nil front network", ErrConfig)
	}
	if cfg.Opt == nil {
		return nil, fmt.Errorf("%w: nil optimizer", ErrConfig)
	}
	if cfg.Shard == nil || cfg.Shard.Len() == 0 {
		return nil, fmt.Errorf("%w: platform %d has no local data", ErrConfig, cfg.ID)
	}
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("%w: batch size %d", ErrConfig, cfg.Batch)
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("%w: %d rounds", ErrConfig, cfg.Rounds)
	}
	if !cfg.LabelSharing && cfg.Loss == nil {
		return nil, fmt.Errorf("%w: label-private mode requires a platform-side loss", ErrConfig)
	}
	if cfg.EvalData != nil && cfg.EvalBatch == 0 {
		cfg.EvalBatch = 64
	}
	if cfg.Codec == nil {
		cfg.Codec = wire.RawCodec{}
	}
	indices := make([]int, cfg.Shard.Len())
	for i := range indices {
		indices[i] = i
	}
	p := &Platform{
		cfg:     cfg,
		sampler: dataset.NewBatchSampler(indices, cfg.Batch, rng.New(cfg.Seed^0x9e3779b97f4a7c15)),
	}
	if cfg.ShadowFront != nil {
		// The shadow starts as an exact mirror of Front: weights and
		// stateful buffers are copied here, so the caller only has to
		// provide a structurally identical instance.
		if err := nn.CopyParams(cfg.ShadowFront.Params(), cfg.Front.Params()); err != nil {
			return nil, fmt.Errorf("%w: shadow front: %v", ErrConfig, err)
		}
		p.frontState = nn.CollectState(cfg.Front)
		p.shadowState = nn.CollectState(cfg.ShadowFront)
		if len(p.frontState) != len(p.shadowState) {
			return nil, fmt.Errorf("%w: shadow front has %d state tensors, front %d",
				ErrConfig, len(p.shadowState), len(p.frontState))
		}
		if err := copyState(p.shadowState, p.frontState); err != nil {
			return nil, fmt.Errorf("%w: shadow front: %v", ErrConfig, err)
		}
	}
	return p, nil
}

// copyState copies each stateful tensor from src into dst.
func copyState(dst, src []*tensor.Tensor) error {
	for i := range dst {
		if !tensor.SameShape(dst[i], src[i]) {
			return fmt.Errorf("state tensor %d shape %v, want %v", i, dst[i].Shape(), src[i].Shape())
		}
		dst[i].CopyFrom(src[i])
	}
	return nil
}

// Run executes the full protocol against the server over conn:
// handshake, cfg.Rounds training rounds (with L1 sync and evaluation as
// scheduled), and shutdown. It returns the platform's measurements. The
// connection is not closed.
//
// The server's HelloAck names its scheduling mode; when it advertises
// pipelining at depth >= 2 and a ShadowFront is configured, the
// platform switches to the overlapped loop (runPipelined). In every
// other case — including pipelined mode at depth 1, where the platform
// schedule is identical to sequential — the plain loop below runs.
func (p *Platform) Run(conn transport.Conn) (*PlatformStats, error) {
	stats := &PlatformStats{}
	mode, depth, err := p.handshake(conn)
	if err != nil {
		return nil, err
	}
	if mode == RoundModePipelined.String() && depth >= 2 && p.cfg.ShadowFront != nil {
		return p.runPipelined(conn)
	}
	for r := 0; r < p.cfg.Rounds; r++ {
		nn.ApplySchedule(p.cfg.Opt, p.cfg.LRSchedule, r)
		loss, batch, err := p.trainStep(conn, r)
		if err != nil {
			return nil, fmt.Errorf("core: platform %d round %d: %w", p.cfg.ID, r, err)
		}
		stats.Rounds = append(stats.Rounds, RoundStat{Round: r, Loss: loss, Batch: batch})
		if p.syncRound(r) {
			if err := p.l1Sync(conn, r); err != nil {
				return nil, fmt.Errorf("core: platform %d L1 sync round %d: %w", p.cfg.ID, r, err)
			}
		}
		if p.evalRound(r) {
			ev := EvalStat{Round: r, Accuracy: -1}
			if p.cfg.Meter != nil {
				ev.TrainingBytes = TrainingBytes(p.cfg.Meter)
			}
			if p.cfg.EvalData != nil {
				acc, err := p.evalExchange(conn, r)
				if err != nil {
					return nil, fmt.Errorf("core: platform %d eval round %d: %w", p.cfg.ID, r, err)
				}
				ev.Accuracy = acc
			}
			stats.Evals = append(stats.Evals, ev)
		}
	}
	if err := p.send(conn, &wire.Message{
		Type:     wire.MsgBye,
		Platform: uint32(p.cfg.ID),
		Round:    uint32(p.cfg.Rounds),
	}); err != nil {
		return nil, err
	}
	return stats, nil
}

func (p *Platform) syncRound(r int) bool {
	return p.cfg.L1SyncEvery > 0 && (r+1)%p.cfg.L1SyncEvery == 0
}

func (p *Platform) evalRound(r int) bool {
	if p.cfg.EvalEvery <= 0 {
		return false
	}
	return (r+1)%p.cfg.EvalEvery == 0 || r == p.cfg.Rounds-1
}

func (p *Platform) handshake(conn transport.Conn) (mode string, depth int, err error) {
	meta := fmt.Sprintf("v=1;rounds=%d;labelshare=%t;sync=%d;eval=%d;codec=%s;evaluator=%t",
		p.cfg.Rounds, p.cfg.LabelSharing, p.cfg.L1SyncEvery, p.cfg.EvalEvery, p.cfg.Codec.Name(), p.cfg.EvalData != nil)
	if err := p.send(conn, &wire.Message{
		Type:     wire.MsgHello,
		Platform: uint32(p.cfg.ID),
		Payload:  wire.EncodeText(meta),
	}); err != nil {
		return "", 0, err
	}
	m, err := p.recv(conn, wire.MsgHelloAck, -1)
	if err != nil {
		return "", 0, fmt.Errorf("core: platform %d handshake: %w", p.cfg.ID, err)
	}
	ack, err := wire.DecodeText(m.Payload)
	if err != nil {
		return "", 0, fmt.Errorf("core: platform %d handshake ack: %w", p.cfg.ID, err)
	}
	mode, depth = parseAck(ack)
	return mode, depth, nil
}

// parseAck extracts the server's scheduling mode and pipeline depth
// from the HelloAck payload ("mode=pipelined;depth=2"). Depth defaults
// to 1 when absent, matching non-pipelined servers.
func parseAck(meta string) (mode string, depth int) {
	depth = 1
	for _, f := range strings.Split(meta, ";") {
		if v, ok := strings.CutPrefix(f, "mode="); ok {
			mode = v
		}
		if v, ok := strings.CutPrefix(f, "depth="); ok {
			if n, aerr := strconv.Atoi(v); aerr == nil && n > 0 {
				depth = n
			}
		}
	}
	return mode, depth
}

// trainStep performs one local minibatch through the split protocol and
// returns the training loss observed for it.
func (p *Platform) trainStep(conn transport.Conn, r int) (loss float64, batch int, err error) {
	idx := p.sampler.Next()
	x, labels := p.cfg.Shard.BatchInto(p.batchX[0], p.batchLabels[0], idx)
	p.batchX[0], p.batchLabels[0] = x, labels
	if p.cfg.Augment != nil && x.Rank() == 4 {
		p.cfg.Augment.Apply(x)
	}

	a := p.cfg.Front.Forward(x, true)
	if err := p.send(conn, &wire.Message{
		Type:     wire.MsgActivations,
		Platform: uint32(p.cfg.ID),
		Round:    uint32(r),
		Payload:  p.encActs.encode(p.cfg.Codec, a),
	}); err != nil {
		return 0, 0, err
	}

	var da *tensor.Tensor
	if p.cfg.LabelSharing {
		if err := p.send(conn, &wire.Message{
			Type:     wire.MsgLabels,
			Platform: uint32(p.cfg.ID),
			Round:    uint32(r),
			Payload:  p.encLabels.encodeLabels(labels),
		}); err != nil {
			return 0, 0, err
		}
		m, err := p.recv(conn, wire.MsgCutGrad, r)
		if err != nil {
			return 0, 0, err
		}
		ts, derr := wire.DecodeInto(p.cfg.Codec, p.cutDec, m.Payload)
		if derr != nil || len(ts) != 2 {
			return 0, 0, fmt.Errorf("%w: bad cut-grad payload (label sharing)", ErrProtocol)
		}
		p.cutDec = ts
		releasePayload(m)
		da = ts[0]
		loss = float64(ts[1].At())
	} else {
		m, err := p.recv(conn, wire.MsgLogits, r)
		if err != nil {
			return 0, 0, err
		}
		ts, derr := wire.DecodeInto(p.cfg.Codec, p.logitsDec, m.Payload)
		if derr != nil || len(ts) != 1 {
			return 0, 0, fmt.Errorf("%w: bad logits payload", ErrProtocol)
		}
		p.logitsDec = ts
		releasePayload(m)
		z := ts[0]
		if z.Dim(0) != len(labels) {
			return 0, 0, fmt.Errorf("%w: %d logit rows for %d labels", ErrProtocol, z.Dim(0), len(labels))
		}
		var dz *tensor.Tensor
		loss, dz = p.cfg.Loss.Loss(z, labels)
		if err := p.send(conn, &wire.Message{
			Type:     wire.MsgLossGrad,
			Platform: uint32(p.cfg.ID),
			Round:    uint32(r),
			Payload:  p.encGrad.encode(p.cfg.Codec, dz),
		}); err != nil {
			return 0, 0, err
		}
		m, err = p.recv(conn, wire.MsgCutGrad, r)
		if err != nil {
			return 0, 0, err
		}
		ts, derr = wire.DecodeInto(p.cfg.Codec, p.cutDec, m.Payload)
		if derr != nil || len(ts) != 1 {
			return 0, 0, fmt.Errorf("%w: bad cut-grad payload", ErrProtocol)
		}
		p.cutDec = ts
		releasePayload(m)
		da = ts[0]
	}
	if !tensor.SameShape(da, a) {
		return 0, 0, fmt.Errorf("%w: cut-grad shape %v, activations %v", ErrProtocol, da.Shape(), a.Shape())
	}

	nn.ZeroGrads(p.cfg.Front.Params())
	p.cfg.Front.Backward(da)
	if p.cfg.ClipGrads > 0 {
		nn.ClipGrads(p.cfg.Front.Params(), p.cfg.ClipGrads)
	}
	p.cfg.Opt.Step(p.cfg.Front.Params())
	return loss, len(labels), nil
}

// l1Sync pushes L1 weights to the server and installs the weighted
// average it returns.
func (p *Platform) l1Sync(conn transport.Conn, r int) error {
	params := p.cfg.Front.Params()
	weights := make([]*tensor.Tensor, len(params))
	for i, prm := range params {
		weights[i] = prm.W
	}
	if err := p.send(conn, &wire.Message{
		Type:     wire.MsgModelPush,
		Platform: uint32(p.cfg.ID),
		Round:    uint32(r),
		Payload:  wire.EncodeTensors(weights...),
	}); err != nil {
		return err
	}
	m, err := p.recv(conn, wire.MsgModelPush, r)
	if err != nil {
		return err
	}
	ts, derr := wire.DecodeTensors(m.Payload)
	if derr != nil || len(ts) != len(params) {
		return fmt.Errorf("%w: bad averaged-L1 payload", ErrProtocol)
	}
	for i, prm := range params {
		if !tensor.SameShape(prm.W, ts[i]) {
			return fmt.Errorf("%w: averaged L1 tensor %d shape %v, want %v", ErrProtocol, i, ts[i].Shape(), prm.W.Shape())
		}
		prm.W.CopyFrom(ts[i])
	}
	return nil
}

// evalExchange streams the evaluation set through the composite model
// (local L1 forward, remote L2…Lk forward) and returns test accuracy.
// Labels never leave the platform: accuracy is computed locally from
// the logits the server returns.
func (p *Platform) evalExchange(conn transport.Conn, r int) (float64, error) {
	data := p.cfg.EvalData
	n := data.Len()
	correct := 0
	for off := 0; off < n; off += p.cfg.EvalBatch {
		end := off + p.cfg.EvalBatch
		if end > n {
			end = n
		}
		idx := make([]int, end-off)
		for i := range idx {
			idx[i] = off + i
		}
		x, labels := data.Batch(idx)
		a := p.cfg.Front.Forward(x, false)
		if err := p.send(conn, &wire.Message{
			Type:     wire.MsgEvalActivations,
			Platform: uint32(p.cfg.ID),
			Round:    uint32(r),
			Payload:  wire.EncodeTensors(a),
		}); err != nil {
			return 0, err
		}
		m, err := p.recv(conn, wire.MsgEvalLogits, r)
		if err != nil {
			return 0, err
		}
		ts, derr := wire.DecodeTensors(m.Payload)
		if derr != nil || len(ts) != 1 {
			return 0, fmt.Errorf("%w: bad eval logits payload", ErrProtocol)
		}
		pred := tensor.ArgmaxRows(ts[0])
		if len(pred) != len(labels) {
			return 0, fmt.Errorf("%w: %d eval predictions for %d labels", ErrProtocol, len(pred), len(labels))
		}
		for i, c := range pred {
			if c == labels[i] {
				correct++
			}
		}
	}
	if err := p.send(conn, &wire.Message{
		Type:     wire.MsgAck,
		Platform: uint32(p.cfg.ID),
		Round:    uint32(r),
	}); err != nil {
		return 0, err
	}
	return float64(correct) / float64(n), nil
}

func (p *Platform) send(conn transport.Conn, m *wire.Message) error {
	if err := conn.Send(m); err != nil {
		return fmt.Errorf("core: platform %d send %s: %w", p.cfg.ID, m.Type, err)
	}
	p.trace("send", m)
	return nil
}

func (p *Platform) recv(conn transport.Conn, want wire.MsgType, round int) (*wire.Message, error) {
	m, err := recvExpect(conn, want, round)
	if err != nil {
		return nil, fmt.Errorf("core: platform %d: %w", p.cfg.ID, err)
	}
	p.trace("recv", m)
	return m, nil
}

func (p *Platform) trace(dir string, m *wire.Message) {
	if p.cfg.Trace == nil {
		return
	}
	p.cfg.Trace(TraceEvent{
		Party:    fmt.Sprintf("platform-%d", p.cfg.ID),
		Dir:      dir,
		Type:     m.Type,
		Platform: p.cfg.ID,
		Round:    int(m.Round),
		Bytes:    m.WireSize(),
	})
}
