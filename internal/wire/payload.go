package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"medsplit/internal/tensor"
)

// Payload helpers. The split protocol moves tensors (activations and
// gradients) and, in the label-sharing ablation, integer label vectors.
// Payloads are self-describing: a one-byte kind, a count, then the
// items. Tensor payloads carry a uint16 count — the original one-byte
// count silently truncated len(ts) above 255, which an L1 sync of a
// deep front model can exceed.

// payload kinds.
const (
	payloadTensors byte = 1
	payloadLabels  byte = 2
	payloadText    byte = 3
	payloadInfer   byte = 4
)

// tensorsHeaderSize is the tensor payload prefix: kind byte + uint16
// tensor count.
const tensorsHeaderSize = 3

// MaxTensorsPerPayload is the largest tensor count one payload encodes.
const MaxTensorsPerPayload = 1<<16 - 1

// ErrBadPayload is returned when a payload cannot be decoded.
var ErrBadPayload = errors.New("wire: bad payload")

// EncodeTensors packs tensors into a freshly allocated payload.
// Steady-state paths should prefer EncodeTensorsInto with a pooled
// buffer (see BufferPool).
func EncodeTensors(ts ...*tensor.Tensor) []byte {
	size := tensorsHeaderSize
	for _, t := range ts {
		size += t.EncodedSize()
	}
	return EncodeTensorsInto(make([]byte, 0, size), ts...)
}

// EncodeTensorsInto appends the tensor payload to buf and returns the
// extended slice, growing it only when capacity is short. It panics
// when more than MaxTensorsPerPayload tensors are passed — silently
// truncating the count would desynchronize the two protocol ends.
func EncodeTensorsInto(buf []byte, ts ...*tensor.Tensor) []byte {
	if len(ts) > MaxTensorsPerPayload {
		panic(fmt.Sprintf("wire: %d tensors exceed the payload maximum %d", len(ts), MaxTensorsPerPayload))
	}
	var hdr [tensorsHeaderSize]byte
	hdr[0] = payloadTensors
	binary.LittleEndian.PutUint16(hdr[1:], uint16(len(ts)))
	buf = append(buf, hdr[:]...)
	for _, t := range ts {
		buf = t.AppendTo(buf)
	}
	return buf
}

// TensorsPayloadSize returns the payload size EncodeTensors would
// produce for tensors of the given shapes.
func TensorsPayloadSize(shapes ...[]int) int {
	size := tensorsHeaderSize
	for _, s := range shapes {
		size += tensor.EncodedSizeFor(s...)
	}
	return size
}

// DecodeTensors unpacks a payload built by EncodeTensors into freshly
// allocated tensors.
func DecodeTensors(buf []byte) ([]*tensor.Tensor, error) {
	return DecodeTensorsInto(nil, buf)
}

// DecodeTensorsInto unpacks a payload built by EncodeTensors, reusing
// the tensors (and the slice) of dst position by position: dst[i]'s
// storage backs the i-th decoded tensor when its capacity suffices.
// dst may be nil or shorter than the payload's count; missing positions
// allocate. The returned slice is dst (possibly grown) truncated to the
// decoded count, and never aliases buf — the caller may recycle the
// payload buffer as soon as DecodeTensorsInto returns.
func DecodeTensorsInto(dst []*tensor.Tensor, buf []byte) ([]*tensor.Tensor, error) {
	if len(buf) < tensorsHeaderSize || buf[0] != payloadTensors {
		return nil, fmt.Errorf("%w: not a tensor payload", ErrBadPayload)
	}
	n := int(binary.LittleEndian.Uint16(buf[1:]))
	buf = buf[tensorsHeaderSize:]
	for len(dst) < n {
		dst = append(dst, nil)
	}
	out := dst[:n]
	for i := 0; i < n; i++ {
		t, rest, err := tensor.DecodeInto(out[i], buf)
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d: %v", ErrBadPayload, i, err)
		}
		out[i] = t
		buf = rest
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(buf))
	}
	return out, nil
}

// EncodeLabels packs a label vector into a payload.
func EncodeLabels(labels []int) []byte {
	return EncodeLabelsInto(make([]byte, 0, 5+4*len(labels)), labels)
}

// EncodeLabelsInto appends a label payload to buf and returns the
// extended slice.
func EncodeLabelsInto(buf []byte, labels []int) []byte {
	var tmp [4]byte
	buf = append(buf, payloadLabels)
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(labels)))
	buf = append(buf, tmp[:]...)
	for _, lab := range labels {
		binary.LittleEndian.PutUint32(tmp[:], uint32(lab))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// DecodeLabels unpacks a payload built by EncodeLabels.
func DecodeLabels(buf []byte) ([]int, error) {
	return DecodeLabelsInto(nil, buf)
}

// DecodeLabelsInto unpacks a label payload, reusing dst's storage when
// its capacity suffices. The result never aliases buf.
func DecodeLabelsInto(dst []int, buf []byte) ([]int, error) {
	if len(buf) < 5 || buf[0] != payloadLabels {
		return nil, fmt.Errorf("%w: not a label payload", ErrBadPayload)
	}
	n := int(binary.LittleEndian.Uint32(buf[1:]))
	buf = buf[5:]
	if len(buf) != 4*n {
		return nil, fmt.Errorf("%w: %d bytes for %d labels", ErrBadPayload, len(buf), n)
	}
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]int, n)
	}
	for i := range dst {
		dst[i] = int(int32(binary.LittleEndian.Uint32(buf[4*i:])))
	}
	return dst, nil
}

// MaxTenantNameLen bounds a tenant name on the wire (one length byte).
const MaxTenantNameLen = 255

// inferHeaderSize is the infer-request prefix before the tenant name:
// kind byte + name length byte; a uint32 checkpoint generation follows
// the name, then an embedded tensor payload.
const inferHeaderSize = 2

// EncodeInferRequestInto appends an inference-request payload to buf:
// the target tenant, the checkpoint generation the client expects to be
// served from (0 = whatever the server currently has loaded), and the
// cut-layer activation tensors. It panics on an over-long tenant name —
// serving configs are validated long before a request is built, so an
// oversized name here is a programming error.
func EncodeInferRequestInto(buf []byte, tenant string, gen uint32, ts ...*tensor.Tensor) []byte {
	if len(tenant) == 0 || len(tenant) > MaxTenantNameLen {
		panic(fmt.Sprintf("wire: tenant name %d bytes outside [1,%d]", len(tenant), MaxTenantNameLen))
	}
	buf = append(buf, payloadInfer, byte(len(tenant)))
	buf = append(buf, tenant...)
	buf = binary.LittleEndian.AppendUint32(buf, gen)
	return EncodeTensorsInto(buf, ts...)
}

// EncodeInferRequest packs an inference request into a freshly
// allocated payload.
func EncodeInferRequest(tenant string, gen uint32, ts ...*tensor.Tensor) []byte {
	size := inferHeaderSize + len(tenant) + 4 + tensorsHeaderSize
	for _, t := range ts {
		size += t.EncodedSize()
	}
	return EncodeInferRequestInto(make([]byte, 0, size), tenant, gen, ts...)
}

// DecodeInferRequest unpacks an inference-request header and returns
// the embedded tensor payload unparsed, so the receiver can route on
// the tenant before paying for the tensor decode (and decode into that
// tenant's isolated scratch). The returned tenant string never aliases
// buf; the tensor payload does.
func DecodeInferRequest(buf []byte) (tenant string, gen uint32, tensors []byte, err error) {
	if len(buf) < inferHeaderSize || buf[0] != payloadInfer {
		return "", 0, nil, fmt.Errorf("%w: not an infer-request payload", ErrBadPayload)
	}
	nameLen := int(buf[1])
	if nameLen == 0 || len(buf) < inferHeaderSize+nameLen+4 {
		return "", 0, nil, fmt.Errorf("%w: infer request truncated at tenant name", ErrBadPayload)
	}
	tenant = string(buf[inferHeaderSize : inferHeaderSize+nameLen])
	rest := buf[inferHeaderSize+nameLen:]
	gen = binary.LittleEndian.Uint32(rest)
	return tenant, gen, rest[4:], nil
}

// EncodeText packs a short string (error messages, hello metadata).
func EncodeText(s string) []byte {
	buf := make([]byte, 0, 1+len(s))
	buf = append(buf, payloadText)
	return append(buf, s...)
}

// DecodeText unpacks a payload built by EncodeText.
func DecodeText(buf []byte) (string, error) {
	if len(buf) < 1 || buf[0] != payloadText {
		return "", fmt.Errorf("%w: not a text payload", ErrBadPayload)
	}
	return string(buf[1:]), nil
}
