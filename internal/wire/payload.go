package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"medsplit/internal/tensor"
)

// Payload helpers. The split protocol moves tensors (activations and
// gradients) and, in the label-sharing ablation, integer label vectors.
// Payloads are self-describing: a one-byte kind, a count, then the
// items.

// payload kinds.
const (
	payloadTensors byte = 1
	payloadLabels  byte = 2
	payloadText    byte = 3
)

// ErrBadPayload is returned when a payload cannot be decoded.
var ErrBadPayload = errors.New("wire: bad payload")

// EncodeTensors packs tensors into a payload.
func EncodeTensors(ts ...*tensor.Tensor) []byte {
	size := 2
	for _, t := range ts {
		size += t.EncodedSize()
	}
	buf := make([]byte, 0, size)
	buf = append(buf, payloadTensors, byte(len(ts)))
	for _, t := range ts {
		buf = t.AppendTo(buf)
	}
	return buf
}

// TensorsPayloadSize returns the payload size EncodeTensors would
// produce for tensors of the given shapes.
func TensorsPayloadSize(shapes ...[]int) int {
	size := 2
	for _, s := range shapes {
		size += tensor.EncodedSizeFor(s...)
	}
	return size
}

// DecodeTensors unpacks a payload built by EncodeTensors.
func DecodeTensors(buf []byte) ([]*tensor.Tensor, error) {
	if len(buf) < 2 || buf[0] != payloadTensors {
		return nil, fmt.Errorf("%w: not a tensor payload", ErrBadPayload)
	}
	n := int(buf[1])
	buf = buf[2:]
	out := make([]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		t, rest, err := tensor.Decode(buf)
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d: %v", ErrBadPayload, i, err)
		}
		out = append(out, t)
		buf = rest
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(buf))
	}
	return out, nil
}

// EncodeLabels packs a label vector into a payload.
func EncodeLabels(labels []int) []byte {
	buf := make([]byte, 0, 5+4*len(labels))
	buf = append(buf, payloadLabels)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(labels)))
	buf = append(buf, tmp[:]...)
	for _, lab := range labels {
		binary.LittleEndian.PutUint32(tmp[:], uint32(lab))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// DecodeLabels unpacks a payload built by EncodeLabels.
func DecodeLabels(buf []byte) ([]int, error) {
	if len(buf) < 5 || buf[0] != payloadLabels {
		return nil, fmt.Errorf("%w: not a label payload", ErrBadPayload)
	}
	n := int(binary.LittleEndian.Uint32(buf[1:]))
	buf = buf[5:]
	if len(buf) != 4*n {
		return nil, fmt.Errorf("%w: %d bytes for %d labels", ErrBadPayload, len(buf), n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int32(binary.LittleEndian.Uint32(buf[4*i:])))
	}
	return out, nil
}

// EncodeText packs a short string (error messages, hello metadata).
func EncodeText(s string) []byte {
	buf := make([]byte, 0, 1+len(s))
	buf = append(buf, payloadText)
	return append(buf, s...)
}

// DecodeText unpacks a payload built by EncodeText.
func DecodeText(buf []byte) (string, error) {
	if len(buf) < 1 || buf[0] != payloadText {
		return "", fmt.Errorf("%w: not a text payload", ErrBadPayload)
	}
	return string(buf[1:]), nil
}
