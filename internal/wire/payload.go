package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"medsplit/internal/tensor"
)

// Payload helpers. The split protocol moves tensors (activations and
// gradients) and, in the label-sharing ablation, integer label vectors.
// Payloads are self-describing: a one-byte kind, a count, then the
// items. Tensor payloads carry a uint16 count — the original one-byte
// count silently truncated len(ts) above 255, which an L1 sync of a
// deep front model can exceed.

// payload kinds.
const (
	payloadTensors byte = 1
	payloadLabels  byte = 2
	payloadText    byte = 3
	payloadInfer   byte = 4
	payloadErr     byte = 5
	payloadHealth  byte = 6
)

// tensorsHeaderSize is the tensor payload prefix: kind byte + uint16
// tensor count.
const tensorsHeaderSize = 3

// MaxTensorsPerPayload is the largest tensor count one payload encodes.
const MaxTensorsPerPayload = 1<<16 - 1

// ErrBadPayload is returned when a payload cannot be decoded.
var ErrBadPayload = errors.New("wire: bad payload")

// EncodeTensors packs tensors into a freshly allocated payload.
// Steady-state paths should prefer EncodeTensorsInto with a pooled
// buffer (see BufferPool).
func EncodeTensors(ts ...*tensor.Tensor) []byte {
	size := tensorsHeaderSize
	for _, t := range ts {
		size += t.EncodedSize()
	}
	return EncodeTensorsInto(make([]byte, 0, size), ts...)
}

// EncodeTensorsInto appends the tensor payload to buf and returns the
// extended slice, growing it only when capacity is short. It panics
// when more than MaxTensorsPerPayload tensors are passed — silently
// truncating the count would desynchronize the two protocol ends.
func EncodeTensorsInto(buf []byte, ts ...*tensor.Tensor) []byte {
	if len(ts) > MaxTensorsPerPayload {
		panic(fmt.Sprintf("wire: %d tensors exceed the payload maximum %d", len(ts), MaxTensorsPerPayload))
	}
	var hdr [tensorsHeaderSize]byte
	hdr[0] = payloadTensors
	binary.LittleEndian.PutUint16(hdr[1:], uint16(len(ts)))
	buf = append(buf, hdr[:]...)
	for _, t := range ts {
		buf = t.AppendTo(buf)
	}
	return buf
}

// TensorsPayloadSize returns the payload size EncodeTensors would
// produce for tensors of the given shapes.
func TensorsPayloadSize(shapes ...[]int) int {
	size := tensorsHeaderSize
	for _, s := range shapes {
		size += tensor.EncodedSizeFor(s...)
	}
	return size
}

// DecodeTensors unpacks a payload built by EncodeTensors into freshly
// allocated tensors.
func DecodeTensors(buf []byte) ([]*tensor.Tensor, error) {
	return DecodeTensorsInto(nil, buf)
}

// DecodeTensorsInto unpacks a payload built by EncodeTensors, reusing
// the tensors (and the slice) of dst position by position: dst[i]'s
// storage backs the i-th decoded tensor when its capacity suffices.
// dst may be nil or shorter than the payload's count; missing positions
// allocate. The returned slice is dst (possibly grown) truncated to the
// decoded count, and never aliases buf — the caller may recycle the
// payload buffer as soon as DecodeTensorsInto returns.
func DecodeTensorsInto(dst []*tensor.Tensor, buf []byte) ([]*tensor.Tensor, error) {
	if len(buf) < tensorsHeaderSize || buf[0] != payloadTensors {
		return nil, fmt.Errorf("%w: not a tensor payload", ErrBadPayload)
	}
	n := int(binary.LittleEndian.Uint16(buf[1:]))
	buf = buf[tensorsHeaderSize:]
	for len(dst) < n {
		dst = append(dst, nil)
	}
	out := dst[:n]
	for i := 0; i < n; i++ {
		t, rest, err := tensor.DecodeInto(out[i], buf)
		if err != nil {
			return nil, fmt.Errorf("%w: tensor %d: %v", ErrBadPayload, i, err)
		}
		out[i] = t
		buf = rest
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(buf))
	}
	return out, nil
}

// EncodeLabels packs a label vector into a payload.
func EncodeLabels(labels []int) []byte {
	return EncodeLabelsInto(make([]byte, 0, 5+4*len(labels)), labels)
}

// EncodeLabelsInto appends a label payload to buf and returns the
// extended slice.
func EncodeLabelsInto(buf []byte, labels []int) []byte {
	var tmp [4]byte
	buf = append(buf, payloadLabels)
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(labels)))
	buf = append(buf, tmp[:]...)
	for _, lab := range labels {
		binary.LittleEndian.PutUint32(tmp[:], uint32(lab))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// DecodeLabels unpacks a payload built by EncodeLabels.
func DecodeLabels(buf []byte) ([]int, error) {
	return DecodeLabelsInto(nil, buf)
}

// DecodeLabelsInto unpacks a label payload, reusing dst's storage when
// its capacity suffices. The result never aliases buf.
func DecodeLabelsInto(dst []int, buf []byte) ([]int, error) {
	if len(buf) < 5 || buf[0] != payloadLabels {
		return nil, fmt.Errorf("%w: not a label payload", ErrBadPayload)
	}
	n := int(binary.LittleEndian.Uint32(buf[1:]))
	buf = buf[5:]
	if len(buf) != 4*n {
		return nil, fmt.Errorf("%w: %d bytes for %d labels", ErrBadPayload, len(buf), n)
	}
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]int, n)
	}
	for i := range dst {
		dst[i] = int(int32(binary.LittleEndian.Uint32(buf[4*i:])))
	}
	return dst, nil
}

// MaxTenantNameLen bounds a tenant name on the wire (one length byte).
const MaxTenantNameLen = 255

// inferHeaderSize is the infer-request prefix before the tenant name:
// kind byte + name length byte. After the name come a uint32 checkpoint
// generation, a uint64 request id, a uint32 deadline budget in
// microseconds, then an embedded tensor payload.
const inferHeaderSize = 2

// inferFixedTail is the fixed-size header portion after the tenant
// name: generation(4) + request id(8) + deadline budget(4).
const inferFixedTail = 16

// InferHeader is the routing/robustness header of an inference request.
type InferHeader struct {
	// Tenant names the model the request targets. Required on the wire,
	// at most MaxTenantNameLen bytes.
	Tenant string
	// Generation pins the checkpoint generation the client expects to
	// be served from (0 = whatever the server currently has loaded).
	Generation uint32
	// RequestID identifies the logical request across retries and
	// hedges: every resend of the same Infer call carries the same id,
	// so server-side logs and shed decisions can tell "one client
	// retrying" from "many clients".
	RequestID uint64
	// DeadlineMicros is the client's remaining per-request budget at
	// send time, in microseconds (0 = no deadline). The server arms a
	// local deadline of arrival + budget and sheds the request instead
	// of computing it once that passes — a relative budget rather than
	// an absolute timestamp, so nothing depends on clock sync between
	// hospital platforms and the aggregation server.
	DeadlineMicros uint32
}

// InferRequestPayloadSize returns the payload size EncodeInferRequest
// produces for the given header and tensor shapes.
func InferRequestPayloadSize(tenant string, shapes ...[]int) int {
	return inferHeaderSize + len(tenant) + inferFixedTail + TensorsPayloadSize(shapes...)
}

// EncodeInferRequestInto appends an inference-request payload to buf:
// the header, then the cut-layer activation tensors. It panics on an
// over-long tenant name — serving configs are validated long before a
// request is built, so an oversized name here is a programming error.
func EncodeInferRequestInto(buf []byte, h InferHeader, ts ...*tensor.Tensor) []byte {
	if len(h.Tenant) == 0 || len(h.Tenant) > MaxTenantNameLen {
		panic(fmt.Sprintf("wire: tenant name %d bytes outside [1,%d]", len(h.Tenant), MaxTenantNameLen))
	}
	buf = append(buf, payloadInfer, byte(len(h.Tenant)))
	buf = append(buf, h.Tenant...)
	buf = binary.LittleEndian.AppendUint32(buf, h.Generation)
	buf = binary.LittleEndian.AppendUint64(buf, h.RequestID)
	buf = binary.LittleEndian.AppendUint32(buf, h.DeadlineMicros)
	return EncodeTensorsInto(buf, ts...)
}

// EncodeInferRequest packs an inference request into a freshly
// allocated payload.
func EncodeInferRequest(h InferHeader, ts ...*tensor.Tensor) []byte {
	size := inferHeaderSize + len(h.Tenant) + inferFixedTail + tensorsHeaderSize
	for _, t := range ts {
		size += t.EncodedSize()
	}
	return EncodeInferRequestInto(make([]byte, 0, size), h, ts...)
}

// DecodeInferRequest unpacks an inference-request header and returns
// the embedded tensor payload unparsed, so the receiver can route on
// the tenant before paying for the tensor decode (and decode into that
// tenant's isolated scratch). The returned tenant string never aliases
// buf; the tensor payload does.
func DecodeInferRequest(buf []byte) (h InferHeader, tensors []byte, err error) {
	if len(buf) < inferHeaderSize || buf[0] != payloadInfer {
		return h, nil, fmt.Errorf("%w: not an infer-request payload", ErrBadPayload)
	}
	nameLen := int(buf[1])
	if nameLen == 0 || len(buf) < inferHeaderSize+nameLen+inferFixedTail {
		return h, nil, fmt.Errorf("%w: infer request truncated at header", ErrBadPayload)
	}
	h.Tenant = string(buf[inferHeaderSize : inferHeaderSize+nameLen])
	rest := buf[inferHeaderSize+nameLen:]
	h.Generation = binary.LittleEndian.Uint32(rest)
	h.RequestID = binary.LittleEndian.Uint64(rest[4:])
	h.DeadlineMicros = binary.LittleEndian.Uint32(rest[12:])
	return h, rest[inferFixedTail:], nil
}

// ErrCode classifies a serving-tier rejection on the wire, so clients
// can decide retryability without parsing error text. The zero value
// is deliberately "unknown": an old-style plain-text rejection decodes
// to it and clients treat it as non-retryable.
type ErrCode uint8

// Serving rejection codes. Retryable (the condition is expected to
// clear): CodeOverloaded, CodeExpired, CodeDraining. Non-retryable (the
// request itself is wrong, or the deployment is misconfigured):
// CodeUnknownTenant, CodeGenerationMismatch, CodeBadRequest,
// CodeInternal.
const (
	CodeUnknown ErrCode = iota
	CodeOverloaded
	CodeExpired
	CodeUnknownTenant
	CodeGenerationMismatch
	CodeDraining
	CodeBadRequest
	CodeInternal
)

var errCodeNames = map[ErrCode]string{
	CodeUnknown:            "unknown",
	CodeOverloaded:         "overloaded",
	CodeExpired:            "deadline-expired",
	CodeUnknownTenant:      "unknown-tenant",
	CodeGenerationMismatch: "generation-mismatch",
	CodeDraining:           "draining",
	CodeBadRequest:         "bad-request",
	CodeInternal:           "internal",
}

// String names the code for diagnostics.
func (c ErrCode) String() string {
	if s, ok := errCodeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("errcode(%d)", uint8(c))
}

// Retryable reports whether a client should retry after this code: the
// server expects the condition to clear (queue drains, drain finishes,
// the next attempt carries a fresh deadline).
func (c ErrCode) Retryable() bool {
	switch c {
	case CodeOverloaded, CodeExpired, CodeDraining:
		return true
	}
	return false
}

// errHeaderSize is the serve-error payload prefix: kind byte + code
// byte + uint32 retry-after hint in microseconds; the message text
// fills the rest.
const errHeaderSize = 6

// EncodeServeError packs a structured serving rejection: a machine-
// readable code, a retry-after hint (0 = no hint) and the human-
// readable message.
func EncodeServeError(code ErrCode, retryAfter time.Duration, msg string) []byte {
	buf := make([]byte, 0, errHeaderSize+len(msg))
	buf = append(buf, payloadErr, byte(code))
	var micros uint32
	if retryAfter > 0 {
		if us := retryAfter / time.Microsecond; us < 1<<32 {
			micros = uint32(us)
		} else {
			micros = 1<<32 - 1
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, micros)
	return append(buf, msg...)
}

// DecodeServeError unpacks a payload built by EncodeServeError.
func DecodeServeError(buf []byte) (code ErrCode, retryAfter time.Duration, msg string, err error) {
	if len(buf) < errHeaderSize || buf[0] != payloadErr {
		return 0, 0, "", fmt.Errorf("%w: not a serve-error payload", ErrBadPayload)
	}
	code = ErrCode(buf[1])
	retryAfter = time.Duration(binary.LittleEndian.Uint32(buf[2:])) * time.Microsecond
	return code, retryAfter, string(buf[errHeaderSize:]), nil
}

// HealthState is one tenant's serving state on the wire.
type HealthState uint8

// Tenant health states, ordered by degradation: a serving tenant
// accepts and computes, a degraded one still answers but is shedding or
// running its fallback model, a draining one rejects new work while
// in-flight batches finish.
const (
	HealthServing HealthState = iota
	HealthDegraded
	HealthDraining
)

var healthStateNames = map[HealthState]string{
	HealthServing:  "serving",
	HealthDegraded: "degraded",
	HealthDraining: "draining",
}

// String names the state.
func (s HealthState) String() string {
	if n, ok := healthStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("health(%d)", uint8(s))
}

// TenantHealth is one tenant's entry in a MsgHealth response.
type TenantHealth struct {
	// Tenant is the tenant name.
	Tenant string
	// State is the tenant's current serving state.
	State HealthState
	// QueueDepth is the pending admission-queue length at snapshot
	// time.
	QueueDepth uint32
	// Generation is the checkpoint generation the warm model serves.
	Generation uint32
	// RetryAfterMicros is the server's backoff hint for shed requests
	// (0 = none).
	RetryAfterMicros uint32
}

// healthEntryFixed is the fixed bytes per health entry beyond the
// name: state(1) + queue depth(4) + generation(4) + retry-after(4).
const healthEntryFixed = 13

// EncodeHealth packs a tenant health snapshot. Entries should be in a
// deterministic order (the serving tier sorts by tenant name). Panics
// on more than 255 entries or an over-long tenant name — both are
// validated at configuration time.
func EncodeHealth(entries []TenantHealth) []byte {
	if len(entries) > 255 {
		panic(fmt.Sprintf("wire: %d health entries exceed 255", len(entries)))
	}
	size := 2
	for _, e := range entries {
		size += 1 + len(e.Tenant) + healthEntryFixed
	}
	buf := make([]byte, 0, size)
	buf = append(buf, payloadHealth, byte(len(entries)))
	for _, e := range entries {
		if len(e.Tenant) == 0 || len(e.Tenant) > MaxTenantNameLen {
			panic(fmt.Sprintf("wire: tenant name %d bytes outside [1,%d]", len(e.Tenant), MaxTenantNameLen))
		}
		buf = append(buf, byte(len(e.Tenant)))
		buf = append(buf, e.Tenant...)
		buf = append(buf, byte(e.State))
		buf = binary.LittleEndian.AppendUint32(buf, e.QueueDepth)
		buf = binary.LittleEndian.AppendUint32(buf, e.Generation)
		buf = binary.LittleEndian.AppendUint32(buf, e.RetryAfterMicros)
	}
	return buf
}

// DecodeHealth unpacks a payload built by EncodeHealth. The returned
// entries never alias buf.
func DecodeHealth(buf []byte) ([]TenantHealth, error) {
	if len(buf) < 2 || buf[0] != payloadHealth {
		return nil, fmt.Errorf("%w: not a health payload", ErrBadPayload)
	}
	n := int(buf[1])
	buf = buf[2:]
	entries := make([]TenantHealth, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < 1 {
			return nil, fmt.Errorf("%w: health entry %d truncated", ErrBadPayload, i)
		}
		nameLen := int(buf[0])
		if nameLen == 0 || len(buf) < 1+nameLen+healthEntryFixed {
			return nil, fmt.Errorf("%w: health entry %d truncated", ErrBadPayload, i)
		}
		e := TenantHealth{Tenant: string(buf[1 : 1+nameLen])}
		rest := buf[1+nameLen:]
		e.State = HealthState(rest[0])
		e.QueueDepth = binary.LittleEndian.Uint32(rest[1:])
		e.Generation = binary.LittleEndian.Uint32(rest[5:])
		e.RetryAfterMicros = binary.LittleEndian.Uint32(rest[9:])
		entries = append(entries, e)
		buf = rest[healthEntryFixed:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after health entries", ErrBadPayload, len(buf))
	}
	return entries, nil
}

// EncodeText packs a short string (error messages, hello metadata).
func EncodeText(s string) []byte {
	buf := make([]byte, 0, 1+len(s))
	buf = append(buf, payloadText)
	return append(buf, s...)
}

// DecodeText unpacks a payload built by EncodeText.
func DecodeText(buf []byte) (string, error) {
	if len(buf) < 1 || buf[0] != payloadText {
		return "", fmt.Errorf("%w: not a text payload", ErrBadPayload)
	}
	return string(buf[1:]), nil
}
