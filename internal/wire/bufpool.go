package wire

import (
	"math/bits"
	"sync"
)

// BufferPool recycles payload byte buffers through power-of-two size
// classes, each backed by a sync.Pool. The split protocol encodes the
// same handful of payload sizes every round, so routing payloads
// through a pool turns per-message allocations into constant-space
// buffer reuse.
//
// Ownership protocol (see also the transport package):
//
//   - A sender draws a buffer with Get, fills it (EncodeTensorsInto and
//     friends append into it) and hands it to Conn.Send as the message
//     payload. From that point the payload belongs to the receiving
//     side: the in-process pipe transport delivers the very same bytes
//     by reference, so the sender must not touch or re-Put the buffer
//     after Send.
//   - A receiver that has fully consumed a payload (decoded it into
//     tensors that do not alias the buffer) releases it with Put —
//     typically via ReleasePayload. Releasing is optional: a payload
//     that is never Put is simply garbage collected, so partial
//     adoption is safe.
//   - A payload shared across several Send calls (a broadcast) must not
//     be released by its receivers: each receiver would Put the same
//     backing array, and two later Gets would alias. Only payloads with
//     exactly one receiver go back to the pool; in this repo that is
//     the four per-connection training messages.
//
// The zero value is ready to use. All methods are safe for concurrent
// use; a Put/Get pair synchronizes through the sync.Pool, so handing a
// buffer from one goroutine to another through the pool is race-free.
type BufferPool struct {
	classes [32]sync.Pool
	// boxes recycles the *[]byte wrappers the class pools store, so Put
	// does not allocate a fresh box per call (a bare []byte stored in a
	// sync.Pool would escape into a new interface box every time).
	boxes sync.Pool
}

// Buffers is the process-wide payload pool. The transports and the core
// protocol loops share it, so a buffer released by a pipe receiver is
// immediately reusable by the sender that originally drew it.
var Buffers BufferPool

// bufClass returns the bucket index for an n-byte buffer: the smallest
// power of two >= n.
func bufClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns an empty buffer (len 0) with capacity at least n, reusing
// pooled storage when available. Append into it and pass the result to
// Put when done.
func (p *BufferPool) Get(n int) []byte {
	cls := bufClass(n)
	if b, ok := p.classes[cls].Get().(*[]byte); ok && cap(*b) >= n {
		buf := (*b)[:0]
		*b = nil
		p.boxes.Put(b)
		return buf
	}
	return make([]byte, 0, 1<<cls)
}

// Put returns buf's storage to the pool. buf must not be used
// afterwards. Buffers with non-power-of-two capacity (not produced by
// Get) are dropped rather than pooled, so Put is safe to call on any
// payload.
func (p *BufferPool) Put(buf []byte) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	b, _ := p.boxes.Get().(*[]byte)
	if b == nil {
		b = new([]byte)
	}
	*b = buf[:0]
	p.classes[bufClass(c)].Put(b)
}

// ReleasePayload returns m's payload to the pool. Call it only as the
// payload's sole receiver, after decoding; the message must not be read
// for payload *contents* afterwards. The message struct itself is left
// untouched — over the in-process pipe transport it is shared with the
// sender, whose metering still reads the payload length after delivery,
// so detaching the slice here would race.
func ReleasePayload(p *BufferPool, m *Message) {
	if m == nil || m.Payload == nil {
		return
	}
	p.Put(m.Payload)
}
