package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{Type: MsgActivations, Platform: 3, Round: 42, Payload: []byte{1, 2, 3}}
	var buf bytes.Buffer
	n, err := m.Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != m.WireSize() || n != buf.Len() {
		t.Fatalf("wrote %d, WireSize %d, buffered %d", n, m.WireSize(), buf.Len())
	}
	got, rn, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rn != n {
		t.Fatalf("read %d bytes, wrote %d", rn, n)
	}
	if got.Type != m.Type || got.Platform != 3 || got.Round != 42 || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestEmptyPayloadMessage(t *testing.T) {
	m := &Message{Type: MsgAck}
	var buf bytes.Buffer
	if _, err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload %v", got.Payload)
	}
}

func TestSequentialMessagesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		m := &Message{Type: MsgLogits, Round: uint32(i), Payload: []byte{byte(i)}}
		if _, err := m.Write(&buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		got, _, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Round != uint32(i) || got.Payload[0] != byte(i) {
			t.Fatalf("message %d out of order: %+v", i, got)
		}
	}
	if _, _, err := Read(&buf); err != io.EOF {
		t.Fatalf("expected EOF at end of stream, got %v", err)
	}
}

func TestWriteRejectsInvalidType(t *testing.T) {
	var buf bytes.Buffer
	if _, err := (&Message{}).Write(&buf); !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v, want ErrBadType", err)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	mk := func() []byte {
		var buf bytes.Buffer
		m := &Message{Type: MsgCutGrad, Payload: []byte{9, 9, 9, 9}}
		if _, err := m.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	t.Run("bad magic", func(t *testing.T) {
		b := mk()
		b[0] ^= 0xff
		if _, _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := mk()
		b[2] = 99
		if _, _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad type", func(t *testing.T) {
		b := mk()
		b[3] = 200
		if _, _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadType) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		b := mk()
		b[len(b)-1] ^= 0x01
		if _, _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		b := mk()
		if _, _, err := Read(bytes.NewReader(b[:len(b)-2])); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("hostile length", func(t *testing.T) {
		b := mk()
		// Set payload length to maxPayload+1.
		b[12], b[13], b[14], b[15] = 0x01, 0x00, 0x00, 0x10
		if _, _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestMsgTypeStrings(t *testing.T) {
	for mt := MsgHello; mt < msgTypeCount; mt++ {
		if !mt.Valid() {
			t.Fatalf("type %d invalid", mt)
		}
		if mt.String() == "" {
			t.Fatalf("type %d has empty name", mt)
		}
	}
	if MsgType(0).Valid() || MsgType(200).Valid() {
		t.Fatal("invalid types reported valid")
	}
}

func TestTensorPayloadRoundTrip(t *testing.T) {
	r := rng.New(1)
	a := tensor.New(4, 7)
	a.FillNormal(r, 0, 1)
	b := tensor.New(2, 3, 3)
	b.FillNormal(r, 0, 1)
	payload := EncodeTensors(a, b)
	if len(payload) != TensorsPayloadSize([]int{4, 7}, []int{2, 3, 3}) {
		t.Fatalf("payload %d bytes, predicted %d", len(payload), TensorsPayloadSize([]int{4, 7}, []int{2, 3, 3}))
	}
	ts, err := DecodeTensors(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || !tensor.AllClose(ts[0], a, 0) || !tensor.AllClose(ts[1], b, 0) {
		t.Fatal("tensor payload mismatch")
	}
	// Corruptions.
	if _, err := DecodeTensors(payload[:5]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("truncated: %v", err)
	}
	if _, err := DecodeTensors(append(payload, 0)); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("trailing: %v", err)
	}
	if _, err := DecodeTensors(EncodeLabels([]int{1})); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("wrong kind: %v", err)
	}
}

func TestLabelsPayloadRoundTrip(t *testing.T) {
	labels := []int{0, 5, 99, 3}
	got, err := DecodeLabels(EncodeLabels(labels))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(labels) {
		t.Fatalf("got %v", got)
	}
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("got %v, want %v", got, labels)
		}
	}
	// Empty labels round-trip.
	if got, err := DecodeLabels(EncodeLabels(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
	if _, err := DecodeLabels([]byte{payloadLabels, 1}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestTextPayloadRoundTrip(t *testing.T) {
	s, err := DecodeText(EncodeText("hello platform"))
	if err != nil || s != "hello platform" {
		t.Fatalf("%q %v", s, err)
	}
	if _, err := DecodeText(nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("nil: %v", err)
	}
}

// Property: any message round-trips bit-exactly through a stream.
func TestMessageRoundTripProperty(t *testing.T) {
	f := func(platform, round uint32, payload []byte) bool {
		m := &Message{Type: MsgGradPush, Platform: platform, Round: round, Payload: payload}
		var buf bytes.Buffer
		if _, err := m.Write(&buf); err != nil {
			return false
		}
		got, _, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.Platform == platform && got.Round == round && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteRead(b *testing.B) {
	payload := make([]byte, 16*1024)
	m := &Message{Type: MsgActivations, Payload: payload}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := m.Write(&buf); err != nil {
			b.Fatal(err)
		}
		if _, _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(m.WireSize()))
}
