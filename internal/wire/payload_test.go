package wire

import (
	"bytes"
	"errors"
	"testing"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

// TestWideTensorCount: the uint16 count encoding must round-trip
// payloads with more than 255 tensors — the original one-byte count
// silently truncated them (300 tensors decoded as 44).
func TestWideTensorCount(t *testing.T) {
	ts := make([]*tensor.Tensor, 300)
	for i := range ts {
		ts[i] = tensor.Full(float32(i), 2)
	}
	got, err := DecodeTensors(EncodeTensors(ts...))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("decoded %d tensors, want 300", len(got))
	}
	if got[299].At(0) != 299 {
		t.Fatalf("tensor 299 decoded as %v", got[299].At(0))
	}
}

// TestEncodeTensorsRejectsOverflow: counts the format cannot represent
// must panic instead of truncating.
func TestEncodeTensorsRejectsOverflow(t *testing.T) {
	scalar := tensor.New()
	ts := make([]*tensor.Tensor, MaxTensorsPerPayload+1)
	for i := range ts {
		ts[i] = scalar
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeTensors accepted an untruncatable count")
		}
	}()
	EncodeTensors(ts...)
}

// TestDecodeTensorsCorruptInputs: table-driven malformed payloads. Every
// case must fail cleanly with ErrBadPayload — never panic, never
// silently succeed.
func TestDecodeTensorsCorruptInputs(t *testing.T) {
	r := rng.New(9)
	x := tensor.New(3, 5)
	x.FillNormal(r, 0, 1)
	good := EncodeTensors(x, x)
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"kind only", []byte{1}},
		{"wrong kind", append([]byte{9}, good[1:]...)},
		{"count only", good[:3]},
		{"truncated mid-shape", good[:5]},
		{"truncated mid-data", good[:len(good)/2]},
		{"one byte short", good[:len(good)-1]},
		{"overlong", append(append([]byte{}, good...), 0xEE)},
		{"count larger than tensors", func() []byte {
			b := append([]byte{}, good...)
			b[1] = 3 // claims 3 tensors, carries 2
			return b
		}()},
		{"count smaller than tensors", func() []byte {
			b := append([]byte{}, good...)
			b[1] = 1 // claims 1 tensor, carries 2 -> trailing bytes
			return b
		}()},
		{"zero dimension", func() []byte {
			b := append([]byte{}, good...)
			b[4] = 0 // first dim of first shape
			return b
		}()},
		{"hostile volume", func() []byte {
			b := append([]byte{}, good...)
			// First tensor claims [0xffffffff, 5]: volume overflows cap.
			b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeTensors(tc.buf); !errors.Is(err, ErrBadPayload) {
				t.Fatalf("err = %v, want ErrBadPayload", err)
			}
		})
	}
}

// TestDecodeTensorsIntoReuse: same-shape payloads must decode into the
// previous tensors' storage without reallocating, and the decoded
// tensors must never alias the payload.
func TestDecodeTensorsIntoReuse(t *testing.T) {
	r := rng.New(10)
	a := tensor.New(4, 6)
	a.FillNormal(r, 0, 1)
	payload := EncodeTensors(a)
	dst, err := DecodeTensorsInto(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	before := &dst[0].Data()[0]
	// Corrupting the payload after decode must not affect the tensors:
	// the last payload byte backs the last element's high bits.
	saved := dst[0].At(3, 5)
	payload[len(payload)-1] ^= 0xff
	if dst[0].At(3, 5) != saved {
		t.Fatal("decoded tensor aliases the payload buffer")
	}
	payload[len(payload)-1] ^= 0xff
	dst2, err := DecodeTensorsInto(dst, payload)
	if err != nil {
		t.Fatal(err)
	}
	if &dst2[0].Data()[0] != before {
		t.Fatal("same-shape decode reallocated storage")
	}
	if !tensor.AllClose(dst2[0], a, 0) {
		t.Fatal("reused decode lost values")
	}
}

// TestBufferPoolRecycles: a released buffer must come back from the
// next suitably-sized Get, and oddly-sized buffers must be dropped.
func TestBufferPoolRecycles(t *testing.T) {
	var p BufferPool
	buf := p.Get(1000)
	if len(buf) != 0 || cap(buf) < 1000 {
		t.Fatalf("Get(1000): len %d cap %d", len(buf), cap(buf))
	}
	buf = append(buf, make([]byte, 700)...)
	first := &buf[:cap(buf)][0]
	p.Put(buf)
	again := p.Get(900)
	if cap(again) < 900 {
		t.Fatalf("recycled Get(900) cap %d", cap(again))
	}
	if &again[:cap(again)][0] != first {
		t.Fatal("Get did not recycle the released buffer")
	}
	// Non-power-of-two capacities are dropped, not pooled.
	p.Put(make([]byte, 0, 1000))
	odd := p.Get(1000)
	if cap(odd) == 1000 {
		t.Fatal("pooled a non-power-of-two buffer")
	}
	// ReleasePayload tolerates nil messages and payloads.
	ReleasePayload(&p, nil)
	ReleasePayload(&p, &Message{Type: MsgAck})
}

// TestReadPooled: frames read through a pool must carry the exact
// payload and recycle through the pool after release.
func TestReadPooled(t *testing.T) {
	var p BufferPool
	m := &Message{Type: MsgActivations, Platform: 2, Round: 7, Payload: []byte{1, 2, 3, 4, 5}}
	var stream bytes.Buffer
	if _, err := m.Write(&stream); err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadPooled(&stream, &p)
	if err != nil {
		t.Fatal(err)
	}
	if n != m.WireSize() || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("ReadPooled mismatch: %d bytes, payload %v", n, got.Payload)
	}
	if c := cap(got.Payload); c&(c-1) != 0 {
		t.Fatalf("pooled payload capacity %d not a power of two", c)
	}
	ReleasePayload(&p, got)
	if buf := p.Get(5); cap(buf) < 5 {
		t.Fatal("released payload did not return to the pool")
	}
}

// FuzzDecodeTensors hammers the payload decoder with arbitrary bytes:
// it must never panic or allocate unboundedly, and everything it
// accepts must re-encode to a payload that decodes to the same tensors.
func FuzzDecodeTensors(f *testing.F) {
	r := rng.New(11)
	x := tensor.New(2, 3)
	x.FillNormal(r, 0, 1)
	f.Add(EncodeTensors(x))
	f.Add(EncodeTensors())
	f.Add([]byte{payloadTensors, 1, 0, 1, 0, 0, 0, 0})
	f.Add([]byte{payloadTensors, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := DecodeTensors(data)
		if err != nil {
			return
		}
		back, err := DecodeTensors(EncodeTensors(ts...))
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		if len(back) != len(ts) {
			t.Fatalf("%d tensors became %d after round trip", len(ts), len(back))
		}
		for i := range ts {
			if !tensor.SameShape(ts[i], back[i]) {
				t.Fatalf("tensor %d changed shape", i)
			}
		}
	})
}
