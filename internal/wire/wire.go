// Package wire defines the message vocabulary and framing that medsplit's
// distributed-training protocols speak: the four-message split-learning
// exchange of the paper (activations, logits, loss gradients, cut
// gradients), the model/gradient exchange of the parameter-server
// baselines, and the session control messages.
//
// Framing is length-prefixed with a magic, a protocol version and a
// CRC-32 over the payload, so stream corruption and version skew fail
// fast instead of desynchronizing training. Every encoder reports exact
// byte counts — communication volume is the paper's headline metric, so
// accounting is part of the wire contract, not an afterthought.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
)

// MsgType enumerates protocol messages. The zero value is invalid so an
// uninitialized message fails loudly.
type MsgType uint8

// Message types. Hello/HelloAck establish a session; Activations,
// Logits, LossGrad and CutGrad are the paper's four communications
// (Fig. 2/3); ModelPull/ModelPush/GradPush serve the parameter-server
// baselines; Labels exists for the label-sharing ablation; Ack and
// ErrorMsg close control loops; Rejoin/RejoinAck re-attach a platform
// that lost its connection mid-session (dropout recovery); the
// ReplBase/ReplMeta/ReplRecord/ReplAck quartet carries the
// leader→follower replication stream (bootstrap snapshot, session
// metadata, per-step WAL records, watermark acks); InferRequest/
// InferResponse carry the multi-tenant serving path (platform-side
// front-half activations in, server-side back-half logits out).
const (
	MsgHello MsgType = iota + 1
	MsgHelloAck
	MsgActivations
	MsgLogits
	MsgLossGrad
	MsgCutGrad
	MsgModelPull
	MsgModelPush
	MsgGradPush
	MsgLabels
	MsgAck
	MsgErrorMsg
	MsgEvalActivations
	MsgEvalLogits
	MsgBye
	MsgRejoin
	MsgRejoinAck
	MsgReplBase
	MsgReplMeta
	MsgReplRecord
	MsgReplAck
	MsgInferRequest
	MsgInferResponse
	MsgHealth

	msgTypeCount = iota + 1
)

var msgTypeNames = map[MsgType]string{
	MsgHello:           "hello",
	MsgHelloAck:        "hello-ack",
	MsgActivations:     "activations",
	MsgLogits:          "logits",
	MsgLossGrad:        "loss-grad",
	MsgCutGrad:         "cut-grad",
	MsgModelPull:       "model-pull",
	MsgModelPush:       "model-push",
	MsgGradPush:        "grad-push",
	MsgLabels:          "labels",
	MsgAck:             "ack",
	MsgErrorMsg:        "error",
	MsgEvalActivations: "eval-activations",
	MsgEvalLogits:      "eval-logits",
	MsgBye:             "bye",
	MsgRejoin:          "rejoin",
	MsgRejoinAck:       "rejoin-ack",
	MsgReplBase:        "repl-base",
	MsgReplMeta:        "repl-meta",
	MsgReplRecord:      "repl-record",
	MsgReplAck:         "repl-ack",
	MsgInferRequest:    "infer-request",
	MsgInferResponse:   "infer-response",
	MsgHealth:          "health",
}

// String names the message type for diagnostics.
func (t MsgType) String() string {
	if s, ok := msgTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Valid reports whether t is a known message type.
func (t MsgType) Valid() bool {
	_, ok := msgTypeNames[t]
	return ok
}

// Message is one framed protocol unit.
type Message struct {
	Type     MsgType
	Platform uint32 // sending/target platform id (0 = server)
	Round    uint32 // training round the message belongs to
	Payload  []byte
}

// Framing constants.
const (
	magic uint16 = 0x5D17 // "SplIT"
	// version 2: tensor payload counts widened from one byte to uint16
	// (the old encoding silently truncated counts above 255).
	// version 3: the Rejoin/RejoinAck dropout-recovery control pair
	// joined the vocabulary. A version-2 peer would reject the new
	// types with ErrBadType only when a dropout actually happened —
	// mid-training, after hours of work — so the version bump makes
	// mixed deployments fail fast with ErrBadVersion at the first
	// frame instead.
	// version 4: the ReplBase/ReplMeta/ReplRecord/ReplAck replication
	// stream joined (leader → warm-follower state streaming). Same
	// rationale as v3: a mixed leader/follower pair must fail at the
	// first frame, not when a failover is already in progress.
	// version 5: the InferRequest/InferResponse serving pair joined
	// (multi-tenant split inference, internal/serve). An old platform
	// dialing a serving endpoint — or a new inference client dialing an
	// old trainer — fails at the first frame instead of desynchronizing
	// on an unknown type mid-stream.
	// version 6: InferRequest carries a per-request id and a deadline
	// budget (so the server can shed already-expired work instead of
	// computing it), serving rejections became structured error payloads
	// (code + retry-after hint), and the MsgHealth probe joined the
	// vocabulary. The infer-request payload layout changed shape, so a
	// v5 peer must fail at the first frame, not mis-decode a deadline as
	// tensor bytes.
	version uint8 = 6

	// FrameVersion is the exported frame version, for protocols that
	// negotiate it explicitly in their application-level handshakes
	// (fedavg/syncsgd embed it in their hello strings and fail fast
	// with a FrameSkewError on mismatch). It always equals the framing
	// layer's own version byte.
	FrameVersion = int(version)

	// headerSize: magic(2) + version(1) + type(1) + platform(4) +
	// round(4) + payloadLen(4) + crc(4).
	headerSize = 20

	// maxPayload caps a frame at 256 MiB, far above any tensor batch
	// this system ships but small enough to stop a corrupt length from
	// allocating unbounded memory.
	maxPayload = 1 << 28
)

// Sentinel errors.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: protocol version mismatch")
	ErrBadType    = errors.New("wire: unknown message type")
	ErrTooLarge   = errors.New("wire: payload exceeds limit")
	ErrChecksum   = errors.New("wire: payload checksum mismatch")
)

// FrameSkewError reports a frame-version mismatch detected by an
// application-level handshake (as opposed to ErrBadVersion, which the
// framing layer raises on a raw frame byte). Got < 0 means the peer
// declared no version at all — a pre-negotiation build. It unwraps to
// ErrBadVersion so errors.Is sees one version-skew family.
type FrameSkewError struct {
	Got, Want int
}

// Error renders the mismatch.
func (e *FrameSkewError) Error() string {
	if e.Got < 0 {
		return fmt.Sprintf("wire: peer declared no frame version (predates negotiation), want %d", e.Want)
	}
	return fmt.Sprintf("wire: peer frame version %d, want %d", e.Got, e.Want)
}

// Unwrap folds the typed error into the ErrBadVersion family.
func (e *FrameSkewError) Unwrap() error { return ErrBadVersion }

// FrameField renders the ";frame=N" hello-string suffix through which
// application-level handshakes declare the wire frame version they were
// built against. Append it last: CutFrameField splits on the first
// occurrence and treats everything after it as the version number.
func FrameField() string { return fmt.Sprintf(";frame=%d", FrameVersion) }

// CutFrameField splits a hello meta string into its base configuration
// and the declared frame version, validating the version against this
// build's FrameVersion. A missing or malformed field is reported as a
// *FrameSkewError with Got < 0 — the peer predates negotiation — so
// protocols that adopt FrameField fail fast against unversioned peers
// instead of mis-reporting the skew as a configuration mismatch.
func CutFrameField(meta string) (string, error) {
	base, val, ok := strings.Cut(meta, ";frame=")
	if !ok {
		return meta, &FrameSkewError{Got: -1, Want: FrameVersion}
	}
	got, err := strconv.Atoi(val)
	if err != nil || got < 0 {
		return base, &FrameSkewError{Got: -1, Want: FrameVersion}
	}
	if got != FrameVersion {
		return base, &FrameSkewError{Got: got, Want: FrameVersion}
	}
	return base, nil
}

// WireSize returns the exact number of bytes m occupies on the wire.
func (m *Message) WireSize() int { return headerSize + len(m.Payload) }

// WireSizeFor returns the on-the-wire size of a message with the given
// payload length without building it.
func WireSizeFor(payloadLen int) int { return headerSize + payloadLen }

// Write frames m onto w, returning the bytes written.
func (m *Message) Write(w io.Writer) (int, error) {
	if !m.Type.Valid() {
		return 0, fmt.Errorf("%w: %d", ErrBadType, m.Type)
	}
	if len(m.Payload) > maxPayload {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(m.Payload))
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint16(hdr[0:], magic)
	hdr[2] = version
	hdr[3] = byte(m.Type)
	binary.LittleEndian.PutUint32(hdr[4:], m.Platform)
	binary.LittleEndian.PutUint32(hdr[8:], m.Round)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(m.Payload)))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(m.Payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wire: writing header: %w", err)
	}
	if len(m.Payload) > 0 {
		if _, err := w.Write(m.Payload); err != nil {
			return headerSize, fmt.Errorf("wire: writing payload: %w", err)
		}
	}
	return headerSize + len(m.Payload), nil
}

// Read parses one frame from r, returning the message and the bytes
// consumed. The payload is freshly allocated; transports on the
// steady-state round path use ReadPooled instead.
func Read(r io.Reader) (*Message, int, error) {
	return readFrame(r, nil)
}

// ReadPooled parses one frame from r, drawing the payload buffer from
// pool. The caller (or whoever it hands the message to) owns the
// payload and should release it with ReleasePayload once decoded, which
// is what makes the receive path allocation-free in steady state.
func ReadPooled(r io.Reader, pool *BufferPool) (*Message, int, error) {
	return readFrame(r, pool)
}

func readFrame(r io.Reader, pool *BufferPool) (*Message, int, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// Propagate EOF unwrapped so callers can detect clean shutdown.
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("wire: reading header: %w", err)
	}
	if binary.LittleEndian.Uint16(hdr[0:]) != magic {
		return nil, headerSize, ErrBadMagic
	}
	if hdr[2] != version {
		return nil, headerSize, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, hdr[2], version)
	}
	t := MsgType(hdr[3])
	if !t.Valid() {
		return nil, headerSize, fmt.Errorf("%w: %d", ErrBadType, hdr[3])
	}
	plen := binary.LittleEndian.Uint32(hdr[12:])
	if plen > maxPayload {
		return nil, headerSize, fmt.Errorf("%w: %d bytes", ErrTooLarge, plen)
	}
	m := &Message{
		Type:     t,
		Platform: binary.LittleEndian.Uint32(hdr[4:]),
		Round:    binary.LittleEndian.Uint32(hdr[8:]),
	}
	if plen > 0 {
		if pool != nil {
			m.Payload = pool.Get(int(plen))[:plen]
		} else {
			m.Payload = make([]byte, plen)
		}
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return nil, headerSize, fmt.Errorf("wire: reading payload: %w", err)
		}
	}
	if crc32.ChecksumIEEE(m.Payload) != binary.LittleEndian.Uint32(hdr[16:]) {
		return nil, headerSize + int(plen), ErrChecksum
	}
	return m, headerSize + int(plen), nil
}
