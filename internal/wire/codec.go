package wire

import (
	"fmt"

	"medsplit/internal/tensor"
)

// Codec converts tensors to and from message payloads on the split
// protocol's activation path. The default RawCodec ships exact float32;
// package compress provides lossy codecs (float16, int8 quantization,
// top-k sparsification) that trade accuracy for wire volume — the
// standard extension knob in the split-learning literature.
//
// Payloads are self-describing (each codec owns a distinct kind byte),
// so a decoder can reject payloads produced by a codec it did not agree
// to at handshake time.
type Codec interface {
	// Name identifies the codec in handshakes; both ends must match.
	Name() string
	// EncodeTensors packs tensors into a payload.
	EncodeTensors(ts ...*tensor.Tensor) []byte
	// DecodeTensors unpacks a payload this codec produced.
	DecodeTensors(buf []byte) ([]*tensor.Tensor, error)
}

// RawCodec is the exact float32 codec (the paper's implicit choice).
// Its payloads are identical to EncodeTensors/DecodeTensors.
type RawCodec struct{}

var _ Codec = RawCodec{}

// Name returns "raw".
func (RawCodec) Name() string { return "raw" }

// EncodeTensors packs exact float32 tensors.
func (RawCodec) EncodeTensors(ts ...*tensor.Tensor) []byte { return EncodeTensors(ts...) }

// DecodeTensors unpacks exact float32 tensors.
func (RawCodec) DecodeTensors(buf []byte) ([]*tensor.Tensor, error) {
	ts, err := DecodeTensors(buf)
	if err != nil {
		return nil, fmt.Errorf("wire: raw codec: %w", err)
	}
	return ts, nil
}
