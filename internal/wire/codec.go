package wire

import (
	"fmt"

	"medsplit/internal/tensor"
)

// Codec converts tensors to and from message payloads on the split
// protocol's activation path. The default RawCodec ships exact float32;
// package compress provides lossy codecs (float16, int8 quantization,
// top-k sparsification) that trade accuracy for wire volume — the
// standard extension knob in the split-learning literature.
//
// Payloads are self-describing (each codec owns a distinct kind byte),
// so a decoder can reject payloads produced by a codec it did not agree
// to at handshake time.
type Codec interface {
	// Name identifies the codec in handshakes; both ends must match.
	Name() string
	// EncodeTensors packs tensors into a payload.
	EncodeTensors(ts ...*tensor.Tensor) []byte
	// DecodeTensors unpacks a payload this codec produced.
	DecodeTensors(buf []byte) ([]*tensor.Tensor, error)
}

// ReusableCodec is the buffer-reusing superset of Codec that every
// codec in this repo implements. Steady-state protocol loops use it so
// a round performs zero payload and tensor allocations:
//
//   - EncodeTensorsInto appends the payload to a caller-owned buffer
//     (typically drawn from a BufferPool) instead of allocating one.
//   - DecodeTensorsInto decodes into caller-owned tensors position by
//     position, reusing their storage when shapes repeat across rounds.
//     Decoded tensors never alias the payload buffer, so the caller may
//     recycle it immediately after decode.
//
// Codec remains the minimal interface third-party codecs implement;
// EncodeInto/DecodeInto fall back to the allocating methods when the
// codec does not satisfy ReusableCodec.
type ReusableCodec interface {
	Codec
	// EncodeTensorsInto appends the payload for ts to buf and returns
	// the extended slice.
	EncodeTensorsInto(buf []byte, ts ...*tensor.Tensor) []byte
	// DecodeTensorsInto unpacks a payload, reusing dst's tensors (and
	// the slice itself) when capacities suffice. dst may be nil.
	DecodeTensorsInto(dst []*tensor.Tensor, buf []byte) ([]*tensor.Tensor, error)
}

// EncodeInto encodes through c's buffer-reusing path when available and
// falls back to the allocating path otherwise.
func EncodeInto(c Codec, buf []byte, ts ...*tensor.Tensor) []byte {
	if rc, ok := c.(ReusableCodec); ok {
		return rc.EncodeTensorsInto(buf, ts...)
	}
	return append(buf, c.EncodeTensors(ts...)...)
}

// DecodeInto decodes through c's tensor-reusing path when available and
// falls back to the allocating path otherwise.
func DecodeInto(c Codec, dst []*tensor.Tensor, buf []byte) ([]*tensor.Tensor, error) {
	if rc, ok := c.(ReusableCodec); ok {
		return rc.DecodeTensorsInto(dst, buf)
	}
	return c.DecodeTensors(buf)
}

// RawCodec is the exact float32 codec (the paper's implicit choice).
// Its payloads are identical to EncodeTensors/DecodeTensors.
type RawCodec struct{}

var _ ReusableCodec = RawCodec{}

// Name returns "raw".
func (RawCodec) Name() string { return "raw" }

// EncodeTensors packs exact float32 tensors.
func (RawCodec) EncodeTensors(ts ...*tensor.Tensor) []byte { return EncodeTensors(ts...) }

// EncodeTensorsInto packs exact float32 tensors into buf.
func (RawCodec) EncodeTensorsInto(buf []byte, ts ...*tensor.Tensor) []byte {
	return EncodeTensorsInto(buf, ts...)
}

// DecodeTensors unpacks exact float32 tensors.
func (RawCodec) DecodeTensors(buf []byte) ([]*tensor.Tensor, error) {
	return RawCodec{}.DecodeTensorsInto(nil, buf)
}

// DecodeTensorsInto unpacks exact float32 tensors, reusing dst.
func (RawCodec) DecodeTensorsInto(dst []*tensor.Tensor, buf []byte) ([]*tensor.Tensor, error) {
	ts, err := DecodeTensorsInto(dst, buf)
	if err != nil {
		return nil, fmt.Errorf("wire: raw codec: %w", err)
	}
	return ts, nil
}
