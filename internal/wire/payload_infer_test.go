package wire

import (
	"errors"
	"strings"
	"testing"
	"time"

	"medsplit/internal/tensor"
)

func TestInferRequestRoundTrip(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	h := InferHeader{Tenant: "clinic-7", Generation: 42, RequestID: 1<<40 + 9, DeadlineMicros: 250_000}
	payload := EncodeInferRequest(h, a)

	got, tpay, err := DecodeInferRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header %+v, want %+v", got, h)
	}
	ts, err := DecodeTensors(tpay)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || !tensor.SameShape(ts[0], a) {
		t.Fatalf("decoded %d tensors, first shape %v", len(ts), ts[0].Shape())
	}
	for i, v := range ts[0].Data() {
		if v != a.Data()[i] {
			t.Fatalf("element %d: %v != %v", i, v, a.Data()[i])
		}
	}
	if want := InferRequestPayloadSize(h.Tenant, a.Shape()); want != len(payload) {
		t.Fatalf("InferRequestPayloadSize = %d, encoded %d bytes", want, len(payload))
	}
}

// The tenant string must not alias the payload buffer: the serving
// tier recycles the frame buffer while the tenant name lives on in
// routing state.
func TestInferRequestTenantDoesNotAliasBuffer(t *testing.T) {
	a := tensor.FromSlice([]float32{1}, 1, 1)
	payload := EncodeInferRequest(InferHeader{Tenant: "alpha", Generation: 1}, a)
	h, _, err := DecodeInferRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		payload[i] = 0xFF
	}
	if h.Tenant != "alpha" {
		t.Fatalf("tenant %q corrupted by buffer reuse", h.Tenant)
	}
}

func TestInferRequestDecodeRejectsCorruption(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2}, 1, 2)
	good := EncodeInferRequest(InferHeader{Tenant: "ab", Generation: 7}, a)

	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"wrong kind", append([]byte{payloadTensors}, good[1:]...)},
		{"zero name length", []byte{payloadInfer, 0}},
		{"truncated at name", good[:3]},
		{"truncated at generation", good[:inferHeaderSize+2+2]},
		{"truncated at request id", good[:inferHeaderSize+2+6]},
		{"truncated at deadline", good[:inferHeaderSize+2+13]},
	}
	for _, tc := range cases {
		if _, _, err := DecodeInferRequest(tc.buf); !errors.Is(err, ErrBadPayload) {
			t.Errorf("%s: err = %v, want ErrBadPayload", tc.name, err)
		}
	}
}

func TestInferRequestEncodePanicsOnBadTenant(t *testing.T) {
	a := tensor.FromSlice([]float32{1}, 1, 1)
	for _, name := range []string{"", strings.Repeat("x", MaxTenantNameLen+1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("tenant %d bytes: no panic", len(name))
				}
			}()
			EncodeInferRequest(InferHeader{Tenant: name}, a)
		}()
	}
	// The boundary length itself is legal.
	payload := EncodeInferRequest(InferHeader{Tenant: strings.Repeat("x", MaxTenantNameLen)}, a)
	h, _, err := DecodeInferRequest(payload)
	if err != nil || len(h.Tenant) != MaxTenantNameLen {
		t.Fatalf("max-length tenant: %q, %v", h.Tenant, err)
	}
}

// The serving message types must be part of the framing vocabulary.
func TestInferMessageTypesValid(t *testing.T) {
	for _, mt := range []MsgType{MsgInferRequest, MsgInferResponse, MsgHealth} {
		if !mt.Valid() {
			t.Fatalf("%d not a valid message type", mt)
		}
		if strings.Contains(mt.String(), "msgtype") {
			t.Fatalf("%d has no name", mt)
		}
	}
}

func TestServeErrorRoundTrip(t *testing.T) {
	payload := EncodeServeError(CodeOverloaded, 1500*time.Microsecond, "queue full")
	code, retryAfter, msg, err := DecodeServeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if code != CodeOverloaded || retryAfter != 1500*time.Microsecond || msg != "queue full" {
		t.Fatalf("decoded %v %v %q", code, retryAfter, msg)
	}
	// Empty message and no hint are legal.
	code, retryAfter, msg, err = DecodeServeError(EncodeServeError(CodeDraining, 0, ""))
	if err != nil || code != CodeDraining || retryAfter != 0 || msg != "" {
		t.Fatalf("minimal error decoded %v %v %q %v", code, retryAfter, msg, err)
	}
}

func TestServeErrorDecodeRejectsCorruption(t *testing.T) {
	good := EncodeServeError(CodeExpired, time.Millisecond, "late")
	for _, tc := range []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"wrong kind", append([]byte{payloadText}, good[1:]...)},
		{"truncated header", good[:errHeaderSize-1]},
	} {
		if _, _, _, err := DecodeServeError(tc.buf); !errors.Is(err, ErrBadPayload) {
			t.Errorf("%s: err = %v, want ErrBadPayload", tc.name, err)
		}
	}
}

// Retryability is part of the client contract: shed and draining
// conditions clear, misrouted requests never will.
func TestErrCodeRetryability(t *testing.T) {
	for code, want := range map[ErrCode]bool{
		CodeOverloaded:         true,
		CodeExpired:            true,
		CodeDraining:           true,
		CodeUnknown:            false,
		CodeUnknownTenant:      false,
		CodeGenerationMismatch: false,
		CodeBadRequest:         false,
		CodeInternal:           false,
	} {
		if code.Retryable() != want {
			t.Errorf("%v retryable = %v, want %v", code, code.Retryable(), want)
		}
	}
}

func TestHealthRoundTrip(t *testing.T) {
	entries := []TenantHealth{
		{Tenant: "alpha", State: HealthServing, QueueDepth: 0, Generation: 3},
		{Tenant: "beta", State: HealthDegraded, QueueDepth: 17, Generation: 0, RetryAfterMicros: 2000},
		{Tenant: "gamma", State: HealthDraining, QueueDepth: 1, Generation: 9},
	}
	got, err := DecodeHealth(EncodeHealth(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("%d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
	// Empty snapshot is legal (a server with no tenants is a config
	// error elsewhere, but the codec must not care).
	if es, err := DecodeHealth(EncodeHealth(nil)); err != nil || len(es) != 0 {
		t.Fatalf("empty health: %v %v", es, err)
	}
}

func TestHealthDecodeRejectsCorruption(t *testing.T) {
	good := EncodeHealth([]TenantHealth{{Tenant: "alpha", State: HealthServing}})
	for _, tc := range []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"wrong kind", append([]byte{payloadText}, good[1:]...)},
		{"count beyond data", []byte{payloadHealth, 2, 1, 'a'}},
		{"truncated entry", good[:len(good)-2]},
		{"trailing bytes", append(append([]byte{}, good...), 0xAA)},
		{"zero name length", []byte{payloadHealth, 1, 0}},
	} {
		if _, err := DecodeHealth(tc.buf); !errors.Is(err, ErrBadPayload) {
			t.Errorf("%s: err = %v, want ErrBadPayload", tc.name, err)
		}
	}
}
