package wire

import (
	"errors"
	"strings"
	"testing"

	"medsplit/internal/tensor"
)

func TestInferRequestRoundTrip(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	payload := EncodeInferRequest("clinic-7", 42, a)

	tenant, gen, tpay, err := DecodeInferRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "clinic-7" || gen != 42 {
		t.Fatalf("tenant %q gen %d, want clinic-7 42", tenant, gen)
	}
	ts, err := DecodeTensors(tpay)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || !tensor.SameShape(ts[0], a) {
		t.Fatalf("decoded %d tensors, first shape %v", len(ts), ts[0].Shape())
	}
	for i, v := range ts[0].Data() {
		if v != a.Data()[i] {
			t.Fatalf("element %d: %v != %v", i, v, a.Data()[i])
		}
	}
}

// The tenant string must not alias the payload buffer: the serving
// tier recycles the frame buffer while the tenant name lives on in
// routing state.
func TestInferRequestTenantDoesNotAliasBuffer(t *testing.T) {
	a := tensor.FromSlice([]float32{1}, 1, 1)
	payload := EncodeInferRequest("alpha", 1, a)
	tenant, _, _, err := DecodeInferRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		payload[i] = 0xFF
	}
	if tenant != "alpha" {
		t.Fatalf("tenant %q corrupted by buffer reuse", tenant)
	}
}

func TestInferRequestDecodeRejectsCorruption(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2}, 1, 2)
	good := EncodeInferRequest("ab", 7, a)

	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"wrong kind", append([]byte{payloadTensors}, good[1:]...)},
		{"zero name length", []byte{payloadInfer, 0}},
		{"truncated at name", good[:3]},
		{"truncated at generation", good[:inferHeaderSize+2+2]},
	}
	for _, tc := range cases {
		if _, _, _, err := DecodeInferRequest(tc.buf); !errors.Is(err, ErrBadPayload) {
			t.Errorf("%s: err = %v, want ErrBadPayload", tc.name, err)
		}
	}
}

func TestInferRequestEncodePanicsOnBadTenant(t *testing.T) {
	a := tensor.FromSlice([]float32{1}, 1, 1)
	for _, name := range []string{"", strings.Repeat("x", MaxTenantNameLen+1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("tenant %d bytes: no panic", len(name))
				}
			}()
			EncodeInferRequest(name, 0, a)
		}()
	}
	// The boundary length itself is legal.
	payload := EncodeInferRequest(strings.Repeat("x", MaxTenantNameLen), 0, a)
	tenant, _, _, err := DecodeInferRequest(payload)
	if err != nil || len(tenant) != MaxTenantNameLen {
		t.Fatalf("max-length tenant: %q, %v", tenant, err)
	}
}

// The serving message types must be part of the framing vocabulary.
func TestInferMessageTypesValid(t *testing.T) {
	for _, mt := range []MsgType{MsgInferRequest, MsgInferResponse} {
		if !mt.Valid() {
			t.Fatalf("%d not a valid message type", mt)
		}
		if strings.Contains(mt.String(), "msgtype") {
			t.Fatalf("%d has no name", mt)
		}
	}
}
