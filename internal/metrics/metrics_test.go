package metrics

import (
	"strings"
	"testing"
	"time"
)

func sampleCurve() *Curve {
	c := &Curve{Label: "split"}
	c.Append(Round{Round: 0, Loss: 2.3, Accuracy: 0.1, Bytes: 100})
	c.Append(Round{Round: 1, Loss: 1.8, Accuracy: 0.4, Bytes: 200})
	c.Append(Round{Round: 2, Loss: 1.2, Accuracy: 0.7, Bytes: 300, SimTime: time.Second})
	c.Append(Round{Round: 3, Loss: 1.3, Accuracy: 0.65, Bytes: 400})
	return c
}

func TestCurveFinalAndBest(t *testing.T) {
	c := sampleCurve()
	if c.Final().Round != 3 {
		t.Fatalf("final %+v", c.Final())
	}
	if c.BestAccuracy() != 0.7 {
		t.Fatalf("best %v", c.BestAccuracy())
	}
}

func TestCurveFinalPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Curve{}).Final()
}

func TestBytesToReach(t *testing.T) {
	c := sampleCurve()
	b, ok := c.BytesToReach(0.4)
	if !ok || b != 200 {
		t.Fatalf("BytesToReach(0.4) = %d,%v", b, ok)
	}
	if _, ok := c.BytesToReach(0.9); ok {
		t.Fatal("unreachable accuracy reported reached")
	}
}

func TestAccuracyAtBudget(t *testing.T) {
	c := sampleCurve()
	if got := c.AccuracyAtBudget(250); got != 0.4 {
		t.Fatalf("AccuracyAtBudget(250) = %v", got)
	}
	if got := c.AccuracyAtBudget(1000); got != 0.7 {
		t.Fatalf("AccuracyAtBudget(1000) = %v", got)
	}
	if got := c.AccuracyAtBudget(50); got != -1 {
		t.Fatalf("AccuracyAtBudget(50) = %v", got)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:             "0 B",
		512:           "512 B",
		2_000:         "2.00 KB",
		3_500_000:     "3.50 MB",
		2_000_000_000: "2.00 GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "Fig 4",
		Headers: []string{"model", "bytes", "acc"},
	}
	tbl.AddRow("vgg", "0.80 GB", "95%")
	tbl.AddRow("resnet", "0.50 GB", "75%")
	out := tbl.String()
	if !strings.Contains(out, "Fig 4") || !strings.Contains(out, "resnet") {
		t.Fatalf("render:\n%s", out)
	}
	// Columns aligned: header line and rows share prefix widths.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "model ") {
		t.Fatalf("header line %q", lines[1])
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("x,y", `say "hi"`)
	csv := tbl.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	s.Set("b", 2)
	s.Set("a", 1)
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v,%v", v, ok)
	}
	if _, ok := s.Get("zzz"); ok {
		t.Fatal("missing key reported present")
	}
	out := s.String()
	if strings.Index(out, "a = 1") > strings.Index(out, "b = 2") {
		t.Fatalf("not sorted:\n%s", out)
	}
}
