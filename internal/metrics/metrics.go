// Package metrics records and renders experiment results: per-round
// training curves (loss, accuracy, cumulative communication), byte-size
// formatting, and the ASCII/CSV tables cmd/figures prints for each
// reproduced figure.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Round is one synchronous training round's record.
type Round struct {
	Round    int
	Loss     float64       // mean platform training loss this round
	Accuracy float64       // test accuracy measured after this round (NaN-free; -1 = not measured)
	Bytes    int64         // cumulative communication bytes so far
	SimTime  time.Duration // cumulative simulated wall-clock (0 if no topology)
}

// Curve is a training trajectory.
type Curve struct {
	Label  string
	Points []Round
}

// Append adds a round record.
func (c *Curve) Append(r Round) { c.Points = append(c.Points, r) }

// Final returns the last recorded round. It panics on an empty curve.
func (c *Curve) Final() Round {
	if len(c.Points) == 0 {
		panic("metrics: empty curve")
	}
	return c.Points[len(c.Points)-1]
}

// BestAccuracy returns the highest measured accuracy.
func (c *Curve) BestAccuracy() float64 {
	best := -1.0
	for _, p := range c.Points {
		if p.Accuracy > best {
			best = p.Accuracy
		}
	}
	return best
}

// BytesToReach returns the cumulative communication spent when the curve
// first reached the target accuracy, and whether it ever did. This is
// the "accuracy at equal communication budget" view of the paper's
// Fig. 4.
func (c *Curve) BytesToReach(accuracy float64) (int64, bool) {
	for _, p := range c.Points {
		if p.Accuracy >= accuracy {
			return p.Bytes, true
		}
	}
	return 0, false
}

// AccuracyAtBudget returns the best accuracy the curve reached within
// the given communication budget.
func (c *Curve) AccuracyAtBudget(budget int64) float64 {
	best := -1.0
	for _, p := range c.Points {
		if p.Bytes > budget {
			break
		}
		if p.Accuracy > best {
			best = p.Accuracy
		}
	}
	return best
}

// FormatBytes renders a byte count in human units (binary prefixes are
// deliberately avoided: the paper reports decimal GB).
func FormatBytes(b int64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB", float64(b)/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f MB", float64(b)/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.2f KB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Table renders aligned ASCII tables for figure output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Summary aggregates named scalar results (used by ablation benches).
type Summary struct {
	values map[string]float64
}

// Set records a named value.
func (s *Summary) Set(name string, v float64) {
	if s.values == nil {
		s.values = make(map[string]float64)
	}
	s.values[name] = v
}

// Get returns a named value and whether it exists.
func (s *Summary) Get(name string) (float64, bool) {
	v, ok := s.values[name]
	return v, ok
}

// String renders values sorted by name.
func (s *Summary) String() string {
	names := make([]string, 0, len(s.values))
	for n := range s.values {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s = %g\n", n, s.values[n])
	}
	return b.String()
}
