//go:build race

package serve_test

// raceEnabled lets timing-sensitive chaos tests widen real-time
// budgets when the race detector (roughly a 10x slowdown) is on.
const raceEnabled = true
