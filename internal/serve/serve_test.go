package serve

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"sync"
	"testing"

	"medsplit/internal/core"
	"medsplit/internal/dataset"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/transport"
)

// buildSplitMLP returns a fresh deterministic MLP split at the default
// cut. Same seed ⇒ same weights, which is what the differential tests
// lean on.
func buildSplitMLP(t *testing.T, seed uint64, in, classes int) (front, back *nn.Sequential) {
	t.Helper()
	m := models.MLP(in, []int{32}, classes, rng.New(seed))
	f, b, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	return f, b
}

// flatData builds a small deterministic dataset flattened for MLPs.
func flatData(t *testing.T, classes, n int, seed uint64) *dataset.Dataset {
	t.Helper()
	train, _ := dataset.SynthCIFAR(dataset.SynthConfig{Classes: classes, Train: n, Test: 8, Seed: seed})
	rows := train.X.Dim(0)
	return &dataset.Dataset{
		X:       train.X.Reshape(rows, train.X.Size()/rows),
		Labels:  train.Labels,
		Classes: train.Classes,
	}
}

// paramDigest folds every parameter's raw float bits into an FNV-1a
// digest, nets in argument order — the same notion of identity the
// experiment runners use for differential tests.
func paramDigest(nets ...*nn.Sequential) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, net := range nets {
		for _, p := range net.Params() {
			for _, v := range p.W.Data() {
				binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
				h.Write(b[:])
			}
		}
	}
	return h.Sum64()
}

// trainingServerConfig is a minimal single-platform training session.
func trainingServerConfig(back *nn.Sequential, platforms, rounds int) core.ServerConfig {
	return core.ServerConfig{
		Back:      back,
		Opt:       &nn.SGD{LR: 0.05},
		Platforms: platforms,
		Rounds:    rounds,
	}
}

func newTestPlatform(t *testing.T, id int, front *nn.Sequential, shard *dataset.Dataset, rounds int) *core.Platform {
	t.Helper()
	p, err := core.NewPlatform(core.PlatformConfig{
		ID:     id,
		Front:  front,
		Opt:    &nn.SGD{LR: 0.05},
		Loss:   nn.SoftmaxCrossEntropy{},
		Shard:  shard,
		Batch:  8,
		Rounds: rounds,
		Seed:   uint64(100 + id),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runManagedSession drives one training session through the Manager:
// the server runs on the Session goroutine, the platforms here.
func runManagedSession(t *testing.T, m *Manager, tenant string, scfg core.ServerConfig, platforms []*core.Platform) error {
	t.Helper()
	serverConns := make([]transport.Conn, len(platforms))
	platformConns := make([]transport.Conn, len(platforms))
	for k := range platforms {
		serverConns[k], platformConns[k] = transport.Pipe()
	}
	sess, err := m.OpenSession(tenant, scfg, serverConns)
	if err != nil {
		for _, c := range serverConns {
			c.Close()
		}
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(platforms))
	for k, p := range platforms {
		wg.Add(1)
		go func(k int, p *core.Platform) {
			defer wg.Done()
			if _, err := p.Run(platformConns[k]); err != nil {
				errs[k] = err
				platformConns[k].Close()
			}
		}(k, p)
	}
	wg.Wait()
	serr := sess.Wait()
	for _, c := range serverConns {
		c.Close()
	}
	for _, c := range platformConns {
		c.Close()
	}
	return errors.Join(append(errs, serr)...)
}

// A single-tenant session served through the Manager must produce
// bit-identical weights to the same session run standalone through
// core.RunLocal: the compute gate decides when steps run, never their
// order or their math.
func TestManagedSessionDigestMatchesRunLocal(t *testing.T) {
	const seed, rounds, classes = 7, 6, 4
	shard := flatData(t, classes, 64, 1)
	in := shard.X.Dim(1)

	// Standalone reference.
	frontR, backR := buildSplitMLP(t, seed, in, classes)
	srv, err := core.NewServer(trainingServerConfig(backR, 1, rounds))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunLocal(srv, []*core.Platform{newTestPlatform(t, 0, frontR, shard, rounds)}); err != nil {
		t.Fatal(err)
	}
	want := paramDigest(frontR, backR)

	// Same session through the Manager.
	frontM, backM := buildSplitMLP(t, seed, in, classes)
	m, err := NewManager(Config{Tenants: []TenantConfig{{Name: "alpha"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := runManagedSession(t, m, "alpha", trainingServerConfig(backM, 1, rounds),
		[]*core.Platform{newTestPlatform(t, 0, frontM, shard, rounds)}); err != nil {
		t.Fatal(err)
	}
	if got := paramDigest(frontM, backM); got != want {
		t.Fatalf("managed session digest %016x, standalone %016x", got, want)
	}
}

// Concurrent sessions of different tenants sharing one compute slot
// must each train bit-identically to their solo runs: fairness
// scheduling interleaves sessions but never perturbs any one of them.
func TestConcurrentTenantsTrainBitIdentically(t *testing.T) {
	const tenants, rounds, classes = 3, 5, 4
	shard := flatData(t, classes, 64, 2)
	in := shard.X.Dim(1)

	// Solo reference digests, one per tenant seed.
	want := make([]uint64, tenants)
	for i := 0; i < tenants; i++ {
		f, b := buildSplitMLP(t, uint64(20+i), in, classes)
		srv, err := core.NewServer(trainingServerConfig(b, 1, rounds))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RunLocal(srv, []*core.Platform{newTestPlatform(t, 0, f, shard, rounds)}); err != nil {
			t.Fatal(err)
		}
		want[i] = paramDigest(f, b)
	}

	tcs := []TenantConfig{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	m, err := NewManager(Config{Tenants: tcs, ComputeSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	fronts := make([]*nn.Sequential, tenants)
	backs := make([]*nn.Sequential, tenants)
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		fronts[i], backs[i] = buildSplitMLP(t, uint64(20+i), in, classes)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runManagedSession(t, m, tcs[i].Name, trainingServerConfig(backs[i], 1, rounds),
				[]*core.Platform{newTestPlatform(t, 0, fronts[i], shard, rounds)})
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tenants; i++ {
		if got := paramDigest(fronts[i], backs[i]); got != want[i] {
			t.Errorf("tenant %d: concurrent digest %016x, solo %016x", i, got, want[i])
		}
	}
	if st := m.Stats(); st.Sessions != 0 || st.MemoryBytes != 0 {
		t.Fatalf("admission state not drained: %+v", st)
	}
}

// holdSession opens a session whose platforms never connect, pinning
// it in the handshake so admission state stays occupied; the returned
// func unblocks and reaps it.
func holdSession(t *testing.T, m *Manager, tenant string, back *nn.Sequential) (release func()) {
	t.Helper()
	s, p := transport.Pipe()
	sess, err := m.OpenSession(tenant, trainingServerConfig(back, 1, 2), []transport.Conn{s})
	if err != nil {
		t.Fatal(err)
	}
	return func() {
		p.Close()
		s.Close()
		_ = sess.Wait() // handshake failure, expected
	}
}

func TestAdmissionRejections(t *testing.T) {
	shard := flatData(t, 4, 32, 3)
	in := shard.X.Dim(1)
	_, back1 := buildSplitMLP(t, 1, in, 4)
	_, back2 := buildSplitMLP(t, 2, in, 4)

	t.Run("unknown tenant", func(t *testing.T) {
		m, _ := NewManager(Config{Tenants: []TenantConfig{{Name: "a"}}})
		_, err := m.OpenSession("ghost", trainingServerConfig(back1, 1, 2), nil)
		if !errors.Is(err, ErrUnknownTenant) {
			t.Fatalf("err = %v, want ErrUnknownTenant", err)
		}
	})

	t.Run("per-tenant session limit", func(t *testing.T) {
		m, _ := NewManager(Config{Tenants: []TenantConfig{{Name: "a", MaxSessions: 1}}})
		release := holdSession(t, m, "a", back1)
		_, err := m.OpenSession("a", trainingServerConfig(back2, 1, 2), nil)
		if !errors.Is(err, ErrSessionLimit) {
			t.Fatalf("err = %v, want ErrSessionLimit", err)
		}
		release()
		// The reaped session frees its admission slot.
		release2 := holdSession(t, m, "a", back2)
		release2()
	})

	t.Run("manager session limit", func(t *testing.T) {
		m, _ := NewManager(Config{Tenants: []TenantConfig{{Name: "a"}, {Name: "b"}}, MaxSessions: 1})
		release := holdSession(t, m, "a", back1)
		defer release()
		_, err := m.OpenSession("b", trainingServerConfig(back2, 1, 2), nil)
		if !errors.Is(err, ErrSessionLimit) {
			t.Fatalf("err = %v, want ErrSessionLimit", err)
		}
	})

	t.Run("memory budget", func(t *testing.T) {
		scfg := trainingServerConfig(back1, 1, 2)
		m, _ := NewManager(Config{
			Tenants:        []TenantConfig{{Name: "a"}},
			MaxMemoryBytes: EstimateSessionBytes(&scfg) - 1,
		})
		_, err := m.OpenSession("a", scfg, nil)
		if !errors.Is(err, ErrMemoryBudget) {
			t.Fatalf("err = %v, want ErrMemoryBudget", err)
		}
	})

	t.Run("closed manager", func(t *testing.T) {
		m, _ := NewManager(Config{Tenants: []TenantConfig{{Name: "a"}}})
		m.Close()
		_, err := m.OpenSession("a", trainingServerConfig(back1, 1, 2), nil)
		if !errors.Is(err, ErrManagerClosed) {
			t.Fatalf("err = %v, want ErrManagerClosed", err)
		}
	})
}

func TestEstimateSessionBytes(t *testing.T) {
	shard := flatData(t, 4, 16, 4)
	_, back := buildSplitMLP(t, 1, shard.X.Dim(1), 4)
	scfg := trainingServerConfig(back, 3, 2)
	est := EstimateSessionBytes(&scfg)
	params := int64(nn.ParamCount(back.Params()))
	if est < 4*params*4 {
		t.Fatalf("estimate %d below four float32 copies of %d params", est, params)
	}
	if est < 3*64<<10 {
		t.Fatalf("estimate %d misses per-platform wire scratch", est)
	}
	if EstimateSessionBytes(&core.ServerConfig{}) != 0 {
		t.Fatal("nil back should estimate zero")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no tenants", Config{}},
		{"empty name", Config{Tenants: []TenantConfig{{Name: ""}}}},
		{"duplicate", Config{Tenants: []TenantConfig{{Name: "a"}, {Name: "a"}}}},
		{"negative tenant sessions", Config{Tenants: []TenantConfig{{Name: "a", MaxSessions: -1}}}},
		{"negative sessions", Config{Tenants: []TenantConfig{{Name: "a"}}, MaxSessions: -1}},
		{"negative memory", Config{Tenants: []TenantConfig{{Name: "a"}}, MaxMemoryBytes: -1}},
		{"negative slots", Config{Tenants: []TenantConfig{{Name: "a"}}, ComputeSlots: -1}},
	}
	for _, tc := range cases {
		if _, err := NewManager(tc.cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: err = %v, want ErrConfig", tc.name, err)
		}
	}
}
