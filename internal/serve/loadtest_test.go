// Load tests for the serving tier, in an external test package so they
// can drive internal/experiment's harness (experiment imports serve,
// so an internal test file could not import it back).
package serve_test

import (
	"testing"
	"time"

	"medsplit/internal/experiment"
)

// A small tenant matrix end to end: every request answered, correct
// logits shapes (RunServeLoad checks them), sane stats.
func TestServeLoadSmall(t *testing.T) {
	res, err := experiment.RunServeLoad(experiment.ServeLoadConfig{
		Tenants:             2,
		Platforms:           6,
		RequestsPerPlatform: 4,
		Seed:                11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 6 * 4; res.InferRequests != want {
		t.Fatalf("completed %d requests, want %d", res.InferRequests, want)
	}
	if res.InferBatches <= 0 || res.InferBatches > int64(res.InferRequests) {
		t.Fatalf("%d batches for %d requests", res.InferBatches, res.InferRequests)
	}
	if res.InferP50 <= 0 || res.InferP99 < res.InferP50 {
		t.Fatalf("latency percentiles p50=%v p99=%v", res.InferP50, res.InferP99)
	}
	if res.InferReqPerSec <= 0 {
		t.Fatalf("req/s %v", res.InferReqPerSec)
	}
}

// The scale-out scenario from the issue: 100 platforms × 4 tenants
// over the simulated geo-WAN. Skipped under -short; the nightly soak
// runs it under -race.
func TestServeLoad100Platforms4Tenants(t *testing.T) {
	if testing.Short() {
		t.Skip("100-platform load test skipped in -short mode")
	}
	res, err := experiment.RunServeLoad(experiment.ServeLoadConfig{
		Tenants:             4,
		Platforms:           100,
		RequestsPerPlatform: 3,
		RequestRows:         2,
		BatchMax:            16,
		FlushEvery:          2 * time.Millisecond,
		ComputeSlots:        4,
		SimJitter:           0.1,
		Seed:                13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 100 * 3; res.InferRequests != want {
		t.Fatalf("completed %d requests, want %d", res.InferRequests, want)
	}
	// With 100 clients feeding 4 batchers, dynamic batching must
	// actually fuse: strictly fewer forwards than requests.
	if res.InferBatches >= int64(res.InferRequests) {
		t.Fatalf("%d batches for %d requests: batching never fused", res.InferBatches, res.InferRequests)
	}
	t.Logf("100×4 load: p50=%v p99=%v req/s=%.0f batches=%d simWAN=%v",
		res.InferP50, res.InferP99, res.InferReqPerSec, res.InferBatches, res.SimElapsed)
}
