package serve

import (
	"math"
	"strings"
	"testing"

	"medsplit/internal/nn"
	"medsplit/internal/tensor"
)

// withPrecision returns tc with the given inference precision.
func withPrecision(tc TenantConfig, p string) TenantConfig {
	tc.InferPrecision = p
	return tc
}

// TestInferPrecisionF32ExplicitBitIdentical pins that spelling the
// default out ("f32") changes nothing: split inference stays
// bit-identical to the local forward.
func TestInferPrecisionF32ExplicitBitIdentical(t *testing.T) {
	dial, _ := inferFixture(t, InferConfig{},
		withPrecision(inferTenant("alpha", 5, ""), "f32"))
	client := NewClient(dial(), clientFront(t, 5), "alpha", 1)
	x := randInput(3, 310)
	got, err := client.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	wantExact(t, got, localForward(t, 5, x, nil))
}

// TestInferPrecisionF16CloseToF32 serves a tenant at f16 weight storage
// and holds the logits to the f32 reference within half-precision
// weight rounding.
func TestInferPrecisionF16CloseToF32(t *testing.T) {
	dial, _ := inferFixture(t, InferConfig{},
		withPrecision(inferTenant("alpha", 5, ""), "f16"))
	client := NewClient(dial(), clientFront(t, 5), "alpha", 1)
	x := randInput(4, 311)
	got, err := client.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	want := localForward(t, 5, x, nil)
	assertLogitsClose(t, got, want, 2e-2, 4)
}

// TestInferPrecisionInt8LogitEquivalence serves a tenant at int8 and
// holds the served logits to the f32 reference within the documented
// quantization tolerance, with matching argmax decisions.
func TestInferPrecisionInt8LogitEquivalence(t *testing.T) {
	dial, _ := inferFixture(t, InferConfig{},
		withPrecision(inferTenant("alpha", 5, ""), "int8"))
	client := NewClient(dial(), clientFront(t, 5), "alpha", 1)
	x := randInput(8, 312)
	got, err := client.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	want := localForward(t, 5, x, nil)
	assertLogitsClose(t, got, want, 5e-2, 7)
}

// assertLogitsClose checks absolute logit error against tol and that at
// least minAgree of the rows keep their argmax.
func assertLogitsClose(t *testing.T, got, want *tensor.Tensor, tol float64, minAgree int) {
	t.Helper()
	if !tensor.SameShape(got, want) {
		t.Fatalf("shape %v, want %v", got.Shape(), want.Shape())
	}
	g, w := got.Data(), want.Data()
	for i := range g {
		if math.Abs(float64(g[i]-w[i])) > tol {
			t.Fatalf("logit %d: %v vs %v exceeds tolerance %v", i, g[i], w[i], tol)
		}
	}
	rows, cols := want.Dim(0), want.Dim(1)
	agree := 0
	for r := 0; r < rows; r++ {
		if argmax(g[r*cols:(r+1)*cols]) == argmax(w[r*cols:(r+1)*cols]) {
			agree++
		}
	}
	if agree < minAgree {
		t.Fatalf("argmax agreement %d/%d, want >= %d", agree, rows, minAgree)
	}
}

func argmax(d []float32) int {
	best, bi := d[0], 0
	for i, v := range d[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// TestInferPrecisionValidated pins config validation: unknown precision
// strings are a construction-time error, not a serving-time surprise.
func TestInferPrecisionValidated(t *testing.T) {
	_, err := NewManager(Config{Tenants: []TenantConfig{
		withPrecision(inferTenant("alpha", 5, ""), "bf16"),
	}})
	if err == nil || !strings.Contains(err.Error(), "infer precision") {
		t.Fatalf("err = %v, want infer precision config error", err)
	}
}

// TestCachePrecisionSurvivesBuild pins that the cache derives the
// serving view from the precision setting: an int8 tenant's ensure
// returns a quantized model, a default tenant's the raw back half.
func TestCachePrecisionSurvivesBuild(t *testing.T) {
	tc := inferTenant("alpha", 5, "")
	c := &modelCache{name: "alpha", build: tc.BuildBack, precision: "int8"}
	m, _, err := c.ensure(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*nn.QuantizedInference); !ok {
		t.Fatalf("int8 cache served %T, want *nn.QuantizedInference", m)
	}

	c2 := &modelCache{name: "beta", build: tc.BuildBack}
	m2, _, err := c2.ensure(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.(*nn.Sequential); !ok {
		t.Fatalf("default cache served %T, want *nn.Sequential", m2)
	}
}
