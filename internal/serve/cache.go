package serve

import (
	"fmt"
	"sync"

	"medsplit/internal/core"
	"medsplit/internal/nn"
)

// breakerTripAfter is how many consecutive reload failures open the
// breaker, and breakerProbeEvery is how many ensure calls an open
// breaker skips before letting one probe retry the disk. Counts, not
// timers: the batcher's call cadence is the only clock this needs, and
// counts keep the breaker's behavior deterministic for tests.
const (
	breakerTripAfter  = 3
	breakerProbeEvery = 32
)

// modelCache keeps one tenant's back half warm for inference, keyed by
// checkpoint generation. A generation is a server snapshot's NextRound
// (the numbered server-%06d.ckpt files core writes); generation 0 is
// BuildBack's initial weights, before any checkpoint exists.
//
// The cache is pull-based: it touches disk only when a request asks
// for a generation newer than what is loaded (ensure's wantGen), via
// core.LoadLatestSnapshot + core.RestoreServerModel — a weights-only
// restore, since serving has no optimizer. That makes the refresh
// policy explicit in the protocol: a client that learns a new
// checkpoint landed sends its generation, and that request is what
// rolls the cache forward; clients that send 0 ride whatever is warm.
//
// Reloads are guarded by a circuit breaker: a corrupt or unreadable
// generation must degrade the tenant to its warm model (pinned
// requests get per-request generation-mismatch rejections), never fail
// every request or hammer the disk on every batch. After
// breakerTripAfter consecutive reload failures the breaker opens and
// ensure serves the warm model without touching disk; every
// breakerProbeEvery-th call lets one probe through, so a repaired
// checkpoint directory heals the tenant without intervention. Reload
// atomicity is what makes the degraded model trustworthy: the snapshot
// is restored into a freshly built model and swapped in only on
// success, so a restore that fails halfway can never leave the warm
// model half-overwritten.
//
// ensure is called only from the tenant's single batcher goroutine, so
// the returned model is never Forwarded concurrently; the mutex exists
// for the stats and health readers.
//
// precision selects the serving view of the back half (see
// TenantConfig.InferPrecision): every successful build or reload
// re-derives the view from the fresh f32 weights, so a checkpoint roll
// re-packs f16 weights and re-quantizes int8 weights atomically with
// the swap. The default ("" or "f32") serves the back half directly
// and is bit-identical to pre-precision-knob behavior.
type modelCache struct {
	mu        sync.Mutex
	name      string
	build     func() (*nn.Sequential, error)
	dir       string
	precision string

	back  *nn.Sequential
	infer nn.Layer // serving view of back under precision
	gen   uint32

	hits, misses int64

	reloadFails int // consecutive reload failures (breaker input)
	probeIn     int // ensure calls until the open breaker lets a probe through
}

// ensure returns the freshest model available that satisfies wantGen
// (0 = whatever is warm), loading from the checkpoint directory when
// wantGen is ahead of the cache. It never fails on a generation
// mismatch — it returns the generation actually loaded and the caller
// compares; per-request rejection is the batcher's job, because one
// batch can mix satisfied and mismatched requests. It fails only when
// there is no model at all (BuildBack missing or erroring).
func (c *modelCache) ensure(wantGen uint32) (nn.Layer, uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.back != nil && wantGen <= c.gen {
		c.hits++
		return c.infer, c.gen, nil
	}
	c.misses++
	if c.back == nil {
		if c.build == nil {
			return nil, 0, fmt.Errorf("%w: tenant %q has no BuildBack for inference", ErrConfig, c.name)
		}
		b, err := c.build()
		if err != nil {
			return nil, 0, fmt.Errorf("serve: tenant %q: building back half: %w", c.name, err)
		}
		c.back = b
		c.infer = servingView(b, c.precision)
		c.gen = 0
	}
	if c.dir != "" && wantGen > c.gen {
		c.reload(wantGen)
	}
	return c.infer, c.gen, nil
}

// servingView derives the inference view of a freshly built or reloaded
// back half under the tenant's precision setting. The back half itself
// stays in f32 — reduced-precision views are snapshots layered on top,
// rebuilt on every swap.
func servingView(back *nn.Sequential, precision string) nn.Layer {
	switch precision {
	case "f16":
		nn.EnableF16Weights(back)
		return back
	case "int8":
		return nn.NewQuantizedInference(back)
	default: // "" or "f32"
		return back
	}
}

// reload attempts to roll the cache forward from disk, honoring the
// breaker. Failures never propagate — the tenant degrades to the warm
// model and pinned requests are rejected per-request by the batcher.
// Caller holds c.mu.
func (c *modelCache) reload(wantGen uint32) {
	if c.reloadFails >= breakerTripAfter {
		if c.probeIn > 0 {
			c.probeIn--
			return // breaker open: serve warm, skip the disk
		}
		c.probeIn = breakerProbeEvery // this call is the probe
	}
	var fresh *nn.Sequential
	snap, err := core.LoadLatestSnapshot(c.dir, core.RoleServer, 0)
	if err == nil && uint32(snap.NextRound) <= c.gen {
		// Healthy disk with nothing newer: the pin is simply ahead of
		// training, which the caller surfaces as per-request
		// mismatches. Not a reload failure.
		c.reloadFails, c.probeIn = 0, 0
		return
	}
	if err == nil {
		if c.build == nil {
			return // nothing to restore into atomically; keep the warm model
		}
		fresh, err = c.build()
		if err == nil {
			err = core.RestoreServerModel(fresh, snap)
		}
	}
	if err != nil {
		// Corrupt, missing or mismatched generation: count toward the
		// breaker and keep serving the warm model untouched.
		c.reloadFails++
		if c.reloadFails == breakerTripAfter {
			c.probeIn = breakerProbeEvery
		}
		return
	}
	c.back = fresh
	c.infer = servingView(fresh, c.precision)
	c.gen = uint32(snap.NextRound)
	c.reloadFails = 0
	c.probeIn = 0
}

// cacheStats reports hit/miss counters (a miss is any ensure that had
// to build or check disk, whether or not a newer generation existed).
func (c *modelCache) cacheStats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// state reports the served generation and whether the reload breaker
// is open — the health probe's view of the cache.
func (c *modelCache) state() (gen uint32, breakerOpen bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen, c.reloadFails >= breakerTripAfter
}
