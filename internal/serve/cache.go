package serve

import (
	"fmt"
	"sync"

	"medsplit/internal/core"
	"medsplit/internal/nn"
)

// modelCache keeps one tenant's back half warm for inference, keyed by
// checkpoint generation. A generation is a server snapshot's NextRound
// (the numbered server-%06d.ckpt files core writes); generation 0 is
// BuildBack's initial weights, before any checkpoint exists.
//
// The cache is pull-based: it touches disk only when a request asks
// for a generation newer than what is loaded (ensure's wantGen), via
// core.LoadLatestSnapshot + core.RestoreServerModel — a weights-only
// restore, since serving has no optimizer. That makes the refresh
// policy explicit in the protocol: a client that learns a new
// checkpoint landed sends its generation, and that request is what
// rolls the cache forward; clients that send 0 ride whatever is warm.
//
// ensure is called only from the tenant's single batcher goroutine, so
// the returned model is never Forwarded concurrently; the mutex exists
// for the stats readers.
type modelCache struct {
	mu    sync.Mutex
	name  string
	build func() (*nn.Sequential, error)
	dir   string

	back *nn.Sequential
	gen  uint32

	hits, misses int64
}

// ensure returns the freshest model available that satisfies wantGen
// (0 = whatever is warm), loading from the checkpoint directory when
// wantGen is ahead of the cache. It never fails on a generation
// mismatch — it returns the generation actually loaded and the caller
// compares; per-request rejection is the batcher's job, because one
// batch can mix satisfied and mismatched requests.
func (c *modelCache) ensure(wantGen uint32) (*nn.Sequential, uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.back != nil && wantGen <= c.gen {
		c.hits++
		return c.back, c.gen, nil
	}
	c.misses++
	if c.back == nil {
		if c.build == nil {
			return nil, 0, fmt.Errorf("%w: tenant %q has no BuildBack for inference", ErrConfig, c.name)
		}
		b, err := c.build()
		if err != nil {
			return nil, 0, fmt.Errorf("serve: tenant %q: building back half: %w", c.name, err)
		}
		c.back = b
		c.gen = 0
	}
	if c.dir != "" && wantGen > c.gen {
		// Best effort: no snapshot yet just means the tenant is still at
		// its current generation, which the caller surfaces as a
		// per-request mismatch, not a serving failure.
		snap, err := core.LoadLatestSnapshot(c.dir, core.RoleServer, 0)
		if err == nil && uint32(snap.NextRound) > c.gen {
			if rerr := core.RestoreServerModel(c.back, snap); rerr != nil {
				return nil, 0, fmt.Errorf("serve: tenant %q: restoring generation %d: %w", c.name, snap.NextRound, rerr)
			}
			c.gen = uint32(snap.NextRound)
		}
	}
	return c.back, c.gen, nil
}

// cacheStats reports hit/miss counters (a miss is any ensure that had
// to build or check disk, whether or not a newer generation existed).
func (c *modelCache) cacheStats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
