package serve

import (
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"medsplit/internal/core"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/transport/testutil"
	"medsplit/internal/wire"
)

// rawFixture is a serving fixture with the Manager exposed, for tests
// that need to wedge the compute scheduler or speak raw frames.
func rawFixture(t *testing.T, mcfg Config, icfg InferConfig) (m *Manager, is *InferenceServer, conn transport.Conn) {
	t.Helper()
	m, err := NewManager(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	is, err = NewInferenceServer(m, icfg)
	if err != nil {
		t.Fatal(err)
	}
	s, p := transport.Pipe()
	go is.HandleConn(s)
	t.Cleanup(func() {
		s.Close()
		p.Close()
		is.Close()
		m.Close()
	})
	return m, is, p
}

// sendRaw frames one inference request with explicit header fields.
func sendRaw(t *testing.T, conn transport.Conn, h wire.InferHeader, round uint32, rows int) {
	t.Helper()
	a := tensor.New(rows, 16)
	if err := conn.Send(&wire.Message{
		Type:    wire.MsgInferRequest,
		Round:   round,
		Payload: wire.EncodeInferRequest(h, a),
	}); err != nil {
		t.Fatal(err)
	}
}

// recvServeError expects the next frame to be a structured rejection
// for the given round and returns its code and retry-after hint.
func recvServeError(t *testing.T, conn transport.Conn, round uint32) (wire.ErrCode, time.Duration) {
	t.Helper()
	m, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != wire.MsgInferResponse || m.Round != round {
		t.Fatalf("got %s round %d, want infer-response round %d", m.Type, m.Round, round)
	}
	code, retryAfter, _, derr := wire.DecodeServeError(m.Payload)
	if derr != nil {
		t.Fatalf("round %d: expected a structured error payload: %v", round, derr)
	}
	return code, retryAfter
}

// cutTenant builds a tenant whose back half accepts 16-wide cut
// activations, matching sendRaw's raw payloads.
func cutTenant(name string) TenantConfig {
	return TenantConfig{
		Name: name,
		BuildBack: func() (*nn.Sequential, error) {
			m := models.MLP(16, []int{16}, 4, rng.New(3))
			_, back, err := models.Split(m.Net, m.DefaultCut)
			return back, err
		},
	}
}

// A full admission queue must shed deterministically with a typed
// overloaded rejection and a retry-after hint — never block the
// connection reader or buffer without bound.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	flushEvery := 40 * time.Millisecond
	m, is, conn := rawFixture(t,
		Config{Tenants: []TenantConfig{cutTenant("alpha")}, ComputeSlots: 1},
		InferConfig{BatchMax: 1, QueueCap: 2, FlushEvery: flushEvery})

	// Wedge the single compute slot so the batcher blocks mid-flush.
	hold := m.sched.register("test-hold")
	release := hold.Acquire()

	sendRaw(t, conn, wire.InferHeader{Tenant: "alpha"}, 1, 1)
	// Wait for the batcher to pull request 1 into its pending batch
	// (it then blocks acquiring compute and pulls nothing more).
	ts := is.serving["alpha"]
	for len(ts.jobs) > 0 {
		time.Sleep(time.Millisecond)
	}
	sendRaw(t, conn, wire.InferHeader{Tenant: "alpha"}, 2, 1) // fills queue slot 1
	sendRaw(t, conn, wire.InferHeader{Tenant: "alpha"}, 3, 1) // fills queue slot 2
	sendRaw(t, conn, wire.InferHeader{Tenant: "alpha"}, 4, 1) // over capacity: shed

	code, retryAfter := recvServeError(t, conn, 4)
	if code != wire.CodeOverloaded {
		t.Fatalf("code %v, want overloaded", code)
	}
	if retryAfter != flushEvery {
		t.Fatalf("retry-after %v, want one flush interval %v", retryAfter, flushEvery)
	}

	// The queue must still be more than half full: the health probe
	// reports the tenant degraded while shedding is imminent.
	if h := is.Health(); len(h) != 1 || h[0].State != wire.HealthDegraded {
		t.Fatalf("health %+v, want alpha degraded under a full queue", h)
	}

	release()
	m.sched.unregister(hold)
	for _, round := range []uint32{1, 2, 3} {
		msg, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Round != round {
			t.Fatalf("response round %d, want %d", msg.Round, round)
		}
		if _, _, _, derr := wire.DecodeServeError(msg.Payload); derr == nil {
			t.Fatalf("round %d rejected; queued requests must still be served", round)
		}
	}
	st := is.Stats()
	if st.Requests != 3 || st.Rejected != 1 || st.Shed != 1 {
		t.Fatalf("stats %+v: want 3 admitted, 1 shed", st)
	}
}

// A request whose deadline passes while it waits for compute must be
// shed before the forward pass, with a typed expired rejection, while
// deadline-free requests in the same batch are served.
func TestExpiredRequestShedBeforeCompute(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m, is, conn := rawFixture(t,
		Config{Tenants: []TenantConfig{cutTenant("alpha")}, ComputeSlots: 1},
		InferConfig{BatchMax: 1, QueueCap: 8, FlushEvery: 5 * time.Millisecond})

	hold := m.sched.register("test-hold")
	release := hold.Acquire()

	sendRaw(t, conn, wire.InferHeader{Tenant: "alpha"}, 1, 1) // no deadline
	ts := is.serving["alpha"]
	for len(ts.jobs) > 0 {
		time.Sleep(time.Millisecond)
	}
	// 20ms of budget, then make the batcher sit on the wedged slot for
	// longer than that before it can flush request 2.
	sendRaw(t, conn, wire.InferHeader{Tenant: "alpha", DeadlineMicros: 20_000}, 2, 1)
	time.Sleep(30 * time.Millisecond)
	release()
	m.sched.unregister(hold)

	if m1, err := conn.Recv(); err != nil || m1.Round != 1 {
		t.Fatalf("first response %v round %v, want served round 1", err, m1)
	}
	code, _ := recvServeError(t, conn, 2)
	if code != wire.CodeExpired {
		t.Fatalf("code %v, want expired", code)
	}
	st := is.Stats()
	if st.Expired != 1 {
		t.Fatalf("stats %+v: want one expired shed", st)
	}
	if st.Batches != 1 {
		t.Fatalf("stats %+v: the expired request must never reach the forward pass", st)
	}
}

// The MsgHealth probe must answer with every tenant's state, and the
// state machine must move serving → draining on Close.
func TestHealthProbe(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, is, conn := rawFixture(t,
		Config{Tenants: []TenantConfig{cutTenant("alpha"), cutTenant("beta")}},
		InferConfig{})

	if err := conn.Send(&wire.Message{Type: wire.MsgHealth, Round: 9}); err != nil {
		t.Fatal(err)
	}
	m, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != wire.MsgHealth || m.Round != 9 {
		t.Fatalf("got %s round %d, want health round 9", m.Type, m.Round)
	}
	entries, err := wire.DecodeHealth(m.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Tenant != "alpha" || entries[1].Tenant != "beta" {
		t.Fatalf("health %+v, want alpha and beta in name order", entries)
	}
	for _, e := range entries {
		if e.State != wire.HealthServing {
			t.Fatalf("tenant %q state %v, want serving", e.Tenant, e.State)
		}
	}

	is.Close()
	for _, e := range is.Health() {
		if e.State != wire.HealthDraining {
			t.Fatalf("tenant %q state %v after Close, want draining", e.Tenant, e.State)
		}
	}
}

// Requests arriving after Close must be answered with a typed draining
// rejection, not a hang or a panic.
func TestRequestAfterCloseGetsDraining(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, is, conn := rawFixture(t,
		Config{Tenants: []TenantConfig{cutTenant("alpha")}}, InferConfig{})
	is.Close()
	sendRaw(t, conn, wire.InferHeader{Tenant: "alpha"}, 1, 1)
	code, _ := recvServeError(t, conn, 1)
	if code != wire.CodeDraining {
		t.Fatalf("code %v, want draining", code)
	}
}

// Admission racing Close: hammer the server with requests from several
// connections while Close runs. Every request must resolve — logits or
// a typed error — with no panic and no leaked batcher goroutine.
func TestAdmissionRacesClose(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m, err := NewManager(Config{Tenants: []TenantConfig{cutTenant("alpha")}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	is, err := NewInferenceServer(m, InferConfig{BatchMax: 2, FlushEvery: time.Millisecond, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		s, p := transport.Pipe()
		go is.HandleConn(s)
		wg.Add(1)
		go func(w int, conn transport.Conn) {
			defer wg.Done()
			defer conn.Close()
			a := tensor.New(1, 16)
			for i := 0; i < 64; i++ {
				if err := conn.Send(&wire.Message{
					Type:    wire.MsgInferRequest,
					Round:   uint32(i + 1),
					Payload: wire.EncodeInferRequest(wire.InferHeader{Tenant: "alpha"}, a),
				}); err != nil {
					return // reader gone mid-close: acceptable
				}
				if _, err := conn.Recv(); err != nil {
					return
				}
			}
		}(w, p)
	}
	time.Sleep(2 * time.Millisecond)
	is.Close() // races the in-flight admissions
	wg.Wait()

	st := is.Stats()
	if st.Requests < 0 || st.Rejected < 0 {
		t.Fatalf("stats %+v", st)
	}
	// Idempotent double Close must be safe.
	is.Close()
}

// The checkpoint-reload breaker: a corrupt generation on disk degrades
// the tenant to its warm model (per-request mismatch rejections, no
// serving failure), trips after consecutive failures, and heals
// through its probe budget once the directory is repaired.
func TestCacheBreakerDegradesAndHeals(t *testing.T) {
	dir := t.TempDir()
	build := func() (*nn.Sequential, error) {
		m := models.MLP(16, []int{16}, 4, rng.New(3))
		_, back, err := models.Split(m.Net, m.DefaultCut)
		return back, err
	}
	c := &modelCache{name: "alpha", build: build, dir: dir}

	// Corrupt generation 3 on disk.
	if err := os.WriteFile(core.ServerSnapshotGenPath(dir, 3), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < breakerTripAfter; i++ {
		back, gen, err := c.ensure(3)
		if err != nil || back == nil || gen != 0 {
			t.Fatalf("ensure %d: back=%v gen=%d err=%v; corrupt checkpoint must degrade to warm gen 0", i, back != nil, gen, err)
		}
	}
	if _, open := c.state(); !open {
		t.Fatalf("breaker not open after %d consecutive reload failures", breakerTripAfter)
	}

	// While open, ensure serves warm without touching disk (the probe
	// budget counts down instead).
	for i := 0; i < breakerProbeEvery-1; i++ {
		if _, gen, err := c.ensure(3); err != nil || gen != 0 {
			t.Fatalf("breaker-open ensure: gen=%d err=%v", gen, err)
		}
	}
	if _, open := c.state(); !open {
		t.Fatal("breaker closed without a successful probe")
	}

	// Repair the directory: write a valid generation-3 snapshot.
	back, err := build()
	if err != nil {
		t.Fatal(err)
	}
	w := back.Params()[0].W.Data()
	for i := range w {
		w[i] += 1
	}
	snap := &core.Snapshot{Role: core.RoleServer, NextRound: 3}
	for _, p := range back.Params() {
		snap.Tensors = append(snap.Tensors, p.W.Clone())
	}
	for _, st := range nn.CollectState(back) {
		snap.Tensors = append(snap.Tensors, st.Clone())
	}
	if err := core.SaveSnapshotFile(core.ServerSnapshotGenPath(dir, 3), snap); err != nil {
		t.Fatal(err)
	}
	// Overwrite the corrupt bytes path? No — SaveSnapshotFile just did.
	// The next probe (the probe budget is spent) must heal the tenant.
	var healedGen uint32
	for i := 0; i < breakerProbeEvery+1; i++ {
		_, healedGen, err = c.ensure(3)
		if err != nil {
			t.Fatal(err)
		}
		if healedGen == 3 {
			break
		}
	}
	if healedGen != 3 {
		t.Fatalf("cache never healed to generation 3 after repair (gen %d)", healedGen)
	}
	if _, open := c.state(); open {
		t.Fatal("breaker still open after successful reload")
	}
}

// A reload that fails must leave the warm model byte-identical: the
// restore goes into a fresh model and swaps only on success.
func TestCacheReloadFailureLeavesWarmModelUntouched(t *testing.T) {
	dir := t.TempDir()
	build := func() (*nn.Sequential, error) {
		m := models.MLP(16, []int{16}, 4, rng.New(3))
		_, back, err := models.Split(m.Net, m.DefaultCut)
		return back, err
	}
	c := &modelCache{name: "alpha", build: build, dir: dir}
	warm, _, err := c.ensure(0)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float32(nil), warm.Params()[0].W.Data()...)

	// A snapshot whose tensors do not match the model shape: the
	// restore fails partway through a sequential tensor walk — exactly
	// the case that must not corrupt the warm model.
	snap := &core.Snapshot{Role: core.RoleServer, NextRound: 5}
	snap.Tensors = append(snap.Tensors, tensor.New(1, 1))
	if err := core.SaveSnapshotFile(core.ServerSnapshotGenPath(dir, 5), snap); err != nil {
		t.Fatal(err)
	}
	got, gen, err := c.ensure(5)
	if err != nil || gen != 0 {
		t.Fatalf("gen=%d err=%v, want degraded warm gen 0", gen, err)
	}
	if got != warm {
		t.Fatal("failed reload replaced the warm model")
	}
	after := warm.Params()[0].W.Data()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("warm weight %d changed across a failed reload: %v != %v", i, before[i], after[i])
		}
	}
}

// The client retry loop must recover a retryable remote rejection
// (draining here is retryable in general; overloaded is the common
// case) and report its stats, with deterministic seeded backoff.
func TestClientRetriesRetryableRejection(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, p := transport.Pipe()
	defer s.Close()

	// A hand-rolled server: reject the first attempt as overloaded,
	// serve the second with a recognizable tensor payload.
	done := make(chan struct{})
	go func() {
		defer close(done)
		attempts := 0
		for {
			m, err := s.Recv()
			if err != nil {
				return
			}
			if m.Type == wire.MsgBye {
				return
			}
			attempts++
			if attempts == 1 {
				_ = s.Send(&wire.Message{
					Type: wire.MsgInferResponse, Round: m.Round,
					Payload: wire.EncodeServeError(wire.CodeOverloaded, 100*time.Microsecond, "queue full"),
				})
				continue
			}
			_ = s.Send(&wire.Message{
				Type: wire.MsgInferResponse, Round: m.Round,
				Payload: wire.EncodeTensors(tensor.FromSlice([]float32{1, 2}, 1, 2)),
			})
		}
	}()

	client := NewClient(p, nil, "alpha", 1)
	client.SetPolicy(RetryPolicy{MaxAttempts: 3, Backoff: 100 * time.Microsecond, Seed: 7})
	y, err := client.Infer(tensor.FromSlice([]float32{1}, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 1 || y.Dim(1) != 2 {
		t.Fatalf("logits shape %v", y.Shape())
	}
	st := client.Stats()
	if st.Retries != 1 || st.Remote != 1 || st.Attempts != 2 {
		t.Fatalf("stats %+v: want one rejected attempt and one retry", st)
	}
	client.Close()
	<-done
}

// Non-retryable rejections must fail immediately, without burning the
// retry budget.
func TestClientDoesNotRetryNonRetryable(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, p := transport.Pipe()
	defer s.Close()
	served := 0
	go func() {
		for {
			m, err := s.Recv()
			if err != nil || m.Type == wire.MsgBye {
				return
			}
			served++
			_ = s.Send(&wire.Message{
				Type: wire.MsgInferResponse, Round: m.Round,
				Payload: wire.EncodeServeError(wire.CodeUnknownTenant, 0, "ghost"),
			})
		}
	}()
	client := NewClient(p, nil, "ghost", 1)
	client.SetPolicy(RetryPolicy{MaxAttempts: 5, Backoff: 100 * time.Microsecond, Seed: 7})
	_, err := client.Infer(tensor.FromSlice([]float32{1}, 1, 1))
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Code != wire.CodeUnknownTenant {
		t.Fatalf("err = %v, want unknown-tenant RemoteError", err)
	}
	if st := client.Stats(); st.Attempts != 1 {
		t.Fatalf("stats %+v: non-retryable rejection must not be retried", st)
	}
	client.Close()
}

// A timed-out attempt must fail over through the redial closure and
// succeed on the replacement connection.
func TestClientTimeoutFailsOverViaRedial(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// First server: swallows requests (never answers).
	s1, p1 := transport.Pipe()
	go func() {
		for {
			if _, err := s1.Recv(); err != nil {
				return
			}
		}
	}()
	// Second server: answers everything.
	s2, p2 := transport.Pipe()
	go func() {
		for {
			m, err := s2.Recv()
			if err != nil || m.Type == wire.MsgBye {
				return
			}
			_ = s2.Send(&wire.Message{
				Type: wire.MsgInferResponse, Round: m.Round,
				Payload: wire.EncodeTensors(tensor.FromSlice([]float32{7}, 1, 1)),
			})
		}
	}()
	defer s1.Close()
	defer s2.Close()

	client := NewClient(p1, nil, "alpha", 1)
	client.SetPolicy(RetryPolicy{Timeout: 20 * time.Millisecond, MaxAttempts: 3, Backoff: 100 * time.Microsecond, Seed: 7})
	dials := 0
	client.SetRedial(func() (transport.Conn, error) {
		dials++
		return p2, nil
	})
	y, err := client.Infer(tensor.FromSlice([]float32{1}, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if y.Data()[0] != 7 {
		t.Fatalf("logits %v, want the second server's answer", y.Data())
	}
	st := client.Stats()
	if st.Timeouts != 1 || st.Redials != 1 || dials != 1 {
		t.Fatalf("stats %+v dials %d: want one timeout and one failover redial", st, dials)
	}
	client.Close()
}

// An exhausted retry budget surfaces the typed timeout, not a hang.
func TestClientExhaustsRetryBudget(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, p := transport.Pipe()
	go func() {
		for {
			if _, err := s.Recv(); err != nil {
				return
			}
		}
	}()
	defer s.Close()
	client := NewClient(p, nil, "alpha", 1)
	client.SetPolicy(RetryPolicy{Timeout: 10 * time.Millisecond, MaxAttempts: 2, Backoff: 100 * time.Microsecond, Seed: 7})
	_, err := client.Infer(tensor.FromSlice([]float32{1}, 1, 1))
	if !errors.Is(err, ErrAttemptTimeout) {
		t.Fatalf("err = %v, want ErrAttemptTimeout after budget exhaustion", err)
	}
	if st := client.Stats(); st.Timeouts != 2 || st.Attempts != 2 {
		t.Fatalf("stats %+v", st)
	}
	client.Close()
}

// A hedged attempt must fire after the hedge delay and win when the
// primary's response is slower; the primary's late answer is dropped
// as a stale round, not misdelivered.
func TestClientHedgedRequestWins(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, p := transport.Pipe()
	defer s.Close()
	go func() {
		first := true
		for {
			m, err := s.Recv()
			if err != nil || m.Type == wire.MsgBye {
				return
			}
			if first {
				first = false
				continue // never answer the primary attempt
			}
			_ = s.Send(&wire.Message{
				Type: wire.MsgInferResponse, Round: m.Round,
				Payload: wire.EncodeTensors(tensor.FromSlice([]float32{9}, 1, 1)),
			})
		}
	}()
	client := NewClient(p, nil, "alpha", 1)
	client.SetPolicy(RetryPolicy{HedgeAfter: 10 * time.Millisecond, Seed: 7})
	y, err := client.Infer(tensor.FromSlice([]float32{1}, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if y.Data()[0] != 9 {
		t.Fatalf("logits %v, want the hedge's answer", y.Data())
	}
	if st := client.Stats(); st.Hedges != 1 {
		t.Fatalf("stats %+v: want one hedge", st)
	}
	client.Close()
}

// Seeded retry schedules must be reproducible: two clients with the
// same policy seed observe identical jittered backoff sequences.
func TestRetryBackoffDeterministicUnderSeed(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		c := &Client{}
		c.SetPolicy(RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond, Seed: seed})
		var out []time.Duration
		for attempt := 1; attempt < 5; attempt++ {
			d := c.policy.Backoff << (attempt - 1)
			if d > c.policy.MaxBackoff || d <= 0 {
				d = c.policy.MaxBackoff
			}
			out = append(out, time.Duration(float64(d)*(0.5+c.jitter.Float64())))
		}
		return out
	}
	a, b := schedule(11), schedule(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff %d: %v != %v under the same seed", i, a[i], b[i])
		}
	}
	cDiff := schedule(12)
	same := true
	for i := range a {
		if a[i] != cDiff[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter — jitter is not seeded")
	}
}
