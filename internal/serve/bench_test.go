package serve

import (
	"fmt"
	"testing"
	"time"

	"medsplit/internal/models"
	"medsplit/internal/rng"
	"medsplit/internal/transport"
)

// BenchmarkServeInfer measures one split-inference round trip through
// the serving tier over in-process pipes: front forward, request
// encode, tenant routing, batcher flush, back forward under the
// compute gate, response encode/decode. The tenants arms show what
// multi-tenant routing and gate sharing cost over the single-tenant
// path. FlushEvery is floored to a nanosecond so every sequential
// request flushes immediately — this benchmarks the per-request path,
// not batching (the load tests exercise fusion).
// BenchmarkServeInferPrecision runs the same single-tenant round trip
// with the tenant's serving view at each inference precision: f32 (the
// bit-identical default), f16 (half-storage weights, f32 accumulate)
// and int8 (symmetric per-tensor weight quantization with dynamic
// activation ranges, i32 accumulate). The spread is the end-to-end
// serving cost of each representation on one process; logit-accuracy
// bounds for the reduced-precision paths are asserted by
// precision_test.go, not here.
func BenchmarkServeInferPrecision(b *testing.B) {
	for _, prec := range []string{"f32", "f16", "int8"} {
		b.Run(prec, func(b *testing.B) {
			tc := inferTenant("t0", 5, "")
			tc.InferPrecision = prec
			m, err := NewManager(Config{Tenants: []TenantConfig{tc}, ComputeSlots: 1})
			if err != nil {
				b.Fatal(err)
			}
			is, err := NewInferenceServer(m, InferConfig{BatchMax: 8, FlushEvery: time.Nanosecond})
			if err != nil {
				b.Fatal(err)
			}
			s, p := transport.Pipe()
			go is.HandleConn(s)
			mm := models.MLP(inferIn, []int{32}, inferClasses, rng.New(5))
			front, _, serr := models.Split(mm.Net, mm.DefaultCut)
			if serr != nil {
				b.Fatal(serr)
			}
			client := NewClient(p, front, "t0", 0)
			x := randInput(4, 1234)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Infer(x); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			client.Close()
			is.Close()
			m.Close()
		})
	}
}

func BenchmarkServeInfer(b *testing.B) {
	for _, nt := range []int{1, 4} {
		b.Run(fmt.Sprintf("tenants=%d", nt), func(b *testing.B) {
			tenants := make([]TenantConfig, nt)
			for i := range tenants {
				tenants[i] = inferTenant(fmt.Sprintf("t%d", i), uint64(5+i), "")
			}
			m, err := NewManager(Config{Tenants: tenants, ComputeSlots: 1})
			if err != nil {
				b.Fatal(err)
			}
			is, err := NewInferenceServer(m, InferConfig{BatchMax: 8, FlushEvery: time.Nanosecond})
			if err != nil {
				b.Fatal(err)
			}
			clients := make([]*Client, nt)
			for i := range clients {
				s, p := transport.Pipe()
				go is.HandleConn(s)
				mm := models.MLP(inferIn, []int{32}, inferClasses, rng.New(uint64(5+i)))
				front, _, serr := models.Split(mm.Net, mm.DefaultCut)
				if serr != nil {
					b.Fatal(serr)
				}
				clients[i] = NewClient(p, front, fmt.Sprintf("t%d", i), uint32(i))
			}
			x := randInput(4, 1234)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := clients[i%nt].Infer(x); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, c := range clients {
				c.Close()
			}
			is.Close()
			m.Close()
		})
	}
}
