package serve

import (
	"fmt"
	"testing"
	"time"

	"medsplit/internal/models"
	"medsplit/internal/rng"
	"medsplit/internal/transport"
)

// BenchmarkServeInfer measures one split-inference round trip through
// the serving tier over in-process pipes: front forward, request
// encode, tenant routing, batcher flush, back forward under the
// compute gate, response encode/decode. The tenants arms show what
// multi-tenant routing and gate sharing cost over the single-tenant
// path. FlushEvery is floored to a nanosecond so every sequential
// request flushes immediately — this benchmarks the per-request path,
// not batching (the load tests exercise fusion).
func BenchmarkServeInfer(b *testing.B) {
	for _, nt := range []int{1, 4} {
		b.Run(fmt.Sprintf("tenants=%d", nt), func(b *testing.B) {
			tenants := make([]TenantConfig, nt)
			for i := range tenants {
				tenants[i] = inferTenant(fmt.Sprintf("t%d", i), uint64(5+i), "")
			}
			m, err := NewManager(Config{Tenants: tenants, ComputeSlots: 1})
			if err != nil {
				b.Fatal(err)
			}
			is, err := NewInferenceServer(m, InferConfig{BatchMax: 8, FlushEvery: time.Nanosecond})
			if err != nil {
				b.Fatal(err)
			}
			clients := make([]*Client, nt)
			for i := range clients {
				s, p := transport.Pipe()
				go is.HandleConn(s)
				mm := models.MLP(inferIn, []int{32}, inferClasses, rng.New(uint64(5+i)))
				front, _, serr := models.Split(mm.Net, mm.DefaultCut)
				if serr != nil {
					b.Fatal(serr)
				}
				clients[i] = NewClient(p, front, fmt.Sprintf("t%d", i), uint32(i))
			}
			x := randInput(4, 1234)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := clients[i%nt].Infer(x); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, c := range clients {
				c.Close()
			}
			is.Close()
			m.Close()
		})
	}
}
