//go:build !race

package serve_test

const raceEnabled = false
