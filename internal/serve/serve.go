// Package serve multiplexes many split-learning tenants onto one
// server process. The paper's deployment model puts the back half of
// every cohort's model on a central aggregation point; internal/core
// runs exactly one such session per process. This package adds the
// production tier above it: a Manager that admits sessions against a
// max-sessions/max-memory budget, keeps per-tenant model and
// checkpoint state isolated (separate tensor and payload pools, so one
// tenant's traffic never recycles through another's buffers), and
// shares server-side compute fairly — round-robin over a fixed slot
// budget — across everything running in the process.
//
// Two workloads ride on the Manager:
//
//   - Training: OpenSession wraps a core.Server with admission control
//     and the shared compute gate. The gate only decides when a
//     session's compute steps run, never in what order, so a session
//     served through the Manager trains bit-identically to a
//     standalone core.RunLocal session (the differential tests compare
//     weight digests).
//   - Inference: InferenceServer (infer.go) answers MsgInferRequest
//     traffic with the back half of each tenant's model, batching
//     requests dynamically and serving from a warm model cache keyed
//     by checkpoint generation (cache.go).
package serve

import (
	"errors"
	"fmt"
	"sync"

	"medsplit/internal/core"
	"medsplit/internal/nn"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// Admission and serving errors. The inference path ships these to
// clients as structured error payloads (wire.EncodeServeError), so
// their classification — not just their text — is part of the protocol
// surface: see errCodeOf for the error → wire.ErrCode mapping.
var (
	ErrUnknownTenant      = errors.New("serve: unknown tenant")
	ErrSessionLimit       = errors.New("serve: session limit reached")
	ErrMemoryBudget       = errors.New("serve: memory budget exceeded")
	ErrManagerClosed      = errors.New("serve: manager closed")
	ErrGenerationMismatch = errors.New("serve: checkpoint generation mismatch")
	ErrConfig             = errors.New("serve: invalid configuration")
	// ErrOverloaded is deterministic load shedding: the tenant's
	// bounded admission queue is full, so the request is refused at the
	// door — with a retry-after hint — instead of buffered without
	// bound. Retryable.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrDeadlineExpired is shed-before-compute: the request's wire
	// deadline passed while it waited, so the server drops it instead
	// of computing logits nobody is waiting for. Retryable (the retry
	// carries a fresh budget).
	ErrDeadlineExpired = errors.New("serve: deadline expired before compute")
)

// TenantConfig describes one tenant: a cohort/model pair with its own
// back-half weights and checkpoint lineage.
type TenantConfig struct {
	// Name identifies the tenant on the wire (see
	// wire.EncodeInferRequest). Required, unique, at most
	// wire.MaxTenantNameLen bytes.
	Name string
	// BuildBack constructs the tenant's server-side model half at its
	// initial weights. Called lazily, at most once per Manager, when
	// the inference path first needs the model; training sessions bring
	// their own back half in the ServerConfig. Required when the tenant
	// is served inference traffic.
	BuildBack func() (*nn.Sequential, error)
	// CheckpointDir is where the tenant's training sessions write
	// server snapshots. The inference cache watches it: the latest
	// generation (snapshot NextRound) found there is what requests are
	// served from. Empty means the tenant serves BuildBack's initial
	// weights as generation 0.
	CheckpointDir string
	// MaxSessions caps this tenant's concurrent training sessions.
	// 0 means only the Manager-wide cap applies.
	MaxSessions int
	// InferPrecision selects the numeric format the tenant's inference
	// traffic is served at: "" or "f32" (default) serves the f32 back
	// half bit-identically to prior releases; "f16" stores Dense
	// weights in half precision with f32 accumulation (~2⁻¹¹ relative
	// weight rounding); "int8" runs Dense layers through symmetric
	// int8 weights and dynamically quantized activations with int32
	// accumulation (logits track f32 to ~1e-2 absolute on unit-scale
	// activations — see nn.QuantizedInference). Reduced precision
	// applies only to inference; training sessions always run f32.
	InferPrecision string
}

// Config configures a Manager.
type Config struct {
	// Tenants is the static tenant set. Required, non-empty.
	Tenants []TenantConfig
	// MaxSessions caps concurrent training sessions across all
	// tenants. Defaults to 64.
	MaxSessions int
	// MaxMemoryBytes bounds the estimated resident bytes of admitted
	// sessions plus warm inference models (see EstimateSessionBytes).
	// 0 means unbounded.
	MaxMemoryBytes int64
	// ComputeSlots bounds how many parties run back-half compute
	// concurrently (the round-robin slot budget). Defaults to 1, which
	// serializes all server-side math — the strictest fairness and the
	// setting under which gated sessions are trivially bit-identical
	// to ungated ones.
	ComputeSlots int
}

func (c *Config) validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("%w: no tenants", ErrConfig)
	}
	seen := make(map[string]bool, len(c.Tenants))
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Name == "" || len(t.Name) > wire.MaxTenantNameLen {
			return fmt.Errorf("%w: tenant %d name %q", ErrConfig, i, t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("%w: duplicate tenant %q", ErrConfig, t.Name)
		}
		seen[t.Name] = true
		if t.MaxSessions < 0 {
			return fmt.Errorf("%w: tenant %q max sessions %d", ErrConfig, t.Name, t.MaxSessions)
		}
		switch t.InferPrecision {
		case "", "f32", "f16", "int8":
		default:
			return fmt.Errorf("%w: tenant %q infer precision %q (want f32, f16 or int8)", ErrConfig, t.Name, t.InferPrecision)
		}
	}
	if c.MaxSessions < 0 {
		return fmt.Errorf("%w: max sessions %d", ErrConfig, c.MaxSessions)
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.MaxMemoryBytes < 0 {
		return fmt.Errorf("%w: max memory %d", ErrConfig, c.MaxMemoryBytes)
	}
	if c.ComputeSlots < 0 {
		return fmt.Errorf("%w: compute slots %d", ErrConfig, c.ComputeSlots)
	}
	if c.ComputeSlots == 0 {
		c.ComputeSlots = 1
	}
	return nil
}

// tenant is the Manager's per-tenant state: the config, the warm
// inference cache, and the isolated pools the serving path draws
// scratch from. Pool isolation is the memory-safety half of tenancy —
// a tenant's decoded activations and encoded responses only ever
// recycle through its own pools, so a sizing bug or a leaked buffer
// stays contained to the tenant that caused it.
type tenant struct {
	cfg     TenantConfig
	cache   *modelCache
	pool    *tensor.Pool
	buffers *wire.BufferPool

	sessions int // live training sessions (guarded by Manager.mu)
}

// Manager multiplexes tenants onto one process: admission control for
// training sessions, tenant lookup for the inference tier, and the
// shared compute scheduler both workloads draw slots from.
type Manager struct {
	cfg   Config
	sched *computeScheduler

	mu       sync.Mutex
	tenants  map[string]*tenant
	sessions int   // live sessions across tenants
	memory   int64 // admitted estimated bytes
	closed   bool
}

// NewManager validates cfg and builds a Manager.
func NewManager(cfg Config) (*Manager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:     cfg,
		sched:   newComputeScheduler(cfg.ComputeSlots),
		tenants: make(map[string]*tenant, len(cfg.Tenants)),
	}
	for _, tc := range cfg.Tenants {
		t := &tenant{
			cfg:     tc,
			pool:    &tensor.Pool{},
			buffers: &wire.BufferPool{},
		}
		t.cache = &modelCache{name: tc.Name, build: tc.BuildBack, dir: tc.CheckpointDir, precision: tc.InferPrecision}
		m.tenants[tc.Name] = t
	}
	return m, nil
}

// tenantByName resolves a tenant under the Manager lock.
func (m *Manager) tenantByName(name string) (*tenant, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrManagerClosed
	}
	t, ok := m.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return t, nil
}

// EstimateSessionBytes is the admission-control cost model for one
// training session: four float32 copies of every back-half parameter
// (weights, gradients, and two optimizer-moment slots — SGD uses
// fewer, Adam-family exactly this; over-admitting on memory is the
// failure mode worth being conservative about), the stateful buffers
// (BatchNorm statistics), and 64 KiB of wire scratch per platform
// connection. An estimate, not an accounting: the budget exists to
// refuse obviously-unpayable admissions before they thrash the
// process, not to meter every allocation.
func EstimateSessionBytes(scfg *core.ServerConfig) int64 {
	if scfg.Back == nil {
		return 0
	}
	params := int64(nn.ParamCount(scfg.Back.Params()))
	var state int64
	for _, st := range nn.CollectState(scfg.Back) {
		state += int64(st.Size())
	}
	const f32 = 4
	b := 4*params*f32 + state*f32
	b += int64(scfg.Platforms) * 64 << 10
	return b
}

// OpenSession admits and starts one training session for the named
// tenant. scfg is a complete core.ServerConfig (back half, optimizer,
// round plan) except that the Manager owns two fields: Compute is set
// to the session's fair-scheduling gate, and an empty CheckpointDir
// inherits the tenant's. conns[k] talks to platform k, exactly as in
// core.Server.Serve; the session runs on its own goroutine and the
// returned Session reports completion through Wait.
//
// Admission is checked in a fixed order — manager closed, tenant
// exists, per-tenant session cap, process session cap, memory budget —
// so a rejection's cause is deterministic for any given state.
func (m *Manager) OpenSession(tenantName string, scfg core.ServerConfig, conns []transport.Conn) (*Session, error) {
	est := EstimateSessionBytes(&scfg)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	t, ok := m.tenants[tenantName]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenantName)
	}
	if t.cfg.MaxSessions > 0 && t.sessions >= t.cfg.MaxSessions {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q at %d sessions", ErrSessionLimit, tenantName, t.sessions)
	}
	if m.sessions >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: manager at %d sessions", ErrSessionLimit, m.sessions)
	}
	if m.cfg.MaxMemoryBytes > 0 && m.memory+est > m.cfg.MaxMemoryBytes {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %d + %d bytes exceeds budget %d",
			ErrMemoryBudget, m.memory, est, m.cfg.MaxMemoryBytes)
	}
	t.sessions++
	m.sessions++
	m.memory += est
	m.mu.Unlock()

	if scfg.CheckpointDir == "" {
		scfg.CheckpointDir = t.cfg.CheckpointDir
	}
	gate := m.sched.register("session:" + tenantName)
	scfg.Compute = gate
	srv, err := core.NewServer(scfg)
	if err != nil {
		m.sched.unregister(gate)
		m.releaseSession(t, est)
		return nil, err
	}
	sess := &Session{
		m:      m,
		tenant: t,
		gate:   gate,
		srv:    srv,
		bytes:  est,
		done:   make(chan struct{}),
	}
	go func() {
		err := srv.Serve(conns)
		m.sched.unregister(gate)
		m.releaseSession(t, est)
		sess.err = err
		close(sess.done)
	}()
	return sess, nil
}

// releaseSession returns a finished (or failed-to-start) session's
// admission to the budget.
func (m *Manager) releaseSession(t *tenant, est int64) {
	m.mu.Lock()
	t.sessions--
	m.sessions--
	m.memory -= est
	m.mu.Unlock()
}

// Stats is a point-in-time view of the Manager's admission state.
type Stats struct {
	Sessions    int   // live training sessions
	MemoryBytes int64 // admitted estimated bytes
}

// Stats reports the current admission state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Sessions: m.sessions, MemoryBytes: m.memory}
}

// Close refuses further admissions. Live sessions keep running;
// callers that want them gone call Stop on each Session first.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
}

// Session is one admitted training session.
type Session struct {
	m      *Manager
	tenant *tenant
	gate   *computeGate
	srv    *core.Server
	bytes  int64
	done   chan struct{}
	err    error
}

// Wait blocks until the session's server loop returns and reports its
// error.
func (s *Session) Wait() error {
	<-s.done
	return s.err
}

// Stop requests a graceful shutdown (see core.Server.Stop).
func (s *Session) Stop() { s.srv.Stop() }
