// Chaos tests for the serving tier, in the external test package so
// they can drive internal/experiment's harness (experiment imports
// serve, so an internal test file could not import it back).
package serve_test

import (
	"testing"
	"time"

	"medsplit/internal/experiment"
	"medsplit/internal/simnet"
	"medsplit/internal/transport/testutil"
)

// An empty fault script must be indistinguishable from the reference
// run: everything succeeds, nothing retried, digests trivially match.
func TestServeChaosFaultFree(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	res, err := experiment.RunServeChaos(experiment.ServeChaosConfig{
		Load: experiment.ServeLoadConfig{
			Tenants:             2,
			Platforms:           4,
			RequestsPerPlatform: 3,
			Seed:                17,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded != res.Requests || res.Failed != 0 || res.Mismatched != 0 {
		t.Fatalf("fault-free chaos run: %+v", res)
	}
}

// One of each serving-phase fault against a small matrix: every
// request must still succeed (the retry/failover stack absorbs drops,
// stalls and severs; a virtual delay spike needs no client action),
// and every successful response must be bit-identical to the
// fault-free run.
func TestServeChaosAbsorbsEachFaultKind(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	timeout := 250 * time.Millisecond
	res, err := experiment.RunServeChaos(experiment.ServeChaosConfig{
		Load: experiment.ServeLoadConfig{
			Tenants:             2,
			Platforms:           4,
			RequestsPerPlatform: 4,
			Seed:                19,
		},
		Timeout:     timeout,
		MaxAttempts: 4,
		Faults: []simnet.Fault{
			// Platform 0: its second request vanishes upstream.
			{Platform: 0, Round: 2, Dir: simnet.DirUp, Kind: simnet.FaultDrop},
			// Platform 1: a response comes back 300ms late in virtual time.
			{Platform: 1, Round: 3, Dir: simnet.DirDown, Kind: simnet.FaultDelaySpike, Delay: 300 * time.Millisecond},
			// Platform 2: the server stalls past the client timeout.
			{Platform: 2, Round: 1, Dir: simnet.DirDown, Kind: simnet.FaultStall, Hold: timeout + timeout/2},
			// Platform 3: the connection severs mid-stream.
			{Platform: 3, Round: 2, Dir: simnet.DirUp, Kind: simnet.FaultSever},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded != res.Requests {
		t.Fatalf("%d/%d requests succeeded (%+v); the retry stack must absorb every scripted fault",
			res.Succeeded, res.Requests, res)
	}
	if res.Mismatched != 0 {
		t.Fatalf("%d responses diverged from the fault-free run", res.Mismatched)
	}
	if res.Retries == 0 {
		t.Fatalf("stats %+v: drops, stalls and severs must have forced retries", res)
	}
	if res.Redials == 0 {
		t.Fatalf("stats %+v: timeouts and severs must have forced redials", res)
	}
}

// Hedging under a stall shorter than the timeout: the duplicate
// attempt must fire and the request still succeed bit-identically.
func TestServeChaosHedgesUnderStall(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	res, err := experiment.RunServeChaos(experiment.ServeChaosConfig{
		Load: experiment.ServeLoadConfig{
			Tenants:             1,
			Platforms:           2,
			RequestsPerPlatform: 3,
			Seed:                23,
		},
		Timeout:     time.Second,
		MaxAttempts: 3,
		HedgeAfter:  20 * time.Millisecond,
		Faults: []simnet.Fault{
			// Stall well past the hedge delay but inside the timeout:
			// the hedge fires, both answers eventually arrive, the
			// first match wins, the straggler is discarded.
			{Platform: 0, Round: 2, Dir: simnet.DirDown, Kind: simnet.FaultStall, Hold: 150 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded != res.Requests || res.Mismatched != 0 {
		t.Fatalf("chaos run with hedging: %+v", res)
	}
	if res.Hedges == 0 {
		t.Fatalf("stats %+v: the stalled response must have triggered a hedge", res)
	}
}

// The acceptance matrix: 100 platforms × 4 tenants over the simulated
// geo-WAN under a seeded mix of drops, delay spikes, stalls and
// severs. Every admitted request completes correctly or fails fast
// with a typed error, successful responses are bit-identical to the
// fault-free run, and no goroutine leaks. Skipped under -short; the
// nightly chaos soak runs it under -race.
func TestServeChaos100Platforms4Tenants(t *testing.T) {
	if testing.Short() {
		t.Skip("100-platform chaos matrix skipped in -short mode")
	}
	testutil.VerifyNoLeaks(t)
	// The client timeout is real time; under the race detector
	// everything runs ~10x slower, so widen it to keep spurious
	// timeouts from eating the retry budget.
	timeout := 250 * time.Millisecond
	hedgeAfter := 100 * time.Millisecond
	if raceEnabled {
		timeout = 1500 * time.Millisecond
		hedgeAfter = 500 * time.Millisecond
	}
	requests := 3
	res, err := experiment.RunServeChaos(experiment.ServeChaosConfig{
		Load: experiment.ServeLoadConfig{
			Tenants:             4,
			Platforms:           100,
			RequestsPerPlatform: requests,
			RequestRows:         2,
			BatchMax:            16,
			FlushEvery:          2 * time.Millisecond,
			ComputeSlots:        4,
			SimJitter:           0.1,
			Seed:                29,
		},
		Timeout:     timeout,
		MaxAttempts: 4,
		HedgeAfter:  hedgeAfter,
		Faults:      experiment.ChaosFaultScript(100, requests, timeout, 29),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded+res.Failed != res.Requests || res.Mismatched != 0 {
		t.Fatalf("chaos matrix: %+v", res)
	}
	// The fault script touches ~a third of the platforms; the retry
	// stack should recover nearly everything.
	if res.Succeeded < res.Requests*95/100 {
		t.Fatalf("only %d/%d requests succeeded under chaos (%+v)", res.Succeeded, res.Requests, res)
	}
	t.Logf("chaos 100×4: %d/%d ok, failed=%d retries=%d hedges=%d redials=%d timeouts=%d shed=%d expired=%d simWAN=%v",
		res.Succeeded, res.Requests, res.Failed, res.Retries, res.Hedges, res.Redials,
		res.Timeouts, res.Server.Shed, res.Server.Expired, res.SimElapsed)
}
