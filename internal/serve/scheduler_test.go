package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitPending polls until the gate is parked waiting for a grant.
func waitPending(t *testing.T, cs *computeScheduler, g *computeGate) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		cs.mu.Lock()
		p := g.pending
		cs.mu.Unlock()
		if p {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("gate never went pending")
}

// With one slot held and two gates queued, releases must grant in ring
// order past the cursor: b (registered first among the waiters), then
// c — round-robin, not lock-acquisition luck.
func TestSchedulerGrantsInRingOrder(t *testing.T) {
	cs := newComputeScheduler(1)
	a := cs.register("a")
	b := cs.register("b")
	c := cs.register("c")

	releaseA := a.Acquire()

	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := b.Acquire()
		order <- "b"
		r()
	}()
	waitPending(t, cs, b)
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := c.Acquire()
		order <- "c"
		r()
	}()
	waitPending(t, cs, c)

	releaseA()
	wg.Wait()
	if first, second := <-order, <-order; first != "b" || second != "c" {
		t.Fatalf("grant order %s, %s; want b, c", first, second)
	}
	if _, waited := b.stats(); waited != 1 {
		t.Fatalf("b waited %d times, want 1", waited)
	}
	if acquired, _ := a.stats(); acquired != 1 {
		t.Fatalf("a acquired %d times, want 1", acquired)
	}
}

// The slot budget must be a hard bound on concurrent holders, and
// under sustained contention every gate must make progress (the
// starvation-freedom round-robin buys).
func TestSchedulerBoundsConcurrencyAndStarvesNobody(t *testing.T) {
	const slots, gates, rounds = 2, 5, 50
	cs := newComputeScheduler(slots)
	var inside, peak atomic.Int64
	var wg sync.WaitGroup
	done := make([]int64, gates)
	for i := 0; i < gates; i++ {
		g := cs.register("g")
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				release := g.Acquire()
				n := inside.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				inside.Add(-1)
				release()
				done[i]++
			}
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Fatalf("%d concurrent holders, budget %d", p, slots)
	}
	for i, n := range done {
		if n != rounds {
			t.Fatalf("gate %d finished %d/%d rounds", i, n, rounds)
		}
	}
}

// Unregistering a gate mid-ring must keep the cursor valid and leave
// the remaining gates schedulable.
func TestSchedulerUnregisterKeepsRingValid(t *testing.T) {
	cs := newComputeScheduler(1)
	a := cs.register("a")
	b := cs.register("b")
	c := cs.register("c")

	r := a.Acquire()
	r()
	cs.unregister(b)

	// Both survivors still cycle through the slot.
	for i := 0; i < 3; i++ {
		ra := a.Acquire()
		ra()
		rc := c.Acquire()
		rc()
	}
	cs.unregister(a)
	cs.unregister(c)
	cs.unregister(c) // double unregister is a no-op
	if len(cs.ring) != 0 || cs.cursor != 0 {
		t.Fatalf("ring %d entries, cursor %d after full unregister", len(cs.ring), cs.cursor)
	}
}
