package serve

import (
	"fmt"

	"medsplit/internal/nn"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// RemoteError is a rejection the serving tier shipped back as a text
// payload (unknown tenant, generation mismatch, malformed request).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "serve: remote: " + e.Msg }

// Client is one platform's handle on the inference tier: it runs the
// front half of the tenant's model locally and ships cut-layer
// activations, receiving logits back. One Client owns one connection
// and keeps one request in flight (the platform-side shape of the
// paper's protocol: the data holder computes its layers, then waits on
// the aggregation point); batching across clients happens server-side.
//
// Not safe for concurrent use — a Client belongs to one goroutine,
// exactly like a core.Platform.
type Client struct {
	conn   transport.Conn
	front  *nn.Sequential
	tenant string
	id     uint32
	gen    uint32
	seq    uint32
	dec    []*tensor.Tensor // response decode scratch
}

// NewClient builds a client for the named tenant over conn. front is
// the tenant's model below the cut; nil means Infer's inputs are
// already cut-layer activations (the caller ran the front elsewhere).
// id tags requests for server-side diagnostics.
func NewClient(conn transport.Conn, front *nn.Sequential, tenantName string, id uint32) *Client {
	return &Client{conn: conn, front: front, tenant: tenantName, id: id}
}

// SetGeneration pins the checkpoint generation subsequent requests
// must be served from (0 = whatever the server has warm). Sending a
// newer generation is also what rolls the server's cache forward —
// see modelCache.
func (c *Client) SetGeneration(gen uint32) { c.gen = gen }

// Infer runs one request: front half locally (when configured), one
// round trip, logits back. The returned tensor is owned by the client
// and valid until the next Infer call.
func (c *Client) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	a := x
	if c.front != nil {
		a = c.front.Forward(x, false)
	}
	c.seq++
	size := wire.TensorsPayloadSize(a.Shape()) + len(c.tenant) + 8
	payload := wire.EncodeInferRequestInto(wire.Buffers.Get(size), c.tenant, c.gen, a)
	if err := c.conn.Send(&wire.Message{
		Type:     wire.MsgInferRequest,
		Platform: c.id,
		Round:    c.seq,
		Payload:  payload,
	}); err != nil {
		return nil, fmt.Errorf("serve: client %d send: %w", c.id, err)
	}
	m, err := c.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("serve: client %d recv: %w", c.id, err)
	}
	if m.Type != wire.MsgInferResponse {
		return nil, fmt.Errorf("serve: client %d: unexpected %s", c.id, m.Type)
	}
	if m.Round != c.seq {
		return nil, fmt.Errorf("serve: client %d: response for request %d, want %d", c.id, m.Round, c.seq)
	}
	if s, terr := wire.DecodeText(m.Payload); terr == nil {
		wire.ReleasePayload(&wire.Buffers, m)
		return nil, &RemoteError{Msg: s}
	}
	ts, derr := wire.DecodeTensorsInto(c.dec, m.Payload)
	if derr != nil || len(ts) != 1 {
		return nil, fmt.Errorf("serve: client %d: bad response payload: %v", c.id, derr)
	}
	c.dec = ts
	wire.ReleasePayload(&wire.Buffers, m)
	return ts[0], nil
}

// Close says goodbye and closes the connection.
func (c *Client) Close() error {
	_ = c.conn.Send(&wire.Message{Type: wire.MsgBye, Platform: c.id})
	return c.conn.Close()
}
