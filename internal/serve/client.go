package serve

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// RemoteError is a rejection the serving tier shipped back as a
// structured error payload. Code decides whether a retry can help
// (see wire.ErrCode.Retryable); RetryAfter is the server's hint for
// how long the condition plausibly needs to clear.
type RemoteError struct {
	Code       wire.ErrCode
	RetryAfter time.Duration
	Msg        string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("serve: remote: %s: %s", e.Code, e.Msg)
}

// Retryable reports whether retrying the same request can succeed.
func (e *RemoteError) Retryable() bool { return e.Code.Retryable() }

// ErrAttemptTimeout is the typed failure of one attempt that exceeded
// RetryPolicy.Timeout without an answer. Callers see it (wrapped) only
// after the retry budget is spent.
var ErrAttemptTimeout = errors.New("serve: client attempt timed out")

// RetryPolicy configures the client's overload and failure handling.
// The zero value preserves the original contract exactly: one attempt,
// no timeout, no hedging — and the zero-policy Infer path stays
// allocation-identical to the pre-policy client, which is what the
// serving benchmark gates.
type RetryPolicy struct {
	// Timeout bounds one attempt. It is also the deadline budget
	// stamped onto the wire (wire.InferHeader.DeadlineMicros), so the
	// server sheds the attempt rather than computing an answer the
	// client has stopped waiting for. 0 = wait forever, send no budget.
	Timeout time.Duration
	// MaxAttempts is the total attempt budget per Infer call,
	// including the first. 0 or 1 means single-shot. Only retryable
	// failures consume extra attempts: timeouts, connection errors,
	// and remote rejections whose code is retryable (overloaded,
	// expired, draining).
	MaxAttempts int
	// Backoff is the base delay before the second attempt; it doubles
	// each further retry and is jittered by a deterministic
	// multiplier in [0.5, 1.5) drawn from Seed. A server retry-after
	// hint raises (never lowers) the delay. Defaults to 1ms when
	// retries are enabled.
	Backoff time.Duration
	// MaxBackoff caps the grown backoff. Defaults to 64×Backoff.
	MaxBackoff time.Duration
	// HedgeAfter, when positive, fires a duplicate attempt if the
	// first has not answered after this delay, and takes whichever
	// answer lands first. Once 32 attempt latencies have been
	// observed, the effective delay adapts upward to the observed p99
	// (HedgeAfter stays the floor), so hedges chase only genuine
	// stragglers. 0 disables hedging.
	HedgeAfter time.Duration
	// Seed feeds the jitter generator (internal/rng SplitMix64), so a
	// seeded client's retry schedule is exactly reproducible.
	Seed uint64
}

func (p *RetryPolicy) active() bool {
	return p.Timeout > 0 || p.MaxAttempts > 1 || p.HedgeAfter > 0
}

// ClientStats counts the client's resilience machinery at work.
type ClientStats struct {
	Attempts int64 // requests put on the wire (including hedges)
	Retries  int64 // attempts beyond the first for a logical request
	Hedges   int64 // duplicate attempts fired by the hedging delay
	Redials  int64 // connections re-established after a failure
	Remote   int64 // structured rejections received (any code)
	Timeouts int64 // attempts that exceeded RetryPolicy.Timeout
}

// latencyWindow is how many recent attempt latencies feed the adaptive
// hedge delay, and latencyMinSamples how many must exist before the
// p99 estimate overrides HedgeAfter.
const (
	latencyWindow     = 128
	latencyMinSamples = 32
)

// Client is one platform's handle on the inference tier: it runs the
// front half of the tenant's model locally and ships cut-layer
// activations, receiving logits back. One Client owns one connection
// and keeps one logical request in flight (the platform-side shape of
// the paper's protocol: the data holder computes its layers, then
// waits on the aggregation point); batching across clients happens
// server-side. A RetryPolicy (SetPolicy) layers per-attempt timeouts,
// jittered-backoff retries and hedged duplicates on top; SetRedial
// supplies replacement connections — typically rotating through a
// server address list — when the current one fails.
//
// Not safe for concurrent use — a Client belongs to one goroutine,
// exactly like a core.Platform.
type Client struct {
	conn   transport.Conn
	front  *nn.Sequential
	tenant string
	id     uint32
	gen    uint32
	seq    uint32
	reqID  uint64
	dec    []*tensor.Tensor // response decode scratch

	policy RetryPolicy
	jitter *rng.RNG
	redial func() (transport.Conn, error)
	stats  ClientStats

	// Receive pump, running only while the policy is active: it owns
	// conn.Recv so an attempt can race responses against timers.
	pump     chan recvResult
	pumpDone chan struct{}

	lat    []time.Duration // latency ring for the adaptive hedge delay
	latPos int
	hedge  time.Duration // cached effective hedge delay
}

type recvResult struct {
	m   *wire.Message
	err error
}

// NewClient builds a client for the named tenant over conn. front is
// the tenant's model below the cut; nil means Infer's inputs are
// already cut-layer activations (the caller ran the front elsewhere).
// id tags requests for server-side diagnostics.
func NewClient(conn transport.Conn, front *nn.Sequential, tenantName string, id uint32) *Client {
	return &Client{conn: conn, front: front, tenant: tenantName, id: id}
}

// SetGeneration pins the checkpoint generation subsequent requests
// must be served from (0 = whatever the server has warm). Sending a
// newer generation is also what rolls the server's cache forward —
// see modelCache.
func (c *Client) SetGeneration(gen uint32) { c.gen = gen }

// SetPolicy installs the retry policy. Call before the first Infer;
// the policy is not safe to change with a request in flight.
func (c *Client) SetPolicy(p RetryPolicy) {
	if p.MaxAttempts > 1 || p.HedgeAfter > 0 {
		if p.Backoff <= 0 {
			p.Backoff = time.Millisecond
		}
		if p.MaxBackoff <= 0 {
			p.MaxBackoff = 64 * p.Backoff
		}
	}
	c.policy = p
	c.jitter = rng.New(p.Seed)
	c.hedge = p.HedgeAfter
}

// SetRedial supplies replacement connections after a connection
// failure or attempt timeout. The closure owns failover placement —
// rotating through an address list, re-resolving, whatever the
// deployment wants; the client just calls it once per redial.
func (c *Client) SetRedial(f func() (transport.Conn, error)) { c.redial = f }

// Stats reports the client's resilience counters.
func (c *Client) Stats() ClientStats { return c.stats }

// Infer runs one logical request: front half locally (when
// configured), then one round trip — or, under a RetryPolicy, up to
// MaxAttempts of them with backoff, failover and hedging. The
// returned tensor is owned by the client and valid until the next
// Infer call.
func (c *Client) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	a := x
	if c.front != nil {
		a = c.front.Forward(x, false)
	}
	c.reqID++
	if !c.policy.active() {
		return c.inferOnce(a)
	}
	return c.inferManaged(a)
}

// inferOnce is the zero-policy fast path: synchronous send/recv, no
// pump, no timers — allocation-identical to the original client.
func (c *Client) inferOnce(a *tensor.Tensor) (*tensor.Tensor, error) {
	c.seq++
	c.stats.Attempts++
	if err := c.send(a, c.seq, 0); err != nil {
		return nil, err
	}
	m, err := c.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("serve: client %d recv: %w", c.id, err)
	}
	return c.decodeResponse(m, c.seq)
}

// send frames one attempt. budget is the deadline stamped on the
// wire; 0 sends none.
func (c *Client) send(a *tensor.Tensor, seq uint32, budget time.Duration) error {
	h := wire.InferHeader{
		Tenant:         c.tenant,
		Generation:     c.gen,
		RequestID:      uint64(c.id)<<32 | c.reqID,
		DeadlineMicros: saturateMicros(budget),
	}
	size := wire.InferRequestPayloadSize(c.tenant, a.Shape())
	payload := wire.EncodeInferRequestInto(wire.Buffers.Get(size), h, a)
	if err := c.conn.Send(&wire.Message{
		Type:     wire.MsgInferRequest,
		Platform: c.id,
		Round:    seq,
		Payload:  payload,
	}); err != nil {
		return fmt.Errorf("serve: client %d send: %w", c.id, err)
	}
	return nil
}

func saturateMicros(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	us := d / time.Microsecond
	if us > 0xFFFFFFFF {
		return 0xFFFFFFFF
	}
	return uint32(us)
}

// decodeResponse validates one MsgInferResponse for attempt seq and
// returns the logits or the typed remote rejection.
func (c *Client) decodeResponse(m *wire.Message, seq uint32) (*tensor.Tensor, error) {
	if m.Type != wire.MsgInferResponse {
		return nil, fmt.Errorf("serve: client %d: unexpected %s", c.id, m.Type)
	}
	if m.Round != seq {
		return nil, fmt.Errorf("serve: client %d: response for request %d, want %d", c.id, m.Round, seq)
	}
	if code, retryAfter, msg, terr := wire.DecodeServeError(m.Payload); terr == nil {
		wire.ReleasePayload(&wire.Buffers, m)
		c.stats.Remote++
		return nil, &RemoteError{Code: code, RetryAfter: retryAfter, Msg: msg}
	}
	ts, derr := wire.DecodeTensorsInto(c.dec, m.Payload)
	if derr != nil || len(ts) != 1 {
		return nil, fmt.Errorf("serve: client %d: bad response payload: %v", c.id, derr)
	}
	c.dec = ts
	wire.ReleasePayload(&wire.Buffers, m)
	return ts[0], nil
}

// inferManaged drives the retry loop: each attempt runs under the
// pump with its timeout and optional hedge, failures classify into
// retryable and terminal, and retryable ones burn backoff and
// (on connection damage) a redial before the next attempt.
func (c *Client) inferManaged(a *tensor.Tensor) (*tensor.Tensor, error) {
	attempts := c.policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.stats.Retries++
			c.sleepBackoff(attempt, lastErr)
		}
		if c.conn == nil {
			if err := c.redialConn(); err != nil {
				lastErr = err
				continue
			}
		}
		y, err := c.attempt(a)
		if err == nil {
			return y, nil
		}
		lastErr = err
		var remote *RemoteError
		if errors.As(err, &remote) && !remote.Retryable() {
			return nil, err // misrouted or malformed: no retry can fix it
		}
	}
	return nil, fmt.Errorf("serve: client %d: %d attempts exhausted: %w", c.id, attempts, lastErr)
}

// sleepBackoff waits the jittered exponential backoff before retry
// number attempt (1-based), honoring any server retry-after hint.
func (c *Client) sleepBackoff(attempt int, lastErr error) {
	d := c.policy.Backoff << (attempt - 1)
	if d > c.policy.MaxBackoff || d <= 0 {
		d = c.policy.MaxBackoff
	}
	// Deterministic jitter in [0.5, 1.5): desynchronizes a fleet of
	// shed clients without breaking seeded reproducibility.
	d = time.Duration(float64(d) * (0.5 + c.jitter.Float64()))
	var remote *RemoteError
	if errors.As(lastErr, &remote) && remote.RetryAfter > d {
		d = remote.RetryAfter
	}
	time.Sleep(d)
}

// attempt runs one (possibly hedged) attempt under the pump.
func (c *Client) attempt(a *tensor.Tensor) (*tensor.Tensor, error) {
	c.ensurePump()
	start := time.Now()
	c.seq++
	seq1 := c.seq
	seq2 := uint32(0) // hedge attempt seq, 0 while unfired
	c.stats.Attempts++
	if err := c.send(a, seq1, c.policy.Timeout); err != nil {
		c.teardown()
		return nil, err
	}

	var timeoutC, hedgeC <-chan time.Time
	var timeout, hedgeTimer *time.Timer
	if c.policy.Timeout > 0 {
		timeout = time.NewTimer(c.policy.Timeout)
		defer timeout.Stop()
		timeoutC = timeout.C
	}
	if c.hedge > 0 {
		hedgeTimer = time.NewTimer(c.hedge)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	for {
		select {
		case r := <-c.pump:
			if r.err != nil {
				c.teardown()
				return nil, fmt.Errorf("serve: client %d recv: %w", c.id, r.err)
			}
			if r.m.Type == wire.MsgInferResponse && r.m.Round != seq1 && r.m.Round != seq2 {
				// A straggler from an abandoned or hedged-out attempt:
				// drop it and keep waiting for ours.
				wire.ReleasePayload(&wire.Buffers, r.m)
				continue
			}
			match := seq1
			if r.m.Round == seq2 {
				match = seq2
			}
			y, err := c.decodeResponse(r.m, match)
			if err == nil {
				c.observeLatency(time.Since(start))
			}
			return y, err
		case <-hedgeC:
			hedgeC = nil
			c.seq++
			seq2 = c.seq
			c.stats.Hedges++
			c.stats.Attempts++
			if err := c.send(a, seq2, c.policy.Timeout); err != nil {
				// The hedge could not go out (connection damage); the
				// primary attempt may still answer, so keep waiting.
				seq2 = 0
			}
		case <-timeoutC:
			c.stats.Timeouts++
			if c.redial != nil {
				// A fresh connection is available, so abandon this one
				// rather than share it with a late response.
				c.teardown()
			}
			return nil, fmt.Errorf("serve: client %d: request %d: %w", c.id, c.reqID, ErrAttemptTimeout)
		}
	}
}

// ensurePump starts the receive pump for the current connection if it
// is not already running.
func (c *Client) ensurePump() {
	if c.pump != nil {
		return
	}
	ch := make(chan recvResult, 4)
	done := make(chan struct{})
	conn := c.conn
	go func() {
		for {
			m, err := conn.Recv()
			select {
			case ch <- recvResult{m, err}:
			case <-done:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	c.pump, c.pumpDone = ch, done
}

// teardown abandons the current connection and its pump. The next
// attempt redials (when a redial closure exists) or fails fast.
func (c *Client) teardown() {
	if c.pumpDone != nil {
		close(c.pumpDone)
		c.pump, c.pumpDone = nil, nil
	}
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// redialConn replaces a torn-down connection via the redial closure.
func (c *Client) redialConn() error {
	if c.redial == nil {
		return fmt.Errorf("serve: client %d: connection lost and no redial configured", c.id)
	}
	conn, err := c.redial()
	if err != nil {
		return fmt.Errorf("serve: client %d redial: %w", c.id, err)
	}
	c.conn = conn
	c.stats.Redials++
	return nil
}

// observeLatency feeds the adaptive hedge delay: once enough samples
// exist, hedges fire at the observed p99 (never below HedgeAfter), so
// duplicates chase genuine stragglers instead of the median.
func (c *Client) observeLatency(d time.Duration) {
	if c.policy.HedgeAfter <= 0 {
		return
	}
	if len(c.lat) < latencyWindow {
		c.lat = append(c.lat, d)
	} else {
		c.lat[c.latPos] = d
		c.latPos = (c.latPos + 1) % latencyWindow
	}
	if len(c.lat) < latencyMinSamples {
		return
	}
	sorted := append([]time.Duration(nil), c.lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p99 := sorted[len(sorted)*99/100]
	if p99 > c.policy.HedgeAfter {
		c.hedge = p99
	} else {
		c.hedge = c.policy.HedgeAfter
	}
}

// Close says goodbye and closes the connection, stopping the receive
// pump if one is running.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	_ = c.conn.Send(&wire.Message{Type: wire.MsgBye, Platform: c.id})
	err := c.conn.Close()
	if c.pumpDone != nil {
		close(c.pumpDone)
		c.pump, c.pumpDone = nil, nil
	}
	c.conn = nil
	return err
}
