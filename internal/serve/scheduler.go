package serve

import "sync"

// computeScheduler shares a fixed budget of compute slots across every
// training session and inference batcher in the process. It is the
// serving-tier analogue of core's IOGoroutineBudget: where that knob
// bounds how many connections overlap WAN I/O inside one session, this
// one bounds how many sessions run back-half math at once across the
// whole process — and hands freed slots out round-robin so a hot
// tenant cannot starve a quiet one.
//
// Each session (or batcher) registers once and receives a gate that
// plugs into core.ServerConfig.Compute. The gate's Acquire is called
// from that party's single compute goroutine, so a gate never has more
// than one acquisition pending — which is what makes cursor round-robin
// over the registration ring an exact fairness policy: after a grant
// the cursor moves past the granted gate, so every waiter is reached
// within one lap of the ring.
type computeScheduler struct {
	mu     sync.Mutex
	free   int            // slots not currently held
	ring   []*computeGate // registered gates, registration order
	cursor int            // ring index where the next release scan starts
}

func newComputeScheduler(slots int) *computeScheduler {
	if slots <= 0 {
		slots = 1
	}
	return &computeScheduler{free: slots}
}

// register adds a party to the scheduling ring and returns its gate.
func (cs *computeScheduler) register(name string) *computeGate {
	g := &computeGate{sched: cs, name: name, grant: make(chan struct{}, 1)}
	cs.mu.Lock()
	cs.ring = append(cs.ring, g)
	cs.mu.Unlock()
	return g
}

// unregister removes a gate from the ring. The gate's owner must have
// stopped computing: a pending acquisition on an unregistered gate
// would strand, so sessions unregister only after Serve has returned.
func (cs *computeScheduler) unregister(g *computeGate) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for i, x := range cs.ring {
		if x != g {
			continue
		}
		cs.ring = append(cs.ring[:i], cs.ring[i+1:]...)
		if cs.cursor > i {
			cs.cursor--
		}
		if len(cs.ring) > 0 {
			cs.cursor %= len(cs.ring)
		} else {
			cs.cursor = 0
		}
		return
	}
}

// computeGate is one party's handle on the shared slot budget. It
// implements core.ComputeGate.
type computeGate struct {
	sched *computeScheduler
	name  string
	// grant carries a freed slot to this gate; capacity 1 so a releaser
	// never blocks handing the slot over.
	grant   chan struct{}
	pending bool // waiting for a grant (guarded by sched.mu)

	// Scheduling counters (guarded by sched.mu): total acquisitions and
	// how many of them had to wait. The fairness tests read these.
	acquired int64
	waited   int64
}

// Acquire takes a compute slot, blocking until one is free, and
// returns the matching release.
func (g *computeGate) Acquire() (release func()) {
	cs := g.sched
	cs.mu.Lock()
	g.acquired++
	if cs.free > 0 {
		// Invariant: free > 0 implies nobody is pending — release only
		// banks a slot when the ring has no waiter — so taking the fast
		// path never jumps a queue.
		cs.free--
		cs.mu.Unlock()
		return g.release
	}
	g.pending = true
	g.waited++
	cs.mu.Unlock()
	<-g.grant
	return g.release
}

// release hands the slot to the next pending gate after the round-robin
// cursor, or banks it when nobody is waiting.
func (g *computeGate) release() {
	cs := g.sched
	cs.mu.Lock()
	n := len(cs.ring)
	for i := 0; i < n; i++ {
		idx := (cs.cursor + i) % n
		cand := cs.ring[idx]
		if !cand.pending {
			continue
		}
		cand.pending = false
		cs.cursor = (idx + 1) % n
		cs.mu.Unlock()
		cand.grant <- struct{}{}
		return
	}
	cs.free++
	cs.mu.Unlock()
}

// stats reports the gate's acquisition counters.
func (g *computeGate) stats() (acquired, waited int64) {
	g.sched.mu.Lock()
	defer g.sched.mu.Unlock()
	return g.acquired, g.waited
}
