package serve

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// InferConfig configures the inference tier's batching.
type InferConfig struct {
	// BatchMax flushes a tenant's pending batch once its accumulated
	// row count (samples, not requests) reaches this. Defaults to 8.
	BatchMax int
	// FlushEvery is the batching deadline: the clock starts when a
	// request arrives at an empty batch, and whatever has accumulated
	// when it fires is flushed. A request therefore waits at most
	// FlushEvery before its compute starts, no matter how quiet the
	// tenant is — the tail-latency bound that makes batching safe to
	// leave on. Defaults to 2ms.
	FlushEvery time.Duration
	// QueueCap bounds a tenant's pending request queue; arrivals beyond
	// it block the connection's reader (backpressure, not drops).
	// Defaults to 256.
	QueueCap int
}

func (c *InferConfig) withDefaults() InferConfig {
	out := *c
	if out.BatchMax <= 0 {
		out.BatchMax = 8
	}
	if out.FlushEvery <= 0 {
		out.FlushEvery = 2 * time.Millisecond
	}
	if out.QueueCap <= 0 {
		out.QueueCap = 256
	}
	return out
}

// InferenceServer answers MsgInferRequest traffic for every tenant of
// a Manager: platforms run the front half of their tenant's model
// locally and ship cut-layer activations; the server batches them,
// runs the back half under the shared compute gate, and returns
// logits. One batcher goroutine per tenant owns that tenant's model,
// decode slots and fused scratch, so tenants never contend on (or
// leak into) each other's memory.
type InferenceServer struct {
	m       *Manager
	cfg     InferConfig
	serving map[string]*tenantServing // immutable after New

	wg        sync.WaitGroup
	closeOnce sync.Once

	requests atomic.Int64 // requests admitted to a batcher
	rejected atomic.Int64 // requests answered with an error payload
	batches  atomic.Int64 // back-half forwards executed
}

// InferStats is a point-in-time view of the inference tier.
type InferStats struct {
	Requests int64 // requests admitted to batching
	Rejected int64 // requests rejected (unknown tenant, generation mismatch, bad payload)
	Batches  int64 // back-half forwards (Requests/Batches = achieved batching factor)
}

// NewInferenceServer builds the inference tier over m's tenants and
// starts one batcher per tenant. Close releases them.
func NewInferenceServer(m *Manager, cfg InferConfig) (*InferenceServer, error) {
	is := &InferenceServer{
		m:       m,
		cfg:     cfg.withDefaults(),
		serving: make(map[string]*tenantServing, len(m.tenants)),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	tenants := make([]*tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		tenants = append(tenants, t)
	}
	m.mu.Unlock()
	for _, t := range tenants {
		ts := &tenantServing{
			is:   is,
			t:    t,
			gate: m.sched.register("infer:" + t.cfg.Name),
			jobs: make(chan *inferJob, is.cfg.QueueCap),
		}
		is.serving[t.cfg.Name] = ts
		is.wg.Add(1)
		go ts.run()
	}
	return is, nil
}

// Close stops every tenant batcher after draining its queue and
// unregisters their compute gates. Connection readers (HandleConn)
// are owned by their callers; requests arriving after Close are
// answered with ErrManagerClosed.
func (is *InferenceServer) Close() {
	is.closeOnce.Do(func() {
		for _, ts := range is.serving {
			ts.closeMu.Lock()
			ts.closed = true
			ts.closeMu.Unlock()
			close(ts.jobs)
		}
		is.wg.Wait()
		for _, ts := range is.serving {
			is.m.sched.unregister(ts.gate)
		}
	})
}

// Stats reports the tier's counters.
func (is *InferenceServer) Stats() InferStats {
	return InferStats{
		Requests: is.requests.Load(),
		Rejected: is.rejected.Load(),
		Batches:  is.batches.Load(),
	}
}

// lockedConn serializes writes to one connection: a connection may
// carry requests for several tenants, whose batchers respond
// concurrently.
type lockedConn struct {
	mu sync.Mutex
	c  transport.Conn
}

func (lc *lockedConn) send(m *wire.Message) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.c.Send(m)
}

// inferJob is one decoded request waiting in a tenant's batch.
type inferJob struct {
	conn     *lockedConn
	platform uint32
	round    uint32 // client's request id, echoed on the response
	gen      uint32 // requested checkpoint generation (0 = any)
	acts     *tensor.Tensor
	slot     []*tensor.Tensor // decode slot owning acts; recycled after the response
}

// HandleConn serves one client connection: it reads requests until the
// peer says Bye or the connection drops, routing each to its tenant's
// batcher. Responses are written by the batcher goroutines (through a
// per-connection send lock), so a slow tenant never blocks another
// tenant's requests arriving on the same connection. Returns nil on
// clean shutdown (Bye or EOF).
func (is *InferenceServer) HandleConn(conn transport.Conn) error {
	lc := &lockedConn{c: conn}
	for {
		m, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("serve: infer recv: %w", err)
		}
		switch m.Type {
		case wire.MsgBye:
			return nil
		case wire.MsgInferRequest:
			is.handleRequest(lc, m)
		default:
			return fmt.Errorf("serve: unexpected %s on inference connection", m.Type)
		}
	}
}

// handleRequest decodes, routes and enqueues one request; every
// failure mode answers the client instead of killing the connection.
func (is *InferenceServer) handleRequest(lc *lockedConn, m *wire.Message) {
	tenantName, gen, tpay, err := wire.DecodeInferRequest(m.Payload)
	if err != nil {
		is.respondError(lc, m.Platform, m.Round, err)
		return
	}
	ts, ok := is.serving[tenantName]
	if !ok {
		is.respondError(lc, m.Platform, m.Round, fmt.Errorf("%w: %q", ErrUnknownTenant, tenantName))
		return
	}
	slot := ts.getSlot()
	dec, derr := wire.DecodeTensorsInto(slot, tpay)
	if derr == nil && len(dec) != 1 {
		derr = fmt.Errorf("serve: %d activation tensors in one request, want 1", len(dec))
	}
	if derr != nil {
		ts.putSlot(slot)
		is.respondError(lc, m.Platform, m.Round, derr)
		return
	}
	// Decoded tensors never alias the payload, so the frame buffer goes
	// back to the transport pool before the batch is even formed.
	wire.ReleasePayload(&wire.Buffers, m)
	j := &inferJob{conn: lc, platform: m.Platform, round: m.Round, gen: gen, acts: dec[0], slot: dec}
	if err := ts.enqueue(j); err != nil {
		ts.putSlot(j.slot)
		is.respondError(lc, m.Platform, m.Round, err)
		return
	}
	is.requests.Add(1)
}

// respondError answers a request with a text payload carrying the
// rejection; the client surfaces it as a RemoteError.
func (is *InferenceServer) respondError(lc *lockedConn, platform, round uint32, err error) {
	is.rejected.Add(1)
	_ = lc.send(&wire.Message{
		Type:     wire.MsgInferResponse,
		Platform: platform,
		Round:    round,
		Payload:  wire.EncodeText(err.Error()),
	})
}

// tenantServing is one tenant's serving state, owned by its batcher
// goroutine (the slot freelist is the only cross-goroutine structure,
// fed by connection readers).
type tenantServing struct {
	is   *InferenceServer
	t    *tenant
	gate *computeGate
	jobs chan *inferJob

	closeMu sync.RWMutex
	closed  bool

	slotMu sync.Mutex
	slots  [][]*tensor.Tensor

	// Batcher-local scratch, reused across flushes: the fused
	// activation tensor and the slices flush partitions a batch into.
	fused       *tensor.Tensor
	jobScratch  []*inferJob
	actScratch  []*tensor.Tensor
	sizeScratch []int
}

// enqueue hands a decoded request to the batcher. The RLock spans the
// channel send so Close (which takes the write lock before closing the
// channel) cannot close a channel with a send in flight.
func (ts *tenantServing) enqueue(j *inferJob) error {
	ts.closeMu.RLock()
	defer ts.closeMu.RUnlock()
	if ts.closed {
		return ErrManagerClosed
	}
	ts.jobs <- j
	return nil
}

func (ts *tenantServing) getSlot() []*tensor.Tensor {
	ts.slotMu.Lock()
	defer ts.slotMu.Unlock()
	if n := len(ts.slots); n > 0 {
		s := ts.slots[n-1]
		ts.slots = ts.slots[:n-1]
		return s
	}
	return make([]*tensor.Tensor, 1)
}

func (ts *tenantServing) putSlot(s []*tensor.Tensor) {
	ts.slotMu.Lock()
	ts.slots = append(ts.slots, s)
	ts.slotMu.Unlock()
}

// run is the tenant's batcher loop: accumulate rows until BatchMax or
// the FlushEvery deadline, whichever comes first, then flush. The
// deadline arms when a request arrives at an empty batch.
func (ts *tenantServing) run() {
	defer ts.is.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var pending []*inferJob
	rows := 0
	flush := func() {
		if len(pending) > 0 {
			ts.flush(pending)
			for i := range pending {
				pending[i] = nil
			}
			pending = pending[:0]
			rows = 0
		}
	}
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	for {
		var j *inferJob
		var ok bool
		if len(pending) == 0 {
			j, ok = <-ts.jobs
			if !ok {
				return
			}
			timer.Reset(ts.is.cfg.FlushEvery)
		} else {
			select {
			case j, ok = <-ts.jobs:
				if !ok {
					stopTimer()
					flush()
					return
				}
			case <-timer.C:
				flush()
				continue
			}
		}
		pending = append(pending, j)
		rows += j.acts.Dim(0)
		if rows >= ts.is.cfg.BatchMax {
			stopTimer()
			flush()
		}
	}
}

// flush runs one batch: resolve the model generation, reject requests
// the loaded generation cannot satisfy, fuse the rest along dim 0, run
// the back half once under the compute gate, split the logits back out
// and answer each request.
func (ts *tenantServing) flush(jobs []*inferJob) {
	var maxGen uint32
	for _, j := range jobs {
		if j.gen > maxGen {
			maxGen = j.gen
		}
	}
	model, gen, err := ts.t.cache.ensure(maxGen)
	if err != nil {
		for _, j := range jobs {
			ts.reject(j, err)
		}
		return
	}
	live := ts.jobScratch[:0]
	acc := ts.actScratch[:0]
	sizes := ts.sizeScratch[:0]
	var trailing []int
	for _, j := range jobs {
		if j.gen != 0 && j.gen != gen {
			ts.reject(j, fmt.Errorf("%w: tenant %q serves generation %d, request wants %d",
				ErrGenerationMismatch, ts.t.cfg.Name, gen, j.gen))
			continue
		}
		shape := j.acts.Shape()
		if trailing == nil {
			trailing = shape[1:]
		} else if !equalInts(shape[1:], trailing) {
			ts.reject(j, fmt.Errorf("serve: activation shape %v does not match batch trailing dims %v", shape, trailing))
			continue
		}
		live = append(live, j)
		acc = append(acc, j.acts)
		sizes = append(sizes, shape[0])
	}
	ts.jobScratch, ts.actScratch, ts.sizeScratch = live[:0], acc[:0], sizes[:0]
	if len(live) == 0 {
		return
	}
	var z *tensor.Tensor
	release := ts.gate.Acquire()
	if len(acc) == 1 {
		z = model.Forward(acc[0], false)
	} else {
		total := 0
		for _, n := range sizes {
			total += n
		}
		fshape := append([]int{total}, trailing...)
		ts.fused = tensor.EnsureShape(ts.fused, fshape...)
		fused := tensor.ConcatDim0Into(ts.fused, acc...)
		z = model.Forward(fused, false)
	}
	release()
	ts.is.batches.Add(1)
	zs := []*tensor.Tensor{z}
	if len(acc) > 1 {
		zs = tensor.SplitDim0(z, sizes)
	}
	for i, j := range live {
		buf := ts.t.buffers.Get(wire.TensorsPayloadSize(zs[i].Shape()))
		payload := wire.EncodeTensorsInto(buf, zs[i])
		_ = j.conn.send(&wire.Message{
			Type:     wire.MsgInferResponse,
			Platform: j.platform,
			Round:    j.round,
			Payload:  payload,
		})
		ts.putSlot(j.slot)
	}
}

// reject answers one batched request with an error payload and
// recycles its decode slot.
func (ts *tenantServing) reject(j *inferJob, err error) {
	ts.is.rejected.Add(1)
	_ = j.conn.send(&wire.Message{
		Type:     wire.MsgInferResponse,
		Platform: j.platform,
		Round:    j.round,
		Payload:  wire.EncodeText(err.Error()),
	})
	ts.putSlot(j.slot)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
