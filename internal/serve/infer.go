package serve

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"medsplit/internal/tensor"
	"medsplit/internal/transport"
	"medsplit/internal/wire"
)

// InferConfig configures the inference tier's batching.
type InferConfig struct {
	// BatchMax flushes a tenant's pending batch once its accumulated
	// row count (samples, not requests) reaches this. Defaults to 8.
	BatchMax int
	// FlushEvery is the batching deadline: the clock starts when a
	// request arrives at an empty batch, and whatever has accumulated
	// when it fires is flushed. A request therefore waits at most
	// FlushEvery before its compute starts, no matter how quiet the
	// tenant is — the tail-latency bound that makes batching safe to
	// leave on. Defaults to 2ms.
	FlushEvery time.Duration
	// QueueCap bounds a tenant's pending request queue. Arrivals beyond
	// it are refused with ErrOverloaded (carrying a retry-after hint)
	// instead of buffered or blocked on: deterministic load shedding,
	// so one tenant's burst degrades into fast typed rejections rather
	// than unbounded queueing or a stalled connection reader.
	// Defaults to 256.
	QueueCap int
}

func (c *InferConfig) withDefaults() InferConfig {
	out := *c
	if out.BatchMax <= 0 {
		out.BatchMax = 8
	}
	if out.FlushEvery <= 0 {
		out.FlushEvery = 2 * time.Millisecond
	}
	if out.QueueCap <= 0 {
		out.QueueCap = 256
	}
	return out
}

// InferenceServer answers MsgInferRequest traffic for every tenant of
// a Manager: platforms run the front half of their tenant's model
// locally and ship cut-layer activations; the server batches them,
// runs the back half under the shared compute gate, and returns
// logits. One batcher goroutine per tenant owns that tenant's model,
// decode slots and fused scratch, so tenants never contend on (or
// leak into) each other's memory.
//
// Overload and failure containment (the robustness contract):
//
//   - Admission is bounded per tenant (QueueCap) and sheds
//     deterministically: a full queue answers CodeOverloaded with a
//     retry-after hint, never blocks the connection reader.
//   - Requests carry a deadline budget (wire.InferHeader). Work whose
//     deadline has passed is shed before compute — at admission and
//     again at flush — with CodeExpired, so an overloaded tenant
//     spends its compute only on answers somebody is still waiting
//     for. A request whose remaining budget cannot survive the full
//     FlushEvery wait flushes the batch immediately instead.
//   - Every tenant exposes a health state (serving / degraded /
//     draining) through the MsgHealth probe; degraded means the
//     checkpoint-reload breaker is open or the queue is more than
//     half full.
//   - All rejections are structured error payloads (code +
//     retry-after + message), so clients retry exactly the conditions
//     that can clear and fail fast on the ones that cannot.
type InferenceServer struct {
	m       *Manager
	cfg     InferConfig
	serving map[string]*tenantServing // immutable after New

	wg        sync.WaitGroup
	closeOnce sync.Once

	requests atomic.Int64 // requests admitted to a batcher
	rejected atomic.Int64 // requests answered with an error payload
	shed     atomic.Int64 // of rejected: queue-full (CodeOverloaded)
	expired  atomic.Int64 // of rejected: deadline passed (CodeExpired)
	batches  atomic.Int64 // back-half forwards executed
}

// InferStats is a point-in-time view of the inference tier.
type InferStats struct {
	Requests int64 // requests admitted to batching
	Rejected int64 // requests rejected (all causes)
	Shed     int64 // of Rejected: refused at a full admission queue
	Expired  int64 // of Rejected: deadline passed before compute
	Batches  int64 // back-half forwards (Requests/Batches = achieved batching factor)
}

// NewInferenceServer builds the inference tier over m's tenants and
// starts one batcher per tenant. Close releases them.
func NewInferenceServer(m *Manager, cfg InferConfig) (*InferenceServer, error) {
	is := &InferenceServer{
		m:       m,
		cfg:     cfg.withDefaults(),
		serving: make(map[string]*tenantServing, len(m.tenants)),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	tenants := make([]*tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		tenants = append(tenants, t)
	}
	m.mu.Unlock()
	for _, t := range tenants {
		ts := &tenantServing{
			is:   is,
			t:    t,
			gate: m.sched.register("infer:" + t.cfg.Name),
			jobs: make(chan *inferJob, is.cfg.QueueCap),
		}
		is.serving[t.cfg.Name] = ts
		is.wg.Add(1)
		go ts.run()
	}
	return is, nil
}

// Close stops every tenant batcher after draining its queue and
// unregisters their compute gates. Connection readers (HandleConn)
// are owned by their callers; requests arriving after Close are
// answered with CodeDraining.
func (is *InferenceServer) Close() {
	is.closeOnce.Do(func() {
		for _, ts := range is.serving {
			ts.closeMu.Lock()
			ts.closed = true
			ts.closeMu.Unlock()
			close(ts.jobs)
		}
		is.wg.Wait()
		for _, ts := range is.serving {
			is.m.sched.unregister(ts.gate)
		}
	})
}

// Stats reports the tier's counters.
func (is *InferenceServer) Stats() InferStats {
	return InferStats{
		Requests: is.requests.Load(),
		Rejected: is.rejected.Load(),
		Shed:     is.shed.Load(),
		Expired:  is.expired.Load(),
		Batches:  is.batches.Load(),
	}
}

// Health snapshots every tenant's serving state, sorted by tenant
// name so the probe payload is deterministic. This is what MsgHealth
// answers with; it is also the local observability surface.
func (is *InferenceServer) Health() []wire.TenantHealth {
	names := make([]string, 0, len(is.serving))
	for name := range is.serving {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]wire.TenantHealth, 0, len(names))
	for _, name := range names {
		out = append(out, is.serving[name].health())
	}
	return out
}

// lockedConn serializes writes to one connection: a connection may
// carry requests for several tenants, whose batchers respond
// concurrently.
type lockedConn struct {
	mu sync.Mutex
	c  transport.Conn
}

func (lc *lockedConn) send(m *wire.Message) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.c.Send(m)
}

// inferJob is one decoded request waiting in a tenant's batch.
type inferJob struct {
	conn     *lockedConn
	platform uint32
	round    uint32    // client's attempt sequence, echoed on the response
	reqID    uint64    // client's logical request id (diagnostics; hedged attempts share it)
	gen      uint32    // requested checkpoint generation (0 = any)
	deadline time.Time // zero = no deadline
	acts     *tensor.Tensor
	slot     []*tensor.Tensor // decode slot owning acts; recycled after the response
}

// HandleConn serves one client connection: it reads requests until the
// peer says Bye or the connection drops, routing each to its tenant's
// batcher; MsgHealth probes are answered inline with the tenant-state
// snapshot. Responses are written by the batcher goroutines (through a
// per-connection send lock), so a slow tenant never blocks another
// tenant's requests arriving on the same connection. Returns nil on
// clean shutdown (Bye or EOF).
func (is *InferenceServer) HandleConn(conn transport.Conn) error {
	lc := &lockedConn{c: conn}
	for {
		m, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("serve: infer recv: %w", err)
		}
		switch m.Type {
		case wire.MsgBye:
			return nil
		case wire.MsgInferRequest:
			is.handleRequest(lc, m)
		case wire.MsgHealth:
			wire.ReleasePayload(&wire.Buffers, m)
			_ = lc.send(&wire.Message{
				Type:    wire.MsgHealth,
				Round:   m.Round,
				Payload: wire.EncodeHealth(is.Health()),
			})
		default:
			return fmt.Errorf("serve: unexpected %s on inference connection", m.Type)
		}
	}
}

// handleRequest decodes, routes and enqueues one request; every
// failure mode answers the client instead of killing the connection.
// Already-expired and queue-overflow requests are shed here, before
// any tensor decode or batching work is spent on them.
func (is *InferenceServer) handleRequest(lc *lockedConn, m *wire.Message) {
	h, tpay, err := wire.DecodeInferRequest(m.Payload)
	if err != nil {
		is.respondError(lc, m.Platform, m.Round, err)
		return
	}
	ts, ok := is.serving[h.Tenant]
	if !ok {
		is.respondError(lc, m.Platform, m.Round, fmt.Errorf("%w: %q", ErrUnknownTenant, h.Tenant))
		return
	}
	var deadline time.Time
	if h.DeadlineMicros > 0 {
		deadline = time.Now().Add(time.Duration(h.DeadlineMicros) * time.Microsecond)
	}
	slot := ts.getSlot()
	dec, derr := wire.DecodeTensorsInto(slot, tpay)
	if derr == nil && len(dec) != 1 {
		derr = fmt.Errorf("serve: %d activation tensors in one request, want 1", len(dec))
	}
	if derr != nil {
		ts.putSlot(slot)
		is.respondError(lc, m.Platform, m.Round, derr)
		return
	}
	// Decoded tensors never alias the payload, so the frame buffer goes
	// back to the transport pool before the batch is even formed.
	wire.ReleasePayload(&wire.Buffers, m)
	j := &inferJob{
		conn: lc, platform: m.Platform, round: m.Round,
		reqID: h.RequestID, gen: h.Generation, deadline: deadline,
		acts: dec[0], slot: dec,
	}
	if err := ts.enqueue(j); err != nil {
		ts.putSlot(j.slot)
		is.respondError(lc, m.Platform, m.Round, err)
		return
	}
	is.requests.Add(1)
}

// errCodeOf classifies a serving error for the wire: the code decides
// client retry behavior (wire.ErrCode.Retryable), the retry-after hint
// tells a shed client how long the condition plausibly needs to clear
// (one flush interval — the soonest the queue can drain a batch).
func (is *InferenceServer) errCodeOf(err error) (code wire.ErrCode, retryAfter time.Duration) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return wire.CodeOverloaded, is.cfg.FlushEvery
	case errors.Is(err, ErrDeadlineExpired):
		return wire.CodeExpired, 0
	case errors.Is(err, ErrManagerClosed):
		return wire.CodeDraining, 0
	case errors.Is(err, ErrUnknownTenant):
		return wire.CodeUnknownTenant, 0
	case errors.Is(err, ErrGenerationMismatch):
		return wire.CodeGenerationMismatch, 0
	case errors.Is(err, wire.ErrBadPayload):
		return wire.CodeBadRequest, 0
	default:
		return wire.CodeInternal, 0
	}
}

// respondError answers a request with a structured error payload; the
// client surfaces it as a RemoteError carrying the code.
func (is *InferenceServer) respondError(lc *lockedConn, platform, round uint32, err error) {
	code, retryAfter := is.errCodeOf(err)
	is.rejected.Add(1)
	switch code {
	case wire.CodeOverloaded:
		is.shed.Add(1)
	case wire.CodeExpired:
		is.expired.Add(1)
	}
	_ = lc.send(&wire.Message{
		Type:     wire.MsgInferResponse,
		Platform: platform,
		Round:    round,
		Payload:  wire.EncodeServeError(code, retryAfter, err.Error()),
	})
}

// tenantServing is one tenant's serving state, owned by its batcher
// goroutine (the slot freelist is the only cross-goroutine structure,
// fed by connection readers).
type tenantServing struct {
	is   *InferenceServer
	t    *tenant
	gate *computeGate
	jobs chan *inferJob

	closeMu sync.RWMutex
	closed  bool

	slotMu sync.Mutex
	slots  [][]*tensor.Tensor

	// Batcher-local scratch, reused across flushes: the fused
	// activation tensor and the slices flush partitions a batch into.
	fused       *tensor.Tensor
	jobScratch  []*inferJob
	actScratch  []*tensor.Tensor
	sizeScratch []int
}

// enqueue hands a decoded request to the batcher, shedding instead of
// blocking when the queue is full. The RLock spans the channel send so
// Close (which takes the write lock before closing the channel) cannot
// close a channel with a send in flight; the send itself is
// non-blocking, so admission never stalls the connection reader.
// Already-expired requests are shed here without queueing.
func (ts *tenantServing) enqueue(j *inferJob) error {
	if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
		return ErrDeadlineExpired
	}
	ts.closeMu.RLock()
	defer ts.closeMu.RUnlock()
	if ts.closed {
		return ErrManagerClosed
	}
	select {
	case ts.jobs <- j:
		return nil
	default:
		return fmt.Errorf("%w: tenant %q queue at %d requests",
			ErrOverloaded, ts.t.cfg.Name, ts.is.cfg.QueueCap)
	}
}

// health derives the tenant's serving state: draining once Close has
// run, degraded while the checkpoint-reload breaker is open or the
// admission queue is more than half full (shedding is imminent), and
// serving otherwise. Degraded carries a retry-after hint of one flush
// interval — the cadence at which the queue drains.
func (ts *tenantServing) health() wire.TenantHealth {
	gen, breakerOpen := ts.t.cache.state()
	depth := len(ts.jobs)
	h := wire.TenantHealth{
		Tenant:     ts.t.cfg.Name,
		QueueDepth: uint32(depth),
		Generation: gen,
	}
	ts.closeMu.RLock()
	closed := ts.closed
	ts.closeMu.RUnlock()
	switch {
	case closed:
		h.State = wire.HealthDraining
	case breakerOpen || 2*depth >= ts.is.cfg.QueueCap:
		h.State = wire.HealthDegraded
		h.RetryAfterMicros = uint32(ts.is.cfg.FlushEvery / time.Microsecond)
	default:
		h.State = wire.HealthServing
	}
	return h
}

func (ts *tenantServing) getSlot() []*tensor.Tensor {
	ts.slotMu.Lock()
	defer ts.slotMu.Unlock()
	if n := len(ts.slots); n > 0 {
		s := ts.slots[n-1]
		ts.slots = ts.slots[:n-1]
		return s
	}
	return make([]*tensor.Tensor, 1)
}

func (ts *tenantServing) putSlot(s []*tensor.Tensor) {
	ts.slotMu.Lock()
	ts.slots = append(ts.slots, s)
	ts.slotMu.Unlock()
}

// run is the tenant's batcher loop: accumulate rows until BatchMax or
// the FlushEvery deadline, whichever comes first, then flush. The
// deadline arms when a request arrives at an empty batch. A request
// whose own deadline budget cannot survive a full FlushEvery wait
// flushes immediately — batching must never be what expires a request.
func (ts *tenantServing) run() {
	defer ts.is.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var pending []*inferJob
	rows := 0
	flush := func() {
		if len(pending) > 0 {
			ts.flush(pending)
			for i := range pending {
				pending[i] = nil
			}
			pending = pending[:0]
			rows = 0
		}
	}
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	for {
		var j *inferJob
		var ok bool
		if len(pending) == 0 {
			j, ok = <-ts.jobs
			if !ok {
				return
			}
			timer.Reset(ts.is.cfg.FlushEvery)
		} else {
			select {
			case j, ok = <-ts.jobs:
				if !ok {
					stopTimer()
					flush()
					return
				}
			case <-timer.C:
				flush()
				continue
			}
		}
		pending = append(pending, j)
		rows += j.acts.Dim(0)
		urgent := !j.deadline.IsZero() && time.Until(j.deadline) <= ts.is.cfg.FlushEvery
		if rows >= ts.is.cfg.BatchMax || urgent {
			stopTimer()
			flush()
		}
	}
}

// flush runs one batch: shed expired requests, resolve the model
// generation, reject requests the loaded generation cannot satisfy,
// fuse the rest along dim 0, run the back half once under the compute
// gate, split the logits back out and answer each request. The
// expiry check runs before cache.ensure so a queue full of dead work
// never touches the model or the disk.
func (ts *tenantServing) flush(jobs []*inferJob) {
	now := time.Now()
	live := ts.jobScratch[:0]
	var maxGen uint32
	for _, j := range jobs {
		if !j.deadline.IsZero() && now.After(j.deadline) {
			ts.reject(j, fmt.Errorf("%w: request %d waited past its budget",
				ErrDeadlineExpired, j.reqID))
			continue
		}
		if j.gen > maxGen {
			maxGen = j.gen
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		ts.jobScratch = live[:0]
		return
	}
	model, gen, err := ts.t.cache.ensure(maxGen)
	if err != nil {
		for _, j := range live {
			ts.reject(j, err)
		}
		ts.jobScratch = live[:0]
		return
	}
	jobs, live = live, live[:0]
	acc := ts.actScratch[:0]
	sizes := ts.sizeScratch[:0]
	var trailing []int
	for _, j := range jobs {
		if j.gen != 0 && j.gen != gen {
			ts.reject(j, fmt.Errorf("%w: tenant %q serves generation %d, request wants %d",
				ErrGenerationMismatch, ts.t.cfg.Name, gen, j.gen))
			continue
		}
		shape := j.acts.Shape()
		if trailing == nil {
			trailing = shape[1:]
		} else if !equalInts(shape[1:], trailing) {
			ts.reject(j, fmt.Errorf("serve: activation shape %v does not match batch trailing dims %v", shape, trailing))
			continue
		}
		live = append(live, j)
		acc = append(acc, j.acts)
		sizes = append(sizes, shape[0])
	}
	ts.jobScratch, ts.actScratch, ts.sizeScratch = live[:0], acc[:0], sizes[:0]
	if len(live) == 0 {
		return
	}
	var z *tensor.Tensor
	release := ts.gate.Acquire()
	if len(acc) == 1 {
		z = model.Forward(acc[0], false)
	} else {
		total := 0
		for _, n := range sizes {
			total += n
		}
		fshape := append([]int{total}, trailing...)
		ts.fused = tensor.EnsureShape(ts.fused, fshape...)
		fused := tensor.ConcatDim0Into(ts.fused, acc...)
		z = model.Forward(fused, false)
	}
	release()
	ts.is.batches.Add(1)
	zs := []*tensor.Tensor{z}
	if len(acc) > 1 {
		zs = tensor.SplitDim0(z, sizes)
	}
	for i, j := range live {
		buf := ts.t.buffers.Get(wire.TensorsPayloadSize(zs[i].Shape()))
		payload := wire.EncodeTensorsInto(buf, zs[i])
		_ = j.conn.send(&wire.Message{
			Type:     wire.MsgInferResponse,
			Platform: j.platform,
			Round:    j.round,
			Payload:  payload,
		})
		ts.putSlot(j.slot)
	}
}

// reject answers one batched request with a structured error payload
// and recycles its decode slot.
func (ts *tenantServing) reject(j *inferJob, err error) {
	code, retryAfter := ts.is.errCodeOf(err)
	ts.is.rejected.Add(1)
	switch code {
	case wire.CodeOverloaded:
		ts.is.shed.Add(1)
	case wire.CodeExpired:
		ts.is.expired.Add(1)
	}
	_ = j.conn.send(&wire.Message{
		Type:     wire.MsgInferResponse,
		Platform: j.platform,
		Round:    j.round,
		Payload:  wire.EncodeServeError(code, retryAfter, err.Error()),
	})
	ts.putSlot(j.slot)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
