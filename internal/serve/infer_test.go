package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"medsplit/internal/core"
	"medsplit/internal/models"
	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
	"medsplit/internal/transport"
)

const (
	inferIn      = 24
	inferClasses = 4
)

// inferTenant is a TenantConfig whose back half builds from seed.
func inferTenant(name string, seed uint64, dir string) TenantConfig {
	return TenantConfig{
		Name: name,
		BuildBack: func() (*nn.Sequential, error) {
			m := models.MLP(inferIn, []int{32}, inferClasses, rng.New(seed))
			_, back, err := models.Split(m.Net, m.DefaultCut)
			return back, err
		},
		CheckpointDir: dir,
	}
}

// inferFixture stands up a Manager + InferenceServer and returns a
// dialer that opens one served client connection.
func inferFixture(t *testing.T, cfg InferConfig, tenants ...TenantConfig) (dial func() transport.Conn, is *InferenceServer) {
	t.Helper()
	m, err := NewManager(Config{Tenants: tenants})
	if err != nil {
		t.Fatal(err)
	}
	is, err = NewInferenceServer(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var conns []transport.Conn
	t.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
		is.Close()
		m.Close()
	})
	return func() transport.Conn {
		s, p := transport.Pipe()
		conns = append(conns, s, p)
		go is.HandleConn(s)
		return p
	}, is
}

// clientFront builds the front half matching inferTenant's seed.
func clientFront(t *testing.T, seed uint64) *nn.Sequential {
	t.Helper()
	m := models.MLP(inferIn, []int{32}, inferClasses, rng.New(seed))
	front, _, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	return front
}

// localForward is the reference computation: the whole model run in
// one process, inference mode.
func localForward(t *testing.T, seed uint64, x *tensor.Tensor, mutateBack func(*nn.Sequential)) *tensor.Tensor {
	t.Helper()
	m := models.MLP(inferIn, []int{32}, inferClasses, rng.New(seed))
	front, back, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	if mutateBack != nil {
		mutateBack(back)
	}
	return back.Forward(front.Forward(x, false), false)
}

func randInput(rows int, seed uint64) *tensor.Tensor {
	x := tensor.New(rows, inferIn)
	r := rng.New(seed)
	data := x.Data()
	for i := range data {
		data[i] = r.NormFloat32()
	}
	return x
}

func wantExact(t *testing.T, got, want *tensor.Tensor) {
	t.Helper()
	if !tensor.SameShape(got, want) {
		t.Fatalf("shape %v, want %v", got.Shape(), want.Shape())
	}
	g, w := got.Data(), want.Data()
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("logit %d: %v != %v (split inference must be bit-identical to local forward)", i, g[i], w[i])
		}
	}
}

// Split inference through the serving tier must be bit-identical to
// running the whole model locally: the cut relocates compute, nothing
// else.
func TestInferMatchesLocalForward(t *testing.T) {
	dial, _ := inferFixture(t, InferConfig{}, inferTenant("alpha", 5, ""))
	client := NewClient(dial(), clientFront(t, 5), "alpha", 1)
	x := randInput(3, 77)
	got, err := client.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	wantExact(t, got, localForward(t, 5, x, nil))
}

// Two requests fused into one server-side batch must each get the same
// logits as a batch-of-one round trip: batched rows are independent
// through the back half, which is what makes dynamic batching
// transparent to clients.
func TestBatchedInferenceMatchesSingle(t *testing.T) {
	// BatchMax 2 with an hour-long deadline: the only way the batcher
	// flushes is both requests landing in one fused batch.
	dial, is := inferFixture(t, InferConfig{BatchMax: 2, FlushEvery: time.Hour}, inferTenant("alpha", 5, ""))

	xs := []*tensor.Tensor{randInput(1, 101), randInput(1, 102)}
	got := make([]*tensor.Tensor, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		client := NewClient(dial(), clientFront(t, 5), "alpha", uint32(i))
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			y, err := c.Infer(xs[i])
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = y.Clone()
		}(i, client)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		wantExact(t, got[i], localForward(t, 5, xs[i], nil))
	}
	if st := is.Stats(); st.Batches != 1 || st.Requests != 2 {
		t.Fatalf("stats %+v: want both requests served by one fused batch", st)
	}
}

// A lone request must not wait for a full batch: the FlushEvery
// deadline flushes whatever has accumulated.
func TestDeadlineFlushesPartialBatch(t *testing.T) {
	dial, is := inferFixture(t, InferConfig{BatchMax: 1 << 20, FlushEvery: 3 * time.Millisecond},
		inferTenant("alpha", 5, ""))
	client := NewClient(dial(), clientFront(t, 5), "alpha", 1)
	x := randInput(2, 103)
	got, err := client.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	wantExact(t, got, localForward(t, 5, x, nil))
	if st := is.Stats(); st.Batches != 1 {
		t.Fatalf("stats %+v: want exactly one deadline-flushed batch", st)
	}
}

func TestUnknownTenantRejected(t *testing.T) {
	dial, is := inferFixture(t, InferConfig{}, inferTenant("alpha", 5, ""))
	client := NewClient(dial(), clientFront(t, 5), "ghost", 1)
	_, err := client.Infer(randInput(1, 104))
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if want := ErrUnknownTenant.Error(); !contains(remote.Msg, want) {
		t.Fatalf("remote message %q does not carry %q", remote.Msg, want)
	}
	if st := is.Stats(); st.Rejected != 1 {
		t.Fatalf("stats %+v: want one rejection", st)
	}
}

// A client pinned to a generation the tenant cannot serve must be
// rejected per-request, while unpinned traffic keeps flowing.
func TestGenerationMismatchRejected(t *testing.T) {
	dial, _ := inferFixture(t, InferConfig{}, inferTenant("alpha", 5, ""))
	client := NewClient(dial(), clientFront(t, 5), "alpha", 1)
	client.SetGeneration(7) // no checkpoint dir: the tenant serves generation 0 forever
	_, err := client.Infer(randInput(1, 105))
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if want := ErrGenerationMismatch.Error(); !contains(remote.Msg, want) {
		t.Fatalf("remote message %q does not carry %q", remote.Msg, want)
	}
	client.SetGeneration(0)
	if _, err := client.Infer(randInput(1, 106)); err != nil {
		t.Fatalf("unpinned request after mismatch: %v", err)
	}
}

// mutatedBack shifts the back half's first parameter — the stand-in
// for "training moved the weights" when faking a checkpoint.
func mutatedBack(back *nn.Sequential) {
	w := back.Params()[0].W.Data()
	for i := range w {
		w[i] += 1
	}
}

// The warm cache must roll forward to a newer checkpoint generation
// when a request pins it, serve it to unpinned traffic afterwards, and
// reject requests pinned to superseded generations.
func TestCacheRollsForwardByGeneration(t *testing.T) {
	dir := t.TempDir()
	dial, _ := inferFixture(t, InferConfig{}, inferTenant("alpha", 5, dir))
	client := NewClient(dial(), clientFront(t, 5), "alpha", 1)
	x := randInput(2, 107)

	// Generation 0: BuildBack's initial weights.
	got, err := client.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	wantExact(t, got, localForward(t, 5, x, nil))

	// Write a generation-3 checkpoint with shifted weights, as a
	// training session would (weights + state, optimizer tail omitted —
	// RestoreServerModel ignores it).
	m := models.MLP(inferIn, []int{32}, inferClasses, rng.New(5))
	_, snapBack, err := models.Split(m.Net, m.DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	mutatedBack(snapBack)
	snap := &core.Snapshot{Role: core.RoleServer, NextRound: 3}
	for _, p := range snapBack.Params() {
		snap.Tensors = append(snap.Tensors, p.W.Clone())
	}
	for _, st := range nn.CollectState(snapBack) {
		snap.Tensors = append(snap.Tensors, st.Clone())
	}
	if err := core.SaveSnapshotFile(core.ServerSnapshotGenPath(dir, 3), snap); err != nil {
		t.Fatal(err)
	}

	// Pinning generation 3 rolls the cache forward.
	client.SetGeneration(3)
	got, err = client.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	wantExact(t, got, localForward(t, 5, x, mutatedBack))

	// Unpinned traffic now rides the new generation.
	client.SetGeneration(0)
	got, err = client.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	wantExact(t, got, localForward(t, 5, x, mutatedBack))

	// A stale pin is a per-request rejection.
	client.SetGeneration(2)
	_, err = client.Infer(x)
	var remote *RemoteError
	if !errors.As(err, &remote) || !contains(remote.Msg, "generation") {
		t.Fatalf("stale pin: err = %v, want generation-mismatch RemoteError", err)
	}
}

// Requests for different tenants arriving on one connection must be
// served by their own models.
func TestTwoTenantsShareOneConnection(t *testing.T) {
	dial, _ := inferFixture(t, InferConfig{},
		inferTenant("alpha", 5, ""), inferTenant("beta", 9, ""))
	conn := dial()
	// Sequential requests on one conn, alternating tenants.
	alpha := NewClient(conn, clientFront(t, 5), "alpha", 1)
	x := randInput(2, 108)
	got, err := alpha.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	wantExact(t, got, localForward(t, 5, x, nil))

	beta := NewClient(conn, clientFront(t, 9), "beta", 1)
	got, err = beta.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	wantExact(t, got, localForward(t, 9, x, nil))
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
