package dataset

import (
	"testing"

	"medsplit/internal/rng"
)

// A restored sampler must reproduce the exact batch stream the
// original would have drawn — across epoch boundaries, where the
// permutation reshuffles.
func TestSamplerSnapshotRestoreResumesBatchStream(t *testing.T) {
	mk := func() *BatchSampler {
		return NewBatchSampler(seqIndices(23), 5, rng.New(71))
	}
	s := mk()
	for i := 0; i < 7; i++ { // crosses one reshuffle (23/5 = 4 batches/epoch)
		s.Next()
	}
	snap := s.Snapshot()

	var want [][]int
	for i := 0; i < 12; i++ {
		want = append(want, append([]int(nil), s.Next()...))
	}

	s2 := mk()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		got := s2.Next()
		if len(got) != len(w) {
			t.Fatalf("batch %d: %d indices, want %d", i, len(got), len(w))
		}
		for j := range w {
			if got[j] != w[j] {
				t.Fatalf("batch %d index %d: restored %d, want %d", i, j, got[j], w[j])
			}
		}
	}
	if s2.Epoch() != s.Epoch() {
		t.Fatalf("epoch %d after restore+replay, want %d", s2.Epoch(), s.Epoch())
	}
}

// Restore must reject a snapshot from a different shard size — that
// checkpoint belongs to another platform.
func TestSamplerRestoreRejectsWrongShard(t *testing.T) {
	a := NewBatchSampler(seqIndices(20), 4, rng.New(1))
	b := NewBatchSampler(seqIndices(24), 4, rng.New(1))
	if err := b.Restore(a.Snapshot()); err == nil {
		t.Fatal("restored a snapshot with a mismatched index-set size")
	}
	bad := a.Snapshot()
	bad.Cursor = 99
	if err := a.Restore(bad); err == nil {
		t.Fatal("restored a snapshot with an out-of-range cursor")
	}
}

// Skip(n) must land the sampler exactly where n Next() calls would.
func TestSamplerSkipMatchesNext(t *testing.T) {
	a := NewBatchSampler(seqIndices(17), 4, rng.New(9))
	b := NewBatchSampler(seqIndices(17), 4, rng.New(9))
	for i := 0; i < 11; i++ { // crosses reshuffles
		a.Next()
	}
	b.Skip(11)
	for i := 0; i < 8; i++ {
		ba, bb := a.Next(), b.Next()
		for j := range ba {
			if ba[j] != bb[j] {
				t.Fatalf("batch %d diverged after Skip: %v vs %v", i, ba, bb)
			}
		}
	}
	if a.Epoch() != b.Epoch() {
		t.Fatalf("Skip epoch %d, Next epoch %d", b.Epoch(), a.Epoch())
	}
}

// The augmenter's RNG snapshot must resume its decision stream.
func TestAugmenterRNGSnapshotRestore(t *testing.T) {
	a := NewAugmenter(2, true, rng.New(5))
	// Burn some draws through the underlying stream.
	for i := 0; i < 9; i++ {
		a.r.Float64()
	}
	snap := a.RNGSnapshot()
	var want []float64
	for i := 0; i < 20; i++ {
		want = append(want, a.r.Float64())
	}
	b := NewAugmenter(2, true, rng.New(0))
	b.RestoreRNG(snap)
	for i, w := range want {
		if got := b.r.Float64(); got != w {
			t.Fatalf("draw %d: restored %v, want %v", i, got, w)
		}
	}
}
