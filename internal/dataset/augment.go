package dataset

import (
	"fmt"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

// Augmenter applies the standard CIFAR-style training augmentations —
// random crop with padding and random horizontal flip — to image
// batches. In the split framework augmentation runs on the platform,
// before the L1 forward pass, so it is privacy-neutral: augmented
// pixels never leave the hospital any more than raw ones do.
type Augmenter struct {
	// Pad is the crop padding in pixels (4 is the CIFAR standard).
	Pad int
	// Flip enables random horizontal flips with probability ½.
	Flip bool

	r *rng.RNG
}

// NewAugmenter builds an augmenter with its own deterministic stream.
func NewAugmenter(pad int, flip bool, r *rng.RNG) *Augmenter {
	if pad < 0 {
		panic(fmt.Sprintf("dataset: negative crop padding %d", pad))
	}
	return &Augmenter{Pad: pad, Flip: flip, r: r}
}

// RNGSnapshot captures the augmenter's random stream so a resumed run
// draws the same crop offsets and flip decisions an uninterrupted run
// would have.
func (a *Augmenter) RNGSnapshot() rng.Snapshot { return a.r.Snapshot() }

// RestoreRNG overwrites the augmenter's random stream.
func (a *Augmenter) RestoreRNG(s rng.Snapshot) { a.r.Restore(s) }

// Apply augments a batch [n, c, h, w] in place and returns it. Each
// sample gets an independent crop offset and flip decision.
func (a *Augmenter) Apply(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("dataset: Augmenter input %v, want rank 4", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	var padded []float32
	if a.Pad > 0 {
		padded = make([]float32, c*(h+2*a.Pad)*(w+2*a.Pad))
	}
	d := x.Data()
	sample := c * h * w
	for i := 0; i < n; i++ {
		img := d[i*sample : (i+1)*sample]
		if a.Pad > 0 {
			a.randomCrop(img, padded, c, h, w)
		}
		if a.Flip && a.r.Float64() < 0.5 {
			flipHorizontal(img, c, h, w)
		}
	}
	return x
}

// randomCrop zero-pads the image by Pad on each side and crops a
// random h×w window back out, writing the result over img.
func (a *Augmenter) randomCrop(img, padded []float32, c, h, w int) {
	ph, pw := h+2*a.Pad, w+2*a.Pad
	for i := range padded {
		padded[i] = 0
	}
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			srcOff := ch*h*w + y*w
			dstOff := ch*ph*pw + (y+a.Pad)*pw + a.Pad
			copy(padded[dstOff:dstOff+w], img[srcOff:srcOff+w])
		}
	}
	dy := a.r.Intn(2*a.Pad + 1)
	dx := a.r.Intn(2*a.Pad + 1)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			srcOff := ch*ph*pw + (y+dy)*pw + dx
			dstOff := ch*h*w + y*w
			copy(img[dstOff:dstOff+w], padded[srcOff:srcOff+w])
		}
	}
}

func flipHorizontal(img []float32, c, h, w int) {
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			row := img[ch*h*w+y*w : ch*h*w+(y+1)*w]
			for x := 0; x < w/2; x++ {
				row[x], row[w-1-x] = row[w-1-x], row[x]
			}
		}
	}
}
