package dataset

import (
	"testing"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

func TestAugmenterPreservesShape(t *testing.T) {
	a := NewAugmenter(4, true, rng.New(1))
	x := tensor.New(3, 3, 32, 32)
	x.FillNormal(rng.New(2), 0, 1)
	y := a.Apply(x)
	if y != x {
		t.Fatal("Apply must operate in place")
	}
	shape := y.Shape()
	if shape[0] != 3 || shape[1] != 3 || shape[2] != 32 || shape[3] != 32 {
		t.Fatalf("shape %v", shape)
	}
}

func TestAugmenterZeroConfigIsIdentity(t *testing.T) {
	a := NewAugmenter(0, false, rng.New(3))
	x := tensor.New(2, 1, 8, 8)
	x.FillNormal(rng.New(4), 0, 1)
	orig := x.Clone()
	a.Apply(x)
	if !tensor.AllClose(x, orig, 0) {
		t.Fatal("no-op augmenter changed data")
	}
}

func TestFlipIsInvolution(t *testing.T) {
	x := tensor.New(1, 2, 4, 6)
	x.FillNormal(rng.New(5), 0, 1)
	orig := x.Clone()
	flipHorizontal(x.Data(), 2, 4, 6)
	if tensor.AllClose(x, orig, 0) {
		t.Fatal("flip changed nothing")
	}
	flipHorizontal(x.Data(), 2, 4, 6)
	if !tensor.AllClose(x, orig, 0) {
		t.Fatal("double flip is not the identity")
	}
}

func TestCropPreservesPixelMultiset(t *testing.T) {
	// A crop with dy=dx=Pad is the identity; in general the cropped
	// window contains original pixels and zero padding only. Check that
	// every non-zero output pixel value existed in the input.
	a := NewAugmenter(2, false, rng.New(6))
	x := tensor.New(4, 3, 8, 8)
	x.FillUniform(rng.New(7), 1, 2) // strictly positive: zeros = padding
	seen := map[float32]bool{}
	for _, v := range x.Data() {
		seen[v] = true
	}
	a.Apply(x)
	for _, v := range x.Data() {
		if v != 0 && !seen[v] {
			t.Fatalf("crop invented pixel value %v", v)
		}
	}
}

func TestAugmenterDeterministic(t *testing.T) {
	mk := func() *tensor.Tensor {
		x := tensor.New(2, 3, 16, 16)
		x.FillNormal(rng.New(8), 0, 1)
		return NewAugmenter(4, true, rng.New(9)).Apply(x)
	}
	if !tensor.AllClose(mk(), mk(), 0) {
		t.Fatal("same seeds must reproduce the same augmentation")
	}
}

func TestAugmenterVariesAcrossSamples(t *testing.T) {
	// Two identical samples in one batch should (with overwhelming
	// probability under seed 10) receive different crops/flips.
	x := tensor.New(2, 1, 8, 8)
	half := x.Size() / 2
	for i := 0; i < half; i++ {
		v := float32(i + 1)
		x.Data()[i] = v
		x.Data()[half+i] = v
	}
	NewAugmenter(2, true, rng.New(10)).Apply(x)
	same := true
	for i := 0; i < half; i++ {
		if x.Data()[i] != x.Data()[half+i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("both samples got the identical augmentation")
	}
}

func TestAugmenterRejectsBadInput(t *testing.T) {
	assertPanics(t, "negative pad", func() { NewAugmenter(-1, false, rng.New(1)) })
	a := NewAugmenter(1, false, rng.New(1))
	assertPanics(t, "rank 2", func() { a.Apply(tensor.New(2, 2)) })
}
