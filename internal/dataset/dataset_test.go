package dataset

import (
	"testing"

	"medsplit/internal/nn"
	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

func TestSynthCIFARShapesAndDeterminism(t *testing.T) {
	cfg := SynthConfig{Classes: 10, Train: 100, Test: 40, Seed: 7}
	train, test := SynthCIFAR(cfg)
	if train.Len() != 100 || test.Len() != 40 {
		t.Fatalf("lengths %d/%d", train.Len(), test.Len())
	}
	shape := train.SampleShape()
	if shape[0] != 3 || shape[1] != 32 || shape[2] != 32 {
		t.Fatalf("sample shape %v", shape)
	}
	// Deterministic regeneration.
	train2, _ := SynthCIFAR(cfg)
	if !tensor.AllClose(train.X, train2.X, 0) {
		t.Fatal("same seed must reproduce identical data")
	}
	for i := range train.Labels {
		if train.Labels[i] != train2.Labels[i] {
			t.Fatal("labels differ across same-seed generations")
		}
	}
	// Different seed differs.
	train3, _ := SynthCIFAR(SynthConfig{Classes: 10, Train: 100, Test: 40, Seed: 8})
	if tensor.AllClose(train.X, train3.X, 1e-6) {
		t.Fatal("different seeds must differ")
	}
}

func TestSynthCIFARClassBalance(t *testing.T) {
	train, _ := SynthCIFAR(SynthConfig{Classes: 10, Train: 1000, Test: 10, Seed: 1})
	counts := make([]int, 10)
	for _, lab := range train.Labels {
		counts[lab]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d samples, want 100 (near-uniform)", c, n)
		}
	}
}

func TestSynthCIFARHasSignalNotConstant(t *testing.T) {
	train, _ := SynthCIFAR(SynthConfig{Classes: 2, Train: 20, Test: 4, Seed: 3})
	// Pixels must vary (not a constant image).
	if train.X.Norm() == 0 {
		t.Fatal("all-zero data")
	}
	if train.X.HasNaN() {
		t.Fatal("NaN in generated data")
	}
}

// The headline property: a small CNN must be able to learn SynthCIFAR
// far beyond chance. This is what makes accuracy-vs-communication curves
// meaningful.
func TestSynthCIFARIsLearnable(t *testing.T) {
	train, test := SynthCIFAR(SynthConfig{Classes: 4, Train: 400, Test: 120, Noise: 0.3, Seed: 5})
	r := rng.New(9)
	net := nn.NewSequential("probe",
		nn.NewConv2D("c1", 3, 8, 3, 3, 1, 1, r),
		nn.NewReLU("r1"),
		nn.NewMaxPool2D("p1", 4, 4),
		nn.NewFlatten("f"),
		nn.NewDense("fc", 8*8*8, 4, r),
	)
	opt := &nn.Adam{LR: 0.003}
	loss := nn.SoftmaxCrossEntropy{}
	sampler := NewBatchSampler(seqIndices(train.Len()), 32, rng.New(11))
	for step := 0; step < 150; step++ {
		x, labels := train.Batch(sampler.Next())
		nn.ZeroGrads(net.Params())
		logits := net.Forward(x, true)
		_, g := loss.Loss(logits, labels)
		net.Backward(g)
		opt.Step(net.Params())
	}
	x, labels := test.Batch(seqIndices(test.Len()))
	acc := nn.Accuracy(net.Forward(x, false), labels)
	if acc < 0.6 {
		t.Fatalf("probe CNN accuracy %.2f after 150 steps; dataset not learnable (chance 0.25)", acc)
	}
}

func TestBatchGather(t *testing.T) {
	d := &Dataset{
		X:       tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2),
		Labels:  []int{7, 8, 9},
		Classes: 10,
	}
	x, labels := d.Batch([]int{2, 0})
	if x.At(0, 0) != 5 || x.At(1, 0) != 1 {
		t.Fatalf("gathered %v", x.Data())
	}
	if labels[0] != 9 || labels[1] != 7 {
		t.Fatalf("labels %v", labels)
	}
	assertPanics(t, "oob", func() { d.Batch([]int{3}) })
	assertPanics(t, "empty", func() { d.Batch(nil) })
}

func TestSubset(t *testing.T) {
	d := &Dataset{
		X:       tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1),
		Labels:  []int{0, 1, 0, 1},
		Classes: 2,
	}
	s := d.Subset([]int{1, 3})
	if s.Len() != 2 || s.Labels[0] != 1 || s.X.At(1, 0) != 4 {
		t.Fatalf("subset %v %v", s.X.Data(), s.Labels)
	}
	// Independent storage.
	s.X.Set(99, 0, 0)
	if d.X.At(1, 0) == 99 {
		t.Fatal("Subset must copy")
	}
}

func TestShardIIDCoversAll(t *testing.T) {
	r := rng.New(1)
	shards := ShardIID(103, 4, r)
	if len(shards) != 4 {
		t.Fatalf("%d shards", len(shards))
	}
	seen := make(map[int]bool)
	for _, sh := range shards {
		for _, idx := range sh {
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 103 {
		t.Fatalf("covered %d of 103", len(seen))
	}
	// Sizes within 1 of each other.
	for _, sh := range shards {
		if len(sh) < 25 || len(sh) > 26 {
			t.Fatalf("IID shard size %d", len(sh))
		}
	}
}

func TestShardPowerLawImbalance(t *testing.T) {
	r := rng.New(2)
	shards := ShardPowerLaw(1000, 4, 1.5, r)
	total := 0
	for _, sh := range shards {
		if len(sh) == 0 {
			t.Fatal("empty shard")
		}
		total += len(sh)
	}
	if total != 1000 {
		t.Fatalf("total %d", total)
	}
	if len(shards[0]) <= 2*len(shards[3]) {
		t.Fatalf("alpha=1.5 should be strongly imbalanced: %d vs %d", len(shards[0]), len(shards[3]))
	}
	// alpha=0 is uniform.
	uniform := ShardPowerLaw(1000, 4, 0, rng.New(3))
	for _, sh := range uniform {
		if len(sh) != 250 {
			t.Fatalf("alpha=0 shard size %d, want 250", len(sh))
		}
	}
}

func TestShardDirichletSkewsLabels(t *testing.T) {
	r := rng.New(4)
	labels := make([]int, 1000)
	for i := range labels {
		labels[i] = i % 10
	}
	shards := ShardDirichlet(labels, 10, 4, 0.2, r)
	total := 0
	for p, sh := range shards {
		if len(sh) == 0 {
			t.Fatalf("platform %d empty", p)
		}
		total += len(sh)
	}
	if total != 1000 {
		t.Fatalf("total %d", total)
	}
	// With alpha=0.2 at least one platform should have a dominant class
	// holding >30% of its data (IID would give 10% each).
	dominant := false
	for _, sh := range shards {
		counts := make([]int, 10)
		for _, idx := range sh {
			counts[labels[idx]]++
		}
		for _, c := range counts {
			if float64(c) > 0.3*float64(len(sh)) {
				dominant = true
			}
		}
	}
	if !dominant {
		t.Fatal("Dirichlet(0.2) produced no label skew")
	}
}

func TestProportionalBatches(t *testing.T) {
	// The paper's mitigation: s_k proportional to |D_k|.
	got := ProportionalBatches([]int{600, 300, 100}, 20)
	if got[0]+got[1]+got[2] != 20 {
		t.Fatalf("sum %v", got)
	}
	if got[0] != 12 || got[1] != 6 || got[2] != 2 {
		t.Fatalf("proportional = %v, want [12 6 2]", got)
	}
	// Tiny shards still get at least 1.
	got = ProportionalBatches([]int{1000, 1, 1}, 12)
	if got[1] < 1 || got[2] < 1 {
		t.Fatalf("minimum-1 violated: %v", got)
	}
	if sum(got) != 12 {
		t.Fatalf("sum %v", got)
	}
	assertPanics(t, "budget too small", func() { ProportionalBatches([]int{5, 5}, 1) })
}

func TestUniformBatches(t *testing.T) {
	got := UniformBatches(3, 10)
	if sum(got) != 10 {
		t.Fatalf("sum %v", got)
	}
	if got[0] != 4 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("uniform = %v", got)
	}
}

func TestBatchSamplerCoversEpoch(t *testing.T) {
	idx := []int{10, 11, 12, 13, 14, 15}
	s := NewBatchSampler(idx, 2, rng.New(5))
	seen := map[int]int{}
	for i := 0; i < 3; i++ { // one epoch = 3 batches
		for _, v := range s.Next() {
			seen[v]++
		}
	}
	for _, v := range idx {
		if seen[v] != 1 {
			t.Fatalf("index %d seen %d times in first epoch", v, seen[v])
		}
	}
	if s.Epoch() != 0 {
		t.Fatalf("epoch %d before wrap", s.Epoch())
	}
	s.Next()
	if s.Epoch() != 1 {
		t.Fatalf("epoch %d after wrap", s.Epoch())
	}
}

func TestBatchSamplerClampsOversizedBatch(t *testing.T) {
	s := NewBatchSampler([]int{1, 2, 3}, 10, rng.New(6))
	if s.BatchSize() != 3 {
		t.Fatalf("batch size %d, want clamp to 3", s.BatchSize())
	}
	b := s.Next()
	if len(b) != 3 {
		t.Fatalf("batch %v", b)
	}
}

func TestBatchSamplerDoesNotAliasInput(t *testing.T) {
	idx := []int{1, 2, 3, 4}
	s := NewBatchSampler(idx, 2, rng.New(7))
	_ = s
	if idx[0] != 1 || idx[1] != 2 || idx[2] != 3 || idx[3] != 4 {
		t.Fatal("sampler must not mutate the caller's slice")
	}
}

func TestSynthNoiseControlsDifficulty(t *testing.T) {
	// Same class templates, different noise: higher noise means samples
	// of one class are further apart.
	clean, _ := SynthCIFAR(SynthConfig{Classes: 2, Train: 50, Test: 2, Noise: 0.01, Seed: 9})
	noisy, _ := SynthCIFAR(SynthConfig{Classes: 2, Train: 50, Test: 2, Noise: 1.0, Seed: 9})
	spread := func(d *Dataset) float64 {
		// Mean pairwise distance between first 10 samples of class 0.
		var pts []*tensor.Tensor
		for i := 0; i < d.Len() && len(pts) < 10; i++ {
			if d.Labels[i] == 0 {
				x, _ := d.Batch([]int{i})
				pts = append(pts, x)
			}
		}
		var total float64
		var count int
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				total += tensor.Sub(pts[i], pts[j]).Norm()
				count++
			}
		}
		return total / float64(count)
	}
	if !(spread(noisy) > spread(clean)) {
		t.Fatal("noise must increase intra-class spread")
	}
}

func seqIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
