package dataset

import (
	"testing"
	"testing/quick"

	"medsplit/internal/rng"
)

// Randomized invariants of the sharding and batching machinery.

// shardsPartition checks that shards form an exact partition of [0, n).
func shardsPartition(shards [][]int, n int) bool {
	seen := make([]bool, n)
	count := 0
	for _, sh := range shards {
		for _, idx := range sh {
			if idx < 0 || idx >= n || seen[idx] {
				return false
			}
			seen[idx] = true
			count++
		}
	}
	return count == n
}

func TestPropertyShardIIDPartitions(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 1 + r.Intn(8)
		n := k + r.Intn(200)
		return shardsPartition(ShardIID(n, k, r), n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyShardPowerLawPartitionsNonEmpty(t *testing.T) {
	f := func(seed uint64, alphaRaw uint8) bool {
		r := rng.New(seed)
		k := 1 + r.Intn(8)
		n := k + r.Intn(200)
		alpha := float64(alphaRaw) / 64 // [0, ~4)
		shards := ShardPowerLaw(n, k, alpha, r)
		if !shardsPartition(shards, n) {
			return false
		}
		for _, sh := range shards {
			if len(sh) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyShardDirichletPartitionsNonEmpty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 1 + r.Intn(6)
		classes := 2 + r.Intn(8)
		n := k + classes + r.Intn(150)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(classes)
		}
		shards := ShardDirichlet(labels, classes, k, 0.1+r.Float64(), r)
		if !shardsPartition(shards, n) {
			return false
		}
		for _, sh := range shards {
			if len(sh) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyProportionalBatchesSumAndFloor(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 1 + r.Intn(8)
		sizes := make([]int, k)
		for i := range sizes {
			sizes[i] = 1 + r.Intn(500)
		}
		budget := k + r.Intn(100)
		batches := ProportionalBatches(sizes, budget)
		total := 0
		for _, b := range batches {
			if b < 1 {
				return false
			}
			total += b
		}
		return total == budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySamplerEpochIsPermutation(t *testing.T) {
	// Within one epoch every index appears exactly once when batch
	// divides the set size.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		batches := 1 + r.Intn(6)
		batch := 1 + r.Intn(8)
		n := batches * batch
		indices := make([]int, n)
		for i := range indices {
			indices[i] = i * 3 // arbitrary values, not positions
		}
		s := NewBatchSampler(indices, batch, r)
		seen := map[int]int{}
		for i := 0; i < batches; i++ {
			for _, v := range s.Next() {
				seen[v]++
			}
		}
		for _, v := range indices {
			if seen[v] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySynthCIFARLabelRange(t *testing.T) {
	f := func(seed uint64, classesRaw uint8) bool {
		classes := 2 + int(classesRaw)%20
		train, test := SynthCIFAR(SynthConfig{
			Classes: classes, Train: 30, Test: 10, Seed: seed,
		})
		for _, lab := range append(append([]int(nil), train.Labels...), test.Labels...) {
			if lab < 0 || lab >= classes {
				return false
			}
		}
		return !train.X.HasNaN() && !test.X.HasNaN()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
