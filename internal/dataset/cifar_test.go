package dataset

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeCIFAR10Fixture writes n records in the CIFAR-10 binary format
// with deterministic contents and returns the path.
func writeCIFAR10Fixture(t *testing.T, name string, n int) string {
	t.Helper()
	buf := make([]byte, 0, n*cifar10Record)
	for i := 0; i < n; i++ {
		buf = append(buf, byte(i%10)) // label
		for p := 0; p < cifarPixels; p++ {
			buf = append(buf, byte((i+p)%256))
		}
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeCIFAR100Fixture(t *testing.T, name string, n int) string {
	t.Helper()
	buf := make([]byte, 0, n*cifar100Record)
	for i := 0; i < n; i++ {
		buf = append(buf, byte(i%20))  // coarse label
		buf = append(buf, byte(i%100)) // fine label
		for p := 0; p < cifarPixels; p++ {
			buf = append(buf, byte(p%256))
		}
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCIFAR10(t *testing.T) {
	path := writeCIFAR10Fixture(t, "batch.bin", 25)
	d, err := LoadCIFAR10(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 25 || d.Classes != 10 {
		t.Fatalf("len %d classes %d", d.Len(), d.Classes)
	}
	shape := d.SampleShape()
	if shape[0] != 3 || shape[1] != 32 || shape[2] != 32 {
		t.Fatalf("shape %v", shape)
	}
	// Labels cycle 0..9.
	for i, lab := range d.Labels {
		if lab != i%10 {
			t.Fatalf("label %d = %d", i, lab)
		}
	}
	// Pixel scaling: byte 0 → -1, byte 255 → +1.
	for _, v := range d.X.Data() {
		if v < -1 || v > 1.01 {
			t.Fatalf("pixel %v outside [-1,1]", v)
		}
	}
	// Record 0, pixel 0 has byte value 0 → -1 exactly.
	if d.X.At(0, 0, 0, 0) != -1 {
		t.Fatalf("first pixel %v, want -1", d.X.At(0, 0, 0, 0))
	}
}

func TestLoadCIFAR10MultipleFiles(t *testing.T) {
	p1 := writeCIFAR10Fixture(t, "b1.bin", 10)
	p2 := writeCIFAR10Fixture(t, "b2.bin", 15)
	d, err := LoadCIFAR10(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 25 {
		t.Fatalf("len %d, want 25", d.Len())
	}
}

func TestLoadCIFAR100FineAndCoarse(t *testing.T) {
	path := writeCIFAR100Fixture(t, "train.bin", 30)
	fine, err := LoadCIFAR100(path)
	if err != nil {
		t.Fatal(err)
	}
	if fine.Classes != 100 || fine.Labels[7] != 7 {
		t.Fatalf("fine: classes %d label[7] %d", fine.Classes, fine.Labels[7])
	}
	coarse, err := LoadCIFAR100Coarse(path)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Classes != 20 || coarse.Labels[25] != 5 {
		t.Fatalf("coarse: classes %d label[25] %d", coarse.Classes, coarse.Labels[25])
	}
}

func TestLoadCIFARRejectsBadInput(t *testing.T) {
	if _, err := LoadCIFAR10(); !errors.Is(err, ErrBadCIFAR) {
		t.Fatalf("no files: %v", err)
	}
	if _, err := LoadCIFAR10(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
	// Truncated record.
	path := filepath.Join(t.TempDir(), "trunc.bin")
	if err := os.WriteFile(path, make([]byte, cifar10Record+100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCIFAR10(path); !errors.Is(err, ErrBadCIFAR) {
		t.Fatalf("truncated: %v", err)
	}
	// Empty file.
	empty := filepath.Join(t.TempDir(), "empty.bin")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCIFAR10(empty); !errors.Is(err, ErrBadCIFAR) {
		t.Fatalf("empty: %v", err)
	}
	// CIFAR-10 reader on CIFAR-100 data: record sizes differ, so the
	// final record comes up short.
	c100 := writeCIFAR100Fixture(t, "c100.bin", 3)
	if _, err := LoadCIFAR10(c100); !errors.Is(err, ErrBadCIFAR) {
		t.Fatalf("format mismatch: %v", err)
	}
}

func TestLoadedCIFARWorksWithSharding(t *testing.T) {
	path := writeCIFAR10Fixture(t, "batch.bin", 40)
	d, err := LoadCIFAR10(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded dataset must plug into the standard pipeline.
	x, labels := d.Batch([]int{0, 39})
	if x.Dim(0) != 2 || len(labels) != 2 {
		t.Fatalf("batch %v %v", x.Shape(), labels)
	}
}
