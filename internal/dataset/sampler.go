package dataset

import (
	"fmt"

	"medsplit/internal/rng"
)

// BatchSampler cycles through a fixed index set in reshuffled epochs,
// yielding minibatches of a fixed size. Each platform in the split
// framework owns one sampler over its local shard (minibatch size s_k in
// the paper).
type BatchSampler struct {
	indices []int
	batch   int
	r       *rng.RNG
	cursor  int
	epoch   int
	out     []int // Next's reusable result slice
}

// NewBatchSampler builds a sampler over the given indices. batch must be
// positive and at most len(indices); the indices slice is copied.
func NewBatchSampler(indices []int, batch int, r *rng.RNG) *BatchSampler {
	if batch <= 0 {
		panic(fmt.Sprintf("dataset: batch size %d", batch))
	}
	if len(indices) == 0 {
		panic("dataset: sampler over empty index set")
	}
	if batch > len(indices) {
		batch = len(indices) // a tiny shard trains on all of it each step
	}
	own := append([]int(nil), indices...)
	r.Shuffle(own)
	return &BatchSampler{indices: own, batch: batch, r: r}
}

// BatchSize returns the (possibly clamped) batch size.
func (s *BatchSampler) BatchSize() int { return s.batch }

// Epoch returns how many full passes have been completed.
func (s *BatchSampler) Epoch() int { return s.epoch }

// SamplerSnapshot is the full serializable state of a BatchSampler:
// the current epoch permutation, the cursor within it, the epoch count
// and the shuffling RNG. Restoring it resumes the exact batch stream a
// checkpointed training run was drawing.
type SamplerSnapshot struct {
	Indices []int
	Cursor  int
	Epoch   int
	RNG     rng.Snapshot
}

// Snapshot captures the sampler's state. The indices are copied.
func (s *BatchSampler) Snapshot() SamplerSnapshot {
	return SamplerSnapshot{
		Indices: append([]int(nil), s.indices...),
		Cursor:  s.cursor,
		Epoch:   s.epoch,
		RNG:     s.r.Snapshot(),
	}
}

// Restore overwrites the sampler's state with a snapshot. It fails if
// the snapshot was taken over a different index-set size — that means
// the checkpoint belongs to a different shard.
func (s *BatchSampler) Restore(snap SamplerSnapshot) error {
	if len(snap.Indices) != len(s.indices) {
		return fmt.Errorf("dataset: sampler snapshot has %d indices, sampler has %d", len(snap.Indices), len(s.indices))
	}
	if snap.Cursor < 0 || snap.Cursor > len(s.indices) {
		return fmt.Errorf("dataset: sampler snapshot cursor %d out of range [0,%d]", snap.Cursor, len(s.indices))
	}
	copy(s.indices, snap.Indices)
	s.cursor = snap.Cursor
	s.epoch = snap.Epoch
	s.r.Restore(snap.RNG)
	return nil
}

// Skip advances the sampler by n batches without materializing them —
// how a platform that missed rounds while disconnected realigns its
// batch stream with the round counter before rejoining.
func (s *BatchSampler) Skip(n int) {
	for i := 0; i < n; i++ {
		if s.cursor+s.batch > len(s.indices) {
			s.r.Shuffle(s.indices)
			s.cursor = 0
			s.epoch++
		}
		s.cursor += s.batch
	}
}

// Next returns the next minibatch of indices. When fewer than a full
// batch remain in the epoch, the sampler reshuffles and starts the next
// epoch, so every batch has exactly BatchSize elements. The returned
// slice is sampler-owned scratch, valid until the next call to Next —
// callers that need it longer must copy it.
func (s *BatchSampler) Next() []int {
	if s.cursor+s.batch > len(s.indices) {
		s.r.Shuffle(s.indices)
		s.cursor = 0
		s.epoch++
	}
	if s.out == nil {
		s.out = make([]int, s.batch)
	}
	copy(s.out, s.indices[s.cursor:s.cursor+s.batch])
	s.cursor += s.batch
	return s.out
}
