package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"medsplit/internal/tensor"
)

// This file reads the real CIFAR binary formats. The repo's experiments
// default to the synthetic generator (the module builds offline), but a
// user with the actual corpora drops the binary files in and trains on
// them unchanged — the tensors come out in the same [n,3,32,32] layout
// the rest of the system consumes.
//
// CIFAR-10 binary format: records of 3073 bytes — one label byte
// (0–9) then 3072 pixel bytes (red, green, blue planes of 32×32).
// CIFAR-100: records of 3074 bytes — coarse label, fine label, pixels.

// ErrBadCIFAR reports a malformed CIFAR binary file.
var ErrBadCIFAR = errors.New("dataset: bad CIFAR file")

const (
	cifarPixels     = 3 * 32 * 32
	cifar10Record   = 1 + cifarPixels
	cifar100Record  = 2 + cifarPixels
	cifar10Classes  = 10
	cifar100Classes = 100
)

// LoadCIFAR10 reads one or more CIFAR-10 binary batch files
// (data_batch_1.bin … data_batch_5.bin, test_batch.bin) and returns a
// dataset with pixels scaled to [-1, 1].
func LoadCIFAR10(paths ...string) (*Dataset, error) {
	return loadCIFAR(paths, cifar10Record, cifar10Classes, func(hdr []byte) int {
		return int(hdr[0])
	})
}

// LoadCIFAR100 reads CIFAR-100 binary files (train.bin, test.bin) using
// the fine (100-way) labels.
func LoadCIFAR100(paths ...string) (*Dataset, error) {
	return loadCIFAR(paths, cifar100Record, cifar100Classes, func(hdr []byte) int {
		return int(hdr[1]) // hdr[0] is the coarse label
	})
}

// LoadCIFAR100Coarse reads CIFAR-100 binary files using the coarse
// (20-way superclass) labels.
func LoadCIFAR100Coarse(paths ...string) (*Dataset, error) {
	return loadCIFAR(paths, cifar100Record, 20, func(hdr []byte) int {
		return int(hdr[0])
	})
}

func loadCIFAR(paths []string, record, classes int, label func([]byte) int) (*Dataset, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: no files", ErrBadCIFAR)
	}
	var data []float32
	var labels []int
	hdrLen := record - cifarPixels
	buf := make([]byte, record)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("dataset: opening %s: %w", path, err)
		}
		br := bufio.NewReaderSize(f, 1<<16)
		records := 0
		for {
			_, err := io.ReadFull(br, buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("%w: %s: truncated record %d (%v)", ErrBadCIFAR, path, records, err)
			}
			lab := label(buf[:hdrLen])
			if lab < 0 || lab >= classes {
				f.Close()
				return nil, fmt.Errorf("%w: %s: label %d out of range [0,%d)", ErrBadCIFAR, path, lab, classes)
			}
			labels = append(labels, lab)
			for _, px := range buf[hdrLen:] {
				data = append(data, float32(px)/127.5-1)
			}
			records++
		}
		f.Close()
		if records == 0 {
			return nil, fmt.Errorf("%w: %s: empty file", ErrBadCIFAR, path)
		}
	}
	n := len(labels)
	return &Dataset{
		X:       tensor.FromSlice(data, n, 3, 32, 32),
		Labels:  labels,
		Classes: classes,
	}, nil
}
