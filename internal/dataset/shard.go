package dataset

import (
	"fmt"
	"math"

	"medsplit/internal/rng"
)

// This file implements the geo-distribution of data across platforms.
// The paper's setting: each hospital holds its own patient records, the
// amounts differ ("the amount of data in each platform is not equal,
// leading to data imbalance"), and the label mix may differ too.

// ShardIID deals n sample indices to k platforms uniformly at random,
// sizes as equal as possible. It panics if k <= 0 or n < k.
func ShardIID(n, k int, r *rng.RNG) [][]int {
	validateShard(n, k)
	perm := r.Perm(n)
	shards := make([][]int, k)
	for i, idx := range perm {
		p := i % k
		shards[p] = append(shards[p], idx)
	}
	return shards
}

// ShardPowerLaw deals n indices to k platforms with shard sizes following
// a power law: platform i receives a share proportional to
// (i+1)^(-alpha). alpha = 0 is uniform; larger alpha is more imbalanced
// (alpha ≈ 1.5 gives a pronounced head/tail split). Every platform
// receives at least one sample.
func ShardPowerLaw(n, k int, alpha float64, r *rng.RNG) [][]int {
	validateShard(n, k)
	if alpha < 0 {
		panic(fmt.Sprintf("dataset: negative power-law alpha %v", alpha))
	}
	weights := make([]float64, k)
	var total float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -alpha)
		total += weights[i]
	}
	sizes := apportion(n, weights, total, k)
	perm := r.Perm(n)
	shards := make([][]int, k)
	off := 0
	for i, s := range sizes {
		shards[i] = append([]int(nil), perm[off:off+s]...)
		off += s
	}
	return shards
}

// ShardDirichlet deals indices to k platforms with non-IID label mixes:
// for each class, the class's samples are distributed across platforms
// according to a Dirichlet(alpha) draw. Small alpha (e.g. 0.3) gives
// each platform a few dominant classes — the classic federated-learning
// heterogeneity model. Platforms may receive zero samples of some
// classes but never zero samples overall (a final rebalancing pass
// guarantees it).
func ShardDirichlet(labels []int, classes, k int, alpha float64, r *rng.RNG) [][]int {
	n := len(labels)
	validateShard(n, k)
	if classes <= 0 {
		panic("dataset: classes must be positive")
	}
	// Group indices by class.
	byClass := make([][]int, classes)
	for idx, lab := range labels {
		if lab < 0 || lab >= classes {
			panic(fmt.Sprintf("dataset: label %d out of range [0,%d)", lab, classes))
		}
		byClass[lab] = append(byClass[lab], idx)
	}
	shards := make([][]int, k)
	probs := make([]float64, k)
	for _, members := range byClass {
		if len(members) == 0 {
			continue
		}
		r.Shuffle(members)
		r.Dirichlet(alpha, probs)
		var total float64
		for _, p := range probs {
			total += p
		}
		sizes := apportionAllowZero(len(members), probs, total, k)
		off := 0
		for p, s := range sizes {
			shards[p] = append(shards[p], members[off:off+s]...)
			off += s
		}
	}
	// Guarantee non-empty shards: move one sample from the largest shard
	// to any empty one.
	for p := range shards {
		for len(shards[p]) == 0 {
			big := 0
			for q := range shards {
				if len(shards[q]) > len(shards[big]) {
					big = q
				}
			}
			if len(shards[big]) <= 1 {
				panic("dataset: cannot rebalance empty shard")
			}
			last := len(shards[big]) - 1
			shards[p] = append(shards[p], shards[big][last])
			shards[big] = shards[big][:last]
		}
	}
	return shards
}

// ProportionalBatches implements the paper's data-imbalance mitigation:
// "the minibatch size in each platform can be adjusted as the proportion
// of the amount of local data in each platform". Given per-platform
// shard sizes and a total per-round batch budget, it returns batch sizes
// proportional to shard sizes (largest-remainder rounding, minimum 1).
func ProportionalBatches(shardSizes []int, totalBatch int) []int {
	if len(shardSizes) == 0 {
		panic("dataset: no shards")
	}
	if totalBatch < len(shardSizes) {
		panic(fmt.Sprintf("dataset: batch budget %d below one per platform (%d)", totalBatch, len(shardSizes)))
	}
	var total float64
	weights := make([]float64, len(shardSizes))
	for i, s := range shardSizes {
		if s <= 0 {
			panic(fmt.Sprintf("dataset: shard %d has non-positive size %d", i, s))
		}
		weights[i] = float64(s)
		total += weights[i]
	}
	return apportion(totalBatch, weights, total, len(shardSizes))
}

// UniformBatches returns the baseline uniform allocation: totalBatch
// split as evenly as possible regardless of shard sizes.
func UniformBatches(platforms, totalBatch int) []int {
	if platforms <= 0 || totalBatch < platforms {
		panic(fmt.Sprintf("dataset: bad uniform batch args %d/%d", platforms, totalBatch))
	}
	out := make([]int, platforms)
	base := totalBatch / platforms
	rem := totalBatch % platforms
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// apportion distributes n units over k buckets proportionally to
// weights, guaranteeing at least 1 per bucket, using largest remainders.
func apportion(n int, weights []float64, total float64, k int) []int {
	if n < k {
		panic(fmt.Sprintf("dataset: cannot give %d buckets at least one of %d units", k, n))
	}
	sizes := make([]int, k)
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, k)
	assigned := 0
	for i := range sizes {
		exact := float64(n) * weights[i] / total
		sizes[i] = int(exact)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		fracs[i] = frac{idx: i, rem: exact - float64(int(exact))}
		assigned += sizes[i]
	}
	// Distribute or reclaim the difference by largest/smallest remainder.
	for assigned < n {
		best := -1
		for i := range fracs {
			if best == -1 || fracs[i].rem > fracs[best].rem {
				best = i
			}
		}
		sizes[fracs[best].idx]++
		fracs[best].rem = -1
		assigned++
	}
	for assigned > n {
		// Reclaim from the largest bucket that stays >= 1.
		big := -1
		for i := range sizes {
			if sizes[i] > 1 && (big == -1 || sizes[i] > sizes[big]) {
				big = i
			}
		}
		sizes[big]--
		assigned--
	}
	return sizes
}

// apportionAllowZero is apportion without the minimum-1 guarantee.
func apportionAllowZero(n int, weights []float64, total float64, k int) []int {
	sizes := make([]int, k)
	rems := make([]float64, k)
	assigned := 0
	for i := range sizes {
		exact := float64(n) * weights[i] / total
		sizes[i] = int(exact)
		rems[i] = exact - float64(sizes[i])
		assigned += sizes[i]
	}
	for assigned < n {
		best := 0
		for i := range rems {
			if rems[i] > rems[best] {
				best = i
			}
		}
		sizes[best]++
		rems[best] = -1
		assigned++
	}
	return sizes
}

func validateShard(n, k int) {
	if k <= 0 {
		panic(fmt.Sprintf("dataset: %d platforms", k))
	}
	if n < k {
		panic(fmt.Sprintf("dataset: %d samples across %d platforms", n, k))
	}
}
