// Package dataset provides the data substrate for the reproduction: a
// procedurally generated stand-in for CIFAR-10/100 (the module builds
// offline, so the real corpora are unavailable), utilities to shard data
// across geo-distributed platforms — including the imbalanced and
// non-IID splits the paper discusses — and minibatch samplers, including
// the proportional batch sizing the paper proposes as its imbalance
// mitigation.
//
// Communication volume, the paper's Fig. 4 metric, depends only on
// tensor shapes, which SynthCIFAR matches exactly (3×32×32 inputs,
// 10- or 100-way labels). Accuracy curves keep their qualitative shape
// because the synthetic classes are separable but far from trivially so
// (class-conditional gratings and blobs under heavy noise and jitter).
package dataset

import (
	"fmt"
	"math"

	"medsplit/internal/rng"
	"medsplit/internal/tensor"
)

// Dataset is a labeled collection of fixed-shape samples.
type Dataset struct {
	// X holds all samples; dimension 0 indexes samples.
	X *tensor.Tensor
	// Labels holds one class index per sample.
	Labels []int
	// Classes is the number of distinct classes.
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Dim(0) }

// SampleShape returns the per-sample shape (X's shape without the
// leading dimension).
func (d *Dataset) SampleShape() []int { return d.X.Shape()[1:] }

// Batch gathers the samples at the given indices into a fresh tensor and
// label slice.
func (d *Dataset) Batch(indices []int) (*tensor.Tensor, []int) {
	return d.BatchInto(nil, nil, indices)
}

// BatchInto gathers the samples at the given indices, reusing x's and
// labels' storage when their capacity suffices (both may be nil, which
// is exactly Batch). Training loops pass the previous round's batch
// back in, so the per-round gather stops allocating once batch shapes
// stabilize.
func (d *Dataset) BatchInto(x *tensor.Tensor, labels []int, indices []int) (*tensor.Tensor, []int) {
	if len(indices) == 0 {
		panic("dataset: empty batch")
	}
	sampleShape := d.SampleShape()
	sampleSize := 1
	for _, s := range sampleShape {
		sampleSize *= s
	}
	outShape := append([]int{len(indices)}, sampleShape...)
	out := tensor.EnsureShape(x, outShape...)
	if cap(labels) >= len(indices) {
		labels = labels[:len(indices)]
	} else {
		labels = make([]int, len(indices))
	}
	src := d.X.Data()
	dst := out.Data()
	for i, idx := range indices {
		if idx < 0 || idx >= d.Len() {
			panic(fmt.Sprintf("dataset: index %d out of range [0,%d)", idx, d.Len()))
		}
		copy(dst[i*sampleSize:(i+1)*sampleSize], src[idx*sampleSize:(idx+1)*sampleSize])
		labels[i] = d.Labels[idx]
	}
	return out, labels
}

// Subset copies the samples at the given indices into a new Dataset.
func (d *Dataset) Subset(indices []int) *Dataset {
	x, labels := d.Batch(indices)
	return &Dataset{X: x, Labels: labels, Classes: d.Classes}
}

// SynthConfig parameterizes the synthetic CIFAR-style generator.
type SynthConfig struct {
	Classes int     // number of classes (10 for CIFAR-10, 100 for CIFAR-100)
	Train   int     // training sample count
	Test    int     // test sample count
	Noise   float32 // additive Gaussian pixel noise stddev (0.35 default)
	Seed    uint64
}

// withDefaults fills zero fields with usable values.
func (c SynthConfig) withDefaults() SynthConfig {
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.Train == 0 {
		c.Train = 2000
	}
	if c.Test == 0 {
		c.Test = 500
	}
	if c.Noise == 0 {
		c.Noise = 0.35
	}
	return c
}

// SynthCIFAR generates deterministic train and test splits of 3×32×32
// images. Each class owns a procedural template — two superimposed
// sinusoidal gratings plus a Gaussian color blob, all with
// class-dependent parameters — and each sample is the template under
// random translation, brightness jitter and additive noise, so a model
// must learn translation-tolerant features rather than memorize pixels.
func SynthCIFAR(cfg SynthConfig) (train, test *Dataset) {
	cfg = cfg.withDefaults()
	gen := newSynthGen(cfg)
	train = gen.split(cfg.Train, rng.New(cfg.Seed+1))
	test = gen.split(cfg.Test, rng.New(cfg.Seed+2))
	return train, test
}

const synthSize = 32

type classTemplate struct {
	freqA, freqB   float64 // grating frequencies
	angleA, angleB float64 // grating orientations
	phaseA, phaseB float64
	blobX, blobY   float64 // blob center in [0,1]
	blobR          float64 // blob radius
	colors         [3]float32
}

type synthGen struct {
	cfg       SynthConfig
	templates []classTemplate
}

func newSynthGen(cfg SynthConfig) *synthGen {
	r := rng.New(cfg.Seed)
	templates := make([]classTemplate, cfg.Classes)
	for c := range templates {
		templates[c] = classTemplate{
			freqA:  1 + 5*r.Float64(),
			freqB:  1 + 5*r.Float64(),
			angleA: math.Pi * r.Float64(),
			angleB: math.Pi * r.Float64(),
			phaseA: 2 * math.Pi * r.Float64(),
			phaseB: 2 * math.Pi * r.Float64(),
			blobX:  0.2 + 0.6*r.Float64(),
			blobY:  0.2 + 0.6*r.Float64(),
			blobR:  0.1 + 0.2*r.Float64(),
			colors: [3]float32{r.Float32(), r.Float32(), r.Float32()},
		}
	}
	return &synthGen{cfg: cfg, templates: templates}
}

// split generates n samples with labels cycling through classes so every
// class is represented nearly equally (like CIFAR itself).
func (g *synthGen) split(n int, r *rng.RNG) *Dataset {
	x := tensor.New(n, 3, synthSize, synthSize)
	labels := make([]int, n)
	perm := r.Perm(n)
	for i := 0; i < n; i++ {
		class := perm[i] % g.cfg.Classes
		labels[i] = class
		g.render(x.Data()[i*3*synthSize*synthSize:], class, r)
	}
	return &Dataset{X: x, Labels: labels, Classes: g.cfg.Classes}
}

// render draws one sample of the given class into dst (3*32*32 floats).
func (g *synthGen) render(dst []float32, class int, r *rng.RNG) {
	t := g.templates[class]
	// Per-sample jitter: translation up to ±3 px, brightness ±20%.
	dx := float64(r.Intn(7) - 3)
	dy := float64(r.Intn(7) - 3)
	brightness := 0.8 + 0.4*r.Float32()
	cosA, sinA := math.Cos(t.angleA), math.Sin(t.angleA)
	cosB, sinB := math.Cos(t.angleB), math.Sin(t.angleB)
	for y := 0; y < synthSize; y++ {
		fy := (float64(y) + dy) / synthSize
		for x := 0; x < synthSize; x++ {
			fx := (float64(x) + dx) / synthSize
			// Two gratings.
			ga := math.Sin(2*math.Pi*t.freqA*(fx*cosA+fy*sinA) + t.phaseA)
			gb := math.Sin(2*math.Pi*t.freqB*(fx*cosB+fy*sinB) + t.phaseB)
			// Gaussian blob.
			bx, by := fx-t.blobX, fy-t.blobY
			blob := math.Exp(-(bx*bx + by*by) / (2 * t.blobR * t.blobR))
			base := float32(0.5*ga + 0.3*gb + 0.8*blob)
			for ch := 0; ch < 3; ch++ {
				v := brightness*base*t.colors[ch] + g.cfg.Noise*r.NormFloat32()
				dst[ch*synthSize*synthSize+y*synthSize+x] = v
			}
		}
	}
}
