package tensor

import (
	"testing"
	"testing/quick"

	"medsplit/internal/rng"
)

// naiveMatMul is the reference O(mnk) implementation in float64 used to
// validate the optimized kernels.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			out.Set(float32(s), i, j)
		}
	}
	return out
}

func randTensor(r *rng.RNG, shape ...int) *Tensor {
	t := New(shape...)
	t.FillNormal(r, 0, 1)
	return t
}

func TestMatMulSmallKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(1)
	x := randTensor(r, 5, 5)
	eye := New(5, 5)
	for i := 0; i < 5; i++ {
		eye.Set(1, i, i)
	}
	if !AllClose(MatMul(x, eye), x, 1e-6) {
		t.Fatal("x·I != x")
	}
	if !AllClose(MatMul(eye, x), x, 1e-6) {
		t.Fatal("I·x != x")
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(2)
	cases := [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {16, 16, 16}, {33, 17, 9}, {64, 128, 32}}
	for _, c := range cases {
		m, k, n := c[0], c[1], c[2]
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !AllClose(got, want, 1e-4) {
			t.Fatalf("MatMul(%dx%d,%dx%d) diverges from naive", m, k, k, n)
		}
	}
}

func TestMatMulTAMatchesExplicitTranspose(t *testing.T) {
	r := rng.New(3)
	for _, c := range [][3]int{{4, 6, 5}, {1, 9, 2}, {32, 64, 16}} {
		m, k, n := c[0], c[1], c[2]
		a := randTensor(r, k, m) // will be transposed
		b := randTensor(r, k, n)
		got := MatMulTA(a, b)
		want := MatMul(Transpose(a), b)
		if !AllClose(got, want, 1e-4) {
			t.Fatalf("MatMulTA (m=%d,k=%d,n=%d) diverges", m, k, n)
		}
	}
}

func TestMatMulTBMatchesExplicitTranspose(t *testing.T) {
	r := rng.New(4)
	for _, c := range [][3]int{{4, 6, 5}, {2, 1, 7}, {16, 32, 64}} {
		m, k, n := c[0], c[1], c[2]
		a := randTensor(r, m, k)
		b := randTensor(r, n, k) // will be transposed
		got := MatMulTB(a, b)
		want := MatMul(a, Transpose(b))
		if !AllClose(got, want, 1e-4) {
			t.Fatalf("MatMulTB (m=%d,k=%d,n=%d) diverges", m, k, n)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(4, 5)
	assertPanics(t, "inner mismatch", func() { MatMul(a, b) })
	assertPanics(t, "rank-1 operand", func() { MatMul(a.Reshape(6), b) })
}

func TestMatMulLargeTriggersParallelPath(t *testing.T) {
	// 128×128×128 = 2M multiply-adds > parallelThreshold, exercising the
	// goroutine fan-out path; validated against the naive kernel.
	r := rng.New(5)
	a := randTensor(r, 128, 128)
	b := randTensor(r, 128, 128)
	if !AllClose(MatMul(a, b), naiveMatMul(a, b), 1e-3) {
		t.Fatal("parallel MatMul diverges from naive")
	}
	if !AllClose(MatMulTA(a, b), MatMul(Transpose(a), b), 1e-3) {
		t.Fatal("parallel MatMulTA diverges")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ, linking all three kernels.
func TestMatMulTransposeProperty(t *testing.T) {
	r := rng.New(6)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		m, k, n := 1+rr.Intn(8), 1+rr.Intn(8), 1+rr.Intn(8)
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return AllClose(lhs, rhs, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B)  { benchMatMul(b, 64) }
func BenchmarkMatMul256(b *testing.B) { benchMatMul(b, 256) }

func benchMatMul(b *testing.B, n int) {
	r := rng.New(1)
	x := randTensor(r, n, n)
	y := randTensor(r, n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
	b.SetBytes(int64(8 * n * n * n)) // multiply-add count as pseudo-bytes
}
