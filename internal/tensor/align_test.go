package tensor

import (
	"testing"
	"unsafe"
)

// TestPoolAlignment pins the documented guarantee: GetBuf and GetDirty
// hand out 32-byte-aligned float32 backing, fresh or recycled, for
// every size class the kernels touch.
func TestPoolAlignment(t *testing.T) {
	var p Pool
	sizes := []int{1, 2, 3, 7, 8, 9, 31, 32, 100, 1000, 4096, 1 << 16, 1<<20 + 3}
	addr := func(s []float32) uintptr {
		return uintptr(unsafe.Pointer(unsafe.SliceData(s)))
	}

	for _, n := range sizes {
		buf := p.GetBuf(n)
		if len(buf) != n {
			t.Fatalf("GetBuf(%d) len = %d", n, len(buf))
		}
		if a := addr(buf); a&31 != 0 {
			t.Errorf("GetBuf(%d) base %#x not 32-byte aligned", n, a)
		}
		p.PutBuf(buf)

		// Recycled buffers must come back aligned too.
		buf = p.GetBuf(n)
		if a := addr(buf); a&31 != 0 {
			t.Errorf("recycled GetBuf(%d) base %#x not 32-byte aligned", n, a)
		}
		p.PutBuf(buf)

		ten := p.GetDirty(n)
		if a := addr(ten.Data()); a&31 != 0 {
			t.Errorf("GetDirty(%d) base %#x not 32-byte aligned", n, a)
		}
		p.Put(ten)
	}
}

// TestPoolRejectsSubVectorCapacities documents the flip side: storage
// smaller than one vector register is never pooled, so the aligned
// floor classes stay pure.
func TestPoolRejectsSubVectorCapacities(t *testing.T) {
	var p Pool
	small := make([]float32, 4, 4)
	p.PutBuf(small) // dropped: capacity below alignFloats
	got := p.GetBuf(3)
	if cap(got) < alignFloats {
		t.Fatalf("GetBuf(3) cap = %d, want >= %d", cap(got), alignFloats)
	}
}
