package tensor

import (
	"testing"

	"medsplit/internal/rng"
	"medsplit/internal/tensor/kernels"
)

// convGeometries hits stride > 1, pad > 0, non-square images, prime
// dimensions, 1×1 kernels, and kernels larger than the padded remainder.
var convGeometries = []struct {
	n, c, h, w, kh, kw, stride, pad int
}{
	{1, 1, 5, 5, 3, 3, 1, 1},
	{2, 3, 7, 11, 3, 3, 1, 1},
	{3, 2, 13, 13, 5, 5, 2, 2},
	{2, 4, 8, 8, 2, 2, 2, 0},
	{1, 3, 17, 9, 3, 5, 2, 1},
	{5, 1, 6, 6, 1, 1, 1, 0},
	{2, 2, 9, 9, 4, 4, 3, 2},
	{4, 3, 32, 32, 3, 3, 1, 1}, // CIFAR L1 geometry
}

func TestIm2ColMatchesNaive(t *testing.T) {
	runWorkerModes(t, func(t *testing.T) {
		r := rng.New(21)
		for _, g := range convGeometries {
			x := randTensor(r, g.n, g.c, g.h, g.w)
			got := Im2Col(x, g.kh, g.kw, g.stride, g.pad)
			want := Im2ColNaive(x, g.kh, g.kw, g.stride, g.pad)
			assertUlpEqual(t, "Im2Col", got, want)

			dirty := Full(999, want.Dim(0), want.Dim(1))
			assertUlpEqual(t, "Im2ColInto", Im2ColInto(dirty, x, g.kh, g.kw, g.stride, g.pad), want)
		}
	})
}

func TestCol2ImMatchesNaive(t *testing.T) {
	runWorkerModes(t, func(t *testing.T) {
		r := rng.New(22)
		for _, g := range convGeometries {
			oh := ConvOutSize(g.h, g.kh, g.stride, g.pad)
			ow := ConvOutSize(g.w, g.kw, g.stride, g.pad)
			cols := randTensor(r, g.n*oh*ow, g.c*g.kh*g.kw)
			got := Col2Im(cols, g.n, g.c, g.h, g.w, g.kh, g.kw, g.stride, g.pad)
			want := Col2ImNaive(cols, g.n, g.c, g.h, g.w, g.kh, g.kw, g.stride, g.pad)
			assertUlpEqual(t, "Col2Im", got, want)

			dirty := Full(999, g.n, g.c, g.h, g.w)
			assertUlpEqual(t, "Col2ImInto", Col2ImInto(dirty, cols, g.kh, g.kw, g.stride, g.pad), want)
		}
	})
}

func TestRepackIntoMatchesNaive(t *testing.T) {
	runWorkerModes(t, func(t *testing.T) {
		r := rng.New(23)
		for _, g := range convGeometries {
			oh := ConvOutSize(g.h, g.kh, g.stride, g.pad)
			ow := ConvOutSize(g.w, g.kw, g.stride, g.pad)
			img := randTensor(r, g.n, g.c, oh, ow)
			rows := NCHWToRows(img)
			back := RowsToNCHW(rows, g.n, g.c, oh, ow)
			assertUlpEqual(t, "rows round-trip", back, img)

			dirtyRows := Full(999, g.n*oh*ow, g.c)
			assertUlpEqual(t, "NCHWToRowsInto", NCHWToRowsInto(dirtyRows, img), rows)
			dirtyImg := Full(999, g.n, g.c, oh, ow)
			assertUlpEqual(t, "RowsToNCHWInto", RowsToNCHWInto(dirtyImg, rows), img)
		}
	})
}

// TestConvGemmIntoMatchesUnfusedPipeline verifies the fused
// GEMM+bias+repack against the naive reference pipeline it replaces:
// rows = cols·wᵀ (naive), bias broadcast, rows→NCHW.
func TestConvGemmIntoMatchesUnfusedPipeline(t *testing.T) {
	runWorkerModes(t, func(t *testing.T) {
		r := rng.New(24)
		for _, g := range convGeometries {
			for _, outC := range []int{1, 3, 4, 7, 16} {
				oh := ConvOutSize(g.h, g.kh, g.stride, g.pad)
				ow := ConvOutSize(g.w, g.kw, g.stride, g.pad)
				x := randTensor(r, g.n, g.c, g.h, g.w)
				w := randTensor(r, outC, g.c*g.kh*g.kw)
				bias := randTensor(r, outC)

				cols := Im2ColNaive(x, g.kh, g.kw, g.stride, g.pad)
				rows := MatMulTBNaive(cols, w)
				rows.AddRowVector(bias)
				want := RowsToNCHW(rows, g.n, outC, oh, ow)

				dst := Full(999, g.n, outC, oh, ow)
				got := ConvGemmInto(dst, Im2Col(x, g.kh, g.kw, g.stride, g.pad), w, bias)
				if !AllClose(got, want, 1e-5) {
					t.Fatalf("ConvGemmInto mismatch at geometry %+v outC=%d", g, outC)
				}
			}
		}
	})
}

// TestConvGemmIntoDispatchBitIdentical pins the kernel-layer conv path
// to the scalar fused kernel bit-for-bit: per output element both run
// one sequential accumulation chain over k, so switching dispatch may
// not change a single bit.
func TestConvGemmIntoDispatchBitIdentical(t *testing.T) {
	r := rng.New(26)
	for _, g := range convGeometries {
		for _, outC := range []int{8, 9, 16} {
			oh := ConvOutSize(g.h, g.kh, g.stride, g.pad)
			ow := ConvOutSize(g.w, g.kw, g.stride, g.pad)
			x := randTensor(r, g.n, g.c, g.h, g.w)
			w := randTensor(r, outC, g.c*g.kh*g.kw)
			bias := randTensor(r, outC)
			cols := Im2Col(x, g.kh, g.kw, g.stride, g.pad)

			got := ConvGemmInto(Full(999, g.n, outC, oh, ow), cols, w, bias)
			kernels.ForceGeneric(true)
			want := ConvGemmInto(Full(-999, g.n, outC, oh, ow), cols, w, bias)
			kernels.ForceGeneric(false)
			for i := range want.data {
				if got.data[i] != want.data[i] {
					t.Fatalf("geometry %+v outC=%d elem %d: active %v scalar %v",
						g, outC, i, got.data[i], want.data[i])
				}
			}
		}
	}
}

// TestConvGemmIntoNilBias pins the bias-less path.
func TestConvGemmIntoNilBias(t *testing.T) {
	r := rng.New(25)
	x := randTensor(r, 2, 3, 8, 8)
	w := randTensor(r, 5, 27)
	cols := Im2Col(x, 3, 3, 1, 1)
	got := ConvGemmInto(New(2, 5, 8, 8), cols, w, nil)
	want := RowsToNCHW(MatMulTBNaive(cols, w), 2, 5, 8, 8)
	assertUlpEqual(t, "ConvGemmInto nil bias", got, want)
}
