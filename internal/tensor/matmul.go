package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which MatMul
// stays single-threaded: goroutine fan-out costs more than it saves on
// small products.
const parallelThreshold = 1 << 18

// MatMul returns the matrix product a·b for a of shape [m,k] and b of
// shape [k,n]. The kernel uses the i-k-j loop order so the inner loop
// streams both b and the output row sequentially (row-major friendly), and
// fans rows out across GOMAXPROCS goroutines for large products.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul("MatMul", a, b, false, false)
	out := New(m, n)
	mulRows := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.data[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	parallelRows(m, m*k*n, mulRows)
	return out
}

// MatMulTA returns aᵀ·b for a of shape [k,m] and b of shape [k,n],
// producing [m,n] without materializing the transpose. Dense-layer weight
// gradients (xᵀ·dy) use this form.
func MatMulTA(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul("MatMulTA", a, b, true, false)
	out := New(m, n)
	// Accumulate outer products row-by-row of the shared k dimension.
	// Parallelizing over output rows would race; instead give each worker
	// a private accumulator when parallel, or run serially when small.
	work := m * k * n
	if work < parallelThreshold || runtime.GOMAXPROCS(0) == 1 {
		for p := 0; p < k; p++ {
			arow := a.data[p*m : (p+1)*m]
			brow := b.data[p*n : (p+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out.data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return out
	}
	// Parallel path: split output rows among workers; each worker scans
	// all k but only fills its own row range, so no synchronization is
	// needed.
	parallelRows(m, work, func(r0, r1 int) {
		for p := 0; p < k; p++ {
			arow := a.data[p*m : (p+1)*m]
			brow := b.data[p*n : (p+1)*n]
			for i := r0; i < r1; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulTB returns a·bᵀ for a of shape [m,k] and b of shape [n,k],
// producing [m,n] without materializing the transpose. Dense-layer input
// gradients (dy·wᵀ) use this form.
func MatMulTB(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul("MatMulTB", a, b, false, true)
	out := New(m, n)
	parallelRows(m, m*k*n, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.data[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	})
	return out
}

// checkMatMul validates shapes for the three product forms and returns
// (m, k, n): out is [m,n] and k is the contracted dimension.
func checkMatMul(op string, a, b *Tensor, transA, transB bool) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s needs rank-2 tensors, got %v and %v", op, a.shape, b.shape))
	}
	ak0, ak1 := a.shape[0], a.shape[1]
	bk0, bk1 := b.shape[0], b.shape[1]
	if transA {
		m, k = ak1, ak0
	} else {
		m, k = ak0, ak1
	}
	var kb int
	if transB {
		n, kb = bk0, bk1
	} else {
		kb, n = bk0, bk1
	}
	if k != kb {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch: %v × %v", op, a.shape, b.shape))
	}
	return m, k, n
}

// parallelRows runs fn over [0,rows) split into contiguous chunks, one per
// worker, when the estimated work is large enough; otherwise serially.
func parallelRows(rows, work int, fn func(r0, r1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if work < parallelThreshold || workers <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for r0 := 0; r0 < rows; r0 += chunk {
		r1 := r0 + chunk
		if r1 > rows {
			r1 = rows
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			fn(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}
