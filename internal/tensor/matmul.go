package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which the GEMM
// and im2col kernels stay single-threaded: goroutine fan-out costs more
// than it saves on small products.
const parallelThreshold = 1 << 18

// This file holds the reference GEMM kernels: the unblocked i-k-j loops
// the engine shipped with originally. They remain the semantic ground
// truth — the blocked, register-tiled kernels in gemm.go are verified
// against them bit-for-bit (or within reassociation tolerance) by the
// differential tests, and the benchmarks report speedups relative to
// them. Production callers should use MatMul/MatMulTA/MatMulTB, which
// dispatch to the blocked engine.

// MatMulNaive returns a·b with the reference unblocked i-k-j kernel.
func MatMulNaive(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul("MatMulNaive", a, b, false, false)
	out := New(m, n)
	mulRows := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.data[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	parallelRows(m, m*k*n, mulRows)
	return out
}

// MatMulTANaive returns aᵀ·b with the reference outer-product kernel.
func MatMulTANaive(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul("MatMulTANaive", a, b, true, false)
	out := New(m, n)
	work := m * k * n
	if work < parallelThreshold || maxWorkers() == 1 {
		for p := 0; p < k; p++ {
			arow := a.data[p*m : (p+1)*m]
			brow := b.data[p*n : (p+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out.data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return out
	}
	// Parallel path: split output rows among workers; each worker scans
	// all k but only fills its own row range, so no synchronization is
	// needed.
	parallelRows(m, work, func(r0, r1 int) {
		for p := 0; p < k; p++ {
			arow := a.data[p*m : (p+1)*m]
			brow := b.data[p*n : (p+1)*n]
			for i := r0; i < r1; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulTBNaive returns a·bᵀ with the reference row-dot kernel.
func MatMulTBNaive(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul("MatMulTBNaive", a, b, false, true)
	out := New(m, n)
	parallelRows(m, m*k*n, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.data[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	})
	return out
}

// checkMatMul validates shapes for the three product forms and returns
// (m, k, n): out is [m,n] and k is the contracted dimension.
func checkMatMul(op string, a, b *Tensor, transA, transB bool) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s needs rank-2 tensors, got %v and %v", op, a.shape, b.shape))
	}
	ak0, ak1 := a.shape[0], a.shape[1]
	bk0, bk1 := b.shape[0], b.shape[1]
	if transA {
		m, k = ak1, ak0
	} else {
		m, k = ak0, ak1
	}
	var kb int
	if transB {
		n, kb = bk0, bk1
	} else {
		kb, n = bk0, bk1
	}
	if k != kb {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch: %v × %v", op, a.shape, b.shape))
	}
	return m, k, n
}

// forcedWorkers, when positive, overrides GOMAXPROCS for the parallel
// fan-out. Tests set it to exercise the multi-goroutine paths (and the
// race detector) even on single-core runners.
var forcedWorkers int

func maxWorkers() int {
	if forcedWorkers > 0 {
		return forcedWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// serialRows reports whether a kernel over the given rows/work should
// run on the calling goroutine. Hot call sites check it BEFORE building
// the closure they would hand to parallelRows: the closure escapes into
// the goroutine fan-out, so constructing it costs a heap allocation per
// call even when the serial branch inside parallelRows runs — a cost
// that dominated the small-shape training path.
func serialRows(rows, work int) bool {
	return work < parallelThreshold || rows <= 1 || maxWorkers() <= 1
}

// parallelRows runs fn over [0,rows) split into contiguous chunks, one per
// worker, when the estimated work is large enough; otherwise serially.
func parallelRows(rows, work int, fn func(r0, r1 int)) {
	workers := maxWorkers()
	if workers > rows {
		workers = rows
	}
	if work < parallelThreshold || workers <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for r0 := 0; r0 < rows; r0 += chunk {
		r1 := r0 + chunk
		if r1 > rows {
			r1 = rows
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			fn(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}
