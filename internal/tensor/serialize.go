package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Serialization layout (little-endian):
//
//	uint8   rank
//	uint32  dim[rank]
//	float32 data[volume]
//
// The format is fixed-size given a shape, which lets the wire layer
// pre-compute exact message sizes for communication accounting.

// ErrCorrupt is returned when encoded tensor bytes cannot be decoded.
var ErrCorrupt = errors.New("tensor: corrupt encoding")

// maxDecodeElems caps the element count a decoder will allocate,
// protecting servers from hostile or corrupt length prefixes.
const maxDecodeElems = 1 << 28 // 1 GiB of float32

// EncodedSize returns the exact number of bytes AppendTo will write for t.
func (t *Tensor) EncodedSize() int {
	return 1 + 4*len(t.shape) + 4*len(t.data)
}

// EncodedSizeFor returns the encoded size of a tensor with the given
// shape without constructing it.
func EncodedSizeFor(shape ...int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return 1 + 4*len(shape) + 4*n
}

// AppendTo appends t's binary encoding to buf and returns the extended
// slice.
func (t *Tensor) AppendTo(buf []byte) []byte {
	if len(t.shape) > 255 {
		panic(fmt.Sprintf("tensor: rank %d exceeds encodable maximum 255", len(t.shape)))
	}
	buf = append(buf, byte(len(t.shape)))
	var tmp [4]byte
	for _, d := range t.shape {
		binary.LittleEndian.PutUint32(tmp[:], uint32(d))
		buf = append(buf, tmp[:]...)
	}
	for _, v := range t.data {
		binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(v))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// Decode parses one tensor from the front of buf, returning the tensor
// and the remaining bytes.
func Decode(buf []byte) (*Tensor, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("%w: empty buffer", ErrCorrupt)
	}
	rank := int(buf[0])
	buf = buf[1:]
	if len(buf) < 4*rank {
		return nil, nil, fmt.Errorf("%w: truncated shape (rank %d)", ErrCorrupt, rank)
	}
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		d := int(binary.LittleEndian.Uint32(buf[4*i:]))
		if d <= 0 {
			return nil, nil, fmt.Errorf("%w: non-positive dimension %d", ErrCorrupt, d)
		}
		shape[i] = d
		vol *= d
		if vol > maxDecodeElems {
			return nil, nil, fmt.Errorf("%w: volume exceeds decoder cap", ErrCorrupt)
		}
	}
	buf = buf[4*rank:]
	if len(buf) < 4*vol {
		return nil, nil, fmt.Errorf("%w: truncated data (want %d floats, have %d bytes)", ErrCorrupt, vol, len(buf))
	}
	data := make([]float32, vol)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return &Tensor{shape: shape, data: data}, buf[4*vol:], nil
}
