package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Serialization layout (little-endian):
//
//	uint8   rank
//	uint32  dim[rank]
//	float32 data[volume]
//
// The format is fixed-size given a shape, which lets the wire layer
// pre-compute exact message sizes for communication accounting.
//
// Encode and decode are the split protocol's per-message hot path, so
// both convert in place over pre-sized buffers (no per-element append)
// and fan the conversion loop out across cores for large tensors, and
// DecodeInto reuses caller-owned tensor storage so steady-state rounds
// stop allocating.

// ErrCorrupt is returned when encoded tensor bytes cannot be decoded.
var ErrCorrupt = errors.New("tensor: corrupt encoding")

// maxDecodeElems caps the element count a decoder will allocate,
// protecting servers from hostile or corrupt length prefixes.
const maxDecodeElems = 1 << 28 // 1 GiB of float32

// EncodedSize returns the exact number of bytes AppendTo will write for t.
func (t *Tensor) EncodedSize() int {
	return 1 + 4*len(t.shape) + 4*len(t.data)
}

// EncodedSizeFor returns the encoded size of a tensor with the given
// shape without constructing it.
func EncodedSizeFor(shape ...int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return 1 + 4*len(shape) + 4*n
}

// AppendTo appends t's binary encoding to buf and returns the extended
// slice. The data section is written with a chunked parallel loop for
// large tensors.
func (t *Tensor) AppendTo(buf []byte) []byte {
	if len(t.shape) > 255 {
		panic(fmt.Sprintf("tensor: rank %d exceeds encodable maximum 255", len(t.shape)))
	}
	base := len(buf)
	need := t.EncodedSize()
	buf = growBytes(buf, need)
	buf[base] = byte(len(t.shape))
	off := base + 1
	for _, d := range t.shape {
		binary.LittleEndian.PutUint32(buf[off:], uint32(d))
		off += 4
	}
	putFloats(buf[off:off+4*len(t.data)], t.data)
	return buf
}

// growBytes extends buf by n bytes (reallocating only when capacity is
// short) and returns the extended slice. The reallocation doubles so a
// cold multi-tensor encode copies O(log) times, not once per tensor —
// same policy as the compress codecs' growBytes.
func growBytes(buf []byte, n int) []byte {
	if cap(buf)-len(buf) >= n {
		return buf[:len(buf)+n]
	}
	out := make([]byte, len(buf)+n, 2*(len(buf)+n))
	copy(out, buf)
	return out
}

// putFloats writes src as little-endian float32 bits into dst
// (len(dst) must be 4*len(src)), fanning out for large tensors. The
// serial guard runs before the closure is built so small tensors pay no
// per-call allocation (see serialRows).
func putFloats(dst []byte, src []float32) {
	if serialRows(len(src), 4*len(src)) {
		putFloatsRange(dst, src, 0, len(src))
		return
	}
	parallelRows(len(src), 4*len(src), func(i0, i1 int) {
		putFloatsRange(dst, src, i0, i1)
	})
}

func putFloatsRange(dst []byte, src []float32, i0, i1 int) {
	for i := i0; i < i1; i++ {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(src[i]))
	}
}

// getFloats reads little-endian float32 bits from src into dst
// (len(src) must be 4*len(dst)), fanning out for large tensors.
func getFloats(dst []float32, src []byte) {
	if serialRows(len(dst), 4*len(dst)) {
		getFloatsRange(dst, src, 0, len(dst))
		return
	}
	parallelRows(len(dst), 4*len(dst), func(i0, i1 int) {
		getFloatsRange(dst, src, i0, i1)
	})
}

func getFloatsRange(dst []float32, src []byte, i0, i1 int) {
	for i := i0; i < i1; i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// Decode parses one tensor from the front of buf, returning the tensor
// and the remaining bytes.
func Decode(buf []byte) (*Tensor, []byte, error) {
	return DecodeInto(nil, buf)
}

// DecodeInto parses one tensor from the front of buf into dst, reusing
// dst's storage when its capacity suffices (dst may be nil, in which
// case a fresh tensor is allocated — Decode is exactly DecodeInto(nil,
// buf)). It returns the decoded tensor (dst when storage was reused)
// and the remaining bytes. The returned tensor never aliases buf, so
// the caller may recycle the payload buffer immediately after decode.
func DecodeInto(dst *Tensor, buf []byte) (*Tensor, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("%w: empty buffer", ErrCorrupt)
	}
	rank := int(buf[0])
	buf = buf[1:]
	if len(buf) < 4*rank {
		return nil, nil, fmt.Errorf("%w: truncated shape (rank %d)", ErrCorrupt, rank)
	}
	vol := 1
	for i := 0; i < rank; i++ {
		d := int(binary.LittleEndian.Uint32(buf[4*i:]))
		if d <= 0 {
			return nil, nil, fmt.Errorf("%w: non-positive dimension %d", ErrCorrupt, d)
		}
		vol *= d
		if vol > maxDecodeElems {
			return nil, nil, fmt.Errorf("%w: volume exceeds decoder cap", ErrCorrupt)
		}
	}
	if len(buf) < 4*rank+4*vol {
		return nil, nil, fmt.Errorf("%w: truncated data (want %d floats, have %d bytes)", ErrCorrupt, vol, len(buf)-4*rank)
	}
	if dst == nil {
		dst = &Tensor{}
	}
	dst.shape = dst.shape[:0]
	for i := 0; i < rank; i++ {
		dst.shape = append(dst.shape, int(binary.LittleEndian.Uint32(buf[4*i:])))
	}
	buf = buf[4*rank:]
	if cap(dst.data) >= vol {
		dst.data = dst.data[:vol]
	} else {
		dst.data = make([]float32, vol)
	}
	getFloats(dst.data, buf[:4*vol])
	return dst, buf[4*vol:], nil
}
