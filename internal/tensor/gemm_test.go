package tensor

import (
	"math"
	"testing"

	"medsplit/internal/rng"
)

// gemmShapes are the differential-test shapes: degenerate, odd, prime,
// power-of-two, just-off-power-of-two, and conv-like (tall-skinny with a
// small contraction) — chosen to hit every register-tile remainder path
// (m%4, n%4) and every k-panel boundary case.
var gemmShapes = [][3]int{
	{1, 1, 1},
	{2, 3, 4},
	{3, 5, 7},
	{7, 3, 5},
	{13, 17, 19},
	{31, 29, 37},
	{64, 64, 64},
	{65, 63, 66},
	{127, 131, 129},
	{128, 27, 16},
	{5, 300, 4},
}

// withinOneUlp reports whether got and want are bitwise equal or differ
// by at most one unit in the last place — the tolerance the blocked
// kernels are held to against the naive references (they preserve each
// output element's accumulation order, so they should in fact be
// bit-for-bit on finite data).
func withinOneUlp(got, want float32) bool {
	if got == want {
		return true
	}
	gb, wb := math.Float32bits(got), math.Float32bits(want)
	if gb>>31 != wb>>31 {
		return false
	}
	d := int64(gb&0x7fffffff) - int64(wb&0x7fffffff)
	return d == 1 || d == -1
}

func assertUlpEqual(t *testing.T, tag string, got, want *Tensor) {
	t.Helper()
	if !SameShape(got, want) {
		t.Fatalf("%s: shape %v, want %v", tag, got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range gd {
		if !withinOneUlp(gd[i], wd[i]) {
			t.Fatalf("%s: element %d = %v, want %v", tag, i, gd[i], wd[i])
		}
	}
}

// runWorkerModes runs fn once serially and once with a forced 4-way
// fan-out, so the differential tests cover the parallel code paths even
// on single-core runners (and under -race).
func runWorkerModes(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	t.Run("serial", func(t *testing.T) {
		old := forcedWorkers
		forcedWorkers = 1
		defer func() { forcedWorkers = old }()
		fn(t)
	})
	t.Run("workers=4", func(t *testing.T) {
		old := forcedWorkers
		forcedWorkers = 4
		defer func() { forcedWorkers = old }()
		fn(t)
	})
}

func TestBlockedGemmMatchesNaive(t *testing.T) {
	runWorkerModes(t, func(t *testing.T) {
		r := rng.New(42)
		for _, s := range gemmShapes {
			m, k, n := s[0], s[1], s[2]
			a := randTensor(r, m, k)
			b := randTensor(r, k, n)
			at := randTensor(r, k, m)
			bt := randTensor(r, n, k)
			assertUlpEqual(t, "MatMul", MatMul(a, b), MatMulNaive(a, b))
			assertUlpEqual(t, "MatMulTA", MatMulTA(at, b), MatMulTANaive(at, b))
			assertUlpEqual(t, "MatMulTB", MatMulTB(a, bt), MatMulTBNaive(a, bt))
		}
	})
}

// TestBlockedGemmLargeParallel crosses the parallelThreshold so the real
// goroutine fan-out (not just the forced one) is exercised.
func TestBlockedGemmLargeParallel(t *testing.T) {
	old := forcedWorkers
	forcedWorkers = 4
	defer func() { forcedWorkers = old }()
	r := rng.New(7)
	m, k, n := 97, 83, 101 // > parallelThreshold work, prime dims
	a := randTensor(r, m, k)
	b := randTensor(r, k, n)
	at := randTensor(r, k, m)
	bt := randTensor(r, n, k)
	assertUlpEqual(t, "MatMul", MatMul(a, b), MatMulNaive(a, b))
	assertUlpEqual(t, "MatMulTA", MatMulTA(at, b), MatMulTANaive(at, b))
	assertUlpEqual(t, "MatMulTB", MatMulTB(a, bt), MatMulTBNaive(a, bt))
}

// TestGemmIntoOverwritesDirtyBuffers verifies the Into variants fully
// overwrite pooled storage with stale contents.
func TestGemmIntoOverwritesDirtyBuffers(t *testing.T) {
	r := rng.New(3)
	for _, s := range [][3]int{{5, 7, 9}, {8, 16, 12}, {13, 4, 3}} {
		m, k, n := s[0], s[1], s[2]
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		at := randTensor(r, k, m)
		bt := randTensor(r, n, k)

		dirty := func() *Tensor { return Full(999, m, n) }
		got := MatMulInto(dirty(), a, b)
		assertUlpEqual(t, "MatMulInto", got, MatMulNaive(a, b))
		got = MatMulTAInto(dirty(), at, b)
		assertUlpEqual(t, "MatMulTAInto", got, MatMulTANaive(at, b))
		got = MatMulTBInto(dirty(), a, bt)
		assertUlpEqual(t, "MatMulTBInto", got, MatMulTBNaive(a, bt))
	}
}

func TestMatMulTAAccAccumulates(t *testing.T) {
	r := rng.New(9)
	at := randTensor(r, 11, 6)
	b := randTensor(r, 11, 8)
	base := randTensor(r, 6, 8)
	want := Add(base, MatMulTANaive(at, b))
	got := MatMulTAAcc(base.Clone(), at, b)
	if !AllClose(got, want, 1e-5) {
		t.Fatalf("MatMulTAAcc mismatch")
	}
}

func TestSumRowsAcc(t *testing.T) {
	r := rng.New(11)
	x := randTensor(r, 9, 5)
	base := randTensor(r, 5)
	want := Add(base, SumRows(x))
	got := SumRowsAcc(base.Clone(), x)
	if !AllClose(got, want, 1e-6) {
		t.Fatalf("SumRowsAcc = %v, want %v", got, want)
	}
}

func TestPoolGetZeroedAfterDirtyPut(t *testing.T) {
	var p Pool
	d := p.GetDirty(4, 8)
	for i := range d.Data() {
		d.Data()[i] = 123
	}
	p.Put(d)
	z := p.Get(4, 8)
	for i, v := range z.Data() {
		if v != 0 {
			t.Fatalf("pooled Get element %d = %v, want 0", i, v)
		}
	}
	p.Put(z)
	// A different shape of the same volume class must still work.
	q := p.Get(31)
	if q.Size() != 31 {
		t.Fatalf("pooled Get size %d, want 31", q.Size())
	}
}

func TestEnsureShapeReusesCapacity(t *testing.T) {
	t1 := New(8, 8)
	d1 := t1.Data()
	t2 := EnsureShape(t1, 4, 6)
	if t2.Dim(0) != 4 || t2.Dim(1) != 6 {
		t.Fatalf("EnsureShape shape %v", t2.Shape())
	}
	if &t2.Data()[0] != &d1[0] {
		t.Fatal("EnsureShape reallocated despite sufficient capacity")
	}
	t3 := EnsureShape(t2, 100, 100)
	if t3.Size() != 10000 {
		t.Fatalf("EnsureShape grow size %d", t3.Size())
	}
	if EnsureShape(nil, 2, 2).Size() != 4 {
		t.Fatal("EnsureShape(nil) failed")
	}
}

func TestConcatDim0IntoMatchesConcatDim0(t *testing.T) {
	r := rng.New(5)
	a := randTensor(r, 3, 4, 2)
	b := randTensor(r, 2, 4, 2)
	c := randTensor(r, 5, 4, 2)
	want := ConcatDim0(a, b, c)
	dst := Full(999, 10, 4, 2)
	got := ConcatDim0Into(dst, a, b, c)
	assertUlpEqual(t, "ConcatDim0Into", got, want)
}

// TestGemmDstShapePanics pins the Into-variant shape validation.
func TestGemmDstShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto with wrong dst shape did not panic")
		}
	}()
	a := New(2, 3)
	b := New(3, 4)
	MatMulInto(New(2, 5), a, b)
}
