package tensor

import (
	"fmt"

	"medsplit/internal/tensor/kernels"
)

// This file is the production GEMM engine: cache-blocked, register-tiled
// kernels behind MatMul, MatMulTA and MatMulTB, plus the Into/Acc
// variants the layers use to reuse output buffers across training
// rounds. Design notes:
//
//   - The contraction (k) dimension is processed in gemmKC-sized panels
//     so the b panel a row group sweeps stays cache-resident instead of
//     re-streaming all of b from memory for every block of output rows.
//   - Output rows are produced four at a time (register tiling): each
//     loaded b value feeds four independent multiply-adds, quartering
//     memory traffic on b and giving the CPU independent dependency
//     chains to overlap.
//   - MatMulTA packs panels of aᵀ into pooled scratch first: a's layout
//     is column-strided for that product, and packing converts the
//     strided reads into the same row-streaming kernel MatMul uses.
//   - Per-output-element accumulation order over k is identical to the
//     naive reference kernels (k panels are visited in order and each
//     element has a single accumulation chain), so results match the
//     reference bit-for-bit on finite inputs; the differential tests
//     assert exactly that.
//
// Work is still fanned out with parallelRows, chunked on row blocks.

// gemmKC is the contraction-dimension panel size. 128 float32 rows of a
// [kc, n] b panel occupy 128·n·4 bytes — L2-resident for every n this
// codebase produces (n ≤ 4096). It mirrors kernels.KC so the packing
// scratch sized here matches the panels the kernel layer blocks on.
const gemmKC = kernels.KC

// MatMul returns the matrix product a·b for a of shape [m,k] and b of
// shape [k,n] using the blocked engine.
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := checkMatMul("MatMul", a, b, false, false)
	out := New(m, n)
	gemmNN(out, a, b)
	return out
}

// MatMulInto computes a·b into dst (shape [m,n]), overwriting it, and
// returns dst. dst may be dirty pooled storage; every element is written.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, _, n := checkMatMul("MatMulInto", a, b, false, false)
	checkGemmDst("MatMulInto", dst, m, n)
	gemmNN(dst, a, b)
	return dst
}

// MatMulTA returns aᵀ·b for a of shape [k,m] and b of shape [k,n],
// producing [m,n] without materializing the transpose. Dense-layer weight
// gradients (xᵀ·dy) use this form.
func MatMulTA(a, b *Tensor) *Tensor {
	m, _, n := checkMatMul("MatMulTA", a, b, true, false)
	out := New(m, n)
	gemmTA(out, a, b, false)
	return out
}

// MatMulTAInto computes aᵀ·b into dst (shape [m,n]), overwriting it, and
// returns dst.
func MatMulTAInto(dst, a, b *Tensor) *Tensor {
	m, _, n := checkMatMul("MatMulTAInto", a, b, true, false)
	checkGemmDst("MatMulTAInto", dst, m, n)
	gemmTA(dst, a, b, false)
	return dst
}

// MatMulTAAcc accumulates dst += aᵀ·b. It is the fused form of the
// gradient update pattern G.AddInPlace(MatMulTA(x, dy)) and avoids the
// temporary product tensor entirely.
func MatMulTAAcc(dst, a, b *Tensor) *Tensor {
	m, _, n := checkMatMul("MatMulTAAcc", a, b, true, false)
	checkGemmDst("MatMulTAAcc", dst, m, n)
	gemmTA(dst, a, b, true)
	return dst
}

// MatMulTB returns a·bᵀ for a of shape [m,k] and b of shape [n,k],
// producing [m,n] without materializing the transpose. Dense-layer input
// gradients (dy·wᵀ) use this form.
func MatMulTB(a, b *Tensor) *Tensor {
	m, _, n := checkMatMul("MatMulTB", a, b, false, true)
	out := New(m, n)
	gemmTB(out, a, b)
	return out
}

// MatMulTBInto computes a·bᵀ into dst (shape [m,n]), overwriting it, and
// returns dst.
func MatMulTBInto(dst, a, b *Tensor) *Tensor {
	m, _, n := checkMatMul("MatMulTBInto", a, b, false, true)
	checkGemmDst("MatMulTBInto", dst, m, n)
	gemmTB(dst, a, b)
	return dst
}

func checkGemmDst(op string, dst *Tensor, m, n int) {
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want [%d,%d]", op, dst.shape, m, n))
	}
}

// gemmNN is the blocked kernel for out = a·b (no transposes). With
// vector kernels active the panel kernel runs directly over b — its
// assembly vectorizes across b's columns, so the operand is already in
// the layout it wants and the transpose pass disappears. On the scalar
// fallback, row counts that amortize it transpose b once into pooled
// scratch so the register-tiled dot kernel (gemmTBPanel) does the
// O(m·k·n) work with both operands k-contiguous; small row counts use
// the panel kernel, which needs no scratch.
func gemmNN(out, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	if kernels.Active() || m < 8 {
		if serialRows(m, m*k*n) {
			kernels.GemmPanel(out.data, a.data, b.data, 0, m, k, n, 0, false)
		} else {
			parallelRows(m, m*k*n, func(r0, r1 int) {
				kernels.GemmPanel(out.data, a.data, b.data, r0, r1, k, n, 0, false)
			})
		}
		return
	}
	btd, bd := Default.GetBuf(n*k), b.data
	if serialRows(n, 2*n*k) {
		transposeRange(btd, bd, k, n, 0, n)
	} else {
		parallelRows(n, 2*n*k, func(c0, c1 int) {
			transposeRange(btd, bd, k, n, c0, c1)
		})
	}
	if serialRows(m, m*k*n) {
		gemmTBPanel(out.data, a.data, btd, 0, m, k, n)
	} else {
		parallelRows(m, m*k*n, func(r0, r1 int) {
			gemmTBPanel(out.data, a.data, btd, r0, r1, k, n)
		})
	}
	Default.PutBuf(btd)
}

// transposeRange writes columns [c0,c1) of the [k,n] matrix bd into the
// corresponding k-contiguous rows of btd.
func transposeRange(btd, bd []float32, k, n, c0, c1 int) {
	for c := c0; c < c1; c++ {
		row := btd[c*k : c*k+k]
		for p := range row {
			row[p] = bd[p*n+c]
		}
	}
}

// gemmTA computes out = aᵀ·b (a is [k,m], b is [k,n]) by packing panels
// of aᵀ into pooled scratch, then running the gemmNN row kernel over the
// packed rows. Packing costs O(m·k) against O(m·k·n) compute and turns
// a's stride-m column walks into sequential streams.
func gemmTA(out, a, b *Tensor, acc bool) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	if serialRows(m, m*k*n) {
		gemmTARange(out.data, a.data, b.data, m, k, n, 0, m, acc)
		return
	}
	parallelRows(m, m*k*n, func(r0, r1 int) {
		gemmTARange(out.data, a.data, b.data, m, k, n, r0, r1, acc)
	})
}

// gemmTARange computes out rows [r0,r1) of an aᵀ·b product by packing
// gemmKC-wide panels of aᵀ into pooled scratch and running the row
// kernel over them.
func gemmTARange(od, ad, bd []float32, m, k, n, r0, r1 int, acc bool) {
	rows := r1 - r0
	pk := Default.GetBuf(rows * min(gemmKC, k))
	for p0 := 0; p0 < k; p0 += gemmKC {
		p1 := min(p0+gemmKC, k)
		kb := p1 - p0
		for i := r0; i < r1; i++ {
			row := pk[(i-r0)*kb : (i-r0)*kb+kb]
			for p := p0; p < p1; p++ {
				row[p-p0] = ad[p*m+i]
			}
		}
		// One packed panel is a [rows, kb] a-block starting at
		// contraction offset p0: run the row kernel with b shifted to
		// the same offset, accumulating for every panel after the
		// first. The panel is already kc-sized, so the single-panel
		// kernel entry applies directly (lda=kb, row i at (i-r0)·kb).
		kernels.GemmPanelK(od, pk, bd[p0*n:], r0, r1, kb, n, kb, -r0*kb, acc || p0 > 0)
	}
	Default.PutBuf(pk)
}

// gemmTB computes out = a·bᵀ (a is [m,k], b is [n,k]). With vector
// kernels active, bᵀ is materialized once into pooled scratch — an
// O(k·n) pass — so the O(m·k·n) work runs through the vectorized panel
// kernel; each output element still accumulates sequentially over p,
// so the result stays bit-identical to the dot-product reference. The
// scalar fallback keeps the 4×4 register-tiled dot kernel: sixteen
// scalar accumulators per tile give every loaded a and b value four
// uses, and both operands are k-contiguous without packing.
func gemmTB(out, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	if kernels.Active() && m >= 2 {
		// b is [n,k]; the panel kernel wants [k,n]. transposeRange
		// reads column c of a [k,n] matrix into row c of the scratch —
		// exactly bᵀᵀ — so with roles swapped (treating b as the [n,k]
		// source) it writes bt[p*n+c] = b[c*k+p].
		btd, bd := Default.GetBuf(n*k), b.data
		if serialRows(k, 2*n*k) {
			transposeRange(btd, bd, n, k, 0, k)
		} else {
			parallelRows(k, 2*n*k, func(c0, c1 int) {
				transposeRange(btd, bd, n, k, c0, c1)
			})
		}
		if serialRows(m, m*k*n) {
			kernels.GemmPanel(out.data, a.data, btd, 0, m, k, n, 0, false)
		} else {
			parallelRows(m, m*k*n, func(r0, r1 int) {
				kernels.GemmPanel(out.data, a.data, btd, r0, r1, k, n, 0, false)
			})
		}
		Default.PutBuf(btd)
		return
	}
	if serialRows(m, m*k*n) {
		gemmTBPanel(out.data, a.data, b.data, 0, m, k, n)
		return
	}
	parallelRows(m, m*k*n, func(r0, r1 int) {
		gemmTBPanel(out.data, a.data, b.data, r0, r1, k, n)
	})
}

// gemmTBPanel computes out rows [r0,r1) of a·bᵀ where both a and b are
// stored k-contiguous ([m,k] and [n,k]).
func gemmTBPanel(od, ad, bd []float32, r0, r1, k, n int) {
	{
		i := r0
		for ; i+4 <= r1; i += 4 {
			a0 := ad[(i+0)*k : (i+0)*k+k]
			a1 := ad[(i+1)*k : (i+1)*k+k]
			a2 := ad[(i+2)*k : (i+2)*k+k]
			a3 := ad[(i+3)*k : (i+3)*k+k]
			a1 = a1[:len(a0)]
			a2 = a2[:len(a0)]
			a3 = a3[:len(a0)]
			j := 0
			// 4×2 register tile: eight accumulators (plus the six
			// operand temporaries) stay within the sixteen SSE
			// registers, where a 4×4 tile spills to the stack.
			for ; j+2 <= n; j += 2 {
				b0 := bd[(j+0)*k : (j+0)*k+k]
				b1 := bd[(j+1)*k : (j+1)*k+k]
				b0 = b0[:len(a0)]
				b1 = b1[:len(a0)]
				var c00, c01 float32
				var c10, c11 float32
				var c20, c21 float32
				var c30, c31 float32
				for p, av0 := range a0 {
					av1, av2, av3 := a1[p], a2[p], a3[p]
					bv0, bv1 := b0[p], b1[p]
					c00 += av0 * bv0
					c01 += av0 * bv1
					c10 += av1 * bv0
					c11 += av1 * bv1
					c20 += av2 * bv0
					c21 += av2 * bv1
					c30 += av3 * bv0
					c31 += av3 * bv1
				}
				o0 := od[(i+0)*n+j:]
				o0[0], o0[1] = c00, c01
				o1 := od[(i+1)*n+j:]
				o1[0], o1[1] = c10, c11
				o2 := od[(i+2)*n+j:]
				o2[0], o2[1] = c20, c21
				o3 := od[(i+3)*n+j:]
				o3[0], o3[1] = c30, c31
			}
			for ; j < n; j++ {
				brow := bd[j*k : j*k+k]
				brow = brow[:len(a0)]
				var s0, s1, s2, s3 float32
				for p, bv := range brow {
					s0 += a0[p] * bv
					s1 += a1[p] * bv
					s2 += a2[p] * bv
					s3 += a3[p] * bv
				}
				od[(i+0)*n+j] = s0
				od[(i+1)*n+j] = s1
				od[(i+2)*n+j] = s2
				od[(i+3)*n+j] = s3
			}
		}
		for ; i < r1; i++ {
			arow := ad[i*k : i*k+k]
			orow := od[i*n : i*n+n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : j*k+k]
				brow = brow[:len(arow)]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	}
}

func zeroFloats(s []float32) {
	for i := range s {
		s[i] = 0
	}
}
