//go:build amd64 && !purego

package kernels

// AVX2 dispatch: feature bits are probed once at init with raw
// CPUID/XGETBV (no external cpu-feature dependency). The GEMM, dot,
// axpy, int8 and dequantize kernels need AVX2 plus OS-enabled YMM
// state; the f16 converters additionally need F16C. Every assembly
// routine ends in VZEROUPPER so mixed SSE code pays no transition
// penalty.

const asmName = "avx2"

// Vector granularities: each *Vec routine consumes its stride's worth
// of elements per loop iteration, callers pass nv rounded down to a
// multiple and handle the tail in Go.
const (
	gemmJ      = 8  // gemm kernels vectorize 8 output columns
	dotStride  = 32 // dotVec: four 8-lane accumulators per iteration
	axpyStride = 8
	i8Stride   = 32
	f16Stride  = 8
	dq8Stride  = 8
)

var (
	hasASM    bool
	hasF16ASM bool
	hasI8ASM  bool
	hasDQ8ASM bool
)

func init() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave, avx, f16c = 1 << 27, 1 << 28, 1 << 29
	if c1&osxsave == 0 || c1&avx == 0 {
		return
	}
	// XCR0 bits 1|2: OS preserves XMM and YMM state across context
	// switches. Without them AVX registers are not usable.
	xlo, _ := xgetbv()
	if xlo&0x6 != 0x6 {
		return
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	hasASM = b7&avx2 != 0
	hasF16ASM = hasASM && c1&f16c != 0
	hasI8ASM = hasASM
	hasDQ8ASM = hasASM
}

// cpuid and xgetbv are implemented in cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// Assembly microkernels (kernels_amd64.s). All take counts that are
// multiples of their stride and carry no alignment requirements.

//go:noescape
func gemmPanel4(o0, o1, o2, o3, a0, a1, a2, a3, b *float32, kb, n, nv int)

//go:noescape
func gemmPanel1(o, a, b *float32, kb, n, nv int)

//go:noescape
func dotVec(a, b *float32, nv int) float32

//go:noescape
func axpyVec(alpha float32, x, y *float32, nv int)

//go:noescape
func dotI8Vec(a, b *int8, nv int) int32

//go:noescape
func f16ToF32Vec(dst *float32, src *uint16, nv int)

//go:noescape
func f32ToF16Vec(dst *uint16, src *float32, nv int)

//go:noescape
func dequant8Vec(dst *float32, src *byte, lo, step float32, nv int)
