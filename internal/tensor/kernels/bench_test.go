package kernels

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel-level benchmarks, one per microkernel, each with a dispatch
// arm and a forced-generic arm so the speedup is visible in one run.
// GFLOPS (or GB/s for the converters) is attached as a custom metric —
// cmd/benchjson carries it into the committed baselines.

func benchArms(b *testing.B, fn func(b *testing.B)) {
	b.Run(Name(), fn)
	if Active() {
		b.Run("generic", func(b *testing.B) {
			ForceGeneric(true)
			defer ForceGeneric(false)
			fn(b)
		})
	}
}

func BenchmarkKernelGemmPanel(b *testing.B) {
	for _, size := range []int{64, 256} {
		m, k, n := size, size, size
		b.Run(fmt.Sprintf("%d", size), func(b *testing.B) {
			benchArms(b, func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				a := randSlice(rng, m*k)
				bb := randSlice(rng, k*n)
				out := make([]float32, m*n)
				b.SetBytes(int64(4 * (m*k + k*n + m*n)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					GemmPanel(out, a, bb, 0, m, k, n, 0, false)
				}
				flops := 2 * int64(m) * int64(k) * int64(n)
				b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e9, "GFLOPS")
			})
		})
	}
}

func BenchmarkKernelDot(b *testing.B) {
	const n = 4096
	benchArms(b, func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		x := randSlice(rng, n)
		y := randSlice(rng, n)
		b.SetBytes(8 * n)
		b.ResetTimer()
		var s float32
		for i := 0; i < b.N; i++ {
			s += Dot(x, y)
		}
		sink = s
		b.ReportMetric(float64(2*n*b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
	})
}

func BenchmarkKernelAxpy(b *testing.B) {
	const n = 4096
	benchArms(b, func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		x := randSlice(rng, n)
		y := randSlice(rng, n)
		b.SetBytes(12 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Axpy(0.001, x, y)
		}
		b.ReportMetric(float64(2*n*b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
	})
}

func BenchmarkKernelDotI8(b *testing.B) {
	const n = 4096
	benchArms(b, func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		x := make([]int8, n)
		y := make([]int8, n)
		for i := range x {
			x[i] = int8(rng.Intn(256) - 128)
			y[i] = int8(rng.Intn(256) - 128)
		}
		b.SetBytes(2 * n)
		b.ResetTimer()
		var s int32
		for i := 0; i < b.N; i++ {
			s += DotI8(x, y)
		}
		sinkI = s
		b.ReportMetric(float64(2*n*b.N)/b.Elapsed().Seconds()/1e9, "GOPS")
	})
}

func BenchmarkKernelF16(b *testing.B) {
	const n = 1 << 16
	b.Run("narrow", func(b *testing.B) {
		benchArms(b, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			src := randSlice(rng, n)
			dst := make([]uint16, n)
			b.SetBytes(6 * n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				F32ToF16(dst, src)
			}
		})
	})
	b.Run("widen", func(b *testing.B) {
		benchArms(b, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			f := randSlice(rng, n)
			src := make([]uint16, n)
			F32ToF16(src, f)
			dst := make([]float32, n)
			b.SetBytes(6 * n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				F16ToF32(dst, src)
			}
		})
	})
}

func BenchmarkKernelDequant8(b *testing.B) {
	const n = 1 << 16
	benchArms(b, func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		src := make([]byte, n)
		rng.Read(src)
		dst := make([]float32, n)
		b.SetBytes(5 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Dequantize8(dst, src, -1, 0.0078)
		}
	})
}

var (
	sink  float32
	sinkI int32
)
