//go:build amd64 && !purego

#include "textflag.h"

// AVX2 microkernels. Two rules keep these bit-identical to the pure-Go
// reference (see the package doc):
//
//   - GEMM and axpy use separate VMULPS/VADDPS — never FMA — because gc
//     does not fuse a*b+c on amd64, and a fused kernel would round
//     differently from the scalar reference.
//   - The GEMM kernels vectorize across output columns only: each
//     output element's accumulation over the k dimension stays a single
//     sequential chain, in the same order the scalar kernel walks it.
//
// All loads and stores are unaligned-tolerant (VMOVUPS and friends);
// tensor.Pool hands out 32-byte-aligned backing so the common case
// never splits a cache line. Every routine ends in VZEROUPPER to avoid
// AVX-SSE transition penalties in surrounding Go code.

// func gemmPanel4(o0, o1, o2, o3, a0, a1, a2, a3, b *float32, kb, n, nv int)
//
// For r in 0..3 and j in [0, nv): o_r[j] += Σ_{p<kb} a_r[p]·b[p·n+j].
// nv is a positive multiple of 8; kb ≥ 1. Eight-column strips: per p
// step one b row segment is loaded once and feeds all four rows'
// broadcast multiply-adds.
TEXT ·gemmPanel4(SB), NOSPLIT, $0-96
	MOVQ b+64(FP), R14
	MOVQ n+80(FP), DX
	SHLQ $2, DX              // b row stride in bytes
	MOVQ nv+88(FP), BX       // columns remaining
	XORQ SI, SI              // current column offset in bytes

gp4_jloop:
	MOVQ o0+0(FP), AX
	VMOVUPS (AX)(SI*1), Y0
	MOVQ o1+8(FP), AX
	VMOVUPS (AX)(SI*1), Y1
	MOVQ o2+16(FP), AX
	VMOVUPS (AX)(SI*1), Y2
	MOVQ o3+24(FP), AX
	VMOVUPS (AX)(SI*1), Y3
	MOVQ a0+32(FP), R8
	MOVQ a1+40(FP), R9
	MOVQ a2+48(FP), R10
	MOVQ a3+56(FP), R11
	LEAQ (R14)(SI*1), R12    // &b[j]
	MOVQ kb+72(FP), CX

gp4_ploop:
	VMOVUPS (R12), Y4        // b[p*n+j : +8]
	VBROADCASTSS (R8), Y5
	VMULPS Y4, Y5, Y5
	VADDPS Y5, Y0, Y0
	VBROADCASTSS (R9), Y5
	VMULPS Y4, Y5, Y5
	VADDPS Y5, Y1, Y1
	VBROADCASTSS (R10), Y5
	VMULPS Y4, Y5, Y5
	VADDPS Y5, Y2, Y2
	VBROADCASTSS (R11), Y5
	VMULPS Y4, Y5, Y5
	VADDPS Y5, Y3, Y3
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	ADDQ DX, R12
	DECQ CX
	JNZ  gp4_ploop

	MOVQ o0+0(FP), AX
	VMOVUPS Y0, (AX)(SI*1)
	MOVQ o1+8(FP), AX
	VMOVUPS Y1, (AX)(SI*1)
	MOVQ o2+16(FP), AX
	VMOVUPS Y2, (AX)(SI*1)
	MOVQ o3+24(FP), AX
	VMOVUPS Y3, (AX)(SI*1)
	ADDQ $32, SI
	SUBQ $8, BX
	JNZ  gp4_jloop

	VZEROUPPER
	RET

// func gemmPanel1(o, a, b *float32, kb, n, nv int)
//
// Single-row variant of gemmPanel4 for the <4 remainder rows.
TEXT ·gemmPanel1(SB), NOSPLIT, $0-48
	MOVQ b+16(FP), R14
	MOVQ n+32(FP), DX
	SHLQ $2, DX
	MOVQ nv+40(FP), BX
	XORQ SI, SI

gp1_jloop:
	MOVQ o+0(FP), AX
	VMOVUPS (AX)(SI*1), Y0
	MOVQ a+8(FP), R8
	LEAQ (R14)(SI*1), R12
	MOVQ kb+24(FP), CX

gp1_ploop:
	VMOVUPS (R12), Y4
	VBROADCASTSS (R8), Y5
	VMULPS Y4, Y5, Y5
	VADDPS Y5, Y0, Y0
	ADDQ $4, R8
	ADDQ DX, R12
	DECQ CX
	JNZ  gp1_ploop

	MOVQ o+0(FP), AX
	VMOVUPS Y0, (AX)(SI*1)
	ADDQ $32, SI
	SUBQ $8, BX
	JNZ  gp1_jloop

	VZEROUPPER
	RET

// func dotVec(a, b *float32, nv int) float32
//
// Four independent 8-lane accumulators (reassociation is part of Dot's
// contract), reduced with adds and horizontal adds at the end.
// nv is a positive multiple of 32.
TEXT ·dotVec(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ nv+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

dot_loop:
	VMOVUPS (SI), Y4
	VMOVUPS (DI), Y5
	VMULPS Y5, Y4, Y4
	VADDPS Y4, Y0, Y0
	VMOVUPS 32(SI), Y4
	VMOVUPS 32(DI), Y5
	VMULPS Y5, Y4, Y4
	VADDPS Y4, Y1, Y1
	VMOVUPS 64(SI), Y4
	VMOVUPS 64(DI), Y5
	VMULPS Y5, Y4, Y4
	VADDPS Y4, Y2, Y2
	VMOVUPS 96(SI), Y4
	VMOVUPS 96(DI), Y5
	VMULPS Y5, Y4, Y4
	VADDPS Y4, Y3, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $32, CX
	JNZ  dot_loop

	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func axpyVec(alpha float32, x, y *float32, nv int)
//
// y[i] += alpha·x[i]. Separate multiply and add, matching gc's scalar
// codegen on amd64. nv is a positive multiple of 8.
TEXT ·axpyVec(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ nv+24(FP), CX

axpy_loop:
	VMOVUPS (SI), Y1
	VMULPS Y0, Y1, Y1
	VMOVUPS (DI), Y2
	VADDPS Y1, Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  axpy_loop

	VZEROUPPER
	RET

// func dotI8Vec(a, b *int8, nv int) int32
//
// Widen 16 int8 lanes to int16, multiply-accumulate adjacent pairs
// into int32 (VPMADDWD: |products| ≤ 2·127² so the int16→int32 pair
// sum cannot overflow), and reduce exactly. nv is a positive multiple
// of 32.
TEXT ·dotI8Vec(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ nv+16(FP), CX
	VPXOR Y0, Y0, Y0

di8_loop:
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD Y2, Y1, Y1
	VPADDD Y1, Y0, Y0
	VPMOVSXBW 16(SI), Y1
	VPMOVSXBW 16(DI), Y2
	VPMADDWD Y2, Y1, Y1
	VPADDD Y1, Y0, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $32, CX
	JNZ  di8_loop

	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0xEE, X0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0x55, X0, X1
	VPADDD X1, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func f16ToF32Vec(dst *float32, src *uint16, nv int)
//
// Hardware F16C widening; exact. nv is a positive multiple of 8.
TEXT ·f16ToF32Vec(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ nv+16(FP), CX

f16u_loop:
	VCVTPH2PS (SI), Y0
	VMOVUPS Y0, (DI)
	ADDQ $16, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  f16u_loop

	VZEROUPPER
	RET

// func f32ToF16Vec(dst *uint16, src *float32, nv int)
//
// Hardware F16C narrowing with round-to-nearest-even (imm8=0), the
// mode the scalar converter reproduces. nv is a positive multiple of 8.
TEXT ·f32ToF16Vec(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ nv+16(FP), CX

f16n_loop:
	VMOVUPS (SI), Y0
	VCVTPS2PH $0, Y0, (DI)
	ADDQ $32, SI
	ADDQ $16, DI
	SUBQ $8, CX
	JNZ  f16n_loop

	VZEROUPPER
	RET

// func dequant8Vec(dst *float32, src *byte, lo, step float32, nv int)
//
// dst[i] = lo + float32(src[i])·step: zero-extend 8 codes to int32,
// convert (exact), multiply then add — the scalar evaluation order.
// nv is a positive multiple of 8.
TEXT ·dequant8Vec(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	VBROADCASTSS lo+16(FP), Y1
	VBROADCASTSS step+20(FP), Y2
	MOVQ nv+24(FP), CX

dq8_loop:
	VPMOVZXBD (SI), Y0
	VCVTDQ2PS Y0, Y0
	VMULPS Y2, Y0, Y0
	VADDPS Y1, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ $8, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  dq8_loop

	VZEROUPPER
	RET
