//go:build purego || (!amd64 && !arm64)

package kernels

// Pure-Go build: no assembly is linked. hasASM is a compile-time false
// so the dispatch branches fold away and every kernel runs the generic
// reference; the stubs below exist only to satisfy the call sites and
// are unreachable.

const asmName = "generic"

const (
	gemmJ      = 1
	dotStride  = 1
	axpyStride = 1
	i8Stride   = 1
	f16Stride  = 1
	dq8Stride  = 1
)

const (
	hasASM    = false
	hasF16ASM = false
	hasI8ASM  = false
	hasDQ8ASM = false
)

func gemmPanelKASM(out, arows, b []float32, r0, r1, k, n, lda, aoff int, acc bool) {
	panic("kernels: no assembly in this build")
}

func dotVec(a, b *float32, nv int) float32 { panic("kernels: no assembly in this build") }

func axpyVec(alpha float32, x, y *float32, nv int) { panic("kernels: no assembly in this build") }

func dotI8Vec(a, b *int8, nv int) int32 { panic("kernels: no assembly in this build") }

func f16ToF32Vec(dst *float32, src *uint16, nv int) { panic("kernels: no assembly in this build") }

func f32ToF16Vec(dst *uint16, src *float32, nv int) { panic("kernels: no assembly in this build") }

func dequant8Vec(dst *float32, src *byte, lo, step float32, nv int) {
	panic("kernels: no assembly in this build")
}
