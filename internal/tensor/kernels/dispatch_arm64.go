//go:build arm64 && !purego

package kernels

// NEON dispatch: AdvSIMD is an architectural requirement of AArch64,
// so there is nothing to probe — the GEMM, dot and axpy kernels are
// always available. The int8-dot, dequantize and f16 conversions stay
// on the generic scalar paths for now: the Go assembler has no
// mnemonics for the signed-widen (SSHLL), int→float (UCVTF) and f16
// (FCVTL/FCVTN) vector conversions they would need, and hand-encoded
// instruction words cannot be differentially tested on amd64-only CI.
//
// FMA note: gc compiles the generic reference's `u += a*b` to FMADD on
// arm64, so the NEON kernels use VFMLA — one fused rounding per
// accumulation step on both paths keeps the dispatch variants
// bit-identical on this architecture, mirroring how the amd64 kernels
// use separate VMULPS+VADDPS to match gc's unfused amd64 scalar code.

const asmName = "neon"

// Vector granularities (128-bit NEON vectors = 4 float32 lanes). The
// f16/i8/dq8 strides are never consulted — their has*ASM gates are
// compile-time false — but must exist for kernels.go to build.
const (
	gemmJ      = 4  // gemm kernels vectorize 4 output columns
	dotStride  = 16 // dotVec: four 4-lane accumulators per iteration
	axpyStride = 4
	i8Stride   = 1
	f16Stride  = 1
	dq8Stride  = 1
)

const (
	hasASM    = true
	hasF16ASM = false
	hasI8ASM  = false
	hasDQ8ASM = false
)

// Assembly microkernels (kernels_arm64.s). All take counts that are
// multiples of their stride and carry no alignment requirements.

//go:noescape
func gemmPanel4(o0, o1, o2, o3, a0, a1, a2, a3, b *float32, kb, n, nv int)

//go:noescape
func gemmPanel1(o, a, b *float32, kb, n, nv int)

//go:noescape
func dotVec(a, b *float32, nv int) float32

//go:noescape
func axpyVec(alpha float32, x, y *float32, nv int)

// Unreachable on arm64 (their has*ASM gates are compile-time false);
// present only to satisfy the shared call sites.

func dotI8Vec(a, b *int8, nv int) int32 { panic("kernels: no int8 assembly on arm64") }

func f16ToF32Vec(dst *float32, src *uint16, nv int) { panic("kernels: no f16 assembly on arm64") }

func f32ToF16Vec(dst *uint16, src *float32, nv int) { panic("kernels: no f16 assembly on arm64") }

func dequant8Vec(dst *float32, src *byte, lo, step float32, nv int) {
	panic("kernels: no dequantize assembly on arm64")
}
