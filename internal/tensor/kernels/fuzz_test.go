package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzGEMMKernels drives random (including odd, prime, and sub-vector)
// shapes with random leading dimensions through every dispatch variant
// reachable on the host — the architecture assembly and the forced
// generic fallback — and holds both bit-identical to the sequential
// naive reference. The lda/aoff padding deliberately misaligns the row
// bases so vector loads straddle cache lines.
func FuzzGEMMKernels(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), int64(1), false)
	f.Add(uint8(3), uint8(7), uint8(5), uint8(1), int64(2), true)
	f.Add(uint8(4), uint8(129), uint8(8), uint8(0), int64(3), false)
	f.Add(uint8(13), uint8(31), uint8(17), uint8(3), int64(4), true)
	f.Add(uint8(9), uint8(255), uint8(23), uint8(5), int64(5), false)
	f.Add(uint8(32), uint8(64), uint8(33), uint8(2), int64(6), false)

	f.Fuzz(func(t *testing.T, m8, k8, n8, pad8 uint8, seed int64, acc bool) {
		m := int(m8)%48 + 1
		k := int(k8) + 1
		n := int(n8)%96 + 1
		pad := int(pad8) % 8
		lda := k + pad
		aoff := pad / 2

		rng := rand.New(rand.NewSource(seed))
		a := randSlice(rng, m*lda+aoff)
		b := randSlice(rng, k*n)
		start := randSlice(rng, m*n)

		packed := make([]float32, m*k)
		for i := 0; i < m; i++ {
			copy(packed[i*k:], a[i*lda+aoff:i*lda+aoff+k])
		}
		want := append([]float32(nil), start...)
		gemmRef(want, packed, b, m, k, n, acc)

		check := func(label string, got []float32) {
			t.Helper()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s (%dx%dx%d lda=%d aoff=%d acc=%v): out[%d]=%x want %x",
						label, m, k, n, lda, aoff, acc, i,
						math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}

		got := append([]float32(nil), start...)
		for p0 := 0; p0 < k; p0 += KC {
			p1 := min(p0+KC, k)
			GemmPanelK(got, a, b[p0*n:], 0, m, p1-p0, n, lda, aoff+p0, acc || p0 > 0)
		}
		check("dispatch["+Name()+"]", got)

		ForceGeneric(true)
		got = append(got[:0], start...)
		for p0 := 0; p0 < k; p0 += KC {
			p1 := min(p0+KC, k)
			GemmPanelK(got, a, b[p0*n:], 0, m, p1-p0, n, lda, aoff+p0, acc || p0 > 0)
		}
		ForceGeneric(false)
		check("generic", got)
	})
}

// FuzzElementwiseKernels covers the non-GEMM kernels the same way:
// dispatch vs generic vs scalar formula on arbitrary lengths.
func FuzzElementwiseKernels(f *testing.F) {
	f.Add(uint16(1), int64(1))
	f.Add(uint16(31), int64(2))
	f.Add(uint16(257), int64(3))
	f.Add(uint16(4099), int64(4))

	f.Fuzz(func(t *testing.T, n16 uint16, seed int64) {
		n := int(n16)
		rng := rand.New(rand.NewSource(seed))
		x := randSlice(rng, n)
		y := randSlice(rng, n)
		alpha := float32(rng.NormFloat64())

		want := append([]float32(nil), y...)
		for i := range want {
			want[i] += alpha * x[i]
		}
		got := append([]float32(nil), y...)
		Axpy(alpha, x, got)
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("Axpy n=%d [%s]: got[%d]=%v want %v", n, Name(), i, got[i], want[i])
			}
		}

		ai := make([]int8, n)
		bi := make([]int8, n)
		for i := range ai {
			ai[i] = int8(rng.Intn(256) - 128)
			bi[i] = int8(rng.Intn(256) - 128)
		}
		var ref int64
		for i := range ai {
			ref += int64(ai[i]) * int64(bi[i])
		}
		if got := DotI8(ai, bi); int64(got) != ref {
			t.Fatalf("DotI8 n=%d [%s]: got %d want %d", n, Name(), got, ref)
		}

		codes := make([]byte, n)
		rng.Read(codes)
		lo, step := float32(rng.NormFloat64()), float32(math.Abs(rng.NormFloat64())*0.01)
		dq := make([]float32, n)
		Dequantize8(dq, codes, lo, step)
		for i := range dq {
			if want := lo + float32(codes[i])*step; math.Float32bits(dq[i]) != math.Float32bits(want) {
				t.Fatalf("Dequantize8 n=%d [%s]: got[%d]=%v want %v", n, Name(), i, dq[i], want)
			}
		}

		h := make([]uint16, n)
		F32ToF16(h, x)
		ForceGeneric(true)
		hg := make([]uint16, n)
		F32ToF16(hg, x)
		ForceGeneric(false)
		for i := range h {
			if h[i] != hg[i] {
				t.Fatalf("F32ToF16 n=%d [%s]: dispatch %#04x generic %#04x at %d", n, Name(), h[i], hg[i], i)
			}
		}
	})
}
