// Package kernels is the architecture-dispatched microkernel layer
// under internal/tensor and internal/compress. It exposes the small set
// of dense primitives every hot loop in the repo reduces to — GEMM
// inner panels, dot/axpy, f16↔f32 conversion, int8 dot with i32
// accumulation, uint8 dequantize — each with
//
//   - a pure-Go reference implementation (always compiled, used on
//     unsupported architectures, under the `purego` build tag, and when
//     tests call ForceGeneric), and
//   - a Go-assembly implementation per supported architecture (AVX2 on
//     amd64, NEON on arm64), selected at init by runtime CPU-feature
//     detection.
//
// # Numerical contract
//
// The differential tests in this package and in internal/tensor hold
// every implementation to the retained *Naive references. The contract
// is per kernel:
//
//   - GemmPanel / GemmPanelK: bit-identical to the pure-Go kernel on
//     finite inputs. The assembly vectorizes across output columns
//     (the j dimension), so every output element keeps a single
//     sequential accumulation chain over k in panel order — the same
//     chain the scalar reference executes. On amd64 the assembly uses
//     separate multiply and add instructions because gc does not fuse
//     a*b+c on amd64; on arm64 it uses fused FMLA because gc compiles
//     the scalar reference's `u += a*b` to FMADD. Signed zeros may
//     differ (the scalar single-row path skips a==0 terms), which Go's
//     == treats as equal.
//   - Axpy, Dequantize8, f16/f32 conversions: elementwise, bit-identical
//     to the scalar reference (conversions follow IEEE round-to-nearest-
//     even, matching F16C/NEON hardware on finite values; NaN payloads
//     are implementation-defined).
//   - DotI8: exact — integer arithmetic is associative, so lane
//     splitting cannot change the result. Inputs must satisfy
//     len ≤ 2¹⁶ to keep the i32 accumulator overflow-free at the
//     int8 extremes.
//   - Dot: reassociation is allowed (the assembly splits the sum across
//     lanes), so results may differ from the sequential reference by a
//     few ULP. Dot is therefore kept out of the bit-critical training
//     paths, which accumulate in float64 or use GemmPanel.
//
// Quantize8 currently has no assembly variant (its clamp/round tail is
// branchy); it lives here so callers quantize through one package and
// pick up vectorization when it lands.
package kernels

import (
	"encoding/binary"
	"sync/atomic"
	"unsafe"
)

// KC is the contraction-dimension panel size GemmPanel blocks on: a
// [KC, n] b-panel stays L2-resident for every n this codebase produces.
// internal/tensor sizes its packing scratch off the same constant.
const KC = 128

// forceGeneric routes every kernel through the pure-Go reference even
// when assembly is available. Tests flip it to prove the fallback and
// the dispatch path agree on the same host; it is not meant to be
// toggled while kernels are running (the flag is read once per call).
var forceGeneric atomic.Bool

// ForceGeneric routes all kernels through the pure-Go reference
// implementations (on=true) or restores normal dispatch (on=false).
// It exists for differential tests and benchmarks.
func ForceGeneric(on bool) { forceGeneric.Store(on) }

// Active reports whether the architecture assembly path is selected
// right now (CPU support detected, not built with `purego`, and not
// forced generic).
func Active() bool { return hasASM && !genericForced() }

func genericForced() bool { return forceGeneric.Load() }

// activeF16 reports whether the f16 conversion assembly is usable
// (amd64 additionally requires F16C; arm64 currently uses the generic
// converters).
func activeF16() bool { return hasF16ASM && !genericForced() }

// activeI8 and activeDQ8 gate the int8-dot and dequantize assembly:
// amd64 ships both; arm64 runs them generic for now (the Go assembler
// lacks the signed-widen and int→float vector conversion mnemonics they
// need, and hand-encoded words are not worth the risk for kernels that
// are O(n) next to the GEMM).
func activeI8() bool { return hasI8ASM && !genericForced() }

func activeDQ8() bool { return hasDQ8ASM && !genericForced() }

// Name reports which implementation dispatch selects right now:
// "avx2", "neon" or "generic".
func Name() string {
	if Active() {
		return asmName
	}
	return "generic"
}

// GemmPanelK accumulates one k-panel of a row-major GEMM:
//
//	out[i*n : i*n+n] (+)= a_i · b    for i in [r0, r1)
//
// where a_i = arows[i*lda+aoff : i*lda+aoff+k] and b is a [k, n]
// row-major panel. When acc is false the touched out rows are
// overwritten (zeroed, then accumulated). lda/aoff let callers walk
// packed panels or strided views without reslicing. len(b) must be at
// least k*n.
//
// Every output element is produced by one sequential accumulation
// chain over p=0..k-1, so the result is bit-identical to the scalar
// reference on finite inputs regardless of which implementation runs.
func GemmPanelK(out, arows, b []float32, r0, r1, k, n, lda, aoff int, acc bool) {
	if r1 <= r0 || n == 0 {
		return
	}
	if k == 0 {
		if !acc {
			for i := r0; i < r1; i++ {
				zeroFloats(out[i*n : i*n+n])
			}
		}
		return
	}
	// Pin the full extent of every operand up front: the assembly path
	// does raw pointer walks, so surface a short slice as a panic here
	// rather than as silent corruption.
	_ = out[(r1-1)*n+n-1]
	_ = arows[(r1-1)*lda+aoff+k-1]
	_ = b[(k-1)*n+n-1]
	if Active() && n >= gemmJ {
		gemmPanelKASM(out, arows, b, r0, r1, k, n, lda, aoff, acc)
		return
	}
	gemmPanelKGeneric(out, arows, b, r0, r1, k, n, lda, aoff, acc)
}

// GemmPanel is the KC-blocked form of GemmPanelK: it computes out rows
// [r0,r1) of a full a·b product where the a rows live at
// arows[(i-rowOff)*k:] — rowOff lets the TA path reuse this kernel over
// packed panels — visiting k in KC-sized panels so the b panel a row
// group sweeps stays cache-resident.
func GemmPanel(out, arows, b []float32, r0, r1, k, n, rowOff int, acc bool) {
	if r1 <= r0 || n == 0 {
		return
	}
	if k == 0 {
		if !acc {
			for i := r0; i < r1; i++ {
				zeroFloats(out[i*n : i*n+n])
			}
		}
		return
	}
	for p0 := 0; p0 < k; p0 += KC {
		p1 := min(p0+KC, k)
		GemmPanelK(out, arows, b[p0*n:], r0, r1, p1-p0, n, k, p0-rowOff*k, acc || p0 > 0)
	}
}

// Dot returns the float32 inner product of a and b (panics unless
// len(a) == len(b)). Reassociation is allowed: the assembly splits the
// accumulation across vector lanes, so the result may differ from the
// sequential scalar sum by a few ULP on ill-conditioned inputs.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("kernels: Dot length mismatch")
	}
	var s float32
	i := 0
	if Active() && len(a) >= dotStride {
		nv := len(a) &^ (dotStride - 1)
		s = dotVec(&a[0], &b[0], nv)
		i = nv
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y[i] += alpha*x[i] elementwise (panics unless
// len(x) == len(y)). Bit-identical to the scalar loop: each element is
// independent and the assembly evaluates the same expression.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("kernels: Axpy length mismatch")
	}
	i := 0
	if Active() && len(x) >= axpyStride {
		nv := len(x) &^ (axpyStride - 1)
		axpyVec(alpha, &x[0], &y[0], nv)
		i = nv
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// DotI8 returns the int32 inner product of two int8 vectors (panics
// unless len(a) == len(b)). Exact for len(a) ≤ 65536 — beyond that the
// i32 accumulator could overflow at the int8 extremes.
func DotI8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic("kernels: DotI8 length mismatch")
	}
	var s int32
	i := 0
	if activeI8() && len(a) >= i8Stride {
		nv := len(a) &^ (i8Stride - 1)
		s = dotI8Vec(&a[0], &b[0], nv)
		i = nv
	}
	for ; i < len(a); i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// F16ToF32 widens half-precision values to float32 (panics unless
// len(dst) == len(src)). Exact: every f16 value is representable in
// f32, and the scalar converter reproduces hardware semantics including
// subnormals.
func F16ToF32(dst []float32, src []uint16) {
	if len(dst) != len(src) {
		panic("kernels: F16ToF32 length mismatch")
	}
	i := 0
	if activeF16() && len(src) >= f16Stride {
		nv := len(src) &^ (f16Stride - 1)
		f16ToF32Vec(&dst[0], &src[0], nv)
		i = nv
	}
	for ; i < len(src); i++ {
		dst[i] = F16ToF32Scalar(src[i])
	}
}

// F32ToF16 narrows float32 values to half precision with IEEE
// round-to-nearest-even (panics unless len(dst) == len(src)), matching
// F16C hardware on all finite values and infinities; NaN payloads are
// implementation-defined.
func F32ToF16(dst []uint16, src []float32) {
	if len(dst) != len(src) {
		panic("kernels: F32ToF16 length mismatch")
	}
	i := 0
	if activeF16() && len(src) >= f16Stride {
		nv := len(src) &^ (f16Stride - 1)
		f32ToF16Vec(&dst[0], &src[0], nv)
		i = nv
	}
	for ; i < len(src); i++ {
		dst[i] = F32ToF16Scalar(src[i])
	}
}

// F16BytesToF32 widens half-precision values stored as little-endian
// byte pairs (the wire layout internal/compress ships) to float32.
// len(src) must be at least 2*len(dst). Exact, like F16ToF32.
func F16BytesToF32(dst []float32, src []byte) {
	if len(src) < 2*len(dst) {
		panic("kernels: F16BytesToF32 short src")
	}
	i := 0
	if activeF16() && len(dst) >= f16Stride {
		// amd64 and arm64 are little-endian, so the byte pairs are
		// in-memory uint16s and the same conversion assembly applies;
		// its loads carry no alignment requirement.
		nv := len(dst) &^ (f16Stride - 1)
		f16ToF32Vec(&dst[0], (*uint16)(unsafe.Pointer(&src[0])), nv)
		i = nv
	}
	for ; i < len(dst); i++ {
		dst[i] = F16ToF32Scalar(binary.LittleEndian.Uint16(src[2*i:]))
	}
}

// F32ToF16Bytes narrows float32 values to half precision stored as
// little-endian byte pairs with round-to-nearest-even. len(dst) must be
// at least 2*len(src).
func F32ToF16Bytes(dst []byte, src []float32) {
	if len(dst) < 2*len(src) {
		panic("kernels: F32ToF16Bytes short dst")
	}
	i := 0
	if activeF16() && len(src) >= f16Stride {
		nv := len(src) &^ (f16Stride - 1)
		f32ToF16Vec((*uint16)(unsafe.Pointer(&dst[0])), &src[0], nv)
		i = nv
	}
	for ; i < len(src); i++ {
		binary.LittleEndian.PutUint16(dst[2*i:], F32ToF16Scalar(src[i]))
	}
}

// Dequantize8 expands uint8 codes to float32: dst[i] = lo + src[i]*step
// (panics unless len(dst) == len(src)). Bit-identical to the scalar
// loop — the uint8→float32 conversion is exact and the multiply/add
// round identically per element.
func Dequantize8(dst []float32, src []byte, lo, step float32) {
	if len(dst) != len(src) {
		panic("kernels: Dequantize8 length mismatch")
	}
	i := 0
	if activeDQ8() && len(src) >= dq8Stride {
		nv := len(src) &^ (dq8Stride - 1)
		dequant8Vec(&dst[0], &src[0], lo, step, nv)
		i = nv
	}
	for ; i < len(src); i++ {
		dst[i] = lo + float32(src[i])*step
	}
}

// Quantize8 maps float32 values to uint8 codes: clamp((src[i]-lo)*scale
// rounded half-up) to [0,255] (panics unless len(dst) == len(src)).
// Pure Go on every architecture today; quantizing NaN is undefined.
func Quantize8(dst []byte, src []float32, lo, scale float32) {
	if len(dst) != len(src) {
		panic("kernels: Quantize8 length mismatch")
	}
	quantize8Generic(dst, src, lo, scale)
}

func zeroFloats(s []float32) {
	for i := range s {
		s[i] = 0
	}
}
