//go:build (amd64 || arm64) && !purego

package kernels

// gemmPanelKASM drives the architecture GEMM microkernels over one
// k-panel: four output rows at a time through gemmPanel4, remainder
// rows through gemmPanel1, with the sub-vector column tail handled by
// a scalar loop that keeps the same per-element accumulation order.
// Caller guarantees r0 < r1, k > 0 and n >= gemmJ.
func gemmPanelKASM(out, arows, b []float32, r0, r1, k, n, lda, aoff int, acc bool) {
	nv := n &^ (gemmJ - 1)
	i := r0
	for ; i+4 <= r1; i += 4 {
		base := i*lda + aoff
		o0 := out[(i+0)*n : (i+0)*n+n]
		o1 := out[(i+1)*n : (i+1)*n+n]
		o2 := out[(i+2)*n : (i+2)*n+n]
		o3 := out[(i+3)*n : (i+3)*n+n]
		if !acc {
			zeroFloats(o0)
			zeroFloats(o1)
			zeroFloats(o2)
			zeroFloats(o3)
		}
		gemmPanel4(&o0[0], &o1[0], &o2[0], &o3[0],
			&arows[base], &arows[base+lda], &arows[base+2*lda], &arows[base+3*lda],
			&b[0], k, n, nv)
		if nv < n {
			gemmTailCols(o0, arows[base:base+k], b, nv, n)
			gemmTailCols(o1, arows[base+lda:base+lda+k], b, nv, n)
			gemmTailCols(o2, arows[base+2*lda:base+2*lda+k], b, nv, n)
			gemmTailCols(o3, arows[base+3*lda:base+3*lda+k], b, nv, n)
		}
	}
	for ; i < r1; i++ {
		base := i*lda + aoff
		o := out[i*n : i*n+n]
		if !acc {
			zeroFloats(o)
		}
		gemmPanel1(&o[0], &arows[base], &b[0], k, n, nv)
		if nv < n {
			gemmTailCols(o, arows[base:base+k], b, nv, n)
		}
	}
}

// gemmTailCols accumulates the sub-vector column tail [j0, len(o)) of
// one output row: o[j] += Σ_p a[p]·b[p*n+j], the chain held in a
// register so each element rounds exactly like the reference kernel
// (gc fuses the multiply-add on arm64 and not on amd64, matching the
// respective vector bodies).
func gemmTailCols(o, a []float32, b []float32, j0, n int) {
	for j := j0; j < len(o); j++ {
		u := o[j]
		for p, av := range a {
			u += av * b[p*n+j]
		}
		o[j] = u
	}
}
