package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// The tests in this file hold the dispatched implementation (AVX2/NEON
// when the host has it, generic otherwise) to scalar references
// computed in plain Go, and — the forced-fallback guarantee — to the
// generic implementation ForceGeneric selects. For the bit-contract
// kernels the comparison is exact equality; only Dot gets a tolerance.

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// gemmRef is the sequential triple-loop reference: one accumulation
// chain per output element, k visited in order.
func gemmRef(out, a, b []float32, m, k, n int, acc bool) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			u := float32(0)
			if acc {
				u = out[i*n+j]
			}
			for p := 0; p < k; p++ {
				u += a[i*k+p] * b[p*n+j]
			}
			out[i*n+j] = u
		}
	}
}

var gemmDims = []struct{ m, k, n int }{
	{1, 1, 1}, {1, 7, 3}, {2, 3, 5}, {3, 128, 8}, {4, 129, 16},
	{5, 64, 7}, {6, 31, 9}, {7, 255, 13}, {8, 128, 8}, {9, 257, 33},
	{13, 17, 19}, {16, 130, 40}, {4, 1, 64}, {1, 300, 65}, {32, 64, 24},
}

func TestGemmPanelMatchesReference(t *testing.T) {
	t.Logf("dispatch: %s", Name())
	rng := rand.New(rand.NewSource(1))
	for _, d := range gemmDims {
		for _, acc := range []bool{false, true} {
			a := randSlice(rng, d.m*d.k)
			b := randSlice(rng, d.k*d.n)
			seed := randSlice(rng, d.m*d.n)

			want := append([]float32(nil), seed...)
			gemmRef(want, a, b, d.m, d.k, d.n, acc)

			got := append([]float32(nil), seed...)
			GemmPanel(got, a, b, 0, d.m, d.k, d.n, 0, acc)

			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("GemmPanel(%dx%dx%d acc=%v) [%s]: out[%d]=%x want %x",
						d.m, d.k, d.n, acc, Name(), i,
						math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

func TestGemmPanelKStridedView(t *testing.T) {
	// Exercise lda/aoff: walk a panel out of the middle of a wider a.
	rng := rand.New(rand.NewSource(2))
	const m, lda, k, n = 6, 37, 17, 21
	a := randSlice(rng, m*lda)
	b := randSlice(rng, k*n)
	const aoff = 5
	packed := make([]float32, m*k)
	for i := 0; i < m; i++ {
		copy(packed[i*k:], a[i*lda+aoff:i*lda+aoff+k])
	}
	want := make([]float32, m*n)
	gemmRef(want, packed, b, m, k, n, false)

	got := make([]float32, m*n)
	GemmPanelK(got, a, b, 0, m, k, n, lda, aoff, false)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GemmPanelK strided: out[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestGemmPanelRowRange(t *testing.T) {
	// Partial row ranges must leave other rows untouched, as the
	// parallel drivers in internal/tensor rely on.
	rng := rand.New(rand.NewSource(3))
	const m, k, n = 10, 33, 12
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	whole := make([]float32, m*n)
	GemmPanel(whole, a, b, 0, m, k, n, 0, false)

	split := make([]float32, m*n)
	for i := range split {
		split[i] = 999
	}
	GemmPanel(split, a, b, 0, 3, k, n, 0, false)
	GemmPanel(split, a, b, 3, 7, k, n, 0, false)
	GemmPanel(split, a, b, 7, m, k, n, 0, false)
	for i := range whole {
		if split[i] != whole[i] {
			t.Fatalf("row-range split: out[%d] = %v want %v", i, split[i], whole[i])
		}
	}
}

// TestForcedFallbackIdentical is the forced-fallback guarantee: on a
// host where dispatch selects assembly, routing through ForceGeneric
// must produce byte-identical results for every bit-contract kernel.
// (Under the purego tag both paths are the generic code and the test
// is trivially green.)
func TestForcedFallbackIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if !Active() {
		t.Logf("no assembly dispatch on this host/build; comparing generic to itself")
	}
	for _, d := range gemmDims {
		a := randSlice(rng, d.m*d.k)
		b := randSlice(rng, d.k*d.n)

		fast := make([]float32, d.m*d.n)
		GemmPanel(fast, a, b, 0, d.m, d.k, d.n, 0, false)

		ForceGeneric(true)
		slow := make([]float32, d.m*d.n)
		GemmPanel(slow, a, b, 0, d.m, d.k, d.n, 0, false)
		ForceGeneric(false)

		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("GemmPanel(%dx%dx%d): dispatch %v != generic %v at %d",
					d.m, d.k, d.n, fast[i], slow[i], i)
			}
		}
	}

	for _, n := range []int{1, 7, 8, 31, 32, 33, 100, 1024, 4097} {
		x := randSlice(rng, n)
		y := randSlice(rng, n)

		yFast := append([]float32(nil), y...)
		Axpy(0.37, x, yFast)
		ForceGeneric(true)
		ySlow := append([]float32(nil), y...)
		Axpy(0.37, x, ySlow)
		ForceGeneric(false)
		for i := range yFast {
			if yFast[i] != ySlow[i] {
				t.Fatalf("Axpy n=%d: dispatch %v != generic %v at %d", n, yFast[i], ySlow[i], i)
			}
		}

		src := make([]byte, n)
		rng.Read(src)
		dFast := make([]float32, n)
		Dequantize8(dFast, src, -1.25, 0.013)
		ForceGeneric(true)
		dSlow := make([]float32, n)
		Dequantize8(dSlow, src, -1.25, 0.013)
		ForceGeneric(false)
		for i := range dFast {
			if dFast[i] != dSlow[i] {
				t.Fatalf("Dequantize8 n=%d: dispatch %v != generic %v at %d", n, dFast[i], dSlow[i], i)
			}
		}
	}
}

func TestDotAgainstF64Reference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 31, 32, 33, 64, 100, 1000, 4096} {
		a := randSlice(rng, n)
		b := randSlice(rng, n)
		var ref float64
		for i := range a {
			ref += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		// Dot's contract allows lane reassociation: bound the error by
		// a conservative n·ε·Σ|a·b| envelope instead of ULP equality.
		var mag float64
		for i := range a {
			mag += math.Abs(float64(a[i]) * float64(b[i]))
		}
		tol := 1e-6*mag*float64(n+1) + 1e-7
		if math.Abs(got-ref) > tol {
			t.Fatalf("Dot n=%d [%s]: got %v want %v (tol %v)", n, Name(), got, ref, tol)
		}
	}
}

func TestDotI8Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 31, 32, 33, 63, 64, 100, 1000, 4096, 65536} {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = int8(rng.Intn(256) - 128)
			b[i] = int8(rng.Intn(256) - 128)
		}
		var ref int64
		for i := range a {
			ref += int64(a[i]) * int64(b[i])
		}
		if got := DotI8(a, b); int64(got) != ref {
			t.Fatalf("DotI8 n=%d [%s]: got %d want %d", n, Name(), got, ref)
		}
		ForceGeneric(true)
		got := DotI8(a, b)
		ForceGeneric(false)
		if int64(got) != ref {
			t.Fatalf("DotI8 generic n=%d: got %d want %d", n, got, ref)
		}
	}
	// Saturating worst case: extremes in both operands.
	a := make([]int8, 65536)
	b := make([]int8, 65536)
	for i := range a {
		a[i], b[i] = -128, -128
	}
	want := int32(65536 * 128 * 128)
	if got := DotI8(a, b); got != want {
		t.Fatalf("DotI8 extremes: got %d want %d", got, want)
	}
}

func TestF16WidenAllValues(t *testing.T) {
	// Every one of the 65536 half-precision encodings must widen the
	// same way through dispatch and through the scalar reference.
	src := make([]uint16, 1<<16)
	for i := range src {
		src[i] = uint16(i)
	}
	fast := make([]float32, len(src))
	F16ToF32(fast, src)
	for i, h := range src {
		want := F16ToF32Scalar(h)
		got := fast[i]
		if math.Float32bits(got) != math.Float32bits(want) {
			// NaN payloads are outside the contract only for narrow;
			// widening must be exact for every encoding.
			t.Fatalf("F16ToF32(%#04x) [%s]: got %x want %x", h, Name(),
				math.Float32bits(got), math.Float32bits(want))
		}
	}
}

func TestF16NarrowMatchesDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := make([]float32, 1<<16+37)
	for i := range src {
		switch i % 8 {
		case 0:
			src[i] = float32(rng.NormFloat64())
		case 1:
			src[i] = float32(rng.NormFloat64() * 1e4)
		case 2:
			src[i] = float32(rng.NormFloat64() * 1e-6) // f16 subnormal range
		case 3:
			src[i] = float32(rng.NormFloat64() * 1e38) // overflow to Inf
		case 4:
			src[i] = float32(rng.NormFloat64() * 6e-8) // underflow boundary
		default:
			src[i] = float32(math.Float32frombits(rng.Uint32() &^ (0xFF << 23))) // finite-biased bit soup
		}
	}
	src = append(src, 0, float32(math.Copysign(0, -1)), 65504, -65504, 65520, -65520,
		float32(math.Inf(1)), float32(math.Inf(-1)), 5.9604645e-08, 2.9802322e-08, 6.1035156e-05)

	fast := make([]uint16, len(src))
	F32ToF16(fast, src)
	ForceGeneric(true)
	slow := make([]uint16, len(src))
	F32ToF16(slow, src)
	ForceGeneric(false)
	for i, v := range src {
		if math.IsNaN(float64(v)) {
			continue // NaN payload is implementation-defined
		}
		if fast[i] != slow[i] {
			t.Fatalf("F32ToF16(%v = %x) [%s]: dispatch %#04x generic %#04x",
				v, math.Float32bits(v), Name(), fast[i], slow[i])
		}
	}
}

func TestF16RoundTripExactForF16Values(t *testing.T) {
	// Narrow(widen(h)) must be the identity for every non-NaN encoding.
	for h := 0; h < 1<<16; h++ {
		u := uint16(h)
		if u&0x7C00 == 0x7C00 && u&0x03FF != 0 {
			continue // NaN
		}
		f := F16ToF32Scalar(u)
		if got := F32ToF16Scalar(f); got != u {
			t.Fatalf("roundtrip %#04x -> %v -> %#04x", u, f, got)
		}
	}
}

func TestF16BytesMatchesU16(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := randSlice(rng, 1001)
	u := make([]uint16, len(src))
	F32ToF16(u, src)
	bts := make([]byte, 2*len(src))
	F32ToF16Bytes(bts, src)
	for i := range src {
		if got := uint16(bts[2*i]) | uint16(bts[2*i+1])<<8; got != u[i] {
			t.Fatalf("F32ToF16Bytes[%d] = %#04x want %#04x", i, got, u[i])
		}
	}
	back := make([]float32, len(src))
	F16BytesToF32(back, bts)
	ref := make([]float32, len(src))
	F16ToF32(ref, u)
	for i := range back {
		if math.Float32bits(back[i]) != math.Float32bits(ref[i]) {
			t.Fatalf("F16BytesToF32[%d] = %v want %v", i, back[i], ref[i])
		}
	}
}

func TestQuantize8MatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := randSlice(rng, 777)
	lo, scale := float32(-2.5), float32(51.3)
	dst := make([]byte, len(src))
	Quantize8(dst, src, lo, scale)
	for i, v := range src {
		q := (v - lo) * scale
		if q < 0 {
			q = 0
		} else if q > 255 {
			q = 255
		}
		if want := byte(q + 0.5); dst[i] != want {
			t.Fatalf("Quantize8[%d] = %d want %d", i, dst[i], want)
		}
	}
}

func TestAxpyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000} {
		x := randSlice(rng, n)
		y := randSlice(rng, n)
		want := append([]float32(nil), y...)
		for i := range want {
			want[i] += -0.025 * x[i]
		}
		got := append([]float32(nil), y...)
		Axpy(-0.025, x, got)
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("Axpy n=%d [%s]: got[%d]=%v want %v", n, Name(), i, got[i], want[i])
			}
		}
	}
}
