//go:build arm64 && !purego

#include "textflag.h"

// NEON microkernels. The bit-identity rule is the mirror image of the
// amd64 one (see the package doc): gc fuses a*b+c into FMADD on arm64,
// so these kernels accumulate with VFMLA — one fused rounding per step,
// exactly like the compiled scalar reference. The GEMM kernels
// vectorize across output columns only, keeping every output element's
// accumulation over k a single sequential chain in panel order.

// func gemmPanel4(o0, o1, o2, o3, a0, a1, a2, a3, b *float32, kb, n, nv int)
//
// For r in 0..3 and j in [0, nv): o_r[j] += Σ_{p<kb} a_r[p]·b[p·n+j].
// nv is a positive multiple of 4; kb ≥ 1. Four-column strips: per p
// step one b row segment is loaded once and feeds all four rows'
// replicated multiply-accumulates.
TEXT ·gemmPanel4(SB), NOSPLIT, $0-96
	MOVD b+64(FP), R8
	MOVD n+80(FP), R9
	LSL  $2, R9              // b row stride in bytes
	MOVD nv+88(FP), R11      // columns remaining
	MOVD $0, R10             // current column offset in bytes

gp4_jloop:
	MOVD o0+0(FP), R14
	ADD  R10, R14
	VLD1 (R14), [V0.S4]
	MOVD o1+8(FP), R14
	ADD  R10, R14
	VLD1 (R14), [V1.S4]
	MOVD o2+16(FP), R14
	ADD  R10, R14
	VLD1 (R14), [V2.S4]
	MOVD o3+24(FP), R14
	ADD  R10, R14
	VLD1 (R14), [V3.S4]
	MOVD a0+32(FP), R4
	MOVD a1+40(FP), R5
	MOVD a2+48(FP), R6
	MOVD a3+56(FP), R7
	ADD  R8, R10, R12        // &b[j]
	MOVD kb+72(FP), R13

gp4_ploop:
	VLD1  (R12), [V4.S4]     // b[p*n+j : +4]
	VLD1R (R4), [V5.S4]
	VFMLA V4.S4, V5.S4, V0.S4
	VLD1R (R5), [V5.S4]
	VFMLA V4.S4, V5.S4, V1.S4
	VLD1R (R6), [V5.S4]
	VFMLA V4.S4, V5.S4, V2.S4
	VLD1R (R7), [V5.S4]
	VFMLA V4.S4, V5.S4, V3.S4
	ADD   $4, R4
	ADD   $4, R5
	ADD   $4, R6
	ADD   $4, R7
	ADD   R9, R12
	SUB   $1, R13
	CBNZ  R13, gp4_ploop

	MOVD o0+0(FP), R14
	ADD  R10, R14
	VST1 [V0.S4], (R14)
	MOVD o1+8(FP), R14
	ADD  R10, R14
	VST1 [V1.S4], (R14)
	MOVD o2+16(FP), R14
	ADD  R10, R14
	VST1 [V2.S4], (R14)
	MOVD o3+24(FP), R14
	ADD  R10, R14
	VST1 [V3.S4], (R14)
	ADD  $16, R10
	SUB  $4, R11
	CBNZ R11, gp4_jloop

	RET

// func gemmPanel1(o, a, b *float32, kb, n, nv int)
//
// Single-row variant of gemmPanel4 for the <4 remainder rows.
TEXT ·gemmPanel1(SB), NOSPLIT, $0-48
	MOVD b+16(FP), R8
	MOVD n+32(FP), R9
	LSL  $2, R9
	MOVD nv+40(FP), R11
	MOVD $0, R10

gp1_jloop:
	MOVD o+0(FP), R14
	ADD  R10, R14
	VLD1 (R14), [V0.S4]
	MOVD a+8(FP), R4
	ADD  R8, R10, R12
	MOVD kb+24(FP), R13

gp1_ploop:
	VLD1  (R12), [V4.S4]
	VLD1R (R4), [V5.S4]
	VFMLA V4.S4, V5.S4, V0.S4
	ADD   $4, R4
	ADD   R9, R12
	SUB   $1, R13
	CBNZ  R13, gp1_ploop

	MOVD o+0(FP), R14
	ADD  R10, R14
	VST1 [V0.S4], (R14)
	ADD  $16, R10
	SUB  $4, R11
	CBNZ R11, gp1_jloop

	RET

// func dotVec(a, b *float32, nv int) float32
//
// nv is a positive multiple of 16. Reassociation is allowed by Dot's
// contract: the sum is split across four vector accumulators, merged by
// multiplying with a ones vector (exact), then reduced lane by lane.
TEXT ·dotVec(SB), NOSPLIT, $0-28
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD nv+16(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16

dot_loop:
	VLD1.P 64(R0), [V4.S4, V5.S4, V6.S4, V7.S4]
	VLD1.P 64(R1), [V8.S4, V9.S4, V10.S4, V11.S4]
	VFMLA  V4.S4, V8.S4, V0.S4
	VFMLA  V5.S4, V9.S4, V1.S4
	VFMLA  V6.S4, V10.S4, V2.S4
	VFMLA  V7.S4, V11.S4, V3.S4
	SUB    $16, R2
	CBNZ   R2, dot_loop

	// Merge the four accumulators: acc0 += acc_r * 1.0 is exact.
	FMOVS $1.0, F12
	VDUP  V12.S[0], V13.S4
	VFMLA V1.S4, V13.S4, V0.S4
	VFMLA V2.S4, V13.S4, V0.S4
	VFMLA V3.S4, V13.S4, V0.S4

	// Lane reduce.
	VMOV  V0.S[0], R4
	FMOVS R4, F0
	VMOV  V0.S[1], R4
	FMOVS R4, F1
	FADDS F1, F0, F0
	VMOV  V0.S[2], R4
	FMOVS R4, F1
	FADDS F1, F0, F0
	VMOV  V0.S[3], R4
	FMOVS R4, F1
	FADDS F1, F0, F0
	FMOVS F0, ret+24(FP)
	RET

// func axpyVec(alpha float32, x, y *float32, nv int)
//
// y[i] += alpha·x[i] for i < nv; nv is a positive multiple of 4.
// VFMLA matches the FMADD gc emits for the scalar loop on arm64.
TEXT ·axpyVec(SB), NOSPLIT, $0-32
	MOVWU alpha+0(FP), R3
	VDUP  R3, V8.S4
	MOVD  x+8(FP), R0
	MOVD  y+16(FP), R1
	MOVD  nv+24(FP), R2

axpy_loop:
	VLD1.P 16(R0), [V0.S4]
	VLD1   (R1), [V1.S4]
	VFMLA  V0.S4, V8.S4, V1.S4
	VST1.P [V1.S4], 16(R1)
	SUB    $4, R2
	CBNZ   R2, axpy_loop

	RET
