package kernels

import "math"

// This file holds the pure-Go reference implementation of every kernel.
// It is always compiled: it is the only implementation on architectures
// without assembly and under the `purego` build tag, the ForceGeneric
// escape hatch on every architecture, and the ground truth the
// differential tests hold the assembly to.

// gemmPanelKGeneric is the scalar GEMM panel kernel, lifted from the
// tuned internal/tensor blocked engine. Output rows are produced four
// at a time (register tiling) and the contraction is unrolled two deep
// with the two products added left-to-right, so every output element
// keeps one sequential accumulation chain over p — the property the
// bit-identity contract rests on. The reslicing dance before each inner
// loop pins every operand to a provably equal length so the compiler's
// prove pass eliminates all bounds checks from the hot loop.
func gemmPanelKGeneric(out, arows, b []float32, r0, r1, k, n, lda, aoff int, acc bool) {
	i := r0
	for ; i+4 <= r1; i += 4 {
		base := i*lda + aoff
		a0 := arows[base : base+k]
		a1 := arows[base+lda : base+lda+k]
		a2 := arows[base+2*lda : base+2*lda+k]
		a3 := arows[base+3*lda : base+3*lda+k]
		a1 = a1[:len(a0)]
		a2 = a2[:len(a0)]
		a3 = a3[:len(a0)]
		o0 := out[(i+0)*n : (i+0)*n+n]
		o1 := out[(i+1)*n : (i+1)*n+n]
		o2 := out[(i+2)*n : (i+2)*n+n]
		o3 := out[(i+3)*n : (i+3)*n+n]
		if !acc {
			zeroFloats(o0)
			zeroFloats(o1)
			zeroFloats(o2)
			zeroFloats(o3)
		}
		pi := 0
		for ; pi+2 <= len(a0); pi += 2 {
			av00, av01 := a0[pi], a0[pi+1]
			av10, av11 := a1[pi], a1[pi+1]
			av20, av21 := a2[pi], a2[pi+1]
			av30, av31 := a3[pi], a3[pi+1]
			brow0 := b[(pi+0)*n : (pi+0)*n+n]
			brow1 := b[(pi+1)*n : (pi+1)*n+n]
			brow1 = brow1[:len(brow0)]
			u0 := o0[:len(brow0)]
			u1 := o1[:len(brow0)]
			u2 := o2[:len(brow0)]
			u3 := o3[:len(brow0)]
			for j, bv0 := range brow0 {
				bv1 := brow1[j]
				u0[j] = (u0[j] + av00*bv0) + av01*bv1
				u1[j] = (u1[j] + av10*bv0) + av11*bv1
				u2[j] = (u2[j] + av20*bv0) + av21*bv1
				u3[j] = (u3[j] + av30*bv0) + av31*bv1
			}
		}
		for ; pi < len(a0); pi++ {
			av0, av1, av2, av3 := a0[pi], a1[pi], a2[pi], a3[pi]
			brow := b[pi*n : pi*n+n]
			u0 := o0[:len(brow)]
			u1 := o1[:len(brow)]
			u2 := o2[:len(brow)]
			u3 := o3[:len(brow)]
			for j, bv := range brow {
				u0[j] += av0 * bv
				u1[j] += av1 * bv
				u2[j] += av2 * bv
				u3[j] += av3 * bv
			}
		}
	}
	for ; i < r1; i++ {
		base := i*lda + aoff
		arow := arows[base : base+k]
		orow := out[i*n : i*n+n]
		if !acc {
			zeroFloats(orow)
		}
		for pi, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[pi*n : pi*n+n]
			urow := orow[:len(brow)]
			for j, bv := range brow {
				urow[j] += av * bv
			}
		}
	}
}

// quantize8Generic maps src to uint8 codes against the [lo, lo+1/scale·255]
// range: half-up rounding after clamping, matching the historical
// internal/compress encoder exactly.
func quantize8Generic(dst []byte, src []float32, lo, scale float32) {
	dst = dst[:len(src)]
	for i, v := range src {
		q := (v - lo) * scale
		if q < 0 {
			q = 0
		} else if q > 255 {
			q = 255
		}
		dst[i] = byte(q + 0.5)
	}
}

// F32ToF16Scalar converts one float32 to IEEE 754 binary16 with
// round-to-nearest-even, matching F16C (VCVTPS2PH with RN) and NEON
// FCVT on all finite values, infinities, and zeros. NaNs are quieted
// with the top ten payload bits kept, which matches F16C for quiet
// NaNs; exotic signaling-NaN payloads are implementation-defined.
func F32ToF16Scalar(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits >> 16 & 0x8000)
	abs := bits &^ 0x80000000
	switch {
	case abs >= 0x7F800000: // Inf or NaN
		if abs > 0x7F800000 {
			return sign | 0x7C00 | 0x0200 | uint16(abs>>13&0x03FF)
		}
		return sign | 0x7C00
	case abs < 0x33000000: // below 2⁻²⁵: underflows to zero (ties-to-even)
		return sign
	case abs < 0x38800000: // below 2⁻¹⁴: f16 subnormal
		e := abs >> 23
		m := abs&0x007FFFFF | 0x00800000
		d := 126 - e // 14..24 within this branch
		q := m >> d
		rem := m & (1<<d - 1)
		half := uint32(1) << (d - 1)
		if rem > half || (rem == half && q&1 == 1) {
			q++
		}
		// q == 1024 overflows the subnormal mantissa into exponent 1,
		// which is exactly the smallest normal's encoding.
		return sign | uint16(q)
	default:
		// Normal: round the 23-bit mantissa to 10 bits; a carry out of
		// the mantissa bumps the (re-biased) exponent, and anything at
		// or above the f16 normal ceiling lands in the Inf encoding.
		abs += 0x00000FFF + (abs >> 13 & 1)
		h := (abs >> 13) - (112 << 10)
		if h >= 0x7C00 {
			return sign | 0x7C00
		}
		return sign | uint16(h)
	}
}

// F16ToF32Scalar widens one IEEE 754 binary16 value to float32. Exact,
// including subnormals and infinities; NaN payloads are shifted into
// the f32 mantissa top bits as hardware does.
func F16ToF32Scalar(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x03FF)
	switch {
	case exp == 0x1F: // Inf / NaN
		if mant != 0 {
			// Quiet the NaN, as F16C and NEON widening do.
			return math.Float32frombits(sign | 0x7FC00000 | mant<<13)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp != 0: // normal
		return math.Float32frombits(sign | (exp+112)<<23 | mant<<13)
	case mant == 0: // zero
		return math.Float32frombits(sign)
	default: // subnormal: normalize into the f32 exponent range
		e := uint32(113)
		for mant&0x0400 == 0 {
			mant <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (mant&0x03FF)<<13)
	}
}
