package tensor

import (
	"errors"
	"testing"
	"testing/quick"

	"medsplit/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rng.New(1)
	shapes := [][]int{{1}, {5}, {2, 3}, {4, 1, 7}, {2, 3, 4, 5}, {}}
	for _, shape := range shapes {
		x := randTensor(r, shape...)
		buf := x.AppendTo(nil)
		if len(buf) != x.EncodedSize() {
			t.Fatalf("shape %v: encoded %d bytes, EncodedSize says %d", shape, len(buf), x.EncodedSize())
		}
		y, rest, err := Decode(buf)
		if err != nil {
			t.Fatalf("shape %v: decode: %v", shape, err)
		}
		if len(rest) != 0 {
			t.Fatalf("shape %v: %d leftover bytes", shape, len(rest))
		}
		if !SameShape(x, y) || !AllClose(x, y, 0) {
			t.Fatalf("shape %v: round trip mismatch", shape)
		}
	}
}

func TestEncodedSizeFor(t *testing.T) {
	if got, want := EncodedSizeFor(4, 5), New(4, 5).EncodedSize(); got != want {
		t.Fatalf("EncodedSizeFor = %d, want %d", got, want)
	}
}

func TestDecodeMultipleConcatenated(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 4, 5, 6}, 2, 2)
	buf := a.AppendTo(nil)
	buf = b.AppendTo(buf)
	a2, rest, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	b2, rest, err := Decode(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
	if !AllClose(a, a2, 0) || !AllClose(b, b2, 0) {
		t.Fatal("concatenated decode mismatch")
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	good := New(2, 2).AppendTo(nil)
	cases := map[string][]byte{
		"empty":           {},
		"truncated shape": good[:3],
		"truncated data":  good[:len(good)-2],
	}
	for name, buf := range cases {
		if _, _, err := Decode(buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	// Zero dimension encoded explicitly.
	bad := []byte{1, 0, 0, 0, 0}
	if _, _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("zero dim: err = %v, want ErrCorrupt", err)
	}
	// Hostile volume: rank 2 of 65536 x 65536 floats would be 16 GiB.
	hostile := []byte{2, 0, 0, 1, 0, 0, 0, 1, 0}
	if _, _, err := Decode(hostile); !errors.Is(err, ErrCorrupt) {
		t.Errorf("hostile volume: err = %v, want ErrCorrupt", err)
	}
}

// Property: round trip preserves arbitrary float payloads bit-for-bit.
func TestRoundTripProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		x := FromSlice(append([]float32(nil), vals...), len(vals))
		y, rest, err := Decode(x.AppendTo(nil))
		if err != nil || len(rest) != 0 {
			return false
		}
		for i := range vals {
			// Compare bit patterns so NaN payloads round-trip too.
			if x.Data()[i] != y.Data()[i] && !(x.Data()[i] != x.Data()[i] && y.Data()[i] != y.Data()[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 64, 256)
	buf := make([]byte, 0, x.EncodedSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = x.AppendTo(buf[:0])
	}
	b.SetBytes(int64(x.EncodedSize()))
}

func BenchmarkDecode(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 64, 256)
	buf := x.AppendTo(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}
