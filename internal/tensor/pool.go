package tensor

import (
	"math/bits"
	"sync"
	"unsafe"
)

// Pool recycles tensor backing storage through power-of-two size classes,
// each backed by a sync.Pool. The training hot path allocates the same
// handful of shapes every round (im2col columns, activation batches,
// gradient matrices); routing those through a Pool turns per-round
// allocations into constant-space buffer reuse and keeps GC pressure flat
// as platforms × rounds grows.
//
// Put hands the tensor's storage back to the pool: the caller asserts
// nothing else aliases it (no outstanding Reshape views, no retained
// Data() slices). Violating that is a use-after-free-style aliasing bug,
// so Put only belongs at points where ownership is unambiguous.
type Pool struct {
	classes [poolClasses]sync.Pool
	// boxes recycles the *[]float32 wrappers the class pools store:
	// putting a bare []float32 into a sync.Pool boxes the slice header
	// into a freshly allocated interface value every time, which made
	// every pooled GEMM scratch cost one small allocation per Put.
	boxes sync.Pool
}

// poolClasses covers buffers up to 2^31 elements — far beyond any tensor
// this codebase materializes.
const poolClasses = 32

// Default is the package-level pool; the GEMM engine draws its packing
// and transpose scratch from it. (The nn layers and the split server
// reuse long-lived buffers via EnsureShape instead — their scratch has
// layer lifetime, not call lifetime.) Independent subsystems may still
// construct private Pools to bound cross-talk.
var Default Pool

// sizeClass returns the bucket index for a buffer of n float32s: the
// smallest power of two ≥ n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Alignment guarantee: GetDirty and GetBuf hand out storage whose base
// address is 32-byte aligned, so the AVX2/NEON kernels' vector loads
// never straddle a cache line at the buffer start. The guarantee costs
// nothing structurally — allocation classes are already powers of two,
// and the Go allocator places power-of-two objects of ≥ alignFloats
// elements (32 bytes) on size-class boundaries, which are 32-byte
// aligned — so enforcing it is a floor on the smallest class plus a
// defensive check when pulling from the pool. Alignment is a
// performance property, not a correctness one: the kernels use
// unaligned loads throughout.
const (
	alignBytes  = 32
	alignFloats = alignBytes / 4
	// minClass is sizeClass(alignFloats): no pooled allocation is
	// smaller than one vector register.
	minClass = 3
)

// aligned32 reports whether s's backing array starts on a 32-byte
// boundary.
func aligned32(s []float32) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(s)))&(alignBytes-1) == 0
}

// alignedMake allocates a [n]float32 slice with the given power-of-two
// capacity and a 32-byte-aligned base. The first attempt succeeds on
// the gc allocator (see the alignment note above); the retry is a
// defensive fallback that accepts an unaligned buffer rather than loop
// forever on a hypothetical allocator without that property.
func alignedMake(n, capacity int) []float32 {
	s := make([]float32, n, capacity)
	if aligned32(s) {
		return s
	}
	return make([]float32, n, capacity)
}

// Get returns a zero-filled tensor of the given shape, reusing pooled
// storage when available.
func (p *Pool) Get(shape ...int) *Tensor {
	t := p.GetDirty(shape...)
	t.Zero()
	return t
}

// GetDirty returns a tensor of the given shape whose contents are
// undefined. Use it for outputs that every kernel invocation fully
// overwrites (MatMulInto, Im2ColInto); anything accumulated into must go
// through Get instead. The backing storage is 32-byte aligned.
func (p *Pool) GetDirty(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dimension in pooled shape")
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: p.getData(n)}
}

// getData is the shared storage path behind GetDirty and GetBuf:
// pooled when an aligned buffer of the class is available, freshly
// allocated otherwise.
func (p *Pool) getData(n int) []float32 {
	cls := max(sizeClass(n), minClass)
	if b, ok := p.classes[cls].Get().(*[]float32); ok && cap(*b) >= n && aligned32(*b) {
		buf := *b
		*b = nil
		p.boxes.Put(b)
		return buf[:n]
	}
	return alignedMake(n, 1<<cls)
}

// GetBuf returns a raw scratch buffer of exactly n float32s with
// undefined contents, skipping the Tensor wrapper (and its two header
// allocations) for kernels that only ever touch the flat storage. The
// backing storage is 32-byte aligned. Pair every GetBuf with a PutBuf.
func (p *Pool) GetBuf(n int) []float32 {
	return p.getData(n)
}

// PutBuf returns a GetBuf buffer to the pool. The buffer must not be
// used afterwards.
func (p *Pool) PutBuf(buf []float32) {
	// Sub-vector capacities are never handed out again (getData floors
	// at minClass), so don't retain them.
	if cap(buf) < alignFloats || cap(buf)&(cap(buf)-1) != 0 {
		return
	}
	b, _ := p.boxes.Get().(*[]float32)
	if b == nil {
		b = new([]float32)
	}
	*b = buf[:cap(buf)]
	p.classes[sizeClass(cap(buf))].Put(b)
}

// Put returns t's storage to the pool. t must not be used afterwards.
// Put(nil) is a no-op so callers can release optional scratch
// unconditionally.
func (p *Pool) Put(t *Tensor) {
	if t == nil || cap(t.data) == 0 {
		return
	}
	buf := t.data[:cap(t.data)]
	// Only pool power-of-two capacities of at least one vector register:
	// anything else (FromSlice-wrapped storage) would silently shrink its
	// class on the next Get, and sub-vector buffers are never reissued.
	if cap(buf) < alignFloats || cap(buf)&(cap(buf)-1) != 0 {
		return
	}
	b, _ := p.boxes.Get().(*[]float32)
	if b == nil {
		b = new([]float32)
	}
	*b = buf
	p.classes[sizeClass(cap(buf))].Put(b)
	t.data = nil
	t.shape = nil
}

// EnsureShape returns a tensor of exactly the given shape, reusing t's
// storage when its capacity suffices (contents are preserved up to the
// new volume, which callers should treat as undefined). It is the
// idiom for layer- or server-held scratch whose shape can drift between
// rounds (last partial batch, per-platform batch skew).
func EnsureShape(t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dimension in EnsureShape")
		}
		n *= d
	}
	if t != nil && cap(t.data) >= n {
		t.shape = append(t.shape[:0], shape...)
		t.data = t.data[:n]
		return t
	}
	return New(shape...)
}

// EnsureShapeOf is EnsureShape with src's shape, without materializing
// the intermediate shape copy Shape() would allocate — the idiom for
// layer scratch shaped like the layer input.
func (t *Tensor) EnsureShapeOf(src *Tensor) *Tensor {
	return EnsureShape(t, src.shape...)
}
