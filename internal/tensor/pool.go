package tensor

import (
	"math/bits"
	"sync"
)

// Pool recycles tensor backing storage through power-of-two size classes,
// each backed by a sync.Pool. The training hot path allocates the same
// handful of shapes every round (im2col columns, activation batches,
// gradient matrices); routing those through a Pool turns per-round
// allocations into constant-space buffer reuse and keeps GC pressure flat
// as platforms × rounds grows.
//
// Put hands the tensor's storage back to the pool: the caller asserts
// nothing else aliases it (no outstanding Reshape views, no retained
// Data() slices). Violating that is a use-after-free-style aliasing bug,
// so Put only belongs at points where ownership is unambiguous.
type Pool struct {
	classes [poolClasses]sync.Pool
}

// poolClasses covers buffers up to 2^31 elements — far beyond any tensor
// this codebase materializes.
const poolClasses = 32

// Default is the package-level pool; the GEMM engine draws its packing
// and transpose scratch from it. (The nn layers and the split server
// reuse long-lived buffers via EnsureShape instead — their scratch has
// layer lifetime, not call lifetime.) Independent subsystems may still
// construct private Pools to bound cross-talk.
var Default Pool

// sizeClass returns the bucket index for a buffer of n float32s: the
// smallest power of two ≥ n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a zero-filled tensor of the given shape, reusing pooled
// storage when available.
func (p *Pool) Get(shape ...int) *Tensor {
	t := p.GetDirty(shape...)
	t.Zero()
	return t
}

// GetDirty returns a tensor of the given shape whose contents are
// undefined. Use it for outputs that every kernel invocation fully
// overwrites (MatMulInto, Im2ColInto); anything accumulated into must go
// through Get instead.
func (p *Pool) GetDirty(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dimension in pooled shape")
		}
		n *= d
	}
	cls := sizeClass(n)
	if buf, ok := p.classes[cls].Get().([]float32); ok && cap(buf) >= n {
		return &Tensor{shape: append([]int(nil), shape...), data: buf[:n]}
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n, 1<<cls)}
}

// Put returns t's storage to the pool. t must not be used afterwards.
// Put(nil) is a no-op so callers can release optional scratch
// unconditionally.
func (p *Pool) Put(t *Tensor) {
	if t == nil || cap(t.data) == 0 {
		return
	}
	buf := t.data[:cap(t.data)]
	// Only pool power-of-two capacities: anything else (FromSlice-wrapped
	// storage) would silently shrink its class on the next Get.
	if cap(buf)&(cap(buf)-1) != 0 {
		return
	}
	p.classes[sizeClass(cap(buf))].Put(buf)
	t.data = nil
	t.shape = nil
}

// EnsureShape returns a tensor of exactly the given shape, reusing t's
// storage when its capacity suffices (contents are preserved up to the
// new volume, which callers should treat as undefined). It is the
// idiom for layer- or server-held scratch whose shape can drift between
// rounds (last partial batch, per-platform batch skew).
func EnsureShape(t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dimension in EnsureShape")
		}
		n *= d
	}
	if t != nil && cap(t.data) >= n {
		t.shape = append(t.shape[:0], shape...)
		t.data = t.data[:n]
		return t
	}
	return New(shape...)
}
