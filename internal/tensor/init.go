package tensor

import (
	"math"

	"medsplit/internal/rng"
)

// FillNormal fills t with N(mean, std) variates drawn from r.
func (t *Tensor) FillNormal(r *rng.RNG, mean, std float32) {
	for i := range t.data {
		t.data[i] = mean + std*r.NormFloat32()
	}
}

// FillUniform fills t with uniform variates in [lo, hi).
func (t *Tensor) FillUniform(r *rng.RNG, lo, hi float32) {
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*r.Float32()
	}
}

// XavierInit fills t with Glorot/Xavier-uniform weights for a layer with
// the given fan-in and fan-out: U(-a, a) with a = sqrt(6/(fanIn+fanOut)).
// It keeps activation variance roughly constant through tanh/sigmoid-style
// layers.
func (t *Tensor) XavierInit(r *rng.RNG, fanIn, fanOut int) {
	a := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	t.FillUniform(r, -a, a)
}

// HeInit fills t with He-normal weights for a layer with the given
// fan-in: N(0, sqrt(2/fanIn)). It is the standard initialization for
// ReLU networks such as the paper's VGG and ResNet models.
func (t *Tensor) HeInit(r *rng.RNG, fanIn int) {
	std := float32(math.Sqrt(2 / float64(fanIn)))
	t.FillNormal(r, 0, std)
}
