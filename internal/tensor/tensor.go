// Package tensor implements dense float32 tensors and the numerical
// kernels (matrix multiply, im2col convolution lowering, reductions,
// softmax) that the neural-network layers in medsplit are built on.
//
// Tensors are row-major and contiguous. Shape errors panic: they are
// programming errors of the same kind as out-of-range slice indexing, and
// the panic messages carry both shapes so the failing call site is obvious.
// I/O and decoding, which depend on external bytes, return errors instead.
//
// Tensors are not safe for concurrent mutation; concurrent reads are fine.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	shape []int
	data  []float32
}

// New allocates a zero-filled tensor with the given shape. Each dimension
// must be positive; a zero-dimensional tensor (scalar) is allowed by
// calling New with no arguments.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is
// used directly (not copied); the caller must not alias it afterwards
// unless aliasing is intended. len(data) must equal the shape's volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice is a copy and
// may be modified freely by the caller.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data exposes the underlying storage. Mutating it mutates the tensor;
// this is the intended fast path for kernels and serialization.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape returns a view of t with a new shape of equal volume. The view
// shares storage with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (volume %d) to %v (volume %d)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must match exactly.
func (t *Tensor) CopyFrom(src *Tensor) {
	if !SameShape(t, src) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Row returns a view of row i of a rank-2 tensor as a []float32 slice
// into the tensor's storage.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.shape)))
	}
	cols := t.shape[1]
	return t.data[i*cols : (i+1)*cols]
}

// AllClose reports whether a and b have the same shape and every pair of
// elements differs by at most tol (absolute) or tol relative to the larger
// magnitude.
func AllClose(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		x, y := float64(a.data[i]), float64(b.data[i])
		diff := math.Abs(x - y)
		if diff <= tol {
			continue
		}
		scale := math.Max(math.Abs(x), math.Abs(y))
		if diff > tol*scale {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite. Training loops
// use it as a cheap numerical-health assertion.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// String renders small tensors fully and large ones as a shape summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		var b strings.Builder
		fmt.Fprintf(&b, "Tensor%v%v", t.shape, t.data)
		return b.String()
	}
	return fmt.Sprintf("Tensor%v[%d elements]", t.shape, len(t.data))
}
