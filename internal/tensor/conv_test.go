package tensor

import (
	"testing"

	"medsplit/internal/rng"
)

func TestConvOutSize(t *testing.T) {
	cases := []struct {
		in, k, s, p, want int
	}{
		{32, 3, 1, 1, 32}, // "same" conv
		{32, 2, 2, 0, 16}, // 2x2 pool
		{5, 3, 1, 0, 3},
		{7, 3, 2, 1, 4},
		{1, 1, 1, 0, 1},
	}
	for _, c := range cases {
		if got := ConvOutSize(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutSize(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
	assertPanics(t, "zero stride", func() { ConvOutSize(4, 2, 0, 0) })
	assertPanics(t, "degenerate", func() { ConvOutSize(2, 5, 1, 0) })
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// A 1x1 kernel with stride 1 and no padding: im2col is a pure layout
	// change; every pixel appears exactly once.
	r := rng.New(1)
	x := randTensor(r, 2, 3, 4, 4)
	cols := Im2Col(x, 1, 1, 1, 0)
	if cols.Dim(0) != 2*4*4 || cols.Dim(1) != 3 {
		t.Fatalf("cols shape %v", cols.Shape())
	}
	// Row (n, y, x) must equal the C channel values of that pixel.
	for n := 0; n < 2; n++ {
		for y := 0; y < 4; y++ {
			for xx := 0; xx < 4; xx++ {
				row := cols.Row((n*4+y)*4 + xx)
				for c := 0; c < 3; c++ {
					if row[c] != x.At(n, c, y, xx) {
						t.Fatalf("pixel (%d,%d,%d,%d) mismatch", n, c, y, xx)
					}
				}
			}
		}
	}
}

func TestIm2ColKnown3x3(t *testing.T) {
	// Single 3x3 image, single channel, 2x2 kernel, stride 1, no pad.
	x := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	cols := Im2Col(x, 2, 2, 1, 0)
	want := [][]float32{
		{1, 2, 4, 5},
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for i, w := range want {
		row := cols.Row(i)
		for j := range w {
			if row[j] != w[j] {
				t.Fatalf("row %d = %v, want %v", i, row, w)
			}
		}
	}
}

func TestIm2ColPaddingIsZero(t *testing.T) {
	x := Full(1, 1, 1, 2, 2)
	cols := Im2Col(x, 3, 3, 1, 1)
	// Output is 2x2; the (0,0) output's receptive field has 5 padded
	// zeros (top row, left column) and 4 ones.
	row := cols.Row(0)
	var sum float32
	for _, v := range row {
		sum += v
	}
	if sum != 4 {
		t.Fatalf("padded receptive field sums to %v, want 4 (row %v)", sum, row)
	}
}

// The adjoint identity <Im2Col(x), g> == <x, Col2Im(g)> must hold for
// Col2Im to be the correct convolution backward operator.
func TestCol2ImAdjointOfIm2Col(t *testing.T) {
	r := rng.New(2)
	cases := []struct {
		n, c, h, w, kh, kw, stride, pad int
	}{
		{1, 1, 4, 4, 3, 3, 1, 1},
		{2, 3, 8, 8, 3, 3, 1, 1},
		{1, 2, 7, 5, 3, 3, 2, 1},
		{2, 1, 6, 6, 2, 2, 2, 0},
		{1, 4, 5, 5, 5, 5, 1, 2},
	}
	for _, cs := range cases {
		x := randTensor(r, cs.n, cs.c, cs.h, cs.w)
		cols := Im2Col(x, cs.kh, cs.kw, cs.stride, cs.pad)
		g := randTensor(r, cols.Dim(0), cols.Dim(1))
		lhs := Dot(cols, g)
		img := Col2Im(g, cs.n, cs.c, cs.h, cs.w, cs.kh, cs.kw, cs.stride, cs.pad)
		rhs := Dot(x, img)
		diff := lhs - rhs
		if diff > 1e-2 || diff < -1e-2 {
			t.Errorf("adjoint mismatch for %+v: %v vs %v", cs, lhs, rhs)
		}
	}
}

func TestRowsToNCHWRoundTrip(t *testing.T) {
	r := rng.New(3)
	x := randTensor(r, 2, 5, 3, 4)
	rows := NCHWToRows(x)
	if rows.Dim(0) != 2*3*4 || rows.Dim(1) != 5 {
		t.Fatalf("rows shape %v", rows.Shape())
	}
	back := RowsToNCHW(rows, 2, 5, 3, 4)
	if !AllClose(x, back, 0) {
		t.Fatal("NCHW→rows→NCHW is not the identity")
	}
}

func TestIm2ColShapePanics(t *testing.T) {
	assertPanics(t, "rank-3 input", func() { Im2Col(New(1, 2, 3), 1, 1, 1, 0) })
	assertPanics(t, "col2im shape", func() { Col2Im(New(5, 4), 1, 1, 3, 3, 2, 2, 1, 0) })
	assertPanics(t, "rows shape", func() { RowsToNCHW(New(5, 2), 1, 2, 2, 2) })
}

func BenchmarkIm2Col32x32(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 8, 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(x, 3, 3, 1, 1)
	}
}
