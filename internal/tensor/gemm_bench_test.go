package tensor

import (
	"fmt"
	"testing"

	"medsplit/internal/rng"
)

// The GEMM benchmarks compare the blocked engine against the retained
// naive references at square sizes (the paper's perf trajectory is
// tracked at 256–1024, see BENCH_tensor.json) and at the conv-lowered
// shapes the split models actually produce. Run with:
//
//	go test ./internal/tensor -bench 'MatMul|Im2Col' -benchmem

func benchGemm(b *testing.B, size int, fn func(a, bb *Tensor) *Tensor) {
	r := rng.New(1)
	x := randTensor(r, size, size)
	y := randTensor(r, size, size)
	flops := 2 * int64(size) * int64(size) * int64(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(x, y)
	}
	b.SetBytes(0)
	b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkMatMul(b *testing.B) {
	for _, size := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("blocked/%d", size), func(b *testing.B) {
			benchGemm(b, size, MatMul)
		})
		b.Run(fmt.Sprintf("naive/%d", size), func(b *testing.B) {
			benchGemm(b, size, MatMulNaive)
		})
	}
}

func BenchmarkMatMulTB(b *testing.B) {
	for _, size := range []int{256, 512} {
		b.Run(fmt.Sprintf("blocked/%d", size), func(b *testing.B) {
			benchGemm(b, size, MatMulTB)
		})
		b.Run(fmt.Sprintf("naive/%d", size), func(b *testing.B) {
			benchGemm(b, size, MatMulTBNaive)
		})
	}
}

func BenchmarkMatMulTA(b *testing.B) {
	for _, size := range []int{256, 512} {
		b.Run(fmt.Sprintf("blocked/%d", size), func(b *testing.B) {
			benchGemm(b, size, MatMulTA)
		})
		b.Run(fmt.Sprintf("naive/%d", size), func(b *testing.B) {
			benchGemm(b, size, MatMulTANaive)
		})
	}
}

// BenchmarkIm2Col measures the lowering at the CIFAR geometries the
// VGG-lite split model sees: L1 (platform side, 3 channels in) and the
// deeper stage-2 conv (16 channels at 16×16).
func BenchmarkIm2Col(b *testing.B) {
	shapes := []struct {
		name       string
		n, c, h, w int
	}{
		{"cifar-L1/8x3x32x32", 8, 3, 32, 32},
		{"stage2/8x16x16x16", 8, 16, 16, 16},
	}
	for _, s := range shapes {
		x := randTensor(rng.New(1), s.n, s.c, s.h, s.w)
		oh := ConvOutSize(s.h, 3, 1, 1)
		ow := ConvOutSize(s.w, 3, 1, 1)
		dst := New(s.n*oh*ow, s.c*9)
		b.Run("parallel/"+s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Im2ColInto(dst, x, 3, 3, 1, 1)
			}
		})
		b.Run("naive/"+s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Im2ColNaive(x, 3, 3, 1, 1)
			}
		})
	}
}
