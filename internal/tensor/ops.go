package tensor

import (
	"fmt"
	"math"

	"medsplit/internal/tensor/kernels"
)

// Add returns a + b elementwise as a new tensor.
func Add(a, b *Tensor) *Tensor {
	mustSameShape("Add", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b elementwise as a new tensor.
func Sub(a, b *Tensor) *Tensor {
	mustSameShape("Sub", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a * b as a new tensor.
func Mul(a, b *Tensor) *Tensor {
	mustSameShape("Mul", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// AddInPlace sets t = t + x elementwise.
func (t *Tensor) AddInPlace(x *Tensor) {
	mustSameShape("AddInPlace", t, x)
	for i := range t.data {
		t.data[i] += x.data[i]
	}
}

// SubInPlace sets t = t - x elementwise.
func (t *Tensor) SubInPlace(x *Tensor) {
	mustSameShape("SubInPlace", t, x)
	for i := range t.data {
		t.data[i] -= x.data[i]
	}
}

// MulInPlace sets t = t * x elementwise.
func (t *Tensor) MulInPlace(x *Tensor) {
	mustSameShape("MulInPlace", t, x)
	for i := range t.data {
		t.data[i] *= x.data[i]
	}
}

// Scale multiplies every element of t by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// Scaled returns s*t as a new tensor.
func Scaled(t *Tensor, s float32) *Tensor {
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = t.data[i] * s
	}
	return out
}

// AxpyInPlace sets t = t + alpha*x elementwise — the fused update used by
// SGD-style optimizers. It dispatches to the vector kernel layer, which
// is bit-identical to the scalar loop per element.
func (t *Tensor) AxpyInPlace(alpha float32, x *Tensor) {
	mustSameShape("AxpyInPlace", t, x)
	kernels.Axpy(alpha, x.data, t.data)
}

// AddRowVector adds vector v (length = t.Dim(1)) to every row of the
// rank-2 tensor t, in place. It implements bias broadcasting.
func (t *Tensor) AddRowVector(v *Tensor) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: AddRowVector on rank-%d tensor", len(t.shape)))
	}
	if v.Size() != t.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector length %d does not match %d columns", v.Size(), t.shape[1]))
	}
	rows, cols := t.shape[0], t.shape[1]
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		for c := range row {
			row[c] += v.data[c]
		}
	}
}

// SumRows returns the column-wise sum of a rank-2 tensor as a length-cols
// rank-1 tensor. It is the adjoint of AddRowVector and computes bias
// gradients.
func SumRows(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SumRows on rank-%d tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		for c := range row {
			out.data[c] += row[c]
		}
	}
	return out
}

// SumRowsAcc accumulates the column-wise sums of rank-2 t into dst
// (length = t.Dim(1)). It is the fused form of the bias-gradient pattern
// G.AddInPlace(SumRows(dy)) and avoids the temporary vector.
func SumRowsAcc(dst, t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SumRowsAcc on rank-%d tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	if dst.Size() != cols {
		panic(fmt.Sprintf("tensor: SumRowsAcc dst size %d, want %d", dst.Size(), cols))
	}
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		for c := range row {
			dst.data[c] += row[c]
		}
	}
	return dst
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements, or 0 for an empty
// tensor.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the largest element. It panics on an empty tensor.
func (t *Tensor) Max() float32 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if a.Size() != b.Size() {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d vs %d", a.Size(), b.Size()))
	}
	var s float64
	for i := range a.data {
		s += float64(a.data[i]) * float64(b.data[i])
	}
	return s
}

// Norm returns the Euclidean (L2) norm of t viewed as a flat vector.
func (t *Tensor) Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Apply replaces every element v with f(v), in place, and returns t for
// chaining.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	for i := range t.data {
		t.data[i] = f(t.data[i])
	}
	return t
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func Transpose(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose on rank-%d tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.data[c*rows+r] = t.data[r*cols+c]
		}
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax to each row of a
// rank-2 tensor, returning a new tensor of the same shape.
func SoftmaxRows(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows on rank-%d tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(rows, cols)
	for r := 0; r < rows; r++ {
		in := t.data[r*cols : (r+1)*cols]
		o := out.data[r*cols : (r+1)*cols]
		m := in[0]
		for _, v := range in[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for c, v := range in {
			e := math.Exp(float64(v - m))
			o[c] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for c := range o {
			o[c] *= inv
		}
	}
	return out
}

// ArgmaxRows returns, for each row of a rank-2 tensor, the index of its
// largest element.
func ArgmaxRows(t *Tensor) []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgmaxRows on rank-%d tensor", len(t.shape)))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		best, bestIdx := row[0], 0
		for c, v := range row[1:] {
			if v > best {
				best, bestIdx = v, c+1
			}
		}
		out[r] = bestIdx
	}
	return out
}

// ClipInPlace clamps every element into [-limit, limit]. Gradient
// clipping keeps half-trained models from blowing up in long experiments.
func (t *Tensor) ClipInPlace(limit float32) {
	if limit <= 0 {
		panic("tensor: ClipInPlace with non-positive limit")
	}
	for i, v := range t.data {
		if v > limit {
			t.data[i] = limit
		} else if v < -limit {
			t.data[i] = -limit
		}
	}
}

// ConcatRows stacks rank-2 tensors with identical column counts on top of
// each other. It is used by the split server's concatenated round mode to
// fuse minibatches from several platforms into one batch.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := ts[0].shape[1]
	totalRows := 0
	for _, t := range ts {
		if len(t.shape) != 2 {
			panic(fmt.Sprintf("tensor: ConcatRows on rank-%d tensor", len(t.shape)))
		}
		if t.shape[1] != cols {
			panic(fmt.Sprintf("tensor: ConcatRows column mismatch %d vs %d", t.shape[1], cols))
		}
		totalRows += t.shape[0]
	}
	out := New(totalRows, cols)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += len(t.data)
	}
	return out
}

// SplitRows is the inverse of ConcatRows: it slices a rank-2 tensor into
// consecutive row blocks of the given sizes. The returned tensors are
// copies, so callers may mutate them independently.
func SplitRows(t *Tensor, sizes []int) []*Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: SplitRows on rank-%d tensor", len(t.shape)))
	}
	total := 0
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: SplitRows with non-positive block size %d", s))
		}
		total += s
	}
	if total != t.shape[0] {
		panic(fmt.Sprintf("tensor: SplitRows sizes sum to %d, tensor has %d rows", total, t.shape[0]))
	}
	cols := t.shape[1]
	out := make([]*Tensor, len(sizes))
	off := 0
	for i, s := range sizes {
		block := New(s, cols)
		copy(block.data, t.data[off*cols:(off+s)*cols])
		out[i] = block
		off += s
	}
	return out
}

// ConcatDim0 stacks tensors along dimension 0. All inputs must share
// the same trailing shape. The split server's concat round mode uses it
// to fuse per-platform activation batches of any rank.
func ConcatDim0(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatDim0 of nothing")
	}
	trailing := ts[0].shape[1:]
	total := 0
	for _, t := range ts {
		if len(t.shape) != len(ts[0].shape) {
			panic(fmt.Sprintf("tensor: ConcatDim0 rank mismatch %v vs %v", t.shape, ts[0].shape))
		}
		for i, d := range trailing {
			if t.shape[i+1] != d {
				panic(fmt.Sprintf("tensor: ConcatDim0 trailing shape mismatch %v vs %v", t.shape, ts[0].shape))
			}
		}
		total += t.shape[0]
	}
	outShape := append([]int{total}, trailing...)
	out := New(outShape...)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += len(t.data)
	}
	return out
}

// ConcatDim0Into stacks tensors along dimension 0 into dst, whose shape
// must be [Σ dim0, trailing...]. It is the buffer-reusing form of
// ConcatDim0: the split server calls it with a round-persistent fused
// batch so concat-mode scheduling stops allocating per round.
func ConcatDim0Into(dst *Tensor, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatDim0Into of nothing")
	}
	trailing := dst.shape[1:]
	total := 0
	for _, t := range ts {
		if len(t.shape) != len(dst.shape) {
			panic(fmt.Sprintf("tensor: ConcatDim0Into rank mismatch %v vs dst %v", t.shape, dst.shape))
		}
		for i, d := range trailing {
			if t.shape[i+1] != d {
				panic(fmt.Sprintf("tensor: ConcatDim0Into trailing shape mismatch %v vs dst %v", t.shape, dst.shape))
			}
		}
		total += t.shape[0]
	}
	if total != dst.shape[0] {
		panic(fmt.Sprintf("tensor: ConcatDim0Into inputs total dim0 %d, dst has %d", total, dst.shape[0]))
	}
	off := 0
	for _, t := range ts {
		copy(dst.data[off:], t.data)
		off += len(t.data)
	}
	return dst
}

// SplitDim0 slices t into consecutive blocks along dimension 0 with the
// given sizes (which must sum to t.Dim(0)). Blocks are copies.
func SplitDim0(t *Tensor, sizes []int) []*Tensor {
	if len(t.shape) == 0 {
		panic("tensor: SplitDim0 of scalar")
	}
	trailing := t.shape[1:]
	rest := 1
	for _, d := range trailing {
		rest *= d
	}
	total := 0
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: SplitDim0 non-positive block %d", s))
		}
		total += s
	}
	if total != t.shape[0] {
		panic(fmt.Sprintf("tensor: SplitDim0 sizes sum to %d, tensor has %d", total, t.shape[0]))
	}
	out := make([]*Tensor, len(sizes))
	off := 0
	for i, s := range sizes {
		shape := append([]int{s}, trailing...)
		block := New(shape...)
		copy(block.data, t.data[off*rest:(off+s)*rest])
		out[i] = block
		off += s
	}
	return out
}

func mustSameShape(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
