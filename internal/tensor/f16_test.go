package tensor

import (
	"math/rand"
	"testing"

	"medsplit/internal/tensor/kernels"
)

// TestMatMulF16IntoMatchesUnpacked pins the documented contract: the
// panel-widening f16 GEMM is bit-identical to widening b in full and
// running the f32 engine, on both the vector and generic dispatch.
func TestMatMulF16IntoMatchesUnpacked(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {8, 8, 8}, {13, 129, 9},
		{4, 257, 31}, {32, 64, 40}, {2, 1000, 17},
	}
	for _, force := range []bool{false, true} {
		kernels.ForceGeneric(force)
		for _, s := range shapes {
			a := New(s.m, s.k)
			bf := New(s.k, s.n)
			for i := range a.data {
				a.data[i] = rng.Float32()*4 - 2
			}
			for i := range bf.data {
				bf.data[i] = rng.Float32()*4 - 2
			}
			b := PackF16(bf)

			got := New(s.m, s.n)
			MatMulF16Into(got, a, b)
			want := MatMul(a, b.Unpack())
			for i := range want.data {
				if got.data[i] != want.data[i] {
					t.Fatalf("force=%v %dx%dx%d: elem %d got %v want %v",
						force, s.m, s.k, s.n, i, got.data[i], want.data[i])
				}
			}
		}
	}
	kernels.ForceGeneric(false)
}

// TestPackF16RoundTrip checks that values exactly representable in f16
// survive pack/unpack unchanged and that shape metadata carries over.
func TestPackF16RoundTrip(t *testing.T) {
	src := FromSlice([]float32{0, 1, -1, 0.5, 2048, -0.25, 65504, 1.0 / 1024}, 2, 4)
	m := PackF16(src)
	if m.Rows() != 2 || m.Cols() != 4 || m.SizeBytes() != 16 {
		t.Fatalf("metadata: rows=%d cols=%d bytes=%d", m.Rows(), m.Cols(), m.SizeBytes())
	}
	got := m.Unpack()
	for i, want := range src.data {
		if got.data[i] != want {
			t.Fatalf("elem %d: got %v want %v", i, got.data[i], want)
		}
	}
}
